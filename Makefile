# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test race bench bench-compile repro fuzz fuzz-smoke examples clean
.PHONY: attestd attest-agent attest-loadgen flood-net bench-transport bench-server bench-quiescent bench-swarm bench-cluster metrics-smoke
.PHONY: cover chaos-smoke cluster-smoke persist-smoke bench-persist admin-smoke bench-tiers

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race detector over the concurrent campaign-runner stack and the
# networked transport/daemon/agent stack.
race:
	$(GO) test -race ./internal/runner/... ./internal/core/... \
		./internal/transport/... ./internal/server/... ./internal/agent/... \
		./internal/faultnet/... ./internal/cluster/... ./internal/journal/... \
		./internal/admin/...

# One benchmark per paper table/figure plus the ablations.
bench:
	$(GO) test -bench . -benchmem ./...

# Compile-and-run-once smoke over every benchmark: catches bitrot in bench
# code without paying for a full measurement pass (CI runs this).
bench-compile:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Regenerate every paper artifact and the attack campaigns.
repro:
	$(GO) run ./cmd/attest-tables
	$(GO) run ./cmd/attack-sim

# Machine-readable reproduction report.
repro-json:
	$(GO) run ./cmd/attest-tables -json

# Short fuzzing pass over the frame decoders and the assembler.
fuzz:
	$(GO) test -fuzz=FuzzDecodeAttReq -fuzztime=10s ./internal/protocol/
	$(GO) test -fuzz=FuzzDecodeCommandReq -fuzztime=10s ./internal/protocol/
	$(GO) test -fuzz=FuzzDecodeHello -fuzztime=10s ./internal/protocol/
	$(GO) test -fuzz=FuzzDecodeStatsReport -fuzztime=10s ./internal/protocol/
	$(GO) test -fuzz=FuzzReadFrame -fuzztime=10s ./internal/transport/
	$(GO) test -fuzz=FuzzParseSchedule -fuzztime=10s ./internal/faultnet/
	$(GO) test -fuzz=FuzzDecode -fuzztime=10s ./internal/isa/
	$(GO) test -fuzz=FuzzAssemble -fuzztime=10s ./internal/isa/
	$(GO) test -fuzz=FuzzJournalReplay -fuzztime=10s ./internal/journal/

# The CI-sized fuzz pass: the wire-facing decoders plus the journal
# replayer (it parses whatever a crash left on disk — same trust level as
# a socket).
fuzz-smoke:
	$(GO) test -fuzz=FuzzReadFrame -fuzztime=10s ./internal/transport/
	$(GO) test -fuzz=FuzzDecodeHello -fuzztime=10s ./internal/protocol/
	$(GO) test -fuzz=FuzzJournalReplay -fuzztime=10s ./internal/journal/

# Networked deployment binaries (bin/attestd, bin/attest-agent).
attestd:
	$(GO) build -o bin/attestd ./cmd/attestd

attest-agent:
	$(GO) build -o bin/attest-agent ./cmd/attest-agent

attest-loadgen:
	$(GO) build -o bin/attest-loadgen ./cmd/attest-loadgen

# Coverage gate for the networked stack. Floors sit a few points below
# current coverage (transport ~90%, agent ~91%, server ~85%) so
# timing-dependent branches don't flake the gate while a real regression
# still fails it.
cover:
	@mkdir -p bin
	@set -e; \
	check() { \
		pkg=$$1; floor=$$2; name=$$(basename $$pkg); \
		$(GO) test -count=1 -coverprofile=bin/cover-$$name.out ./$$pkg/ >/dev/null; \
		pct=$$($(GO) tool cover -func=bin/cover-$$name.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
		echo "$$pkg coverage: $$pct% (floor $$floor%)"; \
		awk -v p="$$pct" -v f="$$floor" 'BEGIN { exit (p + 0 < f + 0) ? 1 : 0 }' \
			|| { echo "FAIL: $$pkg coverage $$pct% is below the $$floor% floor"; exit 1; }; \
	}; \
	check internal/transport 85; \
	check internal/agent 85; \
	check internal/server 78; \
	check internal/admin 85

# Control-plane acceptance check: the admin HTTP handlers (auth matrix,
# JSON shapes), the daemon-side Controller integration (evict/reattest
# round trip over real TCP, drain contract with the goroutine-leak
# check), the /healthz-/readyz probe flips and the admission-tier engine,
# all under the race detector.
admin-smoke:
	$(GO) test -race -count=1 -v ./internal/admin/
	$(GO) test -race -run 'TestAdmin|TestReadyz|TestTier|TestParseTierSpecs|TestBuildTiers|TestDefaultTierMatchesFlatLimiter' -count=1 -v ./internal/server/

# Chaos acceptance check: a seeded fleet over faultnet chaos (flapping
# links, dropped frames), then the faults stop and every agent must
# recover — fresh MAC work on all devices, monotone fleet aggregates,
# zero phantom reboots, graceful drain, no leaked goroutines.
chaos-smoke:
	$(GO) test -run TestChaosSmoke -count=1 -v ./internal/server/

# Observability acceptance check: an in-process attestd serving a real
# agent over TCP, scraped over HTTP, with every documented series present
# and parseable (daemon counters/histograms, fleet gauges, transport).
metrics-smoke:
	$(GO) test -run TestMetricsSmoke -count=1 -v ./internal/server/

# The end-to-end socket demo: daemon + agent + flood over TCP localhost.
# Exits non-zero unless the gate-rejection and MAC-work counts show the
# paper's asymmetry, so it doubles as an acceptance check.
flood-net:
	$(GO) run ./examples/netflood

# Regenerate BENCH_transport.json (socket-path gate vs full-attest cost).
bench-transport:
	BENCH_TRANSPORT_OUT=$(CURDIR)/BENCH_transport.json \
		$(GO) test -run TestEmitTransportBench -count=1 ./internal/server/

# Regenerate BENCH_server.json: the load generator drives a real attestd
# over loopback TCP (8 devices, paced adversarial frames + honest rounds)
# and reports throughput, latency percentiles, allocs/frame and the
# authentic-vs-adversarial asymmetry ratio.
bench-server:
	$(GO) run ./cmd/attest-loadgen -devices 8 -rate 500 -duration 5s \
		-variant baseline -out $(CURDIR)/BENCH_server.json

# Quiescent-fleet variant of BENCH_server.json: every device clean after
# its warm-up full round, so the fleet rides the O(1) fast path. Fails
# unless the fast round is at least 100× faster than the full-MAC round.
bench-quiescent:
	$(GO) run ./cmd/attest-loadgen -quiescent -devices 8 -duration 5s \
		-min-speedup 100 -variant quiescent -out $(CURDIR)/BENCH_server.json

# Swarm variant of BENCH_server.json: a 64-member fleet attested
# collectively through the spanning-tree gateway — two frames per
# aggregate round over the socket, a live bisection drill, the crossover
# ladder up to N=256 and the full adversary matrix. Fails unless the
# measured verifier-message reduction reaches 10× and every adversary
# cell is detected and localized.
bench-swarm:
	$(GO) run ./cmd/attest-loadgen -swarm -devices 64 -fanout 4 -duration 5s \
		-attest-every 100ms -min-msg-reduction 10 \
		-variant swarm -out $(CURDIR)/BENCH_server.json

# Cluster variant of BENCH_server.json: a ladder of 1 -> 2 -> 4 in-process
# daemons sharing a consistent-hash ring, each with the same admission
# budget and each flooded past it with adversarial frames aimed at devices
# it owns. Fails unless admitted throughput scales at least 1.7x at two
# daemons and 3x at four, and unless the kill-one failover drill hands the
# victim's devices to survivors with zero freshness resets.
bench-cluster:
	$(GO) run ./cmd/attest-loadgen -cluster -duration 5s -daemon-rate 2000 \
		-min-scale-2 1.7 -min-scale-4 3.0 \
		-variant cluster -out $(CURDIR)/BENCH_server.json

# Cluster acceptance check: live state handoff between owners, the
# three-daemon kill-one failover drill, replica-adoption semantics and the
# VerifierStore seam, all under the race detector.
cluster-smoke:
	$(GO) test -race -run 'TestCluster|TestReplicaAdoption|TestInjectedStore' -count=1 -v ./internal/server/

# Persistence acceptance check: the journal engine end to end plus the
# in-process kill -9 restart drills (exact adoption under fsync=always,
# jumped under fsync=interval, zero freshness rejects either way), the
# store conformance suite and the persistent-store allocation pins, all
# under the race detector.
persist-smoke:
	$(GO) test -race -count=1 ./internal/journal/
	$(GO) test -race -run 'TestRestartDrill|TestPersistentStore|TestStoreConformance|TestGateRejectZeroAllocsOverPersistentStore|TestShardedStoreGetZeroAllocs|TestAgentStatsMonotoneUnderChurn' -count=1 -v ./internal/server/

# Persistence variant of BENCH_server.json: supervised agents attest
# against a persistent daemon that is killed without a flush and restarted
# from its state directory, once per fsync policy. Fails on any device-side
# freshness reject, any wrong adoption kind, or an allocating gate reject.
bench-persist:
	$(GO) run ./cmd/attest-loadgen -restart-drill -devices 8 -attest-every 10ms \
		-variant persistence -out $(CURDIR)/BENCH_server.json

# Tier-isolation variant of BENCH_server.json: a bulk tier floods an
# in-process daemon at 10x its tier-wide budget while an uncapped gold
# tier keeps attesting. Fails unless the flood is tier-limited (and its
# admitted throughput stays inside the budget envelope) and the gold
# tier's authentic p99 stays within 2x its unloaded p99.
bench-tiers:
	$(GO) run ./cmd/attest-loadgen -tier-isolation -devices 8 -duration 3s \
		-attest-every 20ms -tier-rate 400 -flood-x 10 -max-p99-ratio 2.0 \
		-variant tier_isolation -out $(CURDIR)/BENCH_server.json

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/dosflood
	$(GO) run ./examples/netflood
	$(GO) run ./examples/roamingattack
	$(GO) run ./examples/secureboot
	$(GO) run ./examples/secureupdate
	$(GO) run ./examples/fleet
	$(GO) run ./examples/malware

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
	rm -rf bin
