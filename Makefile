# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test race bench repro fuzz examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race detector over the concurrent campaign-runner stack.
race:
	$(GO) test -race ./internal/runner/... ./internal/core/...

# One benchmark per paper table/figure plus the ablations.
bench:
	$(GO) test -bench . -benchmem ./...

# Regenerate every paper artifact and the attack campaigns.
repro:
	$(GO) run ./cmd/attest-tables
	$(GO) run ./cmd/attack-sim

# Machine-readable reproduction report.
repro-json:
	$(GO) run ./cmd/attest-tables -json

# Short fuzzing pass over the frame decoders and the assembler.
fuzz:
	$(GO) test -fuzz=FuzzDecodeAttReq -fuzztime=10s ./internal/protocol/
	$(GO) test -fuzz=FuzzDecodeCommandReq -fuzztime=10s ./internal/protocol/
	$(GO) test -fuzz=FuzzDecode -fuzztime=10s ./internal/isa/
	$(GO) test -fuzz=FuzzAssemble -fuzztime=10s ./internal/isa/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/dosflood
	$(GO) run ./examples/roamingattack
	$(GO) run ./examples/secureboot
	$(GO) run ./examples/secureupdate
	$(GO) run ./examples/fleet
	$(GO) run ./examples/malware

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
