// Ablation benchmarks: the design choices DESIGN.md calls out, swept so
// their trade-offs are visible next to the paper's headline numbers.
//
// Each sweep is a set of independent simulation cells executed through the
// campaign runner (internal/runner), so a whole sweep costs one parallel
// pass; the b.Run leaves then report the collected model metrics. The
// plain TestAblationSweepsDeterministicAcrossWorkers below runs under
// `go test ./...` and proves each sweep validates and is byte-identical
// on one worker and on many.
package proverattest_test

import (
	"context"
	"fmt"
	"testing"

	"proverattest/internal/adversary"
	"proverattest/internal/anchor"
	"proverattest/internal/core"
	"proverattest/internal/mcu"
	"proverattest/internal/protocol"
	"proverattest/internal/runner"
	"proverattest/internal/sim"
)

const holdMs = 2000

// ablationMetric is one named model output of an ablation cell. Cells
// return ordered slices (not maps) so sweep results have a deterministic
// byte representation.
type ablationMetric struct {
	Name  string
	Value float64
}

type ablationCell = runner.Cell[[]ablationMetric]

// runAblationSweep executes a sweep's cells on the campaign runner's
// default worker pool and returns the per-cell metrics in input order.
func runAblationSweep(tb testing.TB, cells []ablationCell) [][]ablationMetric {
	tb.Helper()
	results, _ := runner.Run(context.Background(), cells, runner.Options{})
	vals, err := runner.Values(results)
	if err != nil {
		tb.Fatal(err)
	}
	return vals
}

// reportAblationSweep runs the sweep once (in parallel) and emits one
// b.Run leaf per cell carrying that cell's metrics.
func reportAblationSweep(b *testing.B, cells []ablationCell) {
	b.Helper()
	vals := runAblationSweep(b, cells)
	for i, cell := range cells {
		metrics := vals[i]
		b.Run(cell.Label, func(b *testing.B) {
			for _, m := range metrics {
				b.ReportMetric(m.Value, m.Name)
			}
		})
	}
}

// BenchmarkAblation_MeasurementSize sweeps the attested memory size: the
// per-attestation cost is linear in memory (§3.1's formula), which is why
// the DoS damage scales with device memory, not protocol complexity.
func BenchmarkAblation_MeasurementSize(b *testing.B) {
	reportAblationSweep(b, measurementSizeCells())
}

func measurementSizeCells() []ablationCell {
	var cells []ablationCell
	for _, kb := range []uint32{64, 128, 256, 512} {
		kb := kb
		cells = append(cells, ablationCell{
			Label: fmt.Sprintf("%dKB", kb),
			Run: func(ctx context.Context, st *runner.CellStats) ([]ablationMetric, error) {
				s, err := core.NewScenario(core.ScenarioConfig{
					Freshness:      protocol.FreshCounter,
					Auth:           protocol.AuthHMACSHA1,
					Protection:     anchor.FullProtection(),
					MeasuredRegion: mcu.Region{Start: mcu.RAMRegion.Start, Size: kb * 1024},
				})
				if err != nil {
					return nil, err
				}
				before := s.Dev.M.ActiveCycles
				s.IssueAt(s.K.Now() + sim.Millisecond)
				s.RunUntil(s.K.Now() + 2*sim.Second)
				st.Sim = sim.Duration(s.K.Now())
				if s.V.Accepted != 1 {
					return nil, fmt.Errorf("%d KB: attestation failed", kb)
				}
				modeled := (s.Dev.M.ActiveCycles - before).Millis()
				return []ablationMetric{{"model_ms/attestation", modeled}}, nil
			},
		})
	}
	return cells
}

// BenchmarkAblation_TimestampWindow sweeps the freshness window against a
// fixed 2 s delay attack: windows shorter than the adversary's hold time
// block it, longer ones let it through — the window is the security
// parameter, and its lower bound is set by network jitter.
func BenchmarkAblation_TimestampWindow(b *testing.B) {
	reportAblationSweep(b, timestampWindowCells())
}

func timestampWindowCells() []ablationCell {
	var cells []ablationCell
	for _, windowMs := range []uint64{500, 1000, 3000, 5000} {
		windowMs := windowMs
		cells = append(cells, ablationCell{
			Label: fmt.Sprintf("window%dms", windowMs),
			Run: func(ctx context.Context, st *runner.CellStats) ([]ablationMetric, error) {
				tap := &adversary.Interceptor{TargetIndex: 0, ExtraDelay: holdMs * sim.Millisecond}
				s, err := core.NewScenario(core.ScenarioConfig{
					Freshness:         protocol.FreshTimestamp,
					Auth:              protocol.AuthHMACSHA1,
					Clock:             anchor.ClockWide64,
					TimestampWindowMs: windowMs,
					Protection:        anchor.FullProtection(),
					Tap:               tap,
				})
				if err != nil {
					return nil, err
				}
				s.IssueAt(s.K.Now() + sim.Second)
				s.RunUntil(s.K.Now() + 10*sim.Second)
				st.Sim = sim.Duration(s.K.Now())
				blocked := 0.0
				if s.Measurements() == 0 {
					blocked = 1
				}
				if want := windowMs < holdMs; (blocked == 1) != want {
					return nil, fmt.Errorf("window %d ms vs %d ms delay: blocked=%v, want %v",
						windowMs, holdMs, blocked == 1, want)
				}
				return []ablationMetric{{"delay_attack_blocked", blocked}}, nil
			},
		})
	}
	return cells
}

// BenchmarkAblation_NonceHistoryCapacity sweeps the bounded nonce history:
// larger capacities push the replay window out at a linear cost in
// non-volatile memory — the paper's reason to reject nonces for low-end
// provers.
func BenchmarkAblation_NonceHistoryCapacity(b *testing.B) {
	reportAblationSweep(b, nonceHistoryCells())
}

func nonceHistoryCells() []ablationCell {
	var cells []ablationCell
	for _, capacity := range []int{4, 16, 64, 256} {
		capacity := capacity
		cells = append(cells, ablationCell{
			Label: fmt.Sprintf("cap%d", capacity),
			Run: func(ctx context.Context, st *runner.CellStats) ([]ablationMetric, error) {
				s, err := core.NewScenario(core.ScenarioConfig{
					Freshness:     protocol.FreshNonceHistory,
					Auth:          protocol.AuthHMACSHA1,
					NonceCapacity: capacity,
					Protection:    anchor.FullProtection(),
				})
				if err != nil {
					return nil, err
				}
				// Record the first request, push `capacity` more through to
				// evict it, then replay it.
				req, err := s.V.NewRequest()
				if err != nil {
					return nil, err
				}
				frame := req.Encode()
				send := func(buf []byte) {
					s.K.At(s.K.Now()+sim.Millisecond, func() {
						s.C.Send("verifier", "prover", buf)
					})
					s.RunUntil(s.K.Now() + 2*sim.Second)
				}
				send(frame)
				for j := 0; j < capacity; j++ {
					r, err := s.V.NewRequest()
					if err != nil {
						return nil, err
					}
					send(r.Encode())
				}
				before := s.Measurements()
				send(frame) // the replay
				st.Sim = sim.Duration(s.K.Now())
				// With exactly `capacity` fills the original nonce was
				// evicted, so the replay must succeed at every capacity —
				// the history only *delays* replayability.
				if s.Measurements() <= before {
					return nil, fmt.Errorf("cap %d: replay of evicted nonce failed", capacity)
				}
				return []ablationMetric{
					{"evicted_replay_accepted", 1},
					{"nvm_bytes", float64(protocol.BytesRequired(capacity))},
				}, nil
			},
		})
	}
	return cells
}

// BenchmarkAblation_ClockResolution contrasts the two hardware clock
// designs' resolution: the 32-bit/2^20 divider quantises readings to
// ~43.7 ms, so tight future-skew tolerances misfire where the full-rate
// 64-bit clock is exact — resolution trades silicon for protocol slack.
func BenchmarkAblation_ClockResolution(b *testing.B) {
	reportAblationSweep(b, clockResolutionCells())
}

func clockResolutionCells() []ablationCell {
	cases := []struct {
		name    string
		clock   anchor.ClockDesign
		skewMs  uint64
		wantAll bool
	}{
		{"wide64_skew10ms", anchor.ClockWide64, 10, true},
		{"wide32_skew10ms", anchor.ClockWide32Div, 10, false},
		{"wide32_skew100ms", anchor.ClockWide32Div, 100, true},
	}
	var cells []ablationCell
	for _, tc := range cases {
		tc := tc
		cells = append(cells, ablationCell{
			Label: tc.name,
			Run: func(ctx context.Context, st *runner.CellStats) ([]ablationMetric, error) {
				const rounds = 20
				s, err := core.NewScenario(core.ScenarioConfig{
					Freshness:         protocol.FreshTimestamp,
					Auth:              protocol.AuthHMACSHA1,
					Clock:             tc.clock,
					TimestampWindowMs: 1000,
					TimestampSkewMs:   tc.skewMs,
					Protection:        anchor.FullProtection(),
				})
				if err != nil {
					return nil, err
				}
				// Issue at deliberately awkward phases relative to the
				// 43.7 ms quantum.
				for j := 0; j < rounds; j++ {
					s.IssueAt(s.K.Now() + sim.Time(j)*977*sim.Millisecond + sim.Second)
				}
				s.RunUntil(s.K.Now() + 40*sim.Second)
				st.Sim = sim.Duration(s.K.Now())
				accepted := float64(s.V.Accepted)
				if tc.wantAll && accepted != rounds {
					return nil, fmt.Errorf("%s: accepted %.0f/%d", tc.name, accepted, rounds)
				}
				if !tc.wantAll && accepted == rounds {
					return nil, fmt.Errorf("%s: expected quantisation rejects, got none", tc.name)
				}
				return []ablationMetric{
					{"rounds_accepted", accepted},
					{"rounds_issued", rounds},
				}, nil
			},
		})
	}
	return cells
}

// BenchmarkAblation_ChunkedMeasurement sweeps the measurement chunk size
// across the real-time/TOCTOU trade-off the paper gestures at (§3.1's
// real-time citation vs footnote 1's TOCTOU warning): smaller chunks bound
// the primary task's latency, but any chunking at all re-opens the
// relocation attack that the atomic (SMART-style) measurement is immune
// to.
func BenchmarkAblation_ChunkedMeasurement(b *testing.B) {
	reportAblationSweep(b, chunkedMeasurementCells())
}

func chunkedMeasurementCells() []ablationCell {
	var cells []ablationCell
	for _, chunk := range []uint32{0, 4 * 1024, 8 * 1024, 64 * 1024} {
		chunk := chunk
		name := "atomic"
		if chunk > 0 {
			name = fmt.Sprintf("chunk%dKB", chunk/1024)
		}
		cells = append(cells, ablationCell{
			Label: name,
			Run: func(ctx context.Context, st *runner.CellStats) ([]ablationMetric, error) {
				rt, err := core.RunRealtimeExperiment(chunk)
				if err != nil {
					return nil, err
				}
				if rt.Accepted != 1 {
					return nil, fmt.Errorf("genuine attestation failed at chunk %d", chunk)
				}
				latencyMs := rt.WorstLatency.Milliseconds()
				tc, err := core.RunTOCTOUExperiment(chunk)
				if err != nil {
					return nil, err
				}
				toctou := 0.0
				if tc.AttackSucceeded {
					toctou = 1
				}
				// The trade-off must hold: atomic → immune but ~754 ms
				// latency; chunked → bounded latency but TOCTOU-vulnerable.
				if chunk == 0 && (toctou == 1 || latencyMs < 500) {
					return nil, fmt.Errorf("atomic: toctou=%v latency=%.1f ms", toctou == 1, latencyMs)
				}
				if chunk != 0 && chunk <= 64*1024 && toctou != 1 {
					return nil, fmt.Errorf("chunk %d: TOCTOU unexpectedly failed", chunk)
				}
				return []ablationMetric{
					{"worst_sensor_latency_ms", latencyMs},
					{"toctou_attack_succeeded", toctou},
				}, nil
			},
		})
	}
	return cells
}

// BenchmarkAblation_DetectionLatencyEnergy sweeps the attestation period
// across the continuous-attestation trade-off the RATA fast path shifts:
// a resident modification is detected within roughly one period plus one
// full measurement, so shorter periods buy detection latency — and the
// quiescent duty cycle is what they cost. Without the write monitor every
// period pays the ≈754 ms full MAC, which caps the usable rate below
// ~1 Hz and burns double-digit duty percentages; with it a quiescent
// period costs one 70-byte MAC, so the device can attest at 4 Hz for less
// energy than the monitor-less design spends at 0.5 Hz.
func BenchmarkAblation_DetectionLatencyEnergy(b *testing.B) {
	reportAblationSweep(b, detectionEnergyCells())
}

func detectionEnergyCells() []ablationCell {
	type variant struct {
		periodMs int
		monitor  bool
	}
	variants := []variant{
		{250, true}, {500, true}, {1000, true}, {2000, true},
		// Without the fast path, periods below the ≈754 ms measurement time
		// are not schedulable — the prover falls behind its own period.
		{1000, false}, {2000, false},
	}
	var cells []ablationCell
	for _, v := range variants {
		v := v
		name := fmt.Sprintf("period%dms_monitor", v.periodMs)
		if !v.monitor {
			name = fmt.Sprintf("period%dms_full", v.periodMs)
		}
		cells = append(cells, ablationCell{
			Label: name,
			Run: func(ctx context.Context, st *runner.CellStats) ([]ablationMetric, error) {
				s, err := core.NewScenario(core.ScenarioConfig{
					Freshness:  protocol.FreshCounter,
					Auth:       protocol.AuthHMACSHA1,
					Protection: anchor.FullProtection(),
					Monitor:    v.monitor,
				})
				if err != nil {
					return nil, err
				}
				start := s.K.Now()
				quiesceFrom := start + 4*sim.Second
				quiesceTo := start + 8*sim.Second
				compromise := start + 10*sim.Second + 100*sim.Millisecond
				deadline := start + 20*sim.Second
				period := sim.Duration(v.periodMs) * sim.Millisecond

				// One round in flight at a time, like the daemon's per-device
				// issue loop: the next round starts one period after the
				// previous one — or as soon as the prover catches up, when a
				// full measurement overran the period.
				issueEnd := start + 16*sim.Second
				completed := func() uint64 { return s.V.Accepted + s.V.Rejected }
				var schedule func(t sim.Time)
				schedule = func(t sim.Time) {
					if t >= issueEnd {
						return
					}
					s.K.At(t, func() {
						req, err := s.V.NewRequest()
						if err != nil {
							panic(fmt.Sprintf("ablation: issuing request: %v", err))
						}
						s.C.Send("verifier", "prover", req.Encode())
						before := completed()
						var wait func()
						wait = func() {
							if completed() == before {
								s.K.After(10*sim.Millisecond, wait)
								return
							}
							next := t + period
							if now := s.K.Now(); now >= next {
								next = now + sim.Millisecond
							}
							schedule(next)
						}
						wait()
					})
				}
				schedule(start + period)

				// Quiescent duty cycle: cycles burned across a steady-state
				// window with no adversary.
				var c0, c1 float64
				s.K.At(quiesceFrom, func() { c0 = float64(s.Dev.M.ActiveCycles) })
				s.K.At(quiesceTo, func() { c1 = float64(s.Dev.M.ActiveCycles) })

				// Mid-interval compromise, then poll for the verifier's first
				// reject to timestamp detection.
				appPC := mcu.FlashRegion.Start
				s.K.At(compromise, func() {
					s.Dev.M.Bus.Write(appPC, mcu.RAMRegion.Start+0x40000, []byte{0xE7, 0xE7, 0xE7, 0xE7})
				})
				var detectAt sim.Time
				var poll func()
				poll = func() {
					if s.V.Rejected > 0 {
						detectAt = s.K.Now()
						return
					}
					if s.K.Now() < deadline {
						s.K.After(10*sim.Millisecond, poll)
					}
				}
				s.K.At(compromise, poll)

				s.RunUntil(deadline)
				st.Sim = sim.Duration(s.K.Now())
				if detectAt == 0 {
					return nil, fmt.Errorf("%s: modification never detected", name)
				}
				detectMs := (detectAt - compromise).Milliseconds()
				// One period of waiting plus one full measurement plus slack.
				if budget := float64(v.periodMs) + 900; detectMs > budget {
					return nil, fmt.Errorf("%s: detection took %.0f ms, budget %.0f ms", name, detectMs, budget)
				}
				dutyPct := 100 * (c1 - c0) / ((quiesceTo - quiesceFrom).Seconds() * 24e6)
				if v.monitor && dutyPct > 1 {
					return nil, fmt.Errorf("%s: quiescent duty %.2f%%, want <1%% on the fast path", name, dutyPct)
				}
				if !v.monitor && dutyPct < 20 {
					return nil, fmt.Errorf("%s: quiescent duty %.2f%%, expected the full MAC to dominate", name, dutyPct)
				}
				return []ablationMetric{
					{"detect_ms", detectMs},
					{"quiescent_duty_pct", dutyPct},
				}, nil
			},
		})
	}
	return cells
}

// BenchmarkAblation_CounterFlashWear measures the hidden cost of §4.2's
// counter mechanism: every accepted request programs the flash-resident
// counter_R, and embedded flash endures only ~10^5 program cycles per
// cell. At one attestation per minute the counter cell wears out in under
// a year without wear levelling — and an adversary who obtains the key
// can wear it out on purpose. (Forged requests do NOT wear the cell: the
// write only happens after authentication and freshness pass.)
func BenchmarkAblation_CounterFlashWear(b *testing.B) {
	const endurance = 100_000 // program cycles per cell
	var writesPerRequest float64
	for i := 0; i < b.N; i++ {
		s, err := core.NewScenario(core.ScenarioConfig{
			Freshness:  protocol.FreshCounter,
			Auth:       protocol.AuthHMACSHA1,
			Protection: anchor.FullProtection(),
		})
		if err != nil {
			b.Fatal(err)
		}
		const rounds = 10
		before := s.Dev.M.Bus.FlashBytesWritten
		s.IssueEvery(s.K.Now()+sim.Second, sim.Second, rounds)
		s.RunUntil(s.K.Now() + (rounds+3)*sim.Second)
		if s.V.Accepted != rounds {
			b.Fatalf("accepted %d/%d rounds", s.V.Accepted, rounds)
		}
		writesPerRequest = float64(s.Dev.M.Bus.FlashBytesWritten-before) / rounds
	}
	if writesPerRequest != 8 {
		b.Fatalf("counter update wrote %.0f bytes/request, want 8", writesPerRequest)
	}
	// One program cycle per request on the counter cell: wear-out time at
	// one request per minute.
	days := float64(endurance) / (24 * 60)
	b.ReportMetric(writesPerRequest, "flash_bytes_per_request")
	b.ReportMetric(days, "wearout_days_at_1req_per_min")
}

// BenchmarkAblation_KeyLocation confirms the paper's §6.3 claim that the
// ROM and flash key variants cost the same: both attest correctly and both
// deny extraction; the EA-MAC rule count is identical.
func BenchmarkAblation_KeyLocation(b *testing.B) {
	reportAblationSweep(b, keyLocationCells())
}

func keyLocationCells() []ablationCell {
	var cells []ablationCell
	for _, loc := range []anchor.KeyLocation{anchor.KeyInROM, anchor.KeyInFlash} {
		loc := loc
		name := "rom"
		if loc == anchor.KeyInFlash {
			name = "flash"
		}
		cells = append(cells, ablationCell{
			Label: name,
			Run: func(ctx context.Context, st *runner.CellStats) ([]ablationMetric, error) {
				s, err := core.NewScenario(core.ScenarioConfig{
					Freshness:   protocol.FreshCounter,
					Auth:        protocol.AuthHMACSHA1,
					KeyLocation: loc,
					Protection:  anchor.FullProtection(),
				})
				if err != nil {
					return nil, err
				}
				before := s.Dev.M.ActiveCycles
				s.IssueAt(s.K.Now() + sim.Millisecond)
				s.RunUntil(s.K.Now() + 2*sim.Second)
				st.Sim = sim.Duration(s.K.Now())
				if s.V.Accepted != 1 {
					return nil, fmt.Errorf("%s key: attestation failed", name)
				}
				cycles := float64(s.Dev.M.ActiveCycles - before)
				cfg, err := anchor.NormalizeConfig(anchor.Config{
					Freshness:   protocol.FreshCounter,
					KeyLocation: loc,
					AttestKey:   core.DefaultAttestKey,
					Protection:  anchor.FullProtection(),
				})
				if err != nil {
					return nil, err
				}
				rules := anchor.ProtectionRules(cfg)
				return []ablationMetric{
					{"model_ms/attestation", cycles / 24000},
					{"eampu_rules", float64(len(rules))},
				}, nil
			},
		})
	}
	return cells
}

// BenchmarkAblation_SWClockCPUOverhead measures the runtime price of the
// Figure 1b design that the paper's Table 3 does not capture: the SW-clock
// trades silicon (zero dedicated flops) for CPU time — Code_Clock runs on
// every Clock_LSB wrap (every 2.80 s at our 2^26-cycle width). Over a
// 10-minute idle window the duty cycle is measured; it must be far below
// the cost of a single attestation, or the "free" clock would not be free.
func BenchmarkAblation_SWClockCPUOverhead(b *testing.B) {
	var isrCycles float64
	var ticks uint64
	const windowSec = 600
	for i := 0; i < b.N; i++ {
		s, err := core.NewScenario(core.ScenarioConfig{
			Freshness:  protocol.FreshTimestamp,
			Auth:       protocol.AuthHMACSHA1,
			Clock:      anchor.ClockSW,
			Protection: anchor.FullProtection(),
		})
		if err != nil {
			b.Fatal(err)
		}
		before := s.Dev.M.ActiveCycles
		s.RunUntil(s.K.Now() + windowSec*sim.Second)
		isrCycles = float64(s.Dev.M.ActiveCycles - before)
		ticks = s.Dev.A.Stats.ClockTicks
	}
	if ticks < 200 {
		b.Fatalf("only %d wraps in %d s", ticks, windowSec)
	}
	dutyPct := 100 * isrCycles / (windowSec * 24e6)
	if dutyPct > 0.001 {
		b.Fatalf("SW-clock duty cycle %.5f%%, expected ≪0.001%%", dutyPct)
	}
	b.ReportMetric(float64(ticks), "wraps_served")
	b.ReportMetric(isrCycles/float64(ticks), "cycles_per_wrap")
	b.ReportMetric(dutyPct, "duty_pct")
}

// BenchmarkAblation_ArchitectureProfiles compares the three architecture
// profiles end to end: all attest identically; SMART additionally needs no
// MPU programming at boot (static rules), trading flexibility for a
// smaller boot-time trusted computing base.
func BenchmarkAblation_ArchitectureProfiles(b *testing.B) {
	reportAblationSweep(b, architectureProfileCells())
}

func architectureProfileCells() []ablationCell {
	var cells []ablationCell
	for _, p := range []anchor.Profile{anchor.ProfileTrustLite, anchor.ProfileSMART, anchor.ProfileTyTAN} {
		p := p
		cells = append(cells, ablationCell{
			Label: p.String(),
			Run: func(ctx context.Context, st *runner.CellStats) ([]ablationMetric, error) {
				s, err := core.NewScenario(core.ScenarioConfig{
					Profile:    p,
					Freshness:  protocol.FreshCounter,
					Auth:       protocol.AuthHMACSHA1,
					Protection: anchor.FullProtection(),
				})
				if err != nil {
					return nil, err
				}
				bootMs := s.Dev.Boot.Cycles.Millis()
				s.IssueAt(s.K.Now() + sim.Millisecond)
				s.RunUntil(s.K.Now() + 2*sim.Second)
				st.Sim = sim.Duration(s.K.Now())
				if s.V.Accepted != 1 {
					return nil, fmt.Errorf("%v: attestation failed", p)
				}
				return []ablationMetric{
					{"boot_ms", bootMs},
					{"boot_programmed_rules", float64(s0RulesProgrammedAtBoot(p))},
				}, nil
			},
		})
	}
	return cells
}

func s0RulesProgrammedAtBoot(p anchor.Profile) int {
	if p == anchor.ProfileSMART {
		return 0
	}
	cfg, err := anchor.NormalizeConfig(anchor.Config{
		Profile:    p,
		Freshness:  protocol.FreshCounter,
		AttestKey:  core.DefaultAttestKey,
		Protection: anchor.FullProtection(),
	})
	if err != nil {
		return -1
	}
	return len(anchor.ProtectionRules(cfg))
}

// allAblationSweeps enumerates every swept ablation for the determinism
// test below. The two single-cell benchmarks (CounterFlashWear,
// SWClockCPUOverhead) are not sweeps and keep their classic form.
func allAblationSweeps() []struct {
	name  string
	cells []ablationCell
} {
	return []struct {
		name  string
		cells []ablationCell
	}{
		{"MeasurementSize", measurementSizeCells()},
		{"TimestampWindow", timestampWindowCells()},
		{"NonceHistoryCapacity", nonceHistoryCells()},
		{"ClockResolution", clockResolutionCells()},
		{"ChunkedMeasurement", chunkedMeasurementCells()},
		{"DetectionLatencyEnergy", detectionEnergyCells()},
		{"KeyLocation", keyLocationCells()},
		{"ArchitectureProfiles", architectureProfileCells()},
	}
}

// TestAblationSweepsDeterministicAcrossWorkers runs every ablation sweep
// on one worker and on four and demands byte-identical metrics in input
// order. This is the sweeps' validation path under plain `go test ./...`
// (benchmarks only execute under -bench) and the determinism proof for
// running them in parallel.
func TestAblationSweepsDeterministicAcrossWorkers(t *testing.T) {
	for _, sw := range allAblationSweeps() {
		sw := sw
		t.Run(sw.name, func(t *testing.T) {
			t.Parallel()
			serial, _ := runner.Run(context.Background(), sw.cells, runner.Options{Workers: 1})
			parallel, _ := runner.Run(context.Background(), sw.cells, runner.Options{Workers: 4})
			sVals, err := runner.Values(serial)
			if err != nil {
				t.Fatal(err)
			}
			pVals, err := runner.Values(parallel)
			if err != nil {
				t.Fatal(err)
			}
			sb, pb := fmt.Sprintf("%#v", sVals), fmt.Sprintf("%#v", pVals)
			if sb != pb {
				t.Fatalf("parallel sweep diverged from serial:\n serial:   %s\n parallel: %s", sb, pb)
			}
			for i, res := range parallel {
				if res.Index != i || res.Label != sw.cells[i].Label {
					t.Fatalf("result %d out of input order: %+v", i, res)
				}
			}
		})
	}
}
