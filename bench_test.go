// Package proverattest_test is the benchmark harness: one benchmark per
// table, figure and numbered result in the paper's evaluation. Host ns/op
// is incidental (the substrate is a simulator); the reproduced quantities
// are emitted as custom metrics — modeled milliseconds on the 24 MHz
// prover, mitigation counts, hardware overhead percentages — so
// `go test -bench . -benchmem` regenerates every number next to the
// paper's value (recorded in EXPERIMENTS.md).
package proverattest_test

import (
	"bytes"
	"testing"

	"proverattest/internal/anchor"
	"proverattest/internal/core"
	"proverattest/internal/crypto/aes"
	"proverattest/internal/crypto/cost"
	"proverattest/internal/crypto/ecc"
	"proverattest/internal/crypto/hmac"
	"proverattest/internal/crypto/speck"
	"proverattest/internal/hwcost"
	"proverattest/internal/modelcheck"
	"proverattest/internal/protocol"
	"proverattest/internal/sim"
)

// ---------------------------------------------------------------- Table 1

// BenchmarkTable1_SHA1HMAC runs the real HMAC-SHA1 over one 64-byte block
// and reports the modeled prover latency (paper: 0.340 + 0.092 ms).
func BenchmarkTable1_SHA1HMAC(b *testing.B) {
	key := bytes.Repeat([]byte{0x4b}, 20)
	msg := make([]byte, 64)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		hmac.SHA1(key, msg)
	}
	b.ReportMetric(cost.HMACSHA1(64).Millis(), "model_ms/op")
	b.ReportMetric(0.340+0.092, "paper_ms/op")
}

// BenchmarkTable1_AES128CBC_Encrypt covers the AES-128 CBC encrypt row
// (paper: 0.288 ms per 16-byte block, key expansion 0.074 ms).
func BenchmarkTable1_AES128CBC_Encrypt(b *testing.B) {
	c, err := aes.New(make([]byte, 16))
	if err != nil {
		b.Fatal(err)
	}
	iv := make([]byte, 16)
	blk := make([]byte, 16)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		if _, err := c.EncryptCBC(iv, blk); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cost.AESEncryptBlock.Millis(), "model_ms/block")
	b.ReportMetric(0.288, "paper_ms/block")
}

// BenchmarkTable1_AES128CBC_Decrypt covers the AES decrypt row (0.570 ms).
func BenchmarkTable1_AES128CBC_Decrypt(b *testing.B) {
	c, err := aes.New(make([]byte, 16))
	if err != nil {
		b.Fatal(err)
	}
	iv := make([]byte, 16)
	blk := make([]byte, 16)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		if _, err := c.DecryptCBC(iv, blk); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cost.AESDecryptBlock.Millis(), "model_ms/block")
	b.ReportMetric(0.570, "paper_ms/block")
}

// BenchmarkTable1_Speck64128CBC covers the Speck rows (0.017/0.015 ms per
// 8-byte block, key expansion 0.016 ms).
func BenchmarkTable1_Speck64128CBC(b *testing.B) {
	c, err := speck.New(make([]byte, 16))
	if err != nil {
		b.Fatal(err)
	}
	iv := make([]byte, 8)
	blk := make([]byte, 8)
	b.SetBytes(8)
	for i := 0; i < b.N; i++ {
		if _, err := c.EncryptCBC(iv, blk); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cost.SpeckEncryptBlock.Millis(), "model_ms/block")
	b.ReportMetric(0.017, "paper_ms/block")
}

// BenchmarkTable1_ECDSASign covers the ECC sign row (183.464 ms).
func BenchmarkTable1_ECDSASign(b *testing.B) {
	key, err := ecc.GenerateKey([]byte("bench"))
	if err != nil {
		b.Fatal(err)
	}
	msg := []byte("attestation request")
	for i := 0; i < b.N; i++ {
		if _, err := ecc.Sign(key, msg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cost.ECDSASign.Millis(), "model_ms/op")
	b.ReportMetric(183.464, "paper_ms/op")
}

// BenchmarkTable1_ECDSAVerify covers the ECC verify row (170.907 ms).
func BenchmarkTable1_ECDSAVerify(b *testing.B) {
	key, err := ecc.GenerateKey([]byte("bench"))
	if err != nil {
		b.Fatal(err)
	}
	msg := []byte("attestation request")
	sig, err := ecc.Sign(key, msg)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if !ecc.Verify(key.Public, msg, sig) {
			b.Fatal("verification failed")
		}
	}
	b.ReportMetric(cost.ECDSAVerify.Millis(), "model_ms/op")
	b.ReportMetric(170.907, "paper_ms/op")
}

// ------------------------------------------------------------ Section 3.1

// BenchmarkSection3_1_MemoryMAC performs the full attestation measurement
// (request parse + auth + HMAC over 512 KB RAM) end to end on the
// simulated prover and reports the modeled prover time (paper: 754.032 ms).
func BenchmarkSection3_1_MemoryMAC(b *testing.B) {
	var modeled float64
	for i := 0; i < b.N; i++ {
		s, err := core.NewScenario(core.ScenarioConfig{
			Freshness:  protocol.FreshNone,
			Auth:       protocol.AuthNone,
			Protection: anchor.FullProtection(),
		})
		if err != nil {
			b.Fatal(err)
		}
		before := s.Dev.M.ActiveCycles
		s.IssueAt(s.K.Now() + sim.Millisecond)
		s.RunUntil(s.K.Now() + 2*sim.Second)
		if s.Measurements() != 1 {
			b.Fatal("measurement did not run")
		}
		modeled = (s.Dev.M.ActiveCycles - before).Millis()
	}
	b.ReportMetric(modeled, "model_ms/attestation")
	b.ReportMetric(754.032, "paper_ms/attestation")
}

// ------------------------------------------------------------ Section 4.1

// BenchmarkSection4_1_RequestAuth measures the prover-side cost of
// rejecting one forged request under each authentication scheme — the
// quantity that decides whether authentication itself is a DoS vector.
func BenchmarkSection4_1_RequestAuth(b *testing.B) {
	for _, kind := range []protocol.AuthKind{
		protocol.AuthHMACSHA1, protocol.AuthAESCBCMAC,
		protocol.AuthSpeckCBCMAC, protocol.AuthECDSA,
	} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			var modeled float64
			for i := 0; i < b.N; i++ {
				res, err := core.RunFloodExperiment(kind, 10, 10*sim.Second)
				if err != nil {
					b.Fatal(err)
				}
				if res.Measurements != 0 {
					b.Fatal("forged request measured")
				}
				modeled = float64(res.ActiveCycles-res.BootCycles) / float64(res.AuthRejected) / cost.CyclesPerMilli
			}
			b.ReportMetric(modeled, "model_ms/reject")
		})
	}
}

// ---------------------------------------------------------------- Table 2

// BenchmarkTable2_AttackMatrix regenerates the full attack × freshness
// matrix by live simulation and reports how many of the nine cells agree
// with the paper (must be 9).
func BenchmarkTable2_AttackMatrix(b *testing.B) {
	var agree int
	for i := 0; i < b.N; i++ {
		results, err := core.RunMatrix()
		if err != nil {
			b.Fatal(err)
		}
		agree = 0
		for _, r := range results {
			if r.Mitigated == core.PaperTable2[r.Attack][r.Freshness] {
				agree++
			}
		}
	}
	if agree != 9 {
		b.Fatalf("only %d/9 cells match the paper", agree)
	}
	b.ReportMetric(float64(agree), "cells_matching_paper")
}

// BenchmarkTable2_ModelChecked verifies Table 2 a second, independent way:
// exhaustive bounded exploration of every adversary schedule (replay,
// reorder and delay emerge from the Dolev-Yao action set rather than being
// scripted). All nine verdicts must match the paper.
func BenchmarkTable2_ModelChecked(b *testing.B) {
	var states int
	var agree int
	for i := 0; i < b.N; i++ {
		verdicts, n, err := modelcheck.Table2Verdicts(modelcheck.DefaultBounds())
		if err != nil {
			b.Fatal(err)
		}
		states = n
		agree = 0
		expected := map[string]map[modelcheck.Scheme]bool{
			"replay":  {modelcheck.SchemeNonceHistory: true, modelcheck.SchemeCounter: true, modelcheck.SchemeTimestamp: true},
			"reorder": {modelcheck.SchemeNonceHistory: false, modelcheck.SchemeCounter: true, modelcheck.SchemeTimestamp: true},
			"delay":   {modelcheck.SchemeNonceHistory: false, modelcheck.SchemeCounter: false, modelcheck.SchemeTimestamp: true},
		}
		for attack, row := range expected {
			for scheme, want := range row {
				if verdicts[attack][scheme] == want {
					agree++
				}
			}
		}
	}
	if agree != 9 {
		b.Fatalf("only %d/9 model-checked cells match the paper", agree)
	}
	b.ReportMetric(float64(states), "states_explored")
	b.ReportMetric(float64(agree), "cells_matching_paper")
}

// ------------------------------------------------------------- Section 5

// BenchmarkSection5_RoamingMatrix runs every Adv_roam campaign against
// protected and unprotected provers; the expected pattern (attack succeeds
// iff unprotected) must hold in all 16 runs.
func BenchmarkSection5_RoamingMatrix(b *testing.B) {
	var asExpected int
	for i := 0; i < b.N; i++ {
		asExpected = 0
		for _, target := range core.AllRoamTargets {
			for _, protected := range []bool{false, true} {
				res, err := core.RunRoamingCampaign(target, protected)
				if err != nil {
					b.Fatal(err)
				}
				if res.AttackSucceeded == !protected {
					asExpected++
				}
			}
		}
	}
	if asExpected != 16 {
		b.Fatalf("only %d/16 campaigns behaved as the paper predicts", asExpected)
	}
	b.ReportMetric(float64(asExpected), "campaigns_as_predicted")
}

// -------------------------------------------------------------- Figure 1

// BenchmarkFigure1a_BaseConfig exercises the base mitigation design: wide
// 64-bit hardware clock, K_Attest + counter_R + clock under locked EA-MPU
// rules; ten timestamped attestation rounds must all succeed.
func BenchmarkFigure1a_BaseConfig(b *testing.B) {
	var accepted uint64
	for i := 0; i < b.N; i++ {
		s, err := core.NewScenario(core.ScenarioConfig{
			Freshness:         protocol.FreshTimestamp,
			Auth:              protocol.AuthHMACSHA1,
			Clock:             anchor.ClockWide64,
			TimestampWindowMs: 1000,
			Protection:        anchor.FullProtection(),
		})
		if err != nil {
			b.Fatal(err)
		}
		s.IssueEvery(2*sim.Second, 2*sim.Second, 10)
		s.RunUntil(30 * sim.Second)
		accepted = s.V.Accepted
	}
	if accepted != 10 {
		b.Fatalf("accepted %d/10 rounds", accepted)
	}
	b.ReportMetric(float64(accepted), "rounds_accepted")
}

// BenchmarkFigure1b_AdvancedConfig exercises the SW-clock design across
// many Clock_LSB wrap-arounds (one every 2.80 s): Code_Clock must keep
// Clock_MSB current so timestamped rounds keep verifying.
func BenchmarkFigure1b_AdvancedConfig(b *testing.B) {
	var accepted, ticks uint64
	for i := 0; i < b.N; i++ {
		s, err := core.NewScenario(core.ScenarioConfig{
			Freshness:         protocol.FreshTimestamp,
			Auth:              protocol.AuthHMACSHA1,
			Clock:             anchor.ClockSW,
			TimestampWindowMs: 1000,
			Protection:        anchor.FullProtection(),
		})
		if err != nil {
			b.Fatal(err)
		}
		s.IssueEvery(5*sim.Second, 5*sim.Second, 12)
		s.RunUntil(70 * sim.Second)
		accepted = s.V.Accepted
		ticks = s.Dev.A.Stats.ClockTicks
	}
	if accepted != 12 {
		b.Fatalf("accepted %d/12 rounds", accepted)
	}
	if ticks < 20 {
		b.Fatalf("Code_Clock ran only %d times across 70 s", ticks)
	}
	b.ReportMetric(float64(accepted), "rounds_accepted")
	b.ReportMetric(float64(ticks), "clock_wraps_served")
}

// ---------------------------------------------------------------- Table 3

// BenchmarkTable3_HardwareCost evaluates the additive area model for every
// configuration and reports the baseline totals (paper: 6038 / 15142).
func BenchmarkTable3_HardwareCost(b *testing.B) {
	var base hwcost.Cost
	for i := 0; i < b.N; i++ {
		base = hwcost.Baseline().Total()
		for _, cfg := range hwcost.AllConfigs() {
			_ = cfg.Total()
		}
	}
	b.ReportMetric(float64(base.Registers), "baseline_registers")
	b.ReportMetric(float64(base.LUTs), "baseline_LUTs")
}

// ------------------------------------------------------------ Section 6.3

// BenchmarkSection6_3_Overhead reports each clock design's register and
// LUT overhead percentages (paper: 2.98/1.62, 2.45/1.41, 5.76/3.61).
func BenchmarkSection6_3_Overhead(b *testing.B) {
	configs := hwcost.AllConfigs()[1:]
	var ovh []hwcost.Overhead
	for i := 0; i < b.N; i++ {
		ovh = ovh[:0]
		for _, cfg := range configs {
			ovh = append(ovh, hwcost.OverheadVsBaseline(cfg))
		}
	}
	b.ReportMetric(ovh[0].RegisterPercent, "clock64_reg_pct")
	b.ReportMetric(ovh[0].LUTPercent, "clock64_lut_pct")
	b.ReportMetric(ovh[1].RegisterPercent, "clock32_reg_pct")
	b.ReportMetric(ovh[1].LUTPercent, "clock32_lut_pct")
	b.ReportMetric(ovh[2].RegisterPercent, "swclock_reg_pct")
	b.ReportMetric(ovh[2].LUTPercent, "swclock_lut_pct")
}

// -------------------------------------------------------------- Extensions

// BenchmarkExtension_BatteryDoS quantifies the motivation experiment: the
// coin-cell lifetime ratio between an authenticated and an unauthenticated
// prover under a 10 req/s forged-request flood.
func BenchmarkExtension_BatteryDoS(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		open, err := core.RunFloodExperiment(protocol.AuthNone, 10, 30*sim.Second)
		if err != nil {
			b.Fatal(err)
		}
		auth, err := core.RunFloodExperiment(protocol.AuthSpeckCBCMAC, 10, 30*sim.Second)
		if err != nil {
			b.Fatal(err)
		}
		ratio = auth.LifetimeDays / open.LifetimeDays
	}
	if ratio < 50 {
		b.Fatalf("lifetime improvement only %.1f×, expected ≫50×", ratio)
	}
	b.ReportMetric(ratio, "lifetime_improvement_x")
}

// BenchmarkExtension_IoTFleet deploys a 12-prover fleet (the paper's
// future-work item 1) with a quarter of the devices under forged-request
// flood and reports the per-device energy asymmetry the adversary induces
// when requests are not authenticated.
func BenchmarkExtension_IoTFleet(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		report, err := core.RunFleetExperiment(12, 3, protocol.AuthNone, 10,
			60*sim.Second, 5*sim.Minute)
		if err != nil {
			b.Fatal(err)
		}
		gap = report.FloodedEnergyJ / report.HealthyEnergyJ
	}
	if gap < 20 {
		b.Fatalf("flooded/healthy energy gap %.1f×, expected ≥20×", gap)
	}
	b.ReportMetric(gap, "flooded_vs_healthy_energy_x")
}

// BenchmarkExtension_PrimaryTaskStarvation measures how badly a forged-
// request flood delays the prover's primary task (a ≈1 ms SP16 sensor
// program every 100 ms): the paper's "takes Prv away from performing its
// primary tasks", in worst-case latency.
func BenchmarkExtension_PrimaryTaskStarvation(b *testing.B) {
	var openLatencyMs, authLatencyMs float64
	for i := 0; i < b.N; i++ {
		open, err := core.RunStarvationExperiment(protocol.AuthNone, 10,
			100*sim.Millisecond, 20*sim.Second)
		if err != nil {
			b.Fatal(err)
		}
		auth, err := core.RunStarvationExperiment(protocol.AuthHMACSHA1, 10,
			100*sim.Millisecond, 20*sim.Second)
		if err != nil {
			b.Fatal(err)
		}
		openLatencyMs = open.WorstLatency.Milliseconds()
		authLatencyMs = auth.WorstLatency.Milliseconds()
	}
	if openLatencyMs < 100*authLatencyMs {
		b.Fatalf("starvation contrast too small: %.1f ms vs %.1f ms", openLatencyMs, authLatencyMs)
	}
	b.ReportMetric(openLatencyMs, "worst_sensor_latency_ms_noauth")
	b.ReportMetric(authLatencyMs, "worst_sensor_latency_ms_hmac")
}

// BenchmarkExtension_ClockDrift sweeps verifier clock offsets against the
// timestamp policy (window 1000 ms, skew 100 ms) and reports the width of
// the acceptance band — the synchronisation requirement the paper defers
// to future work.
func BenchmarkExtension_ClockDrift(b *testing.B) {
	offsets := []int64{-2000, -1000, -500, -100, 0, 50, 100, 500, 2000}
	var acceptedBand int
	for i := 0; i < b.N; i++ {
		results, err := core.RunDriftSweep(offsets, 1000, 100)
		if err != nil {
			b.Fatal(err)
		}
		acceptedBand = 0
		for _, r := range results {
			if r.Accepted {
				acceptedBand++
			}
		}
	}
	b.ReportMetric(float64(acceptedBand), "offsets_accepted")
	b.ReportMetric(float64(len(offsets)), "offsets_swept")
}
