// Command attack-sim runs the paper's attack campaigns end to end and
// reports observed outcomes: the Adv_ext freshness matrix (Table 2), the
// Adv_roam three-phase campaigns of §5 against protected and unprotected
// provers, and the request-flood energy experiment behind §3.1.
//
// Every campaign is a set of independent simulation cells, so they execute
// on the parallel campaign runner; -parallel bounds the worker pool
// (default: all cores) and each campaign prints the runner's wall-clock
// stats next to its table.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"proverattest/internal/core"
	"proverattest/internal/protocol"
	"proverattest/internal/runner"
	"proverattest/internal/sim"
)

func main() {
	log.SetFlags(0)
	var (
		matrix   = flag.Bool("matrix", false, "run the Adv_ext attack x freshness matrix (Table 2)")
		roam     = flag.Bool("roam", false, "run the Adv_roam campaigns (Section 5)")
		flood    = flag.Bool("flood", false, "run the request-flood energy experiment (Section 3.1)")
		fleet    = flag.Bool("fleet", false, "run the IoT fleet deployment (future-work 1)")
		rate     = flag.Float64("rate", 10, "flood rate in requests/second")
		secs     = flag.Int("seconds", 30, "flood duration in simulated seconds")
		parallel = flag.Int("parallel", 0, "campaign-runner workers (<=0: all cores, 1: serial)")
	)
	flag.Parse()
	if !*matrix && !*roam && !*flood && !*fleet {
		*matrix, *roam, *flood, *fleet = true, true, true, true
	}
	ctx := context.Background()

	if *matrix {
		if err := runMatrix(ctx, *parallel); err != nil {
			log.Fatalf("attack-sim: matrix: %v", err)
		}
	}
	if *roam {
		if err := runRoaming(ctx, *parallel); err != nil {
			log.Fatalf("attack-sim: roaming: %v", err)
		}
	}
	if *flood {
		if err := runFlood(ctx, *parallel, *rate, *secs); err != nil {
			log.Fatalf("attack-sim: flood: %v", err)
		}
	}
	if *fleet {
		if err := runFleet(ctx, *parallel, *rate); err != nil {
			log.Fatalf("attack-sim: fleet: %v", err)
		}
	}
}

func printStats(stats runner.CampaignStats) {
	fmt.Printf("campaign: %v\n\n", stats)
}

func runFleet(ctx context.Context, workers int, rate float64) error {
	fmt.Printf("=== IoT fleet: 12 provers, 3 flooded at %.0f req/s, 10 simulated minutes ===\n", rate)
	fmt.Printf("%-22s %10s %12s %14s %14s %12s\n",
		"request auth", "genuine ok", "measurements", "flooded J/dev", "healthy J/dev", "chan drops")
	points := []core.FleetSweepPoint{
		{Auth: protocol.AuthNone, RatePerSec: rate},
		{Auth: protocol.AuthHMACSHA1, RatePerSec: rate},
	}
	reports, stats, err := core.RunFleetSweep(ctx, workers, points, 12, 3, 60*sim.Second, 10*sim.Minute)
	if err != nil {
		return err
	}
	for i, report := range reports {
		fmt.Printf("%-22s %10d %12d %14.3f %14.3f %6d/%-5d\n",
			points[i].Auth, report.GenuineOK, report.Measurements,
			report.FloodedEnergyJ, report.HealthyEnergyJ,
			report.TapDropped, report.Undeliverable)
	}
	printStats(stats)
	return nil
}

func runMatrix(ctx context.Context, workers int) error {
	fmt.Println("=== Adv_ext: attack x freshness matrix (Table 2) ===")
	results, stats, err := core.RunMatrixParallel(ctx, workers)
	if err != nil {
		return err
	}
	for _, r := range results {
		verdict := "MITIGATED"
		if !r.Mitigated {
			verdict = "ATTACK SUCCEEDED"
		}
		agree := "matches paper"
		if r.Mitigated != core.PaperTable2[r.Attack][r.Freshness] {
			agree = "DISAGREES WITH PAPER"
		}
		fmt.Printf("%-8s x %-11s: %-17s (%d measurements, honest baseline %d) [%s]\n",
			r.Attack, r.Freshness, verdict, r.Measurements, r.HonestMeasurements, agree)
	}
	printStats(stats)
	return nil
}

func runRoaming(ctx context.Context, workers int) error {
	fmt.Println("=== Adv_roam: three-phase campaigns (Section 5) ===")
	results, stats, err := core.RunRoamingMatrix(ctx, workers)
	if err != nil {
		return err
	}
	for _, res := range results {
		mode := "UNPROTECTED"
		if res.Protected {
			mode = "protected  "
		}
		verdict := "attack failed"
		if res.AttackSucceeded {
			verdict = "ATTACK SUCCEEDED"
		}
		fmt.Printf("%-22s [%s]: %-16s", res.Target, mode, verdict)
		if res.AttackSucceeded && res.CounterRestored && res.Target == core.RoamCounter {
			fmt.Printf("  (counter restored -> undetectable)")
		}
		if res.ClockBehindMs > 1000 {
			fmt.Printf("  (prover clock left %d ms behind)", res.ClockBehindMs)
		}
		fmt.Println()
		for _, o := range res.TamperOutcomes {
			fmt.Printf("    phase II: %s\n", o)
		}
	}
	printStats(stats)
	return nil
}

func runFlood(ctx context.Context, workers int, rate float64, secs int) error {
	fmt.Printf("=== Verifier-impersonation flood: %.0f req/s for %d s (Section 3.1) ===\n", rate, secs)
	fmt.Printf("%-22s %8s %8s %8s %9s %10s %12s\n",
		"request auth", "injected", "measure", "rejectd", "duty%", "energy J", "battery days")
	auths := []protocol.AuthKind{
		protocol.AuthNone, protocol.AuthSpeckCBCMAC, protocol.AuthAESCBCMAC,
		protocol.AuthHMACSHA1, protocol.AuthECDSA,
	}
	results, stats, err := core.RunFloodSweep(ctx, workers, auths, rate, sim.Duration(secs)*sim.Second)
	if err != nil {
		return err
	}
	for _, res := range results {
		fmt.Printf("%-22s %8d %8d %8d %8.2f%% %10.4f %12.1f\n",
			res.Auth, res.Injected, res.Measurements, res.AuthRejected,
			res.DutyCyclePct, res.EnergyJoules, res.LifetimeDays)
	}
	printStats(stats)
	return nil
}
