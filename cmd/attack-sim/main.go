// Command attack-sim runs the paper's attack campaigns end to end and
// reports observed outcomes: the Adv_ext freshness matrix (Table 2), the
// Adv_roam three-phase campaigns of §5 against protected and unprotected
// provers, and the request-flood energy experiment behind §3.1.
package main

import (
	"flag"
	"fmt"
	"log"

	"proverattest/internal/core"
	"proverattest/internal/protocol"
	"proverattest/internal/sim"
)

func main() {
	log.SetFlags(0)
	var (
		matrix = flag.Bool("matrix", false, "run the Adv_ext attack x freshness matrix (Table 2)")
		roam   = flag.Bool("roam", false, "run the Adv_roam campaigns (Section 5)")
		flood  = flag.Bool("flood", false, "run the request-flood energy experiment (Section 3.1)")
		fleet  = flag.Bool("fleet", false, "run the IoT fleet deployment (future-work 1)")
		rate   = flag.Float64("rate", 10, "flood rate in requests/second")
		secs   = flag.Int("seconds", 30, "flood duration in simulated seconds")
	)
	flag.Parse()
	if !*matrix && !*roam && !*flood && !*fleet {
		*matrix, *roam, *flood, *fleet = true, true, true, true
	}

	if *matrix {
		if err := runMatrix(); err != nil {
			log.Fatalf("attack-sim: matrix: %v", err)
		}
	}
	if *roam {
		if err := runRoaming(); err != nil {
			log.Fatalf("attack-sim: roaming: %v", err)
		}
	}
	if *flood {
		if err := runFlood(*rate, *secs); err != nil {
			log.Fatalf("attack-sim: flood: %v", err)
		}
	}
	if *fleet {
		if err := runFleet(*rate); err != nil {
			log.Fatalf("attack-sim: fleet: %v", err)
		}
	}
}

func runFleet(rate float64) error {
	fmt.Printf("=== IoT fleet: 12 provers, 3 flooded at %.0f req/s, 10 simulated minutes ===\n", rate)
	fmt.Printf("%-22s %10s %12s %14s %14s\n",
		"request auth", "genuine ok", "measurements", "flooded J/dev", "healthy J/dev")
	for _, kind := range []protocol.AuthKind{protocol.AuthNone, protocol.AuthHMACSHA1} {
		report, err := core.RunFleetExperiment(12, 3, kind, rate, 60*sim.Second, 10*sim.Minute)
		if err != nil {
			return err
		}
		fmt.Printf("%-22s %10d %12d %14.3f %14.3f\n",
			kind, report.GenuineOK, report.Measurements,
			report.FloodedEnergyJ, report.HealthyEnergyJ)
	}
	fmt.Println()
	return nil
}

func runMatrix() error {
	fmt.Println("=== Adv_ext: attack x freshness matrix (Table 2) ===")
	results, err := core.RunMatrix()
	if err != nil {
		return err
	}
	for _, r := range results {
		verdict := "MITIGATED"
		if !r.Mitigated {
			verdict = "ATTACK SUCCEEDED"
		}
		agree := "matches paper"
		if r.Mitigated != core.PaperTable2[r.Attack][r.Freshness] {
			agree = "DISAGREES WITH PAPER"
		}
		fmt.Printf("%-8s x %-11s: %-17s (%d measurements, honest baseline %d) [%s]\n",
			r.Attack, r.Freshness, verdict, r.Measurements, r.HonestMeasurements, agree)
	}
	fmt.Println()
	return nil
}

func runRoaming() error {
	fmt.Println("=== Adv_roam: three-phase campaigns (Section 5) ===")
	for _, target := range core.AllRoamTargets {
		for _, protected := range []bool{false, true} {
			res, err := core.RunRoamingCampaign(target, protected)
			if err != nil {
				return fmt.Errorf("%v: %w", target, err)
			}
			mode := "UNPROTECTED"
			if protected {
				mode = "protected  "
			}
			verdict := "attack failed"
			if res.AttackSucceeded {
				verdict = "ATTACK SUCCEEDED"
			}
			fmt.Printf("%-22s [%s]: %-16s", target, mode, verdict)
			if res.AttackSucceeded && res.CounterRestored && target == core.RoamCounter {
				fmt.Printf("  (counter restored -> undetectable)")
			}
			if res.ClockBehindMs > 1000 {
				fmt.Printf("  (prover clock left %d ms behind)", res.ClockBehindMs)
			}
			fmt.Println()
			for _, o := range res.TamperOutcomes {
				fmt.Printf("    phase II: %s\n", o)
			}
		}
	}
	fmt.Println()
	return nil
}

func runFlood(rate float64, secs int) error {
	fmt.Printf("=== Verifier-impersonation flood: %.0f req/s for %d s (Section 3.1) ===\n", rate, secs)
	fmt.Printf("%-22s %8s %8s %8s %9s %10s %12s\n",
		"request auth", "injected", "measure", "rejectd", "duty%", "energy J", "battery days")
	for _, kind := range []protocol.AuthKind{
		protocol.AuthNone, protocol.AuthSpeckCBCMAC, protocol.AuthAESCBCMAC,
		protocol.AuthHMACSHA1, protocol.AuthECDSA,
	} {
		res, err := core.RunFloodExperiment(kind, rate, sim.Duration(secs)*sim.Second)
		if err != nil {
			return fmt.Errorf("%v: %w", kind, err)
		}
		fmt.Printf("%-22s %8d %8d %8d %8.2f%% %10.4f %12.1f\n",
			kind, res.Injected, res.Measurements, res.AuthRejected,
			res.DutyCyclePct, res.EnergyJoules, res.LifetimeDays)
	}
	fmt.Println()
	return nil
}
