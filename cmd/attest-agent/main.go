// Command attest-agent runs one simulated prover as a networked agent: it
// builds the device (MCU + trust anchor + secure boot), dials the
// verifier daemon (cmd/attestd) and then serves attestation requests over
// the socket. Every inbound frame goes through the anchor's gate — frames
// that fail authentication or freshness are dropped after the cheap
// check, so a socket-level flood cannot buy memory measurements.
//
//	attest-agent -connect 127.0.0.1:7950 -id sensor-17 -master fleet-secret
//
// The -id, -freshness, -auth and -master flags must match the daemon's
// provisioning; the daemon refuses mismatched hellos.
//
// With -reconnect the agent runs supervised: a dropped or refused
// connection is retried with capped exponential backoff (tunable via
// -backoff-base/-backoff-max), and the device state — gate counters,
// freshness counter, derived keys — persists across sessions so the
// daemon sees one continuous device, not a reboot.
//
// -connect accepts a comma-separated address list for clustered daemons
// (attestd -node): the agent may dial any member and an ownership
// redirect routes it to the daemon that owns its device. One-shot mode
// follows a single redirect; -reconnect rotates the list and follows
// redirects for as long as it runs.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"proverattest/internal/agent"
	"proverattest/internal/obs"
	"proverattest/internal/protocol"
)

func main() {
	log.SetFlags(0)
	var (
		connect   = flag.String("connect", "127.0.0.1:7950", "daemon address to dial; comma-separated list for a cluster (any member, redirects route to the owner)")
		deviceID  = flag.String("id", "agent-0", "device identity reported in the hello")
		tier      = flag.Int("tier", 0, "admission-tier class advertised in the hello (0 = unclassified; the daemon's ID rules win)")
		freshName = flag.String("freshness", "counter", "freshness policy: none | nonces | counter")
		authName  = flag.String("auth", "hmac-sha1", "request auth: none | hmac-sha1 | aes-128-cbc-mac | speck-64/128-cbc-mac | ecdsa-secp160r1")
		master    = flag.String("master", "proverattest-fleet-master", "master secret for key derivation (must match the daemon)")
		services  = flag.Bool("services", false, "install the secure-update/erase/clock-sync services behind the gate")
		fastPath  = flag.Bool("fastpath", false, "install the write monitor so a clean device answers O(1) fast-path requests")
		statsMs   = flag.Duration("stats-every", 250*time.Millisecond, "gate-counter heartbeat period")

		reconnect   = flag.Bool("reconnect", false, "supervise the session: redial with capped exponential backoff instead of exiting on connection loss")
		backoffBase = flag.Duration("backoff-base", 100*time.Millisecond, "first reconnect delay (with -reconnect)")
		backoffMax  = flag.Duration("backoff-max", 30*time.Second, "reconnect delay cap (with -reconnect)")

		metricsAddr = flag.String("metrics", "", "serve Prometheus /metrics on this address, e.g. localhost:9151 (empty = off)")
	)
	flag.Parse()

	fresh, err := protocol.ParseFreshnessKind(*freshName)
	if err != nil {
		log.Fatalf("attest-agent: %v", err)
	}
	auth, err := protocol.ParseAuthKind(*authName)
	if err != nil {
		log.Fatalf("attest-agent: %v", err)
	}
	reg := obs.New()
	a, err := agent.New(agent.Config{
		DeviceID:       *deviceID,
		Tier:           uint8(*tier),
		Freshness:      fresh,
		Auth:           auth,
		MasterSecret:   []byte(*master),
		FastPath:       *fastPath,
		EnableServices: *services,
		StatsEvery:     *statsMs,
		Metrics:        reg,
	})
	if err != nil {
		log.Fatalf("attest-agent: %v", err)
	}

	// Local scrape endpoint: the same gate counters the agent heartbeats
	// to the daemon, readable without the daemon in the loop.
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.Handler(reg))
		go func() {
			log.Printf("attest-agent: metrics on http://%s/metrics", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				log.Printf("attest-agent: metrics server: %v", err)
			}
		}()
	}

	ctx, cancel := context.WithCancel(context.Background())
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		cancel()
	}()

	addrs := strings.Split(*connect, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}
	if *reconnect {
		log.Printf("attest-agent: %s serving %s supervised (freshness=%v auth=%v backoff=%v..%v)",
			*deviceID, *connect, fresh, auth, *backoffBase, *backoffMax)
		err = a.RunAddrs(ctx, addrs, agent.Backoff{
			Base:   *backoffBase,
			Max:    *backoffMax,
			Jitter: 0.2,
		})
	} else {
		nc, dialErr := net.Dial("tcp", addrs[0])
		if dialErr != nil {
			log.Fatalf("attest-agent: %v", dialErr)
		}
		log.Printf("attest-agent: %s serving %s (freshness=%v auth=%v)", *deviceID, addrs[0], fresh, auth)
		err = a.Serve(ctx, nc)
		// A clustered daemon that doesn't own the device answers the hello
		// with its owner's address; one-shot mode follows it once.
		var re *agent.RedirectError
		if errors.As(err, &re) {
			log.Printf("attest-agent: %s redirected to owner %s (%s)", *deviceID, re.Owner, re.Addr)
			nc, dialErr = net.Dial("tcp", re.Addr)
			if dialErr != nil {
				log.Fatalf("attest-agent: %v", dialErr)
			}
			err = a.Serve(ctx, nc)
		}
	}
	st := a.Snapshot()
	log.Printf("attest-agent: %s done: received=%d measured=%d fast=%d gate-rejected=%d (auth=%d fresh=%d malformed=%d)",
		*deviceID, st.Received, st.Measurements, st.FastResponses, st.GateRejected(),
		st.AuthRejected, st.FreshnessRejected, st.Malformed)
	if err != nil && !errors.Is(err, context.Canceled) {
		log.Fatalf("attest-agent: %v", err)
	}
}
