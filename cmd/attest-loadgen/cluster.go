package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"proverattest/internal/agent"
	"proverattest/internal/cluster"
	"proverattest/internal/core"
	"proverattest/internal/protocol"
	"proverattest/internal/server"
	"proverattest/internal/transport"
)

// Cluster mode (-cluster) benches horizontal verifier scaling: a ladder of
// 1 → 2 → 4 in-process daemons sharing one consistent-hash ring, each
// daemon given the same admission budget (-daemon-rate frames/s,
// server.Config.MaxRatePerSec) and each driven past it (×1.5) by
// adversarial flooders targeting devices the ring assigns to that daemon.
// The read-out is the cluster's sustained admitted frames/s per rung —
// frames that passed both rate gates and reached the serving path — and
// the scaling ratios rate(2)/rate(1) and rate(4)/rate(1). Because device
// ownership is disjoint, admission capacity adds: near-linear ratios are
// the tentpole claim, and -min-scale-2/-min-scale-4 turn them into hard
// gates.
//
// Every rung also runs one authentic prover per daemon (supervised via
// RunAddrs, so cluster redirects route it to its owner); any device-side
// freshness rejection fails the run. After the ladder a failover drill
// kills one of three daemons mid-traffic and requires the survivors to
// adopt its devices from replicas with zero freshness regressions.

type benchClusterRung struct {
	Daemons     int     `json:"daemons"`
	DurationSec float64 `json:"duration_sec"`

	// Daemon-side admission accounting, summed across the rung's daemons
	// over the flood window. Admitted = FramesIn − RateLimited −
	// DaemonRateLimited: the frames that got budget and were served
	// (mostly into the gate-reject path — the traffic is adversarial).
	FramesIn             uint64  `json:"frames_in"`
	RateLimited          uint64  `json:"rate_limited"`
	DaemonRateLimited    uint64  `json:"daemon_rate_limited"`
	AdmittedFrames       uint64  `json:"admitted_frames"`
	AdmittedFramesPerSec float64 `json:"admitted_frames_per_sec"`

	FloodFramesSent  int64  `json:"flood_frames_sent"`
	Accepted         uint64 `json:"responses_accepted"`
	Redirects        uint64 `json:"redirects"`
	FreshnessRejects uint64 `json:"device_freshness_rejects"`
}

type benchCluster struct {
	Bench     string `json:"bench"`
	Freshness string `json:"freshness"`
	Auth      string `json:"auth"`
	Transport string `json:"transport"`

	PerDaemonBudget float64 `json:"per_daemon_budget_frames_per_sec"`
	FloodFactor     float64 `json:"flood_factor"`

	Rungs     []benchClusterRung `json:"rungs"`
	Scaling2x float64            `json:"scaling_2x"`
	Scaling4x float64            `json:"scaling_4x"`

	// Failover drill: three daemons, one killed mid-run.
	FailoverDaemons          int    `json:"failover_daemons"`
	FailoverDevices          int    `json:"failover_devices"`
	FailoverVictimDevices    int    `json:"failover_victim_devices"`
	FailoverHandoffsReplica  uint64 `json:"failover_handoffs_replica"`
	FailoverRedirects        uint64 `json:"failover_redirects"`
	FailoverSurvivorsOwn     int    `json:"failover_survivors_own"`
	FailoverFreshnessRejects uint64 `json:"failover_freshness_rejects"`
}

type clusterRunOpts struct {
	duration             time.Duration
	attEvery             time.Duration
	master               string
	fresh                protocol.FreshnessKind
	auth                 protocol.AuthKind
	budget               float64
	out, variant         string
	minScale2, minScale4 float64
}

// clMember is one in-process cluster daemon: its ring identity and the
// server behind it.
type clMember struct {
	name string
	addr string
	node *cluster.Node
	srv  *server.Server
}

func (m *clMember) close() {
	m.srv.Close()
	m.node.Close()
}

// startClMembers brings up one daemon per name on loopback listeners, all
// sharing a Membership, and serves them.
func startClMembers(names []string, opts clusterRunOpts, mutate func(*server.Config)) (*cluster.Membership, []*clMember) {
	lns := make([]net.Listener, len(names))
	members := make([]cluster.Member, len(names))
	for i, name := range names {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatalf("attest-loadgen: %v", err)
		}
		lns[i] = ln
		members[i] = cluster.Member{Name: name, Addr: ln.Addr().String()}
	}
	ms := cluster.NewMembership(cluster.DefaultVnodes, members...)

	cms := make([]*clMember, len(names))
	for i, name := range names {
		node, err := cluster.NewNode(name, ms, cluster.NodeOptions{CallTimeout: 2 * time.Second})
		if err != nil {
			log.Fatalf("attest-loadgen: %v", err)
		}
		cfg := server.Config{
			Freshness:    opts.fresh,
			Auth:         opts.auth,
			MasterSecret: []byte(opts.master),
			Golden:       core.GoldenRAMPattern(),
			AttestEvery:  opts.attEvery,
			// Flooder devices never answer their scheduled requests;
			// recycle those inflight slots fast.
			RequestTimeout: 500 * time.Millisecond,
			MaxInflight:    256,
			FastPath:       true,
			Cluster:        node,
		}
		if mutate != nil {
			mutate(&cfg)
		}
		s, err := server.New(cfg)
		if err != nil {
			log.Fatalf("attest-loadgen: %v", err)
		}
		go s.Serve(lns[i]) //nolint:errcheck
		cms[i] = &clMember{name: name, addr: members[i].Addr, node: node, srv: s}
	}
	return ms, cms
}

// clOwnedIDs picks n device IDs the ring assigns to owner.
func clOwnedIDs(ring *cluster.Ring, owner, prefix string, n int) []string {
	var ids []string
	for i := 0; len(ids) < n && i < 100_000; i++ {
		id := fmt.Sprintf("%s-%d", prefix, i)
		if got, ok := ring.Owner(id); ok && got == owner {
			ids = append(ids, id)
		}
	}
	if len(ids) < n {
		log.Fatalf("attest-loadgen: found only %d of %d devices owned by %s", len(ids), n, owner)
	}
	return ids
}

// clWait polls cond until it holds or the deadline passes (fatal).
func clWait(what string, timeout time.Duration, cond func() bool) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	log.Fatalf("attest-loadgen: timed out waiting for %s", what)
}

// clFlood dials addr as deviceID (which addr's daemon must own — a
// redirect would end the session) and pumps paced adversarial frames
// until the deadline: the same forged-response/junk alternation as the
// single-daemon bench. Returns the frames written.
func clFlood(opts clusterRunOpts, addr, deviceID string, rate float64, deadline time.Time) int64 {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		log.Fatalf("attest-loadgen: flooder dial %s: %v", addr, err)
	}
	tc := transport.NewConn(nc, transport.Options{
		ReadTimeout:  250 * time.Millisecond,
		WriteTimeout: 10 * time.Second,
	})
	defer tc.Close()
	hello := &protocol.Hello{Freshness: opts.fresh, Auth: opts.auth, DeviceID: deviceID}
	if err := tc.Send(hello.Encode()); err != nil {
		log.Fatalf("attest-loadgen: flooder hello: %v", err)
	}
	// Drain the daemon's scheduled requests so its writes never back up.
	go func() {
		for {
			if _, err := tc.Recv(); err != nil && !transport.IsTimeout(err) {
				return
			}
		}
	}()

	interval := time.Duration(float64(time.Second) / rate)
	junk := []byte{0x41, 0x50, 0xFF, 0x00, 0x00} // response magic, bogus version
	var buf []byte
	var sent int64
	next := time.Now()
	for n := uint64(0); time.Now().Before(deadline); n++ {
		if n%2 == 0 {
			forged := protocol.AttResp{Nonce: 3_000_000_019 + n, Counter: n}
			buf = forged.AppendEncode(buf[:0])
		} else {
			buf = append(buf[:0], junk...)
		}
		if err := tc.Send(buf); err != nil {
			return sent
		}
		sent++
		next = next.Add(interval)
		if sleep := time.Until(next); sleep > 0 {
			time.Sleep(sleep)
		}
	}
	return sent
}

// runClusterRung measures one ladder rung: n daemons, each flooded past
// its admission budget, each also serving one authentic prover.
func runClusterRung(n int, opts clusterRunOpts) benchClusterRung {
	const floodFactor = 1.5
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("n%d", i)
	}
	_, cms := startClMembers(names, opts, func(c *server.Config) {
		c.MaxRatePerSec = opts.budget
		// A deep burst bucket would front-load a rung-independent admission
		// bonus into the ratios; keep the bucket shallow so the sustained
		// rate dominates.
		c.MaxRateBurst = 64
	})
	defer func() {
		for _, m := range cms {
			m.close()
		}
	}()
	ring := cluster.NewRing(cluster.DefaultVnodes, names)
	addrs := make([]string, n)
	for i, m := range cms {
		addrs[i] = m.addr
	}

	// One authentic prover per daemon, supervised: its first dial may hit
	// a non-owner, and the redirect must route it home.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	agents := make([]*agent.Agent, n)
	for i, m := range cms {
		id := clOwnedIDs(ring, m.name, fmt.Sprintf("cl%d-agent", n), 1)[0]
		a, err := agent.New(agent.Config{
			DeviceID:     id,
			Freshness:    opts.fresh,
			Auth:         opts.auth,
			MasterSecret: []byte(opts.master),
			FastPath:     true,
			StatsEvery:   50 * time.Millisecond,
		})
		if err != nil {
			log.Fatalf("attest-loadgen: %v", err)
		}
		agents[i] = a
		go a.RunAddrs(ctx, addrs, agent.Backoff{ //nolint:errcheck
			Base: 10 * time.Millisecond, Max: 200 * time.Millisecond, Seed: int64(i),
		})
	}
	clWait(fmt.Sprintf("an accepted round on each of %d daemons", n), 30*time.Second, func() bool {
		for _, m := range cms {
			if m.srv.Counters().ResponsesAccepted < 1 {
				return false
			}
		}
		return true
	})

	// Flood window: per-daemon counter deltas across it are the rung's
	// admission read-out.
	before := make([]server.Counters, n)
	for i, m := range cms {
		before[i] = m.srv.Counters()
	}
	t0 := time.Now()
	deadline := t0.Add(opts.duration)
	var wg sync.WaitGroup
	sent := make([]int64, n)
	for i, m := range cms {
		id := clOwnedIDs(ring, m.name, fmt.Sprintf("cl%d-flood", n), 1)[0]
		wg.Add(1)
		go func(i int, addr, id string) {
			defer wg.Done()
			sent[i] = clFlood(opts, addr, id, floodFactor*opts.budget, deadline)
		}(i, m.addr, id)
	}
	wg.Wait()
	elapsed := time.Since(t0)

	rung := benchClusterRung{Daemons: n, DurationSec: elapsed.Seconds()}
	for i, m := range cms {
		c := m.srv.Counters()
		rung.FramesIn += c.FramesIn - before[i].FramesIn
		rung.RateLimited += c.RateLimited - before[i].RateLimited
		rung.DaemonRateLimited += c.DaemonRateLimited - before[i].DaemonRateLimited
		rung.Accepted += c.ResponsesAccepted
		rung.Redirects += c.Redirects
		rung.FloodFramesSent += sent[i]
	}
	rung.AdmittedFrames = rung.FramesIn - rung.RateLimited - rung.DaemonRateLimited
	rung.AdmittedFramesPerSec = float64(rung.AdmittedFrames) / elapsed.Seconds()
	for _, a := range agents {
		rung.FreshnessRejects += a.Snapshot().FreshnessRejected
	}
	log.Printf("attest-loadgen: rung %d daemons: %.0f admitted frames/s (%d in, %d conn-limited, %d daemon-limited)",
		n, rung.AdmittedFramesPerSec, rung.FramesIn, rung.RateLimited, rung.DaemonRateLimited)
	return rung
}

// runClusterFailover is the drill behind the ladder: three daemons, two
// devices each, one daemon killed mid-run. Survivors must adopt the
// victim's devices from replicas and keep every freshness stream intact.
func runClusterFailover(opts clusterRunOpts, res *benchCluster) {
	names := []string{"n0", "n1", "n2"}
	drill := opts
	drill.attEvery = 25 * time.Millisecond
	ms, cms := startClMembers(names, drill, nil)
	defer func() {
		for _, m := range cms {
			m.close()
		}
	}()
	ring := cluster.NewRing(cluster.DefaultVnodes, names)
	addrs := []string{cms[0].addr, cms[1].addr, cms[2].addr}

	var devs []string
	for _, name := range names {
		devs = append(devs, clOwnedIDs(ring, name, "clfo-dev", 2)...)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	agents := make([]*agent.Agent, len(devs))
	for i, dev := range devs {
		a, err := agent.New(agent.Config{
			DeviceID:     dev,
			Freshness:    opts.fresh,
			Auth:         opts.auth,
			MasterSecret: []byte(opts.master),
			FastPath:     true,
			StatsEvery:   50 * time.Millisecond,
		})
		if err != nil {
			log.Fatalf("attest-loadgen: %v", err)
		}
		agents[i] = a
		rot := append(append([]string{}, addrs[i%len(addrs):]...), addrs[:i%len(addrs)]...)
		go a.RunAddrs(ctx, rot, agent.Backoff{ //nolint:errcheck
			Base: 10 * time.Millisecond, Max: 200 * time.Millisecond, Seed: int64(i),
		})
	}
	accepted := func(a *agent.Agent) uint64 {
		st := a.Snapshot()
		return st.Measurements + st.FastResponses
	}
	clWait("two accepted rounds per device", 30*time.Second, func() bool {
		for _, a := range agents {
			if accepted(a) < 2 {
				return false
			}
		}
		return true
	})
	clWait("replica coverage of the fleet", 30*time.Second, func() bool {
		held := 0
		for _, m := range cms {
			held += m.node.ReplicasHeld()
		}
		return held >= len(devs)
	})

	victimName, _ := ring.Owner(devs[0])
	victimDevs := 0
	for _, dev := range devs {
		if owner, _ := ring.Owner(dev); owner == victimName {
			victimDevs++
		}
	}
	var victim *clMember
	var survivors []*clMember
	for _, m := range cms {
		if m.name == victimName {
			victim = m
		} else {
			survivors = append(survivors, m)
		}
	}
	log.Printf("attest-loadgen: failover drill: killing %s (%d devices)", victimName, victimDevs)
	ms.MarkDown(victimName)
	victim.srv.Close()
	// Baselines read after the close: two more rounds per agent provably
	// require a fresh session on a survivor.
	base := make([]uint64, len(agents))
	for i, a := range agents {
		base[i] = accepted(a)
	}
	clWait("two fresh rounds per device after failover", 30*time.Second, func() bool {
		for i, a := range agents {
			if accepted(a) < base[i]+2 {
				return false
			}
		}
		return true
	})

	res.FailoverDaemons = len(names)
	res.FailoverDevices = len(devs)
	res.FailoverVictimDevices = victimDevs
	for _, a := range agents {
		res.FailoverFreshnessRejects += a.Snapshot().FreshnessRejected
	}
	for _, m := range survivors {
		c := m.srv.Counters()
		res.FailoverHandoffsReplica += c.HandoffsReplica
		res.FailoverRedirects += c.Redirects
		res.FailoverSurvivorsOwn += m.srv.Devices()
	}
}

func runCluster(opts clusterRunOpts) {
	res := benchCluster{
		Bench:           "cluster",
		Freshness:       opts.fresh.String(),
		Auth:            opts.auth.String(),
		Transport:       "tcp loopback, in-process daemons",
		PerDaemonBudget: opts.budget,
		FloodFactor:     1.5,
	}
	for _, n := range []int{1, 2, 4} {
		res.Rungs = append(res.Rungs, runClusterRung(n, opts))
	}
	base := res.Rungs[0].AdmittedFramesPerSec
	if base > 0 {
		res.Scaling2x = res.Rungs[1].AdmittedFramesPerSec / base
		res.Scaling4x = res.Rungs[2].AdmittedFramesPerSec / base
	}
	runClusterFailover(opts, &res)

	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		log.Fatalf("attest-loadgen: %v", err)
	}
	fmt.Println(string(buf))
	if opts.out != "" {
		variant := opts.variant
		if variant == "" {
			variant = "cluster"
		}
		if err := writeSummary(opts.out, variant, buf); err != nil {
			log.Fatalf("attest-loadgen: %v", err)
		}
		log.Printf("attest-loadgen: wrote %s", opts.out)
	}

	var rejects uint64
	for _, r := range res.Rungs {
		rejects += r.FreshnessRejects
	}
	if rejects > 0 {
		log.Fatalf("attest-loadgen: %d device-side freshness rejections during the ladder — redirects or handoffs corrupted a stream", rejects)
	}
	if res.FailoverFreshnessRejects > 0 {
		log.Fatalf("attest-loadgen: failover drill reset %d freshness streams", res.FailoverFreshnessRejects)
	}
	if res.FailoverHandoffsReplica < uint64(res.FailoverVictimDevices) {
		log.Fatalf("attest-loadgen: survivors adopted %d replicas, want at least the victim's %d devices",
			res.FailoverHandoffsReplica, res.FailoverVictimDevices)
	}
	if res.FailoverSurvivorsOwn != res.FailoverDevices {
		log.Fatalf("attest-loadgen: survivors own %d devices, want the whole fleet of %d",
			res.FailoverSurvivorsOwn, res.FailoverDevices)
	}
	if opts.minScale2 > 0 && res.Scaling2x < opts.minScale2 {
		log.Fatalf("attest-loadgen: 2-daemon scaling %.2fx below the %.2fx floor", res.Scaling2x, opts.minScale2)
	}
	if opts.minScale4 > 0 && res.Scaling4x < opts.minScale4 {
		log.Fatalf("attest-loadgen: 4-daemon scaling %.2fx below the %.2fx floor", res.Scaling4x, opts.minScale4)
	}
	log.Printf("attest-loadgen: cluster scaling 2 daemons %.2fx, 4 daemons %.2fx; failover drill clean (%d replica handoffs, 0 freshness resets)",
		res.Scaling2x, res.Scaling4x, res.FailoverHandoffsReplica)
}
