// Command attest-loadgen drives a verifier daemon (attestd) with fleet
// traffic over real TCP: N device connections, each answering the daemon's
// attestation requests authentically (the measurement is computed directly
// over the golden image — no simulated MCU, so one host can stand in for
// thousands of provers) while pumping M adversarial frames per second at
// the daemon's serving gate (unsolicited forged responses and malformed
// junk, the frames a hostile peer can emit at line rate).
//
// With no -addr the tool starts an in-process attestd on a loopback TCP
// port, which additionally lets it report the daemon's counters and the
// process-wide allocations per generated frame — the regression signal the
// zero-allocation hot path is held to. The run summary is printed as JSON
// and, with -out, written as BENCH_server.json (see `make bench-server`).
//
//	attest-loadgen -devices 8 -rate 200 -duration 3s -out BENCH_server.json
//	attest-loadgen -addr 10.0.0.7:7950 -devices 64 -rate 50 -duration 30s
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"proverattest/internal/agent"
	"proverattest/internal/core"
	"proverattest/internal/faultnet"
	"proverattest/internal/obs"
	"proverattest/internal/protocol"
	"proverattest/internal/server"
	"proverattest/internal/transport"
)

type benchServer struct {
	Bench           string `json:"bench"`
	Freshness       string `json:"freshness"`
	Auth            string `json:"auth"`
	Transport       string `json:"transport"`
	InProcessServer bool   `json:"in_process_server"`

	Devices     int     `json:"devices"`
	DurationSec float64 `json:"duration_sec"`

	AdversarialRatePerDevice float64 `json:"adversarial_rate_per_device"`
	AdversarialFramesSent    int64   `json:"adversarial_frames_sent"`
	FramesPerSec             float64 `json:"frames_per_sec"`

	// Adversarial-frame admission latency: wall time for one paced frame's
	// Send to complete. TCP backpressure folds the daemon's read rate into
	// these percentiles — they grow when the serving path saturates.
	AdversarialSendNsP50 int64 `json:"adversarial_send_ns_p50"`
	AdversarialSendNsP95 int64 `json:"adversarial_send_ns_p95"`
	AdversarialSendNsP99 int64 `json:"adversarial_send_ns_p99"`

	// Authentic-round service latency: receipt of the daemon's request to
	// completion of the measured response's write (includes the golden-
	// image MAC, the prover-side cost of an honest round).
	AuthenticRounds       int64 `json:"authentic_rounds"`
	AuthenticRoundNsPerOp int64 `json:"authentic_round_ns_per_op"`
	AuthenticRoundNsP50   int64 `json:"authentic_round_ns_p50"`
	AuthenticRoundNsP95   int64 `json:"authentic_round_ns_p95"`
	AuthenticRoundNsP99   int64 `json:"authentic_round_ns_p99"`

	// AsymmetryRatio is the §3.1 read-out at serving scale: what one
	// authentic round costs versus one adversarial frame (client-observed
	// means). The gate exists to keep the right side cheap.
	AsymmetryRatio int64 `json:"asymmetry_ratio"`

	// Quiescent-fleet read-out (-quiescent): devices answer through a
	// FastResponder, so after each device's first full measurement every
	// round rides the O(1) fast path. FullRound* samples every full-MAC
	// round of the run (warm-up included — in a quiescent fleet the
	// measured phase alone may never pay the full MAC again), FastRound*
	// samples the measured phase's fast rounds, and QuiescentSpeedup is
	// mean(full)/mean(fast): the RATA claim, client-observed.
	Quiescent           bool    `json:"quiescent,omitempty"`
	FastRounds          int64   `json:"fast_rounds,omitempty"`
	FullRounds          int64   `json:"full_rounds,omitempty"`
	FastRoundNsPerOp    int64   `json:"fast_round_ns_per_op,omitempty"`
	FastRoundNsP50      int64   `json:"fast_round_ns_p50,omitempty"`
	FastRoundNsP95      int64   `json:"fast_round_ns_p95,omitempty"`
	FastRoundNsP99      int64   `json:"fast_round_ns_p99,omitempty"`
	FullRoundNsPerOp    int64   `json:"full_round_ns_per_op,omitempty"`
	QuiescentSpeedup    float64 `json:"quiescent_speedup,omitempty"`
	ServerResponsesFast uint64  `json:"server_responses_fast,omitempty"`

	// AllocsPerFrame is the process-wide heap objects allocated per
	// generated frame (loadgen + in-process daemon; -1 when the daemon is
	// external). The pooled codec keeps this near zero in steady state.
	AllocsPerFrame float64 `json:"allocs_per_frame"`

	// Live /metrics-derived read-out, scraped mid-run from the daemon's
	// exposition endpoint (in-process or -scrape URL; MetricsScrapes == 0
	// when nothing was scraped). The histogram means are the daemon's own
	// clock on the asymmetry — what a gate reject costs it versus an
	// honest issue-to-accept round — independent of the client-observed
	// AsymmetryRatio above. The *PerSec rates come from first→last scrape
	// deltas over the traffic phase.
	MetricsScrapes     int     `json:"metrics_scrapes"`
	LiveGateNsMean     float64 `json:"live_gate_ns_mean"`
	LiveAttestNsMean   float64 `json:"live_attest_ns_mean"`
	LiveAsymmetryRatio float64 `json:"live_asymmetry_ratio"`
	LiveRejectsPerSec  float64 `json:"live_rejects_per_sec"`
	LiveFramesInPerSec float64 `json:"live_frames_in_per_sec"`

	// In-process daemon counters (zero when external).
	ServerFramesIn    uint64 `json:"server_frames_in"`
	ServerAccepted    uint64 `json:"server_responses_accepted"`
	ServerUnsolicited uint64 `json:"server_responses_unsolicited"`
	ServerUnknown     uint64 `json:"server_unknown_frames"`
	ServerRateLimited uint64 `json:"server_rate_limited"`
	ServerIssued      uint64 `json:"server_requests_issued"`

	// Chaos-mode survival read-out (-chaos): the fleet runs over faultnet
	// fault injection with supervised reconnect loops, then the faults
	// stop and every device gets a recovery window. SurvivalRate is the
	// fraction of devices that completed a fresh authentic round on a
	// clean link after the chaos phase — the tentpole's 100% target.
	Chaos             bool    `json:"chaos"`
	ChaosSchedule     string  `json:"chaos_schedule,omitempty"`
	ChaosSeed         int64   `json:"chaos_seed,omitempty"`
	ChaosSessions     int64   `json:"chaos_sessions,omitempty"`
	ChaosReconnects   int64   `json:"chaos_reconnects,omitempty"`
	ChaosDialErrors   int64   `json:"chaos_dial_errors,omitempty"`
	ChaosFaults       uint64  `json:"chaos_faults_injected,omitempty"`
	ChaosResets       uint64  `json:"chaos_fault_resets,omitempty"`
	ChaosDrops        uint64  `json:"chaos_fault_drops,omitempty"`
	ChaosCorruptions  uint64  `json:"chaos_fault_corruptions,omitempty"`
	ChaosShortWrites  uint64  `json:"chaos_fault_short_writes,omitempty"`
	ChaosDelays       uint64  `json:"chaos_fault_delays,omitempty"`
	ChaosRateStalls   uint64  `json:"chaos_fault_rate_stalls,omitempty"`
	ChaosSurvivors    int     `json:"chaos_survivors,omitempty"`
	ChaosSurvivalRate float64 `json:"chaos_survival_rate,omitempty"`
}

// device is one loadgen connection: an authentic responder plus an
// adversarial frame pump sharing a socket.
type device struct {
	id     string
	key    [20]byte
	golden []byte
	tc     *transport.Conn

	// fast, when non-nil (-quiescent), answers requests through the
	// RATA-style fast-path state machine instead of re-MACing the golden
	// image per round.
	fast *protocol.FastResponder

	mu          sync.Mutex
	sendNs      []int64 // adversarial frame admission latencies
	roundNs     []int64 // authentic round service latencies
	fastNs      []int64 // fast-path round latencies (subset of roundNs)
	fullNs      []int64 // full-MAC round latencies, never reset (baseline)
	framesSent  int64
	roundsServd int64

	// Chaos-mode supervision counters and the cumulative injected-fault
	// totals of every session's faultnet wrapper.
	sessions   int64
	reconnects int64
	dialErrors int64
	faults     faultnet.StatsSnapshot
}

// serveReads answers every attestation request authentically until the
// connection dies. Runs as the connection's single reader.
func (d *device) serveReads() { d.serveConn(context.Background(), d.tc) }

// serveConn is serveReads over an explicit connection: the chaos
// supervisor hands each session's connection in and bounds it with ctx.
func (d *device) serveConn(ctx context.Context, tc *transport.Conn) {
	var respBuf []byte
	for {
		frame, err := tc.RecvShared()
		if err != nil {
			if transport.IsTimeout(err) {
				if ctx.Err() != nil {
					return
				}
				continue
			}
			return
		}
		if protocol.ClassifyFrame(frame) != protocol.FrameAttReq {
			continue
		}
		t0 := time.Now()
		req, err := protocol.DecodeAttReq(frame)
		if err != nil {
			continue
		}
		var resp protocol.AttResp
		fast := false
		if d.fast != nil {
			fast = d.fast.RespondInto(req, &resp)
		} else {
			resp = protocol.AttResp{
				Nonce:       req.Nonce,
				Counter:     req.Counter,
				Measurement: protocol.Measure(d.key[:], req, d.golden),
			}
		}
		respBuf = resp.AppendEncode(respBuf[:0])
		if err := tc.Send(respBuf); err != nil {
			return
		}
		ns := time.Since(t0).Nanoseconds()
		d.mu.Lock()
		d.roundNs = append(d.roundNs, ns)
		d.roundsServd++
		if d.fast != nil {
			if fast {
				d.fastNs = append(d.fastNs, ns)
			} else {
				d.fullNs = append(d.fullNs, ns)
			}
		}
		d.mu.Unlock()
	}
}

// pumpAdversarial pushes paced hostile frames until the deadline:
// alternating well-formed responses answering no outstanding nonce (the
// daemon's decode → map-miss → static-reject path) and malformed junk (the
// classify-reject path).
func (d *device) pumpAdversarial(rate float64, deadline time.Time) {
	var interval time.Duration
	if rate > 0 {
		interval = time.Duration(float64(time.Second) / rate)
	}
	var buf []byte
	junk := []byte{0x41, 0x50, 0xFF, 0x00, 0x00} // response magic, bogus version
	next := time.Now()
	for n := uint64(0); time.Now().Before(deadline); n++ {
		if n%2 == 0 {
			forged := protocol.AttResp{Nonce: 3_000_000_019 + n, Counter: n}
			buf = forged.AppendEncode(buf[:0])
		} else {
			buf = append(buf[:0], junk...)
		}
		t0 := time.Now()
		if err := d.tc.Send(buf); err != nil {
			return
		}
		ns := time.Since(t0).Nanoseconds()
		d.mu.Lock()
		d.sendNs = append(d.sendNs, ns)
		d.framesSent++
		d.mu.Unlock()
		if interval > 0 {
			next = next.Add(interval)
			if sleep := time.Until(next); sleep > 0 {
				time.Sleep(sleep)
			}
		}
	}
}

// runChaos is one device's supervised session loop, the loadgen twin of
// agent.Agent.Run: dial, wrap the connection in the fault schedule
// (while chaosOn holds), serve authentically until the session dies,
// bank the injected-fault counts, back off, reconnect. Each session's
// fault stream is seeded deterministically from the run seed, the
// device index and the session ordinal, so a chaos run replays exactly.
func (d *device) runChaos(ctx context.Context, target string, hello []byte, sched *faultnet.Schedule, seed int64, chaosOn *atomic.Bool, bo agent.Backoff) {
	bt := agent.NewBackoffTimer(bo)
	for session := int64(0); ctx.Err() == nil; session++ {
		var dialer net.Dialer
		nc, err := dialer.DialContext(ctx, "tcp", target)
		if err != nil {
			d.mu.Lock()
			d.dialErrors++
			d.mu.Unlock()
			if !sleepCtx(ctx, bt.Next()) {
				return
			}
			continue
		}
		conn := net.Conn(nc)
		var fc *faultnet.Conn
		if chaosOn.Load() {
			fc = faultnet.Wrap(nc, sched, faultnet.Options{Seed: seed + session})
			conn = fc
		}
		tc := transport.NewConn(conn, transport.Options{
			ReadTimeout:  250 * time.Millisecond,
			WriteTimeout: 10 * time.Second,
		})
		d.mu.Lock()
		d.tc = tc
		d.sessions++
		d.mu.Unlock()
		started := time.Now()
		if err := tc.Send(hello); err == nil {
			d.serveConn(ctx, tc)
		}
		tc.Close()
		if fc != nil {
			snap := fc.Stats().Snapshot()
			d.mu.Lock()
			d.faults.Resets += snap.Resets
			d.faults.Drops += snap.Drops
			d.faults.Corruptions += snap.Corruptions
			d.faults.ShortWrites += snap.ShortWrites
			d.faults.Delays += snap.Delays
			d.faults.RateStalls += snap.RateStalls
			d.mu.Unlock()
		}
		if ctx.Err() != nil {
			return
		}
		if time.Since(started) >= bt.ResetAfter() {
			bt.Reset()
		}
		d.mu.Lock()
		d.reconnects++
		d.mu.Unlock()
		if !sleepCtx(ctx, bt.Next()) {
			return
		}
	}
}

// sleepCtx sleeps d or returns false early if ctx ends first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// percentile is the nearest-rank q-quantile of an ascending-sorted
// sample: the smallest element with at least ceil(q·n) values at or below
// it. (The previous int(q·n) truncation picked the rank *after* the
// nearest rank whenever q·n was integral — at q=0.5 over four samples it
// returned the 3rd value, not the 2nd.)
func percentile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func mean(xs []int64) int64 {
	if len(xs) == 0 {
		return 0
	}
	var sum int64
	for _, x := range xs {
		sum += x
	}
	return sum / int64(len(xs))
}

func main() {
	log.SetFlags(0)
	var (
		addr      = flag.String("addr", "", "attestd address; empty starts an in-process daemon on a loopback port")
		devices   = flag.Int("devices", 8, "concurrent device connections")
		rate      = flag.Float64("rate", 200, "adversarial frames/s per device (0 = unpaced)")
		duration  = flag.Duration("duration", 3*time.Second, "traffic phase length")
		master    = flag.String("master", "proverattest-fleet-master", "master secret (must match the daemon)")
		freshName = flag.String("freshness", "counter", "freshness policy: none | nonces | counter")
		authName  = flag.String("auth", "hmac-sha1", "request auth scheme (must match the daemon)")
		attEvery  = flag.Duration("attest-every", 100*time.Millisecond, "in-process daemon's per-device attestation period")
		connRate  = flag.Float64("conn-rate", 0, "in-process daemon's per-connection frames/s budget (0 = unlimited)")
		out       = flag.String("out", "", "also write the JSON summary to this file (BENCH_server.json)")
		variant   = flag.String("variant", "", "merge the summary under this key in a variant map in -out instead of overwriting the file (a flat legacy file is folded in as \"baseline\")")

		quiescent  = flag.Bool("quiescent", false, "quiescent fleet: devices answer via the RATA fast-path responder and the adversarial pump is off; the in-process daemon grants the fast path")
		minSpeedup = flag.Float64("min-speedup", 0, "with -quiescent, fail unless the fast/full round speedup reaches this factor (0 = report only)")
		scrapeURL = flag.String("scrape", "", "external daemon's /metrics URL to scrape mid-run, e.g. http://10.0.0.7:9150/metrics (in-process daemons are scraped automatically)")

		clusterMode = flag.Bool("cluster", false, "cluster mode: ladder of 1→2→4 in-process daemons sharing a consistent-hash ring, each flooded past its -daemon-rate admission budget; reports admitted frames/s per rung and the scaling ratios, then runs a kill-one failover drill")
		daemonRate  = flag.Float64("daemon-rate", 2000, "with -cluster, each daemon's admission budget in frames/s (server-side MaxRatePerSec)")
		minScale2   = flag.Float64("min-scale-2", 0, "with -cluster, fail unless 2-daemon admitted throughput reaches this multiple of 1-daemon (0 = report only)")
		minScale4   = flag.Float64("min-scale-4", 0, "with -cluster, fail unless 4-daemon admitted throughput reaches this multiple of 1-daemon (0 = report only)")

		swarmMode       = flag.Bool("swarm", false, "swarm mode: collective attestation through the spanning-tree gateway — -devices members, one socket, two frames per aggregate round; includes the crossover ladder and adversary matrix")
		fanout          = flag.Int("fanout", 4, "with -swarm, the spanning-tree arity")
		minMsgReduction = flag.Float64("min-msg-reduction", 0, "with -swarm, fail unless the measured verifier-message reduction reaches this factor (0 = report only)")

		restartDrill = flag.Bool("restart-drill", false, "restart drill: agents attest against a persistent in-process daemon that is killed (kill -9 semantics) and restarted from its state directory mid-traffic, once per fsync policy; any device-side freshness reject or allocating gate reject fails the run")

		tierIsolation = flag.Bool("tier-isolation", false, "tier-isolation drill: a bulk tier floods at -flood-x times its -tier-rate budget while an uncapped gold tier keeps attesting; fails if gold's authentic p99 moves past -max-p99-ratio")
		tierRate      = flag.Float64("tier-rate", 400, "with -tier-isolation, the bulk tier's tier-wide budget in frames/s")
		floodX        = flag.Float64("flood-x", 10, "with -tier-isolation, the flood intensity as a multiple of the bulk budget")
		maxP99Ratio   = flag.Float64("max-p99-ratio", 0, "with -tier-isolation, fail if gold's loaded p99 exceeds this multiple of its unloaded p99 (0 = report only)")

		chaos         = flag.Bool("chaos", false, "run the fleet over faultnet fault injection with supervised reconnects (disables the adversarial pump); survival stats land in the summary")
		chaosSchedule = flag.String("chaos-schedule", "flap=500ms:reset;pct=2:drop", "faultnet fault schedule applied to every device connection in -chaos mode")
		chaosSeed     = flag.Int64("chaos-seed", 1, "seed for the deterministic fault and backoff streams (per-device offsets applied); equal seeds replay equal runs")
	)
	flag.Parse()

	fresh, err := protocol.ParseFreshnessKind(*freshName)
	if err != nil {
		log.Fatalf("attest-loadgen: %v", err)
	}
	auth, err := protocol.ParseAuthKind(*authName)
	if err != nil {
		log.Fatalf("attest-loadgen: %v", err)
	}
	if *clusterMode {
		runCluster(clusterRunOpts{
			duration:  *duration,
			attEvery:  *attEvery,
			master:    *master,
			fresh:     fresh,
			auth:      auth,
			budget:    *daemonRate,
			out:       *out,
			variant:   *variant,
			minScale2: *minScale2,
			minScale4: *minScale4,
		})
		return
	}
	if *restartDrill {
		runPersist(persistRunOpts{
			devices:  *devices,
			attEvery: *attEvery,
			master:   *master,
			fresh:    fresh,
			auth:     auth,
			out:      *out,
			variant:  *variant,
		})
		return
	}
	if *tierIsolation {
		runTierIsolation(tierIsoOpts{
			devices:     *devices,
			duration:    *duration,
			attEvery:    *attEvery,
			master:      *master,
			fresh:       fresh,
			auth:        auth,
			bulkBudget:  *tierRate,
			floodX:      *floodX,
			maxP99Ratio: *maxP99Ratio,
			out:         *out,
			variant:     *variant,
		})
		return
	}
	if *swarmMode {
		runSwarm(swarmRunOpts{
			devices:         *devices,
			fanout:          *fanout,
			duration:        *duration,
			every:           *attEvery,
			master:          *master,
			fresh:           fresh,
			auth:            auth,
			out:             *out,
			variant:         *variant,
			minMsgReduction: *minMsgReduction,
		})
		return
	}
	golden := core.GoldenRAMPattern()

	// Spawn the in-process daemon unless pointed at an external one.
	var srv *server.Server
	target := *addr
	if target == "" {
		// Under chaos, requests lost to injected faults must release their
		// inflight slots fast, or the ghosts of the chaos phase starve the
		// recovery phase at the (deliberately small) inflight cap.
		var reqTimeout time.Duration
		if *chaos {
			reqTimeout = 500 * time.Millisecond
		}
		srv, err = server.New(server.Config{
			Freshness:         fresh,
			Auth:              auth,
			MasterSecret:      []byte(*master),
			Golden:            golden,
			AttestEvery:       *attEvery,
			MaxInflight:       4 * *devices,
			PerConnRatePerSec: *connRate,
			RequestTimeout:    reqTimeout,
			FastPath:          *quiescent,
		})
		if err != nil {
			log.Fatalf("attest-loadgen: %v", err)
		}
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatalf("attest-loadgen: %v", err)
		}
		go srv.Serve(ln) //nolint:errcheck
		target = ln.Addr().String()
		log.Printf("attest-loadgen: in-process attestd on %s", target)
	}

	// Mid-run observability: scrape the daemon's /metrics during the
	// traffic phase. The in-process daemon gets a loopback exposition
	// endpoint of its own; an external daemon is scraped via -scrape.
	metricsURL := *scrapeURL
	if srv != nil {
		mln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatalf("attest-loadgen: %v", err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.Handler(srv.Metrics()))
		go http.Serve(mln, mux) //nolint:errcheck
		metricsURL = "http://" + mln.Addr().String() + "/metrics"
	}

	// Chaos mode: every device runs a supervised reconnect loop over a
	// fault-injecting wrapper instead of a single pristine connection.
	var (
		sched       *faultnet.Schedule
		chaosOn     atomic.Bool
		chaosCtx    context.Context
		chaosCancel context.CancelFunc = func() {}
	)
	if *chaos {
		sched, err = faultnet.ParseSchedule(*chaosSchedule)
		if err != nil {
			log.Fatalf("attest-loadgen: -chaos-schedule: %v", err)
		}
		chaosOn.Store(true)
		chaosCtx, chaosCancel = context.WithCancel(context.Background())
		log.Printf("attest-loadgen: chaos schedule %q seed %d", sched.String(), *chaosSeed)
	}
	defer chaosCancel()

	devs := make([]*device, *devices)
	for i := range devs {
		id := fmt.Sprintf("loadgen-%03d", i)
		d := &device{
			id:     id,
			key:    protocol.DeriveDeviceKey([]byte(*master), id),
			golden: golden,
			// Pre-size the sample slices so recording stays off the
			// traffic-phase allocation profile.
			sendNs:  make([]int64, 0, int(*rate*duration.Seconds())+1024),
			roundNs: make([]int64, 0, 1024),
		}
		if *quiescent {
			d.fast = protocol.NewFastResponder(d.key[:], golden)
			d.fastNs = make([]int64, 0, 1024)
			d.fullNs = make([]int64, 0, 64)
		}
		hello := &protocol.Hello{Freshness: fresh, Auth: auth, DeviceID: id}
		devs[i] = d
		if *chaos {
			// Sessions of device i get fault seeds in their own stride so
			// no two devices (or sessions) share a fault stream.
			go d.runChaos(chaosCtx, target, hello.Encode(), sched,
				*chaosSeed+int64(i)*1_000_003, &chaosOn,
				agent.Backoff{
					Base: 50 * time.Millisecond, Max: time.Second,
					Jitter: 0.2, ResetAfter: 2 * time.Second,
					Seed: *chaosSeed + int64(i),
				})
			continue
		}
		nc, err := net.Dial("tcp", target)
		if err != nil {
			log.Fatalf("attest-loadgen: dialing %s: %v", target, err)
		}
		d.tc = transport.NewConn(nc, transport.Options{
			ReadTimeout:  250 * time.Millisecond,
			WriteTimeout: 10 * time.Second,
		})
		if err := d.tc.Send(hello.Encode()); err != nil {
			log.Fatalf("attest-loadgen: hello: %v", err)
		}
		go d.serveReads()
	}

	// Let every connection complete at least one honest round before the
	// measured phase, so connection setup stays out of the percentiles.
	time.Sleep(*attEvery + 100*time.Millisecond)
	for _, d := range devs {
		d.mu.Lock()
		// fullNs deliberately survives the reset: in a quiescent fleet the
		// warm-up round is often the only full MAC the device ever pays, and
		// it is the baseline the speedup is computed against.
		d.sendNs = d.sendNs[:0]
		d.roundNs = d.roundNs[:0]
		d.fastNs = d.fastNs[:0]
		d.framesSent, d.roundsServd = 0, 0
		d.mu.Unlock()
	}

	var msBefore, msAfter runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&msBefore)

	deadline := time.Now().Add(*duration)
	t0 := time.Now()
	var live *liveMetrics
	var liveDone chan struct{}
	if metricsURL != "" {
		live = newLiveMetrics(metricsURL)
		liveDone = make(chan struct{})
		// Sample a handful of times across the phase (bounded below so a
		// short smoke run still gets first+last for the delta rates).
		every := *duration / 8
		if every < 100*time.Millisecond {
			every = 100 * time.Millisecond
		}
		go func() {
			defer close(liveDone)
			live.run(every, deadline)
		}()
	}
	if *chaos || *quiescent {
		// No adversarial pump in chaos mode (faultnet owns the adversity,
		// and the pump would race the supervisor's per-session connections)
		// or in quiescent mode (the point is an idle, clean fleet).
		time.Sleep(time.Until(deadline))
	} else {
		var wg sync.WaitGroup
		for _, d := range devs {
			wg.Add(1)
			go func(d *device) {
				defer wg.Done()
				d.pumpAdversarial(*rate, deadline)
			}(d)
		}
		wg.Wait()
	}
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&msAfter)
	if live != nil {
		<-liveDone
	}

	// Recovery phase (chaos mode): stop injecting faults, tear the
	// mangled links so every supervisor reconnects over a clean socket,
	// and give each device a bounded window to complete a fresh authentic
	// round — the survival criterion.
	var survivors int
	if *chaos {
		chaosOn.Store(false)
		marks := make([]int64, len(devs))
		for i, d := range devs {
			d.mu.Lock()
			marks[i] = d.roundsServd
			if d.tc != nil {
				d.tc.Close()
			}
			d.mu.Unlock()
		}
		recovery := 5 * *attEvery
		if recovery < 2*time.Second {
			recovery = 2 * time.Second
		}
		recoveryDeadline := time.Now().Add(recovery)
		for time.Now().Before(recoveryDeadline) {
			survivors = 0
			for i, d := range devs {
				d.mu.Lock()
				if d.roundsServd > marks[i] {
					survivors++
				}
				d.mu.Unlock()
			}
			if survivors == len(devs) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		chaosCancel()
	}

	var sendNs, roundNs, fastNs, fullNs []int64
	var framesSent, rounds int64
	var sessions, reconnects, dialErrors int64
	var faults faultnet.StatsSnapshot
	for _, d := range devs {
		d.mu.Lock()
		sendNs = append(sendNs, d.sendNs...)
		roundNs = append(roundNs, d.roundNs...)
		fastNs = append(fastNs, d.fastNs...)
		fullNs = append(fullNs, d.fullNs...)
		framesSent += d.framesSent
		rounds += d.roundsServd
		sessions += d.sessions
		reconnects += d.reconnects
		dialErrors += d.dialErrors
		faults.Resets += d.faults.Resets
		faults.Drops += d.faults.Drops
		faults.Corruptions += d.faults.Corruptions
		faults.ShortWrites += d.faults.ShortWrites
		faults.Delays += d.faults.Delays
		faults.RateStalls += d.faults.RateStalls
		if d.tc != nil {
			d.tc.Close()
		}
		d.mu.Unlock()
	}
	sort.Slice(sendNs, func(i, j int) bool { return sendNs[i] < sendNs[j] })
	sort.Slice(roundNs, func(i, j int) bool { return roundNs[i] < roundNs[j] })
	sort.Slice(fastNs, func(i, j int) bool { return fastNs[i] < fastNs[j] })

	res := benchServer{
		Bench:                    "server",
		Freshness:                fresh.String(),
		Auth:                     auth.String(),
		Transport:                "tcp " + target,
		InProcessServer:          srv != nil,
		Devices:                  *devices,
		DurationSec:              elapsed.Seconds(),
		AdversarialRatePerDevice: *rate,
		AdversarialFramesSent:    framesSent,
		FramesPerSec:             float64(framesSent) / elapsed.Seconds(),
		AdversarialSendNsP50:     percentile(sendNs, 0.50),
		AdversarialSendNsP95:     percentile(sendNs, 0.95),
		AdversarialSendNsP99:     percentile(sendNs, 0.99),
		AuthenticRounds:          rounds,
		AuthenticRoundNsPerOp:    mean(roundNs),
		AuthenticRoundNsP50:      percentile(roundNs, 0.50),
		AuthenticRoundNsP95:      percentile(roundNs, 0.95),
		AuthenticRoundNsP99:      percentile(roundNs, 0.99),
		AllocsPerFrame:           -1,
	}
	if adv := mean(sendNs); adv > 0 && res.AuthenticRoundNsPerOp > 0 {
		res.AsymmetryRatio = res.AuthenticRoundNsPerOp / adv
	}
	if *quiescent {
		res.Quiescent = true
		res.FastRounds = int64(len(fastNs))
		res.FullRounds = int64(len(fullNs))
		res.FastRoundNsPerOp = mean(fastNs)
		res.FastRoundNsP50 = percentile(fastNs, 0.50)
		res.FastRoundNsP95 = percentile(fastNs, 0.95)
		res.FastRoundNsP99 = percentile(fastNs, 0.99)
		res.FullRoundNsPerOp = mean(fullNs)
		if f := mean(fastNs); f > 0 && res.FullRoundNsPerOp > 0 {
			res.QuiescentSpeedup = float64(res.FullRoundNsPerOp) / float64(f)
		}
	}
	if *chaos {
		res.Chaos = true
		res.ChaosSchedule = sched.String()
		res.ChaosSeed = *chaosSeed
		res.ChaosSessions = sessions
		res.ChaosReconnects = reconnects
		res.ChaosDialErrors = dialErrors
		res.ChaosFaults = faults.Total()
		res.ChaosResets = faults.Resets
		res.ChaosDrops = faults.Drops
		res.ChaosCorruptions = faults.Corruptions
		res.ChaosShortWrites = faults.ShortWrites
		res.ChaosDelays = faults.Delays
		res.ChaosRateStalls = faults.RateStalls
		res.ChaosSurvivors = survivors
		res.ChaosSurvivalRate = float64(survivors) / float64(len(devs))
	}
	if live != nil {
		live.fill(&res)
	}
	totalFrames := framesSent + rounds
	if srv != nil && totalFrames > 0 {
		res.AllocsPerFrame = float64(msAfter.Mallocs-msBefore.Mallocs) / float64(totalFrames)
		c := srv.Counters()
		res.ServerFramesIn = c.FramesIn
		res.ServerAccepted = c.ResponsesAccepted
		res.ServerUnsolicited = c.ResponsesUnsolicited
		res.ServerUnknown = c.UnknownFrames
		res.ServerRateLimited = c.RateLimited
		res.ServerIssued = c.RequestsIssued
		res.ServerResponsesFast = c.ResponsesFast
	}

	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		log.Fatalf("attest-loadgen: %v", err)
	}
	fmt.Println(string(buf))
	if *out != "" {
		if err := writeSummary(*out, *variant, buf); err != nil {
			log.Fatalf("attest-loadgen: %v", err)
		}
		log.Printf("attest-loadgen: wrote %s", *out)
	}

	if rounds == 0 {
		log.Fatalf("attest-loadgen: no authentic rounds completed — daemon unreachable or policy mismatch")
	}
	if *quiescent {
		if res.FastRounds == 0 {
			log.Fatalf("attest-loadgen: quiescent fleet completed no fast rounds — fast path not granted or not taken")
		}
		if *minSpeedup > 0 && res.QuiescentSpeedup < *minSpeedup {
			log.Fatalf("attest-loadgen: quiescent speedup %.1fx below the %.0fx floor (full %d ns vs fast %d ns)",
				res.QuiescentSpeedup, *minSpeedup, res.FullRoundNsPerOp, res.FastRoundNsPerOp)
		}
	}
}

// writeSummary writes the run summary to path. With a variant name the file
// holds a map of variant → summary and this run only replaces its own key;
// a pre-existing flat single-run file (the legacy format) is folded in
// under "baseline" rather than discarded.
func writeSummary(path, variant string, buf []byte) error {
	if variant == "" {
		return os.WriteFile(path, append(buf, '\n'), 0o644)
	}
	variants := map[string]json.RawMessage{}
	if old, err := os.ReadFile(path); err == nil {
		var m map[string]json.RawMessage
		if json.Unmarshal(old, &m) == nil {
			if _, flat := m["bench"]; flat {
				variants["baseline"] = json.RawMessage(old)
			} else {
				variants = m
			}
		}
	}
	variants[variant] = json.RawMessage(buf)
	out, err := json.MarshalIndent(variants, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
