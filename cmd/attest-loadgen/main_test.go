package main

import "testing"

// TestPercentileNearestRank pins the quantile estimator to the
// nearest-rank definition: the smallest sorted element with at least
// ceil(q·n) samples at or below it. The regression rows are the cases the
// old int(q·n) truncation got wrong — whenever q·n landed on an integer
// it indexed one rank too high (p50 of four samples returned the third).
func TestPercentileNearestRank(t *testing.T) {
	tests := []struct {
		name   string
		sorted []int64
		q      float64
		want   int64
	}{
		{"empty", nil, 0.50, 0},
		{"single p50", []int64{7}, 0.50, 7},
		{"single p99", []int64{7}, 0.99, 7},

		// q·n integral: the old code returned sorted[q·n] (one rank high).
		{"p50 even n", []int64{10, 20, 30, 40}, 0.50, 20},
		{"p25 of 4", []int64{10, 20, 30, 40}, 0.25, 10},
		{"p75 of 4", []int64{10, 20, 30, 40}, 0.75, 30},
		{"p50 of 2", []int64{1, 2}, 0.50, 1},
		{"p95 of 20", []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20}, 0.95, 19},

		// q·n fractional: ceil picks the same rank both ways.
		{"p50 odd n", []int64{10, 20, 30}, 0.50, 20},
		{"p95 of 3", []int64{10, 20, 30}, 0.95, 30},
		{"p99 of 10", []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 0.99, 10},

		// Extremes clamp to the sample's ends.
		{"p100", []int64{10, 20, 30}, 1.00, 30},
		{"p0", []int64{10, 20, 30}, 0.00, 10},
	}
	for _, tc := range tests {
		if got := percentile(tc.sorted, tc.q); got != tc.want {
			t.Errorf("%s: percentile(%v, %v) = %d, want %d", tc.name, tc.sorted, tc.q, got, tc.want)
		}
	}
}
