package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"os"
	"runtime"
	"sync"
	"time"

	"proverattest/internal/agent"
	"proverattest/internal/core"
	"proverattest/internal/journal"
	"proverattest/internal/protocol"
	"proverattest/internal/server"
	"proverattest/internal/transport"
)

// Restart-drill mode (-restart-drill) is the acceptance scenario for the
// persistent verifier store: a fleet of supervised agents attests against
// an in-process daemon backed by a PersistentStore, the daemon dies
// mid-traffic without any flush (Kill — the in-process kill -9), a new
// daemon reopens the same state directory on the same address, and the
// *same* agent processes — whose trust anchors remember every counter they
// have ever seen — must accept the restarted daemon's requests with zero
// freshness rejects. The drill runs once per durability policy:
//
//   - fsync=always  — write-ahead journaling entitles every recovery to
//     exact adoption (RecoveredExact == devices, no jumps);
//   - fsync=interval — the journal tail may be lost, so every recovery
//     must take the restart freshness jump (RecoveredJumped == devices),
//     which is freshness-safe by construction.
//
// A final gate phase re-pins the zero-allocation reject path with the
// persistence wrapper slotted in: adversarial frames are pumped at a
// persistent daemon and the process-wide allocations per frame must stay
// at zero — journaling is write-behind, so the serving gate never touches
// it. Any freshness reject, wrong adoption kind, or allocating gate fails
// the run. The summary lands in BENCH_server.json under -variant
// (typically "persistence"; see `make bench-persist`).

type benchPersistDrill struct {
	Fsync   string `json:"fsync"`
	Devices int    `json:"devices"`

	PreKillAccepted     uint64  `json:"pre_kill_accepted"`
	RecoveredDevices    int     `json:"recovered_devices"`
	RecoveredExact      uint64  `json:"recovered_exact"`
	RecoveredJumped     uint64  `json:"recovered_jumped"`
	PostRestartAccepted uint64  `json:"post_restart_accepted"`
	FreshnessRejects    uint64  `json:"device_freshness_rejects"`
	JournalAppends      uint64  `json:"journal_appends"`
	JournalBytes        uint64  `json:"journal_bytes"`
	JournalFsyncs       uint64  `json:"journal_fsyncs"`
	JournalCompactions  uint64  `json:"journal_compactions"`
	DurationSec         float64 `json:"duration_sec"`
}

type benchPersist struct {
	Bench     string `json:"bench"`
	Freshness string `json:"freshness"`
	Auth      string `json:"auth"`

	Drills []benchPersistDrill `json:"drills"`

	// Gate-phase read-out: adversarial frames served to rejection by a
	// persistent daemon and the process-wide heap objects each cost.
	GateFrames         int64   `json:"gate_frames"`
	GateAllocsPerFrame float64 `json:"gate_allocs_per_frame"`
}

type persistRunOpts struct {
	devices      int
	attEvery     time.Duration
	master       string
	fresh        protocol.FreshnessKind
	auth         protocol.AuthKind
	out, variant string
}

// waitUntil polls cond until it holds or the drill dies. The bench is a
// hard gate (CI runs it), so a timeout is a failure, not a skip.
func waitUntil(what string, d time.Duration, cond func() bool) {
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			log.Fatalf("attest-loadgen: timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func runPersist(opts persistRunOpts) {
	res := benchPersist{
		Bench:     "persist-restart",
		Freshness: opts.fresh.String(),
		Auth:      opts.auth.String(),
	}
	for _, policy := range []journal.FsyncPolicy{journal.FsyncAlways, journal.FsyncInterval} {
		res.Drills = append(res.Drills, runPersistDrill(opts, policy))
	}
	res.GateFrames, res.GateAllocsPerFrame = runPersistGate(opts)

	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		log.Fatalf("attest-loadgen: %v", err)
	}
	fmt.Println(string(buf))
	if opts.out != "" {
		if err := writeSummary(opts.out, opts.variant, buf); err != nil {
			log.Fatalf("attest-loadgen: %v", err)
		}
		log.Printf("attest-loadgen: wrote %s", opts.out)
	}
}

// runPersistDrill is one kill -9/restart cycle under the given policy.
func runPersistDrill(opts persistRunOpts, policy journal.FsyncPolicy) benchPersistDrill {
	t0 := time.Now()
	dir, err := os.MkdirTemp("", "attest-persist-*")
	if err != nil {
		log.Fatalf("attest-loadgen: %v", err)
	}
	defer os.RemoveAll(dir)

	popts := server.PersistOptions{
		Fsync:         policy,
		FsyncInterval: 10 * time.Millisecond,
		CompactEvery:  256,
	}
	mkServer := func(ps *server.PersistentStore) *server.Server {
		s, err := server.New(server.Config{
			Freshness:    opts.fresh,
			Auth:         opts.auth,
			MasterSecret: []byte(opts.master),
			Golden:       core.GoldenRAMPattern(),
			AttestEvery:  opts.attEvery,
			Store:        ps,
		})
		if err != nil {
			log.Fatalf("attest-loadgen: %v", err)
		}
		return s
	}

	ps1, err := server.OpenPersistentStore(dir, popts)
	if err != nil {
		log.Fatalf("attest-loadgen: %v", err)
	}
	srv1 := mkServer(ps1)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("attest-loadgen: %v", err)
	}
	addr := ln.Addr().String()
	go srv1.Serve(ln) //nolint:errcheck
	log.Printf("attest-loadgen: restart drill fsync=%s on %s (%d devices)", policy, addr, opts.devices)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	agents := make([]*agent.Agent, opts.devices)
	var wg sync.WaitGroup
	for i := range agents {
		a, err := agent.New(agent.Config{
			DeviceID:     fmt.Sprintf("persist-%03d", i),
			Freshness:    opts.fresh,
			Auth:         opts.auth,
			MasterSecret: []byte(opts.master),
			StatsEvery:   20 * time.Millisecond,
		})
		if err != nil {
			log.Fatalf("attest-loadgen: %v", err)
		}
		agents[i] = a
		wg.Add(1)
		go func() {
			defer wg.Done()
			dial := func(ctx context.Context) (net.Conn, error) {
				var d net.Dialer
				return d.DialContext(ctx, "tcp", addr)
			}
			a.Run(ctx, dial, agent.Backoff{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond}) //nolint:errcheck
		}()
	}

	// Phase 1: every stream advances past its initial state before the axe.
	target := uint64(opts.devices) * 5
	waitUntil("pre-kill accepted rounds", 30*time.Second, func() bool {
		return srv1.Counters().ResponsesAccepted >= target
	})
	pre := srv1.Counters().ResponsesAccepted

	// kill -9: no drain, no sentinel, no final fsync. The server closes
	// first so no serving goroutine touches the store mid-kill — from the
	// agents' side this is exactly a process death: connections drop and
	// the supervised redial loops begin hammering the dead address.
	srv1.Close()
	ps1.Kill()

	ps2, err := server.OpenPersistentStore(dir, popts)
	if err != nil {
		log.Fatalf("attest-loadgen: reopening state dir: %v", err)
	}
	recovered := ps2.RecoveredPending()
	srv2 := mkServer(ps2)
	var ln2 net.Listener
	waitUntil("rebind of the drill address", 10*time.Second, func() bool {
		ln2, err = net.Listen("tcp", addr)
		return err == nil
	})
	go srv2.Serve(ln2) //nolint:errcheck

	// Phase 2: the same agents reconnect and must complete accepted rounds
	// against the restarted daemon, draining the recovered-device table.
	waitUntil("post-restart accepted rounds", 30*time.Second, func() bool {
		return srv2.Counters().ResponsesAccepted >= target
	})
	waitUntil("all recovered devices claimed", 10*time.Second, func() bool {
		return ps2.RecoveredPending() == 0
	})
	cancel()
	wg.Wait()

	// The freshness verdict comes from the provers themselves: their trust
	// anchors saw every counter both daemons ever issued, and a single
	// replayed or stale one would land on FreshnessRejected.
	var fleet protocol.StatsReport
	for _, a := range agents {
		snap := a.Snapshot()
		fleet.Accumulate(&snap)
	}
	c := srv2.Counters()
	js := ps2.Stats()
	srv2.Close()
	ps2.Close() //nolint:errcheck

	drill := benchPersistDrill{
		Fsync:               policy.String(),
		Devices:             opts.devices,
		PreKillAccepted:     pre,
		RecoveredDevices:    recovered,
		RecoveredExact:      c.RecoveredExact,
		RecoveredJumped:     c.RecoveredJumped,
		PostRestartAccepted: c.ResponsesAccepted,
		FreshnessRejects:    fleet.FreshnessRejected,
		JournalAppends:      js.Appends,
		JournalBytes:        js.Bytes,
		JournalFsyncs:       js.Fsyncs,
		JournalCompactions:  js.Compactions,
		DurationSec:         time.Since(t0).Seconds(),
	}

	if recovered != opts.devices {
		log.Fatalf("attest-loadgen: fsync=%s recovered %d devices, want %d", policy, recovered, opts.devices)
	}
	if drill.FreshnessRejects != 0 {
		log.Fatalf("attest-loadgen: fsync=%s drill saw %d device freshness rejects, want 0", policy, drill.FreshnessRejects)
	}
	switch policy {
	case journal.FsyncAlways:
		// Write-ahead journaling: a counter is never on the wire before it
		// is on disk, so every recovery adopts live-exact.
		if c.RecoveredExact != uint64(opts.devices) || c.RecoveredJumped != 0 {
			log.Fatalf("attest-loadgen: fsync=always adoptions exact=%d jumped=%d, want %d/0",
				c.RecoveredExact, c.RecoveredJumped, opts.devices)
		}
	case journal.FsyncInterval:
		// The killed journal may have lost its synced tail: every recovery
		// must take the restart jump, never replay live.
		if c.RecoveredJumped != uint64(opts.devices) || c.RecoveredExact != 0 {
			log.Fatalf("attest-loadgen: fsync=interval adoptions exact=%d jumped=%d, want 0/%d",
				c.RecoveredExact, c.RecoveredJumped, opts.devices)
		}
	}
	log.Printf("attest-loadgen: fsync=%s drill ok: %d recovered (exact=%d jumped=%d), 0 freshness rejects",
		policy, recovered, c.RecoveredExact, c.RecoveredJumped)
	return drill
}

// runPersistGate re-pins the zero-allocation gate with the persistence
// wrapper behind the daemon: one connection pumps unsolicited forged
// responses and malformed junk, and the process-wide heap objects per
// frame must stay at zero — the write-behind journal never appears on the
// reject path.
func runPersistGate(opts persistRunOpts) (int64, float64) {
	dir, err := os.MkdirTemp("", "attest-persist-gate-*")
	if err != nil {
		log.Fatalf("attest-loadgen: %v", err)
	}
	defer os.RemoveAll(dir)
	ps, err := server.OpenPersistentStore(dir, server.PersistOptions{Fsync: journal.FsyncInterval})
	if err != nil {
		log.Fatalf("attest-loadgen: %v", err)
	}
	defer ps.Close() //nolint:errcheck
	srv, err := server.New(server.Config{
		Freshness:    opts.fresh,
		Auth:         opts.auth,
		MasterSecret: []byte(opts.master),
		Golden:       core.GoldenRAMPattern(),
		// One initial issue during warm-up, then nothing: only the
		// adversarial gate path runs inside the measured window.
		AttestEvery: time.Minute,
		Store:       ps,
	})
	if err != nil {
		log.Fatalf("attest-loadgen: %v", err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("attest-loadgen: %v", err)
	}
	go srv.Serve(ln) //nolint:errcheck

	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		log.Fatalf("attest-loadgen: %v", err)
	}
	tc := transport.NewConn(nc, transport.Options{
		ReadTimeout:  250 * time.Millisecond,
		WriteTimeout: 10 * time.Second,
	})
	defer tc.Close()
	hello := &protocol.Hello{Freshness: opts.fresh, Auth: opts.auth, DeviceID: "persist-gate"}
	if err := tc.Send(hello.Encode()); err != nil {
		log.Fatalf("attest-loadgen: hello: %v", err)
	}
	go func() { // drain the daemon's requests so its writes never block
		for {
			if _, err := tc.RecvShared(); err != nil && !transport.IsTimeout(err) {
				return
			}
		}
	}()

	pump := func(n int) {
		var buf []byte
		junk := []byte{0x41, 0x50, 0xFF, 0x00, 0x00} // response magic, bogus version
		for i := 0; i < n; i++ {
			if i%2 == 0 {
				forged := protocol.AttResp{Nonce: 3_000_000_019 + uint64(i), Counter: uint64(i)}
				buf = forged.AppendEncode(buf[:0])
			} else {
				buf = append(buf[:0], junk...)
			}
			if err := tc.Send(buf); err != nil {
				log.Fatalf("attest-loadgen: gate pump: %v", err)
			}
		}
	}
	drained := func(floor uint64) func() bool {
		return func() bool { return srv.Counters().FramesIn >= floor }
	}

	const warm, frames = 2000, 20000
	pump(warm)
	waitUntil("gate warm-up drain", 30*time.Second, drained(warm))

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	pump(frames)
	waitUntil("gate frame drain", 60*time.Second, drained(warm+frames))
	runtime.ReadMemStats(&after)

	allocs := float64(after.Mallocs-before.Mallocs) / float64(frames)
	// The gate itself is pinned to zero in the unit tests; this end-to-end
	// figure tolerates stray runtime objects (timers, the drain goroutine's
	// scheduling) but fails on any per-frame allocation.
	if allocs > 0.5 {
		log.Fatalf("attest-loadgen: gate rejects over persistent store cost %.3f allocs/frame, want ~0", allocs)
	}
	log.Printf("attest-loadgen: persistent gate ok: %d frames at %.4f allocs/frame", frames, allocs)
	return frames, allocs
}
