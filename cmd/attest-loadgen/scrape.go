package main

import (
	"net/http"
	"strings"
	"sync"
	"time"

	"proverattest/internal/obs"
)

// liveMetrics scrapes a daemon's /metrics endpoint on a fixed cadence
// during the traffic phase and keeps the first and latest samples, so the
// summary can report both point-in-time state (histogram means) and
// rate-over-the-run deltas. Scraping rides its own goroutine and HTTP
// connection — the observation path never touches the loadgen's traffic
// sockets.
type liveMetrics struct {
	url    string
	client *http.Client

	mu      sync.Mutex
	scrapes int
	first   map[string]float64
	firstT  time.Time
	last    map[string]float64
	lastT   time.Time
}

func newLiveMetrics(url string) *liveMetrics {
	return &liveMetrics{url: url, client: &http.Client{Timeout: 2 * time.Second}}
}

// run scrapes every interval until the deadline, then once more for the
// final state. Scrape failures are skipped, not fatal: a saturated box
// missing a sample beats killing the run.
func (l *liveMetrics) run(every time.Duration, deadline time.Time) {
	for time.Now().Before(deadline) {
		l.scrapeOnce()
		sleep := every
		if until := time.Until(deadline); until < sleep {
			sleep = until
		}
		if sleep > 0 {
			time.Sleep(sleep)
		}
	}
	l.scrapeOnce()
}

func (l *liveMetrics) scrapeOnce() {
	resp, err := l.client.Get(l.url)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	series, err := obs.ParseText(resp.Body)
	if err != nil {
		return
	}
	now := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.scrapes++
	if l.first == nil {
		l.first, l.firstT = series, now
	}
	l.last, l.lastT = series, now
}

// sumFamily totals every series of one family (all label sets) in a
// sample.
func sumFamily(sample map[string]float64, family string) float64 {
	var sum float64
	for key, v := range sample {
		if key == family || strings.HasPrefix(key, family+"{") {
			sum += v
		}
	}
	return sum
}

// histMeanNs derives a histogram's mean observation in nanoseconds from
// its _sum (seconds) and _count series.
func histMeanNs(sample map[string]float64, name string) float64 {
	count := sample[name+"_count"]
	if count == 0 {
		return 0
	}
	return sample[name+"_sum"] * 1e9 / count
}

// fill derives the summary's live_* fields from the collected samples.
func (l *liveMetrics) fill(res *benchServer) {
	l.mu.Lock()
	defer l.mu.Unlock()
	res.MetricsScrapes = l.scrapes
	if l.last == nil {
		return
	}
	// Point-in-time means over the whole run, from the daemon's own
	// histograms: the server-observed half of the asymmetry read-out
	// (the client-observed half is AsymmetryRatio above).
	res.LiveGateNsMean = histMeanNs(l.last, "attestd_gate_seconds")
	res.LiveAttestNsMean = histMeanNs(l.last, "attestd_attest_seconds")
	if res.LiveGateNsMean > 0 {
		res.LiveAsymmetryRatio = res.LiveAttestNsMean / res.LiveGateNsMean
	}
	// Rates from first→last scrape deltas (0 with a single scrape).
	if window := l.lastT.Sub(l.firstT).Seconds(); window > 0 {
		res.LiveRejectsPerSec = (sumFamily(l.last, "attestd_rejects_total") -
			sumFamily(l.first, "attestd_rejects_total")) / window
		res.LiveFramesInPerSec = (l.last["attestd_frames_total"] -
			l.first["attestd_frames_total"]) / window
	}
}
