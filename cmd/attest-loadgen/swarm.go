package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"proverattest/internal/core"
	"proverattest/internal/protocol"
	"proverattest/internal/server"
	"proverattest/internal/swarm"
	"proverattest/internal/transport"
)

// Swarm mode (-swarm) benches collective attestation end-to-end: an
// in-process attestd provisioned as a swarm verifier, one real TCP
// connection to the spanning-tree root (the gateway — the only fleet
// member the daemon can reach), and an in-process swarm.Mesh standing in
// for the radio fabric below it. Every aggregate round crosses the
// socket as exactly two frames whatever the fleet size; a mid-run
// adversary drill (an epoch-desynced member) must be localized by
// bisection over the same socket and resynced without eviction.
//
// The summary folds in the crossover ladder (verifier messages and
// compute, swarm vs direct, up to N=256) and the full adversary matrix
// on the simulated fleet, and hard-gates on 100% detection+localization
// and on the measured message reduction.

type benchSwarmCell struct {
	Adversary    string `json:"adversary"`
	Target       int    `json:"target"`
	Detected     bool   `json:"detected"`
	Localized    bool   `json:"localized"`
	Recovered    bool   `json:"recovered"`
	BisectProbes uint64 `json:"bisect_probes"`
	Verdict      string `json:"verdict,omitempty"`
}

type benchSwarm struct {
	Bench     string `json:"bench"`
	Freshness string `json:"freshness"`
	Auth      string `json:"auth"`
	Transport string `json:"transport"`

	Devices     int     `json:"devices"`
	Fanout      int     `json:"fanout"`
	TreeDepth   int     `json:"tree_depth"`
	DurationSec float64 `json:"duration_sec"`

	// Live socket phase: aggregate rounds over the gateway connection.
	Rounds uint64 `json:"rounds"`
	// Accepted counts every aggregate check the verifier passed —
	// full rounds plus clean own-only probes during bisection/resync.
	Accepted   uint64 `json:"checks_accepted"`
	Bisections uint64 `json:"bisection_probes"`
	RoundsPerSec float64 `json:"rounds_per_sec"`

	// Verifier-side message accounting: a direct deployment spends 2N
	// frames per full-fleet round; the swarm spends 2 plus amortized
	// bisection probes. NetMsgReduction is the measured ratio.
	DirectMsgsPerRound   int     `json:"direct_msgs_per_round"`
	SwarmMsgsPerRound    float64 `json:"swarm_msgs_per_round"`
	NetMsgReduction      float64 `json:"net_msg_reduction"`
	VerifierNsPerRound   int64   `json:"verifier_ns_per_round"`
	TreeMessagesPerRound float64 `json:"tree_msgs_per_round"`

	// Mid-run adversary drill on the live socket.
	DrillTarget     int    `json:"drill_target"`
	DrillLocalized  bool   `json:"drill_localized"`
	DrillResynced   bool   `json:"drill_resynced"`
	DrillBisections uint64 `json:"drill_bisections"`

	Crossover swarm.CrossoverReport `json:"crossover"`

	Matrix          []benchSwarmCell `json:"adversary_matrix"`
	MatrixDetected  int              `json:"matrix_detected"`
	MatrixLocalized int              `json:"matrix_localized"`
	MatrixCells     int              `json:"matrix_cells"`
}

type swarmRunOpts struct {
	devices         int
	fanout          int
	duration        time.Duration
	every           time.Duration
	master          string
	fresh           protocol.FreshnessKind
	auth            protocol.AuthKind
	out, variant    string
	minMsgReduction float64
}

// swarmGateway bridges the daemon's gateway connection to the in-process
// mesh: every SwarmReq that arrives (full rounds and bisection probes)
// is aggregated over the mesh and answered on the same socket.
type swarmGateway struct {
	mu   sync.Mutex
	mesh *swarm.Mesh
	tc   *transport.Conn
}

func (g *swarmGateway) run() {
	for {
		frame, err := g.tc.Recv()
		if err != nil {
			if transport.IsTimeout(err) {
				continue
			}
			return
		}
		if protocol.ClassifyFrame(frame) != protocol.FrameSwarmReq {
			continue
		}
		req, err := protocol.DecodeSwarmReq(frame)
		if err != nil {
			continue
		}
		g.mu.Lock()
		resp, err := g.mesh.Query(req)
		g.mu.Unlock()
		if err != nil || resp == nil {
			continue
		}
		if err := g.tc.Send(resp.Encode()); err != nil {
			return
		}
	}
}

func runSwarm(o swarmRunOpts) {
	ids := swarm.FleetIDs(o.devices)
	golden := core.GoldenRAMPattern()
	topo := core.NewTopology(o.devices, o.fanout, 0)
	root, ok := topo.Root()
	if !ok {
		log.Fatal("attest-loadgen: empty swarm topology")
	}

	srv, err := server.New(server.Config{
		Freshness:    o.fresh,
		Auth:         o.auth,
		MasterSecret: []byte(o.master),
		Golden:       golden,
		// The deployment attests collectively; park the 1:1 schedule.
		AttestEvery: time.Hour,
		Swarm: &server.SwarmConfig{
			IDs:     ids,
			Fanout:  o.fanout,
			Every:   o.every,
			Timeout: 5 * time.Second,
		},
	})
	if err != nil {
		log.Fatalf("attest-loadgen: %v", err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("attest-loadgen: %v", err)
	}
	go srv.Serve(ln) //nolint:errcheck
	target := ln.Addr().String()
	log.Printf("attest-loadgen: in-process attestd (swarm, %d devices, fanout %d) on %s",
		o.devices, o.fanout, target)

	mesh, err := swarm.NewMesh(swarm.Params{
		Master: []byte(o.master),
		IDs:    ids,
		Golden: golden,
		Fanout: o.fanout,
	})
	if err != nil {
		log.Fatalf("attest-loadgen: %v", err)
	}
	nc, err := net.Dial("tcp", target)
	if err != nil {
		log.Fatalf("attest-loadgen: dialing %s: %v", target, err)
	}
	gw := &swarmGateway{
		mesh: mesh,
		tc: transport.NewConn(nc, transport.Options{
			ReadTimeout:  250 * time.Millisecond,
			WriteTimeout: 10 * time.Second,
		}),
	}
	defer gw.tc.Close()
	hello := &protocol.Hello{Freshness: o.fresh, Auth: o.auth, DeviceID: ids[root]}
	if err := gw.tc.Send(hello.Encode()); err != nil {
		log.Fatalf("attest-loadgen: hello: %v", err)
	}
	go gw.run()

	// Phase 1: clean aggregate rounds for half the run.
	t0 := time.Now()
	time.Sleep(o.duration / 2)
	preDrill := srv.Counters()

	// Phase 2: adversary drill on the live socket. The deepest member's
	// write monitor fires (Taint), it re-measures under a fresh epoch,
	// and its own tag desyncs from the verifier's record: the daemon
	// must detect the broken aggregate, bisect down the tree on the same
	// socket, and resync the member instead of evicting it.
	drillTarget := topo.MemberAt(topo.Len() - 1)
	gw.mu.Lock()
	mesh.Nodes[drillTarget].Taint()
	gw.mu.Unlock()

	drillDeadline := time.Now().Add(o.duration/2 + 5*time.Second)
	var drillLocalized bool
	for time.Now().Before(drillDeadline) {
		for _, f := range srv.SwarmFindings() {
			if f.Member == drillTarget && f.Cause == swarm.CauseMismatch {
				drillLocalized = true
			}
		}
		if drillLocalized {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	postDrill := srv.SwarmStats()
	// Resynced = the member is still in the tree and rounds verify again.
	var drillResynced bool
	for time.Now().Before(drillDeadline) {
		if srv.SwarmStats().Accepted > postDrill.Accepted {
			drillResynced = srv.SwarmTopology().Len() == o.devices
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if rest := o.duration - time.Since(t0); rest > 0 {
		time.Sleep(rest)
	}
	elapsed := time.Since(t0)
	c := srv.Counters()
	st := srv.SwarmStats()

	// Offline read-outs: the crossover ladder on real primitives and the
	// full adversary matrix on the simulated (energy-metered) fleet.
	log.Printf("attest-loadgen: running crossover ladder (up to N=256)")
	crossover, err := swarm.RunCrossover([]int{4, 16, 64, 256}, o.fanout, 16*1024)
	if err != nil {
		log.Fatalf("attest-loadgen: crossover: %v", err)
	}
	log.Printf("attest-loadgen: running adversary matrix (16 members)")
	cells, err := swarm.RunSwarmMatrix(16, 2)
	if err != nil {
		log.Fatalf("attest-loadgen: adversary matrix: %v", err)
	}

	res := benchSwarm{
		Bench:       "swarm",
		Freshness:   o.fresh.String(),
		Auth:        o.auth.String(),
		Transport:   "tcp " + target,
		Devices:     o.devices,
		Fanout:      o.fanout,
		TreeDepth:   topo.Height(),
		DurationSec: elapsed.Seconds(),

		Rounds:       c.SwarmRounds,
		Accepted:     st.Accepted,
		Bisections:   c.SwarmBisections,
		RoundsPerSec: float64(c.SwarmRounds) / elapsed.Seconds(),

		DirectMsgsPerRound: 2 * o.devices,

		DrillTarget:     drillTarget,
		DrillLocalized:  drillLocalized,
		DrillResynced:   drillResynced,
		DrillBisections: c.SwarmBisections - preDrill.SwarmBisections,

		Crossover:   crossover,
		MatrixCells: len(cells),
	}
	if c.SwarmRounds > 0 {
		res.SwarmMsgsPerRound = float64(2*c.SwarmRounds+c.SwarmBisections*2) / float64(c.SwarmRounds)
		res.NetMsgReduction = float64(res.DirectMsgsPerRound) / res.SwarmMsgsPerRound
		res.TreeMessagesPerRound = float64(mesh.TreeMessages) / float64(c.SwarmRounds)
	}
	for _, pt := range crossover.Points {
		if pt.N == o.devices {
			res.VerifierNsPerRound = int64(pt.SwarmVerifyUS * 1e3)
		}
	}
	for _, cell := range cells {
		res.Matrix = append(res.Matrix, benchSwarmCell{
			Adversary:    cell.Adversary.String(),
			Target:       cell.Target,
			Detected:     cell.Detected,
			Localized:    cell.Localized,
			Recovered:    cell.RecoveredClean,
			BisectProbes: cell.BisectProbes,
			Verdict:      cell.Verdict,
		})
		if cell.Adversary == swarm.SwarmHonestFleet {
			continue
		}
		if cell.Detected {
			res.MatrixDetected++
		}
		if cell.Localized {
			res.MatrixLocalized++
		}
	}

	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		log.Fatalf("attest-loadgen: %v", err)
	}
	fmt.Println(string(buf))
	if o.out != "" {
		variant := o.variant
		if variant == "" {
			variant = "swarm"
		}
		if err := writeSummary(o.out, variant, buf); err != nil {
			log.Fatalf("attest-loadgen: %v", err)
		}
		log.Printf("attest-loadgen: wrote %s", o.out)
	}

	// Hard gates: the swarm claims are measured, not asserted.
	if res.Rounds == 0 || res.Accepted == 0 {
		log.Fatalf("attest-loadgen: no swarm rounds verified (rounds=%d accepted=%d) — gateway unreachable?",
			res.Rounds, res.Accepted)
	}
	if !res.DrillLocalized || !res.DrillResynced {
		log.Fatalf("attest-loadgen: live adversary drill failed (localized=%v resynced=%v)",
			res.DrillLocalized, res.DrillResynced)
	}
	adversaries := res.MatrixCells - 1 // honest cell carries no adversary
	if res.MatrixDetected != adversaries || res.MatrixLocalized != adversaries {
		log.Fatalf("attest-loadgen: adversary matrix below 100%%: detected %d/%d localized %d/%d",
			res.MatrixDetected, adversaries, res.MatrixLocalized, adversaries)
	}
	if o.minMsgReduction > 0 && res.NetMsgReduction < o.minMsgReduction {
		log.Fatalf("attest-loadgen: message reduction %.1fx below the %.0fx floor (%d direct vs %.1f swarm frames/round)",
			res.NetMsgReduction, o.minMsgReduction, res.DirectMsgsPerRound, res.SwarmMsgsPerRound)
	}
}
