package main

// The -tier-isolation drill: the QoS proof behind the tiered admission
// layer. Two device classes share one in-process daemon — a "gold" tier
// of honest attesters and a "bulk" tier with a hard tier-wide budget.
// Phase one measures the gold tier's authentic-round latency unloaded;
// phase two pins the bulk tier at a multiple of its budget with
// adversarial frames and measures gold again. The claim under test is the
// fleet-scale version of the paper's §3.1 availability argument: a
// flooding device class exhausts its *own* admission budget and dies at
// the cheap gate, so another class's authentic p99 moves by at most a
// bounded factor (-max-p99-ratio, CI-gated at 2x). The summary lands in
// BENCH_server.json as the "tier_isolation" variant.

import (
	"encoding/json"
	"fmt"
	"log"
	"net"
	"sort"
	"sync"
	"time"

	"proverattest/internal/core"
	"proverattest/internal/protocol"
	"proverattest/internal/server"
	"proverattest/internal/transport"
)

type benchTierIsolation struct {
	Bench     string `json:"bench"`
	Freshness string `json:"freshness"`
	Auth      string `json:"auth"`

	GoldDevices int     `json:"gold_devices"`
	BulkDevices int     `json:"bulk_devices"`
	PhaseSec    float64 `json:"phase_sec"`

	// The bulk tier's provisioned budget and the multiple of it the
	// flood was pinned at.
	BulkBudgetPerSec float64 `json:"bulk_budget_per_sec"`
	FloodMultiple    float64 `json:"flood_multiple"`

	// Flood accounting: frames the bulk tier pushed, how many its
	// tier bucket admitted, how many died as rejects{tier_limited}.
	BulkFramesSent int64  `json:"bulk_frames_sent"`
	BulkAdmitted   uint64 `json:"bulk_admitted"`
	BulkLimited    uint64 `json:"bulk_limited"`
	GoldAdmitted   uint64 `json:"gold_admitted"`

	// Gold-tier authentic-round latency, unloaded vs under the flood.
	UnloadedRounds   int64 `json:"unloaded_rounds"`
	LoadedRounds     int64 `json:"loaded_rounds"`
	UnloadedRoundP50 int64 `json:"unloaded_round_ns_p50"`
	UnloadedRoundP99 int64 `json:"unloaded_round_ns_p99"`
	LoadedRoundP50   int64 `json:"loaded_round_ns_p50"`
	LoadedRoundP99   int64 `json:"loaded_round_ns_p99"`

	// P99Ratio is loaded/unloaded — the isolation read-out the CI smoke
	// gates (≤ MaxP99Ratio when that is set).
	P99Ratio    float64 `json:"p99_ratio"`
	MaxP99Ratio float64 `json:"max_p99_ratio,omitempty"`
}

type tierIsoOpts struct {
	devices     int
	duration    time.Duration
	attEvery    time.Duration
	master      string
	fresh       protocol.FreshnessKind
	auth        protocol.AuthKind
	bulkBudget  float64
	floodX      float64
	maxP99Ratio float64
	out         string
	variant     string
}

// connectDevice dials one loadgen device into the daemon with its tier
// class advertised. respond starts the authentic responder; a flood-only
// device instead just drains its reads (the daemon's requests to it time
// out server-side), so it costs no measurement CPU — on a small box an
// honest bulk responder's full-memory MACs would perturb the gold tier
// through the scheduler, not through admission, which is not the effect
// under test.
func connectDevice(d *device, target string, fresh protocol.FreshnessKind, auth protocol.AuthKind, tierClass uint8, respond bool) {
	nc, err := net.Dial("tcp", target)
	if err != nil {
		log.Fatalf("attest-loadgen: dialing %s: %v", target, err)
	}
	d.tc = transport.NewConn(nc, transport.Options{
		ReadTimeout:  250 * time.Millisecond,
		WriteTimeout: 10 * time.Second,
	})
	hello := &protocol.Hello{Freshness: fresh, Auth: auth, Tier: tierClass, DeviceID: d.id}
	if err := d.tc.Send(hello.Encode()); err != nil {
		log.Fatalf("attest-loadgen: hello: %v", err)
	}
	if respond {
		go d.serveReads()
		return
	}
	go func() {
		for {
			if _, err := d.tc.RecvShared(); err != nil && !transport.IsTimeout(err) {
				return
			}
		}
	}()
}

// drainRounds takes (and clears) the accumulated authentic-round samples
// across a device set, sorted ascending.
func drainRounds(devs []*device) []int64 {
	var all []int64
	for _, d := range devs {
		d.mu.Lock()
		all = append(all, d.roundNs...)
		d.roundNs = d.roundNs[:0]
		d.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all
}

func runTierIsolation(o tierIsoOpts) {
	golden := core.GoldenRAMPattern()
	goldN := o.devices / 2
	if goldN < 1 {
		goldN = 1
	}
	bulkN := o.devices - goldN
	if bulkN < 1 {
		bulkN = 1
	}

	srv, err := server.New(server.Config{
		Freshness:    o.fresh,
		Auth:         o.auth,
		MasterSecret: []byte(o.master),
		Golden:       golden,
		AttestEvery:  o.attEvery,
		// Bulk responses die at the bulk tier gate, so bulk requests go
		// unanswered; a short timeout recycles their inflight slots before
		// the shared MaxInflight pool can starve gold issuance (which would
		// measure slot exhaustion, not admission isolation).
		RequestTimeout: 500 * time.Millisecond,
		MaxInflight:    8 * (goldN + bulkN),
		Tiers: &server.TierPolicy{
			// Gold is uncapped — its honest schedule is the workload under
			// protection. Bulk gets a hard tier-wide budget; the drill
			// floods it at floodX times that.
			Tiers: []server.TierSpec{
				{Name: "gold", Class: 1, Match: []string{"gold-"}},
				{Name: "bulk", Class: 2, Match: []string{"bulk-"}, RatePerSec: o.bulkBudget},
			},
			Default: "bulk",
		},
	})
	if err != nil {
		log.Fatalf("attest-loadgen: %v", err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("attest-loadgen: %v", err)
	}
	go srv.Serve(ln) //nolint:errcheck
	target := ln.Addr().String()
	log.Printf("attest-loadgen: tier-isolation drill on %s (gold %d devices uncapped, bulk %d devices at %.0f f/s budget, flood %.0fx)",
		target, goldN, bulkN, o.bulkBudget, o.floodX)

	gold := make([]*device, goldN)
	for i := range gold {
		id := fmt.Sprintf("gold-%03d", i)
		gold[i] = &device{
			id:      id,
			key:     protocol.DeriveDeviceKey([]byte(o.master), id),
			golden:  golden,
			roundNs: make([]int64, 0, 4096),
		}
		connectDevice(gold[i], target, o.fresh, o.auth, 1, true)
	}

	// Warm-up: every gold connection completes several rounds and the
	// runtime (heap, scheduler) settles before the unloaded baseline
	// window opens — the first rounds' GC ramp would otherwise pollute
	// the baseline tail.
	time.Sleep(o.attEvery + 500*time.Millisecond)
	drainRounds(gold)

	// Phase one: unloaded gold baseline.
	time.Sleep(o.duration)
	unloaded := drainRounds(gold)

	// Phase two: bulk tier floods at floodX times its budget while gold
	// keeps attesting. The bulk devices are honest responders too — their
	// own rounds ride (and compete inside) the bulk budget, which is the
	// point: nothing bulk does shares a bucket with gold.
	bulk := make([]*device, bulkN)
	for i := range bulk {
		id := fmt.Sprintf("bulk-%03d", i)
		bulk[i] = &device{
			id:      id,
			key:     protocol.DeriveDeviceKey([]byte(o.master), id),
			golden:  golden,
			sendNs:  make([]int64, 0, int(o.floodX*o.bulkBudget*o.duration.Seconds())/bulkN+1024),
			roundNs: make([]int64, 0, 1024),
		}
		connectDevice(bulk[i], target, o.fresh, o.auth, 2, false)
	}
	perDeviceRate := o.floodX * o.bulkBudget / float64(bulkN)
	deadline := time.Now().Add(o.duration)
	t0 := time.Now()
	var wg sync.WaitGroup
	for _, d := range bulk {
		wg.Add(1)
		go func(d *device) {
			defer wg.Done()
			d.pumpAdversarial(perDeviceRate, deadline)
		}(d)
	}
	wg.Wait()
	phaseB := time.Since(t0)
	loaded := drainRounds(gold)

	var bulkSent int64
	for _, d := range bulk {
		d.mu.Lock()
		bulkSent += d.framesSent
		d.tc.Close()
		d.mu.Unlock()
	}
	for _, d := range gold {
		d.tc.Close()
	}

	res := benchTierIsolation{
		Bench:            "server-tier-isolation",
		Freshness:        o.fresh.String(),
		Auth:             o.auth.String(),
		GoldDevices:      goldN,
		BulkDevices:      bulkN,
		PhaseSec:         o.duration.Seconds(),
		BulkBudgetPerSec: o.bulkBudget,
		FloodMultiple:    o.floodX,
		BulkFramesSent:   bulkSent,
		UnloadedRounds:   int64(len(unloaded)),
		LoadedRounds:     int64(len(loaded)),
		UnloadedRoundP50: percentile(unloaded, 0.50),
		UnloadedRoundP99: percentile(unloaded, 0.99),
		LoadedRoundP50:   percentile(loaded, 0.50),
		LoadedRoundP99:   percentile(loaded, 0.99),
		MaxP99Ratio:      o.maxP99Ratio,
	}
	for _, st := range srv.AdminTiers() {
		switch st.Name {
		case "gold":
			res.GoldAdmitted = st.Admitted
		case "bulk":
			res.BulkAdmitted = st.Admitted
			res.BulkLimited = st.Limited
		}
	}
	if res.UnloadedRoundP99 > 0 {
		res.P99Ratio = float64(res.LoadedRoundP99) / float64(res.UnloadedRoundP99)
	}

	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		log.Fatalf("attest-loadgen: %v", err)
	}
	fmt.Println(string(buf))
	if o.out != "" {
		if err := writeSummary(o.out, o.variant, buf); err != nil {
			log.Fatalf("attest-loadgen: %v", err)
		}
		log.Printf("attest-loadgen: wrote %s", o.out)
	}

	// Acceptance gates. The drill is only evidence if the flood really
	// exceeded its budget: the tier bucket must have refused frames, and
	// what it admitted must stay near budget x time (budget + burst slack;
	// a leak past that means the tier cap is not actually limiting).
	if res.UnloadedRounds == 0 || res.LoadedRounds == 0 {
		log.Fatalf("attest-loadgen: gold tier completed no authentic rounds (unloaded %d, loaded %d)",
			res.UnloadedRounds, res.LoadedRounds)
	}
	if res.BulkLimited == 0 {
		log.Fatalf("attest-loadgen: bulk tier was never tier-limited — the flood (%d frames) did not exceed its budget", bulkSent)
	}
	admittedCap := o.bulkBudget*phaseB.Seconds() + 2*o.bulkBudget // budget x time + burst + slack
	if float64(res.BulkAdmitted) > admittedCap*1.25 {
		log.Fatalf("attest-loadgen: bulk tier admitted %d frames, above the %.0f budget envelope — the tier cap leaks",
			res.BulkAdmitted, admittedCap)
	}
	if o.maxP99Ratio > 0 && res.P99Ratio > o.maxP99Ratio {
		log.Fatalf("attest-loadgen: gold p99 moved %.2fx under the bulk flood (unloaded %d ns -> loaded %d ns), above the %.1fx isolation bound",
			res.P99Ratio, res.UnloadedRoundP99, res.LoadedRoundP99, o.maxP99Ratio)
	}
	log.Printf("attest-loadgen: tier isolation held: gold p99 %.2fx under a %.0fx bulk flood (%d/%d bulk frames tier-limited)",
		res.P99Ratio, o.floodX, res.BulkLimited, bulkSent)
}
