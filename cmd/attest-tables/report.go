package main

import (
	"encoding/json"
	"fmt"
	"os"

	"proverattest/internal/core"
	"proverattest/internal/crypto/cost"
	"proverattest/internal/hwcost"
)

// Report is the machine-readable form of every reproduced artifact, for
// downstream comparison pipelines (`attest-tables -json`).
type Report struct {
	Table1    []PrimitiveRow `json:"table1_primitives_ms"`
	Section31 Section31      `json:"section31_memory_mac"`
	Table2    []MatrixRow    `json:"table2_mitigation_matrix"`
	Table3    Table3Data     `json:"table3_hardware_cost"`
	Section63 []OverheadRow  `json:"section63_overhead"`
}

// PrimitiveRow is one Table 1 entry.
type PrimitiveRow struct {
	Name    string  `json:"name"`
	Modeled float64 `json:"modeled_ms"`
	Paper   float64 `json:"paper_ms"`
}

// Section31 is the §3.1 memory-MAC computation.
type Section31 struct {
	ModeledMs float64 `json:"modeled_ms"`
	PaperMs   float64 `json:"paper_ms"`
}

// MatrixRow is one observed Table 2 cell.
type MatrixRow struct {
	Attack       string `json:"attack"`
	Freshness    string `json:"freshness"`
	Mitigated    bool   `json:"mitigated"`
	PaperSaysOK  bool   `json:"paper_mitigated"`
	Measurements uint64 `json:"measurements"`
}

// Table3Data holds the component costs and the baseline totals.
type Table3Data struct {
	CoreRegisters     int `json:"core_registers"`
	CoreLUTs          int `json:"core_luts"`
	MPUBaseRegisters  int `json:"eampu_base_registers"`
	MPUBaseLUTs       int `json:"eampu_base_luts"`
	MPURuleRegisters  int `json:"eampu_per_rule_registers"`
	MPURuleLUTs       int `json:"eampu_per_rule_luts"`
	BaselineRegisters int `json:"baseline_registers"`
	BaselineLUTs      int `json:"baseline_luts"`
}

// OverheadRow is one §6.3 configuration.
type OverheadRow struct {
	Name         string  `json:"configuration"`
	AddRegisters int     `json:"added_registers"`
	AddLUTs      int     `json:"added_luts"`
	RegisterPct  float64 `json:"register_pct"`
	LUTPct       float64 `json:"lut_pct"`
}

// buildReport runs every reproduction and collects the results.
func buildReport() (*Report, error) {
	r := &Report{}
	row := func(name string, c cost.Cycles, paper float64) {
		r.Table1 = append(r.Table1, PrimitiveRow{Name: name, Modeled: c.Millis(), Paper: paper})
	}
	row("sha1-hmac-fixed", cost.SHA1HMACFixed, 0.340)
	row("sha1-hmac-per-64B-block", cost.SHA1HMACPerBlock, 0.092)
	row("aes128-key-expansion", cost.AESKeyExpansion, 0.074)
	row("aes128-encrypt-block", cost.AESEncryptBlock, 0.288)
	row("aes128-decrypt-block", cost.AESDecryptBlock, 0.570)
	row("speck64128-key-expansion", cost.SpeckKeyExpansion, 0.016)
	row("speck64128-encrypt-block", cost.SpeckEncryptBlock, 0.017)
	row("speck64128-decrypt-block", cost.SpeckDecryptBlock, 0.015)
	row("ecdsa-secp160r1-sign", cost.ECDSASign, 183.464)
	row("ecdsa-secp160r1-verify", cost.ECDSAVerify, 170.907)

	r.Section31 = Section31{ModeledMs: cost.HMACSHA1(512 * 1024).Millis(), PaperMs: 754.032}

	results, err := core.RunMatrix()
	if err != nil {
		return nil, err
	}
	for _, m := range results {
		r.Table2 = append(r.Table2, MatrixRow{
			Attack:       m.Attack.String(),
			Freshness:    m.Freshness.String(),
			Mitigated:    m.Mitigated,
			PaperSaysOK:  core.PaperTable2[m.Attack][m.Freshness],
			Measurements: m.Measurements,
		})
	}

	base := hwcost.Baseline().Total()
	r.Table3 = Table3Data{
		CoreRegisters:     hwcost.Core.Registers,
		CoreLUTs:          hwcost.Core.LUTs,
		MPUBaseRegisters:  hwcost.MPUBase.Registers,
		MPUBaseLUTs:       hwcost.MPUBase.LUTs,
		MPURuleRegisters:  hwcost.MPUPerRule.Registers,
		MPURuleLUTs:       hwcost.MPUPerRule.LUTs,
		BaselineRegisters: base.Registers,
		BaselineLUTs:      base.LUTs,
	}
	for _, cfg := range hwcost.AllConfigs()[1:] {
		o := hwcost.OverheadVsBaseline(cfg)
		r.Section63 = append(r.Section63, OverheadRow{
			Name:         cfg.Name,
			AddRegisters: o.Added.Registers,
			AddLUTs:      o.Added.LUTs,
			RegisterPct:  o.RegisterPercent,
			LUTPct:       o.LUTPercent,
		})
	}
	return r, nil
}

// emitJSON writes the report to stdout.
func emitJSON() error {
	r, err := buildReport()
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("encoding report: %w", err)
	}
	return nil
}
