// Command attestd is the verifier daemon of the networked deployment: it
// listens on a TCP address, accepts prover-agent connections
// (cmd/attest-agent), keeps per-device verifier state, issues
// authenticated attestation requests on a schedule and validates the
// returned memory measurements.
//
//	attestd -listen :7950 -master fleet-secret
//
// With -flood N the daemon instead impersonates a verifier: after one
// honest request per connection it drives N forged/replayed/malformed
// frames at each connected agent, reproducing the paper's §3.1
// denial-of-service experiment over a real socket. The periodic status
// line reports both halves of the read-out: the daemon's own counters and
// the fleet's aggregated gate statistics.
package main

import (
	"flag"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof handlers; served only with -pprof
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"proverattest/internal/admin"
	"proverattest/internal/cluster"
	"proverattest/internal/core"
	"proverattest/internal/journal"
	"proverattest/internal/obs"
	"proverattest/internal/protocol"
	"proverattest/internal/server"
)

// tierFlags collects repeated -tier specs.
type tierFlags []string

func (t *tierFlags) String() string { return strings.Join(*t, ";") }
func (t *tierFlags) Set(v string) error {
	*t = append(*t, v)
	return nil
}

func main() {
	log.SetFlags(0)
	var tiers tierFlags
	flag.Var(&tiers, "tier", "admission tier spec, repeatable: name:class=N,match=prefix[+prefix...],rate=R,burst=B,conn-rate=R,conn-burst=B (replaces -conn-rate as the admission layer)")
	var (
		listen    = flag.String("listen", "127.0.0.1:7950", "TCP listen address")
		freshName = flag.String("freshness", "counter", "freshness policy: none | nonces | counter")
		authName  = flag.String("auth", "hmac-sha1", "request auth: none | hmac-sha1 | aes-128-cbc-mac | speck-64/128-cbc-mac | ecdsa-secp160r1")
		master    = flag.String("master", "proverattest-fleet-master", "master secret for per-device key derivation")

		attestEvery = flag.Duration("attest-every", time.Second, "per-prover attestation period")
		reqTimeout  = flag.Duration("request-timeout", 10*time.Second, "abandon unanswered requests after this long")
		maxInflight = flag.Int("max-inflight", 256, "global cap on outstanding requests")
		connRate    = flag.Float64("conn-rate", 0, "per-connection inbound frames/s budget (0 = unlimited)")
		fastPath    = flag.Bool("fastpath", false, "grant the O(1) fast path to provers with a clean write monitor")
		maxDevices  = flag.Int("max-devices", 0, "cap on distinct device identities (0 = default 4096)")

		floodTotal = flag.Int("flood", 0, "impersonator mode: flood each connection with N adversarial frames (0 = honest daemon)")
		floodRate  = flag.Float64("flood-rate", 0, "flood pacing in frames/s (0 = as fast as the socket accepts)")

		nodeName   = flag.String("node", "", "cluster mode: this daemon's node name (empty = standalone)")
		peerList   = flag.String("peers", "", "cluster peers as comma-separated name=addr pairs (this node excluded)")
		advertise  = flag.String("advertise", "", "address peers and redirected agents should dial for this node (default: -listen)")
		vnodes     = flag.Int("vnodes", 0, "virtual nodes per daemon on the consistent-hash ring (0 = default 128)")
		probeEvery = flag.Duration("probe-every", 2*time.Second, "cluster peer liveness probe period")
		daemonRate = flag.Float64("daemon-rate", 0, "daemon-wide inbound frames/s budget across all connections (0 = unlimited)")

		stateDir     = flag.String("state-dir", "", "persist verifier state (snapshot+journal) under this directory; a restart recovers every device's freshness stream (empty = in-memory only)")
		fsyncPolicy  = flag.String("fsync", "100ms", "journal durability: always (write-ahead, restart adopts exact) | none | a sync interval like 100ms (restart adopts via freshness jump)")
		compactEvery = flag.Int("compact-every", 4096, "rewrite the full state snapshot after this many journal appends")

		defaultTier = flag.String("default-tier", "", "tier for devices no rule or advertisement claims (default: the first -tier)")
		adminAddr   = flag.String("admin", "", "serve the admin API and /healthz,/readyz probes on this address, e.g. localhost:9151 (empty = off)")
		adminToken  = flag.String("admin-token", "", "bearer token required on mutating admin endpoints (empty = mutations disabled)")

		statusEvery = flag.Duration("status-every", 5*time.Second, "status line period (0 = silent)")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address, e.g. localhost:6060 (empty = off)")
		metricsAddr = flag.String("metrics", "", "serve Prometheus /metrics on this address, e.g. localhost:9150 (empty = off)")
	)
	flag.Parse()

	fresh, err := protocol.ParseFreshnessKind(*freshName)
	if err != nil {
		log.Fatalf("attestd: %v", err)
	}
	auth, err := protocol.ParseAuthKind(*authName)
	if err != nil {
		log.Fatalf("attestd: %v", err)
	}

	cfg := server.Config{
		Freshness:         fresh,
		Auth:              auth,
		MasterSecret:      []byte(*master),
		Golden:            core.GoldenRAMPattern(),
		AttestEvery:       *attestEvery,
		RequestTimeout:    *reqTimeout,
		MaxInflight:       *maxInflight,
		PerConnRatePerSec: *connRate,
		FastPath:          *fastPath,
		MaxDevices:        *maxDevices,
	}
	if auth == protocol.AuthECDSA {
		key, err := core.VerifierKeyPair()
		if err != nil {
			log.Fatalf("attestd: deriving ECDSA identity: %v", err)
		}
		cfg.ECDSAKey = key
	}
	if *floodTotal > 0 {
		cfg.Flood = &server.FloodConfig{Total: *floodTotal, RatePerSec: *floodRate}
	}
	cfg.MaxRatePerSec = *daemonRate
	if len(tiers) > 0 {
		specs, err := server.ParseTierSpecs(tiers)
		if err != nil {
			log.Fatalf("attestd: %v", err)
		}
		cfg.Tiers = &server.TierPolicy{Tiers: specs, Default: *defaultTier}
	} else if *defaultTier != "" {
		log.Fatalf("attestd: -default-tier needs at least one -tier")
	}

	var ps *server.PersistentStore
	if *stateDir != "" {
		policy, interval, err := journal.ParsePolicy(*fsyncPolicy)
		if err != nil {
			log.Fatalf("attestd: %v", err)
		}
		ps, err = server.OpenPersistentStore(*stateDir, server.PersistOptions{
			Fsync:         policy,
			FsyncInterval: interval,
			CompactEvery:  *compactEvery,
		})
		if err != nil {
			log.Fatalf("attestd: opening state dir: %v", err)
		}
		cfg.Store = ps
		log.Printf("attestd: persistent state in %s (fsync=%s), %d devices recovered",
			*stateDir, policy, ps.RecoveredPending())
	}

	var node *cluster.Node
	if *nodeName != "" {
		self := *advertise
		if self == "" {
			self = *listen
		}
		members := []cluster.Member{{Name: *nodeName, Addr: self}}
		if *peerList != "" {
			for _, pair := range strings.Split(*peerList, ",") {
				name, addr, ok := strings.Cut(strings.TrimSpace(pair), "=")
				if !ok || name == "" || addr == "" {
					log.Fatalf("attestd: -peers entry %q is not name=addr", pair)
				}
				members = append(members, cluster.Member{Name: name, Addr: addr})
			}
		}
		ms := cluster.NewMembership(*vnodes, members...)
		node, err = cluster.NewNode(*nodeName, ms, cluster.NodeOptions{})
		if err != nil {
			log.Fatalf("attestd: %v", err)
		}
		node.StartProber(*probeEvery, 3)
		cfg.Cluster = node
	}

	s, err := server.New(cfg)
	if err != nil {
		log.Fatalf("attestd: %v", err)
	}

	if *pprofAddr != "" {
		go func() {
			log.Printf("attestd: pprof on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("attestd: pprof server: %v", err)
			}
		}()
	}

	// The exposition endpoint runs on its own listener and goroutine: a
	// scrape renders counters the serving path updates with atomics, so
	// observation never sits on the hot path.
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.Handler(s.Metrics()))
		go func() {
			log.Printf("attestd: metrics on http://%s/metrics", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				log.Printf("attestd: metrics server: %v", err)
			}
		}()
	}

	// The control plane shares nothing with the serving path: its own
	// listener, its own goroutine, and only exposition/mutation calls
	// into the daemon.
	if *adminAddr != "" {
		mux := admin.NewMux(s, admin.Options{Token: *adminToken})
		go func() {
			log.Printf("attestd: admin API on http://%s/admin/ (probes /healthz /readyz)", *adminAddr)
			if err := http.ListenAndServe(*adminAddr, mux); err != nil {
				log.Printf("attestd: admin server: %v", err)
			}
		}()
	}

	if *statusEvery > 0 {
		go func() {
			for range time.Tick(*statusEvery) {
				st := s.AgentStats()
				log.Printf("attestd: %v", s.Counters())
				log.Printf("attestd: fleet devices=%d received=%d measured=%d gate-rejected=%d (auth=%d fresh=%d malformed=%d)",
					s.Devices(), st.Received, st.Measurements, st.GateRejected(),
					st.AuthRejected, st.FreshnessRejected, st.Malformed)
			}
		}()
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		log.Printf("attestd: shutting down")
		s.Close()
		if node != nil {
			node.Close()
		}
	}()

	mode := "honest schedule"
	if cfg.Flood != nil {
		mode = "flood impersonator"
	}
	if node != nil {
		log.Printf("attestd: cluster node %s, members %v", *nodeName, node.Membership().Alive())
	}
	log.Printf("attestd: listening on %s (%s, freshness=%v auth=%v)", *listen, mode, fresh, auth)
	err = s.ListenAndServe(*listen)
	if ps != nil {
		// Runs on the main goroutine so the process cannot exit before the
		// final flush and clean-shutdown sentinel hit disk — that sentinel
		// is what lets the next start adopt every stream live-exact
		// regardless of the fsync policy.
		if cerr := ps.Close(); cerr != nil {
			log.Printf("attestd: closing state journal: %v", cerr)
		}
	}
	if err != nil {
		log.Fatalf("attestd: %v", err)
	}
}
