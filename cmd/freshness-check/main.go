// Command freshness-check runs the bounded model checker over the §4.2
// freshness mechanisms and prints, for every adversary schedule within the
// bounds, which Table 2 attack classes are reachable — with or without the
// §5 roaming powers.
//
//	freshness-check [-messages 3] [-time 6] [-deliveries 2] [-window 1]
//	                [-noncecap 4] [-roaming]
package main

import (
	"flag"
	"fmt"
	"log"

	"proverattest/internal/modelcheck"
)

func main() {
	log.SetFlags(0)
	var (
		messages   = flag.Int("messages", 3, "max genuine requests issued")
		timeTicks  = flag.Int("time", 6, "max clock ticks")
		deliveries = flag.Int("deliveries", 2, "max deliveries per recorded message")
		window     = flag.Int("window", 1, "timestamp window / delay bound (ticks)")
		nonceCap   = flag.Int("noncecap", 4, "nonce history capacity")
		roaming    = flag.Bool("roaming", false, "grant the Section 5 tampering powers")
	)
	flag.Parse()

	bounds := modelcheck.Bounds{
		MaxMessages:   *messages,
		MaxTime:       *timeTicks,
		MaxDeliveries: *deliveries,
	}
	fmt.Printf("bounds: %d messages, %d ticks, %d deliveries/message, window %d, roaming=%v\n\n",
		*messages, *timeTicks, *deliveries, *window, *roaming)
	fmt.Printf("%-12s %9s %8s %8s %8s %14s\n",
		"scheme", "states", "replay", "reorder", "delay", "same-tick dup")

	for _, scheme := range []modelcheck.Scheme{
		modelcheck.SchemeNonceHistory, modelcheck.SchemeCounter, modelcheck.SchemeTimestamp,
	} {
		res, err := modelcheck.Explore(modelcheck.Config{
			Scheme:        scheme,
			Bounds:        bounds,
			WindowTicks:   *window,
			NonceCapacity: *nonceCap,
			Roaming:       *roaming,
		})
		if err != nil {
			log.Fatalf("freshness-check: %v", err)
		}
		fmt.Printf("%-12s %9d %8s %8s %8s %14s\n",
			scheme, res.States,
			verdict(!res.Violations.Replay),
			verdict(!res.Violations.Reorder),
			verdict(!res.Violations.Delay),
			verdict(!res.Violations.SameTickReplay))
	}
	fmt.Println("\nok = no violating schedule reachable; ATTACK = at least one exists")
}

func verdict(mitigated bool) string {
	if mitigated {
		return "ok"
	}
	return "ATTACK"
}
