// Command prover-sim is a flag-driven scenario runner: pick the request
// authentication scheme, freshness mechanism, clock design, protection
// level and traffic pattern, and observe the prover's behaviour, timing
// and energy budget over a simulated deployment.
//
// -auth accepts a single scheme, a comma-separated list, or "all"; with
// more than one scheme the deployments run as independent cells on the
// parallel campaign runner (-parallel bounds the worker pool) and the
// reports print in input order.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"

	"proverattest/internal/anchor"
	"proverattest/internal/core"
	"proverattest/internal/energy"
	"proverattest/internal/protocol"
	"proverattest/internal/runner"
	"proverattest/internal/sim"
)

func main() {
	log.SetFlags(0)
	var (
		authName    = flag.String("auth", "hmac", "request auth: none | hmac | aes | speck | ecdsa, a comma-separated list, or 'all'")
		freshName   = flag.String("freshness", "counter", "freshness: none | nonces | counter | timestamps")
		clockName   = flag.String("clock", "none", "clock: none | wide64 | wide32 | sw")
		profileName = flag.String("profile", "trustlite", "architecture: trustlite | smart | tytan")
		protected   = flag.Bool("protected", true, "install the Adv_roam protections (Figure 1)")
		seconds     = flag.Int("seconds", 600, "simulated deployment length")
		periodSec   = flag.Float64("period", 60, "seconds between genuine attestation requests")
		windowMs    = flag.Uint64("window", 1000, "timestamp freshness window (ms)")
		parallel    = flag.Int("parallel", 0, "campaign-runner workers for multi-auth sweeps (<=0: all cores)")
	)
	flag.Parse()

	auths, err := parseAuthList(*authName)
	if err != nil {
		log.Fatalf("prover-sim: %v", err)
	}
	fresh, err := parseFreshness(*freshName)
	if err != nil {
		log.Fatalf("prover-sim: %v", err)
	}
	clock, err := parseClock(*clockName)
	if err != nil {
		log.Fatalf("prover-sim: %v", err)
	}
	profile, err := parseProfile(*profileName)
	if err != nil {
		log.Fatalf("prover-sim: %v", err)
	}
	if fresh == protocol.FreshTimestamp && clock == anchor.ClockNone {
		clock = anchor.ClockWide64
		fmt.Println("note: timestamps need a clock; defaulting to the 64-bit hardware design")
	}

	cells := make([]runner.Cell[string], len(auths))
	for i, auth := range auths {
		auth := auth
		cells[i] = runner.Cell[string]{
			Label: fmt.Sprintf("deploy %v", auth),
			Run: func(ctx context.Context, st *runner.CellStats) (string, error) {
				return runDeployment(deployParams{
					profile:   profile,
					auth:      auth,
					fresh:     fresh,
					clock:     clock,
					protected: *protected,
					seconds:   *seconds,
					periodSec: *periodSec,
					windowMs:  *windowMs,
				}, st)
			},
		}
	}
	results, stats := runner.Run(context.Background(), cells, runner.Options{Workers: *parallel})
	reports, err := runner.Values(results)
	if err != nil {
		log.Fatalf("prover-sim: %v", err)
	}
	for i, report := range reports {
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(report)
	}
	if len(auths) > 1 {
		fmt.Printf("\ncampaign: %v\n", stats)
	}
}

type deployParams struct {
	profile   anchor.Profile
	auth      protocol.AuthKind
	fresh     protocol.FreshnessKind
	clock     anchor.ClockDesign
	protected bool
	seconds   int
	periodSec float64
	windowMs  uint64
}

// runDeployment executes one full deployment on a private kernel and
// renders its report, so deployments can run concurrently and still print
// in input order.
func runDeployment(p deployParams, st *runner.CellStats) (string, error) {
	prot := anchor.Protection{Key: true, LockMPU: true}
	if p.protected {
		prot = anchor.FullProtection()
	}
	battery := energy.CoinCellCR2032()
	s, err := core.NewScenario(core.ScenarioConfig{
		Profile:           p.profile,
		Freshness:         p.fresh,
		Auth:              p.auth,
		Clock:             p.clock,
		TimestampWindowMs: p.windowMs,
		Protection:        prot,
		Battery:           battery,
	})
	if err != nil {
		return "", err
	}

	duration := sim.Duration(p.seconds) * sim.Second
	period := sim.Duration(p.periodSec * float64(sim.Second))
	count := int(duration / period)
	s.IssueEvery(s.K.Now()+period, period, count)
	// Run a little past the deployment window so a request issued at the
	// boundary still completes its round trip.
	s.RunUntil(s.K.Now() + duration + 3*sim.Second)
	s.Dev.ChargeSleep(duration)
	st.Sim = sim.Duration(s.K.Now())

	var b strings.Builder
	stats := s.Dev.A.Stats
	fmt.Fprintf(&b, "configuration: profile=%v auth=%v freshness=%v clock=%v protected=%v\n",
		p.profile, p.auth, p.fresh, p.clock, p.protected)
	fmt.Fprintf(&b, "deployment:    %d s simulated, one request every %.0f s\n\n", p.seconds, p.periodSec)
	fmt.Fprintf(&b, "verifier:      issued %d, accepted %d, rejected %d, unsolicited %d\n",
		s.V.Issued, s.V.Accepted, s.V.Rejected, s.V.Unsolicited)
	fmt.Fprintf(&b, "prover:        received %d, measured %d, auth-rejected %d, freshness-rejected %d, malformed %d\n",
		stats.Received, stats.Measurements, stats.AuthRejected, stats.FreshnessRejected, stats.Malformed)
	if p.clock == anchor.ClockSW {
		fmt.Fprintf(&b, "SW clock:      %d Code_Clock ticks, prover clock reads %d ms\n",
			stats.ClockTicks, s.Dev.A.ClockNowMs())
	}
	fmt.Fprintf(&b, "CPU:           %.1f ms active (%.4f%% duty cycle)\n",
		s.Dev.M.ActiveCycles.Millis(),
		100*float64(s.Dev.M.ActiveCycles.Millis())/float64(duration.Milliseconds()))
	fmt.Fprintf(&b, "energy:        %.4f J consumed; battery %s\n",
		s.Dev.ActiveEnergyJoules(), battery)
	return b.String(), nil
}

// parseAuthList accepts one scheme, a comma-separated list, or "all".
func parseAuthList(s string) ([]protocol.AuthKind, error) {
	if strings.EqualFold(strings.TrimSpace(s), "all") {
		return []protocol.AuthKind{
			protocol.AuthNone, protocol.AuthSpeckCBCMAC, protocol.AuthAESCBCMAC,
			protocol.AuthHMACSHA1, protocol.AuthECDSA,
		}, nil
	}
	var out []protocol.AuthKind
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, err := parseAuth(part)
		if err != nil {
			return nil, err
		}
		out = append(out, kind)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no auth scheme in %q", s)
	}
	return out, nil
}

func parseAuth(s string) (protocol.AuthKind, error) {
	switch strings.ToLower(s) {
	case "none":
		return protocol.AuthNone, nil
	case "hmac":
		return protocol.AuthHMACSHA1, nil
	case "aes":
		return protocol.AuthAESCBCMAC, nil
	case "speck":
		return protocol.AuthSpeckCBCMAC, nil
	case "ecdsa":
		return protocol.AuthECDSA, nil
	}
	return 0, fmt.Errorf("unknown auth scheme %q", s)
}

func parseFreshness(s string) (protocol.FreshnessKind, error) {
	switch strings.ToLower(s) {
	case "none":
		return protocol.FreshNone, nil
	case "nonces":
		return protocol.FreshNonceHistory, nil
	case "counter":
		return protocol.FreshCounter, nil
	case "timestamps":
		return protocol.FreshTimestamp, nil
	}
	return 0, fmt.Errorf("unknown freshness mechanism %q", s)
}

func parseProfile(s string) (anchor.Profile, error) {
	switch strings.ToLower(s) {
	case "trustlite":
		return anchor.ProfileTrustLite, nil
	case "smart":
		return anchor.ProfileSMART, nil
	case "tytan":
		return anchor.ProfileTyTAN, nil
	}
	return 0, fmt.Errorf("unknown architecture profile %q", s)
}

func parseClock(s string) (anchor.ClockDesign, error) {
	switch strings.ToLower(s) {
	case "none":
		return anchor.ClockNone, nil
	case "wide64":
		return anchor.ClockWide64, nil
	case "wide32":
		return anchor.ClockWide32Div, nil
	case "sw":
		return anchor.ClockSW, nil
	}
	return 0, fmt.Errorf("unknown clock design %q", s)
}
