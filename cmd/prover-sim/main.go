// Command prover-sim is a flag-driven scenario runner: pick the request
// authentication scheme, freshness mechanism, clock design, protection
// level and traffic pattern, and observe the prover's behaviour, timing
// and energy budget over a simulated deployment.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"proverattest/internal/anchor"
	"proverattest/internal/core"
	"proverattest/internal/energy"
	"proverattest/internal/protocol"
	"proverattest/internal/sim"
)

func main() {
	log.SetFlags(0)
	var (
		authName    = flag.String("auth", "hmac", "request auth: none | hmac | aes | speck | ecdsa")
		freshName   = flag.String("freshness", "counter", "freshness: none | nonces | counter | timestamps")
		clockName   = flag.String("clock", "none", "clock: none | wide64 | wide32 | sw")
		profileName = flag.String("profile", "trustlite", "architecture: trustlite | smart | tytan")
		protected   = flag.Bool("protected", true, "install the Adv_roam protections (Figure 1)")
		seconds     = flag.Int("seconds", 600, "simulated deployment length")
		periodSec   = flag.Float64("period", 60, "seconds between genuine attestation requests")
		windowMs    = flag.Uint64("window", 1000, "timestamp freshness window (ms)")
	)
	flag.Parse()

	auth, err := parseAuth(*authName)
	if err != nil {
		log.Fatalf("prover-sim: %v", err)
	}
	fresh, err := parseFreshness(*freshName)
	if err != nil {
		log.Fatalf("prover-sim: %v", err)
	}
	clock, err := parseClock(*clockName)
	if err != nil {
		log.Fatalf("prover-sim: %v", err)
	}
	profile, err := parseProfile(*profileName)
	if err != nil {
		log.Fatalf("prover-sim: %v", err)
	}
	if fresh == protocol.FreshTimestamp && clock == anchor.ClockNone {
		clock = anchor.ClockWide64
		fmt.Println("note: timestamps need a clock; defaulting to the 64-bit hardware design")
	}

	prot := anchor.Protection{Key: true, LockMPU: true}
	if *protected {
		prot = anchor.FullProtection()
	}
	battery := energy.CoinCellCR2032()
	s, err := core.NewScenario(core.ScenarioConfig{
		Profile:           profile,
		Freshness:         fresh,
		Auth:              auth,
		Clock:             clock,
		TimestampWindowMs: *windowMs,
		Protection:        prot,
		Battery:           battery,
	})
	if err != nil {
		log.Fatalf("prover-sim: %v", err)
	}

	duration := sim.Duration(*seconds) * sim.Second
	period := sim.Duration(*periodSec * float64(sim.Second))
	count := int(duration / period)
	s.IssueEvery(s.K.Now()+period, period, count)
	// Run a little past the deployment window so a request issued at the
	// boundary still completes its round trip.
	s.RunUntil(s.K.Now() + duration + 3*sim.Second)
	s.Dev.ChargeSleep(duration)

	st := s.Dev.A.Stats
	fmt.Printf("configuration: profile=%v auth=%v freshness=%v clock=%v protected=%v\n",
		profile, auth, fresh, clock, *protected)
	fmt.Printf("deployment:    %d s simulated, one request every %.0f s\n\n", *seconds, *periodSec)
	fmt.Printf("verifier:      issued %d, accepted %d, rejected %d, unsolicited %d\n",
		s.V.Issued, s.V.Accepted, s.V.Rejected, s.V.Unsolicited)
	fmt.Printf("prover:        received %d, measured %d, auth-rejected %d, freshness-rejected %d, malformed %d\n",
		st.Received, st.Measurements, st.AuthRejected, st.FreshnessRejected, st.Malformed)
	if clock == anchor.ClockSW {
		fmt.Printf("SW clock:      %d Code_Clock ticks, prover clock reads %d ms\n",
			st.ClockTicks, s.Dev.A.ClockNowMs())
	}
	fmt.Printf("CPU:           %.1f ms active (%.4f%% duty cycle)\n",
		s.Dev.M.ActiveCycles.Millis(),
		100*float64(s.Dev.M.ActiveCycles.Millis())/float64(duration.Milliseconds()))
	fmt.Printf("energy:        %.4f J consumed; battery %s\n",
		s.Dev.ActiveEnergyJoules(), battery)
}

func parseAuth(s string) (protocol.AuthKind, error) {
	switch strings.ToLower(s) {
	case "none":
		return protocol.AuthNone, nil
	case "hmac":
		return protocol.AuthHMACSHA1, nil
	case "aes":
		return protocol.AuthAESCBCMAC, nil
	case "speck":
		return protocol.AuthSpeckCBCMAC, nil
	case "ecdsa":
		return protocol.AuthECDSA, nil
	}
	return 0, fmt.Errorf("unknown auth scheme %q", s)
}

func parseFreshness(s string) (protocol.FreshnessKind, error) {
	switch strings.ToLower(s) {
	case "none":
		return protocol.FreshNone, nil
	case "nonces":
		return protocol.FreshNonceHistory, nil
	case "counter":
		return protocol.FreshCounter, nil
	case "timestamps":
		return protocol.FreshTimestamp, nil
	}
	return 0, fmt.Errorf("unknown freshness mechanism %q", s)
}

func parseProfile(s string) (anchor.Profile, error) {
	switch strings.ToLower(s) {
	case "trustlite":
		return anchor.ProfileTrustLite, nil
	case "smart":
		return anchor.ProfileSMART, nil
	case "tytan":
		return anchor.ProfileTyTAN, nil
	}
	return 0, fmt.Errorf("unknown architecture profile %q", s)
}

func parseClock(s string) (anchor.ClockDesign, error) {
	switch strings.ToLower(s) {
	case "none":
		return anchor.ClockNone, nil
	case "wide64":
		return anchor.ClockWide64, nil
	case "wide32":
		return anchor.ClockWide32Div, nil
	case "sw":
		return anchor.ClockSW, nil
	}
	return 0, fmt.Errorf("unknown clock design %q", s)
}
