// Command sp16 assembles and runs SP16 programs on a fresh simulated MCU —
// the developer tool for writing application and malware firmware for the
// prover. It prints the final register file, the stop reason, the cycle
// cost at 24 MHz, and (with -trace) every EA-MPU denial the program
// incurred.
//
//	sp16 [-base 0x100000] [-entry addr] [-max N] [-dump] [-trace] prog.s
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"proverattest/internal/isa"
	"proverattest/internal/mcu"
	"proverattest/internal/sim"
)

func main() {
	log.SetFlags(0)
	var (
		base  = flag.Uint64("base", uint64(mcu.FlashRegion.Start), "load address")
		entry = flag.Uint64("entry", 0, "entry point (default: load address)")
		max   = flag.Uint64("max", 1_000_000, "instruction budget")
		dump  = flag.Bool("dump", false, "print the assembled image and exit")
		trace = flag.Bool("trace", false, "print denied bus accesses")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("sp16: usage: sp16 [flags] prog.s")
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatalf("sp16: %v", err)
	}

	img, err := isa.Assemble(uint32(*base), string(src))
	if err != nil {
		log.Fatalf("sp16: %v", err)
	}
	fmt.Printf("assembled %d bytes at %#x\n", len(img), *base)
	if *dump {
		for _, line := range isa.Disassemble(uint32(*base), img) {
			fmt.Println(line)
		}
		return
	}

	k := sim.NewKernel()
	m := mcu.New(k, mcu.Config{MPURules: 8})
	var tr *mcu.Tracer
	if *trace {
		tr = mcu.NewTracer(64, true)
		m.AttachTracer(tr)
	}
	m.Space.DirectWrite(mcu.Addr(*base), img)

	start := mcu.Addr(*base)
	if *entry != 0 {
		start = mcu.Addr(*entry)
	}
	region := mcu.Region{Start: mcu.Addr(*base), Size: uint32(len(img)) + 4*mcu.KiB}
	var res isa.Result
	isa.RunProgram(m, "program", region, start, *max, func(r isa.Result) { res = r })
	k.RunUntil(k.Now() + sim.Hour)

	fmt.Printf("stopped:   %v at pc %#x\n", res.Reason, uint32(res.PC))
	if res.Fault != nil {
		fmt.Printf("fault:     %v\n", res.Fault)
	}
	fmt.Printf("executed:  %d instructions, %d cycles (%.3f ms at 24 MHz)\n",
		res.Instructions, res.Cycles, res.Cycles.Millis())
	for i := 0; i < isa.NumRegs; i += 4 {
		for j := i; j < i+4; j++ {
			fmt.Printf("r%-2d = %#08x   ", j, res.Regs[j])
		}
		fmt.Println()
	}
	if tr != nil {
		for _, e := range tr.Entries() {
			fmt.Println("trace:", e)
		}
	}
}
