// DoS flood: the paper's §3.1 motivation, measured.
//
// A verifier impersonator floods a battery-powered prover with forged
// attestation requests. Without request authentication every frame costs
// the prover a full ≈754 ms memory measurement; with a symmetric MAC each
// forgery dies after a sub-millisecond tag check. The example prints the
// duty cycle, energy burn and projected CR2032 lifetime side by side.
//
// This is the device-side simulation, below the daemon's admission layer:
// no server runs here, so no tier gate applies. For the same flood driven
// through a real daemon — where every frame rides the default admission
// tier — see examples/netflood.
//
//	go run ./examples/dosflood
package main

import (
	"fmt"
	"log"

	"proverattest/internal/core"
	"proverattest/internal/protocol"
	"proverattest/internal/sim"
)

func main() {
	log.SetFlags(0)
	const (
		rate = 10.0            // forged requests per second
		dur  = 60 * sim.Second // simulated flood window
	)
	fmt.Printf("flooding the prover with %.0f forged requests/s for %v\n\n", rate, dur)
	fmt.Printf("%-22s %9s %9s %8s %10s %14s\n",
		"request auth", "measured", "rejected", "duty", "energy", "CR2032 lasts")

	for _, kind := range []protocol.AuthKind{
		protocol.AuthNone,
		protocol.AuthSpeckCBCMAC,
		protocol.AuthHMACSHA1,
	} {
		res, err := core.RunFloodExperiment(kind, rate, dur)
		if err != nil {
			log.Fatalf("dosflood: %v", err)
		}
		fmt.Printf("%-22s %9d %9d %7.2f%% %8.4f J %11.1f days\n",
			kind, res.Measurements, res.AuthRejected,
			res.DutyCyclePct, res.EnergyJoules, res.LifetimeDays)
	}

	fmt.Println(`
reading the table:
  - with no authentication the prover saturates: every forged frame forces
    a full memory MAC, the duty cycle pins at ~100% and a coin cell dies in
    about a day — the paper's "attestation as denial-of-service";
  - with Speck or HMAC request authentication the same flood is shrugged
    off for hundreds of days, at the cost of one MAC check per frame.`)
}
