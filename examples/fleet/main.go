// Fleet: the paper's future-work item 1 — the prover-side protections in
// an IoT deployment.
//
// Twelve battery-powered provers share one simulated timeline; a verifier
// attests each of them once a minute; an adversary floods a quarter of the
// fleet with forged requests. The example runs the deployment twice — with
// and without request authentication — and prints what happens to the
// attacked sensors' batteries.
//
//	go run ./examples/fleet
package main

import (
	"fmt"
	"log"

	"proverattest/internal/core"
	"proverattest/internal/protocol"
	"proverattest/internal/sim"
)

func main() {
	log.SetFlags(0)
	const (
		provers = 12
		flooded = 3
		rate    = 10.0 // forged requests per second, per attacked prover
		period  = 60 * sim.Second
		horizon = 10 * sim.Minute
	)
	fmt.Printf("fleet: %d provers, %d under a %.0f req/s forged flood, attested every %v for %v\n\n",
		provers, flooded, rate, period, horizon)
	fmt.Printf("%-22s %10s %12s %14s %14s\n",
		"request auth", "genuine ok", "measurements", "flooded J/dev", "healthy J/dev")

	for _, kind := range []protocol.AuthKind{protocol.AuthNone, protocol.AuthHMACSHA1} {
		report, err := core.RunFleetExperiment(provers, flooded, kind, rate, period, horizon)
		if err != nil {
			log.Fatalf("fleet: %v", err)
		}
		fmt.Printf("%-22s %10d %12d %14.3f %14.3f\n",
			kind, report.GenuineOK, report.Measurements,
			report.FloodedEnergyJ, report.HealthyEnergyJ)
	}

	fmt.Println(`
reading the table:
  - unauthenticated: the three attacked sensors each burn two orders of
    magnitude more energy than their neighbours — the adversary silently
    selects which devices die first;
  - with request authentication the flood is absorbed at MAC-check cost
    and the whole fleet ages almost uniformly.`)
}
