// Socket-level DoS flood: the paper's §3.1 asymmetry over real TCP.
//
// The example starts the verifier daemon (internal/server) in flood mode
// on a localhost TCP port and connects one prover agent (internal/agent).
// The daemon first issues a short honest head of authenticated requests —
// each of which the agent answers with a full memory measurement — and
// then floods the same socket with forged, replayed and malformed frames.
//
// The agent's trust-anchor gate runs on every inbound frame; the example
// asserts the paper's asymmetry end-to-end and exits non-zero if it does
// not hold: every flood frame is rejected at the gate, and the prover's
// MAC-work count (memory measurements) equals exactly the honest head.
//
//	go run ./examples/netflood
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"time"

	"proverattest/internal/agent"
	"proverattest/internal/core"
	"proverattest/internal/protocol"
	"proverattest/internal/server"
)

const (
	honestHead = 3   // authenticated requests before the flood
	floodTotal = 120 // adversarial frames (forge/replay/malformed cycle)
)

func main() {
	log.SetFlags(0)
	master := []byte("netflood-example-master")

	srv, err := server.New(server.Config{
		Freshness:    protocol.FreshCounter,
		Auth:         protocol.AuthHMACSHA1,
		MasterSecret: master,
		Golden:       core.GoldenRAMPattern(),
		Flood:        &server.FloodConfig{Total: floodTotal, HonestHead: honestHead},
	})
	if err != nil {
		log.Fatalf("netflood: %v", err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("netflood: %v", err)
	}
	go srv.Serve(ln) //nolint:errcheck
	fmt.Printf("attestd (flood impersonator) on %s: %d honest requests, then %d adversarial frames\n\n",
		ln.Addr(), honestHead, floodTotal)

	a, err := agent.New(agent.Config{
		DeviceID:     "flooded-sensor",
		Freshness:    protocol.FreshCounter,
		Auth:         protocol.AuthHMACSHA1,
		MasterSecret: master,
		StatsEvery:   50 * time.Millisecond,
	})
	if err != nil {
		log.Fatalf("netflood: %v", err)
	}
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		log.Fatalf("netflood: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go a.Serve(ctx, nc) //nolint:errcheck

	// Wait until the agent has seen (and reported) every frame.
	deadline := time.Now().Add(30 * time.Second)
	for srv.AgentStats().Received < honestHead+floodTotal {
		if time.Now().After(deadline) {
			log.Fatalf("netflood: timed out: agent reported %d/%d frames",
				srv.AgentStats().Received, honestHead+floodTotal)
		}
		time.Sleep(20 * time.Millisecond)
	}

	st := srv.AgentStats()
	c := srv.Counters()
	fmt.Printf("daemon:  %v\n", c)
	fmt.Printf("prover:  received=%d measured=%d gate-rejected=%d (auth=%d fresh=%d malformed=%d)\n\n",
		st.Received, st.Measurements, st.GateRejected(),
		st.AuthRejected, st.FreshnessRejected, st.Malformed)

	// The asymmetry, asserted: rejected requests cost no attestation MAC
	// work — MAC-work count equals the honest head exactly, and every
	// flood frame died at the gate.
	switch {
	case st.Measurements != honestHead:
		log.Fatalf("netflood: FAIL: %d measurements, want %d — flood frames bought MAC work",
			st.Measurements, honestHead)
	case st.GateRejected() != floodTotal:
		log.Fatalf("netflood: FAIL: %d gate rejections, want %d", st.GateRejected(), floodTotal)
	case c.ResponsesAccepted != honestHead:
		log.Fatalf("netflood: FAIL: daemon accepted %d responses, want %d", c.ResponsesAccepted, honestHead)
	}
	fmt.Printf(`PASS: the gate held over the socket.
  - %d honest requests each cost a full ≈754 ms (simulated) memory measurement;
  - %d flood frames were rejected by parse/auth/freshness checks alone and
    bought the attacker zero attestation work and zero reply bytes.
`, honestHead, floodTotal)

	// Machine-readable summary (field names follow BENCH_transport.json)
	// for scripts that scrape the example's output.
	summary, err := json.Marshal(struct {
		Bench             string `json:"bench"`
		Freshness         string `json:"freshness"`
		Auth              string `json:"auth"`
		Transport         string `json:"transport"`
		FullAttestRounds  int    `json:"full_attest_rounds"`
		GateRejectFrames  int    `json:"gate_reject_frames"`
		AgentMeasurements uint64 `json:"agent_measurements"`
		AgentGateRejected uint64 `json:"agent_gate_rejected"`
		DaemonAccepted    uint64 `json:"daemon_responses_accepted"`
	}{
		Bench:             "netflood",
		Freshness:         protocol.FreshCounter.String(),
		Auth:              protocol.AuthHMACSHA1.String(),
		Transport:         "tcp " + ln.Addr().String(),
		FullAttestRounds:  honestHead,
		GateRejectFrames:  floodTotal,
		AgentMeasurements: st.Measurements,
		AgentGateRejected: st.GateRejected(),
		DaemonAccepted:    c.ResponsesAccepted,
	})
	if err != nil {
		log.Fatalf("netflood: %v", err)
	}
	fmt.Println(string(summary))
}
