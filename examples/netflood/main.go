// Socket-level DoS flood: the paper's §3.1 asymmetry over real TCP.
//
// The example starts the verifier daemon (internal/server) in flood mode
// on a localhost TCP port and connects one prover agent (internal/agent).
// The daemon first issues a short honest head of authenticated requests —
// each of which the agent answers with a full memory measurement — and
// then floods the same socket with forged, replayed and malformed frames.
//
// The agent's trust-anchor gate runs on every inbound frame; the example
// asserts the paper's asymmetry end-to-end and exits non-zero if it does
// not hold: every flood frame is rejected at the gate, and the prover's
// MAC-work count (memory measurements) equals exactly the honest head.
//
//	go run ./examples/netflood
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"proverattest/internal/agent"
	"proverattest/internal/core"
	"proverattest/internal/obs"
	"proverattest/internal/protocol"
	"proverattest/internal/server"
)

// scrapeMetrics pulls one sample from the daemon's exposition endpoint.
func scrapeMetrics(url string) (map[string]float64, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return obs.ParseText(resp.Body)
}

const (
	honestHead = 3   // authenticated requests before the flood
	floodTotal = 120 // adversarial frames (forge/replay/malformed cycle)
)

func main() {
	log.SetFlags(0)
	master := []byte("netflood-example-master")

	reg := obs.New()
	srv, err := server.New(server.Config{
		Freshness:    protocol.FreshCounter,
		Auth:         protocol.AuthHMACSHA1,
		MasterSecret: master,
		Golden:       core.GoldenRAMPattern(),
		Flood:        &server.FloodConfig{Total: floodTotal, HonestHead: honestHead},
		Metrics:      reg,
		// A single-tier policy, spelled out: every connection rides the
		// default admission tier, exactly as it would with no policy at
		// all. The example asserts that accounting below — the tier admits
		// every frame and limits none, so the tier layer is invisible to a
		// single-class deployment.
		Tiers: &server.TierPolicy{Tiers: []server.TierSpec{{Name: "default"}}},
	})
	if err != nil {
		log.Fatalf("netflood: %v", err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("netflood: %v", err)
	}
	go srv.Serve(ln) //nolint:errcheck

	// Exposition endpoint for the daemon's live counters: the example
	// scrapes it mid-flood like an operator's Prometheus would, and the
	// summary reports the asymmetry read from that scrape.
	mln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("netflood: %v", err)
	}
	go http.Serve(mln, obs.Handler(reg)) //nolint:errcheck
	metricsURL := "http://" + mln.Addr().String() + "/metrics"
	fmt.Printf("attestd (flood impersonator) on %s: %d honest requests, then %d adversarial frames\n\n",
		ln.Addr(), honestHead, floodTotal)

	a, err := agent.New(agent.Config{
		DeviceID:     "flooded-sensor",
		Freshness:    protocol.FreshCounter,
		Auth:         protocol.AuthHMACSHA1,
		MasterSecret: master,
		StatsEvery:   50 * time.Millisecond,
	})
	if err != nil {
		log.Fatalf("netflood: %v", err)
	}
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		log.Fatalf("netflood: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go a.Serve(ctx, nc) //nolint:errcheck

	// Wait until the agent has seen (and reported) every frame, scraping
	// the daemon's /metrics on the way — a mid-flood sample of the live
	// counters, exactly what an operator's dashboard would poll.
	deadline := time.Now().Add(30 * time.Second)
	var midFlood map[string]float64
	for srv.AgentStats().Received < honestHead+floodTotal {
		if time.Now().After(deadline) {
			log.Fatalf("netflood: timed out: agent reported %d/%d frames",
				srv.AgentStats().Received, honestHead+floodTotal)
		}
		if s, err := scrapeMetrics(metricsURL); err == nil {
			midFlood = s
		}
		time.Sleep(20 * time.Millisecond)
	}

	// One final scrape after the flood settled: the numbers asserted below
	// must also be visible through the exposition endpoint.
	final, err := scrapeMetrics(metricsURL)
	if err != nil {
		log.Fatalf("netflood: final metrics scrape: %v", err)
	}
	if midFlood == nil {
		midFlood = final
	}

	st := srv.AgentStats()
	c := srv.Counters()
	fmt.Printf("daemon:  %v\n", c)
	fmt.Printf("prover:  received=%d measured=%d gate-rejected=%d (auth=%d fresh=%d malformed=%d)\n\n",
		st.Received, st.Measurements, st.GateRejected(),
		st.AuthRejected, st.FreshnessRejected, st.Malformed)

	// The asymmetry, asserted: rejected requests cost no attestation MAC
	// work — MAC-work count equals the honest head exactly, and every
	// flood frame died at the gate.
	switch {
	case st.Measurements != honestHead:
		log.Fatalf("netflood: FAIL: %d measurements, want %d — flood frames bought MAC work",
			st.Measurements, honestHead)
	case st.GateRejected() != floodTotal:
		log.Fatalf("netflood: FAIL: %d gate rejections, want %d", st.GateRejected(), floodTotal)
	case c.ResponsesAccepted != honestHead:
		log.Fatalf("netflood: FAIL: daemon accepted %d responses, want %d", c.ResponsesAccepted, honestHead)
	case final["attestd_responses_accepted_total"] != honestHead:
		log.Fatalf("netflood: FAIL: exposition reports %v accepted responses, want %d",
			final["attestd_responses_accepted_total"], honestHead)
	case final["attestd_fleet_measurements"] != honestHead:
		log.Fatalf("netflood: FAIL: exposition reports %v fleet measurements, want %d",
			final["attestd_fleet_measurements"], honestHead)
	}

	// The admission-tier accounting for a single-tier daemon: everything
	// the prover sent to the daemon was admitted by the default tier,
	// nothing was tier-limited (this daemon floods the prover; the
	// prover's replies are the only daemon-inbound frames).
	tiers := srv.AdminTiers()
	if len(tiers) != 1 || tiers[0].Name != "default" || !tiers[0].Default {
		log.Fatalf("netflood: FAIL: tier status %+v, want the single default tier", tiers)
	}
	if tiers[0].Admitted == 0 || tiers[0].Limited != 0 {
		log.Fatalf("netflood: FAIL: default tier admitted=%d limited=%d, want admitted>0 limited=0",
			tiers[0].Admitted, tiers[0].Limited)
	}
	if got := final[`attestd_tier_admitted_total{tier="default"}`]; got != float64(tiers[0].Admitted) {
		log.Fatalf("netflood: FAIL: exposition reports %v tier-admitted frames, daemon says %d",
			got, tiers[0].Admitted)
	}
	if c.TierLimited != 0 {
		log.Fatalf("netflood: FAIL: %d tier-limited frames on a single uncapped tier", c.TierLimited)
	}
	fmt.Printf(`PASS: the gate held over the socket.
  - %d honest requests each cost a full ≈754 ms (simulated) memory measurement;
  - %d flood frames were rejected by parse/auth/freshness checks alone and
    bought the attacker zero attestation work and zero reply bytes.
`, honestHead, floodTotal)

	// Machine-readable summary (field names follow BENCH_transport.json)
	// for scripts that scrape the example's output.
	gateCount := final["attestd_gate_seconds_count"]
	var liveGateNs, liveAttestNs float64
	if gateCount > 0 {
		liveGateNs = final["attestd_gate_seconds_sum"] * 1e9 / gateCount
	}
	if n := final["attestd_attest_seconds_count"]; n > 0 {
		liveAttestNs = final["attestd_attest_seconds_sum"] * 1e9 / n
	}
	summary, err := json.Marshal(struct {
		Bench             string `json:"bench"`
		Freshness         string `json:"freshness"`
		Auth              string `json:"auth"`
		Transport         string `json:"transport"`
		FullAttestRounds  int    `json:"full_attest_rounds"`
		GateRejectFrames  int    `json:"gate_reject_frames"`
		AgentMeasurements uint64 `json:"agent_measurements"`
		AgentGateRejected uint64 `json:"agent_gate_rejected"`
		DaemonAccepted    uint64 `json:"daemon_responses_accepted"`

		// Read from the /metrics endpoint, not process memory: the same
		// numbers an external Prometheus would see.
		MidFloodFleetReceived float64 `json:"mid_flood_fleet_received"`
		LiveGateNsMean        float64 `json:"live_gate_ns_mean"`
		LiveAttestNsMean      float64 `json:"live_attest_ns_mean"`
		LiveTransportFramesIn float64 `json:"live_transport_frames_in"`
	}{
		Bench:             "netflood",
		Freshness:         protocol.FreshCounter.String(),
		Auth:              protocol.AuthHMACSHA1.String(),
		Transport:         "tcp " + ln.Addr().String(),
		FullAttestRounds:  honestHead,
		GateRejectFrames:  floodTotal,
		AgentMeasurements: st.Measurements,
		AgentGateRejected: st.GateRejected(),
		DaemonAccepted:    c.ResponsesAccepted,

		MidFloodFleetReceived: midFlood["attestd_fleet_received"],
		LiveGateNsMean:        liveGateNs,
		LiveAttestNsMean:      liveAttestNs,
		LiveTransportFramesIn: final[`transport_frames_total{dir="in"}`],
	})
	if err != nil {
		log.Fatalf("netflood: %v", err)
	}
	fmt.Println(string(summary))

	// Graceful teardown: drain the daemon — stop accepting and issuing,
	// wait for outstanding verdicts — rather than cutting sockets. This is
	// the same path a production attestd takes on SIGTERM, and it must
	// leave zero inflight behind.
	cancel()
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		log.Fatalf("netflood: drain: %v", err)
	}
	if n := srv.Inflight(); n != 0 {
		log.Fatalf("netflood: %d inflight after drain, want 0", n)
	}
}
