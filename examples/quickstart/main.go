// Quickstart: one verifier, one prover, one attestation round trip.
//
// It assembles the simulated prover (24 MHz MCU, trust anchor in ROM,
// EA-MPU programmed and locked by secure boot), a matching verifier, and a
// network channel, then runs a single authenticated, counter-fresh
// attestation and prints what happened and what it cost.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"proverattest/internal/anchor"
	"proverattest/internal/core"
	"proverattest/internal/protocol"
	"proverattest/internal/sim"
)

func main() {
	log.SetFlags(0)

	// A scenario wires kernel + prover + verifier + channel together.
	// FullProtection installs the paper's Figure 1 mitigations: K_Attest
	// and counter_R accessible only to Code_Attest, clock write-protected,
	// EA-MPU locked at boot.
	s, err := core.NewScenario(core.ScenarioConfig{
		Freshness:  protocol.FreshCounter,
		Auth:       protocol.AuthHMACSHA1,
		Protection: anchor.FullProtection(),
	})
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}
	fmt.Printf("prover booted: secure boot measured %d KB of flash in %.2f ms\n",
		s.Dev.Boot.MeasuredBytes/1024, s.Dev.Boot.Cycles.Millis())

	// The verifier issues one authenticated request at t = 1 s.
	s.IssueAt(1 * sim.Second)
	s.RunUntil(5 * sim.Second)

	fmt.Printf("verifier:  issued %d request(s), accepted %d response(s)\n",
		s.V.Issued, s.V.Accepted)
	fmt.Printf("prover:    performed %d measurement(s) over %d KB of RAM\n",
		s.Measurements(), 512)
	fmt.Printf("cost:      %.2f ms of prover CPU (%.4f J at 30 mW active)\n",
		s.Dev.M.ActiveCycles.Millis(), s.Dev.ActiveEnergyJoules())
	fmt.Printf("counter_R: %d (advanced by the accepted request)\n", s.Dev.A.ReadCounter())

	if s.V.Accepted != 1 {
		log.Fatal("quickstart: attestation failed")
	}
	fmt.Println("\nattestation round trip complete: the prover's memory matches the golden image")
}
