// Roaming attack: the paper's §5 three-phase adversary, played out twice.
//
// Phase I:  Adv_roam eavesdrops on a genuine attestation request.
// Phase II: it briefly compromises the prover, rolls the anti-replay state
//
//	back (counter or clock, selectable), and erases its traces.
//
// Phase III: it replays the recorded request.
//
// Against an unprotected prover the replay triggers a full unauthorized
// measurement — and for the counter variant the device state afterwards is
// indistinguishable from an honest run. Against a prover whose counter,
// clock and IDT are guarded by EA-MPU rules locked down at secure boot,
// every Phase II write faults and the replay is refused.
//
//	go run ./examples/roamingattack            # counter rollback
//	go run ./examples/roamingattack -swclock   # stall the Figure 1b SW clock
//	go run ./examples/roamingattack -clock     # reset the Figure 1a HW clock
package main

import (
	"flag"
	"fmt"
	"log"

	"proverattest/internal/core"
)

func main() {
	log.SetFlags(0)
	var (
		swclock = flag.Bool("swclock", false, "attack the Figure 1b SW-clock (IDT patch)")
		hwclock = flag.Bool("clock", false, "attack the Figure 1a wide hardware clock (clock reset)")
	)
	flag.Parse()

	target := core.RoamCounter
	switch {
	case *swclock:
		target = core.RoamIDTPatch
	case *hwclock:
		target = core.RoamClockReset
	}

	fmt.Printf("Adv_roam campaign: %v\n\n", target)
	for _, protected := range []bool{false, true} {
		label := "UNPROTECTED prover (no EA-MPU rules on the anti-replay state)"
		if protected {
			label = "PROTECTED prover (Figure 1 EA-MPU rules, locked at secure boot)"
		}
		fmt.Println(label)

		res, err := core.RunRoamingCampaign(target, protected)
		if err != nil {
			log.Fatalf("roamingattack: %v", err)
		}
		for _, o := range res.TamperOutcomes {
			fmt.Printf("  phase II: %s\n", o)
		}
		fmt.Printf("  phase III replay: prover performed %d measurement(s); honest baseline is %d\n",
			res.Measurements, res.HonestMeasurements)
		if res.AttackSucceeded {
			fmt.Println("  => ATTACK SUCCEEDED: the prover did unauthorized work")
			if res.CounterRestored && target == core.RoamCounter {
				fmt.Println("     counter_R is back at its pre-attack value: no evidence remains")
			}
			if res.ClockBehindMs > 1000 {
				fmt.Printf("     but the prover clock is %d ms behind real time: evidence survives\n",
					res.ClockBehindMs)
			}
		} else {
			fmt.Println("  => attack failed: the stale request was refused")
		}
		fmt.Println()
	}
}
