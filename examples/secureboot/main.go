// Secure boot: the root of the paper's protection chain (§6.2).
//
// The ROM bootloader measures the flash application image against a
// reference digest, refuses to boot tampered firmware, and — on a clean
// boot — programs the EA-MPU rules protecting K_Attest, counter_R and the
// clock, then sets the lockdown bit. The example shows all three acts:
// a clean boot, a boot refusal after a flash implant, and a runtime
// attempt to reconfigure the locked MPU.
//
//	go run ./examples/secureboot
package main

import (
	"fmt"
	"log"

	"proverattest/internal/adversary"
	"proverattest/internal/anchor"
	"proverattest/internal/core"
	"proverattest/internal/crypto/sha1"
	"proverattest/internal/mcu"
	"proverattest/internal/protocol"
	"proverattest/internal/sim"
)

func main() {
	log.SetFlags(0)

	// Act 1: a clean device boots, programs and locks the MPU.
	k := sim.NewKernel()
	dev, err := core.NewDevice(k, core.DeviceConfig{
		Anchor: anchor.Config{
			Freshness:  protocol.FreshCounter,
			AuthKind:   protocol.AuthHMACSHA1,
			Protection: anchor.FullProtection(),
		},
	})
	if err != nil {
		log.Fatalf("secureboot: %v", err)
	}
	fmt.Printf("act 1: clean boot OK — measured %d KB in %.2f ms, %d EA-MPU rules installed, MPU locked=%v\n",
		dev.Boot.MeasuredBytes/1024, dev.Boot.Cycles.Millis(), dev.Boot.RulesSet, dev.M.MPU.Locked())

	// Act 2: runtime malware tries to reopen the protections.
	roam := adversary.Infect(dev.M, k)
	outcome := roam.DisableMPURule(0)
	fmt.Printf("act 2: malware tries to disable the K_Attest rule: %s\n", outcome)
	steal := roam.ExtractKey(dev.A.KeyAddr())
	fmt.Printf("       malware tries to read K_Attest:            %s\n", steal)
	if outcome.Succeeded || steal.Succeeded {
		log.Fatal("secureboot: lockdown failed!")
	}

	// Act 3: an implant in flash is caught at the next boot.
	k2 := sim.NewKernel()
	m2 := mcu.New(k2, mcu.Config{MPURules: 8})
	a2, err := anchor.Install(m2, anchor.Config{
		Freshness:  protocol.FreshCounter,
		AuthKind:   protocol.AuthHMACSHA1,
		AttestKey:  core.DefaultAttestKey,
		Protection: anchor.FullProtection(),
	})
	if err != nil {
		log.Fatalf("secureboot: %v", err)
	}
	app := make([]byte, core.AppImageSize)
	for i := range app {
		app[i] = byte(i*13 + 7)
	}
	m2.Space.DirectWrite(core.AppImageRegion.Start, app)
	ref := sha1.Sum(app) // factory reference digest of the clean image

	// The implant lands after the reference was recorded.
	m2.Space.DirectWrite(core.AppImageRegion.Start+0x2000, []byte("MALWARE"))

	var report mcu.BootReport
	m2.SecureBoot(a2.BootPolicy(ref, core.AppImageRegion), func(r mcu.BootReport) { report = r })
	k2.RunUntil(k2.Now() + sim.Second)
	fmt.Printf("act 3: boot of implanted image: OK=%v (%s)\n", report.OK, report.Reason)
	if halted, reason := m2.Halted(); halted {
		fmt.Printf("       MCU halted: %s\n", reason)
	} else {
		log.Fatal("secureboot: tampered image booted!")
	}
}
