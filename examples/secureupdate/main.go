// Secure update: attestation as a building block (paper §1, citing SCUBA),
// behind the prover-protecting gate of future-work item 3.
//
// The verifier pushes a firmware fragment to the prover through the same
// authenticated, freshness-checked channel as attestation requests, orders
// the erasure of a RAM region holding session secrets (receiving a proof
// of erasure), and finally corrects a clock drift with the bounded
// clock-sync service. A forged update from an impersonator is rejected at
// the tag check without touching flash.
//
//	go run ./examples/secureupdate
package main

import (
	"bytes"
	"fmt"
	"log"

	"proverattest/internal/anchor"
	"proverattest/internal/core"
	"proverattest/internal/crypto/sha1"
	"proverattest/internal/mcu"
	"proverattest/internal/protocol"
	"proverattest/internal/services"
	"proverattest/internal/sim"
)

func main() {
	log.SetFlags(0)
	prot := anchor.FullProtection()
	prot.SyncOffset = true
	s, err := core.NewScenario(core.ScenarioConfig{
		Freshness:      protocol.FreshCounter,
		Auth:           protocol.AuthHMACSHA1,
		Clock:          anchor.ClockWide64,
		Protection:     prot,
		EnableServices: true,
		MaxSyncStepMs:  200,
	})
	if err != nil {
		log.Fatalf("secureupdate: %v", err)
	}

	run := func(kind protocol.CommandKind, body []byte) *protocol.CommandResp {
		var got *protocol.CommandResp
		s.IssueCommandAt(s.K.Now()+sim.Millisecond, kind, body, func(r *protocol.CommandResp) { got = r })
		s.RunUntil(s.K.Now() + 10*sim.Second)
		if got == nil {
			log.Fatalf("secureupdate: no response to %v", kind)
		}
		return got
	}

	// 1. Push a firmware patch.
	patch := bytes.Repeat([]byte{0xBE, 0xEF}, 512) // 1 KB fragment
	resp := run(protocol.CmdSecureUpdate, services.EncodeUpdate(services.UpdateRequest{
		Offset: 0x4000,
		Image:  patch,
		Digest: sha1.Sum(patch),
	}))
	ur, err := services.DecodeUpdateResponse(resp.Body)
	if err != nil {
		log.Fatalf("secureupdate: %v", err)
	}
	fmt.Printf("update:   status=%d, anchor reports app-region digest %x...\n", resp.Status, ur.RegionDigest[:6])

	// 2. Order erasure of 4 KB of RAM that held session keys.
	resp = run(protocol.CmdSecureErase, services.EncodeErase(services.EraseRequest{
		Addr: mcu.RAMRegion.Start + 0x10000,
		Size: 4096,
	}))
	proof := services.ErasureProof(4096)
	fmt.Printf("erase:    status=%d, proof-of-erasure valid=%v\n",
		resp.Status, bytes.Equal(resp.Body, proof[:]))

	// 3. Correct clock drift (bounded to ±200 ms per round).
	verifierNow := uint64(s.K.Now()/sim.Millisecond) + 150
	resp = run(protocol.CmdClockSync, services.EncodeSync(services.SyncRequest{VerifierTimeMs: verifierNow}))
	sr, err := services.DecodeSyncResponse(resp.Body)
	if err != nil {
		log.Fatalf("secureupdate: %v", err)
	}
	fmt.Printf("sync:     status=%d, applied %+d ms (raw delta %+d ms)\n",
		resp.Status, sr.AppliedDeltaMs, sr.ClampedDeltaMs)

	// 4. An impersonator tries to push malware through the same door.
	forged := &protocol.CommandReq{
		Kind:      protocol.CmdSecureUpdate,
		Freshness: protocol.FreshCounter,
		Auth:      protocol.AuthHMACSHA1,
		Counter:   9999,
		Body: services.EncodeUpdate(services.UpdateRequest{
			Offset: 0,
			Image:  []byte("MALWARE"),
			Digest: sha1.Sum([]byte("MALWARE")),
		}),
		Tag: bytes.Repeat([]byte{0x66}, 20),
	}
	executedBefore := s.Dev.A.Stats.CommandsExecuted
	s.K.At(s.K.Now()+sim.Millisecond, func() {
		s.C.Send("verifier", "prover", forged.Encode())
	})
	s.RunUntil(s.K.Now() + 5*sim.Second)
	fmt.Printf("forgery:  executed=%v (auth rejections: %d) — the gate held\n",
		s.Dev.A.Stats.CommandsExecuted != executedBefore, s.Dev.A.Stats.AuthRejected)

	if s.Dev.A.Stats.CommandsExecuted != 3 || s.Dev.A.Stats.AuthRejected != 1 {
		log.Fatal("secureupdate: unexpected prover stats")
	}
	fmt.Println("\nall three services ran behind the attestation gate; the forgery died at the MAC check")
}
