module proverattest

go 1.22
