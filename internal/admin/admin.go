// Package admin is attestd's operational control plane: a small HTTP API
// for the runtime decisions the metrics surface cannot make — listing the
// fleet with per-device freshness and fast-path state, evicting a device,
// forcing a full re-attestation, inspecting and retuning admission-tier
// budgets, and draining the daemon — plus the /healthz and /readyz probes
// a load balancer steers by.
//
// The package owns the HTTP handlers and the JSON shapes; the daemon
// implements the Controller interface (internal/server's admin.go), so
// the dependency points only one way and the handlers are testable
// against a fake. Read endpoints are open (they expose nothing the
// Prometheus endpoint doesn't); mutating endpoints require the bearer
// token from Options and fail closed when none is configured.
package admin

import (
	"crypto/subtle"
	"encoding/json"
	"errors"
	"net/http"
)

// DeviceInfo is one prover's control-plane view: identity, tier
// placement, the freshness-stream positions replay protection rides on,
// and the fast-path arm state a force-reattest would drop.
type DeviceInfo struct {
	ID   string `json:"id"`
	Tier string `json:"tier"`

	// Counter/NonceSeq are the device's freshness-stream positions;
	// Outstanding is how many issued requests await a verdict.
	Counter     uint64 `json:"counter"`
	NonceSeq    uint64 `json:"nonce_seq"`
	Outstanding int    `json:"outstanding"`

	// FastArmed reports a live O(1) fast-path arm record (the device may
	// answer without a full memory MAC); FastEpoch is its write-monitor
	// epoch.
	FastArmed bool   `json:"fast_armed"`
	FastEpoch uint32 `json:"fast_epoch"`

	// HandedOff marks a husk whose state another daemon (or an evict)
	// has taken; the entry disappears once its session tears down.
	HandedOff bool `json:"handed_off,omitempty"`

	// Aggregated prover-side gate counters (monotonic across reboots).
	StatsEpochs  uint64 `json:"stats_epochs"`
	Received     uint64 `json:"received"`
	Measurements uint64 `json:"measurements"`
	FastHits     uint64 `json:"fast_responses"`
	GateRejected uint64 `json:"gate_rejected"`
}

// TierStatus is one admission tier's live configuration and counters.
type TierStatus struct {
	Name    string   `json:"name"`
	Class   uint8    `json:"class"`
	Default bool     `json:"default"`
	Match   []string `json:"match,omitempty"`

	RatePerSec        float64 `json:"rate_per_sec"`
	Burst             float64 `json:"burst"`
	PerConnRatePerSec float64 `json:"per_conn_rate_per_sec"`
	PerConnBurst      float64 `json:"per_conn_burst"`

	Admitted uint64 `json:"admitted"`
	Limited  uint64 `json:"limited"`
	Devices  int64  `json:"devices"`
}

// TierOverride retunes a tier at runtime. nil fields keep the current
// setting; an explicit 0 rate lifts that cap. The tier-wide bucket is
// rebuilt immediately; per-connection changes reach connections opened
// after the override.
type TierOverride struct {
	RatePerSec        *float64 `json:"rate_per_sec,omitempty"`
	Burst             *float64 `json:"burst,omitempty"`
	PerConnRatePerSec *float64 `json:"per_conn_rate_per_sec,omitempty"`
	PerConnBurst      *float64 `json:"per_conn_burst,omitempty"`
}

// ErrUnknownTier is returned by Controller.AdminSetTier for a tier name
// the policy does not declare.
var ErrUnknownTier = errors.New("admin: unknown tier")

// Controller is the daemon surface the handlers drive. *server.Server
// implements it; tests use a fake.
type Controller interface {
	// AdminDevices lists every device this daemon holds state for,
	// sorted by ID.
	AdminDevices() []DeviceInfo
	// AdminDevice reports one device (false = unknown).
	AdminDevice(id string) (DeviceInfo, bool)
	// AdminEvict removes a device's state with move-out semantics: its
	// session tears down and a reconnect starts a fresh stream. False =
	// unknown or already handed off.
	AdminEvict(id string) bool
	// AdminReattest drops the device's fast-path arm record and asks its
	// issue loop for an immediate round, forcing a full-memory MAC.
	// False = unknown or already handed off.
	AdminReattest(id string) bool
	// AdminTiers lists the admission tiers in policy order.
	AdminTiers() []TierStatus
	// AdminSetTier applies a runtime override, returning the updated
	// status (ErrUnknownTier for an undeclared name).
	AdminSetTier(name string, o TierOverride) (TierStatus, error)
	// AdminDrain starts a graceful drain (Shutdown) in the background.
	AdminDrain()
	// Healthy is the liveness signal; Ready the load-balancing one, with
	// a human-readable reason when false.
	Healthy() bool
	Ready() (bool, string)
}

// Options configures the control-plane surface.
type Options struct {
	// Token is the bearer token mutating endpoints require
	// (Authorization: Bearer <token>). Empty disables every mutating
	// endpoint — fail closed, because an unauthenticated evict is a
	// denial-of-service primitive.
	Token string
}

// NewMux builds the control-plane handler tree:
//
//	GET  /healthz                     liveness
//	GET  /readyz                      readiness (503 + reason while not ready)
//	GET  /admin/devices               fleet listing
//	GET  /admin/devices/{id}          one device
//	POST /admin/devices/{id}/evict    drop state, tear down session (auth)
//	POST /admin/devices/{id}/reattest force a full-MAC round (auth)
//	GET  /admin/tiers                 tier configuration + counters
//	POST /admin/tiers/{name}          runtime limit override (auth)
//	POST /admin/drain                 start a graceful drain (auth)
func NewMux(c Controller, opts Options) *http.ServeMux {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if !c.Healthy() {
			http.Error(w, "unhealthy", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if ok, reason := c.Ready(); !ok {
			http.Error(w, "not ready: "+reason, http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ready\n"))
	})

	mux.HandleFunc("GET /admin/devices", func(w http.ResponseWriter, r *http.Request) {
		devs := c.AdminDevices()
		writeJSON(w, http.StatusOK, map[string]any{"count": len(devs), "devices": devs})
	})
	mux.HandleFunc("GET /admin/devices/{id}", func(w http.ResponseWriter, r *http.Request) {
		info, ok := c.AdminDevice(r.PathValue("id"))
		if !ok {
			http.Error(w, "unknown device", http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})
	mux.HandleFunc("POST /admin/devices/{id}/evict", authed(opts, func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if !c.AdminEvict(id) {
			http.Error(w, "unknown device", http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"id": id, "evicted": true})
	}))
	mux.HandleFunc("POST /admin/devices/{id}/reattest", authed(opts, func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if !c.AdminReattest(id) {
			http.Error(w, "unknown device", http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"id": id, "reattest": true})
	}))

	mux.HandleFunc("GET /admin/tiers", func(w http.ResponseWriter, r *http.Request) {
		tiers := c.AdminTiers()
		writeJSON(w, http.StatusOK, map[string]any{"count": len(tiers), "tiers": tiers})
	})
	mux.HandleFunc("POST /admin/tiers/{name}", authed(opts, func(w http.ResponseWriter, r *http.Request) {
		var o TierOverride
		if err := json.NewDecoder(r.Body).Decode(&o); err != nil {
			http.Error(w, "bad override body: "+err.Error(), http.StatusBadRequest)
			return
		}
		st, err := c.AdminSetTier(r.PathValue("name"), o)
		if errors.Is(err, ErrUnknownTier) {
			http.Error(w, "unknown tier", http.StatusNotFound)
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, http.StatusOK, st)
	}))

	mux.HandleFunc("POST /admin/drain", authed(opts, func(w http.ResponseWriter, r *http.Request) {
		c.AdminDrain()
		writeJSON(w, http.StatusAccepted, map[string]any{"draining": true})
	}))

	return mux
}

// authed gates a mutating handler on the bearer token; with no token
// configured it refuses outright rather than defaulting open.
func authed(opts Options, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if opts.Token == "" {
			http.Error(w, "mutating admin endpoints disabled: no admin token configured", http.StatusForbidden)
			return
		}
		want := "Bearer " + opts.Token
		got := r.Header.Get("Authorization")
		// Constant-time compare so the token cannot be guessed
		// byte-by-byte off the response timing.
		if len(got) != len(want) || subtle.ConstantTimeCompare([]byte(got), []byte(want)) != 1 {
			http.Error(w, "unauthorized", http.StatusUnauthorized)
			return
		}
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
