package admin

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// fakeController records every mutation the handlers forward, so the
// tests assert both the HTTP surface and what reached the daemon.
type fakeController struct {
	devices []DeviceInfo
	tiers   []TierStatus

	evicted    []string
	reattested []string
	overrides  map[string]TierOverride
	drains     int

	healthy bool
	ready   bool
	reason  string
}

func newFake() *fakeController {
	return &fakeController{
		devices: []DeviceInfo{
			{ID: "dev-a", Tier: "gold", Counter: 7, FastArmed: true, FastEpoch: 3},
			{ID: "dev-b", Tier: "bulk"},
		},
		tiers: []TierStatus{
			{Name: "gold", Class: 1, RatePerSec: 100},
			{Name: "bulk", Class: 2, Default: true},
		},
		overrides: map[string]TierOverride{},
		healthy:   true,
		ready:     true,
	}
}

func (f *fakeController) AdminDevices() []DeviceInfo { return f.devices }
func (f *fakeController) AdminDevice(id string) (DeviceInfo, bool) {
	for _, d := range f.devices {
		if d.ID == id {
			return d, true
		}
	}
	return DeviceInfo{}, false
}
func (f *fakeController) AdminEvict(id string) bool {
	if _, ok := f.AdminDevice(id); !ok {
		return false
	}
	f.evicted = append(f.evicted, id)
	return true
}
func (f *fakeController) AdminReattest(id string) bool {
	if _, ok := f.AdminDevice(id); !ok {
		return false
	}
	f.reattested = append(f.reattested, id)
	return true
}
func (f *fakeController) AdminTiers() []TierStatus { return f.tiers }
func (f *fakeController) AdminSetTier(name string, o TierOverride) (TierStatus, error) {
	for _, st := range f.tiers {
		if st.Name == name {
			f.overrides[name] = o
			return st, nil
		}
	}
	return TierStatus{}, ErrUnknownTier
}
func (f *fakeController) AdminDrain()           { f.drains++ }
func (f *fakeController) Healthy() bool         { return f.healthy }
func (f *fakeController) Ready() (bool, string) { return f.ready, f.reason }

func do(t *testing.T, mux *http.ServeMux, method, path, token, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, req)
	return w
}

func TestProbeEndpoints(t *testing.T) {
	f := newFake()
	mux := NewMux(f, Options{})

	if w := do(t, mux, "GET", "/healthz", "", ""); w.Code != 200 || w.Body.String() != "ok\n" {
		t.Fatalf("healthz = %d %q", w.Code, w.Body.String())
	}
	if w := do(t, mux, "GET", "/readyz", "", ""); w.Code != 200 || w.Body.String() != "ready\n" {
		t.Fatalf("readyz = %d %q", w.Code, w.Body.String())
	}

	f.healthy = false
	if w := do(t, mux, "GET", "/healthz", "", ""); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("unhealthy healthz = %d, want 503", w.Code)
	}
	f.ready, f.reason = false, "draining"
	w := do(t, mux, "GET", "/readyz", "", "")
	if w.Code != http.StatusServiceUnavailable || !strings.Contains(w.Body.String(), "not ready: draining") {
		t.Fatalf("unready readyz = %d %q, want 503 with the reason", w.Code, w.Body.String())
	}
}

func TestReadEndpointsOpenAndShaped(t *testing.T) {
	f := newFake()
	// No token configured: reads must still work (they are fail-open by
	// design; mutations are what fail closed).
	mux := NewMux(f, Options{})

	w := do(t, mux, "GET", "/admin/devices", "", "")
	if w.Code != 200 {
		t.Fatalf("devices = %d", w.Code)
	}
	var fleet struct {
		Count   int          `json:"count"`
		Devices []DeviceInfo `json:"devices"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &fleet); err != nil {
		t.Fatal(err)
	}
	if fleet.Count != 2 || len(fleet.Devices) != 2 || fleet.Devices[0].ID != "dev-a" {
		t.Fatalf("fleet listing = %+v", fleet)
	}

	w = do(t, mux, "GET", "/admin/devices/dev-a", "", "")
	var one DeviceInfo
	if err := json.Unmarshal(w.Body.Bytes(), &one); err != nil {
		t.Fatal(err)
	}
	if one.Tier != "gold" || !one.FastArmed || one.FastEpoch != 3 || one.Counter != 7 {
		t.Fatalf("device view = %+v", one)
	}
	if w := do(t, mux, "GET", "/admin/devices/nope", "", ""); w.Code != http.StatusNotFound {
		t.Fatalf("unknown device = %d, want 404", w.Code)
	}

	w = do(t, mux, "GET", "/admin/tiers", "", "")
	var tiers struct {
		Count int          `json:"count"`
		Tiers []TierStatus `json:"tiers"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &tiers); err != nil {
		t.Fatal(err)
	}
	if tiers.Count != 2 || tiers.Tiers[1].Name != "bulk" || !tiers.Tiers[1].Default {
		t.Fatalf("tier listing = %+v", tiers)
	}
}

// TestMutationsAuthMatrix drives every mutating endpoint through the
// auth states: no token configured (403, fail closed), missing and wrong
// credentials (401), and the right bearer token (2xx, mutation applied).
func TestMutationsAuthMatrix(t *testing.T) {
	mutations := []struct {
		method, path, body string
		wantCode           int
		applied            func(f *fakeController) bool
	}{
		{"POST", "/admin/devices/dev-a/evict", "", 200,
			func(f *fakeController) bool { return len(f.evicted) == 1 && f.evicted[0] == "dev-a" }},
		{"POST", "/admin/devices/dev-a/reattest", "", 200,
			func(f *fakeController) bool { return len(f.reattested) == 1 }},
		{"POST", "/admin/tiers/gold", `{"rate_per_sec": 50}`, 200,
			func(f *fakeController) bool {
				o, ok := f.overrides["gold"]
				return ok && o.RatePerSec != nil && *o.RatePerSec == 50
			}},
		{"POST", "/admin/drain", "", http.StatusAccepted,
			func(f *fakeController) bool { return f.drains == 1 }},
	}

	for _, m := range mutations {
		t.Run(m.path, func(t *testing.T) {
			// No token configured: every mutation refused outright.
			f := newFake()
			mux := NewMux(f, Options{})
			if w := do(t, mux, m.method, m.path, "s3cret", m.body); w.Code != http.StatusForbidden {
				t.Fatalf("tokenless daemon: %s = %d, want 403", m.path, w.Code)
			}

			f = newFake()
			mux = NewMux(f, Options{Token: "s3cret"})
			if w := do(t, mux, m.method, m.path, "", m.body); w.Code != http.StatusUnauthorized {
				t.Fatalf("no credentials: %s = %d, want 401", m.path, w.Code)
			}
			if w := do(t, mux, m.method, m.path, "wrong", m.body); w.Code != http.StatusUnauthorized {
				t.Fatalf("wrong token: %s = %d, want 401", m.path, w.Code)
			}
			if m.applied(f) || f.drains > 0 {
				t.Fatalf("refused requests still mutated: %+v", f)
			}

			if w := do(t, mux, m.method, m.path, "s3cret", m.body); w.Code != m.wantCode {
				t.Fatalf("authorized: %s = %d, want %d", m.path, w.Code, m.wantCode)
			}
			if !m.applied(f) {
				t.Fatalf("authorized %s did not reach the controller", m.path)
			}
		})
	}
}

func TestTierOverrideValidation(t *testing.T) {
	f := newFake()
	mux := NewMux(f, Options{Token: "s3cret"})

	if w := do(t, mux, "POST", "/admin/tiers/gold", "s3cret", "{not json"); w.Code != http.StatusBadRequest {
		t.Fatalf("bad body = %d, want 400", w.Code)
	}
	if w := do(t, mux, "POST", "/admin/tiers/nope", "s3cret", "{}"); w.Code != http.StatusNotFound {
		t.Fatalf("unknown tier = %d, want 404", w.Code)
	}
	w := do(t, mux, "POST", "/admin/tiers/gold", "s3cret", `{"rate_per_sec": 0, "per_conn_burst": 9}`)
	if w.Code != 200 {
		t.Fatalf("valid override = %d: %s", w.Code, w.Body.String())
	}
	o := f.overrides["gold"]
	if o.RatePerSec == nil || *o.RatePerSec != 0 || o.PerConnBurst == nil || *o.PerConnBurst != 9 || o.Burst != nil {
		t.Fatalf("override decoded as %+v, want explicit 0 rate, burst kept nil", o)
	}
}
