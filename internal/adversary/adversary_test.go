package adversary

import (
	"bytes"
	"testing"

	"proverattest/internal/anchor"
	"proverattest/internal/channel"
	"proverattest/internal/mcu"
	"proverattest/internal/sim"
)

func TestRecorderCapturesAndForwards(t *testing.T) {
	k := sim.NewKernel()
	rec := &Recorder{}
	c := channel.New(k, 0, rec)
	delivered := 0
	c.Attach(channel.Prover, func(channel.Message) { delivered++ })
	c.Attach(channel.Verifier, func(channel.Message) {})
	c.Send(channel.Verifier, channel.Prover, []byte("req-1"))
	c.Send(channel.Prover, channel.Verifier, []byte("resp-1")) // not recorded (default match)
	c.Send(channel.Verifier, channel.Prover, []byte("req-2"))
	k.Run()

	if delivered != 2 {
		t.Fatalf("delivered %d frames to prover, want 2 (recorder must forward)", delivered)
	}
	if len(rec.Frames) != 2 {
		t.Fatalf("recorded %d frames, want 2", len(rec.Frames))
	}
	if !bytes.Equal(rec.Recorded(0).Payload, []byte("req-1")) {
		t.Fatalf("recorded payload = %q", rec.Recorded(0).Payload)
	}
	// Recorded returns copies.
	rec.Recorded(0).Payload[0] = 'X'
	if rec.Frames[0].Payload[0] == 'X' {
		t.Fatal("Recorded aliases the stored frame")
	}
}

func TestRecorderCustomMatch(t *testing.T) {
	k := sim.NewKernel()
	rec := &Recorder{Match: func(m channel.Message) bool { return m.To == channel.Verifier }}
	c := channel.New(k, 0, rec)
	c.Attach(channel.Prover, func(channel.Message) {})
	c.Attach(channel.Verifier, func(channel.Message) {})
	c.Send(channel.Verifier, channel.Prover, []byte("req"))
	c.Send(channel.Prover, channel.Verifier, []byte("resp"))
	k.Run()
	if len(rec.Frames) != 1 || !bytes.Equal(rec.Frames[0].Payload, []byte("resp")) {
		t.Fatalf("custom match recorded %v", rec.Frames)
	}
}

func TestInterceptorReplayDuplicates(t *testing.T) {
	k := sim.NewKernel()
	tap := &Interceptor{TargetIndex: 0, Duplicate: 10 * sim.Millisecond}
	c := channel.New(k, sim.Millisecond, tap)
	var times []sim.Time
	c.Attach(channel.Prover, func(channel.Message) { times = append(times, k.Now()) })
	c.Send(channel.Verifier, channel.Prover, []byte("req"))
	k.Run()
	if len(times) != 2 {
		t.Fatalf("replay delivered %d copies, want 2", len(times))
	}
	if times[1]-times[0] != 10*sim.Millisecond {
		t.Fatalf("replay gap = %v, want 10 ms", times[1]-times[0])
	}
	if !tap.Hit {
		t.Fatal("Hit not set")
	}
}

func TestInterceptorDelayHoldsFrame(t *testing.T) {
	k := sim.NewKernel()
	tap := &Interceptor{TargetIndex: 1, ExtraDelay: 5 * sim.Millisecond}
	c := channel.New(k, sim.Millisecond, tap)
	var order []string
	c.Attach(channel.Prover, func(m channel.Message) { order = append(order, string(m.Payload)) })
	c.Send(channel.Verifier, channel.Prover, []byte("a")) // index 0: passes
	c.Send(channel.Verifier, channel.Prover, []byte("b")) // index 1: held 5 ms
	c.Send(channel.Verifier, channel.Prover, []byte("c")) // index 2: passes
	k.Run()
	want := []string{"a", "c", "b"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("delivery order %v, want %v", order, want)
	}
}

func TestInterceptorDrop(t *testing.T) {
	k := sim.NewKernel()
	tap := &Interceptor{TargetIndex: 0, Drop: true}
	c := channel.New(k, 0, tap)
	got := 0
	c.Attach(channel.Prover, func(channel.Message) { got++ })
	c.Send(channel.Verifier, channel.Prover, []byte("x"))
	c.Send(channel.Verifier, channel.Prover, []byte("y"))
	k.Run()
	if got != 1 {
		t.Fatalf("delivered %d frames, want 1 (first dropped)", got)
	}
}

func TestInterceptorIgnoresNonMatching(t *testing.T) {
	k := sim.NewKernel()
	tap := &Interceptor{TargetIndex: 0, Drop: true}
	c := channel.New(k, 0, tap)
	got := 0
	c.Attach(channel.Verifier, func(channel.Message) { got++ })
	// Prover→verifier traffic does not match the default filter.
	c.Send(channel.Prover, channel.Verifier, []byte("resp"))
	k.Run()
	if got != 1 {
		t.Fatal("non-matching frame was manipulated")
	}
	if tap.Hit {
		t.Fatal("Hit set by non-matching traffic")
	}
}

func TestFloodInjectsAtRate(t *testing.T) {
	k := sim.NewKernel()
	c := channel.New(k, 0, nil)
	got := 0
	c.Attach(channel.Prover, func(m channel.Message) {
		if !m.Injected {
			t.Error("flood frame not marked injected")
		}
		got++
	})
	f := &Flood{C: c, K: k, Interval: 10 * sim.Millisecond, Frame: func(i int) []byte { return []byte{byte(i)} }}
	f.Start(5)
	k.Run()
	if got != 5 || f.Injected != 5 {
		t.Fatalf("flood delivered %d (injected %d), want 5", got, f.Injected)
	}
	if k.Now() != 40*sim.Millisecond {
		t.Fatalf("five frames at 10 ms intervals should end at 40 ms, got %v", k.Now())
	}
}

func TestFloodStop(t *testing.T) {
	k := sim.NewKernel()
	c := channel.New(k, 0, nil)
	c.Attach(channel.Prover, func(channel.Message) {})
	f := &Flood{C: c, K: k, Interval: sim.Millisecond, Frame: func(int) []byte { return nil }}
	f.Start(0) // unbounded
	k.At(10*sim.Millisecond+1, func() { f.Stop() })
	k.RunUntil(sim.Second)
	if f.Injected < 10 || f.Injected > 12 {
		t.Fatalf("injected %d frames before Stop, want ≈11", f.Injected)
	}
}

func TestFloodRequiresInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-interval flood did not panic")
		}
	}()
	f := &Flood{C: nil, K: sim.NewKernel(), Interval: 0, Frame: func(int) []byte { return nil }}
	f.Start(1)
}

func TestInfectIsIdempotent(t *testing.T) {
	k := sim.NewKernel()
	m := mcu.New(k, mcu.Config{MPURules: 4})
	r1 := Infect(m, k)
	r2 := Infect(m, k)
	if r1.Malware != r2.Malware {
		t.Fatal("double infection registered two malware tasks")
	}
}

func TestRoamingPrimitivesOnBareMCU(t *testing.T) {
	// On a completely unprotected MCU every tamper primitive succeeds.
	k := sim.NewKernel()
	m := mcu.New(k, mcu.Config{MPURules: 4})
	mcu.NewWideClock(m, 64, 0)
	m.Space.DirectWrite(anchor.CounterAddr, []byte{7, 0, 0, 0, 0, 0, 0, 0})

	r := Infect(m, k)
	v, out := r.ReadCounter()
	if !out.Succeeded || v != 7 {
		t.Fatalf("ReadCounter = %d, %v", v, out)
	}
	if out := r.RollbackCounter(6); !out.Succeeded {
		t.Fatalf("RollbackCounter blocked on bare MCU: %v", out)
	}
	if got := m.Space.DirectRead(anchor.CounterAddr, 8)[0]; got != 6 {
		t.Fatalf("counter after rollback = %d, want 6", got)
	}
	if out := r.ResetWideClock(1234); !out.Succeeded {
		t.Fatalf("ResetWideClock blocked: %v", out)
	}
	if out := r.ExtractKey(anchor.KeyROMAddr); !out.Succeeded || len(out.Loot) != int(anchor.KeySize) {
		t.Fatalf("ExtractKey = %v", out)
	}
	if out := r.MaskTimerIRQ(); !out.Succeeded {
		t.Fatalf("MaskTimerIRQ blocked: %v", out)
	}
	if out := r.EraseTraces(); !out.Succeeded {
		t.Fatalf("EraseTraces blocked: %v", out)
	}
	if len(r.Log) == 0 {
		t.Fatal("attack log empty")
	}
}

func TestMoveIDTAgainstLock(t *testing.T) {
	k := sim.NewKernel()
	m := mcu.New(k, mcu.Config{MPURules: 4})
	// Boot-style configuration: IDT base set and locked.
	if err := m.IRQ.Store(0x04, uint32(anchor.IDTBase)); err != nil {
		t.Fatal(err)
	}
	if err := m.IRQ.Store(0x08, 1); err != nil {
		t.Fatal(err)
	}
	r := Infect(m, k)
	out := r.MoveIDT(mcu.RAMRegion.Start + 0x8000)
	if out.Succeeded {
		t.Fatal("IDT base moved despite the lock")
	}
	if m.IRQ.IDTBase() != anchor.IDTBase {
		t.Fatal("IDT base changed")
	}
}

func TestMoveIDTUnlockedSucceeds(t *testing.T) {
	k := sim.NewKernel()
	m := mcu.New(k, mcu.Config{MPURules: 4})
	if err := m.IRQ.Store(0x04, uint32(anchor.IDTBase)); err != nil {
		t.Fatal(err)
	}
	r := Infect(m, k)
	evil := mcu.RAMRegion.Start + 0x8000
	out := r.MoveIDT(evil)
	if !out.Succeeded {
		t.Fatalf("MoveIDT blocked on unlocked controller: %v", out)
	}
	if m.IRQ.IDTBase() != evil {
		t.Fatal("IDT base not moved")
	}
}

func TestOutcomeString(t *testing.T) {
	ok := Outcome{Action: "x", Succeeded: true}
	if ok.String() != "x: SUCCEEDED" {
		t.Errorf("String = %q", ok.String())
	}
	blocked := Outcome{Action: "y", Fault: &mcu.Fault{Reason: "denied"}}
	if blocked.String() == "" {
		t.Error("blocked outcome has empty String")
	}
}
