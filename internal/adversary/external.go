// Package adversary implements the paper's two attacker models (§3.2):
// the external Dolev-Yao adversary Adv_ext, who fully controls the
// verifier–prover channel (drop, delay, reorder, replay, inject), and the
// roaming adversary Adv_roam, who additionally compromises the prover,
// tampers with its anti-replay state, erases its traces and replays
// recorded requests later. Attacks are executed, not asserted: every
// outcome is observed through the simulated system's behaviour.
package adversary

import (
	"proverattest/internal/channel"
	"proverattest/internal/sim"
)

// Recorder is the eavesdropping tap (Adv_roam Phase I, and the replay
// setup for Adv_ext): it passes all traffic through unchanged while
// keeping deep copies of the frames matching Match.
type Recorder struct {
	// Match selects frames to record; nil records verifier→prover frames.
	Match func(channel.Message) bool
	// Inner handles delivery after recording; nil means passthrough.
	Inner channel.Tap

	Frames []channel.Message
}

// OnSend implements channel.Tap.
func (r *Recorder) OnSend(msg channel.Message, now sim.Time) []channel.Delivery {
	match := r.Match
	if match == nil {
		match = func(m channel.Message) bool { return m.To == channel.Prover }
	}
	if match(msg) {
		r.Frames = append(r.Frames, msg.Clone())
	}
	if r.Inner != nil {
		return r.Inner.OnSend(msg, now)
	}
	return []channel.Delivery{{Msg: msg}}
}

// Recorded returns the nth recorded frame (panics if absent — a scenario
// scripting bug).
func (r *Recorder) Recorded(n int) channel.Message {
	return r.Frames[n].Clone()
}

// Interceptor is the general Adv_ext in-path manipulation: it singles out
// the Nth frame matching Match and drops, delays or duplicates it, passing
// everything else through. One Interceptor expresses all three Table 2
// attacks:
//
//	replay:  Duplicate = δ   (deliver now AND again δ later)
//	delay:   ExtraDelay = δ  (deliver only δ later)
//	reorder: ExtraDelay just long enough to let the next frame overtake
type Interceptor struct {
	// Match selects manipulable frames; nil means verifier→prover.
	Match func(channel.Message) bool
	// TargetIndex is the 0-based index among matching frames.
	TargetIndex int
	// Drop discards the target frame entirely.
	Drop bool
	// ExtraDelay postpones the target's delivery.
	ExtraDelay sim.Duration
	// Duplicate, when > 0, delivers the target normally and again after
	// this extra delay (the classic replay).
	Duplicate sim.Duration

	seen int
	Hit  bool // the target frame was seen and manipulated
}

// OnSend implements channel.Tap.
func (i *Interceptor) OnSend(msg channel.Message, now sim.Time) []channel.Delivery {
	match := i.Match
	if match == nil {
		match = func(m channel.Message) bool { return m.To == channel.Prover }
	}
	if !match(msg) {
		return []channel.Delivery{{Msg: msg}}
	}
	idx := i.seen
	i.seen++
	if idx != i.TargetIndex {
		return []channel.Delivery{{Msg: msg}}
	}
	i.Hit = true
	switch {
	case i.Drop:
		return nil
	case i.Duplicate > 0:
		return []channel.Delivery{
			{Msg: msg},
			{Msg: msg.Clone(), ExtraDelay: i.Duplicate},
		}
	default:
		return []channel.Delivery{{Msg: msg, ExtraDelay: i.ExtraDelay}}
	}
}

// Flood models verifier impersonation at scale (§3.1): inject bogus or
// recorded request frames at a fixed rate. It is driven by kernel events,
// not a tap — the adversary originates this traffic.
type Flood struct {
	C        *channel.Channel
	K        *sim.Kernel
	Interval sim.Duration
	// Frame builds the ith injected payload. A verifier impersonator
	// without the key sends garbage-tagged requests; a replay flood
	// resends a recorded frame.
	Frame func(i int) []byte

	Injected int
	stopped  bool
}

// Start begins injecting count frames (count ≤ 0 means until Stop).
func (f *Flood) Start(count int) {
	if f.Interval <= 0 {
		panic("adversary: flood interval must be positive")
	}
	var tick func()
	tick = func() {
		if f.stopped || (count > 0 && f.Injected >= count) {
			return
		}
		payload := f.Frame(f.Injected)
		f.C.Inject(channel.Message{
			From:    channel.Verifier, // impersonation
			To:      channel.Prover,
			Payload: payload,
		}, 0)
		f.Injected++
		if count <= 0 || f.Injected < count {
			f.K.After(f.Interval, tick)
		}
	}
	f.K.After(0, tick)
}

// Stop halts the flood.
func (f *Flood) Stop() { f.stopped = true }
