package adversary

import (
	"encoding/binary"
	"fmt"

	"proverattest/internal/anchor"
	"proverattest/internal/mcu"
	"proverattest/internal/sim"
)

// Outcome records one Phase II tampering attempt. Succeeded means the
// hardware let the write/read happen; Fault carries the EA-MPU denial
// otherwise.
type Outcome struct {
	Action    string
	Succeeded bool
	Fault     *mcu.Fault
	// Loot holds bytes exfiltrated by read attacks (key extraction).
	Loot []byte
}

func (o Outcome) String() string {
	if o.Succeeded {
		return fmt.Sprintf("%s: SUCCEEDED", o.Action)
	}
	return fmt.Sprintf("%s: blocked (%v)", o.Action, o.Fault)
}

// Roaming is Adv_roam (§3.2): malware running on the prover with full
// control of application software — every region except the ROM-resident
// trust anchor. Its memory accesses go through the bus under the malware
// task's program counter, so the installed EA-MPU rules decide what it can
// reach. Phase I (eavesdropping) is a Recorder on the channel; Phase III
// (replay) re-injects recorded frames; the methods here are the Phase II
// state-tampering moves from §5, plus the trace-erasure step.
type Roaming struct {
	M       *mcu.MCU
	K       *sim.Kernel
	Malware *mcu.Task

	// Log accumulates all Phase II outcomes.
	Log []Outcome
}

// MalwareRegion is where the implant's code sits: inside the application's
// flash, far from the anchor regions.
var MalwareRegion = mcu.Region{Start: mcu.FlashRegion.Start + 0x40000, Size: 0x2000}

// Infect registers the malware task on the prover (the moment Adv_roam
// gains execution). Idempotent per MCU.
func Infect(m *mcu.MCU, k *sim.Kernel) *Roaming {
	r := &Roaming{M: m, K: k}
	if t, ok := m.TaskByName("malware"); ok {
		r.Malware = t
	} else {
		r.Malware = m.RegisterTask(&mcu.Task{Name: "malware", Code: MalwareRegion})
	}
	return r
}

// run executes one malicious action synchronously: it submits the action
// as a malware job and drives the kernel just far enough for it to finish.
func (r *Roaming) run(name string, action func(e *mcu.Exec) Outcome) Outcome {
	var out Outcome
	done := false
	r.M.Submit(r.Malware, func(e *mcu.Exec) {
		out = action(e)
		out.Action = name
	}, func(*mcu.Exec) { done = true })
	// Malicious pokes are cheap; a small bounded run completes them even
	// behind a queued job.
	deadline := r.K.Now() + 5*sim.Second
	for !done && r.K.Now() < deadline {
		if !r.K.Step() {
			break
		}
	}
	r.Log = append(r.Log, out)
	return out
}

func outcomeFromFault(f *mcu.Fault) Outcome {
	return Outcome{Succeeded: f == nil, Fault: f}
}

// RollbackCounter is the §5 counter attack: set counter_R back to `to`
// (the paper uses i−1) so a recorded attreq(i) becomes fresh again.
func (r *Roaming) RollbackCounter(to uint64) Outcome {
	return r.run(fmt.Sprintf("rollback counter_R to %d", to), func(e *mcu.Exec) Outcome {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], to)
		return outcomeFromFault(e.Write(anchor.CounterAddr, buf[:]))
	})
}

// ReadCounter probes the counter (always allowed when unprotected; useful
// for the adversary to compute i−1).
func (r *Roaming) ReadCounter() (uint64, Outcome) {
	var v uint64
	out := r.run("read counter_R", func(e *mcu.Exec) Outcome {
		raw, f := e.Read(anchor.CounterAddr, anchor.CounterSize)
		if f == nil {
			v = binary.LittleEndian.Uint64(raw)
		}
		return outcomeFromFault(f)
	})
	return v, out
}

// ResetWideClock is the §5 timestamp attack against the hardware-clock
// designs: write targetMs into the clock's set registers (t_i − δ), so a
// recorded attreq(t_i) becomes timely after waiting δ.
func (r *Roaming) ResetWideClock(targetMs uint64) Outcome {
	return r.run(fmt.Sprintf("reset wide clock to %d ms", targetMs), func(e *mcu.Exec) Outcome {
		cycles := targetMs * 24_000 // prover cycles at 24 MHz
		if f := e.Store32(mcu.WideClockSetLoAddr, uint32(cycles)); f != nil {
			return outcomeFromFault(f)
		}
		return outcomeFromFault(e.Store32(mcu.WideClockSetHiAddr, uint32(cycles>>32)))
	})
}

// OverwriteClockMSB attacks the SW-clock's software-maintained high bits
// directly, turning the clock back without touching hardware.
func (r *Roaming) OverwriteClockMSB(v uint32) Outcome {
	return r.run(fmt.Sprintf("overwrite Clock_MSB with %d", v), func(e *mcu.Exec) Outcome {
		return outcomeFromFault(e.Store32(anchor.ClockMSBAddr, v))
	})
}

// PatchIDT redirects the timer vector away from Code_Clock (§6.2: "if
// Adv_roam manipulates the IDT, it could preclude Code_Clock being
// invoked … thus effectively stopping the real-time clock").
func (r *Roaming) PatchIDT(newEntry mcu.Addr) Outcome {
	return r.run("patch IDT timer vector", func(e *mcu.Exec) Outcome {
		addr := anchor.IDTBase + mcu.Addr(4*anchor.TimerIRQLine)
		return outcomeFromFault(e.Store32(addr, uint32(newEntry)))
	})
}

// MaskTimerIRQ disables the timer line in the interrupt mask — the other
// way to stop the SW clock.
func (r *Roaming) MaskTimerIRQ() Outcome {
	return r.run("mask timer interrupt", func(e *mcu.Exec) Outcome {
		return outcomeFromFault(e.Store32(mcu.IRQIMRAddr, 0))
	})
}

// MoveIDT repoints the interrupt controller's IDT base at an
// adversary-controlled table (defeated by the IDT_LOCK / MPU rule).
func (r *Roaming) MoveIDT(newBase mcu.Addr) Outcome {
	return r.run("move IDT base", func(e *mcu.Exec) Outcome {
		return outcomeFromFault(e.Store32(mcu.IRQIDTBaseAddr, uint32(newBase)))
	})
}

// ExtractKey tries to read K_Attest (§5: "Adv_roam could extract Prv's
// K_Attest which would allow it to generate authentic attreq-s").
func (r *Roaming) ExtractKey(keyAddr mcu.Addr) Outcome {
	var loot []byte
	out := r.run("extract K_Attest", func(e *mcu.Exec) Outcome {
		raw, f := e.Read(keyAddr, anchor.KeySize)
		if f == nil {
			loot = raw
		}
		return outcomeFromFault(f)
	})
	out.Loot = loot
	r.Log[len(r.Log)-1] = out
	return out
}

// OverwriteKey tries to replace K_Attest with an adversary-chosen key
// (§5: "otherwise, Adv_roam could overwrite it with any key it chooses").
func (r *Roaming) OverwriteKey(keyAddr mcu.Addr, newKey []byte) Outcome {
	return r.run("overwrite K_Attest", func(e *mcu.Exec) Outcome {
		return outcomeFromFault(e.Write(keyAddr, newKey))
	})
}

// DisableMPURule tries to switch off a protection rule at runtime
// (defeated by the secure-boot lockdown).
func (r *Roaming) DisableMPURule(idx int) Outcome {
	return r.run(fmt.Sprintf("disable EA-MPU rule %d", idx), func(e *mcu.Exec) Outcome {
		return outcomeFromFault(e.Store32(mcu.MPURuleAddr(idx, 0x14), 0))
	})
}

// EraseTraces is the end of Phase II: the malware removes itself. In the
// simulation the implant's code region is zeroed; since the measured
// region is RAM and the implant never touched it, subsequent attestation
// shows a clean device — the paper's "undetectable after the fact".
func (r *Roaming) EraseTraces() Outcome {
	return r.run("erase traces", func(e *mcu.Exec) Outcome {
		zero := make([]byte, 64)
		return outcomeFromFault(e.Write(MalwareRegion.Start, zero))
	})
}
