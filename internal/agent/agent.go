// Package agent is the prover side of the networked attestation
// deployment: it dials the verifier daemon (internal/server), identifies
// itself with a session hello, and then feeds every inbound frame through
// the simulated device's trust anchor — the same Code_Attest gate the
// in-process scenarios exercise. The paper's DoS asymmetry is therefore
// preserved over real sockets: a frame that fails authentication or
// freshness dies after the cheap gate, and only authentic, fresh requests
// buy the ≈754 ms memory measurement.
//
// The agent never answers a frame the anchor rejected — silence is the
// prover's cheapest response — and periodically pushes its gate counters
// to the daemon as stats frames, so the fleet-wide rejected-at-gate versus
// MAC-work totals are observable server-side.
package agent

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"proverattest/internal/anchor"
	"proverattest/internal/cluster"
	"proverattest/internal/core"
	"proverattest/internal/mcu"
	"proverattest/internal/obs"
	"proverattest/internal/protocol"
	"proverattest/internal/services"
	"proverattest/internal/sim"
	"proverattest/internal/transport"
)

// Config assembles a networked prover agent.
type Config struct {
	// DeviceID identifies the prover to the daemon (1..protocol.MaxDeviceID
	// bytes).
	DeviceID string
	// Tier is the admission-tier class advertised in the hello
	// (0 = unclassified). It is a hint: the daemon's server-side tier
	// rules win whenever they claim this device's ID, and the advertised
	// class matters only for IDs no rule matches.
	Tier uint8
	// Freshness and Auth must match the daemon's provisioned policy; the
	// daemon refuses mismatched hellos. FreshTimestamp is not supported on
	// the networked path: the simulated prover clock advances with
	// simulated work, not wall time, so verifier and prover clocks cannot
	// be meaningfully synchronised across the socket.
	Freshness protocol.FreshnessKind
	Auth      protocol.AuthKind
	// MasterSecret derives this device's K_Attest
	// (protocol.DeriveDeviceKey), matching the daemon's derivation. Nil
	// falls back to core.DefaultAttestKey for single-device setups.
	MasterSecret []byte
	// Protection selects the anchor's EA-MPU mitigations (zero value:
	// anchor.FullProtection).
	Protection *anchor.Protection
	// FastPath installs the RATA-style write monitor on the device, so a
	// clean prover answers requests that permit it with the O(1) fast MAC
	// instead of the full memory measurement. Must match the daemon's
	// -fastpath setting: a monitored agent against a fastpath-less daemon
	// simply never sees AllowFast requests and always measures fully.
	FastPath bool
	// NonceCapacity bounds the nonce history for FreshNonceHistory.
	NonceCapacity int
	// SwarmFleet, when > 0, provisions the device for collective (swarm)
	// attestation: the anchor gates SwarmReq frames with the fleet-wide
	// broadcast key K_Swarm (derived from MasterSecret, which becomes
	// required) and answers with its keyed own-tag aggregate. SwarmIndex
	// is this device's member index in the fleet spanning tree; SwarmFleet
	// is the fleet member count (it sizes the presence bitmap).
	SwarmFleet int
	SwarmIndex uint16
	// EnableServices installs the secure-update/erase/clock-sync services
	// behind the gate, so the daemon can drive service commands too.
	EnableServices bool

	// StatsEvery is the heartbeat at which the agent reports its gate
	// counters to the daemon (default 250 ms).
	StatsEvery time.Duration
	// MaxFrame bounds frame payloads (0 = transport.DefaultMaxFrame).
	MaxFrame uint32
	// WriteTimeout bounds one frame write (default 10 s).
	WriteTimeout time.Duration

	// Metrics, when non-nil, receives the agent's observability series:
	// serve-loop counters, transport codec counters, and gauge re-exports
	// of the anchor's gate statistics. Registration happens once in New;
	// recording is allocation-free (see internal/obs). One registry serves
	// one agent — sharing a registry across agents panics on the duplicate
	// series.
	Metrics *obs.Registry
}

// Agent is a connected (or connectable) prover.
type Agent struct {
	cfg Config
	dev *core.Device

	// procCh serialises access to the simulated device: the MCU model is
	// single-core and not safe for concurrent use, exactly like the
	// hardware it stands in for.
	procCh chan struct{}

	framesIn uint64 // frames pulled off the socket (guarded by procCh)

	// now and sleep are the Run loop's injectable clock, following the
	// server token bucket's pattern: production uses the wall clock,
	// backoff tests freeze it. sleep returns false when the context
	// cancelled the wait.
	now   func() time.Time
	sleep func(context.Context, time.Duration) bool

	m *agentMetrics
}

// New builds the agent's simulated device: MCU, trust anchor, secure boot.
func New(cfg Config) (*Agent, error) {
	if cfg.DeviceID == "" || len(cfg.DeviceID) > protocol.MaxDeviceID {
		return nil, fmt.Errorf("agent: device id length %d out of range (1..%d)", len(cfg.DeviceID), protocol.MaxDeviceID)
	}
	if cfg.Freshness == protocol.FreshTimestamp {
		return nil, errors.New("agent: timestamp freshness is not supported over the socket path (prover clock is simulated)")
	}
	if cfg.StatsEvery <= 0 {
		cfg.StatsEvery = 250 * time.Millisecond
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 10 * time.Second
	}

	key := core.DefaultAttestKey
	if cfg.MasterSecret != nil {
		derived := protocol.DeriveDeviceKey(cfg.MasterSecret, cfg.DeviceID)
		key = derived[:]
	}
	prot := anchor.FullProtection()
	if cfg.Protection != nil {
		prot = *cfg.Protection
	}
	acfg := anchor.Config{
		AttestKey:     key,
		Freshness:     cfg.Freshness,
		NonceCapacity: cfg.NonceCapacity,
		Monitor:       cfg.FastPath,
		Protection:    prot,
	}
	if cfg.SwarmFleet > 0 {
		if cfg.MasterSecret == nil {
			return nil, errors.New("agent: swarm participation requires MasterSecret (K_Swarm derivation)")
		}
		sk := protocol.DeriveSwarmKey(cfg.MasterSecret)
		acfg.SwarmKey = sk[:]
		acfg.SwarmIndex = cfg.SwarmIndex
		acfg.SwarmFleet = cfg.SwarmFleet
	}
	if err := core.NewDeviceAuth(cfg.Auth, &acfg); err != nil {
		return nil, fmt.Errorf("agent: %w", err)
	}
	dev, err := core.NewDevice(sim.NewKernel(), core.DeviceConfig{Anchor: acfg})
	if err != nil {
		return nil, fmt.Errorf("agent: %w", err)
	}
	a := &Agent{cfg: cfg, dev: dev, procCh: make(chan struct{}, 1), now: time.Now, sleep: sleepCtx}
	a.procCh <- struct{}{}
	a.m = newAgentMetrics(cfg.Metrics)
	a.registerGauges(cfg.Metrics)
	if cfg.EnableServices {
		// The services package is wired through core's scenario layer; the
		// networked agent installs the same handlers directly.
		installServices(dev)
	}
	return a, nil
}

// installServices mirrors core's scenario wiring: the standard service
// handlers behind the anchor's gate.
func installServices(dev *core.Device) {
	services.InstallUpdateService(dev.A, core.AppImageRegion)
	services.InstallEraseService(dev.A, mcu.RAMRegion)
	services.InstallClockSyncService(dev.A, 500)
}

// Device exposes the simulated prover (tests and examples inspect its
// anchor stats and golden memory).
func (a *Agent) Device() *core.Device { return a.dev }

// lock acquires the device.
func (a *Agent) lock() { <-a.procCh }

// unlock releases the device.
func (a *Agent) unlock() { a.procCh <- struct{}{} }

// Process feeds one raw frame through the trust anchor's gate and drives
// the simulated MCU until the resulting job chain settles. It returns the
// encoded response, or nil when the anchor rejected the frame (the prover
// stays silent — rejection must not cost a transmission either).
func (a *Agent) Process(frame []byte) []byte {
	a.lock()
	defer a.unlock()
	return a.processLocked(frame)
}

func (a *Agent) processLocked(frame []byte) []byte {
	a.framesIn++
	var reply []byte
	responded := false
	respond := func(out []byte) {
		reply = append([]byte(nil), out...)
		responded = true
	}
	rejects := func() uint64 {
		st := a.dev.A.Stats
		return st.Malformed + st.AuthRejected + st.FreshnessRejected + st.Faults
	}
	before := rejects()
	switch protocol.ClassifyFrame(frame) {
	case protocol.FrameCommandReq:
		a.dev.A.HandleCommand(frame, respond)
	case protocol.FrameSwarmReq:
		// A networked agent is a leaf of whatever aggregation fabric sits
		// above it: gate + own tag, then the aggregate (its own
		// contribution) straight back. On a star topology the own-only
		// bisection probe and the leaf case of a full round are the same
		// exchange; a gate rejection stays silent like every other frame.
		a.dev.A.HandleSwarmBegin(frame, func(err error) {
			if err != nil {
				return
			}
			a.dev.A.SwarmRespond(respond)
		})
	default:
		// Attestation requests and garbage alike go through Code_Attest's
		// request path: the prover cannot afford to pre-filter frames
		// before the gate, or the gate's cost accounting would lie.
		a.dev.A.HandleRequest(frame, respond)
	}
	// Drive the discrete-event kernel until the submitted work answers or
	// rejects. With the agent's clockless configuration the queue drains;
	// the reject check additionally stops early so a future clocked
	// configuration cannot spin on periodic timer events.
	for !responded && a.dev.K.Pending() > 0 {
		a.dev.K.Step()
		if rejects() > before {
			break
		}
	}
	return reply
}

// Snapshot reports the agent's cumulative gate counters as the wire-format
// stats frame.
func (a *Agent) Snapshot() protocol.StatsReport {
	a.lock()
	defer a.unlock()
	return a.snapshotLocked()
}

func (a *Agent) snapshotLocked() protocol.StatsReport {
	st := a.dev.A.Stats
	return protocol.StatsReport{
		Received:          st.Received,
		Malformed:         st.Malformed,
		AuthRejected:      st.AuthRejected,
		FreshnessRejected: st.FreshnessRejected,
		Faults:            st.Faults,
		Measurements:      st.Measurements,
		FastResponses:     st.FastResponses,
		Commands:          st.Commands,
		CommandsExecuted:  st.CommandsExecuted,
		ActiveCycles:      uint64(a.dev.M.ActiveCycles),
		FramesIn:          a.framesIn,
	}
}

// Serve runs the agent over an established connection until the context is
// cancelled or the peer closes. The caller dials (net.Dial, net.Pipe, …);
// Serve sends the hello, then answers requests and heartbeats stats.
//
// Exit-error contract (normalised in one place, pinned by serve_test.go):
//
//   - nil: the peer closed cleanly at a frame boundary. Raw io.EOF never
//     escapes — a clean close is not an error, on any path.
//   - ctx.Err(): our own context ended the session, whatever transport
//     error the resulting close surfaced first.
//   - *RedirectError: a cluster daemon answered the hello with the
//     device's owner instead of a session (the first frame was a
//     redirect). The caller should redial the carried address;
//     RunAddrs does so without backoff.
//   - anything else: a transport failure, with the cause preserved for
//     errors.Is (io.ErrUnexpectedEOF for a torn frame,
//     transport.ErrFrameTooLarge for a hostile prefix, …).
func (a *Agent) Serve(ctx context.Context, nc net.Conn) error {
	err := a.serve(ctx, nc)
	// Exactly one exit-cause series increments per Serve call: clean peer
	// close, our own cancellation, a redirect, or a transport failure.
	var re *RedirectError
	switch {
	case err == nil:
		a.m.exitEOF.Inc()
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		a.m.exitCanceled.Inc()
	case errors.As(err, &re):
		a.m.exitRedirect.Inc()
	default:
		a.m.exitError.Inc()
	}
	return err
}

// RedirectError reports that the daemon we dialed does not own this
// device: a cluster peer answered the hello with the owner's coordinates
// and closed. It is a routing outcome, not a failure — the session simply
// belongs elsewhere.
type RedirectError struct {
	Owner string // owning daemon's node name
	Addr  string // address to redial
}

func (e *RedirectError) Error() string {
	return fmt.Sprintf("agent: device owned by %s (%s)", e.Owner, e.Addr)
}

func (a *Agent) serve(ctx context.Context, nc net.Conn) error {
	tc := transport.NewConn(nc, transport.Options{
		MaxFrame: a.cfg.MaxFrame,
		// The read deadline doubles as the stats heartbeat: every quiet
		// interval, push counters instead of blocking forever.
		ReadTimeout:  a.cfg.StatsEvery,
		WriteTimeout: a.cfg.WriteTimeout,
		Metrics:      a.m.transport,
	})
	defer tc.Close()

	stopWatch := make(chan struct{})
	defer close(stopWatch)
	go func() {
		select {
		case <-ctx.Done():
			tc.Close()
		case <-stopWatch:
		}
	}()

	hello := &protocol.Hello{
		Freshness: a.cfg.Freshness,
		Auth:      a.cfg.Auth,
		Tier:      a.cfg.Tier,
		DeviceID:  a.cfg.DeviceID,
	}
	if err := tc.Send(hello.Encode()); err != nil {
		return a.exitErr(ctx, fmt.Errorf("agent: sending hello: %w", err))
	}

	var statsBuf []byte // reused stats-frame scratch (Serve is tc's only writer)
	first := true
	for {
		// RecvShared reuses the connection's frame buffer: Process hands the
		// frame to the anchor, which copies it before queueing the gate job,
		// so nothing aliases the buffer past the call.
		frame, err := tc.RecvShared()
		if err != nil {
			if transport.IsTimeout(err) {
				first = false
				if statsBuf, err = a.sendStats(tc, statsBuf); err != nil {
					return a.exitErr(ctx, err)
				}
				continue
			}
			return a.exitErr(ctx, err)
		}
		a.m.framesIn.Inc()
		if first {
			first = false
			// A cluster daemon that does not own this device answers the
			// hello with a redirect and nothing else; only the session's
			// first frame is honoured as one, so a mid-session forgery
			// cannot hijack an established exchange — past this point the
			// frame falls through to the anchor's gate like any garbage.
			if owner, addr, ok := cluster.DecodeRedirect(frame); ok {
				a.m.redirects.Inc()
				return &RedirectError{Owner: owner, Addr: addr}
			}
		}
		reply := a.Process(frame)
		if reply != nil {
			if err := tc.Send(reply); err != nil {
				return a.exitErr(ctx, err)
			}
			a.m.replies.Inc()
			// A completed measurement is the expensive event the daemon
			// audits; piggyback fresh counters on it immediately rather
			// than waiting for the next quiet heartbeat.
			if statsBuf, err = a.sendStats(tc, statsBuf); err != nil {
				return a.exitErr(ctx, err)
			}
		}
	}
}

// sendStats pushes a counter snapshot, encoding into scratch and returning
// it (possibly grown) for reuse.
func (a *Agent) sendStats(tc *transport.Conn, scratch []byte) ([]byte, error) {
	st := a.Snapshot()
	scratch = st.AppendEncode(scratch[:0])
	err := tc.Send(scratch)
	if err == nil {
		a.m.statsSent.Inc()
	}
	return scratch, err
}

// exitErr normalises every Serve exit to the documented contract: our own
// context-driven close reports the context error; a clean peer close (raw
// io.EOF at a frame boundary, from any path) reports nil; everything else
// passes through with its cause intact. A torn frame is io.ErrUnexpectedEOF,
// which is deliberately not io.EOF — a peer dying mid-frame is a failure,
// not a clean shutdown.
func (a *Agent) exitErr(ctx context.Context, err error) error {
	if ctx.Err() != nil {
		return ctx.Err()
	}
	if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		return nil
	}
	return err
}

// Dialer establishes one connection to the daemon for the supervised Run
// loop.
type Dialer func(ctx context.Context) (net.Conn, error)

// Run supervises the agent across connection failures: dial, serve,
// and — when the link dies for any reason but our own cancellation —
// back off and reconnect. Each new session re-sends the hello (Serve
// always does) and the simulated device persists across sessions, so the
// gate counters keep climbing and the daemon sees one continuous stats
// epoch: a reconnect is not a reboot, and fleet aggregates stay monotone
// without invoking the high-water fold.
//
// The backoff schedule is capped exponential with deterministic seeded
// jitter (see Backoff); a session that lives past Backoff.ResetAfter
// resets the schedule, so a healthy fleet pays Base — not the accumulated
// cap — for an isolated hiccup. Run returns only when ctx is cancelled
// (always ctx.Err()); every other failure is retried forever, because a
// prover's job is to keep serving attestation through adversity.
func (a *Agent) Run(ctx context.Context, dial Dialer, bo Backoff) error {
	bt := NewBackoffTimer(bo)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		nc, err := dial(ctx)
		if err != nil {
			a.m.dialErrors.Inc()
			if !a.backoffSleep(ctx, bt) {
				return ctx.Err()
			}
			continue
		}
		a.m.sessions.Inc()
		started := a.now()
		err = a.Serve(ctx, nc)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		_ = err // Serve already recorded the exit cause on its counters
		if a.now().Sub(started) >= bt.ResetAfter() {
			bt.Reset()
		}
		a.m.reconnects.Inc()
		if !a.backoffSleep(ctx, bt) {
			return ctx.Err()
		}
	}
}

// RunAddrs supervises the agent against a verifier cluster: it rotates
// through the configured daemon addresses, and when a daemon answers the
// hello with an ownership redirect it redials the carried address
// immediately — no backoff, because a redirect is routing, not failure.
// Any other session end (owner died, clean close, transport error) falls
// back to the address list with the usual capped-exponential backoff, so
// failover converges on whichever surviving daemon the ring now says owns
// the device.
//
// A redirect storm — more consecutive redirects than the cluster has
// daemons, plus slack for one ownership change mid-chase — means the
// ring view is flapping; the loop then backs off like a failure instead
// of hot-looping between daemons. Like Run, RunAddrs returns only when
// ctx is cancelled.
func (a *Agent) RunAddrs(ctx context.Context, addrs []string, bo Backoff) error {
	if len(addrs) == 0 {
		return errors.New("agent: RunAddrs needs at least one daemon address")
	}
	bt := NewBackoffTimer(bo)
	var nd net.Dialer
	cur := 0         // rotation cursor into addrs
	target := ""     // redirect target overriding the rotation
	redirectRun := 0 // consecutive redirects (storm guard)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		addr := target
		if addr == "" {
			addr = addrs[cur%len(addrs)]
		}
		nc, err := nd.DialContext(ctx, "tcp", addr)
		if err != nil {
			a.m.dialErrors.Inc()
			// A dead redirect target (owner crashed between redirect and
			// redial) falls back to the list — some survivor will redirect
			// us to, or be, the new owner.
			target = ""
			cur++
			if !a.backoffSleep(ctx, bt) {
				return ctx.Err()
			}
			continue
		}
		a.m.sessions.Inc()
		started := a.now()
		err = a.Serve(ctx, nc)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		var re *RedirectError
		if errors.As(err, &re) {
			redirectRun++
			if redirectRun <= len(addrs)+2 {
				target = re.Addr
				continue
			}
			// Storm: fall through to the backoff path with the rotation.
		} else {
			redirectRun = 0
		}
		target = ""
		cur++
		if a.now().Sub(started) >= bt.ResetAfter() {
			bt.Reset()
		}
		a.m.reconnects.Inc()
		if !a.backoffSleep(ctx, bt) {
			return ctx.Err()
		}
	}
}

// backoffSleep draws the next delay, exposes it on the backoff gauge for
// the duration of the wait, and sleeps it (context-aware). Returns false
// when the context ended the wait.
func (a *Agent) backoffSleep(ctx context.Context, bt *BackoffTimer) bool {
	d := bt.Next()
	a.m.backoffGauge.Set(int64(d))
	ok := a.sleep(ctx, d)
	a.m.backoffGauge.Set(0)
	return ok
}

// sleepCtx is the production sleep: a timer raced against the context.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	tm := time.NewTimer(d)
	defer tm.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-tm.C:
		return true
	}
}
