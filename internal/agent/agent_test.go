package agent

import (
	"bytes"
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"proverattest/internal/protocol"
	"proverattest/internal/swarm"
	"proverattest/internal/transport"
)

var testMaster = []byte("net-test-master-secret")

func testAgent(t *testing.T, fresh protocol.FreshnessKind, auth protocol.AuthKind) *Agent {
	t.Helper()
	a, err := New(Config{
		DeviceID:     "dev-under-test",
		Freshness:    fresh,
		Auth:         auth,
		MasterSecret: testMaster,
		StatsEvery:   20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func testVerifierFor(t *testing.T, a *Agent, fresh protocol.FreshnessKind) *protocol.Verifier {
	t.Helper()
	key := protocol.DeriveDeviceKey(testMaster, "dev-under-test")
	v, err := protocol.NewVerifier(protocol.VerifierConfig{
		Freshness: fresh,
		Auth:      protocol.NewHMACAuth(key[:]),
		AttestKey: key[:],
		Golden:    a.Device().GoldenRAM(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Freshness: protocol.FreshCounter}); err == nil {
		t.Error("agent built without a device id")
	}
	if _, err := New(Config{DeviceID: "x", Freshness: protocol.FreshTimestamp}); err == nil {
		t.Error("agent built with timestamp freshness (unsupported over sockets)")
	}
}

func TestProcessHonestRequest(t *testing.T) {
	a := testAgent(t, protocol.FreshCounter, protocol.AuthHMACSHA1)
	v := testVerifierFor(t, a, protocol.FreshCounter)

	req, err := v.NewRequest()
	if err != nil {
		t.Fatal(err)
	}
	reply := a.Process(req.Encode())
	if reply == nil {
		t.Fatal("honest request got no reply")
	}
	if ok, err := v.CheckResponse(reply); !ok {
		t.Fatalf("verifier rejected the agent's measurement: %v", err)
	}
	st := a.Snapshot()
	if st.Measurements != 1 || st.GateRejected() != 0 {
		t.Fatalf("stats = %+v, want 1 measurement, 0 gate rejects", st)
	}
}

func TestProcessRejectsWithoutMACWork(t *testing.T) {
	a := testAgent(t, protocol.FreshCounter, protocol.AuthHMACSHA1)
	v := testVerifierFor(t, a, protocol.FreshCounter)

	// Forged: right shape, garbage tag.
	forged := &protocol.AttReq{
		Freshness: protocol.FreshCounter, Auth: protocol.AuthHMACSHA1,
		Nonce: 99, Counter: 99, Tag: bytes.Repeat([]byte{0xAB}, 20),
	}
	if reply := a.Process(forged.Encode()); reply != nil {
		t.Fatal("forged request got a reply")
	}
	// Replay: a genuine frame, twice.
	req, _ := v.NewRequest()
	raw := req.Encode()
	if reply := a.Process(raw); reply == nil {
		t.Fatal("genuine request rejected")
	}
	if reply := a.Process(raw); reply != nil {
		t.Fatal("replayed request got a reply")
	}
	// Malformed: dies at the parser.
	if reply := a.Process([]byte{0x41, 0x52, 0xFF}); reply != nil {
		t.Fatal("malformed frame got a reply")
	}

	st := a.Snapshot()
	if st.Measurements != 1 {
		t.Fatalf("Measurements = %d, want 1 (only the genuine request pays MAC work)", st.Measurements)
	}
	if st.AuthRejected != 1 || st.FreshnessRejected != 1 || st.Malformed != 1 {
		t.Fatalf("rejects = auth %d / fresh %d / malformed %d, want 1 each",
			st.AuthRejected, st.FreshnessRejected, st.Malformed)
	}
	if st.Received != 4 {
		t.Fatalf("Received = %d, want 4", st.Received)
	}
}

// TestAgentSwarmProbe: a swarm-provisioned agent answers an own-only
// aggregate probe through the anchor's K_Swarm gate, the verifier's
// aggregate check accepts it, the second probe rides the RATA memo
// (one measurement total), and a replayed probe dies silently at the
// broadcast gate.
func TestAgentSwarmProbe(t *testing.T) {
	const fleet, index = 4, 2
	ids := swarm.FleetIDs(fleet)
	a, err := New(Config{
		DeviceID:     ids[index],
		Freshness:    protocol.FreshCounter,
		Auth:         protocol.AuthHMACSHA1,
		MasterSecret: testMaster,
		FastPath:     true,
		SwarmFleet:   fleet,
		SwarmIndex:   index,
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := swarm.NewVerifier(swarm.Params{
		Master: testMaster,
		IDs:    ids,
		Golden: a.Device().GoldenRAM(),
		Fanout: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	probe := func() {
		t.Helper()
		req := v.NewRequest(index, true)
		reply := a.Process(req.Encode())
		if reply == nil {
			t.Fatal("own-only probe got no reply")
		}
		resp, err := protocol.DecodeSwarmResp(reply)
		if err != nil {
			t.Fatal(err)
		}
		if err := v.Check(req, resp); err != nil {
			t.Fatalf("verifier rejected the agent's own tag: %v", err)
		}
	}
	probe()
	probe()
	st := a.Snapshot()
	if st.Measurements != 1 || st.FastResponses != 1 {
		t.Fatalf("measurements = %d, fast = %d; want 1 and 1 (second probe rides the memo)",
			st.Measurements, st.FastResponses)
	}

	// Replay: the anchor's broadcast-gate freshness is strictly monotonic.
	req := v.NewRequest(index, true)
	raw := req.Encode()
	if a.Process(raw) == nil {
		t.Fatal("fresh probe rejected")
	}
	if a.Process(raw) != nil {
		t.Fatal("replayed probe got a reply")
	}

	// Unprovisioned agents stay silent on swarm frames entirely.
	plain := testAgent(t, protocol.FreshCounter, protocol.AuthHMACSHA1)
	if plain.Process(v.NewRequest(index, true).Encode()) != nil {
		t.Fatal("swarm-less agent answered a swarm probe")
	}
}

func TestAgentSwarmRequiresMaster(t *testing.T) {
	if _, err := New(Config{
		DeviceID:   "x",
		Freshness:  protocol.FreshCounter,
		SwarmFleet: 4,
	}); err == nil {
		t.Fatal("swarm agent built without a master secret")
	}
}

func TestServeOverPipe(t *testing.T) {
	a := testAgent(t, protocol.FreshCounter, protocol.AuthHMACSHA1)
	v := testVerifierFor(t, a, protocol.FreshCounter)

	clientNC, agentNC := net.Pipe()
	client := transport.NewConn(clientNC, transport.Options{ReadTimeout: 2 * time.Second})
	defer client.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveErr := make(chan error, 1)
	go func() { serveErr <- a.Serve(ctx, agentNC) }()

	// The first frame must be the hello.
	frame, err := client.Recv()
	if err != nil {
		t.Fatal(err)
	}
	hello, err := protocol.DecodeHello(frame)
	if err != nil {
		t.Fatalf("first frame is not a hello: %v", err)
	}
	if hello.DeviceID != "dev-under-test" || hello.Freshness != protocol.FreshCounter {
		t.Fatalf("hello = %+v", hello)
	}

	// An honest request is answered; the answer verifies.
	req, _ := v.NewRequest()
	if err := client.Send(req.Encode()); err != nil {
		t.Fatal(err)
	}
	for {
		frame, err = client.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if protocol.ClassifyFrame(frame) == protocol.FrameAttResp {
			break // stats heartbeats may interleave
		}
	}
	if ok, err := v.CheckResponse(frame); !ok {
		t.Fatalf("measurement rejected: %v", err)
	}

	// Stats heartbeats arrive while idle.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("no stats heartbeat before deadline")
		}
		frame, err = client.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if protocol.ClassifyFrame(frame) == protocol.FrameStats {
			st, err := protocol.DecodeStatsReport(frame)
			if err != nil {
				t.Fatal(err)
			}
			if st.Measurements != 1 || st.FramesIn < 1 {
				t.Fatalf("reported stats = %+v", st)
			}
			break
		}
	}

	cancel()
	if err := <-serveErr; err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("Serve: %v", err)
	}
}
