package agent

import (
	"math/rand"
	"time"
)

// Backoff configures the supervised Run loop's reconnect schedule:
// capped exponential backoff with deterministic, seeded jitter. The zero
// value selects the defaults noted on each field.
type Backoff struct {
	// Base is the first retry delay (default 100 ms).
	Base time.Duration
	// Max caps every delay — jitter included (default 30 s).
	Max time.Duration
	// Multiplier grows the delay per consecutive failure (default 2).
	Multiplier float64
	// Jitter spreads each delay by ±Jitter·delay so a fleet knocked off
	// one daemon does not reconnect in lockstep. 0 (the zero value)
	// disables jitter; negative values are treated as 0. A typical fleet
	// setting is 0.2.
	Jitter float64
	// ResetAfter declares a session healthy: a connection that lived at
	// least this long resets the schedule to Base, so one hiccup after an
	// hour of service does not pay the accumulated penalty of a long-dead
	// daemon (default 30 s).
	ResetAfter time.Duration
	// Seed keys the jitter RNG. Equal seeds yield identical delay
	// sequences — chaos runs replay exactly.
	Seed int64
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 100 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 30 * time.Second
	}
	if b.Max < b.Base {
		b.Max = b.Base
	}
	if b.Multiplier <= 1 {
		b.Multiplier = 2
	}
	if b.Jitter < 0 {
		b.Jitter = 0
	}
	if b.ResetAfter <= 0 {
		b.ResetAfter = 30 * time.Second
	}
	return b
}

// BackoffTimer is the running state of one Backoff schedule. It is not
// safe for concurrent use (each Run loop owns its timer).
type BackoffTimer struct {
	cfg Backoff
	cur time.Duration
	rng *rand.Rand
}

// NewBackoffTimer builds a timer at the start of the schedule.
func NewBackoffTimer(cfg Backoff) *BackoffTimer {
	cfg = cfg.withDefaults()
	return &BackoffTimer{
		cfg: cfg,
		cur: cfg.Base,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Next returns the delay to sleep before the next attempt and advances
// the schedule. The returned delay is the current step jittered by
// ±Jitter, hard-capped at Max and floored at zero.
func (t *BackoffTimer) Next() time.Duration {
	d := t.cur
	if j := t.cfg.Jitter; j > 0 {
		spread := 1 + j*(2*t.rng.Float64()-1)
		d = time.Duration(float64(d) * spread)
	}
	if d > t.cfg.Max {
		d = t.cfg.Max
	}
	if d < 0 {
		d = 0
	}
	next := time.Duration(float64(t.cur) * t.cfg.Multiplier)
	if next > t.cfg.Max || next < t.cur {
		next = t.cfg.Max
	}
	t.cur = next
	return d
}

// Reset restarts the schedule from Base — called after a session lived
// past ResetAfter.
func (t *BackoffTimer) Reset() { t.cur = t.cfg.Base }

// Current exposes the un-jittered next step (tests and gauges).
func (t *BackoffTimer) Current() time.Duration { return t.cur }

// ResetAfter reports the healthy-session threshold after defaulting.
func (t *BackoffTimer) ResetAfter() time.Duration { return t.cfg.ResetAfter }
