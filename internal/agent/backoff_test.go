package agent

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// These tests pin the supervised Run loop's backoff schedule with the
// injectable clock: the cap is hard, jitter is deterministic per seed,
// and a session that lives past ResetAfter restarts the schedule.

func TestBackoffCapIsHard(t *testing.T) {
	bt := NewBackoffTimer(Backoff{
		Base:       100 * time.Millisecond,
		Max:        time.Second,
		Multiplier: 3,
		Jitter:     0.9, // jitter may push a step far up; the cap must still hold
		Seed:       1,
	})
	for i := 0; i < 64; i++ {
		if d := bt.Next(); d < 0 || d > time.Second {
			t.Fatalf("step %d: delay %v escaped [0, cap]", i, d)
		}
	}
	if cur := bt.Current(); cur != time.Second {
		t.Fatalf("un-jittered step settled at %v, want the cap", cur)
	}
}

func TestBackoffGrowthWithoutJitter(t *testing.T) {
	bt := NewBackoffTimer(Backoff{
		Base:       100 * time.Millisecond,
		Max:        time.Second,
		Multiplier: 2,
		Jitter:     0,
	})
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		time.Second,
		time.Second,
	}
	for i, w := range want {
		if d := bt.Next(); d != w {
			t.Fatalf("step %d: %v, want %v", i, d, w)
		}
	}
	bt.Reset()
	if d := bt.Next(); d != 100*time.Millisecond {
		t.Fatalf("after Reset: %v, want Base", d)
	}
}

func TestBackoffJitterDeterministicPerSeed(t *testing.T) {
	cfg := Backoff{Base: 100 * time.Millisecond, Max: 30 * time.Second, Jitter: 0.2, Seed: 7}
	a, b := NewBackoffTimer(cfg), NewBackoffTimer(cfg)
	var seqA []time.Duration
	for i := 0; i < 16; i++ {
		da, db := a.Next(), b.Next()
		if da != db {
			t.Fatalf("step %d: same seed diverged (%v vs %v)", i, da, db)
		}
		seqA = append(seqA, da)
	}
	cfg.Seed = 8
	c := NewBackoffTimer(cfg)
	same := true
	for i := 0; i < 16; i++ {
		if c.Next() != seqA[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter sequences")
	}
	// Jitter actually spreads: not every step equals its un-jittered value.
	d := NewBackoffTimer(Backoff{Base: 100 * time.Millisecond, Max: 30 * time.Second, Jitter: 0, Seed: 7})
	varies := false
	e := NewBackoffTimer(Backoff{Base: 100 * time.Millisecond, Max: 30 * time.Second, Jitter: 0.2, Seed: 7})
	for i := 0; i < 16; i++ {
		if e.Next() != d.Next() {
			varies = true
		}
	}
	if !varies {
		t.Fatal("jitter=0.2 never moved a delay off the deterministic ladder")
	}
}

func TestBackoffDefaults(t *testing.T) {
	bt := NewBackoffTimer(Backoff{})
	if bt.cfg.Base != 100*time.Millisecond || bt.cfg.Max != 30*time.Second ||
		bt.cfg.Multiplier != 2 || bt.cfg.Jitter != 0 || bt.ResetAfter() != 30*time.Second {
		t.Fatalf("defaults = %+v", bt.cfg)
	}
	if bt := NewBackoffTimer(Backoff{Base: time.Minute, Max: time.Second}); bt.cfg.Max != time.Minute {
		t.Fatalf("Max below Base not clamped: %+v", bt.cfg)
	}
}

// runClock fakes the Run loop's clock: Now is advanced manually (or by
// recorded sleeps), matching the fakeTime pattern used across the repo.
type runClock struct {
	mu    sync.Mutex
	now   time.Time
	slept []time.Duration
}

func newRunClock() *runClock { return &runClock{now: time.Unix(1_700_000_000, 0)} }

func (c *runClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *runClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func (c *runClock) Sleep(ctx context.Context, d time.Duration) bool {
	if ctx.Err() != nil { // production sleepCtx returns before sleeping
		return false
	}
	c.mu.Lock()
	c.slept = append(c.slept, d)
	c.now = c.now.Add(d)
	c.mu.Unlock()
	return ctx.Err() == nil
}

func (c *runClock) sleeps() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.slept...)
}

// deadConn fails every operation instantly; dialing it simulates a
// session that dies on arrival. advance>0 moves the fake clock before
// failing, simulating a session that served healthily for that long.
type deadConn struct {
	clk     *runClock
	advance time.Duration
	once    sync.Once
}

var errConnDead = errors.New("backoff_test: conn dead")

func (d *deadConn) Write([]byte) (int, error) {
	d.once.Do(func() {
		if d.advance > 0 {
			d.clk.Advance(d.advance)
		}
	})
	return 0, errConnDead
}
func (d *deadConn) Read([]byte) (int, error)         { return 0, errConnDead }
func (d *deadConn) Close() error                     { return nil }
func (d *deadConn) LocalAddr() net.Addr              { return nil }
func (d *deadConn) RemoteAddr() net.Addr             { return nil }
func (d *deadConn) SetDeadline(time.Time) error      { return nil }
func (d *deadConn) SetReadDeadline(time.Time) error  { return nil }
func (d *deadConn) SetWriteDeadline(time.Time) error { return nil }

// TestRunBackoffSchedule drives Run entirely on the fake clock: failing
// dials must sleep the exact deterministic schedule, and Run must return
// ctx.Err() once cancelled.
func TestRunBackoffSchedule(t *testing.T) {
	a, _ := metricAgent(t, nil)
	clk := newRunClock()
	a.now, a.sleep = clk.Now, clk.Sleep

	ctx, cancel := context.WithCancel(context.Background())
	dials := 0
	dial := func(context.Context) (net.Conn, error) {
		dials++
		if dials == 5 {
			cancel()
		}
		return nil, errors.New("refused")
	}
	err := a.Run(ctx, dial, Backoff{Base: 100 * time.Millisecond, Max: time.Second, Multiplier: 2, Jitter: 0})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond, 800 * time.Millisecond}
	got := clk.sleeps()
	if len(got) != len(want) {
		t.Fatalf("sleeps = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
}

// TestRunResetsAfterHealthySession pins the reset-after-healthy-interval
// rule: two dead-on-arrival sessions climb the schedule, a session that
// lived past ResetAfter (the conn advances the fake clock before dying)
// drops it back to Base.
func TestRunResetsAfterHealthySession(t *testing.T) {
	a, reg := metricAgent(t, nil)
	clk := newRunClock()
	a.now, a.sleep = clk.Now, clk.Sleep

	ctx, cancel := context.WithCancel(context.Background())
	conns := []*deadConn{
		{clk: clk},                           // dies instantly -> 100ms
		{clk: clk},                           // dies instantly -> 200ms
		{clk: clk, advance: 2 * time.Second}, // healthy past ResetAfter -> reset -> 100ms
		{clk: clk},                           // dies instantly -> 200ms
	}
	dials := 0
	dial := func(context.Context) (net.Conn, error) {
		if dials == len(conns) {
			cancel()
			return nil, context.Canceled
		}
		c := conns[dials]
		dials++
		return c, nil
	}
	err := a.Run(ctx, dial, Backoff{
		Base: 100 * time.Millisecond, Max: 10 * time.Second,
		Multiplier: 2, Jitter: 0, ResetAfter: time.Second,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond}
	got := clk.sleeps()
	if len(got) != len(want) {
		t.Fatalf("sleeps = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
	series := scrapeRegistry(t, reg)
	if series["agent_sessions_total"] != 4 || series["agent_reconnects_total"] != 4 {
		t.Fatalf("run series: sessions=%v reconnects=%v, want 4/4",
			series["agent_sessions_total"], series["agent_reconnects_total"])
	}
	if series["agent_backoff_ns"] != 0 {
		t.Fatalf("backoff gauge stuck at %v after Run", series["agent_backoff_ns"])
	}
}
