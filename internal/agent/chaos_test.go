package agent

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"proverattest/internal/core"
	"proverattest/internal/faultnet"
	"proverattest/internal/protocol"
	"proverattest/internal/server"
)

// Chaos integration: the supervised Run loop against a real daemon over
// real TCP, with faultnet injecting the network's bad days in between.
// The invariants are the tentpole's survival properties — verdicts keep
// flowing, the agent reconnects on its own, and the daemon's fleet
// aggregates never move backwards or declare a phantom reboot.

func chaosServer(t *testing.T, mutate ...func(*server.Config)) (*server.Server, string) {
	t.Helper()
	cfg := server.Config{
		Freshness:    protocol.FreshCounter,
		Auth:         protocol.AuthHMACSHA1,
		MasterSecret: testMaster,
		Golden:       core.GoldenRAMPattern(),
		AttestEvery:  20 * time.Millisecond,
		// Short enough that requests lost to injected faults free their
		// inflight slots within the test, long enough to answer honestly.
		RequestTimeout: 500 * time.Millisecond,
		ReadTimeout:    time.Second,
		WriteTimeout:   time.Second,
		HelloTimeout:   time.Second,
	}
	for _, m := range mutate {
		m(&cfg)
	}
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln) //nolint:errcheck
	t.Cleanup(func() { s.Close() })
	return s, ln.Addr().String()
}

func chaosAgent(t *testing.T, id string, mutate ...func(*Config)) *Agent {
	t.Helper()
	cfg := Config{
		DeviceID:     id,
		Freshness:    protocol.FreshCounter,
		Auth:         protocol.AuthHMACSHA1,
		MasterSecret: testMaster,
		StatsEvery:   15 * time.Millisecond,
	}
	for _, m := range mutate {
		m(&cfg)
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// faultDialer dials addr over TCP and wraps each connection with the
// fault schedule, seeding every session's fault stream differently but
// deterministically. dials counts attempts; faulting can be flipped off
// to end the chaos phase.
func faultDialer(addr string, sched *faultnet.Schedule, seed int64, dials *atomic.Int64, faulting *atomic.Bool) Dialer {
	return func(ctx context.Context) (net.Conn, error) {
		n := dials.Add(1)
		var d net.Dialer
		nc, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			return nil, err
		}
		if faulting != nil && !faulting.Load() {
			return nc, nil
		}
		return faultnet.Wrap(nc, sched, faultnet.Options{Seed: seed + n}), nil
	}
}

func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// monotoneSampler polls the daemon's fleet aggregate and fails the test
// if any sampled counter ever decreases — the continuity rule injected
// reconnects must not break.
func monotoneSampler(t *testing.T, s *server.Server, stop <-chan struct{}, done chan<- struct{}) {
	t.Helper()
	go func() {
		defer close(done)
		var prev protocol.StatsReport
		for {
			select {
			case <-stop:
				return
			case <-time.After(10 * time.Millisecond):
			}
			cur := s.AgentStats()
			if cur.Regressed(&prev) {
				t.Errorf("fleet aggregate regressed: %+v -> %+v", prev, cur)
				return
			}
			prev = cur
		}
	}()
}

func TestRunSurvivesChaos(t *testing.T) {
	cases := []struct {
		name     string
		schedule string
		// reconnects: the schedule tears connections, so the agent must
		// establish several sessions. Schedules that only mangle traffic
		// may ride one connection the whole time.
		reconnects bool
		// epochsStable: intact-or-absent schedules must produce zero
		// phantom reboots. Corruption can forge stats values, which the
		// daemon correctly treats as an epoch roll, so it is exempt.
		epochsStable bool
	}{
		{"flap", "flap=150ms:reset", true, true},
		{"midframe-reset", "every=25:reset", true, true},
		{"corrupt", "every=7:corrupt", false, false},
		{"drop-and-delay", "pct=10:drop;all:delay=1ms", false, true},
	}
	for i, tc := range cases {
		tc := tc
		i := i
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			s, addr := chaosServer(t)
			a := chaosAgent(t, fmt.Sprintf("chaos-%s", tc.name))

			var dials atomic.Int64
			dial := faultDialer(addr, faultnet.MustParseSchedule(tc.schedule), 1000*int64(i+1), &dials, nil)

			stopSample := make(chan struct{})
			sampleDone := make(chan struct{})
			monotoneSampler(t, s, stopSample, sampleDone)

			ctx, cancel := context.WithCancel(context.Background())
			runDone := make(chan error, 1)
			go func() {
				runDone <- a.Run(ctx, dial, Backoff{Base: 10 * time.Millisecond, Max: 100 * time.Millisecond, Jitter: 0.2, Seed: int64(i)})
			}()

			waitUntil(t, 30*time.Second, "accepted verdicts despite chaos", func() bool {
				return s.Counters().ResponsesAccepted >= 3
			})
			if tc.reconnects {
				waitUntil(t, 30*time.Second, "agent re-established sessions", func() bool {
					return dials.Load() >= 2
				})
			}
			waitUntil(t, 30*time.Second, "fleet stats flowing", func() bool {
				return s.Counters().StatsReports >= 2
			})

			cancel()
			select {
			case err := <-runDone:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("Run returned %v, want context.Canceled", err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("Run did not exit on cancel")
			}
			close(stopSample)
			<-sampleDone

			if tc.epochsStable {
				if got := s.Counters().StatsEpochs; got != 0 {
					t.Fatalf("StatsEpochs = %d after reconnect-only chaos, want 0 (device state is continuous)", got)
				}
			}
			if s.Devices() != 1 {
				t.Fatalf("Devices = %d, want 1 (reconnects must reuse server-side state)", s.Devices())
			}
		})
	}
}

// TestFastPathSurvivesReconnect: connection teardown must not cost the
// device its fast-path privilege. The dirty bit, the monitor epoch and
// the daemon's verified digest/epoch record all live outside the
// connection, so once the fast path is armed, flapping sessions resync
// to it without a single re-measurement — and without a fast mismatch.
func TestFastPathSurvivesReconnect(t *testing.T) {
	s, addr := chaosServer(t, func(c *server.Config) { c.FastPath = true })
	a := chaosAgent(t, "fast-reconnect-dev", func(c *Config) { c.FastPath = true })

	var dials atomic.Int64
	dial := faultDialer(addr, faultnet.MustParseSchedule("flap=150ms:reset"), 7700, &dials, nil)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runDone := make(chan error, 1)
	go func() {
		runDone <- a.Run(ctx, dial, Backoff{Base: 10 * time.Millisecond, Max: 100 * time.Millisecond, Jitter: 0.2, Seed: 42})
	}()

	waitUntil(t, 30*time.Second, "the fast path to arm and serve a round", func() bool {
		return s.Counters().ResponsesFast >= 1
	})
	// Once armed, reconnects must never force a re-measurement: a full
	// round is only spent where verifier state is actually lost.
	measured := a.Snapshot().Measurements
	dialsSeen := dials.Load()
	fastSeen := s.Counters().ResponsesFast
	waitUntil(t, 30*time.Second, "fast rounds across several more sessions", func() bool {
		return dials.Load() >= dialsSeen+2 && s.Counters().ResponsesFast >= fastSeen+5
	})
	if got := a.Snapshot().Measurements; got != measured {
		t.Fatalf("Measurements grew %d -> %d across reconnects; teardown must not revoke the fast path", measured, got)
	}
	if got := s.Counters().ResponsesFastRejected; got != 0 {
		t.Fatalf("ResponsesFastRejected = %d, want 0 (reconnects must not desync the fast MAC)", got)
	}

	cancel()
	select {
	case err := <-runDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not exit on cancel")
	}
}

// TestDaemonRestartForcesOneFullMAC: a daemon restart loses the
// verifier's digest/epoch record, and the resync contract says that
// costs the device exactly one full-MAC round — the new daemon's first
// requests withhold fast permission, one full measurement re-establishes
// the record, then the fast path resumes with no mismatch.
func TestDaemonRestartForcesOneFullMAC(t *testing.T) {
	// A slow attestation period keeps rounds strictly sequential, so "one
	// full round to resync" is exact rather than racing the issue ticker.
	fastCfg := func(c *server.Config) {
		c.FastPath = true
		c.AttestEvery = 60 * time.Millisecond
	}
	s1, addr1 := chaosServer(t, fastCfg)

	var target atomic.Value
	target.Store(addr1)
	dial := func(ctx context.Context) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", target.Load().(string))
	}

	a := chaosAgent(t, "fast-restart-dev", func(c *Config) { c.FastPath = true })
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runDone := make(chan error, 1)
	go func() {
		runDone <- a.Run(ctx, dial, Backoff{Base: 10 * time.Millisecond, Max: 50 * time.Millisecond, Seed: 9})
	}()

	waitUntil(t, 30*time.Second, "fast rounds on the first daemon", func() bool {
		return s1.Counters().ResponsesFast >= 2
	})
	measured := a.Snapshot().Measurements
	s1.Close() // the verified digest/epoch record dies with the daemon

	s2, addr2 := chaosServer(t, fastCfg)
	target.Store(addr2)
	waitUntil(t, 30*time.Second, "fast rounds resumed on the new daemon", func() bool {
		return s2.Counters().ResponsesFast >= 2
	})
	if got := a.Snapshot().Measurements; got != measured+1 {
		t.Fatalf("Measurements %d -> %d across the restart, want exactly one resync measurement", measured, got)
	}
	c := s2.Counters()
	if full := c.ResponsesAccepted - c.ResponsesFast; full != 1 {
		t.Fatalf("new daemon accepted %d full rounds, want exactly 1 before the fast path resumed", full)
	}
	if c.ResponsesFastRejected != 0 {
		t.Fatalf("ResponsesFastRejected = %d on the new daemon, want 0 (cold start resyncs via full-only requests, not mismatches)", c.ResponsesFastRejected)
	}

	cancel()
	select {
	case err := <-runDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not exit on cancel")
	}
}

// TestRunRidesOutDaemonRestart kills the daemon's listener entirely and
// brings a new daemon up on a fresh address: the outage window exercises
// dial failures (not just dead conns), and the agent must find the new
// daemon and resume with its counters intact.
func TestRunRidesOutDaemonRestart(t *testing.T) {
	s1, addr1 := chaosServer(t)

	var target atomic.Value
	target.Store(addr1)
	var dials atomic.Int64
	dial := func(ctx context.Context) (net.Conn, error) {
		dials.Add(1)
		var d net.Dialer
		return d.DialContext(ctx, "tcp", target.Load().(string))
	}

	a := chaosAgent(t, "restart-dev")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runDone := make(chan error, 1)
	go func() {
		runDone <- a.Run(ctx, dial, Backoff{Base: 10 * time.Millisecond, Max: 50 * time.Millisecond, Seed: 3})
	}()

	waitUntil(t, 30*time.Second, "verdicts from the first daemon", func() bool {
		return s1.Counters().ResponsesAccepted >= 1
	})
	received1 := a.Snapshot().Received
	s1.Close() // outage: dials now fail until the new daemon is up

	s2, addr2 := chaosServer(t)
	target.Store(addr2)
	waitUntil(t, 30*time.Second, "verdicts from the second daemon", func() bool {
		return s2.Counters().ResponsesAccepted >= 1
	})
	if got := a.Snapshot().Received; got <= received1 {
		t.Fatalf("agent counters did not continue across the restart: %d -> %d", received1, got)
	}
	if got := s2.Counters().StatsEpochs; got != 0 {
		t.Fatalf("StatsEpochs = %d on the new daemon, want 0 (the device never rebooted)", got)
	}

	cancel()
	select {
	case err := <-runDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not exit on cancel")
	}
}
