package agent

import (
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"proverattest/internal/transport"
)

// These tests pin Serve's exit-error contract itself (the shape of the
// returned error), beyond the per-scenario tests in serve_test.go:
//
//   - nil means the peer closed cleanly; raw io.EOF NEVER escapes Serve,
//     from any path (serve loop, stats heartbeat, hello send).
//   - ctx.Err() is returned iff our context caused the exit.
//   - every other failure keeps its transport cause for errors.Is.

// TestServeNeverLeaksRawEOF races a clean peer close against a fast
// stats heartbeat, over many rounds with varied timing. Whatever
// interleaving happens — EOF in Recv, EPIPE/RST in the stats Send —
// the exit must be nil or a non-EOF error, never io.EOF itself, and
// exactly one exit-cause counter must increment.
func TestServeNeverLeaksRawEOF(t *testing.T) {
	for round := 0; round < 20; round++ {
		a, reg := metricAgent(t, func(c *Config) { c.StatsEvery = time.Millisecond })
		nc, peer := tcpPair(t)
		done := serveResult(context.Background(), a, nc)

		tc := transport.NewConn(peer, transport.Options{ReadTimeout: 5 * time.Second})
		drainHello(t, tc)
		// Vary the race window so different rounds catch the close in
		// different states of the heartbeat cycle.
		time.Sleep(time.Duration(round%5) * time.Millisecond)
		tc.Close()

		err := waitExit(t, done)
		if err == io.EOF {
			t.Fatalf("round %d: Serve leaked raw io.EOF", round)
		}
		if err != nil && errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("round %d: Serve leaked a wrapped clean EOF: %v", round, err)
		}
		eof, canceled, errored := exitCounts(t, reg)
		if eof+canceled+errored != 1 {
			t.Fatalf("round %d: %v exit counts (eof=%v canceled=%v error=%v), want exactly 1",
				round, eof+canceled+errored, eof, canceled, errored)
		}
	}
}

// eofWriteConn fails the very first write (the hello) with a bare
// io.EOF, as a socket whose peer vanished pre-handshake can.
type eofWriteConn struct{ deadConn }

func (*eofWriteConn) Write([]byte) (int, error) { return 0, io.EOF }

// TestServeHelloPathEOFIsCleanExit pins the hello-send path to the same
// contract as the serve loop: a clean peer EOF maps to a nil exit, not
// to a raw io.EOF (the bug class this contract exists to kill — one
// path returning the sentinel bare while the others normalise it).
func TestServeHelloPathEOFIsCleanExit(t *testing.T) {
	a, reg := metricAgent(t, nil)
	if err := a.Serve(context.Background(), &eofWriteConn{}); err != nil {
		t.Fatalf("hello-path EOF returned %v, want nil (clean close)", err)
	}
	eof, canceled, errored := exitCounts(t, reg)
	if eof != 1 || canceled != 0 || errored != 0 {
		t.Fatalf("exit counters (eof=%v canceled=%v error=%v), want (1 0 0)", eof, canceled, errored)
	}
}

// TestServeHelloPathErrorKeepsCause: a non-EOF hello failure must
// surface with its cause intact and count as an error exit.
func TestServeHelloPathErrorKeepsCause(t *testing.T) {
	a, reg := metricAgent(t, nil)
	err := a.Serve(context.Background(), &deadConn{})
	if !errors.Is(err, errConnDead) {
		t.Fatalf("hello-path failure returned %v, want the transport cause", err)
	}
	eof, canceled, errored := exitCounts(t, reg)
	if errored != 1 || eof != 0 || canceled != 0 {
		t.Fatalf("exit counters (eof=%v canceled=%v error=%v), want (0 0 1)", eof, canceled, errored)
	}
}
