package agent

import (
	"proverattest/internal/obs"
	"proverattest/internal/protocol"
	"proverattest/internal/transport"
)

// agentMetrics is the prover agent's observability surface. The serve
// loop records with obs instruments only — atomics on preallocated state,
// 0 allocs/op, nil-safe — so instrumentation never perturbs the cost
// accounting the agent exists to measure: the anchor's gate counters stay
// the single source of truth for gate economics, and these series only
// add the socket-side view (frames pulled, replies pushed, why the loop
// exited).
type agentMetrics struct {
	framesIn  *obs.Counter // frames pulled off the socket by the serve loop
	replies   *obs.Counter // anchor responses written back to the daemon
	statsSent *obs.Counter // counter heartbeats pushed
	redirects *obs.Counter // sessions ended by a cluster ownership redirect

	// Serve-loop terminations by cause. Exactly one increments per Serve
	// call, when the loop exits: the fleet's churn/crash telemetry.
	exitEOF      *obs.Counter // peer closed cleanly between frames
	exitCanceled *obs.Counter // our context was cancelled
	exitError    *obs.Counter // transport or write failure
	exitRedirect *obs.Counter // daemon redirected us to the device's owner

	// Supervised Run-loop series: the reconnect/backoff telemetry the
	// chaos harness reads to prove the prover outlives a flaky link.
	sessions     *obs.Counter // connections established (hello sent)
	reconnects   *obs.Counter // sessions that died and were retried
	dialErrors   *obs.Counter // dial attempts that failed outright
	backoffGauge *obs.Gauge   // current reconnect delay being slept, ns (0 = not backing off)

	transport *transport.Metrics
}

func newAgentMetrics(reg *obs.Registry) *agentMetrics {
	const exitHelp = "Serve-loop terminations, by cause."
	return &agentMetrics{
		framesIn:  reg.Counter("agent_frames_total", "Frames pulled off the socket and submitted to the anchor."),
		replies:   reg.Counter("agent_replies_total", "Anchor responses written back to the daemon."),
		statsSent: reg.Counter("agent_stats_sent_total", "Gate-counter heartbeats pushed to the daemon."),
		redirects: reg.Counter("agent_redirects_total", "Sessions ended by a cluster ownership redirect (followed without backoff)."),

		exitEOF:      reg.Counter("agent_serve_exits_total", exitHelp, obs.L("cause", "eof")),
		exitCanceled: reg.Counter("agent_serve_exits_total", exitHelp, obs.L("cause", "canceled")),
		exitError:    reg.Counter("agent_serve_exits_total", exitHelp, obs.L("cause", "error")),
		exitRedirect: reg.Counter("agent_serve_exits_total", exitHelp, obs.L("cause", "redirect")),

		sessions:     reg.Counter("agent_sessions_total", "Connections established by the supervised Run loop (hello sent)."),
		reconnects:   reg.Counter("agent_reconnects_total", "Sessions that died and were scheduled for reconnect."),
		dialErrors:   reg.Counter("agent_dial_errors_total", "Dial attempts that failed before a connection existed."),
		backoffGauge: reg.Gauge("agent_backoff_ns", "Reconnect delay currently being slept, in nanoseconds (0 when serving)."),

		transport: transport.NewMetrics(reg),
	}
}

// registerGauges re-exports the anchor's own gate counters as
// exposition-time gauges. The anchor already owns these numbers — the
// gauges read a snapshot at scrape time, never mirroring them on the
// frame path. They are the same counters the agent heartbeats to the
// daemon as stats frames; exposing them locally lets a prover be scraped
// directly, without the daemon in the loop.
func (a *Agent) registerGauges(reg *obs.Registry) {
	const gateRejHelp = "Frames rejected at the anchor's cheap gate, by cause (cumulative since boot)."
	gate := func(name, help string, pick func(*protocol.StatsReport) uint64, labels ...obs.Label) {
		reg.GaugeFunc(name, help, func() float64 {
			st := a.Snapshot()
			return float64(pick(&st))
		}, labels...)
	}
	gate("agent_gate_received", "Request frames submitted to the anchor's gate.",
		func(st *protocol.StatsReport) uint64 { return st.Received })
	gate("agent_gate_rejected", gateRejHelp,
		func(st *protocol.StatsReport) uint64 { return st.AuthRejected }, obs.L("cause", "auth"))
	gate("agent_gate_rejected", gateRejHelp,
		func(st *protocol.StatsReport) uint64 { return st.FreshnessRejected }, obs.L("cause", "freshness"))
	gate("agent_gate_rejected", gateRejHelp,
		func(st *protocol.StatsReport) uint64 { return st.Malformed }, obs.L("cause", "malformed"))
	gate("agent_measurements", "Full memory measurements performed (the expensive MAC work).",
		func(st *protocol.StatsReport) uint64 { return st.Measurements })
	gate("agent_fast_responses", "O(1) fast-path responses (clean write monitor, no memory MAC).",
		func(st *protocol.StatsReport) uint64 { return st.FastResponses })
	gate("agent_faults", "Bus faults taken inside the anchor.",
		func(st *protocol.StatsReport) uint64 { return st.Faults })
	gate("agent_active_cycles", "Total MCU cycles spent (energy basis).",
		func(st *protocol.StatsReport) uint64 { return st.ActiveCycles })
}
