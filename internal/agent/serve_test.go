package agent

import (
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"strconv"
	"strings"
	"testing"
	"time"

	"proverattest/internal/obs"
	"proverattest/internal/protocol"
	"proverattest/internal/transport"
)

// These tests pin Agent.Serve's error paths: however the connection dies —
// peer gone mid-frame, a hostile oversized length prefix, our own
// cancellation, a clean close — the loop must exit promptly with the
// matching error, and the agent's obs counters must record the cause on
// exactly one exit series.

// metricAgent builds an agent with a live registry so exit causes are
// observable.
func metricAgent(t *testing.T, mutate func(*Config)) (*Agent, *obs.Registry) {
	t.Helper()
	reg := obs.New()
	cfg := Config{
		DeviceID:     "dev-under-test",
		Freshness:    protocol.FreshCounter,
		Auth:         protocol.AuthHMACSHA1,
		MasterSecret: testMaster,
		StatsEvery:   20 * time.Millisecond,
		Metrics:      reg,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a, reg
}

// scrapeRegistry renders reg in exposition format and parses it into a
// series→value map, failing the test on any unparseable line.
func scrapeRegistry(t *testing.T, reg *obs.Registry) map[string]float64 {
	t.Helper()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	series := make(map[string]float64)
	for _, line := range strings.Split(sb.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable exposition line %q", line)
		}
		val, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("series %q has unparseable value: %v", line[:sp], err)
		}
		series[line[:sp]] = val
	}
	return series
}

// exitCounts reads the three agent_serve_exits_total series from reg.
func exitCounts(t *testing.T, reg *obs.Registry) (eof, canceled, errored float64) {
	t.Helper()
	series := scrapeRegistry(t, reg)
	return series[`agent_serve_exits_total{cause="eof"}`],
		series[`agent_serve_exits_total{cause="canceled"}`],
		series[`agent_serve_exits_total{cause="error"}`]
}

// tcpPair builds a connected loopback TCP pair. Real sockets, not
// net.Pipe: a pipe's SetReadDeadline fails with ErrClosedPipe once the
// remote end closes, which misreports a clean peer shutdown — TCP
// delivers the FIN as io.EOF like production traffic does.
func tcpPair(t *testing.T) (agentSide, peerSide net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() {
		client.Close()
		r.c.Close()
	})
	return client, r.c
}

// serveResult runs Serve on its own goroutine and returns the channel its
// error lands on.
func serveResult(ctx context.Context, a *Agent, nc net.Conn) <-chan error {
	done := make(chan error, 1)
	go func() { done <- a.Serve(ctx, nc) }()
	return done
}

// waitExit asserts Serve exits within a bound and returns its error.
func waitExit(t *testing.T, done <-chan error) error {
	t.Helper()
	select {
	case err := <-done:
		return err
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not exit")
		return nil
	}
}

// drainHello consumes the agent's hello so the peer side is at a frame
// boundary.
func drainHello(t *testing.T, tc *transport.Conn) {
	t.Helper()
	frame, err := tc.Recv()
	if err != nil {
		t.Fatalf("reading hello: %v", err)
	}
	if protocol.ClassifyFrame(frame) != protocol.FrameHello {
		t.Fatalf("first frame is not a hello: %x", frame)
	}
}

func TestServeExitsCleanOnPeerClose(t *testing.T) {
	// A heartbeat far beyond the test's lifetime: the agent is parked in
	// Recv when the peer closes, so the only possible outcome is a clean
	// EOF (a short heartbeat could race the close with a stats write).
	a, reg := metricAgent(t, func(c *Config) { c.StatsEvery = time.Hour })
	nc, peer := tcpPair(t)
	done := serveResult(context.Background(), a, nc)

	tc := transport.NewConn(peer, transport.Options{ReadTimeout: 5 * time.Second})
	drainHello(t, tc)
	tc.Close()

	if err := waitExit(t, done); err != nil {
		t.Fatalf("clean peer close returned %v, want nil", err)
	}
	eof, canceled, errored := exitCounts(t, reg)
	if eof != 1 || canceled != 0 || errored != 0 {
		t.Fatalf("exit counters (eof=%v canceled=%v error=%v), want (1 0 0)", eof, canceled, errored)
	}
}

func TestServeExitsOnPeerCloseMidFrame(t *testing.T) {
	a, reg := metricAgent(t, nil)
	nc, peer := tcpPair(t)
	done := serveResult(context.Background(), a, nc)

	tc := transport.NewConn(peer, transport.Options{ReadTimeout: 5 * time.Second})
	drainHello(t, tc)

	// A length prefix promising 64 bytes, then the stream dies after 3:
	// the classic torn write of a crashing peer.
	var prefix [4]byte
	binary.LittleEndian.PutUint32(prefix[:], 64)
	if _, err := peer.Write(prefix[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := peer.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	peer.Close()

	err := waitExit(t, done)
	if err == nil || !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("mid-frame close returned %v, want io.ErrUnexpectedEOF", err)
	}
	eof, canceled, errored := exitCounts(t, reg)
	if errored != 1 || eof != 0 || canceled != 0 {
		t.Fatalf("exit counters (eof=%v canceled=%v error=%v), want (0 0 1)", eof, canceled, errored)
	}
	series := scrapeRegistry(t, reg)
	if series[`transport_read_errors_total{cause="truncated"}`] != 1 {
		t.Fatalf("truncated read not recorded on the transport series: %v", series)
	}
}

func TestServeExitsOnOversizedFrame(t *testing.T) {
	a, reg := metricAgent(t, func(c *Config) { c.MaxFrame = 128 })
	nc, peer := tcpPair(t)
	done := serveResult(context.Background(), a, nc)

	tc := transport.NewConn(peer, transport.Options{ReadTimeout: 5 * time.Second})
	drainHello(t, tc)

	// A hostile length prefix far over the agent's MaxFrame. The agent
	// must refuse at the prefix — before buffering a byte of payload.
	var prefix [4]byte
	binary.LittleEndian.PutUint32(prefix[:], 1<<20)
	if _, err := peer.Write(prefix[:]); err != nil {
		t.Fatal(err)
	}

	err := waitExit(t, done)
	if err == nil || !errors.Is(err, transport.ErrFrameTooLarge) {
		t.Fatalf("oversized frame returned %v, want ErrFrameTooLarge", err)
	}
	eof, canceled, errored := exitCounts(t, reg)
	if errored != 1 || eof != 0 || canceled != 0 {
		t.Fatalf("exit counters (eof=%v canceled=%v error=%v), want (0 0 1)", eof, canceled, errored)
	}
	series := scrapeRegistry(t, reg)
	if series[`transport_read_errors_total{cause="too_large"}`] != 1 {
		t.Fatalf("oversized read not recorded on the transport series: %v", series)
	}
}

func TestServeExitsOnContextCancel(t *testing.T) {
	a, reg := metricAgent(t, nil)
	nc, peer := tcpPair(t)
	ctx, cancel := context.WithCancel(context.Background())
	done := serveResult(ctx, a, nc)

	tc := transport.NewConn(peer, transport.Options{ReadTimeout: 5 * time.Second})
	drainHello(t, tc)
	cancel()

	err := waitExit(t, done)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancellation returned %v, want context.Canceled", err)
	}
	eof, canceled, errored := exitCounts(t, reg)
	if canceled != 1 || eof != 0 || errored != 0 {
		t.Fatalf("exit counters (eof=%v canceled=%v error=%v), want (0 1 0)", eof, canceled, errored)
	}
	// The peer side keeps draining heartbeats the agent may have sent
	// before the cancel landed; nothing further to assert there.
	tc.Close()
	peer.Close()
}
