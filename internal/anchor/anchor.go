// Package anchor implements the prover's trust anchor: the immutable
// Code_Attest that authenticates verifier requests, checks freshness and
// measures memory with K_Attest, and the Code_Clock interrupt handler that
// maintains the software clock of the paper's Figure 1b design. The anchor
// runs as firmware on the simulated MCU — every access to the key, the
// counter, the clock and the IDT goes through the bus and is subject to
// the EA-MPU rules installed at secure boot, so the paper's protected and
// unprotected configurations differ only in those rules, exactly as in the
// prototype (§6.2).
package anchor

import (
	"encoding/binary"
	"errors"
	"fmt"

	"proverattest/internal/crypto/cost"
	"proverattest/internal/crypto/ecc"
	"proverattest/internal/crypto/sha1"
	"proverattest/internal/mcu"
	"proverattest/internal/protocol"
)

// Code regions and state locations of the trust anchor. Code_Attest and
// Code_Clock live in ROM (immutable, like SMART); K_Attest sits in ROM in
// the default variant; counter_R occupies a flash info word (non-volatile,
// as §4.2 requires); Clock_MSB and the IDT live in the small SRAM bank
// excluded from the measured image.
var (
	CodeAttestRegion = mcu.Region{Start: mcu.ROMRegion.Start + 0x1000, Size: 0x1000}
	CodeClockRegion  = mcu.Region{Start: mcu.ROMRegion.Start + 0x2000, Size: 0x0800}

	KeyROMAddr   = mcu.ROMRegion.Start + 0xF000
	KeyFlashAddr = mcu.FlashRegion.Start + 0x7F800
	KeySize      = uint32(20)

	CounterAddr   = mcu.FlashRegion.Start + 0x7F000
	CounterSize   = uint32(8)
	NonceAreaAddr = mcu.FlashRegion.Start + 0x7C000

	IDTBase      = mcu.SRAMRegion.Start
	IDTSize      = uint32(4 * mcu.NumIRQLines)
	ClockMSBAddr = mcu.SRAMRegion.Start + 0x100

	// SyncOffsetAddr holds the signed clock-sync adjustment (int64
	// two's-complement milliseconds) applied by the clock-synchronisation
	// service; see internal/services.
	SyncOffsetAddr = mcu.SRAMRegion.Start + 0x108

	// LastDigestAddr holds the digest of the last full measurement (20
	// bytes of anchor SRAM, outside the measured image). The fast path
	// vouches for exactly these bytes; under Protection.Monitor they are
	// writable only by Code_Attest, so application code can neither forge
	// the stored digest nor clear the monitor that guards it.
	LastDigestAddr = mcu.SRAMRegion.Start + 0x110

	// TimerIRQLine is the interrupt line of the Clock_LSB wrap event.
	TimerIRQLine = 5

	// LSBWidth is the Clock_LSB counter width: 2^26 cycles ≈ 2.80 s per
	// wrap at 24 MHz — longer than one full-memory measurement (≈754 ms),
	// so at most one wrap pends during an uninterruptible attestation run.
	LSBWidth = uint(26)
)

// ClockDesign selects the prover's real-time clock implementation (§6.3).
type ClockDesign int

// Clock designs.
const (
	// ClockNone: no clock; timestamp freshness is unavailable.
	ClockNone ClockDesign = iota
	// ClockWide64: Figure 1a, a 64-bit full-rate hardware counter.
	ClockWide64
	// ClockWide32Div: 32-bit counter behind a 2^20 divider (42 ms
	// resolution, ~6 year wrap).
	ClockWide32Div
	// ClockSW: Figure 1b, Clock_LSB wrap interrupt + Code_Clock-maintained
	// Clock_MSB.
	ClockSW
)

func (d ClockDesign) String() string {
	switch d {
	case ClockNone:
		return "no clock"
	case ClockWide64:
		return "64-bit HW clock"
	case ClockWide32Div:
		return "32-bit/2^20 HW clock"
	case ClockSW:
		return "SW-clock (LSB+IRQ)"
	}
	return fmt.Sprintf("clock(%d)", int(d))
}

// KeyLocation selects where K_Attest is stored.
type KeyLocation int

// Key locations: ROM is inherently write-protected; flash needs the
// EA-MPU rule to cover writes too. The paper notes the EA-MAC cost is the
// same either way (§6.3).
const (
	KeyInROM KeyLocation = iota
	KeyInFlash
)

// Protection selects which EA-MPU mitigations secure boot installs,
// spanning the paper's configurations from "baseline attestation" (key
// only) to the full Figure 1a/1b designs.
type Protection struct {
	// Key installs the EA-MAC rule making K_Attest readable only by
	// Code_Attest. This is the SMART/TrustLite baseline.
	Key bool
	// Counter makes counter_R (and the nonce history, when used) writable
	// only by Code_Attest.
	Counter bool
	// Clock write-protects the clock: the wide-clock MMIO window, or — for
	// the SW design — Clock_MSB, the IDT and the interrupt configuration.
	Clock bool
	// SyncOffset protects the clock-synchronisation offset word (writable
	// only by Code_Attest); required when the clock-sync service is used.
	SyncOffset bool
	// Monitor restricts the write-monitor registers and the last-digest
	// SRAM words to Code_Attest, so only the attestation routine can rearm
	// the dirty latch (the RATA access rule). Only meaningful when the
	// anchor is configured with a monitor (Config.Monitor); without the
	// rule, application code can rearm the latch — which desyncs the
	// monitor epoch from the verifier rather than hiding anything, but
	// costs an extra full measurement per lie (see internal/core's
	// fast-path adversary matrix).
	Monitor bool
	// LockMPU sets the EA-MPU lockdown bit after boot.
	LockMPU bool
}

// FullProtection enables every mitigation, as in Figure 1.
func FullProtection() Protection {
	return Protection{Key: true, Counter: true, Clock: true, Monitor: true, LockMPU: true}
}

// Profile selects which published architecture the anchor emulates. The
// paper builds its prototype on TrustLite and notes the countermeasures
// "are easily adaptable to other attestation techniques, such as SMART or
// TyTAN" (§6.2); all three are provided.
type Profile int

// Architecture profiles.
const (
	// ProfileTrustLite (default): EA-MPU rules are programmed by secure
	// boot and locked; attestation code may be configured interruptible.
	ProfileTrustLite Profile = iota
	// ProfileSMART: the EA-MAC rules are hardwired in silicon (no
	// boot-time programming, immune to reset), K_Attest lives in ROM, and
	// Code_Attest is uninterruptible — SMART's static, minimal design.
	ProfileSMART
	// ProfileTyTAN: TrustLite's programmable protection plus interruptible
	// trust-anchor execution (TyTAN's real-time orientation).
	ProfileTyTAN
)

func (p Profile) String() string {
	switch p {
	case ProfileTrustLite:
		return "TrustLite"
	case ProfileSMART:
		return "SMART"
	case ProfileTyTAN:
		return "TyTAN"
	}
	return fmt.Sprintf("profile(%d)", int(p))
}

// Config assembles a trust anchor.
type Config struct {
	// Profile selects the underlying architecture (default TrustLite).
	Profile Profile
	// Freshness is the anti-replay mechanism the anchor enforces.
	Freshness protocol.FreshnessKind
	// AuthKind is the request-authentication scheme. Symmetric schemes key
	// themselves from the K_Attest bytes in protected memory; ECDSA uses
	// VerifierPublic.
	AuthKind protocol.AuthKind
	// VerifierPublic is the verifier's public key for AuthKind ==
	// AuthECDSA.
	VerifierPublic ecc.Point
	// AttestKey is K_Attest, provisioned into the key location at
	// manufacture.
	AttestKey []byte
	// KeyLocation places K_Attest in ROM (default) or flash.
	KeyLocation KeyLocation
	// Clock selects the clock design.
	Clock ClockDesign
	// TimestampWindowMs/TimestampSkewMs parameterise timestamp freshness
	// (maximum age, tolerated future skew), in milliseconds.
	TimestampWindowMs uint64
	TimestampSkewMs   uint64
	// NonceCapacity bounds the nonce history (FreshNonceHistory).
	NonceCapacity int
	// MeasuredRegion is the memory covered by the attestation measurement.
	// Zero value selects the full 512 KB RAM (the paper's §3.1 costing).
	MeasuredRegion mcu.Region
	// MeasurementChunk, when non-zero, streams the measurement in chunks
	// of this many bytes, each a separate job, so interrupts and queued
	// application work interleave (TyTAN-style real-time compliance). Zero
	// means one atomic, uninterruptible pass (SMART-style) — immune to the
	// TOCTOU relocation attack that chunking re-opens (paper footnote 1).
	MeasurementChunk uint32
	// Monitor installs the RATA-style write monitor over MeasuredRegion
	// and enables the O(1) fast-path response for clean provers.
	Monitor bool
	// Protection selects the installed mitigations.
	Protection Protection
	// InterruptibleAttest allows interrupts to pend-and-deliver around
	// Code_Attest jobs (TrustLite-style). False models SMART's
	// uninterruptible ROM code. Both behave identically in this
	// transaction-level model except for bookkeeping; the flag is kept for
	// configuration fidelity.
	InterruptibleAttest bool
	// SwarmKey is the fleet-wide broadcast key K_Swarm gating collective-
	// attestation requests (see internal/protocol swarm frames). Nil
	// disables swarm participation. It authenticates requests only — the
	// node's evidence is always keyed with its per-device K_Attest.
	SwarmKey []byte
	// SwarmIndex is this device's member index in the fleet spanning tree.
	SwarmIndex uint16
	// SwarmFleet is the fleet member count; it sizes the presence bitmap
	// in aggregate responses. Required (>0) when SwarmKey is set.
	SwarmFleet int
}

// Stats counts what the anchor observed; the attack harness reads these to
// decide experiment outcomes.
type Stats struct {
	Received          uint64 // request frames submitted to Code_Attest
	Malformed         uint64 // framing rejects (no crypto run)
	AuthRejected      uint64 // tag verification failures
	FreshnessRejected uint64 // replay/reorder/delay rejects
	Faults            uint64 // bus faults inside Code_Attest (should be 0)
	Measurements      uint64 // full memory measurements performed
	FastResponses     uint64 // O(1) fast-path responses (no memory MAC)
	ClockTicks        uint64 // Code_Clock ISR executions
	ISRFaults         uint64 // bus faults inside Code_Clock (should be 0)
	Commands          uint64 // service-command frames submitted
	CommandsExecuted  uint64 // commands that passed the gate and ran
}

// Anchor is an installed trust anchor.
type Anchor struct {
	M          *mcu.MCU
	CodeAttest *mcu.Task
	CodeClock  *mcu.Task
	Wide       *mcu.WideClock
	LSB        *mcu.LSBClock
	Mon        *mcu.WriteMonitor

	cfg     Config
	keyAddr mcu.Addr

	cachedAuth    protocol.Authenticator
	cachedAuthKey [20]byte
	services      map[protocol.CommandKind]ServiceHandler
	swarm         swarmState

	Stats Stats
}

// NormalizeConfig validates cfg, fills defaults and applies the profile's
// constraints. Install calls it; callers that need the effective
// configuration *before* installing (e.g. to hardwire a SMART rule table)
// call it themselves.
func NormalizeConfig(cfg Config) (Config, error) {
	if len(cfg.AttestKey) != 0 && len(cfg.AttestKey) != int(KeySize) {
		return cfg, fmt.Errorf("anchor: K_Attest must be %d bytes, got %d", KeySize, len(cfg.AttestKey))
	}
	if cfg.Freshness == protocol.FreshTimestamp && cfg.Clock == ClockNone {
		return cfg, errors.New("anchor: timestamp freshness requires a clock design")
	}
	if cfg.AuthKind == protocol.AuthECDSA && cfg.VerifierPublic.Inf {
		return cfg, errors.New("anchor: ECDSA authentication requires the verifier's public key")
	}
	if cfg.KeyLocation != KeyInROM && cfg.KeyLocation != KeyInFlash {
		return cfg, fmt.Errorf("anchor: unknown key location %d", cfg.KeyLocation)
	}
	if cfg.Clock < ClockNone || cfg.Clock > ClockSW {
		return cfg, fmt.Errorf("anchor: unknown clock design %d", cfg.Clock)
	}
	switch cfg.Profile {
	case ProfileTrustLite:
	case ProfileSMART:
		// SMART: ROM key, uninterruptible ROM code, static protection.
		cfg.KeyLocation = KeyInROM
		cfg.InterruptibleAttest = false
	case ProfileTyTAN:
		cfg.InterruptibleAttest = true
	default:
		return cfg, fmt.Errorf("anchor: unknown profile %d", cfg.Profile)
	}
	if cfg.MeasuredRegion.Size == 0 {
		cfg.MeasuredRegion = mcu.RAMRegion
	}
	if cfg.NonceCapacity <= 0 {
		cfg.NonceCapacity = 256
	}
	if cfg.TimestampWindowMs == 0 {
		cfg.TimestampWindowMs = 1000
	}
	if cfg.TimestampSkewMs == 0 {
		cfg.TimestampSkewMs = 100
	}
	return cfg, nil
}

// Install provisions the anchor onto the MCU: registers the ROM tasks,
// writes K_Attest and the initial counter state, creates the configured
// clock hardware and initialises the IDT. It does not program the EA-MPU —
// that is secure boot's job (BootPolicy). Install is the factory step.
func Install(m *mcu.MCU, cfg Config) (*Anchor, error) {
	cfg, err := NormalizeConfig(cfg)
	if err != nil {
		return nil, err
	}
	if len(cfg.AttestKey) != int(KeySize) {
		return nil, fmt.Errorf("anchor: K_Attest must be %d bytes, got %d", KeySize, len(cfg.AttestKey))
	}
	if cfg.Profile == ProfileSMART && !m.MPU.Hardwired() {
		return nil, errors.New("anchor: the SMART profile requires a hardwired EA-MPU (mcu.Config.HardwiredRules)")
	}

	a := &Anchor{M: m, cfg: cfg}
	a.CodeAttest = m.RegisterTask(&mcu.Task{
		Name:            "code-attest",
		Code:            CodeAttestRegion,
		Uninterruptible: !cfg.InterruptibleAttest,
	})

	a.keyAddr = KeyAddrFor(cfg.KeyLocation)
	m.Space.DirectWrite(a.keyAddr, cfg.AttestKey)

	// counter_R starts at zero; nonce area starts empty; sync offset zero.
	m.Space.DirectWrite(CounterAddr, make([]byte, CounterSize))
	m.Space.DirectStore32(NonceAreaAddr, 0)
	m.Space.DirectWrite(SyncOffsetAddr, make([]byte, 8))

	if cfg.Monitor {
		// The monitor powers up dirty, so nothing provisioned here — or
		// later, by attack code — is ever vouched for without a full
		// measurement first.
		a.Mon = mcu.NewWriteMonitor(m, cfg.MeasuredRegion)
	}

	switch cfg.Clock {
	case ClockNone:
	case ClockWide64:
		a.Wide = mcu.NewWideClock(m, 64, 0)
	case ClockWide32Div:
		a.Wide = mcu.NewWideClock(m, 32, 20)
	case ClockSW:
		a.CodeClock = m.RegisterTask(&mcu.Task{
			Name:    "code-clock",
			Code:    CodeClockRegion,
			Handler: a.clockISR,
		})
		a.LSB = mcu.NewLSBClock(m, LSBWidth, 0, TimerIRQLine)
		// Factory-initialised IDT: timer line → Code_Clock entry point.
		m.Space.DirectStore32(IDTBase+mcu.Addr(4*TimerIRQLine), uint32(CodeClockRegion.Start))
		m.Space.DirectStore32(ClockMSBAddr, 0)
		a.LSB.Start()
	}
	return a, nil
}

// Config returns the installed configuration.
func (a *Anchor) Config() Config { return a.cfg }

// KeyAddr reports where K_Attest lives, for protection rules and attacks.
func (a *Anchor) KeyAddr() mcu.Addr { return a.keyAddr }

// KeyAddrFor reports where K_Attest lives for a key location.
func KeyAddrFor(loc KeyLocation) mcu.Addr {
	if loc == KeyInFlash {
		return KeyFlashAddr
	}
	return KeyROMAddr
}

// ProtectionRules derives the EA-MPU rule set implementing a
// configuration's protections (§6.2). It is a free function so SMART-style
// devices can hardwire the same rules at manufacture, before any anchor is
// installed.
func ProtectionRules(cfg Config) []mcu.Rule {
	var rules []mcu.Rule
	if cfg.Protection.Key {
		keyAddr := KeyAddrFor(cfg.KeyLocation)
		// Read-only even for Code_Attest: ROM keys cannot be written
		// anyway, and a flash key must be non-malleable (§5).
		rules = append(rules, mcu.Rule{
			Code: CodeAttestRegion, Data: mcu.Region{Start: keyAddr, Size: KeySize},
			Perm: mcu.PermRead, Enabled: true,
		})
	}
	if cfg.Protection.Counter {
		rules = append(rules, mcu.Rule{
			Code: CodeAttestRegion, Data: mcu.Region{Start: CounterAddr, Size: CounterSize},
			Perm: mcu.PermRead | mcu.PermWrite, Enabled: true,
		})
		if cfg.Freshness == protocol.FreshNonceHistory {
			rules = append(rules, mcu.Rule{
				Code: CodeAttestRegion, Data: nonceAreaFor(cfg.NonceCapacity),
				Perm: mcu.PermRead | mcu.PermWrite, Enabled: true,
			})
		}
	}
	if cfg.Protection.Clock {
		switch cfg.Clock {
		case ClockWide64, ClockWide32Div:
			// The clock window becomes readable by Code_Attest and
			// writable by nobody: the hardware counter is effectively
			// read-only (§6.2 "the hardware counter must be read-only").
			rules = append(rules, mcu.Rule{
				Code: CodeAttestRegion, Data: mcu.WideClockWindow,
				Perm: mcu.PermRead, Enabled: true,
			})
		case ClockSW:
			// Clock_MSB: writable only by Code_Clock, readable by
			// Code_Attest (two rules over the same word).
			msb := mcu.Region{Start: ClockMSBAddr, Size: 4}
			rules = append(rules,
				mcu.Rule{Code: CodeClockRegion, Data: msb,
					Perm: mcu.PermRead | mcu.PermWrite, Enabled: true},
				mcu.Rule{Code: CodeAttestRegion, Data: msb,
					Perm: mcu.PermRead, Enabled: true},
				// IDT immutable: only boot-ROM code may touch it.
				mcu.Rule{Code: mcu.BootROMTask, Data: mcu.Region{Start: IDTBase, Size: IDTSize},
					Perm: mcu.PermRead | mcu.PermWrite, Enabled: true},
				// Interrupt configuration (mask, IDT base) locked to boot
				// ROM: "disabling the timer interrupt must also be
				// prevented" (§6.2).
				mcu.Rule{Code: mcu.BootROMTask, Data: mcu.IRQWindow,
					Perm: mcu.PermRead | mcu.PermWrite, Enabled: true},
			)
		}
	}
	if cfg.Protection.SyncOffset {
		rules = append(rules, mcu.Rule{
			Code: CodeAttestRegion, Data: mcu.Region{Start: SyncOffsetAddr, Size: 8},
			Perm: mcu.PermRead | mcu.PermWrite, Enabled: true,
		})
	}
	if cfg.Monitor && cfg.Protection.Monitor {
		// Default-deny over the covered windows: with these the only rules
		// touching them, application code can neither rearm the latch nor
		// forge the stored digest the fast path vouches for.
		rules = append(rules,
			mcu.Rule{Code: CodeAttestRegion, Data: mcu.MonitorWindow,
				Perm: mcu.PermRead | mcu.PermWrite, Enabled: true},
			mcu.Rule{Code: CodeAttestRegion, Data: mcu.Region{Start: LastDigestAddr, Size: sha1.Size},
				Perm: mcu.PermRead | mcu.PermWrite, Enabled: true},
		)
	}
	return rules
}

// BootPolicy derives the secure-boot policy for this anchor: the EA-MPU
// rules implementing the configured protections, the IDT configuration and
// the timer unmasking. refDigest is the expected measurement of the flash
// application image. On the SMART profile the rules are already hardwired
// in the MPU, so boot only measures and configures interrupts.
func (a *Anchor) BootPolicy(refDigest [sha1.Size]byte, appImage mcu.Region) mcu.BootPolicy {
	p := mcu.BootPolicy{
		RefDigest:      refDigest,
		MeasuredRegion: appImage,
	}
	if a.cfg.Profile != ProfileSMART {
		p.Rules = ProtectionRules(a.cfg)
		p.LockMPU = a.cfg.Protection.LockMPU
	}
	if a.cfg.Clock == ClockSW {
		p.IDTBase = IDTBase
		p.LockIDT = true
		p.EnableIRQ = []int{TimerIRQLine}
	}
	return p
}

func nonceAreaFor(capacity int) mcu.Region {
	if capacity <= 0 {
		capacity = 256
	}
	return mcu.Region{Start: NonceAreaAddr, Size: 4 + uint32(capacity)*8}
}

// clockISR is Code_Clock (Figure 1b ③): increment Clock_MSB on each
// Clock_LSB wrap-around.
func (a *Anchor) clockISR(e *mcu.Exec) {
	e.Tick(60) // handler prologue/epilogue + RAM update
	v, f := e.Load32(ClockMSBAddr)
	if f != nil {
		a.Stats.ISRFaults++
		return
	}
	if f := e.Store32(ClockMSBAddr, v+1); f != nil {
		a.Stats.ISRFaults++
		return
	}
	a.Stats.ClockTicks++
}

// readClockMs reads the prover's clock through the configured design,
// converts it to milliseconds and applies the clock-sync offset maintained
// by the clock-synchronisation service. The bus accesses run as
// Code_Attest, so a protected clock is readable here but not from
// application code.
func (a *Anchor) readClockMs(e *mcu.Exec) (uint64, *mcu.Fault) {
	var base uint64
	switch a.cfg.Clock {
	case ClockWide64:
		v, f := e.Load64(mcu.WideClockValueAddr)
		if f != nil {
			return 0, f
		}
		base = v / cost.CyclesPerMilli
	case ClockWide32Div:
		v, f := e.Load32(mcu.WideClockValueAddr)
		if f != nil {
			return 0, f
		}
		base = uint64(v) << 20 / cost.CyclesPerMilli
	case ClockSW:
		lsb, f := e.Load32(mcu.LSBClockValueAddr)
		if f != nil {
			return 0, f
		}
		msb, f := e.Load32(ClockMSBAddr)
		if f != nil {
			return 0, f
		}
		base = (uint64(msb)<<LSBWidth | uint64(lsb)) / cost.CyclesPerMilli
	default:
		return 0, &mcu.Fault{Reason: "no clock configured"}
	}
	raw, f := e.Read(SyncOffsetAddr, 8)
	if f != nil {
		return 0, f
	}
	adjusted := int64(base) + int64(binary.LittleEndian.Uint64(raw))
	if adjusted < 0 {
		adjusted = 0
	}
	return uint64(adjusted), nil
}

// ReadClock exposes the trust anchor's clock reading (milliseconds,
// sync-adjusted) to service handlers running inside Code_Attest.
func (a *Anchor) ReadClock(e *mcu.Exec) (uint64, *mcu.Fault) {
	return a.readClockMs(e)
}

// SyncOffsetMs reads the clock-sync adjustment out-of-band (scenario
// bookkeeping and tests).
func (a *Anchor) SyncOffsetMs() int64 {
	return int64(binary.LittleEndian.Uint64(a.M.Space.DirectRead(SyncOffsetAddr, 8)))
}

// ReadCounter returns counter_R, bypassing protection (test/verifier-side
// bookkeeping, not a prover path).
func (a *Anchor) ReadCounter() uint64 {
	return binary.LittleEndian.Uint64(a.M.Space.DirectRead(CounterAddr, CounterSize))
}

// ClockNowMs reads the prover clock out-of-band (scenario bookkeeping),
// including the clock-sync adjustment.
func (a *Anchor) ClockNowMs() uint64 {
	var base uint64
	switch a.cfg.Clock {
	case ClockWide64:
		base = a.Wide.Value() / cost.CyclesPerMilli
	case ClockWide32Div:
		base = a.Wide.Value() << 20 / cost.CyclesPerMilli
	case ClockSW:
		msb := uint64(a.M.Space.DirectLoad32(ClockMSBAddr))
		lsb := uint64(a.LSB.Value())
		base = (msb<<LSBWidth | lsb) / cost.CyclesPerMilli
	default:
		return 0
	}
	adjusted := int64(base) + a.SyncOffsetMs()
	if adjusted < 0 {
		adjusted = 0
	}
	return uint64(adjusted)
}
