package anchor

import (
	"bytes"
	"testing"

	"proverattest/internal/crypto/cost"
	"proverattest/internal/crypto/sha1"
	"proverattest/internal/mcu"
	"proverattest/internal/protocol"
	"proverattest/internal/sim"
)

var (
	testKey = []byte("k-attest-20-bytes!!!")
	appSize = uint32(16 * mcu.KiB)
)

// rig is a fully booted prover plus a matching verifier.
type rig struct {
	k *sim.Kernel
	m *mcu.MCU
	a *Anchor
	v *protocol.Verifier
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	k := sim.NewKernel()
	m := mcu.New(k, mcu.Config{MPURules: 8})

	cfg.AttestKey = testKey
	a, err := Install(m, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Factory: application image in flash, deterministic RAM contents.
	app := make([]byte, appSize)
	for i := range app {
		app[i] = byte(i * 13)
	}
	m.Space.DirectWrite(mcu.FlashRegion.Start, app)
	ram := make([]byte, mcu.RAMRegion.Size)
	for i := range ram {
		ram[i] = byte(i * 31)
	}
	m.Space.DirectWrite(mcu.RAMRegion.Start, ram)

	m.SecureBoot(a.BootPolicy(sha1.Sum(app), mcu.Region{Start: mcu.FlashRegion.Start, Size: appSize}), func(r mcu.BootReport) {
		if !r.OK {
			t.Fatalf("secure boot failed: %s", r.Reason)
		}
	})
	// RunUntil, not Run: the SW-clock's wrap event rescheduls itself
	// forever, so the queue never drains.
	k.RunUntil(k.Now() + sim.Second)

	var auth protocol.Authenticator
	switch cfg.AuthKind {
	case protocol.AuthNone:
		auth = protocol.NoAuth{}
	default:
		var err error
		auth, err = protocol.NewAuthenticator(cfg.AuthKind, testKey[:16])
		if cfg.AuthKind == protocol.AuthHMACSHA1 {
			auth = protocol.NewHMACAuth(testKey)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	v, err := protocol.NewVerifier(protocol.VerifierConfig{
		Freshness: cfg.Freshness,
		Auth:      auth,
		AttestKey: testKey,
		Golden:    ram,
		Clock:     func() uint64 { return uint64(k.Now() / sim.Millisecond) },
	})
	if err != nil {
		t.Fatal(err)
	}
	return &rig{k: k, m: m, a: a, v: v}
}

// attest runs one round trip and reports whether the verifier accepted.
func (r *rig) attest(t *testing.T) bool {
	t.Helper()
	req, err := r.v.NewRequest()
	if err != nil {
		t.Fatal(err)
	}
	return r.deliver(t, req.Encode())
}

// deliver feeds a raw frame to the prover and validates any response. The
// run is time-bounded (2 s covers the 754 ms measurement comfortably)
// because periodic clock hardware keeps the event queue non-empty.
func (r *rig) deliver(t *testing.T, frame []byte) bool {
	t.Helper()
	accepted := false
	r.a.HandleRequest(frame, func(out []byte) {
		ok, _ := r.v.CheckResponse(out)
		accepted = ok
	})
	r.k.RunUntil(r.k.Now() + 2*sim.Second)
	return accepted
}

func TestHappyPathHMACCounter(t *testing.T) {
	r := newRig(t, Config{
		Freshness:  protocol.FreshCounter,
		AuthKind:   protocol.AuthHMACSHA1,
		Protection: FullProtection(),
	})
	for i := 0; i < 3; i++ {
		if !r.attest(t) {
			t.Fatalf("round %d: genuine attestation rejected", i)
		}
	}
	if r.a.Stats.Measurements != 3 {
		t.Fatalf("Measurements = %d, want 3", r.a.Stats.Measurements)
	}
	if r.a.Stats.Faults != 0 {
		t.Fatalf("Code_Attest incurred %d faults", r.a.Stats.Faults)
	}
	if r.a.ReadCounter() != 3 {
		t.Fatalf("counter_R = %d, want 3", r.a.ReadCounter())
	}
}

func TestMeasurementTakes754ms(t *testing.T) {
	// §3.1: one full-memory attestation over 512 KB costs ≈754 ms of
	// prover time. The response must arrive that much later on the
	// simulated clock.
	r := newRig(t, Config{
		Freshness:  protocol.FreshNone,
		AuthKind:   protocol.AuthNone,
		Protection: FullProtection(),
	})
	start := r.k.Now()
	var doneAt sim.Time
	req, _ := r.v.NewRequest()
	r.a.HandleRequest(req.Encode(), func(out []byte) { doneAt = r.k.Now() })
	r.k.RunUntil(r.k.Now() + 2*sim.Second)
	elapsedMs := (doneAt - start).Milliseconds()
	if elapsedMs < 754.0 || elapsedMs > 754.5 {
		t.Fatalf("attestation took %.3f ms, want ≈754.0 ms", elapsedMs)
	}
}

func TestAuthRejectionIsCheap(t *testing.T) {
	// The §4.1 design point: rejecting a bogus request costs ~0.43 ms
	// (one HMAC validation), not 754 ms.
	r := newRig(t, Config{
		Freshness:  protocol.FreshCounter,
		AuthKind:   protocol.AuthHMACSHA1,
		Protection: FullProtection(),
	})
	bogus := &protocol.AttReq{
		Freshness: protocol.FreshCounter,
		Auth:      protocol.AuthHMACSHA1,
		Counter:   1,
		Tag:       bytes.Repeat([]byte{0xAA}, 20),
	}
	before := r.m.ActiveCycles
	if r.deliver(t, bogus.Encode()) {
		t.Fatal("forged request accepted")
	}
	spentMs := (r.m.ActiveCycles - before).Millis()
	if spentMs > 1.0 {
		t.Fatalf("rejecting a forged request cost %.3f ms of CPU, want <1 ms", spentMs)
	}
	if r.a.Stats.AuthRejected != 1 || r.a.Stats.Measurements != 0 {
		t.Fatalf("stats: %+v", r.a.Stats)
	}
}

func TestCounterFreshnessRejectsReplay(t *testing.T) {
	r := newRig(t, Config{
		Freshness:  protocol.FreshCounter,
		AuthKind:   protocol.AuthHMACSHA1,
		Protection: FullProtection(),
	})
	req, _ := r.v.NewRequest()
	frame := req.Encode()
	if !r.deliver(t, frame) {
		t.Fatal("genuine request rejected")
	}
	// Replay the identical frame: counter is no longer fresh.
	if r.deliver(t, frame) {
		t.Fatal("replayed request accepted")
	}
	if r.a.Stats.FreshnessRejected != 1 {
		t.Fatalf("FreshnessRejected = %d, want 1", r.a.Stats.FreshnessRejected)
	}
	if r.a.Stats.Measurements != 1 {
		t.Fatalf("Measurements = %d, want 1 (replay must not re-measure)", r.a.Stats.Measurements)
	}
}

func TestCounterFreshnessRejectsReorder(t *testing.T) {
	r := newRig(t, Config{
		Freshness:  protocol.FreshCounter,
		AuthKind:   protocol.AuthHMACSHA1,
		Protection: FullProtection(),
	})
	req1, _ := r.v.NewRequest()
	req2, _ := r.v.NewRequest()
	if !r.deliver(t, req2.Encode()) {
		t.Fatal("in-order request rejected")
	}
	// req1 delivered after req2: stale counter.
	if r.deliver(t, req1.Encode()) {
		t.Fatal("reordered request accepted")
	}
}

func TestTimestampFreshnessRejectsDelay(t *testing.T) {
	r := newRig(t, Config{
		Freshness:         protocol.FreshTimestamp,
		AuthKind:          protocol.AuthHMACSHA1,
		Clock:             ClockWide64,
		TimestampWindowMs: 1000,
		Protection:        FullProtection(),
	})
	req, _ := r.v.NewRequest()
	frame := req.Encode()
	// Hold the request for 5 simulated seconds (the delay attack), then
	// deliver: the timestamp is outside the window.
	r.k.RunUntil(5 * sim.Second)
	if r.deliver(t, frame) {
		t.Fatal("delayed request accepted")
	}
	if r.a.Stats.FreshnessRejected != 1 {
		t.Fatalf("FreshnessRejected = %d, want 1", r.a.Stats.FreshnessRejected)
	}
	// A fresh request right now is fine.
	if !r.attest(t) {
		t.Fatal("timely request rejected")
	}
}

func TestTimestampFreshnessAllClockDesigns(t *testing.T) {
	for _, design := range []ClockDesign{ClockWide64, ClockWide32Div, ClockSW} {
		t.Run(design.String(), func(t *testing.T) {
			r := newRig(t, Config{
				Freshness:         protocol.FreshTimestamp,
				AuthKind:          protocol.AuthHMACSHA1,
				Clock:             design,
				TimestampWindowMs: 1000,
				Protection:        FullProtection(),
			})
			// Let some time pass so clocks have non-trivial values; for the
			// SW design this crosses several LSB wraps (2.80 s each).
			r.k.RunUntil(10 * sim.Second)
			if !r.attest(t) {
				t.Fatalf("%v: timely request rejected", design)
			}
			if design == ClockSW && r.a.Stats.ClockTicks == 0 {
				t.Fatal("Code_Clock never ran")
			}
		})
	}
}

func TestSWClockTracksRealTime(t *testing.T) {
	r := newRig(t, Config{
		Freshness:  protocol.FreshNone,
		AuthKind:   protocol.AuthNone,
		Clock:      ClockSW,
		Protection: FullProtection(),
	})
	r.k.RunUntil(30 * sim.Second)
	got := r.a.ClockNowMs()
	if got < 29_900 || got > 30_100 {
		t.Fatalf("SW clock reads %d ms after 30 s, want ≈30000", got)
	}
	wantTicks := uint64(30*cost.ClockHz) >> LSBWidth
	if r.a.Stats.ClockTicks < wantTicks-1 || r.a.Stats.ClockTicks > wantTicks+1 {
		t.Fatalf("ClockTicks = %d, want ≈%d", r.a.Stats.ClockTicks, wantTicks)
	}
	if r.a.Stats.ISRFaults != 0 {
		t.Fatalf("Code_Clock faulted %d times", r.a.Stats.ISRFaults)
	}
}

func TestNonceHistoryFreshness(t *testing.T) {
	r := newRig(t, Config{
		Freshness:     protocol.FreshNonceHistory,
		AuthKind:      protocol.AuthHMACSHA1,
		NonceCapacity: 4,
		Protection:    FullProtection(),
	})
	req, _ := r.v.NewRequest()
	frame := req.Encode()
	if !r.deliver(t, frame) {
		t.Fatal("genuine request rejected")
	}
	// Immediate replay: detected.
	if r.deliver(t, frame) {
		t.Fatal("replayed nonce accepted")
	}
	// Push 4 more requests through: nonce 1 is evicted from the
	// capacity-4 history...
	for i := 0; i < 4; i++ {
		if !r.attest(t) {
			t.Fatalf("fill round %d rejected", i)
		}
	}
	// ...and the original frame replays successfully — the prover measures
	// again (the paper's bounded-NVM argument). The verifier of course
	// ignores the duplicate response, so check the prover's measurement
	// count, which is exactly what the DoS adversary drains.
	before := r.a.Stats.Measurements
	r.deliver(t, frame)
	if r.a.Stats.Measurements != before+1 {
		t.Fatal("replay of evicted nonce was rejected — eviction not modeled")
	}
}

func TestMalformedFramesRejectedCheaply(t *testing.T) {
	r := newRig(t, Config{
		Freshness:  protocol.FreshCounter,
		AuthKind:   protocol.AuthHMACSHA1,
		Protection: FullProtection(),
	})
	if r.deliver(t, []byte("garbage")) {
		t.Fatal("garbage frame produced an accepted response")
	}
	// Scheme confusion: right framing, wrong declared auth scheme.
	confused := &protocol.AttReq{Freshness: protocol.FreshCounter, Auth: protocol.AuthNone, Counter: 1}
	if r.deliver(t, confused.Encode()) {
		t.Fatal("scheme-confused frame accepted")
	}
	if r.a.Stats.Malformed != 2 {
		t.Fatalf("Malformed = %d, want 2", r.a.Stats.Malformed)
	}
}

func TestResponseBoundToRequest(t *testing.T) {
	// A response for request A must not satisfy request B.
	r := newRig(t, Config{
		Freshness:  protocol.FreshCounter,
		AuthKind:   protocol.AuthHMACSHA1,
		Protection: FullProtection(),
	})
	reqA, _ := r.v.NewRequest()
	var respA []byte
	r.a.HandleRequest(reqA.Encode(), func(out []byte) { respA = out })
	r.k.RunUntil(r.k.Now() + 2*sim.Second)
	if respA == nil {
		t.Fatal("no response to request A")
	}
	if ok, _ := r.v.CheckResponse(respA); !ok {
		t.Fatal("response A rejected for request A")
	}
	// Issue B but replay response A (already-retired nonce).
	if _, err := r.v.NewRequest(); err != nil {
		t.Fatal(err)
	}
	if ok, _ := r.v.CheckResponse(respA); ok {
		t.Fatal("stale response satisfied a new request")
	}
}

func TestDeviatingMemoryDetected(t *testing.T) {
	r := newRig(t, Config{
		Freshness:  protocol.FreshCounter,
		AuthKind:   protocol.AuthHMACSHA1,
		Protection: FullProtection(),
	})
	// Malware modifies measured RAM.
	r.m.Space.DirectWrite(mcu.RAMRegion.Start+1234, []byte{0xEE, 0xEE})
	if r.attest(t) {
		t.Fatal("attestation of tampered memory accepted by verifier")
	}
	if r.v.Rejected != 1 {
		t.Fatalf("verifier Rejected = %d, want 1", r.v.Rejected)
	}
}

func TestInstallValidation(t *testing.T) {
	k := sim.NewKernel()
	cases := []Config{
		{AttestKey: []byte("short")},
		{Freshness: protocol.FreshTimestamp, Clock: ClockNone},
		{AuthKind: protocol.AuthECDSA}, // no verifier public key
		{Clock: ClockDesign(99)},
		{KeyLocation: KeyLocation(99)},
	}
	for i, cfg := range cases {
		m := mcu.New(k, mcu.Config{MPURules: 8})
		if cfg.AttestKey == nil {
			cfg.AttestKey = testKey
		}
		if cfg.AuthKind == protocol.AuthECDSA {
			// leave VerifierPublic as the zero (invalid) point
			cfg.VerifierPublic.Inf = true
		}
		if _, err := Install(m, cfg); err == nil {
			t.Errorf("case %d: Install accepted invalid config %+v", i, cfg)
		}
	}
}

func TestKeyInFlashVariant(t *testing.T) {
	r := newRig(t, Config{
		Freshness:   protocol.FreshCounter,
		AuthKind:    protocol.AuthHMACSHA1,
		KeyLocation: KeyInFlash,
		Protection:  FullProtection(),
	})
	if r.a.KeyAddr() != KeyFlashAddr {
		t.Fatalf("key at %v, want flash location", r.a.KeyAddr())
	}
	if !r.attest(t) {
		t.Fatal("attestation with flash-resident key rejected")
	}
	// The flash key is covered by a read-only rule: nobody can overwrite it.
	if f := r.m.Bus.Write(mcu.FlashRegion.Start, KeyFlashAddr, []byte{0}); f == nil {
		t.Fatal("flash key overwritten despite protection")
	}
}
