package anchor

import (
	"encoding/binary"

	"proverattest/internal/crypto/cost"
	"proverattest/internal/crypto/hmac"
	"proverattest/internal/crypto/sha1"
	"proverattest/internal/mcu"
	"proverattest/internal/protocol"
)

// parseCost is the modeled cycle cost of request framing checks.
const parseCost = cost.Cycles(128)

// HandleRequest submits an incoming request frame to Code_Attest. The
// gate job authenticates the request (§4.1) and checks freshness against
// the protected state (§4.2); only then does the expensive memory
// measurement run — atomically (SMART-style, the default) or in chunks
// (TyTAN-style real-time compliance, cfg.MeasurementChunk > 0), each chunk
// a separate job so interrupts and queued application work interleave.
// respond, if non-nil, receives the encoded response when the measurement
// completes on the simulated timeline.
func (a *Anchor) HandleRequest(payload []byte, respond func([]byte)) {
	frame := append([]byte(nil), payload...)
	var out []byte
	a.M.Submit(a.CodeAttest, func(e *mcu.Exec) {
		req, key, ok := a.gate(e, frame)
		if !ok {
			return
		}
		if out = a.tryFastPath(e, req, key); out != nil {
			return
		}
		chunk := a.cfg.MeasurementChunk
		if chunk == 0 || chunk >= a.cfg.MeasuredRegion.Size {
			out = a.measureAtomic(e, req, key)
			return
		}
		a.measureChunked(e, req, key, respond)
	}, func(*mcu.Exec) {
		if respond != nil && out != nil {
			respond(out)
		}
	})
}

// gate runs the §4.1/§4.2 checks shared by the atomic and chunked paths.
func (a *Anchor) gate(e *mcu.Exec, frame []byte) (*protocol.AttReq, []byte, bool) {
	a.Stats.Received++
	e.Tick(parseCost)
	req, err := protocol.DecodeAttReq(frame)
	if err != nil {
		a.Stats.Malformed++
		return nil, nil, false
	}
	if req.Auth != a.cfg.AuthKind || req.Freshness != a.cfg.Freshness {
		// Scheme confusion is a framing violation: the anchor enforces its
		// provisioned policy, not whatever the frame claims.
		a.Stats.Malformed++
		return nil, nil, false
	}

	// Fetch K_Attest from its protected location. This read is the EA-MAC
	// path: only Code_Attest's PC region satisfies the key rule.
	key, fault := e.Read(a.keyAddr, KeySize)
	if fault != nil {
		a.Stats.Faults++
		return nil, nil, false
	}

	auth, authErr := a.authenticator(key)
	if authErr != nil {
		a.Stats.Faults++
		return nil, nil, false
	}
	ok, c := auth.Verify(req.SignedBytes(), req.Tag)
	e.Tick(c)
	if !ok {
		a.Stats.AuthRejected++
		return nil, nil, false
	}

	if !a.checkFreshness(e, req.Nonce, req.Counter, req.Timestamp) {
		a.Stats.FreshnessRejected++
		return nil, nil, false
	}
	return req, key, true
}

// tryFastPath is the RATA O(1) response: when the request grants fast
// permission and the write monitor reports the measured region untouched
// since the last rearm, answer with the fast MAC over the stored digest
// and the monitor epoch instead of re-MACing all of memory. Returns nil
// when the full measurement must run. All monitor and digest accesses go
// through the bus as Code_Attest — the same EA-MPU-checked path every
// other anchor access uses.
func (a *Anchor) tryFastPath(e *mcu.Exec, req *protocol.AttReq, key []byte) []byte {
	if a.Mon == nil || !req.AllowFast {
		return nil
	}
	status, fault := e.Load32(mcu.MonStatusAddr)
	if fault != nil {
		a.Stats.Faults++
		return nil
	}
	epoch, fault := e.Load32(mcu.MonEpochAddr)
	if fault != nil {
		a.Stats.Faults++
		return nil
	}
	// Epoch zero means no full measurement has rearmed the latch yet; the
	// fast path never vouches for memory it has not measured.
	if status != 0 || epoch == 0 {
		return nil
	}
	raw, fault := e.Read(LastDigestAddr, sha1.Size)
	if fault != nil {
		a.Stats.Faults++
		return nil
	}
	var digest [sha1.Size]byte
	copy(digest[:], raw)
	e.Tick(cost.HMACSHA1(protocol.FastMACMessageLen))
	mac := protocol.FastMAC(key, req, epoch, &digest)
	a.Stats.FastResponses++
	return (&protocol.AttResp{
		Fast:        true,
		Epoch:       epoch,
		Nonce:       req.Nonce,
		Counter:     req.Counter,
		Measurement: mac,
	}).Encode()
}

// monitorRearm clears the dirty latch through the CTRL register and
// returns the new epoch — zero when no monitor is installed or the rearm
// faulted (either way the response carries epoch 0 and the verifier never
// arms its fast state: fail-safe toward the full MAC). It must run
// *before* the measurement touches memory: a store racing the measurement
// then re-latches the bit, which is what makes the fast path
// TOCTOU-resistant.
func (a *Anchor) monitorRearm(e *mcu.Exec) uint32 {
	if a.Mon == nil {
		return 0
	}
	if fault := e.Store32(mcu.MonCtrlAddr, mcu.MonRearm); fault != nil {
		a.Stats.Faults++
		return 0
	}
	epoch, fault := e.Load32(mcu.MonEpochAddr)
	if fault != nil {
		a.Stats.Faults++
		return 0
	}
	return epoch
}

// storeDigest records a completed full measurement for the fast path to
// vouch for. The words live in anchor SRAM, outside the measured image,
// so the store does not re-latch the monitor.
func (a *Anchor) storeDigest(e *mcu.Exec, meas [sha1.Size]byte) {
	if a.Mon == nil {
		return
	}
	if fault := e.Write(LastDigestAddr, meas[:]); fault != nil {
		a.Stats.Faults++
	}
}

// measureAtomic is the uninterruptible measurement: one pass over the
// whole measured region inside the current job. Nothing can execute on
// the core between the first byte read and the response — which is
// exactly why it is TOCTOU-free.
func (a *Anchor) measureAtomic(e *mcu.Exec, req *protocol.AttReq, key []byte) []byte {
	epoch := a.monitorRearm(e)
	mem, fault := e.Read(a.cfg.MeasuredRegion.Start, a.cfg.MeasuredRegion.Size)
	if fault != nil {
		a.Stats.Faults++
		return nil
	}
	e.Tick(cost.HMACSHA1(len(req.SignedBytes()) + len(mem)))
	meas := protocol.Measure(key, req, mem)
	a.Stats.Measurements++
	a.storeDigest(e, meas)
	return (&protocol.AttResp{
		Epoch:       epoch,
		Nonce:       req.Nonce,
		Counter:     req.Counter,
		Measurement: meas,
	}).Encode()
}

// measureChunked streams the measurement as a chain of jobs, one per
// cfg.MeasurementChunk bytes. Between chunks the core serves interrupts
// and queued application work, bounding the primary task's latency at one
// chunk instead of the full ≈754 ms — the "attestation compliant with
// real-time operation" the paper cites ([5]/TyTAN). The price is the
// paper's footnote-1 caveat: execution interleaves with measurement, so a
// resident adversary can relocate itself around the measurement cursor
// (the TOCTOU attack demonstrated in internal/core's experiments).
//
// The streaming MAC state lives in closure variables, modelling scratch in
// the anchor's SRAM; the chain is reentrant — concurrent requests get
// independent state.
func (a *Anchor) measureChunked(e *mcu.Exec, req *protocol.AttReq, key []byte, respond func([]byte)) {
	region := a.cfg.MeasuredRegion
	chunkSize := a.cfg.MeasurementChunk
	// Rearm before the first chunk reads memory: any store interleaved
	// with the chunk chain re-latches the bit, so a torn measurement can
	// never back a fast response.
	epoch := a.monitorRearm(e)
	state := hmac.NewSHA1(key)
	state.Write(req.SignedBytes()) //nolint:errcheck // never fails
	// The fixed HMAC overhead (key pads, finalisation) and the request
	// echo are charged here; chunks then pay the pure per-block cost.
	e.Tick(cost.HMACSHA1(len(req.SignedBytes())))

	var step func(offset uint32)
	step = func(offset uint32) {
		n := chunkSize
		if offset+n > region.Size {
			n = region.Size - offset
		}
		var out []byte
		var aborted bool
		a.M.Submit(a.CodeAttest, func(e *mcu.Exec) {
			data, fault := e.Read(region.Start+mcu.Addr(offset), n)
			if fault != nil {
				a.Stats.Faults++
				aborted = true
				return
			}
			e.Tick(cost.SHA1HMACPerBlock * cost.Cycles((int(n)+63)/64))
			state.Write(data) //nolint:errcheck
			if offset+n == region.Size {
				var meas [20]byte
				copy(meas[:], state.Sum(nil))
				a.Stats.Measurements++
				a.storeDigest(e, meas)
				out = (&protocol.AttResp{
					Epoch:       epoch,
					Nonce:       req.Nonce,
					Counter:     req.Counter,
					Measurement: meas,
				}).Encode()
			}
		}, func(*mcu.Exec) {
			if aborted {
				return
			}
			if out != nil {
				if respond != nil {
					respond(out)
				}
				return
			}
			step(offset + n)
		})
	}
	step(0)
}

// authenticator returns the request authenticator keyed with the K_Attest
// bytes just read from protected memory. Symmetric schedules are cached so
// steady-state verification pays only the per-block cost, matching the
// paper's "key expansion done in advance" accounting; the cache is
// invalidated if the key bytes change (e.g. a key-overwrite attack on an
// unprotected flash key — the anchor then faithfully uses the new key, and
// the adversary wins, as §5 predicts).
func (a *Anchor) authenticator(key []byte) (protocol.Authenticator, error) {
	if a.cfg.AuthKind == protocol.AuthECDSA {
		if a.cachedAuth == nil {
			a.cachedAuth = protocol.NewECDSAVerifier(a.cfg.VerifierPublic)
		}
		return a.cachedAuth, nil
	}
	var k [20]byte
	copy(k[:], key)
	if a.cachedAuth != nil && k == a.cachedAuthKey {
		return a.cachedAuth, nil
	}
	var (
		auth protocol.Authenticator
		err  error
	)
	switch a.cfg.AuthKind {
	case protocol.AuthNone:
		auth = protocol.NoAuth{}
	case protocol.AuthHMACSHA1:
		auth = protocol.NewHMACAuth(key)
	case protocol.AuthAESCBCMAC:
		auth, err = protocol.NewAESAuth(key[:16])
	case protocol.AuthSpeckCBCMAC:
		auth, err = protocol.NewSpeckAuth(key[:16])
	default:
		err = errUnknownAuth
	}
	if err != nil {
		return nil, err
	}
	a.cachedAuth = auth
	a.cachedAuthKey = k
	return auth, nil
}

var errUnknownAuth = &mcu.Fault{Reason: "unknown auth kind"}

// checkFreshness applies the configured §4.2 mechanism against the
// protected prover state and, on acceptance, advances that state. It is
// shared by attestation requests and service commands: the prover keeps a
// single freshness stream, so commands cannot be replayed "around" the
// attestation counter.
func (a *Anchor) checkFreshness(e *mcu.Exec, nonce, counter, timestamp uint64) bool {
	switch a.cfg.Freshness {
	case protocol.FreshNone:
		return true

	case protocol.FreshCounter:
		raw, fault := e.Read(CounterAddr, CounterSize)
		if fault != nil {
			a.Stats.Faults++
			return false
		}
		e.Tick(8)
		last := binary.LittleEndian.Uint64(raw)
		if !protocol.CounterFresh(last, counter) {
			return false
		}
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], counter)
		if fault := e.Write(CounterAddr, buf[:]); fault != nil {
			a.Stats.Faults++
			return false
		}
		return true

	case protocol.FreshTimestamp:
		now, fault := a.readClockMs(e)
		if fault != nil {
			a.Stats.Faults++
			return false
		}
		e.Tick(16)
		return protocol.TimestampFresh(now, timestamp, a.cfg.TimestampWindowMs, a.cfg.TimestampSkewMs)

	case protocol.FreshNonceHistory:
		return a.checkNonce(e, nonce)
	}
	return false
}

// checkNonce scans the flash-resident nonce history and appends fresh
// nonces, evicting the oldest entry when the capacity bound is hit — the
// paper's non-volatile-memory cost made concrete. Layout: a count word,
// then capacity 8-byte entries used as a ring (oldest first).
func (a *Anchor) checkNonce(e *mcu.Exec, nonce uint64) bool {
	countWord, fault := e.Load32(NonceAreaAddr)
	if fault != nil {
		a.Stats.Faults++
		return false
	}
	count := int(countWord)
	if count > a.cfg.NonceCapacity {
		count = a.cfg.NonceCapacity
	}
	entries := NonceAreaAddr + 4
	// Linear scan, ~6 cycles per remembered nonce.
	e.Tick(cost.Cycles(6 * count))
	for i := 0; i < count; i++ {
		raw, fault := e.Read(entries+mcu.Addr(i*8), 8)
		if fault != nil {
			a.Stats.Faults++
			return false
		}
		if binary.LittleEndian.Uint64(raw) == nonce {
			return false // replay
		}
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], nonce)
	if count < a.cfg.NonceCapacity {
		if fault := e.Write(entries+mcu.Addr(count*8), buf[:]); fault != nil {
			a.Stats.Faults++
			return false
		}
		if fault := e.Store32(NonceAreaAddr, uint32(count+1)); fault != nil {
			a.Stats.Faults++
			return false
		}
		return true
	}
	// Full: shift the ring down one slot (evict oldest). Modeled as a
	// block move; real firmware would keep a head index, but the effect —
	// the oldest nonce becomes replayable — is identical.
	e.Tick(cost.Cycles(2 * count))
	block, fault := e.Read(entries+8, uint32((count-1)*8))
	if fault != nil {
		a.Stats.Faults++
		return false
	}
	if fault := e.Write(entries, block); fault != nil {
		a.Stats.Faults++
		return false
	}
	if fault := e.Write(entries+mcu.Addr((count-1)*8), buf[:]); fault != nil {
		a.Stats.Faults++
		return false
	}
	return true
}
