package anchor

import (
	"proverattest/internal/crypto/cost"
	"proverattest/internal/mcu"
	"proverattest/internal/protocol"
)

// ServiceHandler executes one service command inside Code_Attest, after
// the request has passed authentication and freshness. It receives the
// execution context (all accesses MPU-checked, cycles accounted) and the
// command body, and returns a status plus an optional response body.
type ServiceHandler func(e *mcu.Exec, body []byte) (status uint8, respBody []byte)

// RegisterService installs the handler for a command kind, overwriting any
// previous one. Handlers run with Code_Attest's privileges — they are part
// of the trust anchor's code, which is the point: the paper's future-work
// item 3 is to put *other* security services behind the same
// DoS-resistant gate.
func (a *Anchor) RegisterService(kind protocol.CommandKind, h ServiceHandler) {
	if a.services == nil {
		a.services = make(map[protocol.CommandKind]ServiceHandler)
	}
	a.services[kind] = h
}

// HandleCommand submits a service-command frame to Code_Attest. The gate
// is identical to attestation — parse, authenticate, freshness-check
// against the same protected state — and only then does the registered
// handler run. respond receives the sealed response at the job's
// completion time.
func (a *Anchor) HandleCommand(payload []byte, respond func([]byte)) {
	frame := append([]byte(nil), payload...)
	var out []byte
	a.M.Submit(a.CodeAttest, func(e *mcu.Exec) {
		out = a.processCommand(e, frame)
	}, func(*mcu.Exec) {
		if respond != nil && out != nil {
			respond(out)
		}
	})
}

func (a *Anchor) processCommand(e *mcu.Exec, frame []byte) []byte {
	a.Stats.Commands++
	e.Tick(parseCost)
	req, err := protocol.DecodeCommandReq(frame)
	if err != nil {
		a.Stats.Malformed++
		return nil
	}
	if req.Auth != a.cfg.AuthKind || req.Freshness != a.cfg.Freshness {
		a.Stats.Malformed++
		return nil
	}

	key, fault := e.Read(a.keyAddr, KeySize)
	if fault != nil {
		a.Stats.Faults++
		return nil
	}
	auth, authErr := a.authenticator(key)
	if authErr != nil {
		a.Stats.Faults++
		return nil
	}
	ok, c := auth.Verify(req.SignedBytes(), req.Tag)
	e.Tick(c)
	if !ok {
		a.Stats.AuthRejected++
		return nil
	}
	if !a.checkFreshness(e, req.Nonce, req.Counter, req.Timestamp) {
		a.Stats.FreshnessRejected++
		return nil
	}

	resp := &protocol.CommandResp{Kind: req.Kind, Nonce: req.Nonce}
	handler, registered := a.services[req.Kind]
	if !registered {
		resp.Status = protocol.StatusRefused
	} else {
		resp.Status, resp.Body = handler(e, req.Body)
		a.Stats.CommandsExecuted++
	}

	// Seal the verdict with K_Attest so the verifier knows the anchor —
	// not malware — answered.
	e.Tick(cost.HMACSHA1(len(resp.SignedBytes())))
	resp.Seal(key)
	return resp.Encode()
}
