package anchor

import (
	"bytes"
	"testing"

	"proverattest/internal/mcu"
	"proverattest/internal/protocol"
	"proverattest/internal/sim"
)

// commandRig extends the attestation rig with a registered echo service.
func commandRig(t *testing.T) *rig {
	t.Helper()
	r := newRig(t, Config{
		Freshness:  protocol.FreshCounter,
		AuthKind:   protocol.AuthHMACSHA1,
		Protection: FullProtection(),
	})
	r.a.RegisterService(protocol.CmdSecureErase, func(e *mcu.Exec, body []byte) (uint8, []byte) {
		e.Tick(100)
		return protocol.StatusOK, append([]byte("echo:"), body...)
	})
	return r
}

// deliverCommand feeds a raw command frame and returns the raw response.
func (r *rig) deliverCommand(t *testing.T, frame []byte) []byte {
	t.Helper()
	var out []byte
	r.a.HandleCommand(frame, func(resp []byte) { out = resp })
	r.k.RunUntil(r.k.Now() + 2*sim.Second)
	return out
}

func TestHandleCommandHappyPath(t *testing.T) {
	r := commandRig(t)
	req, err := r.v.NewCommand(protocol.CmdSecureErase, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	raw := r.deliverCommand(t, req.Encode())
	if raw == nil {
		t.Fatal("no command response")
	}
	resp, err := r.v.CheckCommandResponse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != protocol.StatusOK || !bytes.Equal(resp.Body, []byte("echo:payload")) {
		t.Fatalf("response = %d %q", resp.Status, resp.Body)
	}
	if r.a.Stats.Commands != 1 || r.a.Stats.CommandsExecuted != 1 {
		t.Fatalf("stats: %+v", r.a.Stats)
	}
}

func TestHandleCommandRejectsMalformedAndConfused(t *testing.T) {
	r := commandRig(t)
	if out := r.deliverCommand(t, []byte("garbage")); out != nil {
		t.Fatal("garbage produced a response")
	}
	confused := &protocol.CommandReq{
		Kind:      protocol.CmdSecureErase,
		Freshness: protocol.FreshTimestamp, // wrong policy
		Auth:      protocol.AuthHMACSHA1,
	}
	if out := r.deliverCommand(t, confused.Encode()); out != nil {
		t.Fatal("scheme-confused command produced a response")
	}
	if r.a.Stats.Malformed != 2 {
		t.Fatalf("Malformed = %d, want 2", r.a.Stats.Malformed)
	}
}

func TestHandleCommandRejectsForgedTag(t *testing.T) {
	r := commandRig(t)
	forged := &protocol.CommandReq{
		Kind:      protocol.CmdSecureErase,
		Freshness: protocol.FreshCounter,
		Auth:      protocol.AuthHMACSHA1,
		Counter:   1,
		Tag:       bytes.Repeat([]byte{0xAA}, 20),
	}
	if out := r.deliverCommand(t, forged.Encode()); out != nil {
		t.Fatal("forged command produced a response")
	}
	if r.a.Stats.AuthRejected != 1 || r.a.Stats.CommandsExecuted != 0 {
		t.Fatalf("stats: %+v", r.a.Stats)
	}
}

func TestHandleCommandRejectsStaleCounter(t *testing.T) {
	r := commandRig(t)
	req, _ := r.v.NewCommand(protocol.CmdSecureErase, nil)
	frame := req.Encode()
	if r.deliverCommand(t, frame) == nil {
		t.Fatal("first delivery refused")
	}
	if r.deliverCommand(t, frame) != nil {
		t.Fatal("replayed command produced a response")
	}
	if r.a.Stats.FreshnessRejected != 1 {
		t.Fatalf("FreshnessRejected = %d", r.a.Stats.FreshnessRejected)
	}
}

func TestHandleCommandUnregisteredKindRefusedWithSealedVerdict(t *testing.T) {
	r := commandRig(t)
	req, _ := r.v.NewCommand(protocol.CmdClockSync, nil) // no handler registered
	raw := r.deliverCommand(t, req.Encode())
	if raw == nil {
		t.Fatal("no verdict for unregistered command")
	}
	resp, err := r.v.CheckCommandResponse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != protocol.StatusRefused {
		t.Fatalf("status = %d, want refused", resp.Status)
	}
	if r.a.Stats.CommandsExecuted != 0 {
		t.Fatal("unregistered command counted as executed")
	}
}

func TestRegisterServiceOverwrites(t *testing.T) {
	r := commandRig(t)
	r.a.RegisterService(protocol.CmdSecureErase, func(e *mcu.Exec, body []byte) (uint8, []byte) {
		return protocol.StatusError, nil
	})
	req, _ := r.v.NewCommand(protocol.CmdSecureErase, nil)
	raw := r.deliverCommand(t, req.Encode())
	resp, err := r.v.CheckCommandResponse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != protocol.StatusError {
		t.Fatalf("status = %d, want the replacement handler's error", resp.Status)
	}
}

func TestConfigAccessorAndStrings(t *testing.T) {
	r := commandRig(t)
	cfg := r.a.Config()
	if cfg.Freshness != protocol.FreshCounter || cfg.AuthKind != protocol.AuthHMACSHA1 {
		t.Fatalf("Config() = %+v", cfg)
	}
	for _, d := range []ClockDesign{ClockNone, ClockWide64, ClockWide32Div, ClockSW, ClockDesign(9)} {
		if d.String() == "" {
			t.Errorf("clock design %d has no name", d)
		}
	}
	for _, p := range []Profile{ProfileTrustLite, ProfileSMART, ProfileTyTAN, Profile(9)} {
		if p.String() == "" {
			t.Errorf("profile %d has no name", p)
		}
	}
}

func TestReadClockExposedToServices(t *testing.T) {
	r := newRig(t, Config{
		Freshness:  protocol.FreshCounter,
		AuthKind:   protocol.AuthHMACSHA1,
		Clock:      ClockWide64,
		Protection: FullProtection(),
	})
	r.a.RegisterService(protocol.CmdClockSync, func(e *mcu.Exec, body []byte) (uint8, []byte) {
		ms, fault := r.a.ReadClock(e)
		if fault != nil {
			return protocol.StatusError, nil
		}
		out := make([]byte, 8)
		for i := 0; i < 8; i++ {
			out[i] = byte(ms >> (8 * i))
		}
		return protocol.StatusOK, out
	})
	r.k.RunUntil(5 * sim.Second)
	req, _ := r.v.NewCommand(protocol.CmdClockSync, nil)
	raw := r.deliverCommand(t, req.Encode())
	resp, err := r.v.CheckCommandResponse(raw)
	if err != nil {
		t.Fatal(err)
	}
	var ms uint64
	for i := 0; i < 8; i++ {
		ms |= uint64(resp.Body[i]) << (8 * i)
	}
	if ms < 4900 || ms > 5200 {
		t.Fatalf("service read clock = %d ms, want ≈5000", ms)
	}
}

func TestChunkedMeasurementInAnchorPackage(t *testing.T) {
	// Exercise measureChunked within the anchor package: a 64 KB measured
	// region in 16 KB chunks.
	r := newRig(t, Config{
		Freshness:        protocol.FreshCounter,
		AuthKind:         protocol.AuthHMACSHA1,
		MeasuredRegion:   mcu.Region{Start: mcu.RAMRegion.Start, Size: 64 * mcu.KiB},
		MeasurementChunk: 16 * mcu.KiB,
		Protection:       FullProtection(),
	})
	// The verifier's golden covers full RAM; rebuild one scoped to the
	// measured slice.
	golden := r.m.Space.DirectRead(mcu.RAMRegion.Start, 64*mcu.KiB)
	v2, err := protocol.NewVerifier(protocol.VerifierConfig{
		Freshness: protocol.FreshCounter,
		Auth:      protocol.NewHMACAuth(testKey),
		AttestKey: testKey,
		Golden:    golden,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.v = v2
	if !r.attest(t) {
		t.Fatal("chunked attestation rejected")
	}
	if r.a.Stats.Measurements != 1 {
		t.Fatalf("Measurements = %d", r.a.Stats.Measurements)
	}
}

func TestNonceCheckFaultPathsWhenUnprotectedAreaShrinks(t *testing.T) {
	// Force checkNonce's fault branches: cover the nonce area with a rule
	// granting nobody, then deliver a nonce-fresh request — the anchor
	// must record a fault and refuse, not crash.
	r := newRig(t, Config{
		Freshness:     protocol.FreshNonceHistory,
		AuthKind:      protocol.AuthHMACSHA1,
		NonceCapacity: 4,
		Protection:    Protection{Key: true}, // nonce area NOT granted to the anchor
	})
	if err := r.m.MPU.SetRule(5, mcu.Rule{
		Code: mcu.Region{Start: mcu.ROMRegion.Start + 0x8000, Size: 4}, // nobody real
		Data: mcu.Region{Start: NonceAreaAddr, Size: 64},
		Perm: mcu.PermRead, Enabled: true,
	}); err != nil {
		t.Fatal(err)
	}
	if r.attest(t) {
		t.Fatal("attestation accepted despite inaccessible nonce history")
	}
	if r.a.Stats.Faults == 0 {
		t.Fatal("no fault recorded on the blocked nonce area")
	}
}
