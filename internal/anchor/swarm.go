package anchor

// The prover side of swarm (collective) attestation. A node's round has
// three phases, each a Code_Attest job on the simulated MCU:
//
//  1. HandleSwarmBegin — gate the broadcast request (K_Swarm tag +
//     monotonic nonce), then compute the node's own tag: O(1) from the
//     stored memory digest while the write monitor reports the region
//     clean under the same epoch, a full re-measurement otherwise (the
//     RATA contract, shared with the 1:1 fast path).
//  2. SwarmFoldChild — fold one child's aggregate response into the
//     pending round, in child order, OR-ing its presence bitmap.
//  3. SwarmRespond — emit the aggregate (for a leaf: the own tag) frame.
//
// The application layer owns the tree: it forwards the request to the
// node's children and feeds their responses back in order. It cannot
// forge anything by misbehaving — child aggregates are keyed per device,
// so any reordering, substitution or omission surfaces as a verifier
// aggregate mismatch and is localized by bisection.

import (
	"proverattest/internal/crypto/cost"
	"proverattest/internal/crypto/hmac"
	"proverattest/internal/crypto/sha1"
	"proverattest/internal/mcu"
	"proverattest/internal/protocol"
)

// swarmState is the anchor's swarm scratch: the persistent measurement
// memo (digest + epoch, anchor SRAM) and the state of the round in
// flight.
type swarmState struct {
	lastNonce uint64
	// Measurement memo: the last swarm memory digest and the monitor
	// epoch it was measured under. Reused only while the monitor reports
	// the region clean under the same epoch.
	epoch  uint32
	digest [sha1.Size]byte
	have   bool

	// Pending round.
	active  bool
	ownOnly bool
	nonce   uint64
	own     [sha1.Size]byte
	fold    *hmac.MAC
	folded  int
	depth   uint8
	bitmap  []byte
}

// Static swarm gate errors (reported through done callbacks).
var (
	errSwarmDisabled  = &mcu.Fault{Reason: "swarm not provisioned"}
	errSwarmMalformed = &mcu.Fault{Reason: "malformed swarm frame"}
	errSwarmAuth      = &mcu.Fault{Reason: "swarm request authentication failed"}
	errSwarmFreshness = &mcu.Fault{Reason: "swarm request replayed"}
	errSwarmNoRound   = &mcu.Fault{Reason: "no swarm round in flight"}
	errSwarmOwnOnly   = &mcu.Fault{Reason: "own-only round accepts no children"}
	errSwarmNonce     = &mcu.Fault{Reason: "child response nonce mismatch"}
)

// HandleSwarmBegin submits a swarm broadcast request to Code_Attest:
// gate, then own-tag computation. done (if non-nil) receives nil when the
// node has a round in flight and an error when the frame was rejected.
func (a *Anchor) HandleSwarmBegin(payload []byte, done func(error)) {
	frame := append([]byte(nil), payload...)
	var err error
	a.M.Submit(a.CodeAttest, func(e *mcu.Exec) {
		err = a.swarmBegin(e, frame)
	}, func(*mcu.Exec) {
		if done != nil {
			done(err)
		}
	})
}

func (a *Anchor) swarmBegin(e *mcu.Exec, frame []byte) error {
	a.Stats.Received++
	e.Tick(parseCost)
	if len(a.cfg.SwarmKey) == 0 || a.cfg.SwarmFleet <= 0 {
		a.Stats.Malformed++
		return errSwarmDisabled
	}
	req, err := protocol.DecodeSwarmReq(frame)
	if err != nil {
		a.Stats.Malformed++
		return errSwarmMalformed
	}

	// Gate: the broadcast tag must verify before any measurement work —
	// the §3.1 asymmetry argument, per hop. K_Swarm lives alongside the
	// anchor's protected state (provisioned at manufacture).
	signed := req.SignedBytes()
	e.Tick(cost.HMACSHA1(len(signed)))
	tag := hmac.SHA1(a.cfg.SwarmKey, signed)
	if !hmac.Equal(tag[:], req.Tag) {
		a.Stats.AuthRejected++
		return errSwarmAuth
	}
	// Freshness: per-device monotonic swarm nonce. Bisection probes use
	// fresh nonces, so strict increase holds tree-wide.
	e.Tick(8)
	if req.Nonce <= a.swarm.lastNonce {
		a.Stats.FreshnessRejected++
		return errSwarmFreshness
	}
	a.swarm.lastNonce = req.Nonce

	key, fault := e.Read(a.keyAddr, KeySize)
	if fault != nil {
		a.Stats.Faults++
		return fault
	}

	epoch, fast, fault := a.swarmOwnDigest(e, key)
	if fault != nil {
		a.Stats.Faults++
		return fault
	}
	if fast {
		a.Stats.FastResponses++
	}

	mac := hmac.NewSHA1(key)
	e.Tick(cost.HMACSHA1(len(signed) + 6 + sha1.Size))
	protocol.SwarmOwnTagInto(mac, signed, a.cfg.SwarmIndex, epoch, &a.swarm.digest, &a.swarm.own)

	if want := protocol.SwarmBitmapLen(a.cfg.SwarmFleet); len(a.swarm.bitmap) != want {
		a.swarm.bitmap = make([]byte, want)
	} else {
		for i := range a.swarm.bitmap {
			a.swarm.bitmap[i] = 0
		}
	}
	protocol.SetSwarmBit(a.swarm.bitmap, int(a.cfg.SwarmIndex))
	a.swarm.active = true
	a.swarm.ownOnly = req.OwnOnly
	a.swarm.nonce = req.Nonce
	a.swarm.fold = mac
	a.swarm.folded = 0
	a.swarm.depth = 0
	return nil
}

// swarmOwnDigest establishes the memory digest and epoch backing the own
// tag: the stored memo when the monitor reports the region clean under
// the memo's epoch, a full re-measurement otherwise. Without a monitor
// every round measures (a software epoch keeps the tag shape uniform).
// The clean-reuse condition requires epoch equality, not just a clean
// latch: a 1:1 full round rearms the monitor too, and vouching for a
// pre-rearm digest under a post-rearm epoch would let content changes
// made between the memo and the rearm hide behind a clean latch.
func (a *Anchor) swarmOwnDigest(e *mcu.Exec, key []byte) (epoch uint32, fast bool, fault *mcu.Fault) {
	if a.Mon != nil {
		status, f := e.Load32(mcu.MonStatusAddr)
		if f != nil {
			return 0, false, f
		}
		monEpoch, f := e.Load32(mcu.MonEpochAddr)
		if f != nil {
			return 0, false, f
		}
		if status == 0 && monEpoch != 0 && a.swarm.have && a.swarm.epoch == monEpoch {
			return monEpoch, true, nil
		}
		// Dirty (or desynced): rearm first, then measure — a store racing
		// the measurement re-latches the bit, the TOCTOU property the
		// 1:1 fast path stands on.
		epoch = a.monitorRearm(e)
	} else {
		epoch = a.swarm.epoch + 1
	}
	mem, f := e.Read(a.cfg.MeasuredRegion.Start, a.cfg.MeasuredRegion.Size)
	if f != nil {
		return 0, false, f
	}
	e.Tick(cost.HMACSHA1(len(mem)))
	a.swarm.digest = protocol.SwarmMemDigest(key, mem)
	a.swarm.epoch = epoch
	a.swarm.have = true
	a.Stats.Measurements++
	return epoch, false, nil
}

// SwarmFoldChild submits one child aggregate response to the pending
// round. Children must be folded in child order; done (if non-nil)
// receives nil on success.
func (a *Anchor) SwarmFoldChild(payload []byte, done func(error)) {
	frame := append([]byte(nil), payload...)
	var err error
	a.M.Submit(a.CodeAttest, func(e *mcu.Exec) {
		err = a.swarmFoldChild(e, frame)
	}, func(*mcu.Exec) {
		if done != nil {
			done(err)
		}
	})
}

func (a *Anchor) swarmFoldChild(e *mcu.Exec, frame []byte) error {
	e.Tick(parseCost)
	if !a.swarm.active {
		return errSwarmNoRound
	}
	if a.swarm.ownOnly {
		return errSwarmOwnOnly
	}
	resp, err := protocol.DecodeSwarmResp(frame)
	if err != nil {
		a.Stats.Malformed++
		return errSwarmMalformed
	}
	if resp.Nonce != a.swarm.nonce {
		return errSwarmNonce
	}
	if a.swarm.folded == 0 {
		protocol.SwarmFoldStart(a.swarm.fold, &a.swarm.own)
	}
	e.Tick(cost.SHA1HMACPerBlock)
	protocol.SwarmFoldChild(a.swarm.fold, &resp.Aggregate)
	for i := 0; i < len(a.swarm.bitmap) && i < len(resp.Bitmap); i++ {
		a.swarm.bitmap[i] |= resp.Bitmap[i]
	}
	if d := resp.Depth + 1; d > a.swarm.depth {
		a.swarm.depth = d
	}
	a.swarm.folded++
	return nil
}

// SwarmRespond finalises the pending round and emits the aggregate frame
// through respond. The round is consumed; a node answers each request at
// most once.
func (a *Anchor) SwarmRespond(respond func([]byte)) {
	var out []byte
	a.M.Submit(a.CodeAttest, func(e *mcu.Exec) {
		if !a.swarm.active {
			return
		}
		resp := protocol.SwarmResp{
			Depth: a.swarm.depth,
			Root:  a.cfg.SwarmIndex,
			Nonce: a.swarm.nonce,
		}
		if a.swarm.folded == 0 {
			resp.Aggregate = a.swarm.own
		} else {
			e.Tick(cost.SHA1HMACPerBlock)
			protocol.SwarmFoldFinish(a.swarm.fold, &resp.Aggregate)
		}
		resp.Bitmap = a.swarm.bitmap
		a.swarm.active = false
		out = resp.Encode()
	}, func(*mcu.Exec) {
		if respond != nil && out != nil {
			respond(out)
		}
	})
}
