// Package channel simulates the network between verifier and prover as a
// discrete-event message channel with a Dolev-Yao interposition point:
// every message passes through an optional Tap that can observe, drop,
// delay, duplicate, reorder or inject traffic — the full capability set of
// the paper's external adversary Adv_ext (§3.2).
package channel

import (
	"fmt"

	"proverattest/internal/sim"
)

// Endpoint names a protocol party.
type Endpoint string

// The two protocol parties.
const (
	Verifier Endpoint = "verifier"
	Prover   Endpoint = "prover"
)

// Message is one frame in flight.
type Message struct {
	ID      uint64 // channel-assigned sequence number, for tracing
	From    Endpoint
	To      Endpoint
	Payload []byte
	// Injected marks frames originated by the adversary rather than an
	// endpoint (used only for reporting; endpoints never see this field
	// on the wire).
	Injected bool
}

// Clone deep-copies a message, so taps can safely stash frames for later
// replay without aliasing live buffers.
func (m Message) Clone() Message {
	c := m
	c.Payload = append([]byte(nil), m.Payload...)
	return c
}

// Tap is the Dolev-Yao interposition interface. For each frame an endpoint
// sends, the channel asks the tap what to deliver. Returning the frame
// with delay 0 models an honest network hop; returning nothing drops it;
// returning several schedules duplicates or reordered copies.
type Tap interface {
	// OnSend decides the fate of a frame at the moment it enters the
	// channel. Deliveries are scheduled relative to now + base latency.
	OnSend(msg Message, now sim.Time) []Delivery
}

// Delivery schedules one frame to arrive ExtraDelay after the channel's
// base latency.
type Delivery struct {
	Msg        Message
	ExtraDelay sim.Duration
}

// Passthrough is the honest network: every frame is delivered once with no
// extra delay.
type Passthrough struct{}

// OnSend implements Tap.
func (Passthrough) OnSend(msg Message, now sim.Time) []Delivery {
	return []Delivery{{Msg: msg}}
}

// LossTap models environmental (non-adversarial) packet loss: every Nth
// matching frame is dropped, deterministically, so lossy-link scenarios
// replay identically. Wrap another tap via Inner to compose with an
// adversary.
type LossTap struct {
	// DropEvery drops one frame out of every DropEvery matching frames
	// (2 = 50 % loss, 10 = 10 % loss). Values < 2 drop nothing.
	DropEvery int
	// Match selects frames subject to loss; nil means all frames.
	Match func(Message) bool
	// Inner handles surviving frames; nil means passthrough.
	Inner Tap

	seen int
	// Dropped attributes drops to this tap specifically. Every frame it
	// drops is also counted once in the owning Channel's TapDropped, so
	// the two must never be added together: Channel.TapDropped is the
	// link-level total across whatever tap stack is installed, Dropped is
	// this layer's share of it.
	Dropped int
}

// OnSend implements Tap.
func (l *LossTap) OnSend(msg Message, now sim.Time) []Delivery {
	match := l.Match == nil || l.Match(msg)
	if match && l.DropEvery >= 2 {
		l.seen++
		if l.seen%l.DropEvery == 0 {
			l.Dropped++
			return nil
		}
	}
	if l.Inner != nil {
		return l.Inner.OnSend(msg, now)
	}
	return []Delivery{{Msg: msg}}
}

// Channel is the simulated link. All operations run on the kernel's
// event loop.
type Channel struct {
	k       *sim.Kernel
	latency sim.Duration
	tap     Tap

	handlers map[Endpoint]func(Message)
	nextID   uint64

	// Stats. TapDropped and Undeliverable are distinct causes: the former
	// is adversarial or environmental interference at send time, the
	// latter a wiring gap at delivery time. They used to be conflated in
	// one Dropped counter, which made loss-rate arithmetic lie whenever an
	// endpoint was left unattached.
	Sent      uint64
	Delivered uint64
	// TapDropped counts frames the tap discarded at send time (it
	// returned no deliveries).
	TapDropped uint64
	// Undeliverable counts deliveries that arrived for an endpoint with no
	// attached handler.
	Undeliverable uint64
}

// Dropped reports the total frames lost for any reason — the sum of
// TapDropped and Undeliverable, kept for callers that only care that a
// frame vanished.
func (c *Channel) Dropped() uint64 { return c.TapDropped + c.Undeliverable }

// New builds a channel with a fixed one-way base latency and an optional
// tap (nil means Passthrough).
func New(k *sim.Kernel, latency sim.Duration, tap Tap) *Channel {
	if latency < 0 {
		panic("channel: negative latency")
	}
	if tap == nil {
		tap = Passthrough{}
	}
	return &Channel{
		k:        k,
		latency:  latency,
		tap:      tap,
		handlers: make(map[Endpoint]func(Message)),
	}
}

// Attach registers the receive handler for an endpoint. Re-attaching
// replaces the handler.
func (c *Channel) Attach(ep Endpoint, handler func(Message)) {
	c.handlers[ep] = handler
}

// Send puts a frame on the wire from an endpoint. The tap decides what is
// actually delivered.
func (c *Channel) Send(from, to Endpoint, payload []byte) {
	c.nextID++
	msg := Message{
		ID:      c.nextID,
		From:    from,
		To:      to,
		Payload: append([]byte(nil), payload...),
	}
	c.Sent++
	deliveries := c.tap.OnSend(msg.Clone(), c.k.Now())
	if len(deliveries) == 0 {
		c.TapDropped++
		return
	}
	for _, d := range deliveries {
		c.scheduleDelivery(d.Msg, c.latency+d.ExtraDelay)
	}
}

// Inject places an adversary-originated frame on the wire, bypassing the
// tap (the adversary does not intercept itself). delay is measured from
// now; the base latency still applies.
func (c *Channel) Inject(msg Message, delay sim.Duration) {
	c.nextID++
	msg.ID = c.nextID
	msg.Injected = true
	c.scheduleDelivery(msg.Clone(), c.latency+delay)
}

func (c *Channel) scheduleDelivery(msg Message, delay sim.Duration) {
	if delay < 0 {
		panic(fmt.Sprintf("channel: negative delivery delay %v", delay))
	}
	c.k.After(delay, func() {
		h, ok := c.handlers[msg.To]
		if !ok {
			c.Undeliverable++
			return
		}
		c.Delivered++
		h(msg)
	})
}
