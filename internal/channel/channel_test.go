package channel

import (
	"bytes"
	"testing"

	"proverattest/internal/sim"
)

func TestPassthroughDelivery(t *testing.T) {
	k := sim.NewKernel()
	c := New(k, 2*sim.Millisecond, nil)
	var got []Message
	var at sim.Time
	c.Attach(Prover, func(m Message) { got = append(got, m); at = k.Now() })
	c.Send(Verifier, Prover, []byte("attreq"))
	k.Run()
	if len(got) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(got))
	}
	if !bytes.Equal(got[0].Payload, []byte("attreq")) {
		t.Fatalf("payload = %q", got[0].Payload)
	}
	if got[0].From != Verifier || got[0].To != Prover {
		t.Fatalf("endpoints = %s → %s", got[0].From, got[0].To)
	}
	if at != 2*sim.Millisecond {
		t.Fatalf("delivered at %v, want 2 ms", at)
	}
	if c.Sent != 1 || c.Delivered != 1 || c.Dropped != 0 {
		t.Fatalf("stats: sent=%d delivered=%d dropped=%d", c.Sent, c.Delivered, c.Dropped)
	}
}

func TestNoHandlerCountsDropped(t *testing.T) {
	k := sim.NewKernel()
	c := New(k, 0, nil)
	c.Send(Verifier, Prover, []byte("x"))
	k.Run()
	if c.Dropped != 1 || c.Delivered != 0 {
		t.Fatalf("stats: delivered=%d dropped=%d", c.Delivered, c.Dropped)
	}
}

type dropTap struct{}

func (dropTap) OnSend(msg Message, now sim.Time) []Delivery { return nil }

func TestDropTap(t *testing.T) {
	k := sim.NewKernel()
	c := New(k, 0, dropTap{})
	delivered := 0
	c.Attach(Prover, func(Message) { delivered++ })
	c.Send(Verifier, Prover, []byte("x"))
	k.Run()
	if delivered != 0 || c.Dropped != 1 {
		t.Fatalf("drop tap: delivered=%d dropped=%d", delivered, c.Dropped)
	}
}

type duplicateTap struct{ extra sim.Duration }

func (d duplicateTap) OnSend(msg Message, now sim.Time) []Delivery {
	return []Delivery{{Msg: msg}, {Msg: msg, ExtraDelay: d.extra}}
}

func TestDuplicateAndDelayTap(t *testing.T) {
	k := sim.NewKernel()
	c := New(k, sim.Millisecond, duplicateTap{extra: 10 * sim.Millisecond})
	var times []sim.Time
	c.Attach(Prover, func(Message) { times = append(times, k.Now()) })
	c.Send(Verifier, Prover, []byte("x"))
	k.Run()
	if len(times) != 2 {
		t.Fatalf("delivered %d copies, want 2", len(times))
	}
	if times[0] != sim.Millisecond || times[1] != 11*sim.Millisecond {
		t.Fatalf("delivery times %v, want [1ms 11ms]", times)
	}
}

func TestInjectBypassesTap(t *testing.T) {
	k := sim.NewKernel()
	c := New(k, sim.Millisecond, dropTap{}) // tap drops everything sent...
	var got []Message
	c.Attach(Prover, func(m Message) { got = append(got, m) })
	c.Inject(Message{From: Verifier, To: Prover, Payload: []byte("forged")}, 5*sim.Millisecond)
	k.Run()
	if len(got) != 1 {
		t.Fatalf("injected frame not delivered (%d)", len(got))
	}
	if !got[0].Injected {
		t.Fatal("injected frame not marked")
	}
	if k.Now() != 6*sim.Millisecond {
		t.Fatalf("delivered at %v, want 6 ms (5 ms delay + 1 ms latency)", k.Now())
	}
}

func TestMessageCloneIsDeep(t *testing.T) {
	m := Message{Payload: []byte{1, 2, 3}}
	c := m.Clone()
	c.Payload[0] = 9
	if m.Payload[0] != 1 {
		t.Fatal("Clone aliases the payload")
	}
}

func TestSenderBufferNotAliased(t *testing.T) {
	// Mutating the caller's buffer after Send must not affect delivery.
	k := sim.NewKernel()
	c := New(k, 0, nil)
	var got []byte
	c.Attach(Prover, func(m Message) { got = m.Payload })
	buf := []byte{1, 2, 3}
	c.Send(Verifier, Prover, buf)
	buf[0] = 99
	k.Run()
	if got[0] != 1 {
		t.Fatal("delivered payload aliases the sender's buffer")
	}
}

func TestMessageIDsAreUnique(t *testing.T) {
	k := sim.NewKernel()
	c := New(k, 0, nil)
	seen := map[uint64]bool{}
	c.Attach(Prover, func(m Message) {
		if seen[m.ID] {
			t.Errorf("duplicate message ID %d", m.ID)
		}
		seen[m.ID] = true
	})
	for i := 0; i < 10; i++ {
		c.Send(Verifier, Prover, []byte{byte(i)})
	}
	c.Inject(Message{To: Prover}, 0)
	k.Run()
	if len(seen) != 11 {
		t.Fatalf("saw %d IDs, want 11", len(seen))
	}
}

func TestBidirectional(t *testing.T) {
	k := sim.NewKernel()
	c := New(k, sim.Millisecond, nil)
	c.Attach(Prover, func(m Message) {
		c.Send(Prover, Verifier, append([]byte("re:"), m.Payload...))
	})
	var reply []byte
	c.Attach(Verifier, func(m Message) { reply = m.Payload })
	c.Send(Verifier, Prover, []byte("ping"))
	k.Run()
	if string(reply) != "re:ping" {
		t.Fatalf("reply = %q", reply)
	}
	if k.Now() != 2*sim.Millisecond {
		t.Fatalf("round trip took %v, want 2 ms", k.Now())
	}
}

func TestLossTapDropsEveryNth(t *testing.T) {
	k := sim.NewKernel()
	tap := &LossTap{DropEvery: 3}
	c := New(k, 0, tap)
	got := 0
	c.Attach(Prover, func(Message) { got++ })
	for i := 0; i < 9; i++ {
		c.Send(Verifier, Prover, []byte{byte(i)})
	}
	k.Run()
	if got != 6 || tap.Dropped != 3 {
		t.Fatalf("delivered %d, dropped %d — want 6/3", got, tap.Dropped)
	}
}

func TestLossTapMatchAndInner(t *testing.T) {
	k := sim.NewKernel()
	inner := &Interceptor2{}
	tap := &LossTap{
		DropEvery: 2,
		Match:     func(m Message) bool { return m.To == Prover },
		Inner:     inner,
	}
	c := New(k, 0, tap)
	proverGot, verifierGot := 0, 0
	c.Attach(Prover, func(Message) { proverGot++ })
	c.Attach(Verifier, func(Message) { verifierGot++ })
	for i := 0; i < 4; i++ {
		c.Send(Verifier, Prover, []byte{1})
		c.Send(Prover, Verifier, []byte{2})
	}
	k.Run()
	if proverGot != 2 {
		t.Fatalf("prover got %d, want 2 (50%% loss)", proverGot)
	}
	if verifierGot != 4 {
		t.Fatalf("verifier got %d, want 4 (unmatched frames lossless)", verifierGot)
	}
	// Surviving frames went through the inner tap.
	if inner.Seen != 6 {
		t.Fatalf("inner tap saw %d frames, want 6", inner.Seen)
	}
}

// Interceptor2 is a counting passthrough used to verify tap composition.
type Interceptor2 struct{ Seen int }

func (i *Interceptor2) OnSend(msg Message, now sim.Time) []Delivery {
	i.Seen++
	return []Delivery{{Msg: msg}}
}

func TestLossTapBelowTwoDropsNothing(t *testing.T) {
	k := sim.NewKernel()
	tap := &LossTap{DropEvery: 1}
	c := New(k, 0, tap)
	got := 0
	c.Attach(Prover, func(Message) { got++ })
	for i := 0; i < 5; i++ {
		c.Send(Verifier, Prover, nil)
	}
	k.Run()
	if got != 5 || tap.Dropped != 0 {
		t.Fatalf("DropEvery=1 dropped frames: got %d, dropped %d", got, tap.Dropped)
	}
}

func TestNegativeLatencyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative latency did not panic")
		}
	}()
	New(sim.NewKernel(), -1, nil)
}
