package channel

import (
	"bytes"
	"testing"

	"proverattest/internal/sim"
)

func TestPassthroughDelivery(t *testing.T) {
	k := sim.NewKernel()
	c := New(k, 2*sim.Millisecond, nil)
	var got []Message
	var at sim.Time
	c.Attach(Prover, func(m Message) { got = append(got, m); at = k.Now() })
	c.Send(Verifier, Prover, []byte("attreq"))
	k.Run()
	if len(got) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(got))
	}
	if !bytes.Equal(got[0].Payload, []byte("attreq")) {
		t.Fatalf("payload = %q", got[0].Payload)
	}
	if got[0].From != Verifier || got[0].To != Prover {
		t.Fatalf("endpoints = %s → %s", got[0].From, got[0].To)
	}
	if at != 2*sim.Millisecond {
		t.Fatalf("delivered at %v, want 2 ms", at)
	}
	if c.Sent != 1 || c.Delivered != 1 || c.Dropped() != 0 {
		t.Fatalf("stats: sent=%d delivered=%d dropped=%d", c.Sent, c.Delivered, c.Dropped())
	}
}

func TestNoHandlerCountsUndeliverable(t *testing.T) {
	k := sim.NewKernel()
	c := New(k, 0, nil)
	c.Send(Verifier, Prover, []byte("x"))
	k.Run()
	if c.Undeliverable != 1 || c.TapDropped != 0 || c.Delivered != 0 {
		t.Fatalf("stats: delivered=%d tap=%d undeliverable=%d",
			c.Delivered, c.TapDropped, c.Undeliverable)
	}
	if c.Dropped() != 1 {
		t.Fatalf("Dropped() = %d, want 1", c.Dropped())
	}
}

type dropTap struct{}

func (dropTap) OnSend(msg Message, now sim.Time) []Delivery { return nil }

func TestDropTap(t *testing.T) {
	k := sim.NewKernel()
	c := New(k, 0, dropTap{})
	delivered := 0
	c.Attach(Prover, func(Message) { delivered++ })
	c.Send(Verifier, Prover, []byte("x"))
	k.Run()
	if delivered != 0 || c.TapDropped != 1 || c.Undeliverable != 0 {
		t.Fatalf("drop tap: delivered=%d tap=%d undeliverable=%d",
			delivered, c.TapDropped, c.Undeliverable)
	}
}

type duplicateTap struct{ extra sim.Duration }

func (d duplicateTap) OnSend(msg Message, now sim.Time) []Delivery {
	return []Delivery{{Msg: msg}, {Msg: msg, ExtraDelay: d.extra}}
}

func TestDuplicateAndDelayTap(t *testing.T) {
	k := sim.NewKernel()
	c := New(k, sim.Millisecond, duplicateTap{extra: 10 * sim.Millisecond})
	var times []sim.Time
	c.Attach(Prover, func(Message) { times = append(times, k.Now()) })
	c.Send(Verifier, Prover, []byte("x"))
	k.Run()
	if len(times) != 2 {
		t.Fatalf("delivered %d copies, want 2", len(times))
	}
	if times[0] != sim.Millisecond || times[1] != 11*sim.Millisecond {
		t.Fatalf("delivery times %v, want [1ms 11ms]", times)
	}
}

func TestInjectBypassesTap(t *testing.T) {
	k := sim.NewKernel()
	c := New(k, sim.Millisecond, dropTap{}) // tap drops everything sent...
	var got []Message
	c.Attach(Prover, func(m Message) { got = append(got, m) })
	c.Inject(Message{From: Verifier, To: Prover, Payload: []byte("forged")}, 5*sim.Millisecond)
	k.Run()
	if len(got) != 1 {
		t.Fatalf("injected frame not delivered (%d)", len(got))
	}
	if !got[0].Injected {
		t.Fatal("injected frame not marked")
	}
	if k.Now() != 6*sim.Millisecond {
		t.Fatalf("delivered at %v, want 6 ms (5 ms delay + 1 ms latency)", k.Now())
	}
}

func TestMessageCloneIsDeep(t *testing.T) {
	m := Message{Payload: []byte{1, 2, 3}}
	c := m.Clone()
	c.Payload[0] = 9
	if m.Payload[0] != 1 {
		t.Fatal("Clone aliases the payload")
	}
}

func TestSenderBufferNotAliased(t *testing.T) {
	// Mutating the caller's buffer after Send must not affect delivery.
	k := sim.NewKernel()
	c := New(k, 0, nil)
	var got []byte
	c.Attach(Prover, func(m Message) { got = m.Payload })
	buf := []byte{1, 2, 3}
	c.Send(Verifier, Prover, buf)
	buf[0] = 99
	k.Run()
	if got[0] != 1 {
		t.Fatal("delivered payload aliases the sender's buffer")
	}
}

func TestMessageIDsAreUnique(t *testing.T) {
	k := sim.NewKernel()
	c := New(k, 0, nil)
	seen := map[uint64]bool{}
	c.Attach(Prover, func(m Message) {
		if seen[m.ID] {
			t.Errorf("duplicate message ID %d", m.ID)
		}
		seen[m.ID] = true
	})
	for i := 0; i < 10; i++ {
		c.Send(Verifier, Prover, []byte{byte(i)})
	}
	c.Inject(Message{To: Prover}, 0)
	k.Run()
	if len(seen) != 11 {
		t.Fatalf("saw %d IDs, want 11", len(seen))
	}
}

func TestBidirectional(t *testing.T) {
	k := sim.NewKernel()
	c := New(k, sim.Millisecond, nil)
	c.Attach(Prover, func(m Message) {
		c.Send(Prover, Verifier, append([]byte("re:"), m.Payload...))
	})
	var reply []byte
	c.Attach(Verifier, func(m Message) { reply = m.Payload })
	c.Send(Verifier, Prover, []byte("ping"))
	k.Run()
	if string(reply) != "re:ping" {
		t.Fatalf("reply = %q", reply)
	}
	if k.Now() != 2*sim.Millisecond {
		t.Fatalf("round trip took %v, want 2 ms", k.Now())
	}
}

func TestLossTapDropsEveryNth(t *testing.T) {
	k := sim.NewKernel()
	tap := &LossTap{DropEvery: 3}
	c := New(k, 0, tap)
	got := 0
	c.Attach(Prover, func(Message) { got++ })
	for i := 0; i < 9; i++ {
		c.Send(Verifier, Prover, []byte{byte(i)})
	}
	k.Run()
	if got != 6 || tap.Dropped != 3 {
		t.Fatalf("delivered %d, dropped %d — want 6/3", got, tap.Dropped)
	}
}

func TestLossTapMatchAndInner(t *testing.T) {
	k := sim.NewKernel()
	inner := &Interceptor2{}
	tap := &LossTap{
		DropEvery: 2,
		Match:     func(m Message) bool { return m.To == Prover },
		Inner:     inner,
	}
	c := New(k, 0, tap)
	proverGot, verifierGot := 0, 0
	c.Attach(Prover, func(Message) { proverGot++ })
	c.Attach(Verifier, func(Message) { verifierGot++ })
	for i := 0; i < 4; i++ {
		c.Send(Verifier, Prover, []byte{1})
		c.Send(Prover, Verifier, []byte{2})
	}
	k.Run()
	if proverGot != 2 {
		t.Fatalf("prover got %d, want 2 (50%% loss)", proverGot)
	}
	if verifierGot != 4 {
		t.Fatalf("verifier got %d, want 4 (unmatched frames lossless)", verifierGot)
	}
	// Surviving frames went through the inner tap.
	if inner.Seen != 6 {
		t.Fatalf("inner tap saw %d frames, want 6", inner.Seen)
	}
}

// Interceptor2 is a counting passthrough used to verify tap composition.
type Interceptor2 struct{ Seen int }

func (i *Interceptor2) OnSend(msg Message, now sim.Time) []Delivery {
	i.Seen++
	return []Delivery{{Msg: msg}}
}

func TestLossTapBelowTwoDropsNothing(t *testing.T) {
	k := sim.NewKernel()
	tap := &LossTap{DropEvery: 1}
	c := New(k, 0, tap)
	got := 0
	c.Attach(Prover, func(Message) { got++ })
	for i := 0; i < 5; i++ {
		c.Send(Verifier, Prover, nil)
	}
	k.Run()
	if got != 5 || tap.Dropped != 0 {
		t.Fatalf("DropEvery=1 dropped frames: got %d, dropped %d", got, tap.Dropped)
	}
}

func TestDropCausesAreSplitNotConflated(t *testing.T) {
	// Regression: both drop causes used to share one counter, so a
	// detached endpoint inflated the apparent tap/loss rate. The two
	// causes must now be attributed separately, with Dropped() as their
	// sum — and the LossTap's own counter must mirror the channel's
	// TapDropped (one count per layer), never add to it.
	k := sim.NewKernel()
	tap := &LossTap{DropEvery: 2}
	c := New(k, 0, tap)
	c.Attach(Prover, func(Message) {})
	// 4 frames toward the attached prover: 2 survive, 2 die in the tap.
	for i := 0; i < 4; i++ {
		c.Send(Verifier, Prover, []byte{byte(i)})
	}
	// 1 frame toward the never-attached verifier that survives the tap
	// (frame 5 of DropEvery=2 is a keeper) but has no handler.
	c.Send(Prover, Verifier, []byte("orphan"))
	k.Run()

	if c.TapDropped != 2 {
		t.Fatalf("TapDropped = %d, want 2", c.TapDropped)
	}
	if c.Undeliverable != 1 {
		t.Fatalf("Undeliverable = %d, want 1", c.Undeliverable)
	}
	if c.Dropped() != 3 {
		t.Fatalf("Dropped() = %d, want 3 (sum of both causes)", c.Dropped())
	}
	if c.Delivered != 2 {
		t.Fatalf("Delivered = %d, want 2", c.Delivered)
	}
	// The per-tap attribution equals the channel's tap-level count: the
	// same frame is never accounted twice across the two layers.
	if uint64(tap.Dropped) != c.TapDropped {
		t.Fatalf("LossTap.Dropped = %d but Channel.TapDropped = %d — double accounting",
			tap.Dropped, c.TapDropped)
	}
	// Conservation: every sent frame is delivered or accounted to exactly
	// one drop cause.
	if c.Sent != c.Delivered+c.Dropped() {
		t.Fatalf("conservation broken: sent=%d delivered=%d dropped=%d",
			c.Sent, c.Delivered, c.Dropped())
	}
}

func TestNegativeLatencyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative latency did not panic")
		}
	}()
	New(sim.NewKernel(), -1, nil)
}
