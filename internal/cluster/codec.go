package cluster

import (
	"encoding/binary"
	"errors"

	"proverattest/internal/crypto/sha1"
	"proverattest/internal/protocol"
)

// Cluster frames ride the same length-prefixed transport as attestation
// frames but under their own magic bytes, all unused by
// internal/protocol, so protocol.ClassifyFrame sees every one of them as
// FrameUnknown and the attestation gate never confuses control traffic
// with evidence. Layout mirrors the protocol package: magic 0x41 'A',
// a kind byte, a version byte, then little-endian fields.
//
//	redirect    0x41 0x4C 'L'  — daemon → agent: dial your owner instead
//	peer hello  0x41 0x4B 'K'  — daemon → daemon: first frame of a peer link
//	state req   0x41 0x51 'Q'  — new owner asks: hand over this device
//	state resp  0x41 0x54 'T'  — reply, with the state if it was held
//	state push  0x41 0x55 'U'  — owner → successor freshness replication
//	ping/pong   0x41 0x49 'I' / 0x41 0x4F 'O'
//
// Trust model: cluster frames are session-layer control, exactly like the
// hello — unauthenticated. A forged redirect can bounce an agent to
// another daemon (which will re-route it correctly or refuse it); a
// forged state frame is only accepted on a connection that opened with a
// peer hello on a daemon configured with peers. Neither can forge
// evidence or move a device's freshness backwards: state imports only
// ever jump streams forward (see Snapshot.JumpForReplica) and the
// attestation gate still authenticates every response against K_Attest.
const (
	magicA = 0x41

	kindRedirect  = 0x4C
	kindPeerHello = 0x4B
	kindStateReq  = 0x51
	kindStateResp = 0x54
	kindStatePush = 0x55
	kindPing      = 0x49
	kindPong      = 0x4F

	codecVersion = 1
)

// PeerKind classifies a frame arriving on a peer link.
type PeerKind int

const (
	PeerUnknown PeerKind = iota
	PeerHello
	PeerStateReq
	PeerStateResp
	PeerStatePush
	PeerPing
	PeerPong
)

// ClassifyPeer returns the peer-frame kind, PeerUnknown for anything that
// is not a well-versioned cluster frame.
func ClassifyPeer(frame []byte) PeerKind {
	if len(frame) < 3 || frame[0] != magicA || frame[2] != codecVersion {
		return PeerUnknown
	}
	switch frame[1] {
	case kindPeerHello:
		return PeerHello
	case kindStateReq:
		return PeerStateReq
	case kindStateResp:
		return PeerStateResp
	case kindStatePush:
		return PeerStatePush
	case kindPing:
		return PeerPing
	case kindPong:
		return PeerPong
	}
	return PeerUnknown
}

// IsPeerHello reports whether frame opens a peer link. The server checks
// this on a connection's first frame before trying protocol.DecodeHello.
func IsPeerHello(frame []byte) bool {
	return len(frame) >= 3 && frame[0] == magicA && frame[1] == kindPeerHello && frame[2] == codecVersion
}

var (
	errShort   = errors.New("cluster: frame truncated")
	errMagic   = errors.New("cluster: bad magic")
	errVersion = errors.New("cluster: unsupported version")
	errName    = errors.New("cluster: bad name length")
)

// appendString appends a u16 length prefix and the string bytes.
func appendString(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

// readString consumes one length-prefixed string, returning the remainder.
func readString(buf []byte) (string, []byte, error) {
	if len(buf) < 2 {
		return "", nil, errShort
	}
	n := int(binary.LittleEndian.Uint16(buf))
	buf = buf[2:]
	if n > len(buf) {
		return "", nil, errShort
	}
	return string(buf[:n]), buf[n:], nil
}

func header(kind byte) []byte {
	return []byte{magicA, kind, codecVersion}
}

func checkHeader(frame []byte, kind byte) ([]byte, error) {
	if len(frame) < 3 {
		return nil, errShort
	}
	if frame[0] != magicA || frame[1] != kind {
		return nil, errMagic
	}
	if frame[2] != codecVersion {
		return nil, errVersion
	}
	return frame[3:], nil
}

// EncodeRedirect tells an agent which daemon owns its device: the owner's
// name (for the agent's log line) and the address to dial.
func EncodeRedirect(owner, addr string) []byte {
	out := header(kindRedirect)
	out = appendString(out, owner)
	out = appendString(out, addr)
	return out
}

// DecodeRedirect recognises a redirect frame. The leading ok==false exits
// are pure byte compares so a non-redirect frame costs the agent's read
// loop two comparisons, not an error allocation.
func DecodeRedirect(frame []byte) (owner, addr string, ok bool) {
	if len(frame) < 3 || frame[0] != magicA || frame[1] != kindRedirect || frame[2] != codecVersion {
		return "", "", false
	}
	var err error
	rest := frame[3:]
	if owner, rest, err = readString(rest); err != nil {
		return "", "", false
	}
	if addr, _, err = readString(rest); err != nil {
		return "", "", false
	}
	return owner, addr, true
}

// EncodePeerHello opens a peer link, naming the dialling daemon.
func EncodePeerHello(name string) []byte {
	return appendString(header(kindPeerHello), name)
}

// DecodePeerHello returns the dialling daemon's name.
func DecodePeerHello(frame []byte) (string, error) {
	rest, err := checkHeader(frame, kindPeerHello)
	if err != nil {
		return "", err
	}
	name, _, err := readString(rest)
	if err != nil {
		return "", err
	}
	if name == "" {
		return "", errName
	}
	return name, nil
}

// EncodeStateReq asks the receiving daemon to hand over deviceID's
// verifier state (move semantics: a positive reply removes the device
// there).
func EncodeStateReq(deviceID string) []byte {
	return appendString(header(kindStateReq), deviceID)
}

// DecodeStateReq returns the requested device ID.
func DecodeStateReq(frame []byte) (string, error) {
	rest, err := checkHeader(frame, kindStateReq)
	if err != nil {
		return "", err
	}
	id, _, err := readString(rest)
	return id, err
}

// EncodePing and EncodePong are the peer-link liveness probe.
func EncodePing() []byte { return header(kindPing) }

// EncodePong answers a ping.
func EncodePong() []byte { return header(kindPong) }

// Snapshot is one device's transferable verifier-side state: the
// freshness/fast record (protocol.VerifierState) plus the stats
// aggregation state — the high-water base of completed counter epochs,
// the latest report, and the epoch count — so fleet aggregates stay
// monotonic when the device's accounting moves between daemons.
type Snapshot struct {
	State protocol.VerifierState

	StatsBase   protocol.StatsReport
	LastStats   protocol.StatsReport
	HaveLast    bool // LastStats holds a real report (not the zero value)
	StatsEpochs uint64
}

// FreshnessSlack is the forward jump JumpForReplica applies to the
// counter and nonce streams. A replica lags the owner by however many
// requests were issued after the last push; 2^16 is far beyond any
// plausible lag (pushes are enqueued on every issue) while consuming a
// negligible slice of the uint64 stream space.
const FreshnessSlack = 1 << 16

// JumpForReplica converts a replicated snapshot into one safe to import
// after the owner died without a live handoff. Both freshness streams are
// strictly monotone, so the unknown true position is bounded by
// replica + lag; jumping FreshnessSlack past the replica guarantees the
// new owner never re-issues a counter or nonce the device has seen. The
// fast-path record is dropped: it may be stale (the device's monitor
// epoch can have advanced past the replica), and a stale record must
// never re-arm — the device's next round is one full MAC that re-arms
// the fast path legitimately, the same cost as a daemon restart.
func (s Snapshot) JumpForReplica() Snapshot { return s.jumpForward() }

// JumpForRestart converts a journal-recovered snapshot into one safe to
// adopt after a crash with an under-synced journal (fsync interval/none,
// no clean-shutdown sentinel): the mirror of JumpForReplica for the
// persistence path. The journal lags the true stream position by at most
// the un-flushed tail, which FreshnessSlack dwarfs, so jumping both
// streams forward guarantees the restarted daemon never re-issues a
// counter or nonce the device has seen; the fast-path record is dropped
// for the same staleness reason and re-arms on the device's next full
// MAC. A cleanly-flushed (or per-record-fsynced) journal skips this jump
// and adopts live-exact.
func (s Snapshot) JumpForRestart() Snapshot { return s.jumpForward() }

func (s Snapshot) jumpForward() Snapshot {
	s.State.Counter += FreshnessSlack
	s.State.NonceSeq += FreshnessSlack
	s.State.HaveFast = false
	s.State.FastEpoch = 0
	s.State.FastDigest = [sha1.Size]byte{}
	return s
}

// Snapshot body flags.
const (
	flagHaveFast = 1 << 0
	flagHaveLast = 1 << 1
)

func appendSnapshot(dst []byte, snap *Snapshot) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, snap.State.Counter)
	dst = binary.LittleEndian.AppendUint64(dst, snap.State.NonceSeq)
	dst = binary.LittleEndian.AppendUint32(dst, snap.State.FastEpoch)
	var flags byte
	if snap.State.HaveFast {
		flags |= flagHaveFast
	}
	if snap.HaveLast {
		flags |= flagHaveLast
	}
	dst = append(dst, flags)
	dst = append(dst, snap.State.FastDigest[:]...)
	dst = binary.LittleEndian.AppendUint64(dst, snap.StatsEpochs)
	// The two stats blocks reuse the protocol package's own stats-frame
	// codec (96 bytes each), strict decode included.
	dst = snap.StatsBase.AppendEncode(dst)
	dst = snap.LastStats.AppendEncode(dst)
	return dst
}

const statsFrameLen = 96 // protocol stats frame: 8-byte header + 11 u64 fields

func readSnapshot(buf []byte) (Snapshot, error) {
	var snap Snapshot
	const fixed = 8 + 8 + 4 + 1 + sha1.Size + 8
	if len(buf) != fixed+2*statsFrameLen {
		return snap, errShort
	}
	snap.State.Counter = binary.LittleEndian.Uint64(buf)
	snap.State.NonceSeq = binary.LittleEndian.Uint64(buf[8:])
	snap.State.FastEpoch = binary.LittleEndian.Uint32(buf[16:])
	flags := buf[20]
	snap.State.HaveFast = flags&flagHaveFast != 0
	snap.HaveLast = flags&flagHaveLast != 0
	copy(snap.State.FastDigest[:], buf[21:21+sha1.Size])
	snap.StatsEpochs = binary.LittleEndian.Uint64(buf[21+sha1.Size:])
	buf = buf[fixed:]
	if err := protocol.DecodeStatsReportInto(buf[:statsFrameLen], &snap.StatsBase); err != nil {
		return snap, err
	}
	if err := protocol.DecodeStatsReportInto(buf[statsFrameLen:], &snap.LastStats); err != nil {
		return snap, err
	}
	return snap, nil
}

// EncodeStateResp answers a state request. snap == nil means the device
// was not held here.
func EncodeStateResp(deviceID string, snap *Snapshot) []byte {
	out := header(kindStateResp)
	if snap == nil {
		out = append(out, 0)
		return appendString(out, deviceID)
	}
	out = append(out, 1)
	out = appendString(out, deviceID)
	return appendSnapshot(out, snap)
}

// DecodeStateResp returns the device ID and, when the peer held it, the
// snapshot (nil otherwise).
func DecodeStateResp(frame []byte) (string, *Snapshot, error) {
	rest, err := checkHeader(frame, kindStateResp)
	if err != nil {
		return "", nil, err
	}
	if len(rest) < 1 {
		return "", nil, errShort
	}
	found := rest[0] == 1
	id, rest, err := readString(rest[1:])
	if err != nil {
		return "", nil, err
	}
	if !found {
		return id, nil, nil
	}
	snap, err := readSnapshot(rest)
	if err != nil {
		return "", nil, err
	}
	return id, &snap, nil
}

// EncodeStatePush replicates a device's snapshot to its ring successor.
func EncodeStatePush(deviceID string, snap *Snapshot) []byte {
	return AppendStatePush(nil, deviceID, snap)
}

// AppendStatePush is the append-style EncodeStatePush: it appends the
// state-push frame to dst and returns the extended slice. The journal
// backend reuses this exact framing for its records, so a journal record
// body and a peer-link push are byte-identical and one decoder serves
// both.
func AppendStatePush(dst []byte, deviceID string, snap *Snapshot) []byte {
	dst = append(dst, magicA, kindStatePush, codecVersion)
	dst = appendString(dst, deviceID)
	return appendSnapshot(dst, snap)
}

// DecodeStatePush returns the pushed device ID and snapshot.
func DecodeStatePush(frame []byte) (string, Snapshot, error) {
	rest, err := checkHeader(frame, kindStatePush)
	if err != nil {
		return "", Snapshot{}, err
	}
	id, rest, err := readString(rest)
	if err != nil {
		return "", Snapshot{}, err
	}
	snap, err := readSnapshot(rest)
	return id, snap, err
}
