package cluster

import (
	"testing"

	"proverattest/internal/protocol"
)

func sampleSnapshot() Snapshot {
	var snap Snapshot
	snap.State.Counter = 12345
	snap.State.NonceSeq = 67890
	snap.State.FastEpoch = 7
	snap.State.HaveFast = true
	for i := range snap.State.FastDigest {
		snap.State.FastDigest[i] = byte(i * 3)
	}
	snap.StatsEpochs = 2
	snap.StatsBase = protocol.StatsReport{Received: 100, Measurements: 40, AuthRejected: 9}
	snap.LastStats = protocol.StatsReport{Received: 17, FastResponses: 5, ActiveCycles: 1 << 40}
	snap.HaveLast = true
	return snap
}

func TestRedirectRoundTrip(t *testing.T) {
	frame := EncodeRedirect("attestd-2", "10.0.0.2:7944")
	owner, addr, ok := DecodeRedirect(frame)
	if !ok || owner != "attestd-2" || addr != "10.0.0.2:7944" {
		t.Fatalf("redirect round trip = (%q, %q, %v)", owner, addr, ok)
	}
	// Attestation frames must never parse as redirects, and vice versa:
	// the magic spaces are disjoint.
	if _, _, ok := DecodeRedirect([]byte{0x41, 0x52, 1, 0, 0}); ok {
		t.Error("an AttReq-magic frame decoded as a redirect")
	}
	if protocol.ClassifyFrame(frame) != protocol.FrameUnknown {
		t.Error("redirect frame classified as an attestation frame kind")
	}
}

func TestPeerHelloRoundTrip(t *testing.T) {
	frame := EncodePeerHello("attestd-0")
	if !IsPeerHello(frame) {
		t.Fatal("IsPeerHello rejected an encoded peer hello")
	}
	name, err := DecodePeerHello(frame)
	if err != nil || name != "attestd-0" {
		t.Fatalf("peer hello round trip = (%q, %v)", name, err)
	}
	if IsPeerHello([]byte{0x41, 0x48, 1}) {
		t.Error("a device-hello frame passed IsPeerHello")
	}
	if _, err := DecodePeerHello(EncodePeerHello("")); err == nil {
		t.Error("empty peer name decoded without error")
	}
}

func TestStateReqRoundTrip(t *testing.T) {
	frame := EncodeStateReq("dev-42")
	id, err := DecodeStateReq(frame)
	if err != nil || id != "dev-42" {
		t.Fatalf("state req round trip = (%q, %v)", id, err)
	}
}

func TestStateRespRoundTrip(t *testing.T) {
	snap := sampleSnapshot()
	frame := EncodeStateResp("dev-42", &snap)
	id, got, err := DecodeStateResp(frame)
	if err != nil || id != "dev-42" || got == nil {
		t.Fatalf("state resp round trip = (%q, %v, %v)", id, got, err)
	}
	if *got != snap {
		t.Fatalf("snapshot round trip mismatch:\n got %+v\nwant %+v", *got, snap)
	}

	// Negative reply: found flag off, no body.
	id, got, err = DecodeStateResp(EncodeStateResp("dev-43", nil))
	if err != nil || id != "dev-43" || got != nil {
		t.Fatalf("negative state resp = (%q, %v, %v)", id, got, err)
	}
}

func TestStatePushRoundTrip(t *testing.T) {
	snap := sampleSnapshot()
	frame := EncodeStatePush("dev-7", &snap)
	id, got, err := DecodeStatePush(frame)
	if err != nil || id != "dev-7" {
		t.Fatalf("state push round trip = (%q, %v)", id, err)
	}
	if got != snap {
		t.Fatalf("pushed snapshot mismatch:\n got %+v\nwant %+v", got, snap)
	}
}

func TestClassifyPeer(t *testing.T) {
	cases := []struct {
		frame []byte
		want  PeerKind
	}{
		{EncodePeerHello("n"), PeerHello},
		{EncodeStateReq("d"), PeerStateReq},
		{EncodeStateResp("d", nil), PeerStateResp},
		{EncodePing(), PeerPing},
		{EncodePong(), PeerPong},
		{[]byte{0x41, 0x52, 1}, PeerUnknown},       // AttReq magic
		{[]byte{0x41, 0x4B, 9}, PeerUnknown},       // wrong version
		{[]byte{0x42, 0x4B, 1}, PeerUnknown},       // wrong leading magic
		{nil, PeerUnknown},
		{[]byte{0x41}, PeerUnknown},
	}
	snap := sampleSnapshot()
	cases = append(cases, struct {
		frame []byte
		want  PeerKind
	}{EncodeStatePush("d", &snap), PeerStatePush})
	for i, tc := range cases {
		if got := ClassifyPeer(tc.frame); got != tc.want {
			t.Errorf("case %d: ClassifyPeer = %v, want %v", i, got, tc.want)
		}
	}
}

// TestDecodeTruncated drives every decoder over every prefix of a valid
// frame: truncation must produce an error (or ok=false), never a panic or
// a silently wrong value.
func TestDecodeTruncated(t *testing.T) {
	snap := sampleSnapshot()
	frames := map[string][]byte{
		"redirect":  EncodeRedirect("n", "a:1"),
		"hello":     EncodePeerHello("n"),
		"stateReq":  EncodeStateReq("d"),
		"stateResp": EncodeStateResp("d", &snap),
		"statePush": EncodeStatePush("d", &snap),
	}
	for name, frame := range frames {
		for cut := 0; cut < len(frame); cut++ {
			short := frame[:cut]
			switch name {
			case "redirect":
				if _, _, ok := DecodeRedirect(short); ok {
					t.Fatalf("%s truncated at %d decoded ok", name, cut)
				}
			case "hello":
				if _, err := DecodePeerHello(short); err == nil {
					t.Fatalf("%s truncated at %d decoded without error", name, cut)
				}
			case "stateReq":
				if _, err := DecodeStateReq(short); err == nil {
					t.Fatalf("%s truncated at %d decoded without error", name, cut)
				}
			case "stateResp":
				if _, _, err := DecodeStateResp(short); err == nil {
					t.Fatalf("%s truncated at %d decoded without error", name, cut)
				}
			case "statePush":
				if _, _, err := DecodeStatePush(short); err == nil {
					t.Fatalf("%s truncated at %d decoded without error", name, cut)
				}
			}
		}
	}
}

func TestJumpForReplica(t *testing.T) {
	snap := sampleSnapshot()
	jumped := snap.JumpForReplica()
	if jumped.State.Counter != snap.State.Counter+FreshnessSlack {
		t.Errorf("counter = %d, want %d", jumped.State.Counter, snap.State.Counter+FreshnessSlack)
	}
	if jumped.State.NonceSeq != snap.State.NonceSeq+FreshnessSlack {
		t.Errorf("nonceSeq = %d, want %d", jumped.State.NonceSeq, snap.State.NonceSeq+FreshnessSlack)
	}
	if jumped.State.HaveFast || jumped.State.FastEpoch != 0 {
		t.Error("replica import kept a possibly-stale fast record")
	}
	if jumped.StatsBase != snap.StatsBase || jumped.LastStats != snap.LastStats || !jumped.HaveLast {
		t.Error("stats state must survive the jump untouched")
	}
	// The original is untouched (value semantics).
	if !snap.State.HaveFast {
		t.Error("JumpForReplica mutated its receiver")
	}
}
