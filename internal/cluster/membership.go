package cluster

import (
	"sort"
	"sync"
)

// Member is one attestd daemon in the cluster: a stable name (the ring
// hashes names, so renaming a daemon moves its devices) and the address
// agents are redirected to and peers dial for state transfer.
type Member struct {
	Name string
	Addr string
}

// Membership is the cluster view one daemon routes by: the configured
// member set minus the members currently marked down. Every mutation
// rebuilds an immutable Ring over the live members, so ownership lookups
// are a read-lock and a binary search. It is safe for concurrent use and
// may be shared — in-process clusters (tests, the loadgen ladder) hand
// one Membership to every daemon so a single MarkDown is the moral
// equivalent of every prober noticing the death at once.
type Membership struct {
	mu      sync.RWMutex
	vnodes  int
	members map[string]Member
	down    map[string]bool
	ring    *Ring
	version uint64
}

// NewMembership builds the view with every member live. vnodes <= 0 uses
// DefaultVnodes.
func NewMembership(vnodes int, members ...Member) *Membership {
	m := &Membership{
		vnodes:  vnodes,
		members: make(map[string]Member, len(members)),
		down:    make(map[string]bool),
	}
	for _, mem := range members {
		m.members[mem.Name] = mem
	}
	m.rebuild()
	return m
}

// rebuild recomputes the ring over live members. Callers hold mu.
func (m *Membership) rebuild() {
	names := make([]string, 0, len(m.members))
	for name := range m.members {
		if !m.down[name] {
			names = append(names, name)
		}
	}
	m.ring = NewRing(m.vnodes, names)
	m.version++
}

// Add introduces (or re-addresses) a member, live, and rebalances the
// ring. Adding member N+1 moves ~1/(N+1) of the keyspace to it and
// nothing between the incumbents (pinned by TestRingRebalanceMinimality).
func (m *Membership) Add(mem Member) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.members[mem.Name] = mem
	delete(m.down, mem.Name)
	m.rebuild()
}

// MarkDown removes name from the live set (its keyspace falls to each
// key's successor). Unknown names are ignored.
func (m *Membership) MarkDown(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.members[name]; !ok || m.down[name] {
		return
	}
	m.down[name] = true
	m.rebuild()
}

// MarkUp returns a down member to the live set.
func (m *Membership) MarkUp(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.members[name]; !ok || !m.down[name] {
		return
	}
	delete(m.down, name)
	m.rebuild()
}

// Owner returns the live member owning key.
func (m *Membership) Owner(key string) (Member, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	name, ok := m.ring.Owner(key)
	if !ok {
		return Member{}, false
	}
	return m.members[name], true
}

// Successor returns the member that would own key if the current owner
// left the ring — the replication target for key's verifier state. ok is
// false when the ring has fewer than two live members.
func (m *Membership) Successor(key string) (Member, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	owners := m.ring.OwnersN(key, 2)
	if len(owners) < 2 {
		return Member{}, false
	}
	return m.members[owners[1]], true
}

// Alive returns the live members, sorted by name.
func (m *Membership) Alive() []Member {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]Member, 0, len(m.members))
	for name, mem := range m.members {
		if !m.down[name] {
			out = append(out, mem)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup returns the member record for name, live or down.
func (m *Membership) Lookup(name string) (Member, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	mem, ok := m.members[name]
	return mem, ok
}

// Version increments on every membership change; pollers use it to notice
// rebalances without diffing member lists.
func (m *Membership) Version() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.version
}
