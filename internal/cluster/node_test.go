package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"proverattest/internal/transport"
)

// fakePeer is a minimal daemon-side peer loop: it accepts links, verifies
// the peer hello, answers state requests from a held device map, records
// pushes, and answers pings. It is what internal/server implements for
// real; here it isolates the Node client side.
type fakePeer struct {
	t  *testing.T
	ln net.Listener

	mu      sync.Mutex
	held    map[string]Snapshot
	pushes  map[string]Snapshot
	hellos  []string
	pings   int
	dropNow bool // refuse connections (simulated death)
	conns   map[net.Conn]struct{}
}

// setDead flips the peer's availability; dying also severs established
// links (a dead daemon holds no sockets open).
func (p *fakePeer) setDead(dead bool) {
	p.mu.Lock()
	p.dropNow = dead
	var open []net.Conn
	if dead {
		for nc := range p.conns {
			open = append(open, nc)
		}
	}
	p.mu.Unlock()
	for _, nc := range open {
		nc.Close()
	}
}

func newFakePeer(t *testing.T) *fakePeer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &fakePeer{
		t: t, ln: ln,
		held:   make(map[string]Snapshot),
		pushes: make(map[string]Snapshot),
		conns:  make(map[net.Conn]struct{}),
	}
	go p.acceptLoop()
	t.Cleanup(func() { ln.Close() })
	return p
}

func (p *fakePeer) addr() string { return p.ln.Addr().String() }

func (p *fakePeer) hold(id string, snap Snapshot) {
	p.mu.Lock()
	p.held[id] = snap
	p.mu.Unlock()
}

func (p *fakePeer) pushed(id string) (Snapshot, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	snap, ok := p.pushes[id]
	return snap, ok
}

func (p *fakePeer) acceptLoop() {
	for {
		nc, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		drop := p.dropNow
		p.mu.Unlock()
		if drop {
			nc.Close()
			continue
		}
		go p.serve(nc)
	}
}

func (p *fakePeer) serve(nc net.Conn) {
	p.mu.Lock()
	p.conns[nc] = struct{}{}
	p.mu.Unlock()
	tc := transport.NewConn(nc, transport.Options{ReadTimeout: 2 * time.Second, WriteTimeout: 2 * time.Second})
	defer func() {
		tc.Close()
		p.mu.Lock()
		delete(p.conns, nc)
		p.mu.Unlock()
	}()
	first, err := tc.Recv()
	if err != nil {
		return
	}
	name, err := DecodePeerHello(first)
	if err != nil {
		p.t.Errorf("fake peer: first frame was not a peer hello: %v", err)
		return
	}
	p.mu.Lock()
	p.hellos = append(p.hellos, name)
	p.mu.Unlock()
	for {
		frame, err := tc.Recv()
		if err != nil {
			return
		}
		switch ClassifyPeer(frame) {
		case PeerStateReq:
			id, err := DecodeStateReq(frame)
			if err != nil {
				p.t.Errorf("fake peer: bad state req: %v", err)
				return
			}
			p.mu.Lock()
			snap, ok := p.held[id]
			if ok {
				delete(p.held, id) // move semantics
			}
			p.mu.Unlock()
			var resp []byte
			if ok {
				resp = EncodeStateResp(id, &snap)
			} else {
				resp = EncodeStateResp(id, nil)
			}
			if err := tc.Send(resp); err != nil {
				return
			}
		case PeerStatePush:
			id, snap, err := DecodeStatePush(frame)
			if err != nil {
				p.t.Errorf("fake peer: bad state push: %v", err)
				return
			}
			p.mu.Lock()
			p.pushes[id] = snap
			p.mu.Unlock()
		case PeerPing:
			p.mu.Lock()
			p.pings++
			p.mu.Unlock()
			if err := tc.Send(EncodePong()); err != nil {
				return
			}
		default:
			p.t.Errorf("fake peer: unexpected frame kind %v", ClassifyPeer(frame))
			return
		}
	}
}

func threeNodeView(t *testing.T, peers ...*fakePeer) (*Membership, *Node) {
	t.Helper()
	members := []Member{{Name: "self", Addr: "127.0.0.1:0"}}
	for i, p := range peers {
		members = append(members, Member{Name: fmt.Sprintf("peer-%d", i), Addr: p.addr()})
	}
	ms := NewMembership(DefaultVnodes, members...)
	n, err := NewNode("self", ms, NodeOptions{CallTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return ms, n
}

func TestFetchStateFirstPositiveWins(t *testing.T) {
	p0, p1 := newFakePeer(t), newFakePeer(t)
	_, n := threeNodeView(t, p0, p1)

	want := sampleSnapshot()
	p1.hold("dev-9", want)

	got, ok := n.FetchState("dev-9")
	if !ok || got != want {
		t.Fatalf("FetchState = (%+v, %v), want the held snapshot", got, ok)
	}
	// Move semantics: a second fetch finds nothing anywhere.
	if _, ok := n.FetchState("dev-9"); ok {
		t.Fatal("second FetchState still found the handed-off device")
	}
	if f, _, _ := n.Counters(); f != 1 {
		t.Fatalf("fetch counter = %d, want 1", f)
	}
}

func TestFetchStateSkipsDeadPeer(t *testing.T) {
	dead, live := newFakePeer(t), newFakePeer(t)
	dead.setDead(true)

	_, n := threeNodeView(t, dead, live)
	want := sampleSnapshot()
	live.hold("dev-1", want)

	got, ok := n.FetchState("dev-1")
	if !ok || got != want {
		t.Fatalf("FetchState through a dead peer = (%v, %v)", ok, got)
	}
}

func TestReplicatePushesToSuccessor(t *testing.T) {
	p0, p1 := newFakePeer(t), newFakePeer(t)
	ms, n := threeNodeView(t, p0, p1)

	// Pick a device this node owns, so its successor is one of the peers.
	var dev string
	for i := 0; i < 10_000; i++ {
		id := fmt.Sprintf("dev-%d", i)
		if n.Owns(id) {
			dev = id
			break
		}
	}
	if dev == "" {
		t.Fatal("no owned device found")
	}
	succ, ok := ms.Successor(dev)
	if !ok || succ.Name == "self" {
		t.Fatalf("successor = %+v, %v", succ, ok)
	}

	want := sampleSnapshot()
	n.BindSource(func(id string) (Snapshot, bool) {
		if id != dev {
			return Snapshot{}, false
		}
		return want, true
	})
	n.Replicate(dev)

	target := p0
	if succ.Name == "peer-1" {
		target = p1
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if snap, ok := target.pushed(dev); ok {
			if snap != want {
				t.Fatalf("pushed snapshot = %+v, want %+v", snap, want)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replication push never arrived at the successor")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The replica round-trips through the holder API with move semantics.
	snap, _ := target.pushed(dev)
	n.StoreReplica(dev, snap)
	if n.ReplicasHeld() != 1 {
		t.Fatalf("ReplicasHeld = %d, want 1", n.ReplicasHeld())
	}
	if got, ok := n.TakeReplica(dev); !ok || got != want {
		t.Fatalf("TakeReplica = (%+v, %v)", got, ok)
	}
	if _, ok := n.TakeReplica(dev); ok {
		t.Fatal("TakeReplica returned the same replica twice")
	}
}

// TestReplicateConcurrent drives the coalescing queue from many
// goroutines while fetches run — the race-detector workout for the peer
// client side.
func TestReplicateConcurrent(t *testing.T) {
	p0, p1 := newFakePeer(t), newFakePeer(t)
	_, n := threeNodeView(t, p0, p1)
	n.BindSource(func(id string) (Snapshot, bool) { return sampleSnapshot(), true })

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				n.Replicate(fmt.Sprintf("dev-%d-%d", g, i))
				if i%10 == 0 {
					n.FetchState(fmt.Sprintf("missing-%d-%d", g, i))
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestProberMarksDownAndUp(t *testing.T) {
	p := newFakePeer(t)
	ms, n := threeNodeView(t, p)
	n.StartProber(20*time.Millisecond, 2)

	waitFor := func(cond func() bool, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	waitFor(func() bool {
		p.mu.Lock()
		defer p.mu.Unlock()
		return p.pings >= 1
	}, "first ping")

	p.setDead(true)
	waitFor(func() bool { return len(ms.Alive()) == 1 }, "peer marked down")

	p.setDead(false)
	waitFor(func() bool { return len(ms.Alive()) == 2 }, "peer marked back up")
}

func TestNewNodeRejectsUnknownSelf(t *testing.T) {
	ms := NewMembership(0, Member{Name: "a", Addr: "x"})
	if _, err := NewNode("nope", ms, NodeOptions{}); err == nil {
		t.Fatal("NewNode accepted a self outside the membership")
	}
}

var errDialRefused = errors.New("dial refused")

func TestFetchStateAllPeersDead(t *testing.T) {
	ms := NewMembership(0,
		Member{Name: "self", Addr: "x"},
		Member{Name: "other", Addr: "y"})
	n, err := NewNode("self", ms, NodeOptions{
		Dial: func(addr string) (net.Conn, error) { return nil, errDialRefused },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if _, ok := n.FetchState("dev"); ok {
		t.Fatal("FetchState succeeded with every peer unreachable")
	}
}
