package cluster

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"proverattest/internal/transport"
)

// Dialer opens a connection to a peer address. The default is a TCP dial
// with a short timeout; tests inject pipes or failures.
type Dialer func(addr string) (net.Conn, error)

// NodeOptions tunes a Node.
type NodeOptions struct {
	// Dial opens peer connections (default: 2 s TCP dial).
	Dial Dialer
	// CallTimeout bounds one state-request round trip (default 2 s).
	CallTimeout time.Duration
	// PushQueue bounds the coalescing replication queue: how many devices
	// may have an un-pushed snapshot at once (default 1024). Overflow
	// drops the push — the replica just lags until the device's next
	// issue re-enqueues it, and the import-side FreshnessSlack absorbs
	// the lag.
	PushQueue int
}

// Node is one daemon's cluster identity: its name, its view of the
// membership, and the peer links it fetches and replicates device state
// over. internal/server owns exactly one (nil outside cluster mode).
type Node struct {
	self Member
	ms   *Membership
	opts NodeOptions

	// source reads a device's current snapshot out of the owning server;
	// bound by the server at construction (BindSource).
	source func(deviceID string) (Snapshot, bool)

	mu       sync.Mutex
	links    map[string]*peerLink // by member name
	replicas map[string]Snapshot  // devices this node is successor for
	closed   bool

	// Replication queue: a coalescing set of device IDs with a dirty
	// snapshot, drained by one pusher goroutine. Enqueueing is a map
	// insert and a non-blocking signal — cheap enough for the issue path.
	pending map[string]struct{}
	kick    chan struct{}
	done    chan struct{}

	// Counters surfaced through the server's metrics.
	fetches       atomic.Uint64 // state fetches answered by a live peer
	pushesSent    atomic.Uint64
	pushesDropped atomic.Uint64
}

// NewNode builds the cluster identity for self, which must be in ms.
func NewNode(self string, ms *Membership, opts NodeOptions) (*Node, error) {
	mem, ok := ms.Lookup(self)
	if !ok {
		return nil, errors.New("cluster: self not in membership")
	}
	if opts.Dial == nil {
		opts.Dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 2*time.Second)
		}
	}
	if opts.CallTimeout <= 0 {
		opts.CallTimeout = 2 * time.Second
	}
	if opts.PushQueue <= 0 {
		opts.PushQueue = 1024
	}
	n := &Node{
		self:     mem,
		ms:       ms,
		opts:     opts,
		links:    make(map[string]*peerLink),
		replicas: make(map[string]Snapshot),
		pending:  make(map[string]struct{}),
		kick:     make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	go n.pushLoop()
	return n, nil
}

// Self returns this daemon's member record.
func (n *Node) Self() Member { return n.self }

// Membership returns the routing view (shared, safe for concurrent use).
func (n *Node) Membership() *Membership { return n.ms }

// BindSource installs the snapshot reader the replication pusher uses.
// The server calls this once before serving.
func (n *Node) BindSource(fn func(deviceID string) (Snapshot, bool)) { n.source = fn }

// Owns reports whether this daemon owns deviceID under the current view.
func (n *Node) Owns(deviceID string) bool {
	owner, ok := n.ms.Owner(deviceID)
	return ok && owner.Name == n.self.Name
}

// Route returns the owning member for a device this daemon does not own;
// redirect==false means this daemon should serve it (it owns the device,
// or the ring is empty/degenerate and local service beats refusing).
func (n *Node) Route(deviceID string) (owner Member, redirect bool) {
	mem, ok := n.ms.Owner(deviceID)
	if !ok || mem.Name == n.self.Name {
		return n.self, false
	}
	return mem, true
}

// Close shuts the pusher and every peer link.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	links := make([]*peerLink, 0, len(n.links))
	for _, l := range n.links {
		links = append(links, l)
	}
	n.mu.Unlock()
	close(n.done)
	for _, l := range links {
		l.close()
	}
}

// Counters reports the node's transfer counters: state fetches served by
// live peers, replication pushes sent, and pushes dropped at the queue
// bound.
func (n *Node) Counters() (fetches, pushes, dropped uint64) {
	return n.fetches.Load(), n.pushesSent.Load(), n.pushesDropped.Load()
}

// ReplicasHeld reports how many devices this node holds a replica for.
func (n *Node) ReplicasHeld() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.replicas)
}

// StoreReplica records a pushed snapshot (called by the server's peer
// loop on a state push).
func (n *Node) StoreReplica(deviceID string, snap Snapshot) {
	n.mu.Lock()
	n.replicas[deviceID] = snap
	n.mu.Unlock()
}

// TakeReplica removes and returns the replica for deviceID, if held. The
// caller imports it via JumpForReplica; taking (not peeking) keeps a
// second connection race from importing the same replica twice with
// different jumps.
func (n *Node) TakeReplica(deviceID string) (Snapshot, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	snap, ok := n.replicas[deviceID]
	if ok {
		delete(n.replicas, deviceID)
	}
	return snap, ok
}

// FetchState asks every live peer, in ring order from the device, to hand
// over deviceID's verifier state. The first positive answer wins — at
// most one peer holds the live state, because a handoff removes it there.
// Dead or unreachable peers are skipped; ok==false means no live peer
// held the device.
func (n *Node) FetchState(deviceID string) (Snapshot, bool) {
	for _, mem := range n.ms.Alive() {
		if mem.Name == n.self.Name {
			continue
		}
		resp, err := n.call(mem, EncodeStateReq(deviceID), PeerStateResp)
		if err != nil {
			continue
		}
		_, snap, err := DecodeStateResp(resp)
		if err != nil || snap == nil {
			continue
		}
		n.fetches.Add(1)
		return *snap, true
	}
	return Snapshot{}, false
}

// Replicate marks deviceID's snapshot dirty for replication to its ring
// successor. Called on the issue path, so it is an enqueue only: a map
// insert and a non-blocking channel signal, no I/O, no key lookup.
func (n *Node) Replicate(deviceID string) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	if len(n.pending) >= n.opts.PushQueue {
		if _, ok := n.pending[deviceID]; !ok {
			n.mu.Unlock()
			n.pushesDropped.Add(1)
			return
		}
	}
	n.pending[deviceID] = struct{}{}
	n.mu.Unlock()
	select {
	case n.kick <- struct{}{}:
	default:
	}
}

// pushLoop drains the dirty set, reading each device's current snapshot
// from the server and pushing it to the device's successor. Coalescing is
// free: a device issued ten times between drains is pushed once, with the
// latest snapshot.
func (n *Node) pushLoop() {
	for {
		select {
		case <-n.done:
			return
		case <-n.kick:
		}
		for {
			n.mu.Lock()
			var id string
			for d := range n.pending {
				id = d
				break
			}
			if id == "" {
				n.mu.Unlock()
				break
			}
			delete(n.pending, id)
			n.mu.Unlock()
			n.pushOne(id)
		}
	}
}

func (n *Node) pushOne(deviceID string) {
	if n.source == nil {
		return
	}
	snap, ok := n.source(deviceID)
	if !ok {
		return
	}
	succ, ok := n.ms.Successor(deviceID)
	if !ok || succ.Name == n.self.Name {
		return // single-daemon ring: nowhere to replicate
	}
	if err := n.send(succ, EncodeStatePush(deviceID, &snap)); err != nil {
		n.pushesDropped.Add(1)
		return
	}
	n.pushesSent.Add(1)
}

// StartProber marks peers down after `fails` consecutive failed pings
// `every` apart, and back up on the first success — the networked
// deployment's failure detector. In-process harnesses skip it and call
// MarkDown directly.
func (n *Node) StartProber(every time.Duration, fails int) {
	if every <= 0 {
		every = time.Second
	}
	if fails <= 0 {
		fails = 3
	}
	go func() {
		misses := make(map[string]int)
		ticker := time.NewTicker(every)
		defer ticker.Stop()
		for {
			select {
			case <-n.done:
				return
			case <-ticker.C:
			}
			for _, mem := range n.allPeers() {
				if _, err := n.call(mem, EncodePing(), PeerPong); err != nil {
					misses[mem.Name]++
					if misses[mem.Name] >= fails {
						n.ms.MarkDown(mem.Name)
					}
					continue
				}
				misses[mem.Name] = 0
				n.ms.MarkUp(mem.Name)
			}
		}
	}()
}

// allPeers returns every configured member except self, live or down (the
// prober must keep pinging down peers to notice recovery).
func (n *Node) allPeers() []Member {
	out := make([]Member, 0)
	for _, mem := range n.ms.Alive() {
		if mem.Name != n.self.Name {
			out = append(out, mem)
		}
	}
	// Down members still need probing for MarkUp.
	n.ms.mu.RLock()
	for name := range n.ms.down {
		if mem, ok := n.ms.members[name]; ok && name != n.self.Name {
			out = append(out, mem)
		}
	}
	n.ms.mu.RUnlock()
	return out
}

// peerLink is one persistent connection to a peer, serialised: the peer
// protocol is strict request/response (pushes elicit nothing), so one
// in-flight exchange at a time keeps responses trivially matched.
type peerLink struct {
	mu sync.Mutex
	tc *transport.Conn
}

func (n *Node) link(name string) *peerLink {
	n.mu.Lock()
	defer n.mu.Unlock()
	l, ok := n.links[name]
	if !ok {
		l = &peerLink{}
		n.links[name] = l
	}
	return l
}

func (l *peerLink) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.tc != nil {
		l.tc.Close()
		l.tc = nil
	}
}

// ensure dials and helloes the link if it is down. Callers hold l.mu.
func (l *peerLink) ensure(n *Node, addr string) error {
	if l.tc != nil {
		return nil
	}
	nc, err := n.opts.Dial(addr)
	if err != nil {
		return err
	}
	tc := transport.NewConn(nc, transport.Options{
		ReadTimeout:  n.opts.CallTimeout,
		WriteTimeout: n.opts.CallTimeout,
	})
	if err := tc.Send(EncodePeerHello(n.self.Name)); err != nil {
		tc.Close()
		return err
	}
	l.tc = tc
	return nil
}

// exchange sends frame and, when wantKind != PeerUnknown, awaits a frame
// of that kind. A dead link is redialled once; any error tears the link
// down so the next call starts clean.
func (l *peerLink) exchange(n *Node, addr string, frame []byte, wantKind PeerKind) ([]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for attempt := 0; ; attempt++ {
		if err := l.ensure(n, addr); err != nil {
			return nil, err
		}
		resp, err := l.exchangeLocked(frame, wantKind)
		if err == nil {
			return resp, nil
		}
		l.tc.Close()
		l.tc = nil
		if attempt == 1 {
			return nil, err
		}
	}
}

func (l *peerLink) exchangeLocked(frame []byte, wantKind PeerKind) ([]byte, error) {
	if err := l.tc.Send(frame); err != nil {
		return nil, err
	}
	if wantKind == PeerUnknown {
		return nil, nil
	}
	resp, err := l.tc.Recv()
	if err != nil {
		return nil, err
	}
	if ClassifyPeer(resp) != wantKind {
		return nil, errMagic
	}
	return resp, nil
}

func (n *Node) call(mem Member, frame []byte, wantKind PeerKind) ([]byte, error) {
	return n.link(mem.Name).exchange(n, mem.Addr, frame, wantKind)
}

func (n *Node) send(mem Member, frame []byte) error {
	_, err := n.link(mem.Name).exchange(n, mem.Addr, frame, PeerUnknown)
	return err
}
