// Package cluster makes a fleet of attestd daemons act as one verifier:
// a consistent-hash ring assigns every device ID to exactly one live
// daemon (its owner), non-owners redirect a device's hello to the owner,
// and a small peer protocol hands the device's verifier state — counter
// and nonce freshness, the RATA fast-path arm record, the stats
// high-water base — to whichever daemon owns the device next, so
// freshness never resets across failover or rebalancing.
//
// The package is deliberately self-contained below internal/server:
// Ring/Membership are pure data structures, the codec speaks its own
// frame magics (distinct from internal/protocol's, so a cluster frame can
// never be confused with an attestation frame), and Node carries the peer
// links. internal/server wires a Node into its hello path and serving
// gate; internal/agent understands only the redirect frame.
package cluster

import (
	"fmt"
	"sort"
	"strconv"
)

// DefaultVnodes is the virtual-node count per member. 128 keeps the
// worst-case owner share under 2× fair for up to 8 daemons (pinned by
// TestRingDistribution) while the ring stays small enough that a rebuild
// on membership change is microseconds.
const DefaultVnodes = 128

// fnv1a64 is the ring's hash, inlined so point placement is a stable,
// documented function of the member name and vnode index alone — two
// daemons built from the same member list always agree on ownership
// without exchanging ring state. The FNV-1a pass is finalised with a
// 64-bit avalanche mix (MurmurHash3's fmix64): raw FNV output over
// near-identical strings ("attestd-1#17" vs "attestd-2#17") clusters on
// the circle badly enough to break the 2x-fair-share bound, while the
// mixed output passes both the distribution and rebalance-minimality
// pins in ring_test.go.
func fnv1a64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

type ringPoint struct {
	hash   uint64
	member int // index into Ring.members
}

// Ring is an immutable consistent-hash ring over a member set. Build one
// with NewRing; Membership rebuilds a fresh Ring on every membership
// change, so lookups need no locking of their own.
type Ring struct {
	members []string
	points  []ringPoint
}

// NewRing places vnodes points per member (DefaultVnodes if <= 0) on the
// hash circle. Member order does not affect ownership — placement depends
// only on each member's name — but ties (identical hash points) resolve
// to the lexicographically smaller name so two daemons never disagree.
func NewRing(vnodes int, members []string) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	ms := append([]string(nil), members...)
	sort.Strings(ms)
	r := &Ring{members: ms, points: make([]ringPoint, 0, len(ms)*vnodes)}
	for mi, m := range ms {
		for v := 0; v < vnodes; v++ {
			h := fnv1a64(m + "#" + strconv.Itoa(v))
			r.points = append(r.points, ringPoint{hash: h, member: mi})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.members[r.points[i].member] < r.members[r.points[j].member]
	})
	return r
}

// Members returns the ring's member names, sorted.
func (r *Ring) Members() []string { return r.members }

// Owner returns the member owning key: the first vnode point at or after
// the key's hash, wrapping at the top of the circle. ok is false for an
// empty ring.
func (r *Ring) Owner(key string) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	return r.members[r.points[r.search(key)].member], true
}

// OwnersN returns the first n distinct members clockwise from key's hash:
// OwnersN(key, 2)[0] is the owner, [1] is the successor — the member that
// inherits the key if the owner leaves the ring, and therefore the right
// place to replicate the key's state to.
func (r *Ring) OwnersN(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	out := make([]string, 0, n)
	seen := make(map[int]bool, n)
	for i, off := r.search(key), 0; off < len(r.points) && len(out) < n; off++ {
		p := r.points[(i+off)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, r.members[p.member])
		}
	}
	return out
}

func (r *Ring) search(key string) int {
	h := fnv1a64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrapped past the top of the circle
	}
	return i
}

// String summarises the ring for log lines.
func (r *Ring) String() string {
	return fmt.Sprintf("ring(%d members, %d points)", len(r.members), len(r.points))
}
