package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

// syntheticDevices generates a deterministic device-ID population shaped
// like the fleet's real IDs (seeded, so the distribution and rebalance
// bounds below are pinned facts about the shipped hash, not flaky
// samples).
func syntheticDevices(seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("dev-%04d-%08x", i, rng.Uint64())
	}
	return out
}

func memberNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("attestd-%d", i)
	}
	return out
}

// TestRingDistribution pins the satellite bound: with >= 128 vnodes, no
// daemon owns more than 2x its fair share for cluster sizes 1 through 8.
func TestRingDistribution(t *testing.T) {
	devices := syntheticDevices(1, 100_000)
	for daemons := 1; daemons <= 8; daemons++ {
		for _, vnodes := range []int{128, 256} {
			t.Run(fmt.Sprintf("daemons=%d/vnodes=%d", daemons, vnodes), func(t *testing.T) {
				r := NewRing(vnodes, memberNames(daemons))
				counts := make(map[string]int, daemons)
				for _, dev := range devices {
					owner, ok := r.Owner(dev)
					if !ok {
						t.Fatal("ring with members returned no owner")
					}
					counts[owner]++
				}
				fair := float64(len(devices)) / float64(daemons)
				for member, got := range counts {
					if share := float64(got) / fair; share > 2.0 {
						t.Errorf("%s owns %d devices, %.2fx fair share (bound 2x)", member, got, share)
					}
				}
				if len(counts) != daemons {
					t.Errorf("only %d of %d daemons own any devices", len(counts), daemons)
				}
			})
		}
	}
}

// TestRingRebalanceMinimality pins consistent hashing's defining
// property: growing the cluster from N to N+1 daemons moves only the
// keyspace slice the newcomer takes (~1/(N+1)), and every moved device
// moves *to* the newcomer — no device shuffles between incumbents.
func TestRingRebalanceMinimality(t *testing.T) {
	devices := syntheticDevices(2, 100_000)
	for daemons := 1; daemons <= 7; daemons++ {
		t.Run(fmt.Sprintf("%d_to_%d", daemons, daemons+1), func(t *testing.T) {
			before := NewRing(DefaultVnodes, memberNames(daemons))
			after := NewRing(DefaultVnodes, memberNames(daemons+1))
			newcomer := fmt.Sprintf("attestd-%d", daemons)

			moved := 0
			for _, dev := range devices {
				ob, _ := before.Owner(dev)
				oa, _ := after.Owner(dev)
				if ob == oa {
					continue
				}
				moved++
				if oa != newcomer {
					t.Fatalf("device %s moved %s -> %s, not to the newcomer %s", dev, ob, oa, newcomer)
				}
			}
			// The newcomer's expected take is 1/(N+1); allow 1.5x for vnode
			// placement variance (seeded inputs keep this deterministic).
			maxMoved := int(1.5 * float64(len(devices)) / float64(daemons+1))
			if moved > maxMoved {
				t.Errorf("adding daemon %d moved %d of %d devices, bound %d (~1.5/(N+1))",
					daemons+1, moved, len(devices), maxMoved)
			}
			if moved == 0 {
				t.Error("adding a daemon moved no devices")
			}
		})
	}
}

// TestRingDeterminism pins cross-daemon agreement: two rings built from
// the same member list in different orders route every key identically.
func TestRingDeterminism(t *testing.T) {
	a := NewRing(DefaultVnodes, []string{"n0", "n1", "n2"})
	b := NewRing(DefaultVnodes, []string{"n2", "n0", "n1"})
	for _, dev := range syntheticDevices(3, 10_000) {
		oa, _ := a.Owner(dev)
		ob, _ := b.Owner(dev)
		if oa != ob {
			t.Fatalf("member order changed ownership of %s: %s vs %s", dev, oa, ob)
		}
	}
}

func TestRingEmptyAndOwnersN(t *testing.T) {
	empty := NewRing(DefaultVnodes, nil)
	if _, ok := empty.Owner("dev"); ok {
		t.Error("empty ring claimed an owner")
	}
	if got := empty.OwnersN("dev", 2); got != nil {
		t.Errorf("empty ring OwnersN = %v, want nil", got)
	}

	r := NewRing(DefaultVnodes, []string{"n0", "n1", "n2"})
	for _, dev := range syntheticDevices(4, 1_000) {
		owners := r.OwnersN(dev, 3)
		if len(owners) != 3 {
			t.Fatalf("OwnersN(3) over 3 members returned %v", owners)
		}
		owner, _ := r.Owner(dev)
		if owners[0] != owner {
			t.Fatalf("OwnersN[0] = %s, Owner = %s", owners[0], owner)
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("OwnersN returned duplicate member: %v", owners)
			}
			seen[o] = true
		}
		// OwnersN asked past the member count clamps.
		if got := r.OwnersN(dev, 10); len(got) != 3 {
			t.Fatalf("OwnersN(10) = %v, want 3 members", got)
		}
	}
}

// TestSuccessorInheritsOnFailure pins the replication invariant the
// failover path relies on: for any device, removing its owner from the
// ring promotes exactly the device's successor — so state replicated to
// OwnersN[1] is sitting on the daemon that inherits the device.
func TestSuccessorInheritsOnFailure(t *testing.T) {
	members := memberNames(4)
	full := NewRing(DefaultVnodes, members)
	for _, dev := range syntheticDevices(5, 5_000) {
		owners := full.OwnersN(dev, 2)
		owner, succ := owners[0], owners[1]

		survivors := make([]string, 0, len(members)-1)
		for _, m := range members {
			if m != owner {
				survivors = append(survivors, m)
			}
		}
		after := NewRing(DefaultVnodes, survivors)
		inheritor, _ := after.Owner(dev)
		if inheritor != succ {
			t.Fatalf("device %s: owner %s died, inherited by %s but replicated to %s",
				dev, owner, inheritor, succ)
		}
	}
}
