package core

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"proverattest/internal/protocol"
	"proverattest/internal/sim"
)

// TestMatrixParallelByteIdenticalToSerial is the acceptance proof for the
// campaign runner: Table 2 regenerated on one worker and on many must be
// byte-for-byte the same, in paper order both times.
func TestMatrixParallelByteIdenticalToSerial(t *testing.T) {
	serial, sstats, err := RunMatrixParallel(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, pstats, err := RunMatrixParallel(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if sstats.Workers != 1 || pstats.Workers != 4 {
		t.Fatalf("worker counts: serial=%d parallel=%d", sstats.Workers, pstats.Workers)
	}
	sb, pb := fmt.Sprintf("%#v", serial), fmt.Sprintf("%#v", parallel)
	if sb != pb {
		t.Fatalf("parallel matrix diverged from serial:\n serial:   %s\n parallel: %s", sb, pb)
	}
	if pstats.Sim == 0 {
		t.Fatal("campaign reported no simulated time")
	}
	if pstats.Cells != len(MatrixAttacks)*len(MatrixFreshnessKinds) {
		t.Fatalf("campaign ran %d cells, want %d", pstats.Cells, len(MatrixAttacks)*len(MatrixFreshnessKinds))
	}
}

func TestRoamingMatrixParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("32 full roaming campaigns")
	}
	serial, _, err := RunRoamingMatrix(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, _, err := RunRoamingMatrix(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(AllRoamingCampaigns()) {
		t.Fatalf("roaming matrix has %d cells, want %d", len(serial), len(AllRoamingCampaigns()))
	}
	// RoamingResult carries *mcu.Fault pointers, so compare values deeply
	// rather than via %#v (which renders addresses).
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("parallel roaming matrix diverged from serial")
	}
	// Spot-check presentation order: unprotected before protected for the
	// first target.
	if serial[0].Target != RoamCounter || serial[0].Protected || !serial[1].Protected {
		t.Fatalf("presentation order broken: %+v / %+v", serial[0], serial[1])
	}
}

func TestFloodSweepOrderedAndIdenticalToDirectRuns(t *testing.T) {
	auths := []protocol.AuthKind{protocol.AuthNone, protocol.AuthHMACSHA1}
	const rate, dur = 5.0, 10 * sim.Second
	sweep, stats, err := RunFloodSweep(context.Background(), 2, auths, rate, dur)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cells != 2 {
		t.Fatalf("stats.Cells = %d", stats.Cells)
	}
	for i, auth := range auths {
		direct, err := RunFloodExperiment(auth, rate, dur)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprintf("%#v", sweep[i]) != fmt.Sprintf("%#v", direct) {
			t.Fatalf("sweep cell %d (%v) diverged from a direct run", i, auth)
		}
	}
}

func TestFleetSweepOrderedAndIdenticalToDirectRuns(t *testing.T) {
	points := []FleetSweepPoint{
		{Auth: protocol.AuthNone, RatePerSec: 5},
		{Auth: protocol.AuthHMACSHA1, RatePerSec: 5},
	}
	const n, flooded = 4, 1
	period, horizon := 20*sim.Second, sim.Minute
	sweep, stats, err := RunFleetSweep(context.Background(), 2, points, n, flooded, period, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sim != 2*horizon {
		t.Fatalf("aggregate sim time %v, want %v", stats.Sim, 2*horizon)
	}
	for i, p := range points {
		direct, err := RunFleetExperiment(n, flooded, p.Auth, p.RatePerSec, period, horizon)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprintf("%#v", sweep[i]) != fmt.Sprintf("%#v", direct) {
			t.Fatalf("fleet sweep cell %d (%v) diverged from a direct run", i, p.Auth)
		}
	}
}

func TestDriftSweepStillOrdered(t *testing.T) {
	offsets := []int64{-2000, -100, 0, 100, 2000}
	out, err := RunDriftSweep(offsets, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(offsets) {
		t.Fatalf("got %d results, want %d", len(out), len(offsets))
	}
	for i, r := range out {
		if r.OffsetMs != offsets[i] {
			t.Fatalf("result %d is offset %d, want %d (input order)", i, r.OffsetMs, offsets[i])
		}
	}
	// Sanity: a huge negative offset is refused, zero offset accepted.
	if out[2].OffsetMs != 0 || !out[2].Accepted {
		t.Fatal("zero-drift request refused")
	}
	if out[0].Accepted {
		t.Fatal("-2 s drift accepted despite a 1 s window")
	}
}
