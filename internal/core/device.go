// Package core is the public façade of the reproduction: it assembles the
// simulated prover (MCU + trust anchor + secure boot + battery), the
// verifier, the Dolev-Yao channel and the adversaries into runnable
// scenarios, and provides the experiment drivers that regenerate the
// paper's results — the Table 2 attack×freshness matrix and the §5
// roaming-adversary campaigns.
package core

import (
	"fmt"

	"proverattest/internal/anchor"
	"proverattest/internal/crypto/cost"
	"proverattest/internal/crypto/ecc"
	"proverattest/internal/crypto/sha1"
	"proverattest/internal/energy"
	"proverattest/internal/mcu"
	"proverattest/internal/protocol"
	"proverattest/internal/sim"
)

// DefaultAttestKey is the K_Attest provisioned into simulated devices.
// Shared between verifier and prover at manufacture, per the paper's
// symmetric-key model (§3).
var DefaultAttestKey = []byte{
	0x4b, 0x5f, 0x41, 0x74, 0x74, 0x65, 0x73, 0x74, 0x21, 0x21,
	0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99,
}

// AppImageSize is the size of the application firmware image measured by
// secure boot.
const AppImageSize = 32 * mcu.KiB

// AppImageRegion is the flash region secure boot verifies.
var AppImageRegion = mcu.Region{Start: mcu.FlashRegion.Start, Size: AppImageSize}

// DeviceConfig selects the prover's build: trust-anchor policy plus
// platform parameters.
type DeviceConfig struct {
	Anchor   anchor.Config
	MPURules int
	// Power and Battery enable energy accounting; nil Battery means
	// unlimited supply.
	Power   energy.PowerModel
	Battery *energy.Battery
}

// Device is an assembled, securely booted prover.
type Device struct {
	K       *sim.Kernel
	M       *mcu.MCU
	A       *anchor.Anchor
	Power   energy.PowerModel
	Battery *energy.Battery

	Boot      mcu.BootReport
	goldenRAM []byte

	drawnCycles cost.Cycles
}

// NewDevice provisions, installs and securely boots a prover on the given
// kernel. RAM and the application image are filled with deterministic
// patterns; the returned device's GoldenRAM is what an honest verifier
// expects to measure.
func NewDevice(k *sim.Kernel, cfg DeviceConfig) (*Device, error) {
	if cfg.MPURules == 0 {
		cfg.MPURules = 8
	}
	if cfg.Power == (energy.PowerModel{}) {
		cfg.Power = energy.DefaultPower()
	}
	if cfg.Anchor.AttestKey == nil {
		cfg.Anchor.AttestKey = DefaultAttestKey
	}
	mcuCfg := mcu.Config{MPURules: cfg.MPURules}
	if cfg.Anchor.Profile == anchor.ProfileSMART {
		// SMART: the protection rules are part of the silicon, not of the
		// boot flow. Derive them from the normalized anchor config and
		// hardwire them into the MPU.
		norm, err := anchor.NormalizeConfig(cfg.Anchor)
		if err != nil {
			return nil, fmt.Errorf("core: SMART configuration: %w", err)
		}
		mcuCfg.HardwiredRules = anchor.ProtectionRules(norm)
	}
	m := mcu.New(k, mcuCfg)
	a, err := anchor.Install(m, cfg.Anchor)
	if err != nil {
		return nil, fmt.Errorf("core: installing anchor: %w", err)
	}

	app := make([]byte, AppImageSize)
	for i := range app {
		app[i] = byte(i*13 + 7)
	}
	m.Space.DirectWrite(AppImageRegion.Start, app)
	ram := GoldenRAMPattern()
	m.Space.DirectWrite(mcu.RAMRegion.Start, ram)

	d := &Device{
		K:         k,
		M:         m,
		A:         a,
		Power:     cfg.Power,
		Battery:   cfg.Battery,
		goldenRAM: ram,
	}
	m.SecureBoot(a.BootPolicy(sha1.Sum(app), AppImageRegion), func(r mcu.BootReport) {
		d.Boot = r
	})
	// Drive the boot job to completion (bounded: periodic clocks keep the
	// queue alive forever).
	k.RunUntil(k.Now() + sim.Second)
	if !d.Boot.OK {
		return nil, fmt.Errorf("core: secure boot failed: %s", d.Boot.Reason)
	}
	return d, nil
}

// GoldenRAMPattern returns the deterministic RAM fill NewDevice installs,
// without building a device. The verifier side of the networked deployment
// (internal/server) needs the golden image but has no MCU; sharing the
// generator keeps the daemon's expectation and the agent's device in sync.
func GoldenRAMPattern() []byte {
	ram := make([]byte, mcu.RAMRegion.Size)
	for i := range ram {
		ram[i] = byte(i*31 + 5)
	}
	return ram
}

// GoldenRAM returns the expected measured-memory contents.
func (d *Device) GoldenRAM() []byte {
	return append([]byte(nil), d.goldenRAM...)
}

// SettleEnergy charges the battery for all active cycles accumulated since
// the last call (sleep draw is charged by ChargeSleep). Call at scenario
// end before reading the battery.
func (d *Device) SettleEnergy() {
	cycles := d.M.ActiveCycles - d.drawnCycles
	d.drawnCycles = d.M.ActiveCycles
	if d.Battery != nil {
		d.Battery.Draw(d.Power.ActiveEnergyJoules(cycles))
	}
}

// ChargeSleep bills the baseline sleep draw for a window of simulated time.
func (d *Device) ChargeSleep(window sim.Duration) {
	if d.Battery != nil {
		d.Battery.Draw(window.Seconds() * d.Power.SleepWatts)
	}
}

// ActiveEnergyJoules reports the total active-mode energy spent so far.
func (d *Device) ActiveEnergyJoules() float64 {
	return d.Power.ActiveEnergyJoules(d.M.ActiveCycles)
}

// VerifierKeyPair derives the deterministic ECDSA identity used when the
// scenario authenticates requests with signatures.
func VerifierKeyPair() (*ecc.PrivateKey, error) {
	return ecc.GenerateKey([]byte("proverattest-verifier-identity"))
}

// NewDeviceAuth builds the prover-side anchor config fields for an auth
// kind: symmetric kinds need nothing extra; ECDSA needs the verifier's
// public key.
func NewDeviceAuth(kind protocol.AuthKind, cfg *anchor.Config) error {
	cfg.AuthKind = kind
	if kind == protocol.AuthECDSA {
		key, err := VerifierKeyPair()
		if err != nil {
			return err
		}
		cfg.VerifierPublic = key.Public
	}
	return nil
}
