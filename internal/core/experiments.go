package core

import (
	"proverattest/internal/adversary"
	"proverattest/internal/anchor"
	"proverattest/internal/crypto/cost"
	"proverattest/internal/energy"
	"proverattest/internal/protocol"
	"proverattest/internal/sim"
)

// FloodResult quantifies the §3.1 DoS-by-attestation argument: a verifier
// impersonator floods the prover with requests; without authentication
// each one burns a full ≈754 ms measurement, with authentication each is
// rejected after a sub-millisecond tag check.
type FloodResult struct {
	Auth         protocol.AuthKind
	RatePerSec   float64
	Duration     sim.Duration
	Injected     int
	Measurements uint64
	AuthRejected uint64
	ActiveCycles cost.Cycles
	// BootCycles is the secure-boot share of ActiveCycles, so per-request
	// costs can be computed net of the one-time boot.
	BootCycles   cost.Cycles
	EnergyJoules float64
	DutyCyclePct float64
	// LifetimeDays projects how long a CR2032 coin cell survives under a
	// sustained flood at this rate.
	LifetimeDays float64
}

// RunFloodExperiment floods a prover configured with the given request
// authentication for the given simulated duration and reports the damage.
func RunFloodExperiment(auth protocol.AuthKind, ratePerSec float64, duration sim.Duration) (FloodResult, error) {
	res := FloodResult{Auth: auth, RatePerSec: ratePerSec, Duration: duration}

	battery := energy.CoinCellCR2032()
	s, err := NewScenario(ScenarioConfig{
		Freshness:  protocol.FreshCounter,
		Auth:       auth,
		Protection: anchor.FullProtection(),
		Battery:    battery,
	})
	if err != nil {
		return res, err
	}

	// The impersonator has no key: it sends well-framed requests with
	// garbage tags and climbing counters. Under AuthNone the empty tag is
	// "valid" and every frame triggers a measurement.
	var tagLen int
	switch auth {
	case protocol.AuthHMACSHA1:
		tagLen = 20
	case protocol.AuthAESCBCMAC:
		tagLen = 16
	case protocol.AuthSpeckCBCMAC:
		tagLen = 8
	case protocol.AuthECDSA:
		tagLen = 42
	}
	flood := &adversary.Flood{
		C:        s.C,
		K:        s.K,
		Interval: sim.Duration(float64(sim.Second) / ratePerSec),
		Frame: func(i int) []byte {
			req := &protocol.AttReq{
				Freshness: protocol.FreshCounter,
				Auth:      auth,
				Nonce:     uint64(i) + 1,
				Counter:   uint64(i) + 1,
			}
			if tagLen > 0 {
				tag := make([]byte, tagLen)
				for j := range tag {
					tag[j] = byte(i*31 + j*7)
				}
				req.Tag = tag
			}
			return req.Encode()
		},
	}
	end := s.K.Now() + duration
	flood.Start(0)
	s.K.At(end, func() { flood.Stop() })
	s.RunUntil(end)
	s.Dev.ChargeSleep(duration)

	res.Injected = flood.Injected
	res.Measurements = s.Dev.A.Stats.Measurements
	res.AuthRejected = s.Dev.A.Stats.AuthRejected
	res.ActiveCycles = s.Dev.M.ActiveCycles
	res.BootCycles = s.Dev.Boot.Cycles
	res.EnergyJoules = s.Dev.Power.EnergyJoules(s.Dev.M.ActiveCycles, duration)
	res.DutyCyclePct = 100 * float64(res.ActiveCycles) / (duration.Seconds() * cost.ClockHz)
	if res.DutyCyclePct > 100 {
		res.DutyCyclePct = 100
	}
	activeCyclesPerSec := float64(res.ActiveCycles) / duration.Seconds()
	res.LifetimeDays = energy.DaysFromSeconds(
		energy.LifetimeSeconds(energy.CoinCellCR2032(), s.Dev.Power, activeCyclesPerSec))
	return res, nil
}

// DriftResult is one point of the clock-synchronisation sweep (the
// paper's future-work item 2): how far may the verifier's clock drift from
// the prover's before genuine, timely requests are refused?
type DriftResult struct {
	OffsetMs int64
	Accepted bool
}

// RunDriftSweep issues one genuine timestamped request per offset and
// reports whether the prover accepted it.
func RunDriftSweep(offsetsMs []int64, windowMs, skewMs uint64) ([]DriftResult, error) {
	out := make([]DriftResult, 0, len(offsetsMs))
	for _, off := range offsetsMs {
		s, err := NewScenario(ScenarioConfig{
			Freshness:             protocol.FreshTimestamp,
			Auth:                  protocol.AuthHMACSHA1,
			Clock:                 anchor.ClockWide64,
			TimestampWindowMs:     windowMs,
			TimestampSkewMs:       skewMs,
			Protection:            anchor.FullProtection(),
			VerifierClockOffsetMs: off,
		})
		if err != nil {
			return nil, err
		}
		s.IssueAt(10 * sim.Second)
		s.RunUntil(15 * sim.Second)
		out = append(out, DriftResult{OffsetMs: off, Accepted: s.Measurements() == 1})
	}
	return out, nil
}
