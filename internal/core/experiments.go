package core

import (
	"context"
	"fmt"

	"proverattest/internal/adversary"
	"proverattest/internal/anchor"
	"proverattest/internal/crypto/cost"
	"proverattest/internal/energy"
	"proverattest/internal/protocol"
	"proverattest/internal/runner"
	"proverattest/internal/sim"
)

// FloodResult quantifies the §3.1 DoS-by-attestation argument: a verifier
// impersonator floods the prover with requests; without authentication
// each one burns a full ≈754 ms measurement, with authentication each is
// rejected after a sub-millisecond tag check.
type FloodResult struct {
	Auth         protocol.AuthKind
	RatePerSec   float64
	Duration     sim.Duration
	Injected     int
	Measurements uint64
	AuthRejected uint64
	ActiveCycles cost.Cycles
	// BootCycles is the secure-boot share of ActiveCycles, so per-request
	// costs can be computed net of the one-time boot.
	BootCycles   cost.Cycles
	EnergyJoules float64
	DutyCyclePct float64
	// LifetimeDays projects how long a CR2032 coin cell survives under a
	// sustained flood at this rate.
	LifetimeDays float64
}

// RunFloodExperiment floods a prover configured with the given request
// authentication for the given simulated duration and reports the damage.
func RunFloodExperiment(auth protocol.AuthKind, ratePerSec float64, duration sim.Duration) (FloodResult, error) {
	res := FloodResult{Auth: auth, RatePerSec: ratePerSec, Duration: duration}

	battery := energy.CoinCellCR2032()
	s, err := NewScenario(ScenarioConfig{
		Freshness:  protocol.FreshCounter,
		Auth:       auth,
		Protection: anchor.FullProtection(),
		Battery:    battery,
	})
	if err != nil {
		return res, err
	}

	// The impersonator has no key: it sends well-framed requests with
	// garbage tags and climbing counters. Under AuthNone the empty tag is
	// "valid" and every frame triggers a measurement.
	var tagLen int
	switch auth {
	case protocol.AuthHMACSHA1:
		tagLen = 20
	case protocol.AuthAESCBCMAC:
		tagLen = 16
	case protocol.AuthSpeckCBCMAC:
		tagLen = 8
	case protocol.AuthECDSA:
		tagLen = 42
	}
	flood := &adversary.Flood{
		C:        s.C,
		K:        s.K,
		Interval: sim.Duration(float64(sim.Second) / ratePerSec),
		Frame: func(i int) []byte {
			req := &protocol.AttReq{
				Freshness: protocol.FreshCounter,
				Auth:      auth,
				Nonce:     uint64(i) + 1,
				Counter:   uint64(i) + 1,
			}
			if tagLen > 0 {
				tag := make([]byte, tagLen)
				for j := range tag {
					tag[j] = byte(i*31 + j*7)
				}
				req.Tag = tag
			}
			return req.Encode()
		},
	}
	end := s.K.Now() + duration
	flood.Start(0)
	s.K.At(end, func() { flood.Stop() })
	s.RunUntil(end)
	s.Dev.ChargeSleep(duration)

	res.Injected = flood.Injected
	res.Measurements = s.Dev.A.Stats.Measurements
	res.AuthRejected = s.Dev.A.Stats.AuthRejected
	res.ActiveCycles = s.Dev.M.ActiveCycles
	res.BootCycles = s.Dev.Boot.Cycles
	res.EnergyJoules = s.Dev.Power.EnergyJoules(s.Dev.M.ActiveCycles, duration)
	res.DutyCyclePct = 100 * float64(res.ActiveCycles) / (duration.Seconds() * cost.ClockHz)
	if res.DutyCyclePct > 100 {
		res.DutyCyclePct = 100
	}
	activeCyclesPerSec := float64(res.ActiveCycles) / duration.Seconds()
	res.LifetimeDays = energy.DaysFromSeconds(
		energy.LifetimeSeconds(energy.CoinCellCR2032(), s.Dev.Power, activeCyclesPerSec))
	return res, nil
}

// RunFloodSweep runs one independent flood experiment per authentication
// scheme across the campaign runner's worker pool and returns the results
// in input order with the campaign stats.
func RunFloodSweep(ctx context.Context, workers int, auths []protocol.AuthKind,
	ratePerSec float64, duration sim.Duration) ([]FloodResult, runner.CampaignStats, error) {
	cells := make([]runner.Cell[FloodResult], len(auths))
	for i, auth := range auths {
		auth := auth
		cells[i] = runner.Cell[FloodResult]{
			Label: fmt.Sprintf("flood %v", auth),
			Run: func(ctx context.Context, st *runner.CellStats) (FloodResult, error) {
				st.Sim = duration
				return RunFloodExperiment(auth, ratePerSec, duration)
			},
		}
	}
	results, stats := runner.Run(ctx, cells, runner.Options{Workers: workers})
	out, err := runner.Values(results)
	if err != nil {
		return nil, stats, fmt.Errorf("core: flood sweep: %w", err)
	}
	return out, stats, nil
}

// DriftResult is one point of the clock-synchronisation sweep (the
// paper's future-work item 2): how far may the verifier's clock drift from
// the prover's before genuine, timely requests are refused?
type DriftResult struct {
	OffsetMs int64
	Accepted bool
}

// RunDriftSweep issues one genuine timestamped request per offset and
// reports whether the prover accepted it. The offsets are independent
// scenarios, so the sweep runs on the campaign runner's default pool.
func RunDriftSweep(offsetsMs []int64, windowMs, skewMs uint64) ([]DriftResult, error) {
	cells := make([]runner.Cell[DriftResult], len(offsetsMs))
	for i, off := range offsetsMs {
		off := off
		cells[i] = runner.Cell[DriftResult]{
			Label: fmt.Sprintf("drift %+d ms", off),
			Run: func(ctx context.Context, st *runner.CellStats) (DriftResult, error) {
				s, err := NewScenario(ScenarioConfig{
					Freshness:             protocol.FreshTimestamp,
					Auth:                  protocol.AuthHMACSHA1,
					Clock:                 anchor.ClockWide64,
					TimestampWindowMs:     windowMs,
					TimestampSkewMs:       skewMs,
					Protection:            anchor.FullProtection(),
					VerifierClockOffsetMs: off,
				})
				if err != nil {
					return DriftResult{}, err
				}
				s.IssueAt(10 * sim.Second)
				s.RunUntil(15 * sim.Second)
				st.Sim = sim.Duration(s.K.Now())
				return DriftResult{OffsetMs: off, Accepted: s.Measurements() == 1}, nil
			},
		}
	}
	results, _ := runner.Run(context.Background(), cells, runner.Options{})
	return runner.Values(results)
}
