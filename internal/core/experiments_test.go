package core

import (
	"testing"

	"proverattest/internal/protocol"
	"proverattest/internal/sim"
)

func TestFloodWithoutAuthSaturatesProver(t *testing.T) {
	// 10 forged requests/s against an unauthenticated prover: every frame
	// triggers a ≈754 ms measurement, so the core saturates (~1.3
	// measurements/s, ~100 % duty cycle).
	res, err := RunFloodExperiment(protocol.AuthNone, 10, 30*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected < 295 {
		t.Fatalf("injected %d frames, want ≈300", res.Injected)
	}
	// 30 s / 754 ms ≈ 39 back-to-back measurements.
	if res.Measurements < 35 || res.Measurements > 41 {
		t.Fatalf("measurements = %d, want ≈39 (saturated)", res.Measurements)
	}
	if res.DutyCyclePct < 95 {
		t.Fatalf("duty cycle %.1f%%, want ≈100%% (prover starved of useful time)", res.DutyCyclePct)
	}
	if res.LifetimeDays > 2 {
		t.Fatalf("projected lifetime %.1f days under flood, want <2", res.LifetimeDays)
	}
}

func TestFloodWithHMACIsCheapToRepel(t *testing.T) {
	res, err := RunFloodExperiment(protocol.AuthHMACSHA1, 10, 30*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Measurements != 0 {
		t.Fatalf("forged requests triggered %d measurements", res.Measurements)
	}
	if res.AuthRejected < 295 {
		t.Fatalf("AuthRejected = %d, want ≈300", res.AuthRejected)
	}
	// 300 rejections × ≈0.43 ms ≈ 130 ms of CPU over 30 s: <1 % duty.
	if res.DutyCyclePct > 1.0 {
		t.Fatalf("duty cycle %.2f%%, want <1%%", res.DutyCyclePct)
	}
	// Rejections are not free (≈0.45 ms × 10/s ≈ 130 µW), but the battery
	// now lasts on the order of half a year instead of under two days — a
	// ~100× improvement over the unauthenticated prover.
	if res.LifetimeDays < 100 {
		t.Fatalf("projected lifetime %.0f days, want >100", res.LifetimeDays)
	}
}

func TestFloodAsymmetryAcrossSchemes(t *testing.T) {
	// §4.1's qualitative result: symmetric schemes are all sub-millisecond
	// and ECDSA is two-plus orders of magnitude worse — the paper's
	// "authentication itself becomes the DoS" paradox. Note the concrete
	// ordering among symmetric schemes differs from the paper's one-block
	// accounting because our 34-byte request header costs AES-CBC-MAC
	// three 16-byte blocks (0.864 ms) versus HMAC's single 64-byte block
	// (0.432 ms); Speck remains cheapest either way.
	costs := map[protocol.AuthKind]float64{}
	for _, kind := range []protocol.AuthKind{
		protocol.AuthSpeckCBCMAC, protocol.AuthAESCBCMAC,
		protocol.AuthHMACSHA1, protocol.AuthECDSA,
	} {
		res, err := RunFloodExperiment(kind, 5, 20*sim.Second)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.Measurements != 0 {
			t.Fatalf("%v: forged requests measured", kind)
		}
		costs[kind] = float64(res.ActiveCycles)
	}
	if !(costs[protocol.AuthSpeckCBCMAC] < costs[protocol.AuthHMACSHA1] &&
		costs[protocol.AuthSpeckCBCMAC] < costs[protocol.AuthAESCBCMAC] &&
		costs[protocol.AuthAESCBCMAC] < costs[protocol.AuthECDSA] &&
		costs[protocol.AuthHMACSHA1] < costs[protocol.AuthECDSA]) {
		t.Fatalf("per-request rejection cost ordering wrong: %v", costs)
	}
	if costs[protocol.AuthECDSA] < 100*costs[protocol.AuthHMACSHA1] {
		t.Fatalf("ECDSA rejection (%g cycles) should dwarf HMAC (%g)",
			costs[protocol.AuthECDSA], costs[protocol.AuthHMACSHA1])
	}
}

func TestECDSAParadox(t *testing.T) {
	// §4.1's punchline: "a supposed way of preventing DoS attacks can
	// itself result in DoS". An ECDSA-authenticated prover rejects every
	// forged request — zero measurements — yet the ~171 ms verifications
	// saturate the core at 10 req/s and the battery dies in days anyway.
	res, err := RunFloodExperiment(protocol.AuthECDSA, 10, 30*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Measurements != 0 {
		t.Fatalf("forged requests measured: %d", res.Measurements)
	}
	if res.DutyCyclePct < 90 {
		t.Fatalf("duty cycle %.1f%% — the verification flood should saturate the core", res.DutyCyclePct)
	}
	if res.LifetimeDays > 3 {
		t.Fatalf("projected lifetime %.1f days — ECDSA rejection should still kill the battery", res.LifetimeDays)
	}
	// Contrast: the HMAC prover rejects the same flood at <1% duty.
	hm, err := RunFloodExperiment(protocol.AuthHMACSHA1, 10, 30*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if hm.LifetimeDays < 50*res.LifetimeDays {
		t.Fatalf("HMAC lifetime %.1f days vs ECDSA %.1f — the paradox vanished",
			hm.LifetimeDays, res.LifetimeDays)
	}
}

func TestDriftSweep(t *testing.T) {
	// Window 1000 ms, skew 100 ms: verifier clocks behind by up to the
	// window pass; ahead beyond the skew fail.
	offsets := []int64{-5000, -900, -100, 0, 50, 200, 5000}
	results, err := RunDriftSweep(offsets, 1000, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int64]bool{
		-5000: false, // verifier 5 s behind: request looks ancient
		-900:  true,
		-100:  true,
		0:     true,
		50:    true,
		200:   false, // 200 ms ahead: beyond the 100 ms future skew
		5000:  false,
	}
	for _, r := range results {
		if r.Accepted != want[r.OffsetMs] {
			t.Errorf("offset %+d ms: accepted=%v, want %v", r.OffsetMs, r.Accepted, want[r.OffsetMs])
		}
	}
}
