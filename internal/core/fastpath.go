package core

import (
	"fmt"

	"proverattest/internal/anchor"
	"proverattest/internal/mcu"
	"proverattest/internal/protocol"
	"proverattest/internal/sim"
)

// The RATA fast-path adversary matrix: who can hide from a verifier that
// accepts O(1) fast responses against its record of the last verified
// digest and monitor epoch? Nobody should — a resident modification must
// cost the device its fast-path privilege and be caught by the next full
// measurement within one attestation period, whether the prover is honest
// about its dirty bit or lies about it.

// FastPathAdversary names one prover-side behaviour in the matrix.
type FastPathAdversary int

const (
	// FastHonest is the clean baseline: nothing writes attested memory, so
	// after the first full measurement every round rides the fast path.
	FastHonest FastPathAdversary = iota
	// FastResident writes the attested region mid-run and leaves the dirty
	// bit alone: the next request falls back to the full MAC, which
	// catches the modification.
	FastResident
	// FastLiar writes the attested region and then rearms the latch from
	// application code to keep claiming cleanliness. With the monitor's
	// EA-MPU rule the rearm faults (and the device behaves like
	// FastResident); without it the rearm succeeds but bumps the epoch,
	// desyncing the fast MAC from the verifier's record.
	FastLiar
)

func (a FastPathAdversary) String() string {
	switch a {
	case FastHonest:
		return "honest"
	case FastResident:
		return "resident"
	case FastLiar:
		return "liar"
	}
	return fmt.Sprintf("fastpath-adversary(%d)", int(a))
}

// FastPathResult is one matrix cell, decided by observation.
type FastPathResult struct {
	Adversary FastPathAdversary
	// Protected is whether the monitor's control window carried its EA-MPU
	// rule (Protection.Monitor).
	Protected bool

	Rounds          int    // attestation requests issued
	CompromiseRound int    // round after which the adversary acts (0 = never)
	Measurements    uint64 // full memory measurements the prover performed
	FastResponses   uint64 // O(1) responses the prover gave
	FastAccepted    uint64 // fast responses the verifier accepted
	FastRejected    uint64 // fast responses the verifier refused (epoch/digest desync)
	Accepted        uint64 // verifier-accepted rounds in total
	Rejected        uint64 // verifier-rejected rounds in total
	// RearmBlocked is whether the liar's out-of-band rearm faulted at the
	// EA-MPU (only meaningful for FastLiar).
	RearmBlocked bool

	// Detected is whether the verifier rejected at least one response after
	// the compromise; RoundsToDetect is how many attestation periods that
	// took (the detection-latency the sweep trades against energy).
	Detected       bool
	RoundsToDetect int
}

// RunFastPathCell plays one adversary × protection cell: `rounds` requests
// one second apart against a monitored prover, with the adversary acting
// between rounds compromiseRound and compromiseRound+1.
func RunFastPathCell(adv FastPathAdversary, protected bool) (FastPathResult, error) {
	const (
		rounds          = 6
		compromiseRound = 2
		period          = sim.Second
	)
	res := FastPathResult{Adversary: adv, Protected: protected, Rounds: rounds}

	prot := anchor.FullProtection()
	prot.Monitor = protected
	s, err := NewScenario(ScenarioConfig{
		Freshness:  protocol.FreshCounter,
		Auth:       protocol.AuthHMACSHA1,
		Protection: prot,
		Monitor:    true,
	})
	if err != nil {
		return res, err
	}

	appPC := mcu.FlashRegion.Start // the adversary runs as application code
	target := mcu.RAMRegion.Start + 0x40000

	if adv != FastHonest {
		res.CompromiseRound = compromiseRound
		at := sim.Time(compromiseRound)*period + period/2
		s.K.At(at, func() {
			// The implant lands in attested RAM. The write itself cannot be
			// blocked — RAM is open — but the monitor snoops it.
			s.Dev.M.Bus.Write(appPC, target, []byte{0xE7, 0xE7, 0xE7, 0xE7})
			if adv == FastLiar {
				// The lie: clear the latch from application code. Under the
				// monitor's EA-MPU rule this faults; without it, it succeeds
				// but increments the hardware epoch.
				res.RearmBlocked = s.Dev.M.Bus.Store32(appPC, mcu.MonCtrlAddr, mcu.MonRearm) != nil
			}
		})
	}

	// Sample the verifier's reject counter between rounds to locate the
	// detection round.
	rejectedAfter := make([]uint64, rounds+1)
	for i := 1; i <= rounds; i++ {
		s.IssueAt(sim.Time(i) * period)
		i := i
		s.K.At(sim.Time(i)*period+period*9/10, func() {
			rejectedAfter[i] = s.V.Rejected
		})
	}
	s.RunUntil(sim.Time(rounds+2) * period)

	res.Measurements = s.Dev.A.Stats.Measurements
	res.FastResponses = s.Dev.A.Stats.FastResponses
	res.FastAccepted = s.V.FastAccepted
	res.FastRejected = s.V.FastRejected
	res.Accepted = s.V.Accepted
	res.Rejected = s.V.Rejected

	res.RoundsToDetect = -1
	for i := 1; i <= rounds; i++ {
		if rejectedAfter[i] > 0 {
			res.Detected = true
			res.RoundsToDetect = i - compromiseRound
			break
		}
	}
	return res, nil
}

// RunFastPathMatrix plays every adversary × protection cell.
func RunFastPathMatrix() ([]FastPathResult, error) {
	var out []FastPathResult
	for _, adv := range []FastPathAdversary{FastHonest, FastResident, FastLiar} {
		for _, protected := range []bool{true, false} {
			r, err := RunFastPathCell(adv, protected)
			if err != nil {
				return nil, fmt.Errorf("core: fastpath %v/protected=%v: %w", adv, protected, err)
			}
			out = append(out, r)
		}
	}
	return out, nil
}
