package core

import "testing"

// TestFastPathHonestQuiescent pins the RATA steady state: one full
// measurement ever, every later round O(1), nothing rejected.
func TestFastPathHonestQuiescent(t *testing.T) {
	for _, protected := range []bool{true, false} {
		r, err := RunFastPathCell(FastHonest, protected)
		if err != nil {
			t.Fatal(err)
		}
		if r.Measurements != 1 {
			t.Errorf("protected=%v: Measurements = %d, want 1 (quiescent device re-measured)", protected, r.Measurements)
		}
		wantFast := uint64(r.Rounds - 1)
		if r.FastResponses != wantFast || r.FastAccepted != wantFast {
			t.Errorf("protected=%v: fast responses %d accepted %d, want %d each",
				protected, r.FastResponses, r.FastAccepted, wantFast)
		}
		if r.Rejected != 0 || r.Detected {
			t.Errorf("protected=%v: honest device flagged: rejected=%d detected=%v", protected, r.Rejected, r.Detected)
		}
		if r.Accepted != uint64(r.Rounds) {
			t.Errorf("protected=%v: Accepted = %d, want %d", protected, r.Accepted, r.Rounds)
		}
	}
}

// TestFastPathResidentDetectedWithinOnePeriod: a write to attested memory
// revokes the fast path (the monitor latched), and the resulting full
// measurement catches the modification on the very next round.
func TestFastPathResidentDetectedWithinOnePeriod(t *testing.T) {
	for _, protected := range []bool{true, false} {
		r, err := RunFastPathCell(FastResident, protected)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Detected {
			t.Fatalf("protected=%v: resident modification never detected", protected)
		}
		if r.RoundsToDetect != 1 {
			t.Errorf("protected=%v: detected after %d periods, want 1", protected, r.RoundsToDetect)
		}
		// The dirty device must have been driven back to the full MAC, not
		// answered fast: exactly the pre-compromise rounds ride the fast path.
		if r.FastResponses != uint64(r.CompromiseRound-1) {
			t.Errorf("protected=%v: %d fast responses, want %d (fast path must stop at the dirty bit)",
				protected, r.FastResponses, r.CompromiseRound-1)
		}
		if r.FastRejected != 0 {
			t.Errorf("protected=%v: FastRejected = %d, want 0 (honest-about-dirty prover never desyncs)", protected, r.FastRejected)
		}
	}
}

// TestFastPathLiarCaught: clearing the latch out-of-band must not restore
// the fast-path privilege. Protected, the rearm faults and the device acts
// like an honest dirty prover; unprotected, the rearm's epoch bump desyncs
// the fast MAC, the verifier refuses it and demands the full MAC — which
// catches the modification. Either way: detected within one period.
func TestFastPathLiarCaught(t *testing.T) {
	prot, err := RunFastPathCell(FastLiar, true)
	if err != nil {
		t.Fatal(err)
	}
	if !prot.RearmBlocked {
		t.Fatal("protected liar's out-of-band rearm was not blocked by the EA-MPU")
	}
	if !prot.Detected || prot.RoundsToDetect != 1 {
		t.Fatalf("protected liar: detected=%v after %d periods, want within 1", prot.Detected, prot.RoundsToDetect)
	}
	if prot.FastRejected != 0 {
		t.Errorf("protected liar: FastRejected = %d, want 0 (blocked rearm leaves the latch honest)", prot.FastRejected)
	}

	unprot, err := RunFastPathCell(FastLiar, false)
	if err != nil {
		t.Fatal(err)
	}
	if unprot.RearmBlocked {
		t.Fatal("unprotected liar's rearm unexpectedly blocked")
	}
	if !unprot.Detected || unprot.RoundsToDetect != 1 {
		t.Fatalf("unprotected liar: detected=%v after %d periods, want within 1", unprot.Detected, unprot.RoundsToDetect)
	}
	// The epoch bound into the MAC is what catches the lie: the forged-clean
	// response is refused as a fast-path desync, not accepted.
	if unprot.FastRejected == 0 {
		t.Error("unprotected liar: no fast response was rejected — the epoch desync went unnoticed")
	}
	if unprot.Accepted >= uint64(unprot.Rounds) {
		t.Errorf("unprotected liar: all %d rounds accepted — the lie passed", unprot.Rounds)
	}
}

// TestFastPathMatrix runs the full matrix and demands the one-line truth:
// only the honest cells go undetected.
func TestFastPathMatrix(t *testing.T) {
	results, err := RunFastPathMatrix()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("matrix has %d cells, want 6", len(results))
	}
	for _, r := range results {
		wantDetected := r.Adversary != FastHonest
		if r.Detected != wantDetected {
			t.Errorf("%v/protected=%v: detected=%v, want %v", r.Adversary, r.Protected, r.Detected, wantDetected)
		}
		if wantDetected && r.RoundsToDetect > 1 {
			t.Errorf("%v/protected=%v: detection took %d periods, want ≤1", r.Adversary, r.Protected, r.RoundsToDetect)
		}
	}
}
