package core

import (
	"fmt"

	"proverattest/internal/adversary"
	"proverattest/internal/anchor"
	"proverattest/internal/energy"
	"proverattest/internal/protocol"
	"proverattest/internal/sim"
)

// Fleet is a set of provers sharing one simulated timeline — the paper's
// future-work item 1 ("trial-deploy proposed methods in the context of
// connected devices, such as Internet of Things") as an experiment: a
// building's worth of battery-powered sensors, each with its own key,
// channel and verifier session, some of them under adversarial flood.
type Fleet struct {
	K       *sim.Kernel
	Members []*Scenario
}

// FleetConfig parameterises a fleet deployment.
type FleetConfig struct {
	// Provers is the fleet size.
	Provers int
	// Scenario is the per-prover configuration (Tap and Battery are
	// managed per member; leave them unset).
	Scenario ScenarioConfig
	// AttestPeriod is the per-prover genuine attestation interval;
	// members are staggered across the period to avoid a thundering herd.
	AttestPeriod sim.Duration
}

// NewFleet boots n provers on one kernel, each with its own coin cell.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.Provers <= 0 {
		return nil, fmt.Errorf("core: fleet needs at least one prover, got %d", cfg.Provers)
	}
	if cfg.AttestPeriod <= 0 {
		cfg.AttestPeriod = 60 * sim.Second
	}
	k := sim.NewKernel()
	f := &Fleet{K: k}
	for i := 0; i < cfg.Provers; i++ {
		member := cfg.Scenario
		member.Battery = energy.CoinCellCR2032()
		// Per-device keys: one roaming compromise must not yield a key
		// that impersonates the verifier to the rest of the fleet.
		deviceKey := protocol.DeriveDeviceKey(FleetMasterSecret, fmt.Sprintf("prover-%04d", i))
		member.AttestKey = deviceKey[:]
		s, err := NewScenarioOn(k, member)
		if err != nil {
			return nil, fmt.Errorf("core: booting fleet member %d: %w", i, err)
		}
		f.Members = append(f.Members, s)
	}
	return f, nil
}

// FleetMasterSecret seeds the fleet's per-device key derivation.
var FleetMasterSecret = []byte("proverattest-fleet-master-secret")

// ScheduleAttestation arranges periodic genuine attestation for every
// member over the given horizon, staggered across the period.
func (f *Fleet) ScheduleAttestation(period, horizon sim.Duration) {
	n := len(f.Members)
	for i, m := range f.Members {
		offset := sim.Duration(uint64(period) * uint64(i) / uint64(n))
		count := int((horizon - offset) / period)
		m.IssueEvery(f.K.Now()+offset+period/2, period, count)
	}
}

// FloodMembers aims a forged-request flood at members [0, floodCount).
// Returns the flood handles for inspection.
func (f *Fleet) FloodMembers(floodCount int, ratePerSec float64, auth protocol.AuthKind) []*adversary.Flood {
	var floods []*adversary.Flood
	tagLen := map[protocol.AuthKind]int{
		protocol.AuthHMACSHA1:    20,
		protocol.AuthAESCBCMAC:   16,
		protocol.AuthSpeckCBCMAC: 8,
		protocol.AuthECDSA:       42,
	}[auth]
	for i := 0; i < floodCount && i < len(f.Members); i++ {
		m := f.Members[i]
		fl := &adversary.Flood{
			C:        m.C,
			K:        f.K,
			Interval: sim.Duration(float64(sim.Second) / ratePerSec),
			Frame: func(j int) []byte {
				req := &protocol.AttReq{
					Freshness: m.Dev.A.Config().Freshness,
					Auth:      auth,
					Nonce:     uint64(j) + 1_000_000,
					Counter:   uint64(j) + 1_000_000,
				}
				if tagLen > 0 {
					tag := make([]byte, tagLen)
					for t := range tag {
						tag[t] = byte(j*17 + t*3)
					}
					req.Tag = tag
				}
				return req.Encode()
			},
		}
		fl.Start(0)
		floods = append(floods, fl)
	}
	return floods
}

// RunUntil advances the fleet and settles every member's energy meter.
func (f *Fleet) RunUntil(deadline sim.Time) {
	f.K.RunUntil(deadline)
	for _, m := range f.Members {
		m.Dev.SettleEnergy()
	}
}

// FleetReport aggregates a deployment's outcome, split between flooded and
// healthy members.
type FleetReport struct {
	Provers               int
	Flooded               int
	GenuineOK             uint64 // accepted attestations fleet-wide
	Measurements          uint64
	FloodedEnergyJ        float64 // mean active energy per flooded member
	HealthyEnergyJ        float64 // mean active energy per healthy member
	FloodedMinBatteryFrac float64
	HealthyMinBatteryFrac float64
}

// Report summarises the fleet, treating the first flooded members as the
// attacked group.
func (f *Fleet) Report(flooded int) FleetReport {
	r := FleetReport{
		Provers:               len(f.Members),
		Flooded:               flooded,
		FloodedMinBatteryFrac: 1,
		HealthyMinBatteryFrac: 1,
	}
	var floodedE, healthyE float64
	for i, m := range f.Members {
		r.GenuineOK += m.V.Accepted
		r.Measurements += m.Dev.A.Stats.Measurements
		e := m.Dev.ActiveEnergyJoules()
		frac := m.Dev.Battery.Fraction()
		if i < flooded {
			floodedE += e
			if frac < r.FloodedMinBatteryFrac {
				r.FloodedMinBatteryFrac = frac
			}
		} else {
			healthyE += e
			if frac < r.HealthyMinBatteryFrac {
				r.HealthyMinBatteryFrac = frac
			}
		}
	}
	if flooded > 0 {
		r.FloodedEnergyJ = floodedE / float64(flooded)
	}
	if healthy := len(f.Members) - flooded; healthy > 0 {
		r.HealthyEnergyJ = healthyE / float64(healthy)
	}
	return r
}

// RunFleetExperiment is the packaged future-work-1 experiment: n provers,
// the first floodCount of them under a forged-request flood, genuine
// attestation every period for the whole horizon.
func RunFleetExperiment(n, floodCount int, auth protocol.AuthKind, ratePerSec float64, period, horizon sim.Duration) (FleetReport, error) {
	fleet, err := NewFleet(FleetConfig{
		Provers: n,
		Scenario: ScenarioConfig{
			Freshness:  protocol.FreshCounter,
			Auth:       auth,
			Protection: anchor.FullProtection(),
		},
		AttestPeriod: period,
	})
	if err != nil {
		return FleetReport{}, err
	}
	fleet.ScheduleAttestation(period, horizon)
	floods := fleet.FloodMembers(floodCount, ratePerSec, auth)
	end := fleet.K.Now() + horizon
	fleet.K.At(end, func() {
		for _, fl := range floods {
			fl.Stop()
		}
	})
	fleet.RunUntil(end)
	for _, m := range fleet.Members {
		m.Dev.ChargeSleep(horizon)
	}
	return fleet.Report(floodCount), nil
}
