package core

import (
	"context"
	"fmt"

	"proverattest/internal/adversary"
	"proverattest/internal/anchor"
	"proverattest/internal/energy"
	"proverattest/internal/protocol"
	"proverattest/internal/runner"
	"proverattest/internal/sim"
)

// Fleet is a set of provers sharing one simulated timeline — the paper's
// future-work item 1 ("trial-deploy proposed methods in the context of
// connected devices, such as Internet of Things") as an experiment: a
// building's worth of battery-powered sensors, each with its own key,
// channel and verifier session, some of them under adversarial flood.
type Fleet struct {
	K       *sim.Kernel
	Members []*Scenario
	// Period is the genuine attestation interval every member is
	// scheduled on (FleetConfig.AttestPeriod after defaulting). Keeping it
	// here means scheduling cannot silently disagree with the configured
	// period.
	Period sim.Duration
	// Topology is the fleet's spanning tree: scheduling staggers members
	// by tree position and the swarm aggregation subsystem folds along
	// the same tree, so the two cannot disagree about the fleet's shape.
	// Always set by NewFleet; nil in hand-assembled fleets falls back to
	// index-ordered scheduling.
	Topology *Topology
	// SwarmKey is the fleet-wide K_Swarm broadcast key; non-nil iff the
	// fleet was built with FleetConfig.Fanout > 0.
	SwarmKey []byte
}

// FleetConfig parameterises a fleet deployment.
type FleetConfig struct {
	// Provers is the fleet size.
	Provers int
	// Scenario is the per-prover configuration (Tap and Battery are
	// managed per member; leave them unset).
	Scenario ScenarioConfig
	// AttestPeriod is the per-prover genuine attestation interval;
	// members are staggered across the period to avoid a thundering herd.
	AttestPeriod sim.Duration
	// Fanout, when > 0, arranges the fleet in a spanning tree of this
	// arity and provisions every member for swarm aggregation (K_Swarm,
	// tree index, bitmap width). Zero keeps the 1:1-only fleet with an
	// identity-ordered topology used purely for scheduling.
	Fanout int
	// TopologySeed permutes members across tree positions (0 = identity,
	// preserving the historical index-ordered stagger).
	TopologySeed int64
}

// NewFleet boots n provers on one kernel, each with its own coin cell.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.Provers <= 0 {
		return nil, fmt.Errorf("core: fleet needs at least one prover, got %d", cfg.Provers)
	}
	if cfg.AttestPeriod <= 0 {
		cfg.AttestPeriod = 60 * sim.Second
	}
	k := sim.NewKernel()
	f := &Fleet{K: k, Period: cfg.AttestPeriod}
	f.Topology = NewTopology(cfg.Provers, cfg.Fanout, cfg.TopologySeed)
	if cfg.Fanout > 0 {
		swarmKey := protocol.DeriveSwarmKey(FleetMasterSecret)
		f.SwarmKey = swarmKey[:]
	}
	for i := 0; i < cfg.Provers; i++ {
		member := cfg.Scenario
		member.Battery = energy.CoinCellCR2032()
		// Per-device keys: one roaming compromise must not yield a key
		// that impersonates the verifier to the rest of the fleet.
		deviceKey := protocol.DeriveDeviceKey(FleetMasterSecret, FleetDeviceID(i))
		member.AttestKey = deviceKey[:]
		if f.SwarmKey != nil {
			member.SwarmKey = f.SwarmKey
			member.SwarmIndex = uint16(i)
			member.SwarmFleet = cfg.Provers
		}
		s, err := NewScenarioOn(k, member)
		if err != nil {
			return nil, fmt.Errorf("core: booting fleet member %d: %w", i, err)
		}
		f.Members = append(f.Members, s)
	}
	return f, nil
}

// FleetMasterSecret seeds the fleet's per-device key derivation.
var FleetMasterSecret = []byte("proverattest-fleet-master-secret")

// FleetDeviceID is the canonical device identifier for fleet member i —
// the string the per-device key derivation and the swarm verifier both
// hang off, kept in one place so they cannot drift.
func FleetDeviceID(i int) string { return fmt.Sprintf("prover-%04d", i) }

// ScheduleAttestation arranges periodic genuine attestation for every
// member over the given horizon, staggered across the fleet's configured
// period. A fleet with no members (possible when the struct is assembled
// by hand rather than via NewFleet) schedules nothing.
func (f *Fleet) ScheduleAttestation(horizon sim.Duration) {
	n := len(f.Members)
	if n == 0 || f.Period <= 0 {
		return
	}
	for i, m := range f.Members {
		// Stagger by tree position, not raw index: with a seeded topology
		// the tree's upper levels (which carry swarm fold traffic for
		// their subtrees) attest earliest in the period, and with the
		// identity topology this reduces to the historical index order.
		pos := i
		if f.Topology != nil {
			if p := f.Topology.Pos(i); p >= 0 {
				pos = p
			}
		}
		offset := staggerOffset(f.Period, pos, n)
		if offset >= horizon {
			continue
		}
		count := int((horizon - offset) / f.Period)
		m.IssueEvery(f.K.Now()+offset+f.Period/2, f.Period, count)
	}
}

// staggerOffset spreads member i of n evenly across one period without the
// uint64(period)*uint64(i) product, which overflows for long periods ×
// large fleets (e.g. a day-long period across a 100k-device fleet).
// Dividing first keeps every intermediate ≤ period.
func staggerOffset(period sim.Duration, i, n int) sim.Duration {
	step := period / sim.Duration(n)
	return step * sim.Duration(i)
}

// FloodMembers aims a forged-request flood at members [0, floodCount).
// Returns the flood handles for inspection.
func (f *Fleet) FloodMembers(floodCount int, ratePerSec float64, auth protocol.AuthKind) []*adversary.Flood {
	var floods []*adversary.Flood
	tagLen := map[protocol.AuthKind]int{
		protocol.AuthHMACSHA1:    20,
		protocol.AuthAESCBCMAC:   16,
		protocol.AuthSpeckCBCMAC: 8,
		protocol.AuthECDSA:       42,
	}[auth]
	for i := 0; i < floodCount && i < len(f.Members); i++ {
		m := f.Members[i]
		fl := &adversary.Flood{
			C:        m.C,
			K:        f.K,
			Interval: sim.Duration(float64(sim.Second) / ratePerSec),
			Frame: func(j int) []byte {
				req := &protocol.AttReq{
					Freshness: m.Dev.A.Config().Freshness,
					Auth:      auth,
					Nonce:     uint64(j) + 1_000_000,
					Counter:   uint64(j) + 1_000_000,
				}
				if tagLen > 0 {
					tag := make([]byte, tagLen)
					for t := range tag {
						tag[t] = byte(j*17 + t*3)
					}
					req.Tag = tag
				}
				return req.Encode()
			},
		}
		fl.Start(0)
		floods = append(floods, fl)
	}
	return floods
}

// RunUntil advances the fleet and settles every member's energy meter.
func (f *Fleet) RunUntil(deadline sim.Time) {
	f.K.RunUntil(deadline)
	for _, m := range f.Members {
		m.Dev.SettleEnergy()
	}
}

// FleetReport aggregates a deployment's outcome, split between flooded and
// healthy members.
type FleetReport struct {
	Provers      int
	Flooded      int
	GenuineOK    uint64 // accepted attestations fleet-wide
	Measurements uint64
	// TapDropped and Undeliverable aggregate the members' channel-loss
	// counters by cause (see channel.Channel); they are reported
	// separately so a wiring gap cannot masquerade as adversarial loss.
	TapDropped            uint64
	Undeliverable         uint64
	FloodedEnergyJ        float64 // mean active energy per flooded member
	HealthyEnergyJ        float64 // mean active energy per healthy member
	FloodedMinBatteryFrac float64
	HealthyMinBatteryFrac float64
}

// Report summarises the fleet, treating the first flooded members as the
// attacked group.
func (f *Fleet) Report(flooded int) FleetReport {
	r := FleetReport{
		Provers:               len(f.Members),
		Flooded:               flooded,
		FloodedMinBatteryFrac: 1,
		HealthyMinBatteryFrac: 1,
	}
	var floodedE, healthyE float64
	for i, m := range f.Members {
		r.GenuineOK += m.V.Accepted
		r.Measurements += m.Dev.A.Stats.Measurements
		r.TapDropped += m.C.TapDropped
		r.Undeliverable += m.C.Undeliverable
		e := m.Dev.ActiveEnergyJoules()
		frac := m.Dev.Battery.Fraction()
		if i < flooded {
			floodedE += e
			if frac < r.FloodedMinBatteryFrac {
				r.FloodedMinBatteryFrac = frac
			}
		} else {
			healthyE += e
			if frac < r.HealthyMinBatteryFrac {
				r.HealthyMinBatteryFrac = frac
			}
		}
	}
	if flooded > 0 {
		r.FloodedEnergyJ = floodedE / float64(flooded)
	}
	if healthy := len(f.Members) - flooded; healthy > 0 {
		r.HealthyEnergyJ = healthyE / float64(healthy)
	}
	return r
}

// RunFleetExperiment is the packaged future-work-1 experiment: n provers,
// the first floodCount of them under a forged-request flood, genuine
// attestation every period for the whole horizon.
func RunFleetExperiment(n, floodCount int, auth protocol.AuthKind, ratePerSec float64, period, horizon sim.Duration) (FleetReport, error) {
	fleet, err := NewFleet(FleetConfig{
		Provers: n,
		Scenario: ScenarioConfig{
			Freshness:  protocol.FreshCounter,
			Auth:       auth,
			Protection: anchor.FullProtection(),
		},
		AttestPeriod: period,
	})
	if err != nil {
		return FleetReport{}, err
	}
	fleet.ScheduleAttestation(horizon)
	floods := fleet.FloodMembers(floodCount, ratePerSec, auth)
	end := fleet.K.Now() + horizon
	fleet.K.At(end, func() {
		for _, fl := range floods {
			fl.Stop()
		}
	})
	fleet.RunUntil(end)
	for _, m := range fleet.Members {
		m.Dev.ChargeSleep(horizon)
	}
	return fleet.Report(floodCount), nil
}

// FleetSweepPoint parameterises one cell of a fleet deployment sweep.
type FleetSweepPoint struct {
	Auth       protocol.AuthKind
	RatePerSec float64
}

// RunFleetSweep runs one independent fleet deployment per point across the
// campaign runner's worker pool — each deployment owns a private kernel,
// so the sweep parallelises without sharing state — and returns the
// reports in point order together with the runner's stats.
func RunFleetSweep(ctx context.Context, workers int, points []FleetSweepPoint,
	n, floodCount int, period, horizon sim.Duration) ([]FleetReport, runner.CampaignStats, error) {
	cells := make([]runner.Cell[FleetReport], len(points))
	for i, p := range points {
		p := p
		cells[i] = runner.Cell[FleetReport]{
			Label: fmt.Sprintf("fleet %v @ %.0f req/s", p.Auth, p.RatePerSec),
			Run: func(ctx context.Context, st *runner.CellStats) (FleetReport, error) {
				st.Sim = horizon
				return RunFleetExperiment(n, floodCount, p.Auth, p.RatePerSec, period, horizon)
			},
		}
	}
	results, stats := runner.Run(ctx, cells, runner.Options{Workers: workers})
	reports, err := runner.Values(results)
	if err != nil {
		return nil, stats, fmt.Errorf("core: fleet sweep: %w", err)
	}
	return reports, stats, nil
}
