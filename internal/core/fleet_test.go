package core

import (
	"testing"

	"proverattest/internal/anchor"
	"proverattest/internal/protocol"
	"proverattest/internal/sim"
)

func TestFleetBootsAndAttests(t *testing.T) {
	fleet, err := NewFleet(FleetConfig{
		Provers: 5,
		Scenario: ScenarioConfig{
			Freshness:  protocol.FreshCounter,
			Auth:       protocol.AuthHMACSHA1,
			Protection: anchor.FullProtection(),
		},
		AttestPeriod: 10 * sim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet.Members) != 5 {
		t.Fatalf("fleet has %d members, want 5", len(fleet.Members))
	}
	if fleet.Period != 10*sim.Second {
		t.Fatalf("fleet period = %v, want the configured 10 s", fleet.Period)
	}
	fleet.ScheduleAttestation(60 * sim.Second)
	fleet.RunUntil(fleet.K.Now() + 70*sim.Second)

	report := fleet.Report(0)
	// Each member gets ~5-6 rounds in 60 s at one per 10 s (staggered).
	if report.GenuineOK < 25 {
		t.Fatalf("fleet-wide accepted = %d, want ≥25", report.GenuineOK)
	}
	if report.Measurements != report.GenuineOK {
		t.Fatalf("measurements %d != accepted %d under honest traffic",
			report.Measurements, report.GenuineOK)
	}
	// Members are independent: each has its own counter advanced only by
	// its own rounds.
	for i, m := range fleet.Members {
		if m.Dev.A.ReadCounter() != m.V.Accepted {
			t.Errorf("member %d: counter %d != accepted %d", i, m.Dev.A.ReadCounter(), m.V.Accepted)
		}
	}
}

func TestFleetUsesPerDeviceKeys(t *testing.T) {
	fleet, err := NewFleet(FleetConfig{
		Provers: 3,
		Scenario: ScenarioConfig{
			Freshness:  protocol.FreshCounter,
			Auth:       protocol.AuthHMACSHA1,
			Protection: anchor.FullProtection(),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every member's provisioned key differs.
	k0 := fleet.Members[0].Dev.M.Space.DirectRead(fleet.Members[0].Dev.A.KeyAddr(), 20)
	k1 := fleet.Members[1].Dev.M.Space.DirectRead(fleet.Members[1].Dev.A.KeyAddr(), 20)
	if string(k0) == string(k1) {
		t.Fatal("fleet members share a key")
	}
	// A request signed with member 0's key is refused by member 1: a
	// single stolen key does not open the fleet.
	req, err := fleet.Members[0].V.NewRequest()
	if err != nil {
		t.Fatal(err)
	}
	m1 := fleet.Members[1]
	m1.C.Send("verifier", "prover", req.Encode())
	fleet.RunUntil(fleet.K.Now() + 5*sim.Second)
	if m1.Dev.A.Stats.AuthRejected != 1 {
		t.Fatalf("member 1 AuthRejected = %d, want 1 (cross-device key must not verify)",
			m1.Dev.A.Stats.AuthRejected)
	}
	if m1.Dev.A.Stats.Measurements != 0 {
		t.Fatal("member 1 measured under a foreign key")
	}
}

func TestDeriveDeviceKeyProperties(t *testing.T) {
	a := protocol.DeriveDeviceKey([]byte("master"), "dev-a")
	a2 := protocol.DeriveDeviceKey([]byte("master"), "dev-a")
	b := protocol.DeriveDeviceKey([]byte("master"), "dev-b")
	other := protocol.DeriveDeviceKey([]byte("other!"), "dev-a")
	if a != a2 {
		t.Fatal("derivation not deterministic")
	}
	if a == b {
		t.Fatal("distinct devices derived the same key")
	}
	if a == other {
		t.Fatal("distinct masters derived the same key")
	}
}

func TestFleetValidation(t *testing.T) {
	if _, err := NewFleet(FleetConfig{Provers: 0}); err == nil {
		t.Fatal("zero-prover fleet built")
	}
}

func TestEmptyFleetScheduleDoesNotPanic(t *testing.T) {
	// Regression: ScheduleAttestation divided by len(f.Members), so a
	// hand-assembled fleet with no members panicked.
	f := &Fleet{K: sim.NewKernel(), Period: 10 * sim.Second}
	f.ScheduleAttestation(60 * sim.Second)
	if f.K.Pending() != 0 {
		t.Fatalf("empty fleet scheduled %d events", f.K.Pending())
	}
}

func TestStaggerOffsetOverflowSafe(t *testing.T) {
	// Regression: the offset was computed as uint64(period)*uint64(i)/n,
	// which wraps for long periods × large fleets. A day-long period
	// across 300k devices overflows the old math (≈2.3×10^19 > 2^64).
	period := 24 * sim.Hour
	n := 300_000
	prev := sim.Duration(-1)
	for _, i := range []int{0, 1, n / 2, n - 1} {
		off := staggerOffset(period, i, n)
		if off < 0 || off >= period {
			t.Fatalf("staggerOffset(%v, %d, %d) = %v, want within [0, period)", period, i, n, off)
		}
		if off <= prev && i != 0 {
			t.Fatalf("stagger not monotonic at member %d: %v after %v", i, off, prev)
		}
		prev = off
	}
	// The old formula really did wrap for these sizes: the product exceeds
	// 2^64, so dividing it back does not recover the period.
	if wrapped := uint64(period) * uint64(n-1); wrapped/uint64(n-1) == uint64(period) {
		t.Fatal("test sizes no longer exercise the overflow the fix guards against")
	}
}

func TestFleetFloodSplitsEnergy(t *testing.T) {
	// 6 provers, 2 flooded with unauthenticated requests: the flooded
	// group burns far more energy, the healthy group keeps attesting.
	report, err := RunFleetExperiment(6, 2, protocol.AuthNone, 5,
		20*sim.Second, 2*sim.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if report.Provers != 6 || report.Flooded != 2 {
		t.Fatalf("report shape: %+v", report)
	}
	if report.FloodedEnergyJ < 20*report.HealthyEnergyJ {
		t.Fatalf("flooded members spent %.4f J vs healthy %.4f J — expected ≥20× asymmetry",
			report.FloodedEnergyJ, report.HealthyEnergyJ)
	}
	if report.FloodedMinBatteryFrac >= report.HealthyMinBatteryFrac {
		t.Fatal("flooded batteries did not drain faster than healthy ones")
	}
}

func TestFleetFloodWithAuthIsContained(t *testing.T) {
	// The same flood against HMAC-authenticated provers: forged requests
	// die at the tag check, so the energy gap collapses by orders of
	// magnitude.
	open, err := RunFleetExperiment(4, 2, protocol.AuthNone, 5, 20*sim.Second, sim.Minute)
	if err != nil {
		t.Fatal(err)
	}
	auth, err := RunFleetExperiment(4, 2, protocol.AuthHMACSHA1, 5, 20*sim.Second, sim.Minute)
	if err != nil {
		t.Fatal(err)
	}
	openGap := open.FloodedEnergyJ / open.HealthyEnergyJ
	authGap := auth.FloodedEnergyJ / auth.HealthyEnergyJ
	if authGap > openGap/10 {
		t.Fatalf("auth flood gap %.1f× vs open %.1f× — expected ≥10× reduction", authGap, openGap)
	}
	// Genuine attestation keeps working on flooded-but-authenticated
	// members (the prover is not starved).
	if auth.GenuineOK < open.GenuineOK {
		t.Fatalf("authenticated fleet accepted %d < unauthenticated %d", auth.GenuineOK, open.GenuineOK)
	}
}
