package core

import (
	"testing"

	"proverattest/internal/anchor"
	"proverattest/internal/isa"
	"proverattest/internal/mcu"
	"proverattest/internal/protocol"
	"proverattest/internal/sim"
)

// malwareBinary is Adv_roam's Phase II implant as actual SP16 machine
// code: read counter_R, decrement it, write it back (the §5 rollback),
// then try to exfiltrate K_Attest. On an unprotected prover both succeed;
// on a protected prover the very first store faults — at the store
// instruction's own PC.
const malwareBinary = `
	li   r1, 0x0017F000   ; counter_R address
	lw   r2, 0(r1)        ; read current counter (low word)
	addi r2, r2, -1
	sw   r2, 0(r1)        ; ROLLBACK — denied when protected
	li   r3, 0x0000F000   ; K_Attest (ROM location)
	lw   r4, 0(r3)        ; EXFILTRATE — denied when protected
	li   r5, 0x00200000   ; stash the loot in RAM
	sw   r4, 0(r5)
	halt
`

func runMalwareBinary(t *testing.T, protected bool) (isa.Result, *Scenario) {
	t.Helper()
	prot := anchor.Protection{Key: protected, Counter: protected, LockMPU: protected}
	s, err := NewScenario(ScenarioConfig{
		Freshness:  protocol.FreshCounter,
		Auth:       protocol.AuthHMACSHA1,
		Protection: prot,
	})
	if err != nil {
		t.Fatal(err)
	}
	// One genuine round so counter_R is non-zero.
	s.IssueAt(s.K.Now() + sim.Second)
	s.RunUntil(s.K.Now() + 3*sim.Second)
	if s.Dev.A.ReadCounter() != 1 {
		t.Fatalf("precondition: counter_R = %d, want 1", s.Dev.A.ReadCounter())
	}

	region := mcu.Region{Start: mcu.FlashRegion.Start + 0x48000, Size: 0x1000}
	if _, err := isa.LoadProgram(s.Dev.M, region.Start, malwareBinary); err != nil {
		t.Fatal(err)
	}
	var res isa.Result
	isa.RunProgram(s.Dev.M, "malware-binary", region, region.Start, 10_000,
		func(r isa.Result) { res = r })
	s.RunUntil(s.K.Now() + sim.Second)
	return res, s
}

func TestMalwareBinaryOnUnprotectedProver(t *testing.T) {
	res, s := runMalwareBinary(t, false)
	if res.Reason != isa.StopHalt {
		t.Fatalf("malware stopped with %v (fault %v), want clean halt", res.Reason, res.Fault)
	}
	if got := s.Dev.A.ReadCounter(); got != 0 {
		t.Fatalf("counter_R = %d after rollback, want 0", got)
	}
	// The loot (first key word) landed in RAM.
	loot := s.Dev.M.Space.DirectLoad32(mcu.RAMRegion.Start)
	keyWord := s.Dev.M.Space.DirectLoad32(anchor.KeyROMAddr)
	if loot != keyWord {
		t.Fatalf("exfiltrated %#x, key word is %#x", loot, keyWord)
	}
}

func TestMalwareBinaryOnProtectedProver(t *testing.T) {
	res, s := runMalwareBinary(t, true)
	if res.Reason != isa.StopFault {
		t.Fatalf("malware stopped with %v, want a bus fault", res.Reason)
	}
	// The fault is attributed to the first touching instruction: the lw of
	// counter_R (the counter rule denies even reads to non-anchor code).
	// li expands to lui+ori, so the layout is base+0 lui, +4 ori,
	// +8 lw ← here.
	wantPC := mcu.FlashRegion.Start + 0x48000 + 8
	if res.Fault == nil || res.Fault.PC != wantPC {
		t.Fatalf("fault = %v, want PC %#x (the lw instruction)", res.Fault, uint32(wantPC))
	}
	if res.Fault.Addr != anchor.CounterAddr {
		t.Fatalf("fault addr %#x, want counter_R", uint32(res.Fault.Addr))
	}
	if got := s.Dev.A.ReadCounter(); got != 1 {
		t.Fatalf("counter_R = %d, want untouched 1", got)
	}
	// Genuine attestation still works afterwards.
	s.IssueAt(s.K.Now() + sim.Second)
	s.RunUntil(s.K.Now() + 3*sim.Second)
	if s.V.Accepted != 2 {
		t.Fatalf("post-attack attestation failed (accepted %d)", s.V.Accepted)
	}
}

func TestMalwareBinaryLeavesForensicTrail(t *testing.T) {
	prot := anchor.FullProtection()
	s, err := NewScenario(ScenarioConfig{
		Freshness:  protocol.FreshCounter,
		Auth:       protocol.AuthHMACSHA1,
		Protection: prot,
	})
	if err != nil {
		t.Fatal(err)
	}
	tracer := mcu.NewTracer(32, true)
	s.Dev.M.AttachTracer(tracer)

	region := mcu.Region{Start: mcu.FlashRegion.Start + 0x48000, Size: 0x1000}
	if _, err := isa.LoadProgram(s.Dev.M, region.Start, malwareBinary); err != nil {
		t.Fatal(err)
	}
	isa.RunProgram(s.Dev.M, "malware-binary", region, region.Start, 10_000, nil)
	s.RunUntil(s.K.Now() + sim.Second)

	counterRegion := mcu.Region{Start: anchor.CounterAddr, Size: anchor.CounterSize}
	if tracer.DenialsAt(counterRegion) == 0 {
		t.Fatal("no denial recorded at counter_R — the probe left no trail")
	}
	entries := tracer.Entries()
	if len(entries) == 0 {
		t.Fatal("tracer empty")
	}
	// The trail points at the malware's code region, not the anchor's.
	for _, e := range entries {
		if !region.Contains(e.PC) {
			t.Fatalf("denial attributed to PC %#x outside the malware region", uint32(e.PC))
		}
	}
}
