package core

import (
	"context"
	"fmt"

	"proverattest/internal/adversary"
	"proverattest/internal/anchor"
	"proverattest/internal/protocol"
	"proverattest/internal/runner"
	"proverattest/internal/sim"
)

// Attack names one Adv_ext manipulation from Table 2.
type Attack int

// The Table 2 attacks.
const (
	AttackReplay Attack = iota
	AttackReorder
	AttackDelay
)

func (a Attack) String() string {
	switch a {
	case AttackReplay:
		return "replay"
	case AttackReorder:
		return "reorder"
	case AttackDelay:
		return "delay"
	}
	return fmt.Sprintf("attack(%d)", int(a))
}

// MatrixResult is one Table 2 cell, decided by observation: the attack is
// mitigated iff the prover performed no more measurements than the honest
// schedule warrants.
type MatrixResult struct {
	Attack    Attack
	Freshness protocol.FreshnessKind
	// HonestMeasurements is how many measurements the genuine traffic
	// alone should trigger.
	HonestMeasurements uint64
	// Measurements is what the prover actually performed under attack.
	Measurements uint64
	// Mitigated is true when the adversarial delivery did not cause extra
	// prover work (replay) or when the manipulated stale request was
	// refused (reorder/delay).
	Mitigated bool
	// SimEnd is the simulated time the cell's private kernel reached, fed
	// into the campaign runner's aggregate stats.
	SimEnd sim.Duration
}

// timestampWindowMs is the freshness window used across the matrix: a
// request older than one second is refused.
const timestampWindowMs = 1000

// RunMatrixCell executes one attack×freshness experiment end to end and
// reports the observed outcome. All requests are HMAC-authenticated (the
// matrix isolates freshness, §4.2's concern; §4.1 covers authentication).
func RunMatrixCell(attack Attack, freshness protocol.FreshnessKind) (MatrixResult, error) {
	res := MatrixResult{Attack: attack, Freshness: freshness}

	cfg := ScenarioConfig{
		Freshness:         freshness,
		Auth:              protocol.AuthHMACSHA1,
		TimestampWindowMs: timestampWindowMs,
		Protection:        anchor.FullProtection(),
	}
	if freshness == protocol.FreshTimestamp {
		cfg.Clock = anchor.ClockWide64
	}

	var s *Scenario
	switch attack {
	case AttackReplay:
		// One genuine request at t=1 s; the adversary records it and
		// delivers a second copy 10 s later. Honest work: 1 measurement.
		tap := &adversary.Interceptor{TargetIndex: 0, Duplicate: 10 * sim.Second}
		cfg.Tap = tap
		var err error
		s, err = NewScenario(cfg)
		if err != nil {
			return res, err
		}
		s.IssueAt(1 * sim.Second)
		s.RunUntil(20 * sim.Second)
		res.HonestMeasurements = 1
		res.Measurements = s.Measurements()
		if !tap.Hit {
			return res, fmt.Errorf("core: replay tap never fired")
		}

	case AttackReorder:
		// Two genuine requests at t=1 s and t=2 s; the adversary holds the
		// first for 3 s so the second overtakes it. The held request is
		// stale on arrival: processing it is the attack's success. Honest
		// in-order work would be 2 measurements, but once reordered, a
		// sound prover performs only the in-order one.
		tap := &adversary.Interceptor{TargetIndex: 0, ExtraDelay: 3 * sim.Second}
		cfg.Tap = tap
		var err error
		s, err = NewScenario(cfg)
		if err != nil {
			return res, err
		}
		s.IssueAt(1 * sim.Second)
		s.IssueAt(2 * sim.Second)
		s.RunUntil(20 * sim.Second)
		res.HonestMeasurements = 1
		res.Measurements = s.Measurements()
		if !tap.Hit {
			return res, fmt.Errorf("core: reorder tap never fired")
		}

	case AttackDelay:
		// One genuine request at t=1 s, held by the adversary for 5 s.
		// A sound prover refuses a request that old; accepting it is the
		// attack's success (the paper's "arbitrarily delay" Adv_ext move).
		tap := &adversary.Interceptor{TargetIndex: 0, ExtraDelay: 5 * sim.Second}
		cfg.Tap = tap
		var err error
		s, err = NewScenario(cfg)
		if err != nil {
			return res, err
		}
		s.IssueAt(1 * sim.Second)
		s.RunUntil(20 * sim.Second)
		res.HonestMeasurements = 0
		res.Measurements = s.Measurements()
		if !tap.Hit {
			return res, fmt.Errorf("core: delay tap never fired")
		}

	default:
		return res, fmt.Errorf("core: unknown attack %v", attack)
	}

	res.Mitigated = res.Measurements <= res.HonestMeasurements
	res.SimEnd = sim.Duration(s.K.Now())
	return res, nil
}

// MatrixFreshnessKinds lists Table 2's columns in paper order.
var MatrixFreshnessKinds = []protocol.FreshnessKind{
	protocol.FreshNonceHistory,
	protocol.FreshCounter,
	protocol.FreshTimestamp,
}

// MatrixAttacks lists Table 2's rows in paper order.
var MatrixAttacks = []Attack{AttackReplay, AttackReorder, AttackDelay}

// matrixCells packages Table 2 as independent campaign-runner cells in
// paper order (attack-major, freshness-minor).
func matrixCells() []runner.Cell[MatrixResult] {
	var cells []runner.Cell[MatrixResult]
	for _, attack := range MatrixAttacks {
		for _, fresh := range MatrixFreshnessKinds {
			attack, fresh := attack, fresh
			cells = append(cells, runner.Cell[MatrixResult]{
				Label: fmt.Sprintf("%v × %v", attack, fresh),
				Run: func(ctx context.Context, st *runner.CellStats) (MatrixResult, error) {
					r, err := RunMatrixCell(attack, fresh)
					st.Sim = r.SimEnd
					return r, err
				},
			})
		}
	}
	return cells
}

// RunMatrix regenerates the whole of Table 2 on the campaign runner's
// default worker pool. Cells are independent simulations, so the parallel
// run is byte-identical to a serial one (see RunMatrixParallel for
// explicit worker control).
func RunMatrix() ([]MatrixResult, error) {
	out, _, err := RunMatrixParallel(context.Background(), 0)
	return out, err
}

// RunMatrixParallel regenerates Table 2 across the given number of workers
// (<= 0 means GOMAXPROCS; 1 gives the serial reference run) and reports
// the campaign stats alongside the results, which arrive in paper order
// regardless of completion order.
func RunMatrixParallel(ctx context.Context, workers int) ([]MatrixResult, runner.CampaignStats, error) {
	results, stats := runner.Run(ctx, matrixCells(), runner.Options{Workers: workers})
	out, err := runner.Values(results)
	if err != nil {
		return nil, stats, fmt.Errorf("core: matrix: %w", err)
	}
	return out, stats, nil
}

// PaperTable2 is the paper's printed Table 2, used by tests and the
// harness to compare observed outcomes against the publication. true = ✓.
var PaperTable2 = map[Attack]map[protocol.FreshnessKind]bool{
	AttackReplay: {
		protocol.FreshNonceHistory: true,
		protocol.FreshCounter:      true,
		protocol.FreshTimestamp:    true,
	},
	AttackReorder: {
		protocol.FreshNonceHistory: false,
		protocol.FreshCounter:      true,
		protocol.FreshTimestamp:    true,
	},
	AttackDelay: {
		protocol.FreshNonceHistory: false,
		protocol.FreshCounter:      false,
		protocol.FreshTimestamp:    true,
	},
}
