package core

import (
	"testing"

	"proverattest/internal/protocol"
)

// TestTable2Reproduction runs every attack × freshness cell as a live
// simulation and requires the observed mitigation outcome to equal the
// paper's printed Table 2. This is the headline behavioural result.
func TestTable2Reproduction(t *testing.T) {
	results, err := RunMatrix()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 9 {
		t.Fatalf("matrix has %d cells, want 9", len(results))
	}
	for _, r := range results {
		want := PaperTable2[r.Attack][r.Freshness]
		if r.Mitigated != want {
			t.Errorf("%v × %v: observed mitigated=%v (measurements %d vs honest %d), paper says %v",
				r.Attack, r.Freshness, r.Mitigated, r.Measurements, r.HonestMeasurements, want)
		}
	}
}

func TestReplayCellDetails(t *testing.T) {
	// Counter freshness: the replayed frame must be rejected without a
	// second measurement.
	r, err := RunMatrixCell(AttackReplay, protocol.FreshCounter)
	if err != nil {
		t.Fatal(err)
	}
	if r.Measurements != 1 {
		t.Fatalf("measurements = %d, want exactly 1", r.Measurements)
	}
}

func TestDelayCellDetails(t *testing.T) {
	// Timestamps: the delayed frame is refused outright (0 measurements);
	// counters: it is accepted (1 measurement — the attack's success).
	ts, err := RunMatrixCell(AttackDelay, protocol.FreshTimestamp)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Measurements != 0 {
		t.Fatalf("timestamp: measurements = %d, want 0", ts.Measurements)
	}
	ctr, err := RunMatrixCell(AttackDelay, protocol.FreshCounter)
	if err != nil {
		t.Fatal(err)
	}
	if ctr.Measurements != 1 {
		t.Fatalf("counter: measurements = %d, want 1 (delay not detected)", ctr.Measurements)
	}
}

func TestReorderCellDetails(t *testing.T) {
	// Nonces accept both deliveries (2 measurements); counters reject the
	// stale one (1).
	nonce, err := RunMatrixCell(AttackReorder, protocol.FreshNonceHistory)
	if err != nil {
		t.Fatal(err)
	}
	if nonce.Measurements != 2 {
		t.Fatalf("nonces: measurements = %d, want 2 (reorder undetected)", nonce.Measurements)
	}
	ctr, err := RunMatrixCell(AttackReorder, protocol.FreshCounter)
	if err != nil {
		t.Fatal(err)
	}
	if ctr.Measurements != 1 {
		t.Fatalf("counter: measurements = %d, want 1", ctr.Measurements)
	}
}

func TestAttackStrings(t *testing.T) {
	if AttackReplay.String() != "replay" || AttackReorder.String() != "reorder" ||
		AttackDelay.String() != "delay" {
		t.Error("attack names wrong")
	}
	if Attack(42).String() == "" {
		t.Error("unknown attack should still format")
	}
}
