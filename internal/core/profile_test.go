package core

import (
	"testing"

	"proverattest/internal/adversary"
	"proverattest/internal/anchor"
	"proverattest/internal/mcu"
	"proverattest/internal/protocol"
	"proverattest/internal/sim"
)

func profileScenario(t *testing.T, profile anchor.Profile) *Scenario {
	t.Helper()
	s, err := NewScenario(ScenarioConfig{
		Profile:    profile,
		Freshness:  protocol.FreshCounter,
		Auth:       protocol.AuthHMACSHA1,
		Protection: anchor.FullProtection(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAllProfilesAttestSuccessfully(t *testing.T) {
	for _, p := range []anchor.Profile{anchor.ProfileTrustLite, anchor.ProfileSMART, anchor.ProfileTyTAN} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			s := profileScenario(t, p)
			s.IssueEvery(sim.Second+s.K.Now(), 2*sim.Second, 3)
			s.RunUntil(s.K.Now() + 15*sim.Second)
			if s.V.Accepted != 3 {
				t.Fatalf("%v: accepted %d/3 rounds", p, s.V.Accepted)
			}
		})
	}
}

func TestSMARTHasHardwiredRules(t *testing.T) {
	s := profileScenario(t, anchor.ProfileSMART)
	if !s.Dev.M.MPU.Hardwired() {
		t.Fatal("SMART profile built a programmable MPU")
	}
	// The hardwired table protects the key: application reads fault.
	if _, f := s.Dev.M.Bus.Read(mcu.FlashRegion.Start, s.Dev.A.KeyAddr(), 4); f == nil {
		t.Fatal("key unprotected on SMART profile")
	}
	// Even boot-ROM code cannot reprogram the table (it is silicon).
	if f := s.Dev.M.Bus.Store32(mcu.BootROMTask.Start, mcu.MPURuleAddr(0, 0x14), 0); f == nil {
		t.Fatal("SMART rule table reprogrammed over the bus")
	}
	// A hardware reset does not clear it either — unlike TrustLite, SMART
	// protection needs no secure-boot step to re-arm.
	s.Dev.M.MPU.Reset()
	if _, f := s.Dev.M.Bus.Read(mcu.FlashRegion.Start, s.Dev.A.KeyAddr(), 4); f == nil {
		t.Fatal("SMART rules vanished on reset")
	}
}

func TestSMARTResistsRoamingWithoutLockdown(t *testing.T) {
	// The TrustLite design depends on the boot-time lockdown; SMART's
	// static rules hold even though no lock bit was ever set.
	s := profileScenario(t, anchor.ProfileSMART)
	roam := adversary.Infect(s.Dev.M, s.K)
	if out := roam.RollbackCounter(0); out.Succeeded {
		t.Fatal("counter rolled back on SMART profile")
	}
	if out := roam.ExtractKey(s.Dev.A.KeyAddr()); out.Succeeded {
		t.Fatal("key extracted on SMART profile")
	}
	if out := roam.DisableMPURule(0); out.Succeeded {
		t.Fatal("hardwired rule disabled")
	}
}

func TestSMARTForcesROMKeyAndUninterruptibleCode(t *testing.T) {
	cfg, err := anchor.NormalizeConfig(anchor.Config{
		Profile:     anchor.ProfileSMART,
		KeyLocation: anchor.KeyInFlash, // profile must override this
		AttestKey:   DefaultAttestKey,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.KeyLocation != anchor.KeyInROM {
		t.Fatal("SMART profile did not force the ROM key location")
	}
	if cfg.InterruptibleAttest {
		t.Fatal("SMART profile allowed interruptible attestation")
	}
	tytan, err := anchor.NormalizeConfig(anchor.Config{
		Profile:   anchor.ProfileTyTAN,
		AttestKey: DefaultAttestKey,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tytan.InterruptibleAttest {
		t.Fatal("TyTAN profile is not interruptible")
	}
}

func TestSMARTInstallRequiresHardwiredMPU(t *testing.T) {
	k := sim.NewKernel()
	m := mcu.New(k, mcu.Config{MPURules: 8}) // programmable MPU
	_, err := anchor.Install(m, anchor.Config{
		Profile:   anchor.ProfileSMART,
		AttestKey: DefaultAttestKey,
	})
	if err == nil {
		t.Fatal("SMART anchor installed on a programmable MPU")
	}
}

func TestRoamingCounterAttackFailsOnSMART(t *testing.T) {
	// Full three-phase campaign against a SMART prover: Phase II faults on
	// the hardwired rule, Phase III replay is stale.
	s := profileScenario(t, anchor.ProfileSMART)
	rec := &adversary.Recorder{}
	_ = rec // the scenario was built with a passthrough tap; drive directly

	// One genuine round.
	s.IssueAt(s.K.Now() + sim.Second)
	s.RunUntil(s.K.Now() + 5*sim.Second)
	if s.Measurements() != 1 {
		t.Fatalf("genuine round: %d measurements", s.Measurements())
	}

	// Compromise + rollback attempt + replay of a forged stale frame.
	roam := adversary.Infect(s.Dev.M, s.K)
	if out := roam.RollbackCounter(0); out.Succeeded {
		t.Fatal("rollback succeeded on SMART")
	}
	if s.Dev.A.ReadCounter() != 1 {
		t.Fatal("counter changed despite fault")
	}
}
