package core

import (
	"testing"

	"proverattest/internal/anchor"
	"proverattest/internal/channel"
	"proverattest/internal/protocol"
	"proverattest/internal/sim"
)

func lossyScenario(t *testing.T, tap channel.Tap) *Scenario {
	t.Helper()
	s, err := NewScenario(ScenarioConfig{
		Freshness:  protocol.FreshCounter,
		Auth:       protocol.AuthHMACSHA1,
		Protection: anchor.FullProtection(),
		Tap:        tap,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLossTapDropsDeterministically(t *testing.T) {
	// 50 % loss without retries: every second request vanishes.
	tap := &channel.LossTap{DropEvery: 2,
		Match: func(m channel.Message) bool { return m.To == channel.Prover }}
	s := lossyScenario(t, tap)
	s.IssueEvery(s.K.Now()+sim.Second, 2*sim.Second, 6)
	s.RunUntil(s.K.Now() + 20*sim.Second)
	if tap.Dropped != 3 {
		t.Fatalf("dropped %d of 6, want 3", tap.Dropped)
	}
	if s.V.Accepted != 3 {
		t.Fatalf("accepted %d, want 3 (no retries)", s.V.Accepted)
	}
}

func TestRetryRecoversFromRequestLoss(t *testing.T) {
	// Drop every second prover-bound frame; one retry recovers each loss.
	tap := &channel.LossTap{DropEvery: 2,
		Match: func(m channel.Message) bool { return m.To == channel.Prover }}
	s := lossyScenario(t, tap)
	for i := 0; i < 4; i++ {
		s.IssueWithRetry(s.K.Now()+sim.Time(1+4*i)*sim.Second, 2*sim.Second, 2)
	}
	s.RunUntil(s.K.Now() + 30*sim.Second)
	if s.V.Accepted != 4 {
		t.Fatalf("accepted %d/4 despite retries (expired %d)", s.V.Accepted, s.V.Expired)
	}
	if s.V.Expired == 0 {
		t.Fatal("no request ever timed out — the loss tap did nothing")
	}
}

func TestRetryRecoversFromResponseLoss(t *testing.T) {
	// The harder case: the request got through and the PROVER DID THE
	// WORK, but the response vanished. The retry must be a fresh request
	// (new counter) — replaying the old frame would be refused.
	s := lossyScenario(t, &dropFirstResponse{})
	s.IssueWithRetry(s.K.Now()+sim.Second, 2*sim.Second, 2)
	s.RunUntil(s.K.Now() + 15*sim.Second)
	if s.V.Accepted != 1 {
		t.Fatalf("accepted %d, want 1 via retry", s.V.Accepted)
	}
	// Both the lost-response attempt and the retry were measured: the
	// prover's work is not free under response loss — an asymmetry a
	// response-dropping Adv_ext can exploit within the retry budget.
	if s.Measurements() != 2 {
		t.Fatalf("measurements = %d, want 2", s.Measurements())
	}
	if s.Dev.A.ReadCounter() != 2 {
		t.Fatalf("counter_R = %d, want 2 (both requests consumed)", s.Dev.A.ReadCounter())
	}
}

func TestRetryBudgetBoundsAdversarialAmplification(t *testing.T) {
	// An adversary dropping ALL responses forces at most 1+maxRetries
	// measurements per genuine attestation — the retry budget is also the
	// DoS amplification bound.
	tap := &channel.LossTap{DropEvery: 2, Match: func(m channel.Message) bool { return false }}
	dropAll := &dropResponses{}
	_ = tap
	s := lossyScenario(t, dropAll)
	s.IssueWithRetry(s.K.Now()+sim.Second, 2*sim.Second, 3)
	s.RunUntil(s.K.Now() + 30*sim.Second)
	if s.V.Accepted != 0 {
		t.Fatal("a response got through the drop-all tap")
	}
	if s.Measurements() != 4 {
		t.Fatalf("measurements = %d, want exactly 1+3 retries", s.Measurements())
	}
	if s.V.Expired != 4 {
		t.Fatalf("expired = %d, want 4", s.V.Expired)
	}
}

// dropFirstResponse discards only the first prover→verifier frame.
type dropFirstResponse struct{ dropped bool }

func (d *dropFirstResponse) OnSend(msg channel.Message, now sim.Time) []channel.Delivery {
	if msg.To == channel.Verifier && !d.dropped {
		d.dropped = true
		return nil
	}
	return []channel.Delivery{{Msg: msg}}
}

// dropResponses discards all prover→verifier traffic.
type dropResponses struct{}

func (dropResponses) OnSend(msg channel.Message, now sim.Time) []channel.Delivery {
	if msg.To == channel.Verifier {
		return nil
	}
	return []channel.Delivery{{Msg: msg}}
}

func TestScenarioDeterminism(t *testing.T) {
	// Two identical lossy runs must produce bit-identical statistics: the
	// whole stack (kernel, MCU, channel, loss, retries) is deterministic.
	run := func() (uint64, uint64, uint64, uint64) {
		tap := &channel.LossTap{DropEvery: 3}
		s := lossyScenario(t, tap)
		for i := 0; i < 5; i++ {
			s.IssueWithRetry(s.K.Now()+sim.Time(1+3*i)*sim.Second, sim.Second, 2)
		}
		s.RunUntil(s.K.Now() + 30*sim.Second)
		return s.V.Accepted, s.V.Expired, s.Measurements(), uint64(s.Dev.M.ActiveCycles)
	}
	a1, e1, m1, c1 := run()
	a2, e2, m2, c2 := run()
	if a1 != a2 || e1 != e2 || m1 != m2 || c1 != c2 {
		t.Fatalf("non-deterministic runs: (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
			a1, e1, m1, c1, a2, e2, m2, c2)
	}
}
