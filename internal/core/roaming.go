package core

import (
	"context"
	"fmt"

	"proverattest/internal/adversary"
	"proverattest/internal/anchor"
	"proverattest/internal/channel"
	"proverattest/internal/crypto/cost"
	"proverattest/internal/mcu"
	"proverattest/internal/protocol"
	"proverattest/internal/runner"
	"proverattest/internal/sim"
)

// RoamTarget names one Adv_roam Phase II tampering strategy from §5/§6.2.
type RoamTarget int

// The roaming-adversary targets.
const (
	// RoamCounter: roll counter_R back to i−1, replay attreq(i). The
	// paper's flagship attack — undetectable after the fact.
	RoamCounter RoamTarget = iota
	// RoamClockReset: set the hardware clock to t_i−δ, wait δ, replay
	// attreq(t_i). Leaves the clock behind (evidence).
	RoamClockReset
	// RoamClockMSB: overwrite the SW-clock's Clock_MSB word directly.
	RoamClockMSB
	// RoamIDTPatch: redirect the timer vector so Code_Clock stops running
	// and the SW clock stalls.
	RoamIDTPatch
	// RoamMaskIRQ: disable the timer interrupt line — the other way to
	// stall the SW clock.
	RoamMaskIRQ
	// RoamKeyExtract: steal K_Attest and forge fresh requests at will.
	RoamKeyExtract
	// RoamKeyOverwrite: replace the flash-resident K_Attest with an
	// adversary-chosen key and sign requests under it.
	RoamKeyOverwrite
	// RoamMPUReconfig: disable the protection rules themselves at runtime
	// (defeated by the secure-boot lockdown).
	RoamMPUReconfig
)

func (t RoamTarget) String() string {
	switch t {
	case RoamCounter:
		return "counter rollback"
	case RoamClockReset:
		return "clock reset"
	case RoamClockMSB:
		return "Clock_MSB overwrite"
	case RoamIDTPatch:
		return "IDT patch"
	case RoamMaskIRQ:
		return "timer IRQ mask"
	case RoamKeyExtract:
		return "key extraction"
	case RoamKeyOverwrite:
		return "key overwrite"
	case RoamMPUReconfig:
		return "MPU reconfiguration"
	}
	return fmt.Sprintf("target(%d)", int(t))
}

// RoamingResult reports one three-phase campaign.
type RoamingResult struct {
	Target    RoamTarget
	Protected bool

	// TamperOutcomes are the Phase II hardware verdicts.
	TamperOutcomes []adversary.Outcome
	// HonestMeasurements is the prover work the genuine traffic warrants.
	HonestMeasurements uint64
	// Measurements is the prover work actually performed.
	Measurements uint64
	// AttackSucceeded: the Phase III delivery triggered unauthorized work.
	AttackSucceeded bool
	// CounterRestored: counter_R ended at its pre-attack value, making the
	// counter attack undetectable after the fact (§5).
	CounterRestored bool
	// ClockBehindMs: how far the prover clock lags real time at the end —
	// the residual evidence the paper notes for the timestamp attack.
	ClockBehindMs int64
	// DenialsLogged counts EA-MPU denials the bus tracer captured during
	// the campaign: on a protected prover, Phase II probing leaves this
	// forensic fingerprint even though the attack itself fails.
	DenialsLogged uint64
	// SimEnd is the simulated time the campaign's private kernel reached,
	// fed into the campaign runner's aggregate stats.
	SimEnd sim.Duration
}

// RunRoamingCampaign executes the full three-phase Adv_roam script against
// a prover with or without the corresponding protection, and reports what
// actually happened.
func RunRoamingCampaign(target RoamTarget, protected bool) (RoamingResult, error) {
	res := RoamingResult{Target: target, Protected: protected}

	// Build the scenario: freshness and clock depend on the target.
	cfg := ScenarioConfig{
		Auth:              protocol.AuthHMACSHA1,
		TimestampWindowMs: 1000,
	}
	switch target {
	case RoamCounter, RoamKeyExtract, RoamKeyOverwrite, RoamMPUReconfig:
		cfg.Freshness = protocol.FreshCounter
	case RoamClockReset:
		cfg.Freshness = protocol.FreshTimestamp
		cfg.Clock = anchor.ClockWide64
	case RoamClockMSB, RoamIDTPatch, RoamMaskIRQ:
		cfg.Freshness = protocol.FreshTimestamp
		cfg.Clock = anchor.ClockSW
	}
	if target == RoamKeyOverwrite {
		// Overwriting is only meaningful for a writable key location.
		cfg.KeyLocation = anchor.KeyInFlash
	}

	prot := anchor.Protection{Key: true, LockMPU: true} // SMART baseline, always on
	if protected {
		prot = anchor.FullProtection()
	}
	if target == RoamKeyExtract || target == RoamKeyOverwrite {
		// These campaigns attack the key rule itself.
		prot.Key = protected
	}
	if target == RoamMPUReconfig {
		// The campaign attacks the lockdown: rules installed either way.
		prot = anchor.FullProtection()
		prot.LockMPU = protected
	}
	cfg.Protection = prot

	// Phase I: eavesdrop on genuine traffic.
	rec := &adversary.Recorder{}
	cfg.Tap = rec
	s, err := NewScenario(cfg)
	if err != nil {
		return res, err
	}
	// Arm the denied-access tracer: a protected prover cannot stop the
	// adversary from *probing*, but every refused probe is logged.
	tracer := mcu.NewTracer(64, true)
	s.Dev.M.AttachTracer(tracer)

	// One genuine attestation at t=10 s (recorded by the adversary).
	tIssue := 10 * sim.Second
	// Phase II timing: normally t=12 s. For attacks that *stall* the SW
	// clock, the tamper must land inside the same Clock_LSB wrap window as
	// the recording (wraps are 2.80 s apart; the window containing t=10 s
	// ends at 11.18 s) — freezing the MSB any later pins the clock to a
	// later epoch from which the recorded timestamp is unreachable.
	tTamper := 12 * sim.Second
	switch target {
	case RoamClockMSB, RoamIDTPatch, RoamMaskIRQ:
		tTamper = tIssue + 900*sim.Millisecond
	}
	s.IssueAt(tIssue)
	s.RunUntil(tTamper)
	if len(rec.Frames) == 0 {
		return res, fmt.Errorf("core: phase I recorded no frames")
	}
	recorded := rec.Recorded(0)
	res.HonestMeasurements = 1 // the single genuine request

	// Phase II: infect, tamper, erase traces.
	roam := adversary.Infect(s.Dev.M, s.K)
	preCounter := s.Dev.A.ReadCounter()

	// Phase III timing depends on the target; default replay at t=20 s.
	replayAt := 20 * sim.Second

	switch target {
	case RoamCounter:
		cur, _ := roam.ReadCounter()
		res.TamperOutcomes = append(res.TamperOutcomes, roam.RollbackCounter(cur-1))

	case RoamClockReset:
		// Recorded request carries t_i ≈ 10 000 ms. Set the clock to
		// t_i − δ with δ = 8 s, then replay δ later: the prover clock then
		// reads ≈ t_i and accepts the stale request.
		req, err := protocol.DecodeAttReq(recorded.Payload)
		if err != nil {
			return res, err
		}
		const deltaMs = 8000
		res.TamperOutcomes = append(res.TamperOutcomes, roam.ResetWideClock(req.Timestamp-deltaMs))
		replayAt = s.K.Now() + deltaMs*sim.Millisecond

	case RoamClockMSB:
		// Freeze the clock into the past by rewinding the MSB word; replay
		// when the LSB phase matches the recording so the full reading
		// reproduces t_i exactly (deterministic wrap arithmetic).
		msbAtRecording := uint32(uint64(tIssue) * 3 / 125 >> anchor.LSBWidth)
		res.TamperOutcomes = append(res.TamperOutcomes, roam.OverwriteClockMSB(msbAtRecording))
		replayAt = wrapAlignedReplay(tIssue, 7)
		// An unprotected prover lets the ISR keep incrementing from the
		// rewound value; after k wraps the clock reads t_i + (k·wrap −
		// rewind) … to keep the script exact we also stop the ISR.
		res.TamperOutcomes = append(res.TamperOutcomes, roam.PatchIDT(0))

	case RoamIDTPatch:
		res.TamperOutcomes = append(res.TamperOutcomes, roam.PatchIDT(0))
		replayAt = wrapAlignedReplay(tIssue, 7)

	case RoamMaskIRQ:
		res.TamperOutcomes = append(res.TamperOutcomes, roam.MaskTimerIRQ())
		replayAt = wrapAlignedReplay(tIssue, 7)

	case RoamKeyExtract:
		out := roam.ExtractKey(s.Dev.A.KeyAddr())
		res.TamperOutcomes = append(res.TamperOutcomes, out)
		if out.Succeeded {
			// Forge a brand-new, perfectly fresh request with the stolen
			// key: full verifier impersonation.
			forged := &protocol.AttReq{
				Freshness: protocol.FreshCounter,
				Auth:      protocol.AuthHMACSHA1,
				Nonce:     0xDEAD,
				Counter:   preCounter + 100,
			}
			forgedAuth := protocol.NewHMACAuth(out.Loot)
			tag, err := forgedAuth.Sign(forged.SignedBytes())
			if err != nil {
				return res, err
			}
			forged.Tag = tag
			recorded.Payload = forged.Encode()
		}

	case RoamKeyOverwrite:
		evil := make([]byte, anchor.KeySize)
		for i := range evil {
			evil[i] = 0xE0 + byte(i)
		}
		out := roam.OverwriteKey(s.Dev.A.KeyAddr(), evil)
		res.TamperOutcomes = append(res.TamperOutcomes, out)
		if out.Succeeded {
			forged := &protocol.AttReq{
				Freshness: protocol.FreshCounter,
				Auth:      protocol.AuthHMACSHA1,
				Nonce:     0xBEEF,
				Counter:   preCounter + 100,
			}
			forgedAuth := protocol.NewHMACAuth(evil)
			tag, err := forgedAuth.Sign(forged.SignedBytes())
			if err != nil {
				return res, err
			}
			forged.Tag = tag
			recorded.Payload = forged.Encode()
		}

	case RoamMPUReconfig:
		// Disable the counter rule (index 1 in FullProtection's policy)
		// then roll the counter back through the opened hole.
		res.TamperOutcomes = append(res.TamperOutcomes, roam.DisableMPURule(1))
		cur, _ := roam.ReadCounter()
		if cur > 0 {
			res.TamperOutcomes = append(res.TamperOutcomes, roam.RollbackCounter(cur-1))
		} else {
			res.TamperOutcomes = append(res.TamperOutcomes, roam.RollbackCounter(0))
		}

	default:
		return res, fmt.Errorf("core: unknown roaming target %v", target)
	}

	res.TamperOutcomes = append(res.TamperOutcomes, roam.EraseTraces())

	// Phase III: replay (or deliver the forged frame).
	s.K.At(replayAt, func() {
		s.C.Inject(channel.Message{
			From:    channel.Verifier,
			To:      channel.Prover,
			Payload: recorded.Payload,
		}, 0)
	})
	s.RunUntil(replayAt + 5*sim.Second)

	res.Measurements = s.Measurements()
	res.SimEnd = sim.Duration(s.K.Now())
	res.AttackSucceeded = res.Measurements > res.HonestMeasurements
	res.CounterRestored = s.Dev.A.ReadCounter() == preCounter
	res.DenialsLogged = tracer.Denials
	if cfg.Clock != anchor.ClockNone {
		realMs := int64(s.K.Now() / sim.Millisecond)
		res.ClockBehindMs = realMs - int64(s.Dev.A.ClockNowMs())
	}
	return res, nil
}

// wrapAlignedReplay returns the absolute time exactly k SW-clock wrap
// periods after t, so the Clock_LSB reading at the replay matches the one
// at t (the deterministic stalled-clock replay window).
func wrapAlignedReplay(t sim.Time, k uint64) sim.Time {
	wrapCycles := uint64(1) << anchor.LSBWidth
	return t + cost.Cycles(k*wrapCycles).Duration()
}

// AllRoamTargets lists every campaign in presentation order.
var AllRoamTargets = []RoamTarget{
	RoamCounter, RoamClockReset, RoamClockMSB, RoamIDTPatch,
	RoamMaskIRQ, RoamKeyExtract, RoamKeyOverwrite, RoamMPUReconfig,
}

// RoamingCampaignSpec names one cell of the §5 campaign matrix.
type RoamingCampaignSpec struct {
	Target    RoamTarget
	Protected bool
}

// AllRoamingCampaigns lists every target × protection cell in
// presentation order (each target unprotected first, then protected).
func AllRoamingCampaigns() []RoamingCampaignSpec {
	var specs []RoamingCampaignSpec
	for _, target := range AllRoamTargets {
		for _, protected := range []bool{false, true} {
			specs = append(specs, RoamingCampaignSpec{Target: target, Protected: protected})
		}
	}
	return specs
}

// RunRoamingMatrix executes the full §5 campaign matrix — every roaming
// target against both an unprotected and a protected prover — across the
// campaign runner's worker pool, returning results in presentation order.
func RunRoamingMatrix(ctx context.Context, workers int) ([]RoamingResult, runner.CampaignStats, error) {
	specs := AllRoamingCampaigns()
	cells := make([]runner.Cell[RoamingResult], len(specs))
	for i, spec := range specs {
		spec := spec
		mode := "unprotected"
		if spec.Protected {
			mode = "protected"
		}
		cells[i] = runner.Cell[RoamingResult]{
			Label: fmt.Sprintf("%v (%s)", spec.Target, mode),
			Run: func(ctx context.Context, st *runner.CellStats) (RoamingResult, error) {
				r, err := RunRoamingCampaign(spec.Target, spec.Protected)
				st.Sim = r.SimEnd
				return r, err
			},
		}
	}
	results, stats := runner.Run(ctx, cells, runner.Options{Workers: workers})
	out, err := runner.Values(results)
	if err != nil {
		return nil, stats, fmt.Errorf("core: roaming matrix: %w", err)
	}
	return out, stats, nil
}
