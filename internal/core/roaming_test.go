package core

import (
	"testing"
)

// runCampaign is a helper asserting the basic structure of a result.
func runCampaign(t *testing.T, target RoamTarget, protected bool) RoamingResult {
	t.Helper()
	res, err := RunRoamingCampaign(target, protected)
	if err != nil {
		t.Fatalf("%v (protected=%v): %v", target, protected, err)
	}
	if len(res.TamperOutcomes) == 0 {
		t.Fatalf("%v: no tamper outcomes recorded", target)
	}
	return res
}

// TestRoamingMatrix is the §5 headline: every Phase II strategy succeeds
// against an unprotected prover and fails against the protected one.
func TestRoamingMatrix(t *testing.T) {
	for _, target := range AllRoamTargets {
		target := target
		t.Run(target.String(), func(t *testing.T) {
			unprot := runCampaign(t, target, false)
			if !unprot.AttackSucceeded {
				t.Errorf("unprotected: attack failed (measurements %d vs honest %d; outcomes %v)",
					unprot.Measurements, unprot.HonestMeasurements, unprot.TamperOutcomes)
			}
			prot := runCampaign(t, target, true)
			if prot.AttackSucceeded {
				t.Errorf("protected: attack succeeded (measurements %d vs honest %d; outcomes %v)",
					prot.Measurements, prot.HonestMeasurements, prot.TamperOutcomes)
			}
		})
	}
}

func TestRoamCounterUndetectable(t *testing.T) {
	// §5's subtle point: after the counter attack, counter_R is back at
	// its pre-attack value — "the DoS attack is undetectable after the
	// fact".
	res := runCampaign(t, RoamCounter, false)
	if !res.AttackSucceeded {
		t.Fatal("attack did not succeed")
	}
	if !res.CounterRestored {
		t.Fatal("counter_R did not return to its pre-attack value — the attack left evidence")
	}
}

func TestRoamClockResetLeavesEvidence(t *testing.T) {
	// §5's contrast: the clock-reset attack succeeds but "the prover's
	// clock remains behind" — detectable evidence, unlike the counter.
	res := runCampaign(t, RoamClockReset, false)
	if !res.AttackSucceeded {
		t.Fatal("attack did not succeed")
	}
	if res.ClockBehindMs < 5000 {
		t.Fatalf("prover clock behind by %d ms, expected a multi-second lag as evidence", res.ClockBehindMs)
	}
}

func TestProtectedClockStaysSynchronised(t *testing.T) {
	res := runCampaign(t, RoamClockReset, true)
	if res.ClockBehindMs > 100 || res.ClockBehindMs < -100 {
		t.Fatalf("protected prover clock off by %d ms, want ≈0", res.ClockBehindMs)
	}
	// The tamper itself must have been refused by the hardware.
	for _, o := range res.TamperOutcomes {
		if o.Action == "erase traces" {
			continue
		}
		if o.Succeeded {
			t.Errorf("protected prover allowed %q", o.Action)
		}
	}
}

func TestSWClockStallAttacks(t *testing.T) {
	// The Figure 1b attack surface: stopping Code_Clock (IDT patch or IRQ
	// mask) freezes the software clock, making a recorded request
	// replayable at wrap-aligned instants forever after.
	for _, target := range []RoamTarget{RoamIDTPatch, RoamMaskIRQ} {
		res := runCampaign(t, target, false)
		if !res.AttackSucceeded {
			t.Errorf("%v: stalled-clock replay failed", target)
		}
		if res.ClockBehindMs < 10_000 {
			t.Errorf("%v: clock behind %d ms, expected a large stall", target, res.ClockBehindMs)
		}
	}
}

func TestKeyExtractionEnablesForgery(t *testing.T) {
	res := runCampaign(t, RoamKeyExtract, false)
	if !res.AttackSucceeded {
		t.Fatal("forged request with stolen key was rejected")
	}
	// With the key rule installed, extraction fails and the replayed
	// original is stale.
	prot := runCampaign(t, RoamKeyExtract, true)
	for _, o := range prot.TamperOutcomes {
		if o.Action == "extract K_Attest" {
			if o.Succeeded {
				t.Fatal("protected key was extracted")
			}
			if len(o.Loot) != 0 {
				t.Fatal("protected extraction still produced loot")
			}
		}
	}
}

func TestMPULockdownIsTheLinchpin(t *testing.T) {
	// Without the secure-boot lockdown, the adversary simply disables the
	// counter rule and proceeds — all other protection is moot (§6.2).
	res := runCampaign(t, RoamMPUReconfig, false)
	if !res.AttackSucceeded {
		t.Fatal("unlocked MPU did not enable the attack")
	}
	prot := runCampaign(t, RoamMPUReconfig, true)
	if prot.AttackSucceeded {
		t.Fatal("locked MPU still allowed the attack")
	}
}

func TestProtectedProversLogTamperFingerprints(t *testing.T) {
	// On a protected prover the Phase II probes fail AND leave a denial
	// trail; on an unprotected prover they succeed silently — the tracer
	// formalises "undetectable after the fact".
	for _, target := range []RoamTarget{RoamCounter, RoamClockReset, RoamKeyExtract} {
		prot := runCampaign(t, target, true)
		if prot.DenialsLogged == 0 {
			t.Errorf("%v protected: no denials logged despite refused tampering", target)
		}
		unprot := runCampaign(t, target, false)
		if unprot.DenialsLogged != 0 {
			t.Errorf("%v unprotected: %d denials logged — tampering should have been silent",
				target, unprot.DenialsLogged)
		}
	}
}

func TestRoamTargetStrings(t *testing.T) {
	for _, target := range AllRoamTargets {
		if target.String() == "" {
			t.Errorf("target %d has no name", int(target))
		}
	}
	if RoamTarget(99).String() == "" {
		t.Error("unknown target should still format")
	}
}
