package core

import (
	"fmt"

	"proverattest/internal/anchor"
	"proverattest/internal/channel"
	"proverattest/internal/energy"
	"proverattest/internal/mcu"
	"proverattest/internal/protocol"
	"proverattest/internal/services"
	"proverattest/internal/sim"
)

// ScenarioConfig describes one end-to-end setup: the prover's policy, the
// verifier's matching configuration, the channel, and an optional
// Dolev-Yao tap through which the external adversary works.
type ScenarioConfig struct {
	// Profile selects the architecture (TrustLite default, SMART, TyTAN).
	Profile           anchor.Profile
	Freshness         protocol.FreshnessKind
	Auth              protocol.AuthKind
	Clock             anchor.ClockDesign
	Protection        anchor.Protection
	TimestampWindowMs uint64
	TimestampSkewMs   uint64
	NonceCapacity     int
	KeyLocation       anchor.KeyLocation
	// Latency is the one-way channel latency (default 1 ms).
	Latency sim.Duration
	// Tap is the Dolev-Yao interposition point (nil = honest network).
	Tap channel.Tap
	// AttestKey overrides K_Attest (default DefaultAttestKey). Fleet
	// deployments derive one per device from a master secret.
	AttestKey []byte
	// Battery, when set, is drained by the prover's activity.
	Battery *energy.Battery
	// VerifierClockOffsetMs models verifier↔prover clock drift: the
	// verifier's timestamps run this many ms ahead (+) or behind (−).
	VerifierClockOffsetMs int64
	// MeasuredRegion overrides the attested memory (default: all 512 KB
	// of RAM); used by the measurement-size ablation.
	MeasuredRegion mcu.Region
	// MeasurementChunk streams the measurement in chunks of this many
	// bytes (0 = atomic); see anchor.Config.MeasurementChunk.
	MeasurementChunk uint32
	// Monitor installs the RATA-style write monitor on the prover and
	// enables the fast path on both ends: the verifier grants fast-path
	// permission once a full measurement verifies, and the anchor answers
	// O(1) while the monitor stays clean. Protection.Monitor additionally
	// locks the monitor's rearm register to Code_Attest.
	Monitor bool
	// EnableServices installs the secure-update, secure-erase and
	// clock-sync services behind the anchor's gate.
	EnableServices bool
	// SwarmKey provisions the fleet-wide K_Swarm broadcast key, enabling
	// swarm (collective) attestation on this prover. SwarmIndex is the
	// member's spanning-tree index and SwarmFleet the fleet size (bitmap
	// width); both are set by NewFleet when FleetConfig.Fanout > 0.
	SwarmKey   []byte
	SwarmIndex uint16
	SwarmFleet int
	// MaxSyncStepMs bounds one clock-sync adjustment (default 500 ms).
	MaxSyncStepMs int64
}

// Scenario is a wired verifier–channel–prover system on one kernel.
type Scenario struct {
	K   *sim.Kernel
	Dev *Device
	V   *protocol.Verifier
	C   *channel.Channel

	cmdWaiters map[uint64]func(*protocol.CommandResp)

	// ResponsesSeen counts frames that reached the verifier endpoint.
	ResponsesSeen uint64

	// SwarmReqHandler, when set, receives swarm aggregation requests
	// arriving at the prover endpoint (the fleet swarm driver installs it
	// on subtree roots; unhandled swarm frames fall through to the
	// anchor's request gate and are counted as malformed there).
	SwarmReqHandler func(payload []byte, reply func([]byte))
	// SwarmRespHandler, when set, receives swarm aggregate responses
	// arriving at the verifier endpoint.
	SwarmRespHandler func(payload []byte)
}

// NewScenario assembles and boots everything on a fresh kernel.
func NewScenario(cfg ScenarioConfig) (*Scenario, error) {
	return NewScenarioOn(sim.NewKernel(), cfg)
}

// NewScenarioOn assembles a scenario on an existing kernel, so several
// provers (a fleet) can share one timeline.
func NewScenarioOn(k *sim.Kernel, cfg ScenarioConfig) (*Scenario, error) {
	if cfg.Latency == 0 {
		cfg.Latency = sim.Millisecond
	}

	key := cfg.AttestKey
	if key == nil {
		key = DefaultAttestKey
	}
	acfg := anchor.Config{
		AttestKey:         key,
		Profile:           cfg.Profile,
		Freshness:         cfg.Freshness,
		Clock:             cfg.Clock,
		TimestampWindowMs: cfg.TimestampWindowMs,
		TimestampSkewMs:   cfg.TimestampSkewMs,
		NonceCapacity:     cfg.NonceCapacity,
		KeyLocation:       cfg.KeyLocation,
		MeasuredRegion:    cfg.MeasuredRegion,
		MeasurementChunk:  cfg.MeasurementChunk,
		Monitor:           cfg.Monitor,
		Protection:        cfg.Protection,
		SwarmKey:          cfg.SwarmKey,
		SwarmIndex:        cfg.SwarmIndex,
		SwarmFleet:        cfg.SwarmFleet,
	}
	if err := NewDeviceAuth(cfg.Auth, &acfg); err != nil {
		return nil, err
	}
	dev, err := NewDevice(k, DeviceConfig{Anchor: acfg, Battery: cfg.Battery})
	if err != nil {
		return nil, err
	}

	var auth protocol.Authenticator
	switch cfg.Auth {
	case protocol.AuthECDSA:
		key, err := VerifierKeyPair()
		if err != nil {
			return nil, err
		}
		auth = protocol.NewECDSAAuth(key)
	case protocol.AuthHMACSHA1:
		auth = protocol.NewHMACAuth(key)
	case protocol.AuthNone:
		auth = protocol.NoAuth{}
	default:
		var err error
		auth, err = protocol.NewAuthenticator(cfg.Auth, key[:16])
		if err != nil {
			return nil, err
		}
	}

	golden := dev.GoldenRAM()
	if cfg.MeasuredRegion.Size != 0 {
		if !mcu.RAMRegion.ContainsRange(cfg.MeasuredRegion.Start, cfg.MeasuredRegion.Size) {
			return nil, fmt.Errorf("core: measured region %v outside RAM", cfg.MeasuredRegion)
		}
		off := cfg.MeasuredRegion.Start - mcu.RAMRegion.Start
		golden = golden[off : uint32(off)+cfg.MeasuredRegion.Size]
	}
	v, err := protocol.NewVerifier(protocol.VerifierConfig{
		Freshness:     cfg.Freshness,
		Auth:          auth,
		AttestKey:     key,
		Golden:        golden,
		AllowFastPath: cfg.Monitor,
		Clock: func() uint64 {
			ms := int64(k.Now()/sim.Millisecond) + cfg.VerifierClockOffsetMs
			if ms < 0 {
				ms = 0
			}
			return uint64(ms)
		},
	})
	if err != nil {
		return nil, fmt.Errorf("core: building verifier: %w", err)
	}

	if cfg.EnableServices {
		if cfg.MaxSyncStepMs == 0 {
			cfg.MaxSyncStepMs = 500
		}
		services.InstallUpdateService(dev.A, AppImageRegion)
		services.InstallEraseService(dev.A, mcu.RAMRegion)
		services.InstallClockSyncService(dev.A, cfg.MaxSyncStepMs)
	}

	c := channel.New(k, cfg.Latency, cfg.Tap)
	s := &Scenario{K: k, Dev: dev, V: v, C: c, cmdWaiters: make(map[uint64]func(*protocol.CommandResp))}
	c.Attach(channel.Prover, func(msg channel.Message) {
		reply := func(out []byte) { c.Send(channel.Prover, channel.Verifier, out) }
		switch protocol.ClassifyFrame(msg.Payload) {
		case protocol.FrameCommandReq:
			dev.A.HandleCommand(msg.Payload, reply)
		case protocol.FrameSwarmReq:
			if s.SwarmReqHandler != nil {
				s.SwarmReqHandler(msg.Payload, reply)
				return
			}
			dev.A.HandleRequest(msg.Payload, reply)
		default:
			// Attestation requests and garbage alike go through
			// Code_Attest's request path, which rejects malformed frames
			// cheaply — the prover cannot afford to drop frames silently
			// before the gate, or stats would hide adversarial load.
			dev.A.HandleRequest(msg.Payload, reply)
		}
	})
	c.Attach(channel.Verifier, func(msg channel.Message) {
		s.ResponsesSeen++
		switch protocol.ClassifyFrame(msg.Payload) {
		case protocol.FrameSwarmResp:
			if s.SwarmRespHandler != nil {
				s.SwarmRespHandler(msg.Payload)
			}
		case protocol.FrameCommandResp:
			resp, err := v.CheckCommandResponse(msg.Payload)
			if err != nil {
				return
			}
			if waiter, ok := s.cmdWaiters[resp.Nonce]; ok {
				delete(s.cmdWaiters, resp.Nonce)
				waiter(resp)
			}
		default:
			v.CheckResponse(msg.Payload) //nolint:errcheck // stats-tracked
		}
	})
	return s, nil
}

// IssueCommandAt schedules a service command at absolute time t; onResp
// (optional) receives the verified response.
func (s *Scenario) IssueCommandAt(t sim.Time, kind protocol.CommandKind, body []byte, onResp func(*protocol.CommandResp)) {
	s.K.At(t, func() {
		req, err := s.V.NewCommand(kind, body)
		if err != nil {
			panic(fmt.Sprintf("core: issuing command: %v", err))
		}
		if onResp != nil {
			s.cmdWaiters[req.Nonce] = onResp
		}
		s.C.Send(channel.Verifier, channel.Prover, req.Encode())
	})
}

// IssueAt schedules the verifier to create and send a fresh request at
// absolute simulated time t (request timestamps are taken at issue time,
// so issuance must happen on the timeline, not up front).
func (s *Scenario) IssueAt(t sim.Time) {
	s.K.At(t, func() {
		req, err := s.V.NewRequest()
		if err != nil {
			panic(fmt.Sprintf("core: issuing request: %v", err))
		}
		s.C.Send(channel.Verifier, channel.Prover, req.Encode())
	})
}

// IssueWithRetry schedules a request at absolute time t and retries with a
// fresh request (new nonce, new counter/timestamp) whenever no response
// has been accepted within timeout, up to maxRetries retransmissions —
// the standard recovery loop for a lossy link.
func (s *Scenario) IssueWithRetry(t sim.Time, timeout sim.Duration, maxRetries int) {
	var attempt func(triesLeft int)
	attempt = func(triesLeft int) {
		req, err := s.V.NewRequest()
		if err != nil {
			panic(fmt.Sprintf("core: issuing request: %v", err))
		}
		s.C.Send(channel.Verifier, channel.Prover, req.Encode())
		s.K.After(timeout, func() {
			if !s.V.IsPending(req.Nonce) {
				return // answered in time
			}
			s.V.Abandon(req.Nonce)
			if triesLeft > 0 {
				attempt(triesLeft - 1)
			}
		})
	}
	s.K.At(t, func() { attempt(maxRetries) })
}

// IssueEvery schedules count requests, the first at start, then every
// interval.
func (s *Scenario) IssueEvery(start sim.Time, interval sim.Duration, count int) {
	for i := 0; i < count; i++ {
		s.IssueAt(start + sim.Time(i)*interval)
	}
}

// RunUntil drives the simulation to the absolute deadline and settles the
// prover's energy accounting.
func (s *Scenario) RunUntil(deadline sim.Time) {
	s.K.RunUntil(deadline)
	s.Dev.SettleEnergy()
}

// Measurements reports how many full memory measurements the prover has
// performed — the quantity a DoS adversary maximises and a mitigation
// bounds.
func (s *Scenario) Measurements() uint64 { return s.Dev.A.Stats.Measurements }
