package core

import (
	"bytes"
	"testing"

	"proverattest/internal/anchor"
	"proverattest/internal/energy"
	"proverattest/internal/mcu"
	"proverattest/internal/protocol"
	"proverattest/internal/sim"
)

func TestEndToEndAttestationOverChannel(t *testing.T) {
	s, err := NewScenario(ScenarioConfig{
		Freshness:  protocol.FreshCounter,
		Auth:       protocol.AuthHMACSHA1,
		Protection: anchor.FullProtection(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s.IssueEvery(2*sim.Second, 2*sim.Second, 5)
	s.RunUntil(20 * sim.Second)

	if s.V.Issued != 5 {
		t.Fatalf("Issued = %d, want 5", s.V.Issued)
	}
	if s.V.Accepted != 5 {
		t.Fatalf("Accepted = %d, want 5 (rejected %d, unsolicited %d)",
			s.V.Accepted, s.V.Rejected, s.V.Unsolicited)
	}
	if s.Measurements() != 5 {
		t.Fatalf("Measurements = %d, want 5", s.Measurements())
	}
	if s.ResponsesSeen != 5 {
		t.Fatalf("ResponsesSeen = %d, want 5", s.ResponsesSeen)
	}
}

func TestEndToEndAllAuthSchemes(t *testing.T) {
	for _, kind := range []protocol.AuthKind{
		protocol.AuthNone, protocol.AuthHMACSHA1, protocol.AuthAESCBCMAC,
		protocol.AuthSpeckCBCMAC, protocol.AuthECDSA,
	} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			s, err := NewScenario(ScenarioConfig{
				Freshness:  protocol.FreshCounter,
				Auth:       kind,
				Protection: anchor.FullProtection(),
			})
			if err != nil {
				t.Fatal(err)
			}
			s.IssueAt(2 * sim.Second)
			s.RunUntil(10 * sim.Second)
			if s.V.Accepted != 1 {
				t.Fatalf("%v: Accepted = %d, want 1", kind, s.V.Accepted)
			}
		})
	}
}

func TestECDSACostDominatesRoundTrip(t *testing.T) {
	// §4.1: with ECDSA the prover spends ~170 ms just checking the
	// request signature, before the 754 ms measurement.
	hm, err := NewScenario(ScenarioConfig{
		Freshness: protocol.FreshCounter, Auth: protocol.AuthHMACSHA1,
		Protection: anchor.FullProtection(),
	})
	if err != nil {
		t.Fatal(err)
	}
	hm.IssueAt(sim.Second)
	hm.RunUntil(10 * sim.Second)

	ec, err := NewScenario(ScenarioConfig{
		Freshness: protocol.FreshCounter, Auth: protocol.AuthECDSA,
		Protection: anchor.FullProtection(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ec.IssueAt(sim.Second)
	ec.RunUntil(10 * sim.Second)

	deltaMs := (ec.Dev.M.ActiveCycles - hm.Dev.M.ActiveCycles).Millis()
	// ECDSA verify (170.907) − HMAC validate (0.432) ≈ 170.5 ms.
	if deltaMs < 169 || deltaMs < 0 || deltaMs > 172 {
		t.Fatalf("ECDSA round trip cost %.2f ms more than HMAC, want ≈170.5", deltaMs)
	}
}

func TestDeviceBootsAndMeasuresEnergy(t *testing.T) {
	k := sim.NewKernel()
	bat := energy.NewBattery(10)
	dev, err := NewDevice(k, DeviceConfig{
		Anchor: anchor.Config{
			Freshness: protocol.FreshCounter,
			AuthKind:  protocol.AuthHMACSHA1,
		},
		Battery: bat,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !dev.Boot.OK {
		t.Fatalf("boot failed: %s", dev.Boot.Reason)
	}
	if dev.Boot.MeasuredBytes != AppImageSize {
		t.Fatalf("boot measured %d bytes, want %d", dev.Boot.MeasuredBytes, AppImageSize)
	}
	dev.SettleEnergy()
	if bat.Remaining() >= 10 {
		t.Fatal("boot consumed no energy")
	}
	before := bat.Remaining()
	dev.SettleEnergy() // no new cycles: no double billing
	if bat.Remaining() != before {
		t.Fatal("SettleEnergy double-billed")
	}
	if len(dev.GoldenRAM()) != 512*1024 {
		t.Fatalf("golden RAM is %d bytes", len(dev.GoldenRAM()))
	}
}

func TestScenarioClockDriftRejectsSkewedVerifier(t *testing.T) {
	s, err := NewScenario(ScenarioConfig{
		Freshness:             protocol.FreshTimestamp,
		Auth:                  protocol.AuthHMACSHA1,
		Clock:                 anchor.ClockWide64,
		TimestampWindowMs:     500,
		Protection:            anchor.FullProtection(),
		VerifierClockOffsetMs: -3000, // verifier 3 s behind
	})
	if err != nil {
		t.Fatal(err)
	}
	s.IssueAt(10 * sim.Second)
	s.RunUntil(15 * sim.Second)
	if s.Measurements() != 0 {
		t.Fatal("request from a 3 s-behind verifier was accepted within a 500 ms window")
	}
	if s.Dev.A.Stats.FreshnessRejected != 1 {
		t.Fatalf("FreshnessRejected = %d, want 1", s.Dev.A.Stats.FreshnessRejected)
	}
}

func TestNewScenarioValidation(t *testing.T) {
	// Timestamp freshness without a clock is caught at anchor install.
	if _, err := NewScenario(ScenarioConfig{
		Freshness: protocol.FreshTimestamp,
		Auth:      protocol.AuthHMACSHA1,
	}); err == nil {
		t.Error("timestamp scenario without a clock built")
	}
	// Measured region outside RAM is refused (the verifier would have no
	// golden image for it).
	if _, err := NewScenario(ScenarioConfig{
		Freshness:      protocol.FreshCounter,
		Auth:           protocol.AuthHMACSHA1,
		MeasuredRegion: mcu.Region{Start: mcu.FlashRegion.Start, Size: 1024},
	}); err == nil {
		t.Error("flash measured region accepted without a golden source")
	}
	// Short key for a block cipher scheme.
	if _, err := NewScenario(ScenarioConfig{
		Freshness: protocol.FreshCounter,
		Auth:      protocol.AuthAESCBCMAC,
		AttestKey: []byte("short"),
	}); err == nil {
		t.Error("short key accepted for AES")
	}
}

func TestScenarioCustomAttestKey(t *testing.T) {
	key := bytes.Repeat([]byte{0x42}, 20)
	s, err := NewScenario(ScenarioConfig{
		Freshness:  protocol.FreshCounter,
		Auth:       protocol.AuthHMACSHA1,
		AttestKey:  key,
		Protection: anchor.FullProtection(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// The custom key was provisioned into the device...
	if got := s.Dev.M.Space.DirectRead(s.Dev.A.KeyAddr(), 20); !bytes.Equal(got, key) {
		t.Fatal("custom key not provisioned")
	}
	// ...and attestation verifies end to end with it.
	s.IssueAt(s.K.Now() + sim.Second)
	s.RunUntil(s.K.Now() + 3*sim.Second)
	if s.V.Accepted != 1 {
		t.Fatal("attestation with custom key failed")
	}
}

func TestVerifierKeyPairIsStable(t *testing.T) {
	a, err := VerifierKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	b, err := VerifierKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	if a.D.Cmp(b.D) != 0 {
		t.Fatal("verifier key pair is not deterministic")
	}
}
