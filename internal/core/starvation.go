package core

import (
	"fmt"

	"proverattest/internal/adversary"
	"proverattest/internal/anchor"
	"proverattest/internal/isa"
	"proverattest/internal/mcu"
	"proverattest/internal/protocol"
	"proverattest/internal/sim"
)

// sensorProgram is the prover's "primary task" (§1/§3.1: control, sensing,
// actuation) as real SP16 machine code: ≈1 ms of computation ending in a
// result stored to RAM. It runs from a flash region outside the app image.
const sensorProgram = `
	li   r1, 7900        ; ~1 ms at 3 cycles/iteration
	li   r2, 0
loop:
	add  r2, r2, r1
	addi r1, r1, -1
	bne  r1, r0, loop
	li   r3, 0x00301000  ; scratch word in SRAM — outside the measured image
	sw   r2, 0(r3)
	halt
`

// SensorProgramRegion is where the sensor task's code lives.
var SensorProgramRegion = mcu.Region{Start: mcu.FlashRegion.Start + 0x60000, Size: 0x1000}

// StarvationResult quantifies how a request flood steals the prover away
// from its primary task.
type StarvationResult struct {
	Auth protocol.AuthKind
	// SensorRuns is how many sensor jobs completed inside the window.
	SensorRuns uint64
	// SensorScheduled is how many were due.
	SensorScheduled uint64
	// WorstLatency is the longest submit→completion delay a sensor job
	// experienced (its own ≈1 ms run time included).
	WorstLatency sim.Duration
	// Measurements is the attacker-induced attestation work.
	Measurements uint64
}

// RunStarvationExperiment runs a prover whose application executes a
// ≈1 ms SP16 sensor program every period, under a forged-request flood,
// and reports how badly the primary task is delayed. This makes the
// paper's core DoS claim — "takes Prv away from performing its primary
// tasks" — directly measurable.
func RunStarvationExperiment(auth protocol.AuthKind, floodRate float64, period, duration sim.Duration) (StarvationResult, error) {
	res := StarvationResult{Auth: auth}
	s, err := NewScenario(ScenarioConfig{
		Freshness:  protocol.FreshCounter,
		Auth:       auth,
		Protection: anchor.FullProtection(),
	})
	if err != nil {
		return res, err
	}

	if _, err := isa.LoadProgram(s.Dev.M, SensorProgramRegion.Start, sensorProgram); err != nil {
		return res, fmt.Errorf("core: assembling sensor program: %w", err)
	}

	// Periodic sensor jobs for the whole window.
	start := s.K.Now()
	end := start + duration
	for t := start + period; t <= end; t += period {
		submitAt := t
		res.SensorScheduled++
		s.K.At(submitAt, func() {
			isa.RunProgram(s.Dev.M, "sensor", SensorProgramRegion, SensorProgramRegion.Start, 100_000,
				func(r isa.Result) {
					if r.Reason != isa.StopHalt {
						return // a crashed sensor task does not count
					}
					res.SensorRuns++
					if latency := s.K.Now() - submitAt; latency > res.WorstLatency {
						res.WorstLatency = latency
					}
				})
		})
	}

	// The flood.
	var tagLen int
	if auth == protocol.AuthHMACSHA1 {
		tagLen = 20
	}
	flood := &adversary.Flood{
		C:        s.C,
		K:        s.K,
		Interval: sim.Duration(float64(sim.Second) / floodRate),
		Frame: func(i int) []byte {
			req := &protocol.AttReq{
				Freshness: protocol.FreshCounter,
				Auth:      auth,
				Nonce:     uint64(i) + 1,
				Counter:   uint64(i) + 1,
			}
			if tagLen > 0 {
				req.Tag = make([]byte, tagLen)
			}
			return req.Encode()
		},
	}
	flood.Start(0)
	s.K.At(end, func() { flood.Stop() })
	// A short drain past the window lets a sensor job submitted at the
	// boundary finish its ≈1 ms run; saturation effects dwarf it.
	s.RunUntil(end + 10*sim.Millisecond)

	res.Measurements = s.Dev.A.Stats.Measurements
	return res, nil
}
