package core

import (
	"testing"

	"proverattest/internal/protocol"
	"proverattest/internal/sim"
)

func TestStarvationUnderUnauthenticatedFlood(t *testing.T) {
	// Sensor job every 100 ms, forged flood at 10/s. Without request
	// authentication each forgery occupies the core for ≈754 ms, so
	// sensor jobs queue behind attestations and run catastrophically late.
	res, err := RunStarvationExperiment(protocol.AuthNone, 10, 100*sim.Millisecond, 30*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Measurements < 30 {
		t.Fatalf("flood produced only %d measurements", res.Measurements)
	}
	if res.WorstLatency < 500*sim.Millisecond {
		t.Fatalf("worst sensor latency %v — expected multi-hundred-ms delays behind 754 ms attestations",
			res.WorstLatency)
	}
	// The core is work-conserving, but it cannot complete all jobs inside
	// the window when it is ~100% busy with attestations.
	if res.SensorRuns >= res.SensorScheduled {
		t.Fatalf("all %d sensor jobs completed despite saturation", res.SensorScheduled)
	}
}

func TestNoStarvationWithAuthentication(t *testing.T) {
	res, err := RunStarvationExperiment(protocol.AuthHMACSHA1, 10, 100*sim.Millisecond, 30*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Measurements != 0 {
		t.Fatalf("forged requests measured: %d", res.Measurements)
	}
	if res.SensorRuns != res.SensorScheduled {
		t.Fatalf("sensor jobs: %d/%d completed — authentication should protect the primary task",
			res.SensorRuns, res.SensorScheduled)
	}
	// Worst latency stays near the job's own ≈1 ms run time plus at most
	// one MAC check (~0.5 ms).
	if res.WorstLatency > 5*sim.Millisecond {
		t.Fatalf("worst sensor latency %v, want single-digit ms", res.WorstLatency)
	}
}

func TestStarvationContrast(t *testing.T) {
	open, err := RunStarvationExperiment(protocol.AuthNone, 10, 100*sim.Millisecond, 20*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	auth, err := RunStarvationExperiment(protocol.AuthHMACSHA1, 10, 100*sim.Millisecond, 20*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if open.WorstLatency < 100*auth.WorstLatency {
		t.Fatalf("latency contrast too small: open %v vs auth %v", open.WorstLatency, auth.WorstLatency)
	}
}
