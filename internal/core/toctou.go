package core

import (
	"bytes"

	"proverattest/internal/adversary"
	"proverattest/internal/anchor"
	"proverattest/internal/isa"
	"proverattest/internal/mcu"
	"proverattest/internal/protocol"
	"proverattest/internal/sim"
)

// TOCTOUResult reports the footnote-1 experiment: can a resident adversary
// survive attestation by relocating itself around the measurement cursor?
type TOCTOUResult struct {
	ChunkBytes uint32 // 0 = atomic measurement
	// VerifierAccepted: the measurement matched the golden image.
	VerifierAccepted bool
	// MalwarePresent: adversary bytes remain in measured RAM afterwards.
	MalwarePresent bool
	// AttackSucceeded: both at once — the prover attested clean while
	// still infected.
	AttackSucceeded bool
}

// malwarePayload is the resident implant's footprint in measured RAM.
var malwarePayload = bytes.Repeat([]byte{0xE7}, 64)

// RunTOCTOUExperiment plays the relocation attack against a prover whose
// measurement is either atomic (chunkBytes = 0) or streamed in chunks.
//
// Script: the implant sits high in measured RAM (offset 480 KB). When an
// attestation request arrives, the adversary schedules one relocation step
// timed to land between measurement chunks: restore the high bytes to
// their golden values (the cursor has not reached them yet) and move the
// implant to offset 0 (already measured). Atomic measurement leaves no
// such window — the same relocation job runs only after the response is
// computed, so the measurement catches the implant.
func RunTOCTOUExperiment(chunkBytes uint32) (TOCTOUResult, error) {
	res := TOCTOUResult{ChunkBytes: chunkBytes}
	s, err := NewScenario(ScenarioConfig{
		Freshness:        protocol.FreshCounter,
		Auth:             protocol.AuthHMACSHA1,
		Protection:       anchor.FullProtection(),
		MeasurementChunk: chunkBytes,
	})
	if err != nil {
		return res, err
	}
	roam := adversary.Infect(s.Dev.M, s.K)
	golden := s.Dev.GoldenRAM()
	const highOff = 480 * 1024
	high := mcu.RAMRegion.Start + highOff
	low := mcu.RAMRegion.Start
	goldenHigh := append([]byte(nil), golden[highOff:highOff+64]...)
	goldenLow := append([]byte(nil), golden[:64]...)

	// t = 5 s: infection — the implant lands high in measured RAM.
	s.K.At(5*sim.Second, func() {
		s.Dev.M.Submit(roam.Malware, func(e *mcu.Exec) {
			e.Write(high, malwarePayload)
			e.Tick(64)
		}, nil)
	})

	// t = 10 s: genuine attestation request.
	s.IssueAt(10 * sim.Second)

	// t = 10 s + 80 ms: the relocation step. Under 8 KB chunks the cursor
	// is ≈7 chunks (56 KB) in — far past offset 0, far before 480 KB.
	s.K.At(10*sim.Second+80*sim.Millisecond, func() {
		s.Dev.M.Submit(roam.Malware, func(e *mcu.Exec) {
			e.Write(high, goldenHigh)
			e.Write(low, malwarePayload)
			e.Tick(128)
		}, nil)
	})

	s.RunUntil(13 * sim.Second)
	res.VerifierAccepted = s.V.Accepted == 1
	nowLow := s.Dev.M.Space.DirectRead(low, 64)
	nowHigh := s.Dev.M.Space.DirectRead(high, 64)
	res.MalwarePresent = !bytes.Equal(nowLow, goldenLow) || !bytes.Equal(nowHigh, goldenHigh)
	res.AttackSucceeded = res.VerifierAccepted && res.MalwarePresent
	return res, nil
}

// RealtimeResult reports the latency benefit chunking buys: the worst
// delay a periodic sensor job suffers while one *genuine* attestation is
// in progress.
type RealtimeResult struct {
	ChunkBytes   uint32
	WorstLatency sim.Duration
	SensorRuns   uint64
	Accepted     uint64
}

// RunRealtimeExperiment schedules a ≈1 ms SP16 sensor job every 20 ms
// across a genuine full-memory attestation and reports the worst latency.
// Atomic measurement blocks the core for ≈754 ms; with c-byte chunks the
// bound drops to roughly one chunk's measurement time.
func RunRealtimeExperiment(chunkBytes uint32) (RealtimeResult, error) {
	res := RealtimeResult{ChunkBytes: chunkBytes}
	s, err := NewScenario(ScenarioConfig{
		Freshness:        protocol.FreshCounter,
		Auth:             protocol.AuthHMACSHA1,
		Protection:       anchor.FullProtection(),
		MeasurementChunk: chunkBytes,
	})
	if err != nil {
		return res, err
	}
	if _, err := isa.LoadProgram(s.Dev.M, SensorProgramRegion.Start, sensorProgram); err != nil {
		return res, err
	}
	start := s.K.Now()
	for t := start + 20*sim.Millisecond; t < start+2*sim.Second; t += 20 * sim.Millisecond {
		submitAt := t
		s.K.At(submitAt, func() {
			isa.RunProgram(s.Dev.M, "sensor", SensorProgramRegion, SensorProgramRegion.Start, 100_000,
				func(r isa.Result) {
					if r.Reason != isa.StopHalt {
						return
					}
					res.SensorRuns++
					if latency := s.K.Now() - submitAt; latency > res.WorstLatency {
						res.WorstLatency = latency
					}
				})
		})
	}
	s.IssueAt(start + 500*sim.Millisecond)
	s.RunUntil(start + 3*sim.Second)
	res.Accepted = s.V.Accepted
	return res, nil
}
