package core

import (
	"testing"

	"proverattest/internal/mcu"
	"proverattest/internal/sim"
)

func TestChunkedMeasurementMatchesAtomic(t *testing.T) {
	// The streamed HMAC must produce the same measurement as the one-shot
	// pass: the verifier accepts either way, at the same modeled cost.
	for _, chunk := range []uint32{0, 4 * 1024, 8 * 1024, 64 * 1024} {
		s, err := NewScenario(ScenarioConfig{
			Freshness:        0, // FreshNone: isolate the measurement path
			Auth:             0,
			MeasurementChunk: chunk,
		})
		if err != nil {
			t.Fatal(err)
		}
		before := s.Dev.M.ActiveCycles
		s.IssueAt(s.K.Now() + sim.Millisecond)
		s.RunUntil(s.K.Now() + 2*sim.Second)
		if s.V.Accepted != 1 {
			t.Fatalf("chunk %d: verifier accepted %d", chunk, s.V.Accepted)
		}
		spent := (s.Dev.M.ActiveCycles - before).Millis()
		if spent < 753 || spent > 756 {
			t.Fatalf("chunk %d: measurement cost %.2f ms, want ≈754", chunk, spent)
		}
	}
}

func TestChunkedMeasurementIsReentrant(t *testing.T) {
	// Two requests land back to back; with chunked measurement the second
	// gate job runs between the first request's chunks, and both streams
	// must finish with correct, independent measurements.
	s, err := NewScenario(ScenarioConfig{
		Freshness:        0,
		Auth:             0,
		MeasurementChunk: 8 * 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.IssueAt(s.K.Now() + sim.Millisecond)
	s.IssueAt(s.K.Now() + 10*sim.Millisecond)
	s.RunUntil(s.K.Now() + 5*sim.Second)
	if s.V.Accepted != 2 {
		t.Fatalf("accepted %d/2 interleaved chunked measurements (rejected %d)",
			s.V.Accepted, s.V.Rejected)
	}
	if s.Dev.A.Stats.Measurements != 2 {
		t.Fatalf("measurements = %d, want 2", s.Dev.A.Stats.Measurements)
	}
}

func TestChunkedMeasurementAbortsOnFault(t *testing.T) {
	// Fault injection: a rule lands over part of the measured region after
	// boot (simulating a misconfiguration), so a mid-stream chunk read
	// faults. The chain must abort — no response, a recorded fault, and no
	// phantom measurement.
	s, err := NewScenario(ScenarioConfig{
		Freshness:        0,
		Auth:             0,
		MeasurementChunk: 8 * 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Block Code_Attest from a page in the middle of RAM (rule grants
	// nobody; MPU is unlocked in this unprotected scenario).
	if err := s.Dev.M.MPU.SetRule(7, mcu.Rule{
		Code: mcu.Region{Start: mcu.FlashRegion.Start, Size: 4},
		Data: mcu.Region{Start: mcu.RAMRegion.Start + 64*1024, Size: 4096},
		Perm: mcu.PermRead, Enabled: true,
	}); err != nil {
		t.Fatal(err)
	}
	s.IssueAt(s.K.Now() + sim.Millisecond)
	s.RunUntil(s.K.Now() + 3*sim.Second)
	if s.V.Accepted != 0 || s.ResponsesSeen != 0 {
		t.Fatalf("faulted measurement still produced a response (accepted %d, seen %d)",
			s.V.Accepted, s.ResponsesSeen)
	}
	if s.Dev.A.Stats.Faults == 0 {
		t.Fatal("no fault recorded")
	}
	if s.Dev.A.Stats.Measurements != 0 {
		t.Fatal("aborted chain still counted a measurement")
	}
}

func TestTOCTOUAtomicIsImmune(t *testing.T) {
	res, err := RunTOCTOUExperiment(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.VerifierAccepted {
		t.Fatal("atomic measurement attested an infected prover clean")
	}
	if res.AttackSucceeded {
		t.Fatal("TOCTOU succeeded against atomic measurement")
	}
}

func TestTOCTOUChunkedIsVulnerable(t *testing.T) {
	// The paper's footnote-1 caveat, reproduced: interleaving execution
	// with measurement lets the implant relocate around the cursor and
	// attest clean while still resident.
	res, err := RunTOCTOUExperiment(8 * 1024)
	if err != nil {
		t.Fatal(err)
	}
	if !res.VerifierAccepted {
		t.Fatal("chunked measurement rejected — the relocation missed its window")
	}
	if !res.MalwarePresent {
		t.Fatal("malware vanished — script error")
	}
	if !res.AttackSucceeded {
		t.Fatal("TOCTOU failed against chunked measurement")
	}
}

func TestRealtimeChunkingBoundsLatency(t *testing.T) {
	atomic, err := RunRealtimeExperiment(0)
	if err != nil {
		t.Fatal(err)
	}
	chunked, err := RunRealtimeExperiment(8 * 1024)
	if err != nil {
		t.Fatal(err)
	}
	if atomic.Accepted != 1 || chunked.Accepted != 1 {
		t.Fatalf("attestation failed: atomic %d, chunked %d", atomic.Accepted, chunked.Accepted)
	}
	// Atomic: sensor jobs queue behind the full ≈754 ms measurement.
	if atomic.WorstLatency < 500*sim.Millisecond {
		t.Fatalf("atomic worst latency %v, want >500 ms", atomic.WorstLatency)
	}
	// Chunked: bounded by ≈one 8 KB chunk (≈11.8 ms) plus queued work.
	if chunked.WorstLatency > 50*sim.Millisecond {
		t.Fatalf("chunked worst latency %v, want <50 ms", chunked.WorstLatency)
	}
	if chunked.SensorRuns < atomic.SensorRuns {
		t.Fatalf("chunking completed fewer sensor runs (%d < %d)", chunked.SensorRuns, atomic.SensorRuns)
	}
}
