package core

import "math/rand"

// Topology is the deterministic spanning tree over a fleet's members: a
// complete k-ary tree laid over a seeded permutation of the member
// indices. Fleet scheduling staggers members by tree position, and the
// swarm aggregation subsystem (internal/swarm) uses the same tree for
// per-hop MAC folding and verifier-side bisection — one topology source,
// so the prover-side fold order and the verifier's expected aggregate
// cannot silently disagree.
//
// Positions are breadth-first: position p's parent is (p-1)/fanout and
// its children are p·fanout+1 … p·fanout+fanout. Seed 0 keeps the
// identity order (member i at position i), which matches the historical
// staggerOffset behaviour.
type Topology struct {
	fanout int
	order  []int // position -> member index
	pos    []int // member index -> position, -1 when removed
}

// DefaultFanout is the tree arity used when a configuration leaves the
// fanout unset: binary trees keep per-hop fold state tiny on low-end
// nodes while still giving O(log n) depth.
const DefaultFanout = 2

// NewTopology builds the tree for members 0..n-1. fanout < 1 defaults to
// DefaultFanout; n <= 0 yields an empty topology (Root reports none).
// The same (n, fanout, seed) triple always yields the same tree.
func NewTopology(n, fanout int, seed int64) *Topology {
	if fanout < 1 {
		fanout = DefaultFanout
	}
	if n < 0 {
		n = 0
	}
	t := &Topology{fanout: fanout, order: make([]int, n), pos: make([]int, n)}
	for i := 0; i < n; i++ {
		t.order[i] = i
	}
	if seed != 0 {
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(n, func(i, j int) { t.order[i], t.order[j] = t.order[j], t.order[i] })
	}
	for p, m := range t.order {
		t.pos[m] = p
	}
	return t
}

// Len is the number of members currently in the tree.
func (t *Topology) Len() int { return len(t.order) }

// Fanout is the tree arity.
func (t *Topology) Fanout() int { return t.fanout }

// Root returns the root member, or ok=false for an empty topology.
func (t *Topology) Root() (member int, ok bool) {
	if len(t.order) == 0 {
		return 0, false
	}
	return t.order[0], true
}

// Pos returns member's tree position, or -1 if the member is out of
// range or was removed by Without.
func (t *Topology) Pos(member int) int {
	if member < 0 || member >= len(t.pos) {
		return -1
	}
	return t.pos[member]
}

// MemberAt returns the member at tree position p (0 = root), or -1 when
// p is out of range.
func (t *Topology) MemberAt(p int) int {
	if p < 0 || p >= len(t.order) {
		return -1
	}
	return t.order[p]
}

// Parent returns member's parent, or ok=false for the root and for
// members not in the tree.
func (t *Topology) Parent(member int) (parent int, ok bool) {
	p := t.Pos(member)
	if p <= 0 {
		return 0, false
	}
	return t.order[(p-1)/t.fanout], true
}

// Children appends member's children (in fold order) to buf and returns
// the extended slice, allocating only when buf lacks capacity. Members
// not in the tree have no children.
func (t *Topology) Children(member int, buf []int) []int {
	p := t.Pos(member)
	if p < 0 {
		return buf
	}
	first := p*t.fanout + 1
	for c := first; c < first+t.fanout && c < len(t.order); c++ {
		buf = append(buf, t.order[c])
	}
	return buf
}

// Depth is member's distance from the root in hops (root = 0), or -1
// for members not in the tree.
func (t *Topology) Depth(member int) int {
	p := t.Pos(member)
	if p < 0 {
		return -1
	}
	d := 0
	for p > 0 {
		p = (p - 1) / t.fanout
		d++
	}
	return d
}

// Height is the maximum member depth: 0 for empty and single-member
// trees, O(log n) otherwise.
func (t *Topology) Height() int {
	if len(t.order) == 0 {
		return 0
	}
	return t.depthOfPos(len(t.order) - 1)
}

func (t *Topology) depthOfPos(p int) int {
	d := 0
	for p > 0 {
		p = (p - 1) / t.fanout
		d++
	}
	return d
}

// Without rebuilds the tree with member removed (the member-loss path):
// survivors keep their relative order, so the rebuild is deterministic
// and only positions at or after the removed member's slot shift. The
// receiver is unchanged.
func (t *Topology) Without(member int) *Topology {
	nt := &Topology{fanout: t.fanout, pos: make([]int, len(t.pos))}
	nt.order = make([]int, 0, len(t.order))
	for i := range nt.pos {
		nt.pos[i] = -1
	}
	for _, m := range t.order {
		if m == member {
			continue
		}
		nt.pos[m] = len(nt.order)
		nt.order = append(nt.order, m)
	}
	return nt
}
