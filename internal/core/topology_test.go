package core

import (
	"testing"

	"proverattest/internal/anchor"
	"proverattest/internal/protocol"
	"proverattest/internal/sim"
)

func TestTopologyEmpty(t *testing.T) {
	topo := NewTopology(0, 2, 0)
	if topo.Len() != 0 {
		t.Fatalf("Len = %d, want 0", topo.Len())
	}
	if _, ok := topo.Root(); ok {
		t.Fatalf("empty topology has a root")
	}
	if topo.Height() != 0 {
		t.Fatalf("Height = %d, want 0", topo.Height())
	}
	if topo.Pos(0) != -1 || topo.MemberAt(0) != -1 || topo.Depth(0) != -1 {
		t.Fatalf("empty topology resolves members")
	}
	if kids := topo.Children(0, nil); len(kids) != 0 {
		t.Fatalf("empty topology has children: %v", kids)
	}
	// Negative n behaves like empty rather than panicking.
	if NewTopology(-3, 2, 0).Len() != 0 {
		t.Fatalf("negative n not treated as empty")
	}
}

func TestTopologySingleMember(t *testing.T) {
	topo := NewTopology(1, 4, 0)
	root, ok := topo.Root()
	if !ok || root != 0 {
		t.Fatalf("Root = %d,%v want 0,true", root, ok)
	}
	if _, ok := topo.Parent(0); ok {
		t.Fatalf("root has a parent")
	}
	if kids := topo.Children(0, nil); len(kids) != 0 {
		t.Fatalf("single member has children: %v", kids)
	}
	if topo.Height() != 0 || topo.Depth(0) != 0 {
		t.Fatalf("single-member tree has nonzero height/depth")
	}
}

func TestTopologyFanoutLargerThanN(t *testing.T) {
	// fanout > n yields a one-level star: everyone hangs off the root.
	topo := NewTopology(5, 16, 0)
	root, _ := topo.Root()
	kids := topo.Children(root, nil)
	if len(kids) != 4 {
		t.Fatalf("star root has %d children, want 4", len(kids))
	}
	if topo.Height() != 1 {
		t.Fatalf("star height = %d, want 1", topo.Height())
	}
	for _, c := range kids {
		if p, ok := topo.Parent(c); !ok || p != root {
			t.Fatalf("member %d parent = %d,%v want %d,true", c, p, ok, root)
		}
		if topo.Depth(c) != 1 {
			t.Fatalf("member %d depth = %d, want 1", c, topo.Depth(c))
		}
	}
}

func TestTopologyFanoutDefaultsAndShape(t *testing.T) {
	// fanout <= 0 falls back to the documented default.
	topo := NewTopology(7, 0, 0)
	if topo.Fanout() != DefaultFanout {
		t.Fatalf("Fanout = %d, want %d", topo.Fanout(), DefaultFanout)
	}
	// Complete binary tree over 7 members, identity order: textbook heap
	// indexing.
	wantKids := map[int][]int{0: {1, 2}, 1: {3, 4}, 2: {5, 6}}
	for m, want := range wantKids {
		got := topo.Children(m, nil)
		if len(got) != len(want) {
			t.Fatalf("member %d children = %v, want %v", m, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("member %d children = %v, want %v", m, got, want)
			}
		}
	}
	if topo.Height() != 2 {
		t.Fatalf("Height = %d, want 2", topo.Height())
	}
	// Parent/Children are mutually consistent for every member.
	for m := 0; m < topo.Len(); m++ {
		for _, c := range topo.Children(m, nil) {
			if p, ok := topo.Parent(c); !ok || p != m {
				t.Fatalf("child %d of %d reports parent %d,%v", c, m, p, ok)
			}
		}
	}
}

func TestTopologySeededDeterministicPermutation(t *testing.T) {
	a := NewTopology(32, 3, 12345)
	b := NewTopology(32, 3, 12345)
	c := NewTopology(32, 3, 54321)
	sameAsA := true
	differsFromC := false
	for p := 0; p < 32; p++ {
		if a.MemberAt(p) != b.MemberAt(p) {
			sameAsA = false
		}
		if a.MemberAt(p) != c.MemberAt(p) {
			differsFromC = true
		}
	}
	if !sameAsA {
		t.Fatalf("same seed produced different trees")
	}
	if !differsFromC {
		t.Fatalf("different seeds produced identical trees")
	}
	// The permutation is a bijection: every member has a unique position.
	seen := make(map[int]bool)
	for p := 0; p < a.Len(); p++ {
		m := a.MemberAt(p)
		if m < 0 || m >= 32 || seen[m] {
			t.Fatalf("position %d holds invalid/duplicate member %d", p, m)
		}
		seen[m] = true
		if a.Pos(m) != p {
			t.Fatalf("Pos(%d) = %d, want %d", m, a.Pos(m), p)
		}
	}
}

func TestTopologyWithout(t *testing.T) {
	topo := NewTopology(7, 2, 99)
	victim := topo.MemberAt(2)
	nt := topo.Without(victim)
	if nt.Len() != 6 {
		t.Fatalf("Len after removal = %d, want 6", nt.Len())
	}
	if nt.Pos(victim) != -1 {
		t.Fatalf("removed member still has a position")
	}
	if topo.Pos(victim) == -1 {
		t.Fatalf("Without mutated the receiver")
	}
	// Survivors keep their relative order.
	prev := -1
	for p := 0; p < nt.Len(); p++ {
		m := nt.MemberAt(p)
		op := topo.Pos(m)
		if op <= prev {
			t.Fatalf("survivor order not preserved at position %d", p)
		}
		prev = op
	}
	// The rebuilt tree is still a valid complete tree.
	for m := 0; m < 7; m++ {
		if m == victim {
			continue
		}
		for _, c := range nt.Children(m, nil) {
			if p, ok := nt.Parent(c); !ok || p != m {
				t.Fatalf("rebuilt tree inconsistent at member %d", m)
			}
		}
	}
}

// TestTopologyChildrenNoAlloc: the per-hop fold path asks for children
// every round; with a caller-provided buffer the accessor must not
// allocate.
func TestTopologyChildrenNoAlloc(t *testing.T) {
	topo := NewTopology(64, 4, 7)
	buf := make([]int, 0, 8)
	root, _ := topo.Root()
	if n := testing.AllocsPerRun(1000, func() {
		buf = topo.Children(root, buf[:0])
	}); n != 0 {
		t.Fatalf("Children allocates %v/op with capacity available", n)
	}
}

// TestFleetStaggerUsesTopologyPositions: fleet scheduling staggers by
// tree position, so with a seeded permutation two members swap offsets
// relative to the identity order — and with seed 0 the historical
// index-based stagger is preserved.
func TestFleetStaggerUsesTopologyPositions(t *testing.T) {
	period := 60 * sim.Second
	if got := staggerOffset(period, 3, 8); got != (period/8)*3 {
		t.Fatalf("staggerOffset changed: %v", got)
	}
	fleet, err := NewFleet(FleetConfig{Provers: 4, AttestPeriod: period, Fanout: 2, TopologySeed: 0,
		Scenario: defaultScenarioConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Topology == nil || fleet.Topology.Len() != 4 {
		t.Fatalf("fleet topology missing")
	}
	for i := range fleet.Members {
		if fleet.Topology.Pos(i) != i {
			t.Fatalf("seed-0 topology not identity ordered")
		}
	}
	seeded, err := NewFleet(FleetConfig{Provers: 16, AttestPeriod: period, Fanout: 2, TopologySeed: 77,
		Scenario: defaultScenarioConfig()})
	if err != nil {
		t.Fatal(err)
	}
	identity := true
	for i := range seeded.Members {
		if seeded.Topology.Pos(i) != i {
			identity = false
			break
		}
	}
	if identity {
		t.Fatalf("seeded topology unexpectedly identity ordered")
	}
}

func defaultScenarioConfig() ScenarioConfig {
	return ScenarioConfig{
		Freshness:  protocol.FreshCounter,
		Auth:       protocol.AuthHMACSHA1,
		Protection: anchor.FullProtection(),
	}
}
