// Package aes is a from-scratch implementation of AES-128 (FIPS 197) with
// CBC mode and CBC-MAC, one of the block ciphers the paper evaluates for
// authenticating attestation requests (Table 1, §4.1). The implementation
// favours clarity over speed — the prover's latency comes from the
// calibrated model in internal/crypto/cost, not from host performance.
package aes

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// BlockSize is the AES block size in bytes.
const BlockSize = 16

// KeySize is the AES-128 key size in bytes.
const KeySize = 16

const rounds = 10

// sbox and invSbox are derived in init from the GF(2^8) multiplicative
// inverse and the FIPS 197 affine transform, so a table transcription error
// is impossible.
var (
	sbox    [256]byte
	invSbox [256]byte
)

func init() {
	// Build log/exp tables for GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1
	// using generator 3.
	var exp [256]byte
	var log [256]byte
	x := byte(1)
	for i := 0; i < 255; i++ {
		exp[i] = x
		log[x] = byte(i)
		// multiply x by 3 (i.e. x ^= xtime(x))
		x ^= xtime(x)
	}
	inv := func(b byte) byte {
		if b == 0 {
			return 0
		}
		return exp[(255-int(log[b]))%255]
	}
	for i := 0; i < 256; i++ {
		v := inv(byte(i))
		// Affine transform: b ^ rotl(b,1) ^ rotl(b,2) ^ rotl(b,3) ^ rotl(b,4) ^ 0x63.
		s := v ^ rotl8(v, 1) ^ rotl8(v, 2) ^ rotl8(v, 3) ^ rotl8(v, 4) ^ 0x63
		sbox[i] = s
		invSbox[s] = byte(i)
	}
}

func rotl8(b byte, n uint) byte { return b<<n | b>>(8-n) }

// xtime multiplies by x in GF(2^8) modulo the AES polynomial.
func xtime(b byte) byte {
	if b&0x80 != 0 {
		return b<<1 ^ 0x1b
	}
	return b << 1
}

// gmul multiplies two field elements (schoolbook; only used with small
// constants so speed is irrelevant).
func gmul(a, b byte) byte {
	var p byte
	for b != 0 {
		if b&1 != 0 {
			p ^= a
		}
		a = xtime(a)
		b >>= 1
	}
	return p
}

// Cipher is an expanded AES-128 key.
type Cipher struct {
	rk [4 * (rounds + 1)]uint32 // round keys as big-endian words
}

// New expands a 16-byte key. It returns an error for any other key length.
func New(key []byte) (*Cipher, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("aes: invalid key size %d (want %d)", len(key), KeySize)
	}
	c := &Cipher{}
	for i := 0; i < 4; i++ {
		c.rk[i] = binary.BigEndian.Uint32(key[i*4:])
	}
	rcon := uint32(1)
	for i := 4; i < len(c.rk); i++ {
		t := c.rk[i-1]
		if i%4 == 0 {
			t = subWord(rotWord(t)) ^ rcon<<24
			rcon = uint32(xtime(byte(rcon)))
		}
		c.rk[i] = c.rk[i-4] ^ t
	}
	return c, nil
}

func rotWord(w uint32) uint32 { return w<<8 | w>>24 }

func subWord(w uint32) uint32 {
	return uint32(sbox[w>>24])<<24 | uint32(sbox[w>>16&0xff])<<16 |
		uint32(sbox[w>>8&0xff])<<8 | uint32(sbox[w&0xff])
}

// state is the AES state in column-major order, matching FIPS 197:
// s[r][c] is row r, column c; input byte i maps to s[i%4][i/4].
type state [4][4]byte

func loadState(src []byte) state {
	var s state
	for i := 0; i < 16; i++ {
		s[i%4][i/4] = src[i]
	}
	return s
}

func (s *state) store(dst []byte) {
	for i := 0; i < 16; i++ {
		dst[i] = s[i%4][i/4]
	}
}

func (s *state) addRoundKey(rk []uint32) {
	for c := 0; c < 4; c++ {
		w := rk[c]
		s[0][c] ^= byte(w >> 24)
		s[1][c] ^= byte(w >> 16)
		s[2][c] ^= byte(w >> 8)
		s[3][c] ^= byte(w)
	}
}

func (s *state) subBytes() {
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			s[r][c] = sbox[s[r][c]]
		}
	}
}

func (s *state) invSubBytes() {
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			s[r][c] = invSbox[s[r][c]]
		}
	}
}

func (s *state) shiftRows() {
	for r := 1; r < 4; r++ {
		var tmp [4]byte
		for c := 0; c < 4; c++ {
			tmp[c] = s[r][(c+r)%4]
		}
		s[r] = tmp
	}
}

func (s *state) invShiftRows() {
	for r := 1; r < 4; r++ {
		var tmp [4]byte
		for c := 0; c < 4; c++ {
			tmp[(c+r)%4] = s[r][c]
		}
		s[r] = tmp
	}
}

func (s *state) mixColumns() {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[0][c], s[1][c], s[2][c], s[3][c]
		s[0][c] = gmul(a0, 2) ^ gmul(a1, 3) ^ a2 ^ a3
		s[1][c] = a0 ^ gmul(a1, 2) ^ gmul(a2, 3) ^ a3
		s[2][c] = a0 ^ a1 ^ gmul(a2, 2) ^ gmul(a3, 3)
		s[3][c] = gmul(a0, 3) ^ a1 ^ a2 ^ gmul(a3, 2)
	}
}

func (s *state) invMixColumns() {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[0][c], s[1][c], s[2][c], s[3][c]
		s[0][c] = gmul(a0, 14) ^ gmul(a1, 11) ^ gmul(a2, 13) ^ gmul(a3, 9)
		s[1][c] = gmul(a0, 9) ^ gmul(a1, 14) ^ gmul(a2, 11) ^ gmul(a3, 13)
		s[2][c] = gmul(a0, 13) ^ gmul(a1, 9) ^ gmul(a2, 14) ^ gmul(a3, 11)
		s[3][c] = gmul(a0, 11) ^ gmul(a1, 13) ^ gmul(a2, 9) ^ gmul(a3, 14)
	}
}

// Encrypt encrypts one 16-byte block. dst and src may overlap.
func (c *Cipher) Encrypt(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("aes: short block")
	}
	s := loadState(src)
	s.addRoundKey(c.rk[0:4])
	for r := 1; r < rounds; r++ {
		s.subBytes()
		s.shiftRows()
		s.mixColumns()
		s.addRoundKey(c.rk[r*4 : r*4+4])
	}
	s.subBytes()
	s.shiftRows()
	s.addRoundKey(c.rk[rounds*4 : rounds*4+4])
	s.store(dst)
}

// Decrypt decrypts one 16-byte block. dst and src may overlap.
func (c *Cipher) Decrypt(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("aes: short block")
	}
	s := loadState(src)
	s.addRoundKey(c.rk[rounds*4 : rounds*4+4])
	for r := rounds - 1; r >= 1; r-- {
		s.invShiftRows()
		s.invSubBytes()
		s.addRoundKey(c.rk[r*4 : r*4+4])
		s.invMixColumns()
	}
	s.invShiftRows()
	s.invSubBytes()
	s.addRoundKey(c.rk[0:4])
	s.store(dst)
}

// BlockSizeBytes reports the cipher block size.
func (c *Cipher) BlockSizeBytes() int { return BlockSize }

// ErrNotAligned reports CBC input whose length is not a multiple of the
// block size.
var ErrNotAligned = errors.New("aes: input not a multiple of the block size")

// EncryptCBC encrypts src (length must be a multiple of 16) under iv.
func (c *Cipher) EncryptCBC(iv, src []byte) ([]byte, error) {
	if len(iv) != BlockSize {
		return nil, fmt.Errorf("aes: iv length %d (want %d)", len(iv), BlockSize)
	}
	if len(src)%BlockSize != 0 {
		return nil, ErrNotAligned
	}
	out := make([]byte, len(src))
	prev := iv
	for off := 0; off < len(src); off += BlockSize {
		var blk [BlockSize]byte
		for i := range blk {
			blk[i] = src[off+i] ^ prev[i]
		}
		c.Encrypt(out[off:], blk[:])
		prev = out[off : off+BlockSize]
	}
	return out, nil
}

// DecryptCBC inverts EncryptCBC.
func (c *Cipher) DecryptCBC(iv, src []byte) ([]byte, error) {
	if len(iv) != BlockSize {
		return nil, fmt.Errorf("aes: iv length %d (want %d)", len(iv), BlockSize)
	}
	if len(src)%BlockSize != 0 {
		return nil, ErrNotAligned
	}
	out := make([]byte, len(src))
	prev := iv
	for off := 0; off < len(src); off += BlockSize {
		c.Decrypt(out[off:], src[off:])
		for i := 0; i < BlockSize; i++ {
			out[off+i] ^= prev[i]
		}
		prev = src[off : off+BlockSize]
	}
	return out, nil
}

// MAC computes a CBC-MAC tag over msg with zero IV and 10* padding to a
// block boundary. CBC-MAC is only secure for fixed-length or
// prefix-free messages; the attestation protocol's fixed-size requests
// satisfy that.
func (c *Cipher) MAC(msg []byte) [BlockSize]byte {
	padded := pad10(msg, BlockSize)
	var tag [BlockSize]byte
	for off := 0; off < len(padded); off += BlockSize {
		for i := range tag {
			tag[i] ^= padded[off+i]
		}
		c.Encrypt(tag[:], tag[:])
	}
	return tag
}

// pad10 appends 0x80 then zeros up to a multiple of block. A message that
// is already aligned still gains a full padding block, keeping the padding
// injective.
func pad10(msg []byte, block int) []byte {
	n := len(msg)
	padded := make([]byte, ((n/block)+1)*block)
	copy(padded, msg)
	padded[n] = 0x80
	return padded
}
