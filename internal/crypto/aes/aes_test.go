package aes

import (
	"bytes"
	stdaes "crypto/aes"
	stdcipher "crypto/cipher"
	"encoding/hex"
	"testing"
	"testing/quick"
)

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

// FIPS 197 Appendix C.1 known-answer test.
func TestFIPS197Vector(t *testing.T) {
	key := mustHex(t, "000102030405060708090a0b0c0d0e0f")
	pt := mustHex(t, "00112233445566778899aabbccddeeff")
	wantCT := mustHex(t, "69c4e0d86a7b0430d8cdb78070b4c55a")

	c, err := New(key)
	if err != nil {
		t.Fatal(err)
	}
	ct := make([]byte, 16)
	c.Encrypt(ct, pt)
	if !bytes.Equal(ct, wantCT) {
		t.Fatalf("Encrypt = %x, want %x", ct, wantCT)
	}
	back := make([]byte, 16)
	c.Decrypt(back, ct)
	if !bytes.Equal(back, pt) {
		t.Fatalf("Decrypt(Encrypt(pt)) = %x, want %x", back, pt)
	}
}

// FIPS 197 Appendix B vector (different key/plaintext pair).
func TestFIPS197AppendixB(t *testing.T) {
	key := mustHex(t, "2b7e151628aed2a6abf7158809cf4f3c")
	pt := mustHex(t, "3243f6a8885a308d313198a2e0370734")
	wantCT := mustHex(t, "3925841d02dc09fbdc118597196a0b32")

	c, err := New(key)
	if err != nil {
		t.Fatal(err)
	}
	ct := make([]byte, 16)
	c.Encrypt(ct, pt)
	if !bytes.Equal(ct, wantCT) {
		t.Fatalf("Encrypt = %x, want %x", ct, wantCT)
	}
}

// NIST AESAVS known-answer spot checks (GFSbox and VarKey vectors for
// AES-128): zero key with structured plaintexts and vice versa.
func TestNISTAESAVSVectors(t *testing.T) {
	cases := []struct{ key, pt, ct string }{
		// GFSbox KAT #1 and #2 (key = 0).
		{"00000000000000000000000000000000", "f34481ec3cc627bacd5dc3fb08f273e6", "0336763e966d92595a567cc9ce537f5e"},
		{"00000000000000000000000000000000", "9798c4640bad75c7c3227db910174e72", "a9a1631bf4996954ebc093957b234589"},
		// VarKey KAT #1 (pt = 0, key = 80...0).
		{"80000000000000000000000000000000", "00000000000000000000000000000000", "0edd33d3c621e546455bd8ba1418bec8"},
		// VarTxt KAT #128 (key = 0, pt = ff...f... actually pt=80..0).
		{"00000000000000000000000000000000", "80000000000000000000000000000000", "3ad78e726c1ec02b7ebfe92b23d9ec34"},
	}
	for i, tc := range cases {
		c, err := New(mustHex(t, tc.key))
		if err != nil {
			t.Fatal(err)
		}
		ct := make([]byte, 16)
		c.Encrypt(ct, mustHex(t, tc.pt))
		if !bytes.Equal(ct, mustHex(t, tc.ct)) {
			t.Errorf("AESAVS vector %d: got %x, want %s", i, ct, tc.ct)
		}
	}
}

func TestInvalidKeySize(t *testing.T) {
	for _, n := range []int{0, 15, 17, 24, 32} {
		if _, err := New(make([]byte, n)); err == nil {
			t.Errorf("New(%d-byte key) succeeded, want error", n)
		}
	}
}

func TestAgainstStdlibBlock(t *testing.T) {
	f := func(key [16]byte, block [16]byte) bool {
		ours, err := New(key[:])
		if err != nil {
			return false
		}
		theirs, err := stdaes.NewCipher(key[:])
		if err != nil {
			return false
		}
		a := make([]byte, 16)
		b := make([]byte, 16)
		ours.Encrypt(a, block[:])
		theirs.Encrypt(b, block[:])
		if !bytes.Equal(a, b) {
			return false
		}
		ours.Decrypt(a, block[:])
		theirs.Decrypt(b, block[:])
		return bytes.Equal(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCBCRoundTrip(t *testing.T) {
	key := mustHex(t, "2b7e151628aed2a6abf7158809cf4f3c")
	iv := mustHex(t, "000102030405060708090a0b0c0d0e0f")
	c, err := New(key)
	if err != nil {
		t.Fatal(err)
	}
	msg := bytes.Repeat([]byte("attestation req!"), 5) // 80 bytes, aligned
	ct, err := c.EncryptCBC(iv, msg)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := c.DecryptCBC(iv, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, msg) {
		t.Fatalf("CBC round trip: got %x, want %x", pt, msg)
	}
}

func TestCBCAgainstStdlib(t *testing.T) {
	key := mustHex(t, "603deb1015ca71be2b73aef0857d7781")[:16]
	iv := mustHex(t, "f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
	msg := bytes.Repeat([]byte{0x42}, 64)

	ours, err := New(key)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ours.EncryptCBC(iv, msg)
	if err != nil {
		t.Fatal(err)
	}

	std, err := stdaes.NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, len(msg))
	stdcipher.NewCBCEncrypter(std, iv).CryptBlocks(want, msg)

	if !bytes.Equal(got, want) {
		t.Fatalf("CBC encrypt = %x, want %x", got, want)
	}
}

func TestCBCRejectsMisalignedInput(t *testing.T) {
	c, err := New(make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	iv := make([]byte, 16)
	if _, err := c.EncryptCBC(iv, make([]byte, 17)); err != ErrNotAligned {
		t.Errorf("EncryptCBC misaligned: err = %v, want ErrNotAligned", err)
	}
	if _, err := c.DecryptCBC(iv, make([]byte, 31)); err != ErrNotAligned {
		t.Errorf("DecryptCBC misaligned: err = %v, want ErrNotAligned", err)
	}
	if _, err := c.EncryptCBC(make([]byte, 8), make([]byte, 16)); err == nil {
		t.Error("EncryptCBC accepted a short IV")
	}
}

func TestMACDistinguishesMessages(t *testing.T) {
	c, err := New([]byte("0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	t1 := c.MAC([]byte("request 1"))
	t2 := c.MAC([]byte("request 2"))
	if t1 == t2 {
		t.Fatal("MAC identical for different messages")
	}
	// Padding injectivity: a message must not collide with itself plus the
	// padding byte.
	t3 := c.MAC([]byte("request 1\x80"))
	if t1 == t3 {
		t.Fatal("MAC padding is not injective")
	}
}

func TestMACDeterministic(t *testing.T) {
	c, err := New([]byte("0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("the same request bytes")
	if c.MAC(msg) != c.MAC(msg) {
		t.Fatal("MAC not deterministic")
	}
}

func TestSboxInvolution(t *testing.T) {
	// invSbox must invert sbox over all 256 values, and sbox must have no
	// fixed points xor 0x63-structure violations (spot-check two known
	// entries from FIPS 197).
	for i := 0; i < 256; i++ {
		if invSbox[sbox[i]] != byte(i) {
			t.Fatalf("invSbox[sbox[%#x]] = %#x", i, invSbox[sbox[i]])
		}
	}
	if sbox[0x00] != 0x63 || sbox[0x53] != 0xed {
		t.Fatalf("sbox spot check failed: sbox[0]=%#x sbox[0x53]=%#x", sbox[0x00], sbox[0x53])
	}
}

func BenchmarkEncryptBlock(b *testing.B) {
	c, _ := New(make([]byte, 16))
	blk := make([]byte, 16)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		c.Encrypt(blk, blk)
	}
}
