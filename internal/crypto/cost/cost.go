// Package cost models the execution time of cryptographic primitives on the
// paper's reference platform: an Intel Siskiyou Peak soft core clocked at
// 24 MHz (Table 1 of the paper). All primitives in internal/crypto are
// functionally real; this package supplies the calibrated latency each
// operation would have on the prover, expressed in CPU cycles so the MCU
// simulator can account for time and energy deterministically.
package cost

import "proverattest/internal/sim"

// ClockHz is the reference core clock: 24 MHz.
const ClockHz = 24_000_000

// CyclesPerMilli is the number of core cycles in one millisecond at 24 MHz.
const CyclesPerMilli = ClockHz / 1000 // 24_000

// Cycles counts CPU cycles on the 24 MHz reference core.
type Cycles uint64

// FromMillis converts a Table 1 entry in milliseconds to cycles. Table 1
// values have microsecond resolution, and 1 µs = 24 cycles exactly, so the
// conversion is lossless for all published constants.
func FromMillis(ms float64) Cycles {
	return Cycles(ms*CyclesPerMilli + 0.5)
}

// Millis reports c in milliseconds at the reference clock.
func (c Cycles) Millis() float64 { return float64(c) / CyclesPerMilli }

// Duration converts cycles to simulated time. One cycle at 24 MHz is
// 125/3 ns; the division truncates less than one nanosecond per call.
func (c Cycles) Duration() sim.Duration {
	return sim.Duration(uint64(c) * 125 / 3)
}

// Table 1, reproduced: performance of cryptographic primitives on Intel
// Siskiyou Peak at 24 MHz, in milliseconds.
//
//	SHA1-HMAC:          fixed 0.340, per 64-byte block 0.092
//	AES-128 (CBC):      key expansion 0.074, per 16-byte block: enc 0.288, dec 0.570
//	Speck 64/128 (CBC): key expansion 0.016, per  8-byte block: enc 0.017, dec 0.015
//	ECC (secp160r1):    sign 183.464, verify 170.907
var (
	SHA1HMACFixed    = FromMillis(0.340) // 8_160 cycles
	SHA1HMACPerBlock = FromMillis(0.092) // 2_208 cycles

	AESKeyExpansion = FromMillis(0.074) //  1_776 cycles
	AESEncryptBlock = FromMillis(0.288) //  6_912 cycles
	AESDecryptBlock = FromMillis(0.570) // 13_680 cycles

	SpeckKeyExpansion = FromMillis(0.016) // 384 cycles
	SpeckEncryptBlock = FromMillis(0.017) // 408 cycles
	SpeckDecryptBlock = FromMillis(0.015) // 360 cycles

	ECDSASign   = FromMillis(183.464) // 4_403_136 cycles
	ECDSAVerify = FromMillis(170.907) // 4_101_768 cycles
)

// Block sizes, in bytes, of the primitives as used in the paper (§4.1 gives
// the one-block message sizes in bits: HMAC 512, AES 256 [two 128-bit
// blocks], Speck 64, ECC 160).
const (
	SHA1BlockSize  = 64
	AESBlockSize   = 16
	SpeckBlockSize = 8
)

// ceilDiv returns ⌈n/d⌉ for positive d.
func ceilDiv(n, d int) int { return (n + d - 1) / d }

// HMACSHA1 is the modeled cost of one HMAC-SHA1 computation over n bytes of
// input: the fixed overhead (key pads, finalisation, output hash) plus the
// per-64-byte-block streaming cost. This is exactly the paper's §3.1
// formula; for n = 512 KB it yields 754.004 ms from the rounded Table 1
// constants (the paper prints 754.032 ms from unrounded internal values).
func HMACSHA1(n int) Cycles {
	return SHA1HMACFixed + Cycles(ceilDiv(n, SHA1BlockSize))*SHA1HMACPerBlock
}

// FlashWriteWord is the modeled cost of programming one 32-bit flash
// word: 64 µs, typical for MSP430-class embedded flash. RAM writes are
// folded into the per-operation costs; flash programming is slow enough
// that services writing firmware (secure code update, secure erasure)
// must account for it explicitly.
var FlashWriteWord = FromMillis(0.064) // 1_536 cycles

// FlashWrite is the modeled cost of programming n bytes of flash.
func FlashWrite(n int) Cycles {
	return Cycles(ceilDiv(n, 4)) * FlashWriteWord
}

// SHA1Hash is the modeled cost of a plain SHA-1 over n bytes: the
// per-block compression cost plus one block for padding/finalisation.
// (Table 1 only prices the HMAC; a bare hash is the same compression
// pipeline without the key-pad blocks.)
func SHA1Hash(n int) Cycles {
	return Cycles(ceilDiv(n, SHA1BlockSize)+1) * SHA1HMACPerBlock
}

// AESCBCEncrypt is the modeled cost of AES-128-CBC encryption of n bytes,
// with or without the one-time key expansion included.
func AESCBCEncrypt(n int, withKeyExpansion bool) Cycles {
	c := Cycles(ceilDiv(n, AESBlockSize)) * AESEncryptBlock
	if withKeyExpansion {
		c += AESKeyExpansion
	}
	return c
}

// AESCBCDecrypt is the modeled cost of AES-128-CBC decryption of n bytes.
func AESCBCDecrypt(n int, withKeyExpansion bool) Cycles {
	c := Cycles(ceilDiv(n, AESBlockSize)) * AESDecryptBlock
	if withKeyExpansion {
		c += AESKeyExpansion
	}
	return c
}

// AESCBCMAC is the modeled cost of a CBC-MAC tag over n bytes (one CBC
// encryption pass; the tag is the last ciphertext block).
func AESCBCMAC(n int, withKeyExpansion bool) Cycles {
	return AESCBCEncrypt(n, withKeyExpansion)
}

// SpeckCBCEncrypt is the modeled cost of Speck 64/128 CBC encryption of n
// bytes.
func SpeckCBCEncrypt(n int, withKeyExpansion bool) Cycles {
	c := Cycles(ceilDiv(n, SpeckBlockSize)) * SpeckEncryptBlock
	if withKeyExpansion {
		c += SpeckKeyExpansion
	}
	return c
}

// SpeckCBCDecrypt is the modeled cost of Speck 64/128 CBC decryption of n
// bytes.
func SpeckCBCDecrypt(n int, withKeyExpansion bool) Cycles {
	c := Cycles(ceilDiv(n, SpeckBlockSize)) * SpeckDecryptBlock
	if withKeyExpansion {
		c += SpeckKeyExpansion
	}
	return c
}

// SpeckCBCMAC is the modeled cost of a Speck CBC-MAC tag over n bytes.
func SpeckCBCMAC(n int, withKeyExpansion bool) Cycles {
	return SpeckCBCEncrypt(n, withKeyExpansion)
}
