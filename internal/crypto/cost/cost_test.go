package cost

import (
	"math"
	"testing"
)

func TestTable1Calibration(t *testing.T) {
	// Every Table 1 entry must round-trip ms → cycles → ms exactly
	// (microsecond-resolution values are exact multiples of 24 cycles).
	cases := []struct {
		name string
		got  Cycles
		ms   float64
	}{
		{"SHA1-HMAC fixed", SHA1HMACFixed, 0.340},
		{"SHA1-HMAC per block", SHA1HMACPerBlock, 0.092},
		{"AES key expansion", AESKeyExpansion, 0.074},
		{"AES encrypt block", AESEncryptBlock, 0.288},
		{"AES decrypt block", AESDecryptBlock, 0.570},
		{"Speck key expansion", SpeckKeyExpansion, 0.016},
		{"Speck encrypt block", SpeckEncryptBlock, 0.017},
		{"Speck decrypt block", SpeckDecryptBlock, 0.015},
		{"ECDSA sign", ECDSASign, 183.464},
		{"ECDSA verify", ECDSAVerify, 170.907},
	}
	for _, tc := range cases {
		if math.Abs(tc.got.Millis()-tc.ms) > 1e-9 {
			t.Errorf("%s: %v cycles = %.6f ms, want %.3f ms", tc.name, tc.got, tc.got.Millis(), tc.ms)
		}
	}
}

func TestSection31MemoryMACCost(t *testing.T) {
	// §3.1: hashing 512 KB of RAM with SHA1-HMAC. From the rounded Table 1
	// constants: 8192 blocks × 0.092 ms + 0.340 ms = 754.004 ms. The paper
	// prints 754.032 ms (computed from unrounded internals); we require our
	// value to match the rounded-constant arithmetic exactly and to be
	// within 0.01% of the paper's figure.
	got := HMACSHA1(512 * 1024)
	wantMs := 8192*0.092 + 0.340
	if math.Abs(got.Millis()-wantMs) > 1e-9 {
		t.Fatalf("HMACSHA1(512KB) = %.6f ms, want %.6f ms", got.Millis(), wantMs)
	}
	paperMs := 754.032
	if rel := math.Abs(got.Millis()-paperMs) / paperMs; rel > 1e-4 {
		t.Fatalf("HMACSHA1(512KB) = %.6f ms, deviates %.5f%% from paper's 754.032 ms", got.Millis(), rel*100)
	}
}

func TestSection41RequestValidation(t *testing.T) {
	// §4.1: "a SHA-1-based HMAC can be validated in 0.430 ms" — one
	// 512-bit message block plus the fixed overhead. Rounded constants give
	// 0.432 ms; accept within 2 µs of the paper's figure.
	got := HMACSHA1(64)
	if math.Abs(got.Millis()-0.430) > 0.0025 {
		t.Fatalf("one-block HMAC validation = %.3f ms, want ≈0.430 ms", got.Millis())
	}
	// Speck one-block processing with precomputed key schedule: 0.015–0.017 ms.
	enc := SpeckCBCEncrypt(8, false)
	if enc.Millis() != 0.017 {
		t.Fatalf("Speck one-block encrypt = %.3f ms, want 0.017", enc.Millis())
	}
	dec := SpeckCBCDecrypt(8, false)
	if dec.Millis() != 0.015 {
		t.Fatalf("Speck one-block decrypt = %.3f ms, want 0.015", dec.Millis())
	}
}

func TestBlockRounding(t *testing.T) {
	// Partial blocks must be charged as whole blocks.
	if HMACSHA1(1) != HMACSHA1(64) {
		t.Error("1-byte and 64-byte HMAC inputs should cost the same (one block)")
	}
	if HMACSHA1(65) != SHA1HMACFixed+2*SHA1HMACPerBlock {
		t.Error("65-byte HMAC input should cost two blocks")
	}
	if HMACSHA1(0) != SHA1HMACFixed {
		t.Error("empty HMAC input should cost only the fixed overhead")
	}
	if AESCBCEncrypt(17, false) != 2*AESEncryptBlock {
		t.Error("17-byte AES input should cost two blocks")
	}
	if SpeckCBCMAC(9, false) != 2*SpeckEncryptBlock {
		t.Error("9-byte Speck MAC should cost two blocks")
	}
}

func TestKeyExpansionAccounting(t *testing.T) {
	withKE := AESCBCEncrypt(16, true)
	withoutKE := AESCBCEncrypt(16, false)
	if withKE-withoutKE != AESKeyExpansion {
		t.Errorf("key expansion delta = %d cycles, want %d", withKE-withoutKE, AESKeyExpansion)
	}
	if SpeckCBCEncrypt(8, true)-SpeckCBCEncrypt(8, false) != SpeckKeyExpansion {
		t.Error("Speck key expansion not accounted")
	}
}

func TestDurationConversion(t *testing.T) {
	// 24e6 cycles = 1 simulated second (within integer truncation).
	d := Cycles(ClockHz).Duration()
	if d.Seconds() < 0.999999 || d.Seconds() > 1.000001 {
		t.Fatalf("24e6 cycles = %v, want ≈1 s", d)
	}
	if Cycles(0).Duration() != 0 {
		t.Fatal("0 cycles must be 0 duration")
	}
	// 3 cycles = 125 ns exactly.
	if got := Cycles(3).Duration(); got != 125 {
		t.Fatalf("3 cycles = %d ns, want 125", got)
	}
}

func TestDerivedCostFunctions(t *testing.T) {
	// SHA1Hash: per-block cost plus one finalisation block.
	if SHA1Hash(64) != 2*SHA1HMACPerBlock {
		t.Errorf("SHA1Hash(64) = %v, want 2 blocks", SHA1Hash(64))
	}
	if SHA1Hash(0) != SHA1HMACPerBlock {
		t.Errorf("SHA1Hash(0) = %v, want 1 block", SHA1Hash(0))
	}
	// FlashWrite: one word cost per 4 bytes, rounded up.
	if FlashWrite(4) != FlashWriteWord {
		t.Errorf("FlashWrite(4) = %v, want one word", FlashWrite(4))
	}
	if FlashWrite(5) != 2*FlashWriteWord {
		t.Errorf("FlashWrite(5) = %v, want two words", FlashWrite(5))
	}
	if got := FlashWrite(1024).Millis(); got < 16.3 || got > 16.5 {
		t.Errorf("FlashWrite(1KB) = %.2f ms, want ≈16.4 (256 words × 64 µs)", got)
	}
	// Decrypt paths and MAC aliases.
	if AESCBCDecrypt(32, true) != AESKeyExpansion+2*AESDecryptBlock {
		t.Error("AESCBCDecrypt with key expansion wrong")
	}
	if AESCBCDecrypt(32, false) != 2*AESDecryptBlock {
		t.Error("AESCBCDecrypt without key expansion wrong")
	}
	if AESCBCMAC(48, false) != AESCBCEncrypt(48, false) {
		t.Error("AESCBCMAC must cost one CBC encryption pass")
	}
	if SpeckCBCDecrypt(16, true) != SpeckKeyExpansion+2*SpeckDecryptBlock {
		t.Error("SpeckCBCDecrypt with key expansion wrong")
	}
}

func TestECDSACostsDominate(t *testing.T) {
	// The paper's §4.1 argument: ECC verification on the prover (~170 ms)
	// costs more than validating hundreds of symmetric requests.
	hmacOne := HMACSHA1(64)
	if ECDSAVerify < 300*hmacOne {
		t.Fatalf("expected ECDSA verify (%v cyc) ≫ 300× one-block HMAC (%v cyc)", ECDSAVerify, hmacOne)
	}
}
