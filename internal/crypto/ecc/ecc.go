// Package ecc implements the secp160r1 elliptic curve and ECDSA signatures
// over it, the public-key alternative the paper evaluates (and rules out)
// for authenticating attestation requests: at ~170 ms per verification on a
// 24 MHz core, merely checking a signature is itself a denial-of-service
// (Table 1, §4.1). The curve arithmetic is written from scratch on
// math/big; only SHA-1/HMAC from this repository are used for hashing.
package ecc

import (
	"errors"
	"fmt"
	"math/big"

	"proverattest/internal/crypto/hmac"
	"proverattest/internal/crypto/sha1"
)

// Curve parameters for secp160r1 (SEC 2, §2.4.2):
// p = 2^160 − 2^31 − 1, a = −3, cofactor 1.
var (
	p  = mustInt("ffffffffffffffffffffffffffffffff7fffffff")
	a  = mustInt("ffffffffffffffffffffffffffffffff7ffffffc")
	b  = mustInt("1c97befc54bd7a8b65acf89f81d4d4adc565fa45")
	gx = mustInt("4a96b5688ef573284664698968c38bb913cbfc82")
	gy = mustInt("23a628553168947d59dcc912042351377ac5fb32")
	n  = mustInt("0100000000000000000001f4c8f927aed3ca752257")
)

// OrderByteLen is the byte length of the group order (n is 161 bits).
const OrderByteLen = 21

// SignatureSize is the encoded signature length: r and s, each padded to
// the order length.
const SignatureSize = 2 * OrderByteLen

func mustInt(hexStr string) *big.Int {
	v, ok := new(big.Int).SetString(hexStr, 16)
	if !ok {
		panic("ecc: bad curve constant " + hexStr)
	}
	return v
}

// Point is a point on secp160r1 in affine coordinates; Inf marks the point
// at infinity.
type Point struct {
	X, Y *big.Int
	Inf  bool
}

// Infinity returns the identity element.
func Infinity() Point { return Point{Inf: true} }

// Generator returns the curve's base point G.
func Generator() Point {
	return Point{X: new(big.Int).Set(gx), Y: new(big.Int).Set(gy)}
}

// Order returns a copy of the group order n.
func Order() *big.Int { return new(big.Int).Set(n) }

// OnCurve reports whether pt satisfies y² = x³ + ax + b (mod p).
func OnCurve(pt Point) bool {
	if pt.Inf {
		return true
	}
	if pt.X == nil || pt.Y == nil {
		return false
	}
	if pt.X.Sign() < 0 || pt.X.Cmp(p) >= 0 || pt.Y.Sign() < 0 || pt.Y.Cmp(p) >= 0 {
		return false
	}
	y2 := new(big.Int).Mul(pt.Y, pt.Y)
	y2.Mod(y2, p)
	rhs := new(big.Int).Mul(pt.X, pt.X)
	rhs.Mul(rhs, pt.X)
	ax := new(big.Int).Mul(a, pt.X)
	rhs.Add(rhs, ax)
	rhs.Add(rhs, b)
	rhs.Mod(rhs, p)
	return y2.Cmp(rhs) == 0
}

// Add returns p1 + p2 using the affine group law.
func Add(p1, p2 Point) Point {
	if p1.Inf {
		return clonePoint(p2)
	}
	if p2.Inf {
		return clonePoint(p1)
	}
	if p1.X.Cmp(p2.X) == 0 {
		// Either a doubling or inverse points summing to infinity.
		sum := new(big.Int).Add(p1.Y, p2.Y)
		sum.Mod(sum, p)
		if sum.Sign() == 0 {
			return Infinity()
		}
		return Double(p1)
	}
	// λ = (y2 − y1) / (x2 − x1)
	num := new(big.Int).Sub(p2.Y, p1.Y)
	den := new(big.Int).Sub(p2.X, p1.X)
	den.Mod(den, p)
	den.ModInverse(den, p)
	lambda := num.Mul(num, den)
	lambda.Mod(lambda, p)
	return chord(p1, p2, lambda)
}

// Double returns 2·pt.
func Double(pt Point) Point {
	if pt.Inf || pt.Y.Sign() == 0 {
		return Infinity()
	}
	// λ = (3x² + a) / 2y
	num := new(big.Int).Mul(pt.X, pt.X)
	num.Mul(num, big.NewInt(3))
	num.Add(num, a)
	den := new(big.Int).Lsh(pt.Y, 1)
	den.Mod(den, p)
	den.ModInverse(den, p)
	lambda := num.Mul(num, den)
	lambda.Mod(lambda, p)
	return chord(pt, pt, lambda)
}

// chord completes point addition given the slope λ through p1 and p2.
func chord(p1, p2 Point, lambda *big.Int) Point {
	x3 := new(big.Int).Mul(lambda, lambda)
	x3.Sub(x3, p1.X)
	x3.Sub(x3, p2.X)
	x3.Mod(x3, p)
	y3 := new(big.Int).Sub(p1.X, x3)
	y3.Mul(y3, lambda)
	y3.Sub(y3, p1.Y)
	y3.Mod(y3, p)
	return Point{X: x3, Y: y3}
}

// ScalarMult returns k·pt via double-and-add.
func ScalarMult(k *big.Int, pt Point) Point {
	result := Infinity()
	addend := clonePoint(pt)
	kk := new(big.Int).Set(k)
	if kk.Sign() < 0 {
		kk.Mod(kk, n)
	}
	for i := 0; i < kk.BitLen(); i++ {
		if kk.Bit(i) == 1 {
			result = Add(result, addend)
		}
		addend = Double(addend)
	}
	return result
}

// ScalarBaseMult returns k·G.
func ScalarBaseMult(k *big.Int) Point { return ScalarMult(k, Generator()) }

func clonePoint(pt Point) Point {
	if pt.Inf {
		return Infinity()
	}
	return Point{X: new(big.Int).Set(pt.X), Y: new(big.Int).Set(pt.Y)}
}

// PrivateKey is an ECDSA private key on secp160r1.
type PrivateKey struct {
	D      *big.Int
	Public Point
}

// GenerateKey derives a key pair deterministically from seed material,
// suitable for reproducible simulations (there is no OS entropy in the
// simulated prover). The seed is expanded with HMAC-SHA1 until a scalar in
// [1, n−1] is found.
func GenerateKey(seed []byte) (*PrivateKey, error) {
	if len(seed) == 0 {
		return nil, errors.New("ecc: empty key seed")
	}
	for counter := byte(0); counter < 255; counter++ {
		d := expandToScalar(seed, []byte{'k', 'e', 'y', counter})
		if d.Sign() > 0 && d.Cmp(n) < 0 {
			return &PrivateKey{D: d, Public: ScalarBaseMult(d)}, nil
		}
	}
	return nil, errors.New("ecc: could not derive a valid scalar from seed")
}

// expandToScalar produces a candidate scalar below 2^168 reduced into the
// order's bit range.
func expandToScalar(seed, label []byte) *big.Int {
	var stream []byte
	block := hmac.SHA1(seed, label)
	stream = append(stream, block[:]...)
	block = hmac.SHA1(seed, append(label, 0x01))
	stream = append(stream, block[:]...)
	v := new(big.Int).SetBytes(stream[:OrderByteLen])
	// bits2int (RFC 6979 §2.3.2): the shift is by the excess of the octet
	// string's bit capacity over qlen, not of the value's bit length —
	// otherwise every candidate would start with a 1 bit and land above n.
	excess := 8*OrderByteLen - n.BitLen()
	if excess > 0 {
		v.Rsh(v, uint(excess))
	}
	return v
}

// Signature is an ECDSA signature pair.
type Signature struct {
	R, S *big.Int
}

// Encode serialises the signature as two fixed-width big-endian integers.
func (sig Signature) Encode() []byte {
	out := make([]byte, SignatureSize)
	sig.R.FillBytes(out[:OrderByteLen])
	sig.S.FillBytes(out[OrderByteLen:])
	return out
}

// DecodeSignature parses the fixed-width encoding produced by Encode.
func DecodeSignature(buf []byte) (Signature, error) {
	if len(buf) != SignatureSize {
		return Signature{}, fmt.Errorf("ecc: signature length %d (want %d)", len(buf), SignatureSize)
	}
	r := new(big.Int).SetBytes(buf[:OrderByteLen])
	s := new(big.Int).SetBytes(buf[OrderByteLen:])
	return Signature{R: r, S: s}, nil
}

// hashToInt converts a SHA-1 digest to an integer per ECDSA (the digest is
// 160 bits, shorter than the 161-bit order, so it is used whole).
func hashToInt(digest [sha1.Size]byte) *big.Int {
	return new(big.Int).SetBytes(digest[:])
}

// Sign produces a deterministic ECDSA signature over msg. The per-signature
// nonce is derived RFC 6979-style from the private key and message digest,
// so the simulated prover and verifier need no entropy source and runs are
// reproducible.
func Sign(priv *PrivateKey, msg []byte) (Signature, error) {
	if priv == nil || priv.D == nil {
		return Signature{}, errors.New("ecc: nil private key")
	}
	digest := sha1.Sum(msg)
	e := hashToInt(digest)
	keyBytes := make([]byte, OrderByteLen)
	priv.D.FillBytes(keyBytes)

	for counter := byte(0); counter < 255; counter++ {
		k := expandToScalar(append(keyBytes, digest[:]...), []byte{'n', 'o', 'n', 'c', 'e', counter})
		if k.Sign() <= 0 || k.Cmp(n) >= 0 {
			continue
		}
		pt := ScalarBaseMult(k)
		r := new(big.Int).Mod(pt.X, n)
		if r.Sign() == 0 {
			continue
		}
		kInv := new(big.Int).ModInverse(k, n)
		s := new(big.Int).Mul(r, priv.D)
		s.Add(s, e)
		s.Mul(s, kInv)
		s.Mod(s, n)
		if s.Sign() == 0 {
			continue
		}
		return Signature{R: r, S: s}, nil
	}
	return Signature{}, errors.New("ecc: nonce derivation exhausted")
}

// Verify reports whether sig is a valid signature over msg for pub.
func Verify(pub Point, msg []byte, sig Signature) bool {
	if pub.Inf || !OnCurve(pub) {
		return false
	}
	if sig.R == nil || sig.S == nil {
		return false
	}
	if sig.R.Sign() <= 0 || sig.R.Cmp(n) >= 0 || sig.S.Sign() <= 0 || sig.S.Cmp(n) >= 0 {
		return false
	}
	digest := sha1.Sum(msg)
	e := hashToInt(digest)
	w := new(big.Int).ModInverse(sig.S, n)
	u1 := new(big.Int).Mul(e, w)
	u1.Mod(u1, n)
	u2 := new(big.Int).Mul(sig.R, w)
	u2.Mod(u2, n)
	pt := Add(ScalarBaseMult(u1), ScalarMult(u2, pub))
	if pt.Inf {
		return false
	}
	v := new(big.Int).Mod(pt.X, n)
	return v.Cmp(sig.R) == 0
}
