package ecc

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestGeneratorOnCurve(t *testing.T) {
	if !OnCurve(Generator()) {
		t.Fatal("base point G is not on secp160r1")
	}
}

func TestInfinityIdentity(t *testing.T) {
	g := Generator()
	if got := Add(g, Infinity()); got.Inf || got.X.Cmp(g.X) != 0 || got.Y.Cmp(g.Y) != 0 {
		t.Fatal("G + O != G")
	}
	if got := Add(Infinity(), g); got.Inf || got.X.Cmp(g.X) != 0 {
		t.Fatal("O + G != G")
	}
	if got := Add(Infinity(), Infinity()); !got.Inf {
		t.Fatal("O + O != O")
	}
}

func TestInversePointsSumToInfinity(t *testing.T) {
	g := Generator()
	neg := Point{X: new(big.Int).Set(g.X), Y: new(big.Int).Sub(mustInt("ffffffffffffffffffffffffffffffff7fffffff"), g.Y)}
	if !OnCurve(neg) {
		t.Fatal("−G is not on the curve")
	}
	if got := Add(g, neg); !got.Inf {
		t.Fatal("G + (−G) != O")
	}
}

func TestOrderAnnihilatesGenerator(t *testing.T) {
	// n·G must be the point at infinity: the defining property of the order.
	if got := ScalarBaseMult(Order()); !got.Inf {
		t.Fatal("n·G != O")
	}
	// (n+1)·G = G.
	nPlus1 := new(big.Int).Add(Order(), big.NewInt(1))
	g := Generator()
	got := ScalarBaseMult(nPlus1)
	if got.Inf || got.X.Cmp(g.X) != 0 || got.Y.Cmp(g.Y) != 0 {
		t.Fatal("(n+1)·G != G")
	}
}

func TestScalarMultConsistency(t *testing.T) {
	// 2G via Double must equal G+G and ScalarMult(2, G).
	g := Generator()
	d := Double(g)
	s := Add(g, g)
	m := ScalarMult(big.NewInt(2), g)
	if d.X.Cmp(s.X) != 0 || d.X.Cmp(m.X) != 0 || d.Y.Cmp(s.Y) != 0 || d.Y.Cmp(m.Y) != 0 {
		t.Fatal("2G computed three ways disagrees")
	}
	if !OnCurve(d) {
		t.Fatal("2G not on curve")
	}
}

func TestScalarMultDistributes(t *testing.T) {
	// (a+b)·G == a·G + b·G for random small scalars.
	f := func(x, y uint32) bool {
		ax := big.NewInt(int64(x) + 1)
		by := big.NewInt(int64(y) + 1)
		left := ScalarBaseMult(new(big.Int).Add(ax, by))
		right := Add(ScalarBaseMult(ax), ScalarBaseMult(by))
		if left.Inf != right.Inf {
			return false
		}
		if left.Inf {
			return true
		}
		return left.X.Cmp(right.X) == 0 && left.Y.Cmp(right.Y) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateKey(t *testing.T) {
	key, err := GenerateKey([]byte("verifier-identity-seed"))
	if err != nil {
		t.Fatal(err)
	}
	if key.D.Sign() <= 0 || key.D.Cmp(Order()) >= 0 {
		t.Fatalf("private scalar out of range: %v", key.D)
	}
	if !OnCurve(key.Public) {
		t.Fatal("public key not on curve")
	}
	// Determinism: same seed, same key.
	key2, err := GenerateKey([]byte("verifier-identity-seed"))
	if err != nil {
		t.Fatal(err)
	}
	if key.D.Cmp(key2.D) != 0 {
		t.Fatal("key generation is not deterministic")
	}
	// Distinct seeds, distinct keys.
	key3, err := GenerateKey([]byte("another-seed"))
	if err != nil {
		t.Fatal(err)
	}
	if key.D.Cmp(key3.D) == 0 {
		t.Fatal("different seeds produced the same key")
	}
	if _, err := GenerateKey(nil); err == nil {
		t.Fatal("GenerateKey accepted an empty seed")
	}
}

func TestSignVerifyRoundTrip(t *testing.T) {
	key, err := GenerateKey([]byte("sign-test"))
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("attestation request #42")
	sig, err := Sign(key, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(key.Public, msg, sig) {
		t.Fatal("valid signature rejected")
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	key, err := GenerateKey([]byte("tamper-test"))
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("attestation request #7")
	sig, err := Sign(key, msg)
	if err != nil {
		t.Fatal(err)
	}

	if Verify(key.Public, []byte("attestation request #8"), sig) {
		t.Error("signature verified for a different message")
	}

	badR := Signature{R: new(big.Int).Add(sig.R, big.NewInt(1)), S: sig.S}
	if Verify(key.Public, msg, badR) {
		t.Error("signature with modified R verified")
	}

	badS := Signature{R: sig.R, S: new(big.Int).Add(sig.S, big.NewInt(1))}
	if Verify(key.Public, msg, badS) {
		t.Error("signature with modified S verified")
	}

	otherKey, _ := GenerateKey([]byte("someone-else"))
	if Verify(otherKey.Public, msg, sig) {
		t.Error("signature verified under the wrong public key")
	}
}

func TestVerifyRejectsDegenerateInputs(t *testing.T) {
	key, _ := GenerateKey([]byte("degenerate"))
	msg := []byte("m")
	sig, _ := Sign(key, msg)

	if Verify(Infinity(), msg, sig) {
		t.Error("verification accepted the point at infinity as a public key")
	}
	zero := Signature{R: big.NewInt(0), S: big.NewInt(0)}
	if Verify(key.Public, msg, zero) {
		t.Error("verification accepted r = s = 0")
	}
	overflow := Signature{R: Order(), S: big.NewInt(1)}
	if Verify(key.Public, msg, overflow) {
		t.Error("verification accepted r = n")
	}
	if Verify(key.Public, msg, Signature{}) {
		t.Error("verification accepted nil r/s")
	}
	offCurve := Point{X: big.NewInt(1), Y: big.NewInt(1)}
	if Verify(offCurve, msg, sig) {
		t.Error("verification accepted an off-curve public key")
	}
}

func TestSignatureDeterminism(t *testing.T) {
	key, _ := GenerateKey([]byte("determinism"))
	msg := []byte("same message")
	s1, err := Sign(key, msg)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Sign(key, msg)
	if err != nil {
		t.Fatal(err)
	}
	if s1.R.Cmp(s2.R) != 0 || s1.S.Cmp(s2.S) != 0 {
		t.Fatal("deterministic signing produced different signatures")
	}
	// Different messages use different nonces, hence different R.
	s3, _ := Sign(key, []byte("other message"))
	if s1.R.Cmp(s3.R) == 0 {
		t.Fatal("nonce reuse across messages (identical R)")
	}
}

func TestSignatureEncoding(t *testing.T) {
	key, _ := GenerateKey([]byte("encode"))
	sig, err := Sign(key, []byte("msg"))
	if err != nil {
		t.Fatal(err)
	}
	buf := sig.Encode()
	if len(buf) != SignatureSize {
		t.Fatalf("encoded length %d, want %d", len(buf), SignatureSize)
	}
	back, err := DecodeSignature(buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.R.Cmp(sig.R) != 0 || back.S.Cmp(sig.S) != 0 {
		t.Fatal("decode(encode(sig)) != sig")
	}
	if _, err := DecodeSignature(buf[:SignatureSize-1]); err == nil {
		t.Fatal("DecodeSignature accepted a short buffer")
	}
}

func TestSignVerifyQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("scalar multiplication is slow in -short mode")
	}
	key, _ := GenerateKey([]byte("quick"))
	f := func(msg []byte) bool {
		sig, err := Sign(key, msg)
		if err != nil {
			return false
		}
		return Verify(key.Public, msg, sig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
