// Package hmac implements HMAC (RFC 2104) over the from-scratch SHA-1 in
// internal/crypto/sha1. HMAC-SHA1 is the message authentication code the
// paper uses both for the attestation measurement (a MAC over the prover's
// writable memory, §3.1) and for authenticating verifier requests (§4.1).
package hmac

import (
	"proverattest/internal/crypto/sha1"
)

// TagSize is the length of a full HMAC-SHA1 tag in bytes.
const TagSize = sha1.Size

// SHA1 computes HMAC-SHA1(key, msg) in one call.
func SHA1(key, msg []byte) [TagSize]byte {
	m := NewSHA1(key)
	m.Write(msg)
	var out [TagSize]byte
	copy(out[:], m.Sum(nil))
	return out
}

// MAC is a streaming HMAC-SHA1 computation with a precomputed key
// schedule: the SHA-1 states after absorbing key⊕ipad and key⊕opad are
// cached at construction, so Reset is a struct copy (zero compression
// rounds) and each finalisation starts the outer pass from the cached
// state instead of re-absorbing the pad block. For the small messages the
// verifier gate and the swarm fold MAC per frame (tens of bytes, two of
// five compressions spent on pads), rekeying-by-Reset roughly halves the
// per-tag cost; see BenchmarkMACRekey vs BenchmarkMACReset.
type MAC struct {
	inner sha1.Digest // running inner hash: cached keyed state + message
	outer sha1.Digest // scratch for allocation-free finalisation (SumInto)

	// Key schedule, immutable after NewSHA1: the digest states with
	// exactly one pad block absorbed.
	innerInit sha1.Digest
	outerInit sha1.Digest
}

// NewSHA1 returns a streaming HMAC-SHA1 keyed with key. Keys longer than
// the SHA-1 block size are first hashed, per RFC 2104.
func NewSHA1(key []byte) *MAC {
	m := &MAC{}
	if len(key) > sha1.BlockSize {
		sum := sha1.Sum(key)
		key = sum[:]
	}
	var ipad, opad [sha1.BlockSize]byte
	copy(ipad[:], key)
	copy(opad[:], key)
	for i := range ipad {
		ipad[i] ^= 0x36
		opad[i] ^= 0x5c
	}
	m.innerInit.Reset()
	m.innerInit.Write(ipad[:])
	m.outerInit.Reset()
	m.outerInit.Write(opad[:])
	m.inner = m.innerInit
	return m
}

// Write absorbs msg bytes into the MAC.
func (m *MAC) Write(p []byte) (int, error) { return m.inner.Write(p) }

// Sum appends the tag to b. The MAC remains usable for further writes
// (the tag then covers the longer message).
func (m *MAC) Sum(b []byte) []byte {
	innerSum := m.inner.Sum(nil)
	outer := m.outerInit
	outer.Write(innerSum)
	return outer.Sum(b)
}

// SumInto writes the tag into out without allocating, finalising on the
// MAC's own outer scratch digest instead of a fresh one. Like Sum, it
// leaves the inner stream usable for further writes. It exists for
// per-frame hot paths (the attestation fast path) where Sum's
// intermediate slices would be per-call garbage.
func (m *MAC) SumInto(out *[TagSize]byte) {
	var innerSum [TagSize]byte
	m.inner.Sum(innerSum[:0])
	m.outer = m.outerInit
	m.outer.Write(innerSum[:])
	m.outer.Sum(out[:0])
}

// Reset restarts the MAC with the same key. It is a single struct copy of
// the cached keyed state — no pad re-absorption, no compression rounds —
// which is what makes holding one MAC per key and Reset-reusing it
// strictly cheaper than rekeying.
func (m *MAC) Reset() {
	m.inner = m.innerInit
}

// Equal compares two tags in constant time. Attestation code must never
// early-exit a tag comparison: on a real MCU that leaks the tag byte by
// byte through response timing.
func Equal(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	var v byte
	for i := range a {
		v |= a[i] ^ b[i]
	}
	return v == 0
}
