package hmac

import (
	"bytes"
	stdhmac "crypto/hmac"
	stdsha1 "crypto/sha1"
	"encoding/hex"
	"strings"
	"testing"
	"testing/quick"
)

// RFC 2202 HMAC-SHA1 test vectors.
var rfc2202 = []struct {
	key, data []byte
	want      string
}{
	{bytes.Repeat([]byte{0x0b}, 20), []byte("Hi There"),
		"b617318655057264e28bc0b6fb378c8ef146be00"},
	{[]byte("Jefe"), []byte("what do ya want for nothing?"),
		"effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"},
	{bytes.Repeat([]byte{0xaa}, 20), bytes.Repeat([]byte{0xdd}, 50),
		"125d7342b9ac11cd91a39af48aa17b4f63f175d3"},
	{mustHex("0102030405060708090a0b0c0d0e0f10111213141516171819"),
		bytes.Repeat([]byte{0xcd}, 50),
		"4c9007f4026250c6bc8414f9bf50c86c2d7235da"},
	{bytes.Repeat([]byte{0x0c}, 20), []byte("Test With Truncation"),
		"4c1a03424b55e07fe7f27be1d58bb9324a9a5a04"},
	{bytes.Repeat([]byte{0xaa}, 80),
		[]byte("Test Using Larger Than Block-Size Key - Hash Key First"),
		"aa4ae5e15272d00e95705637ce8a3b55ed402112"},
	{bytes.Repeat([]byte{0xaa}, 80),
		[]byte("Test Using Larger Than Block-Size Key and Larger Than One Block-Size Data"),
		"e8e99d0f45237d786d6bbaa7965c7808bbff1a91"},
}

func mustHex(s string) []byte {
	b, err := hex.DecodeString(s)
	if err != nil {
		panic(err)
	}
	return b
}

func TestRFC2202Vectors(t *testing.T) {
	for i, tc := range rfc2202 {
		got := SHA1(tc.key, tc.data)
		if hex.EncodeToString(got[:]) != tc.want {
			t.Errorf("vector %d: tag %x, want %s", i+1, got, tc.want)
		}
	}
}

func TestAgainstStdlib(t *testing.T) {
	f := func(key, msg []byte) bool {
		ours := SHA1(key, msg)
		m := stdhmac.New(stdsha1.New, key)
		m.Write(msg)
		return bytes.Equal(ours[:], m.Sum(nil))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamingMatchesOneShot(t *testing.T) {
	key := []byte("attestation-key")
	msg := []byte(strings.Repeat("prover memory contents ", 40))
	want := SHA1(key, msg)

	m := NewSHA1(key)
	for i := 0; i < len(msg); i += 7 {
		end := i + 7
		if end > len(msg) {
			end = len(msg)
		}
		m.Write(msg[i:end])
	}
	if got := m.Sum(nil); !bytes.Equal(got, want[:]) {
		t.Fatalf("streamed tag %x, want %x", got, want)
	}
}

func TestReset(t *testing.T) {
	key := []byte("k")
	m := NewSHA1(key)
	m.Write([]byte("first message"))
	m.Reset()
	m.Write([]byte("abc"))
	want := SHA1(key, []byte("abc"))
	if got := m.Sum(nil); !bytes.Equal(got, want[:]) {
		t.Fatalf("tag after Reset = %x, want %x", got, want)
	}
}

func TestSumIsRepeatable(t *testing.T) {
	m := NewSHA1([]byte("key"))
	m.Write([]byte("msg"))
	a := m.Sum(nil)
	b := m.Sum(nil)
	if !bytes.Equal(a, b) {
		t.Fatalf("consecutive Sum calls differ: %x vs %x", a, b)
	}
}

func TestEqual(t *testing.T) {
	a := []byte{1, 2, 3, 4}
	b := []byte{1, 2, 3, 4}
	c := []byte{1, 2, 3, 5}
	short := []byte{1, 2, 3}
	if !Equal(a, b) {
		t.Error("Equal(a, a-copy) = false")
	}
	if Equal(a, c) {
		t.Error("Equal(a, c) = true for differing tags")
	}
	if Equal(a, short) {
		t.Error("Equal(a, short) = true for different lengths")
	}
	if !Equal(nil, nil) {
		t.Error("Equal(nil, nil) = false")
	}
}

func TestKeySensitivity(t *testing.T) {
	msg := []byte("the same message")
	t1 := SHA1([]byte("key-one"), msg)
	t2 := SHA1([]byte("key-two"), msg)
	if t1 == t2 {
		t.Fatal("different keys produced identical tags")
	}
}

// TestResetReuseMatchesFresh pins the key-schedule cache: a MAC that is
// Reset and reused across many messages must produce exactly the tags a
// freshly keyed MAC would, including for long (hashed) keys.
func TestResetReuseMatchesFresh(t *testing.T) {
	keys := [][]byte{
		[]byte("k"),
		[]byte("attestation-key"),
		bytes.Repeat([]byte{0xaa}, 80), // > block size: hashed first
	}
	for _, key := range keys {
		m := NewSHA1(key)
		for i := 0; i < 32; i++ {
			msg := bytes.Repeat([]byte{byte(i)}, i*7+1)
			m.Reset()
			m.Write(msg)
			want := SHA1(key, msg)

			got := m.Sum(nil)
			if !bytes.Equal(got, want[:]) {
				t.Fatalf("key %d msg %d: reused Sum = %x, want %x", len(key), i, got, want)
			}
			var into [TagSize]byte
			m.SumInto(&into)
			if into != want {
				t.Fatalf("key %d msg %d: reused SumInto = %x, want %x", len(key), i, into, want)
			}
		}
	}
}

// TestResetReuseAllocs pins the hot-path contract the verifier gate and
// the swarm fold rely on: Reset + Write + SumInto on a held MAC is
// allocation-free.
func TestResetReuseAllocs(t *testing.T) {
	m := NewSHA1([]byte("attestation-key"))
	msg := []byte("R|nonce|counter|signed request bytes")
	var tag [TagSize]byte
	allocs := testing.AllocsPerRun(1000, func() {
		m.Reset()
		m.Write(msg)
		m.SumInto(&tag)
	})
	if allocs != 0 {
		t.Fatalf("Reset+Write+SumInto allocated %.1f/op, want 0", allocs)
	}
}

// benchMsg is sized like the frames the gate MACs: small enough that the
// two pad-block compressions dominate when they are not cached.
var benchMsg = []byte("R|nonce=0123456789abcdef|counter=0123456789abcdef|v1")

// BenchmarkMACRekey is the before picture: keying a fresh MAC per tag, the
// way per-call sites (hmac.SHA1) pay for small messages.
func BenchmarkMACRekey(b *testing.B) {
	key := []byte("attestation-key")
	var tag [TagSize]byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := NewSHA1(key)
		m.Write(benchMsg)
		m.SumInto(&tag)
	}
}

// BenchmarkMACReset is the after picture: one held MAC, Reset-and-reuse
// from the cached key schedule.
func BenchmarkMACReset(b *testing.B) {
	m := NewSHA1([]byte("attestation-key"))
	var tag [TagSize]byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Reset()
		m.Write(benchMsg)
		m.SumInto(&tag)
	}
}
