// Package sha1 is a from-scratch implementation of the SHA-1 hash function
// (FIPS 180-1), the digest the paper's HMAC-based attestation measurement
// uses. It exists so the reproduction has no dependency on host crypto: the
// prover's trust anchor runs exactly this code, and its latency is modeled
// by internal/crypto/cost.
//
// SHA-1 is cryptographically broken for collision resistance; it is
// implemented here because the paper (and the SMART/TrustLite lineage it
// builds on) specifies SHA1-HMAC, and HMAC-SHA1 remains PRF-secure, which
// is the property attestation needs.
package sha1

import "encoding/binary"

// Size is the length of a SHA-1 digest in bytes.
const Size = 20

// BlockSize is the SHA-1 compression-function block size in bytes.
const BlockSize = 64

const (
	init0 = 0x67452301
	init1 = 0xEFCDAB89
	init2 = 0x98BADCFE
	init3 = 0x10325476
	init4 = 0xC3D2E1F0
)

// Digest is a streaming SHA-1 computation. The zero value is not valid;
// use New.
type Digest struct {
	h   [5]uint32
	x   [BlockSize]byte
	nx  int
	len uint64
}

// New returns a freshly initialised SHA-1 digest.
func New() *Digest {
	d := &Digest{}
	d.Reset()
	return d
}

// Reset returns the digest to its initial state.
func (d *Digest) Reset() {
	d.h = [5]uint32{init0, init1, init2, init3, init4}
	d.nx = 0
	d.len = 0
}

// Write absorbs p into the hash state. It never fails.
func (d *Digest) Write(p []byte) (int, error) {
	n := len(p)
	d.len += uint64(n)
	if d.nx > 0 {
		c := copy(d.x[d.nx:], p)
		d.nx += c
		if d.nx == BlockSize {
			d.block(d.x[:])
			d.nx = 0
		}
		p = p[c:]
	}
	for len(p) >= BlockSize {
		d.block(p[:BlockSize])
		p = p[BlockSize:]
	}
	if len(p) > 0 {
		d.nx = copy(d.x[:], p)
	}
	return n, nil
}

// Sum appends the current digest to b without disturbing the running state.
func (d *Digest) Sum(b []byte) []byte {
	cp := *d // padding must not change the caller's stream state
	digest := cp.checkSum()
	return append(b, digest[:]...)
}

// Size returns the digest length, satisfying the usual hash.Hash shape.
func (d *Digest) Size() int { return Size }

// BlockSizeBytes returns the compression block size.
func (d *Digest) BlockSizeBytes() int { return BlockSize }

func (d *Digest) checkSum() [Size]byte {
	bitLen := d.len << 3
	var pad [BlockSize + 8]byte
	pad[0] = 0x80
	// Pad so that length ≡ 56 (mod 64), then append the 64-bit length.
	padLen := 56 - int(d.len%BlockSize)
	if padLen <= 0 {
		padLen += BlockSize
	}
	var lenBytes [8]byte
	binary.BigEndian.PutUint64(lenBytes[:], bitLen)
	d.Write(pad[:padLen]) //nolint:errcheck // never fails
	d.Write(lenBytes[:])  //nolint:errcheck
	if d.nx != 0 {
		panic("sha1: internal padding error")
	}
	var out [Size]byte
	for i, v := range d.h {
		binary.BigEndian.PutUint32(out[i*4:], v)
	}
	return out
}

// block runs the SHA-1 compression function over one or more 64-byte blocks.
func (d *Digest) block(p []byte) {
	var w [80]uint32
	h0, h1, h2, h3, h4 := d.h[0], d.h[1], d.h[2], d.h[3], d.h[4]
	for len(p) >= BlockSize {
		for i := 0; i < 16; i++ {
			w[i] = binary.BigEndian.Uint32(p[i*4:])
		}
		for i := 16; i < 80; i++ {
			t := w[i-3] ^ w[i-8] ^ w[i-14] ^ w[i-16]
			w[i] = t<<1 | t>>31
		}
		a, b, c, dd, e := h0, h1, h2, h3, h4
		for i := 0; i < 80; i++ {
			var f, k uint32
			switch {
			case i < 20:
				f = (b & c) | (^b & dd)
				k = 0x5A827999
			case i < 40:
				f = b ^ c ^ dd
				k = 0x6ED9EBA1
			case i < 60:
				f = (b & c) | (b & dd) | (c & dd)
				k = 0x8F1BBCDC
			default:
				f = b ^ c ^ dd
				k = 0xCA62C1D6
			}
			t := (a<<5 | a>>27) + f + e + k + w[i]
			e = dd
			dd = c
			c = b<<30 | b>>2
			b = a
			a = t
		}
		h0 += a
		h1 += b
		h2 += c
		h3 += dd
		h4 += e
		p = p[BlockSize:]
	}
	d.h = [5]uint32{h0, h1, h2, h3, h4}
}

// Sum computes the SHA-1 digest of data in one call.
func Sum(data []byte) [Size]byte {
	d := New()
	d.Write(data) //nolint:errcheck
	return d.checkSum()
}
