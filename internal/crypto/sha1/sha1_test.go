package sha1

import (
	"bytes"
	stdsha1 "crypto/sha1"
	"encoding/hex"
	"strings"
	"testing"
	"testing/quick"
)

// FIPS 180-1 / RFC 3174 test vectors.
var knownAnswers = []struct {
	in   string
	want string
}{
	{"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"},
	{"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"},
	{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
		"84983e441c3bd26ebaae4aa1f95129e5e54670f1"},
	{"The quick brown fox jumps over the lazy dog",
		"2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"},
	{"The quick brown fox jumps over the lazy cog",
		"de9f2c7fd25e1b3afad3e85a0bd17d9b100db4b3"},
	{strings.Repeat("a", 1000000), "34aa973cd4c4daa4f61eeb2bdbad27316534016f"},
}

func TestKnownAnswers(t *testing.T) {
	for _, tc := range knownAnswers {
		got := Sum([]byte(tc.in))
		if hex.EncodeToString(got[:]) != tc.want {
			name := tc.in
			if len(name) > 32 {
				name = name[:32] + "..."
			}
			t.Errorf("Sum(%q) = %x, want %s", name, got, tc.want)
		}
	}
}

func TestStreamingEquivalence(t *testing.T) {
	// Writing in arbitrary chunk sizes must match the one-shot digest.
	data := make([]byte, 4099)
	for i := range data {
		data[i] = byte(i * 131)
	}
	want := Sum(data)
	for _, chunk := range []int{1, 3, 63, 64, 65, 128, 1000} {
		d := New()
		for off := 0; off < len(data); off += chunk {
			end := off + chunk
			if end > len(data) {
				end = len(data)
			}
			d.Write(data[off:end])
		}
		if got := d.Sum(nil); !bytes.Equal(got, want[:]) {
			t.Errorf("chunk size %d: digest %x, want %x", chunk, got, want)
		}
	}
}

func TestSumDoesNotDisturbState(t *testing.T) {
	d := New()
	d.Write([]byte("hello "))
	mid := d.Sum(nil)
	d.Write([]byte("world"))
	final := d.Sum(nil)
	want := Sum([]byte("hello world"))
	if !bytes.Equal(final, want[:]) {
		t.Fatalf("digest after intermediate Sum = %x, want %x", final, want)
	}
	wantMid := Sum([]byte("hello "))
	if !bytes.Equal(mid, wantMid[:]) {
		t.Fatalf("intermediate digest = %x, want %x", mid, wantMid)
	}
}

func TestReset(t *testing.T) {
	d := New()
	d.Write([]byte("garbage state"))
	d.Reset()
	d.Write([]byte("abc"))
	want := Sum([]byte("abc"))
	if got := d.Sum(nil); !bytes.Equal(got, want[:]) {
		t.Fatalf("digest after Reset = %x, want %x", got, want)
	}
}

// TestAgainstStdlib cross-checks the from-scratch implementation against the
// Go standard library over random inputs. The stdlib appears only in tests.
func TestAgainstStdlib(t *testing.T) {
	f := func(data []byte) bool {
		ours := Sum(data)
		theirs := stdsha1.Sum(data)
		return ours == theirs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLengthBoundaries(t *testing.T) {
	// Exercise every padding branch: messages whose length mod 64 straddles
	// the 55/56 padding boundary.
	for n := 0; n <= 130; n++ {
		data := bytes.Repeat([]byte{0xA5}, n)
		ours := Sum(data)
		theirs := stdsha1.Sum(data)
		if ours != theirs {
			t.Fatalf("length %d: digest %x, want %x", n, ours, theirs)
		}
	}
}

func BenchmarkSum1K(b *testing.B) {
	data := make([]byte, 1024)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		Sum(data)
	}
}
