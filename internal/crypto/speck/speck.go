// Package speck is a from-scratch implementation of the Speck 64/128
// lightweight block cipher (Beaulieu et al., "The SIMON and SPECK Families
// of Lightweight Block Ciphers", 2013) with CBC mode and CBC-MAC. The paper
// singles Speck out as the cheapest request-authentication primitive for a
// low-end prover: 0.015–0.017 ms per 8-byte block at 24 MHz once the key
// schedule is precomputed (Table 1, §4.1).
package speck

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// BlockSize is the Speck 64/128 block size in bytes (64-bit blocks).
const BlockSize = 8

// KeySize is the Speck 64/128 key size in bytes (128-bit keys).
const KeySize = 16

const rounds = 27

// Cipher is an expanded Speck 64/128 key schedule.
type Cipher struct {
	rk [rounds]uint32
}

// New expands a 16-byte key. Word order follows the reference
// implementation: key bytes are four little-endian 32-bit words, the first
// word being k[0].
func New(key []byte) (*Cipher, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("speck: invalid key size %d (want %d)", len(key), KeySize)
	}
	var k [4]uint32
	for i := range k {
		k[i] = binary.LittleEndian.Uint32(key[i*4:])
	}
	return NewFromWords(k), nil
}

// NewFromWords expands a key given as the reference implementation's word
// array: k[0] is the first round key, k[1..3] seed the l-sequence.
func NewFromWords(k [4]uint32) *Cipher {
	c := &Cipher{}
	l := [3]uint32{k[1], k[2], k[3]}
	c.rk[0] = k[0]
	for i := 0; i < rounds-1; i++ {
		newL := (c.rk[i] + ror32(l[i%3], 8)) ^ uint32(i)
		c.rk[i+1] = rol32(c.rk[i], 3) ^ newL
		l[i%3] = newL
	}
	return c
}

func ror32(v uint32, r uint) uint32 { return v>>r | v<<(32-r) }
func rol32(v uint32, r uint) uint32 { return v<<r | v>>(32-r) }

// encryptWords runs the Speck round function on a block given as the word
// pair (x, y) of the reference test vectors.
func (c *Cipher) encryptWords(x, y uint32) (uint32, uint32) {
	for i := 0; i < rounds; i++ {
		x = (ror32(x, 8) + y) ^ c.rk[i]
		y = rol32(y, 3) ^ x
	}
	return x, y
}

// decryptWords inverts encryptWords.
func (c *Cipher) decryptWords(x, y uint32) (uint32, uint32) {
	for i := rounds - 1; i >= 0; i-- {
		y = ror32(y^x, 3)
		x = rol32((x^c.rk[i])-y, 8)
	}
	return x, y
}

// Encrypt encrypts one 8-byte block. Byte layout follows the reference
// implementation: src[0:4] is word y (little-endian), src[4:8] is word x.
func (c *Cipher) Encrypt(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("speck: short block")
	}
	y := binary.LittleEndian.Uint32(src[0:])
	x := binary.LittleEndian.Uint32(src[4:])
	x, y = c.encryptWords(x, y)
	binary.LittleEndian.PutUint32(dst[0:], y)
	binary.LittleEndian.PutUint32(dst[4:], x)
}

// Decrypt decrypts one 8-byte block.
func (c *Cipher) Decrypt(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("speck: short block")
	}
	y := binary.LittleEndian.Uint32(src[0:])
	x := binary.LittleEndian.Uint32(src[4:])
	x, y = c.decryptWords(x, y)
	binary.LittleEndian.PutUint32(dst[0:], y)
	binary.LittleEndian.PutUint32(dst[4:], x)
}

// BlockSizeBytes reports the cipher block size.
func (c *Cipher) BlockSizeBytes() int { return BlockSize }

// ErrNotAligned reports CBC input whose length is not a multiple of the
// block size.
var ErrNotAligned = errors.New("speck: input not a multiple of the block size")

// EncryptCBC encrypts src (length must be a multiple of 8) under iv.
func (c *Cipher) EncryptCBC(iv, src []byte) ([]byte, error) {
	if len(iv) != BlockSize {
		return nil, fmt.Errorf("speck: iv length %d (want %d)", len(iv), BlockSize)
	}
	if len(src)%BlockSize != 0 {
		return nil, ErrNotAligned
	}
	out := make([]byte, len(src))
	prev := iv
	for off := 0; off < len(src); off += BlockSize {
		var blk [BlockSize]byte
		for i := range blk {
			blk[i] = src[off+i] ^ prev[i]
		}
		c.Encrypt(out[off:], blk[:])
		prev = out[off : off+BlockSize]
	}
	return out, nil
}

// DecryptCBC inverts EncryptCBC.
func (c *Cipher) DecryptCBC(iv, src []byte) ([]byte, error) {
	if len(iv) != BlockSize {
		return nil, fmt.Errorf("speck: iv length %d (want %d)", len(iv), BlockSize)
	}
	if len(src)%BlockSize != 0 {
		return nil, ErrNotAligned
	}
	out := make([]byte, len(src))
	prev := iv
	for off := 0; off < len(src); off += BlockSize {
		c.Decrypt(out[off:], src[off:])
		for i := 0; i < BlockSize; i++ {
			out[off+i] ^= prev[i]
		}
		prev = src[off : off+BlockSize]
	}
	return out, nil
}

// MAC computes a CBC-MAC tag over msg with zero IV and 10* padding, as for
// the AES variant. Fixed-length protocol messages keep CBC-MAC sound.
func (c *Cipher) MAC(msg []byte) [BlockSize]byte {
	n := len(msg)
	padded := make([]byte, ((n/BlockSize)+1)*BlockSize)
	copy(padded, msg)
	padded[n] = 0x80
	var tag [BlockSize]byte
	for off := 0; off < len(padded); off += BlockSize {
		for i := range tag {
			tag[i] ^= padded[off+i]
		}
		c.Encrypt(tag[:], tag[:])
	}
	return tag
}
