package speck

import (
	"bytes"
	"testing"
	"testing/quick"
)

// Official Speck 64/128 test vector from the SIMON/SPECK paper (ePrint
// 2013/404, Appendix C): key words 1b1a1918 13121110 0b0a0908 03020100,
// plaintext (x, y) = (3b726574, 7475432d), ciphertext (8c6fa548, 454e028b).
func TestReferenceVectorWords(t *testing.T) {
	c := NewFromWords([4]uint32{0x03020100, 0x0b0a0908, 0x13121110, 0x1b1a1918})
	x, y := c.encryptWords(0x3b726574, 0x7475432d)
	if x != 0x8c6fa548 || y != 0x454e028b {
		t.Fatalf("encryptWords = (%08x, %08x), want (8c6fa548, 454e028b)", x, y)
	}
	px, py := c.decryptWords(x, y)
	if px != 0x3b726574 || py != 0x7475432d {
		t.Fatalf("decryptWords = (%08x, %08x), want (3b726574, 7475432d)", px, py)
	}
}

func TestReferenceVectorBytes(t *testing.T) {
	// Same vector through the byte-level interface: little-endian words,
	// y at offset 0, x at offset 4.
	key := []byte{
		0x00, 0x01, 0x02, 0x03,
		0x08, 0x09, 0x0a, 0x0b,
		0x10, 0x11, 0x12, 0x13,
		0x18, 0x19, 0x1a, 0x1b,
	}
	pt := []byte{0x2d, 0x43, 0x75, 0x74, 0x74, 0x65, 0x72, 0x3b}
	wantCT := []byte{0x8b, 0x02, 0x4e, 0x45, 0x48, 0xa5, 0x6f, 0x8c}

	c, err := New(key)
	if err != nil {
		t.Fatal(err)
	}
	ct := make([]byte, 8)
	c.Encrypt(ct, pt)
	if !bytes.Equal(ct, wantCT) {
		t.Fatalf("Encrypt = %x, want %x", ct, wantCT)
	}
	back := make([]byte, 8)
	c.Decrypt(back, ct)
	if !bytes.Equal(back, pt) {
		t.Fatalf("Decrypt(Encrypt(pt)) = %x, want %x", back, pt)
	}
}

func TestInvalidKeySize(t *testing.T) {
	for _, n := range []int{0, 8, 15, 17, 32} {
		if _, err := New(make([]byte, n)); err == nil {
			t.Errorf("New(%d-byte key) succeeded, want error", n)
		}
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	f := func(key [16]byte, block [8]byte) bool {
		c, err := New(key[:])
		if err != nil {
			return false
		}
		ct := make([]byte, 8)
		pt := make([]byte, 8)
		c.Encrypt(ct, block[:])
		c.Decrypt(pt, ct)
		return bytes.Equal(pt, block[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestKeySensitivity(t *testing.T) {
	k1 := make([]byte, 16)
	k2 := make([]byte, 16)
	k2[0] = 1
	c1, _ := New(k1)
	c2, _ := New(k2)
	blk := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	a := make([]byte, 8)
	b := make([]byte, 8)
	c1.Encrypt(a, blk)
	c2.Encrypt(b, blk)
	if bytes.Equal(a, b) {
		t.Fatal("one-bit key change produced identical ciphertext")
	}
}

func TestCBCRoundTrip(t *testing.T) {
	key := bytes.Repeat([]byte{0x5a}, 16)
	iv := []byte{9, 8, 7, 6, 5, 4, 3, 2}
	c, err := New(key)
	if err != nil {
		t.Fatal(err)
	}
	msg := bytes.Repeat([]byte("req-data"), 6) // 48 bytes, aligned
	ct, err := c.EncryptCBC(iv, msg)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ct, msg) {
		t.Fatal("CBC ciphertext equals plaintext")
	}
	pt, err := c.DecryptCBC(iv, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, msg) {
		t.Fatalf("CBC round trip: got %x, want %x", pt, msg)
	}
}

func TestCBCChainsBlocks(t *testing.T) {
	// Two identical plaintext blocks must encrypt to different ciphertext
	// blocks under CBC.
	c, _ := New(make([]byte, 16))
	iv := make([]byte, 8)
	msg := bytes.Repeat([]byte{0x11}, 16)
	ct, err := c.EncryptCBC(iv, msg)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ct[:8], ct[8:]) {
		t.Fatal("CBC produced identical ciphertext blocks for identical plaintext blocks")
	}
}

func TestCBCRejectsMisalignedInput(t *testing.T) {
	c, _ := New(make([]byte, 16))
	iv := make([]byte, 8)
	if _, err := c.EncryptCBC(iv, make([]byte, 9)); err != ErrNotAligned {
		t.Errorf("EncryptCBC misaligned: err = %v, want ErrNotAligned", err)
	}
	if _, err := c.DecryptCBC(iv, make([]byte, 15)); err != ErrNotAligned {
		t.Errorf("DecryptCBC misaligned: err = %v, want ErrNotAligned", err)
	}
	if _, err := c.EncryptCBC(make([]byte, 4), make([]byte, 8)); err == nil {
		t.Error("EncryptCBC accepted a short IV")
	}
}

func TestMACProperties(t *testing.T) {
	c, _ := New([]byte("speck-64-128-key"))
	t1 := c.MAC([]byte("attreq|counter=7"))
	t2 := c.MAC([]byte("attreq|counter=8"))
	if t1 == t2 {
		t.Fatal("MAC identical for different messages")
	}
	if c.MAC([]byte("attreq|counter=7")) != t1 {
		t.Fatal("MAC not deterministic")
	}
	// Padding injectivity across the padding byte.
	if c.MAC([]byte("abc")) == c.MAC([]byte("abc\x80")) {
		t.Fatal("MAC padding is not injective")
	}
}

func BenchmarkEncryptBlock(b *testing.B) {
	c, _ := New(make([]byte, 16))
	blk := make([]byte, 8)
	b.SetBytes(8)
	for i := 0; i < b.N; i++ {
		c.Encrypt(blk, blk)
	}
}
