// Package energy models the prover's power draw and battery, quantifying
// the paper's core DoS argument (§3.1): every maliciously triggered
// attestation burns ≈754 ms of active CPU time, and on a battery-powered
// sensor node that energy is the scarce resource the adversary is really
// attacking.
package energy

import (
	"fmt"
	"math"

	"proverattest/internal/crypto/cost"
	"proverattest/internal/sim"
)

// PowerModel describes the MCU's draw in its two states. Defaults are
// typical for an MSP430/Siskiyou-Peak-class part at 3 V: ~10 mA active at
// 24 MHz, ~2 µA in low-power sleep.
type PowerModel struct {
	ActiveWatts float64
	SleepWatts  float64
}

// DefaultPower is the reference power model used by the benchmarks.
func DefaultPower() PowerModel {
	return PowerModel{ActiveWatts: 0.030, SleepWatts: 0.000006}
}

// EnergyJoules computes the energy consumed over a window of totalTime in
// which the core was active for activeCycles (at 24 MHz) and asleep
// otherwise.
func (p PowerModel) EnergyJoules(activeCycles cost.Cycles, totalTime sim.Duration) float64 {
	activeSec := float64(activeCycles) / cost.ClockHz
	totalSec := totalTime.Seconds()
	sleepSec := totalSec - activeSec
	if sleepSec < 0 {
		sleepSec = 0
	}
	return activeSec*p.ActiveWatts + sleepSec*p.SleepWatts
}

// ActiveEnergyJoules is the energy for pure computation, ignoring sleep.
func (p PowerModel) ActiveEnergyJoules(activeCycles cost.Cycles) float64 {
	return float64(activeCycles) / cost.ClockHz * p.ActiveWatts
}

// Battery is an energy reservoir.
type Battery struct {
	CapacityJoules float64
	drawn          float64
}

// CoinCellCR2032 returns the classic 225 mAh, 3 V coin cell: 2430 J.
func CoinCellCR2032() *Battery {
	return &Battery{CapacityJoules: 0.225 * 3.0 * 3600}
}

// NewBattery returns a battery with the given capacity in joules.
func NewBattery(joules float64) *Battery {
	return &Battery{CapacityJoules: joules}
}

// Draw removes energy; it saturates at empty.
func (b *Battery) Draw(joules float64) {
	b.drawn += joules
	if b.drawn > b.CapacityJoules {
		b.drawn = b.CapacityJoules
	}
}

// Remaining reports the unconsumed energy in joules.
func (b *Battery) Remaining() float64 { return b.CapacityJoules - b.drawn }

// Fraction reports the remaining charge in [0, 1].
func (b *Battery) Fraction() float64 {
	if b.CapacityJoules == 0 {
		return 0
	}
	return b.Remaining() / b.CapacityJoules
}

// Depleted reports whether the battery is empty.
func (b *Battery) Depleted() bool { return b.Remaining() <= 0 }

func (b *Battery) String() string {
	return fmt.Sprintf("%.1f J remaining of %.1f J (%.1f%%)",
		b.Remaining(), b.CapacityJoules, 100*b.Fraction())
}

// LifetimeSeconds estimates how long a battery lasts under a steady duty
// cycle: the core is active for activeCyclesPerSec cycles each second and
// asleep the rest. Returns +Inf when the steady draw is zero.
func LifetimeSeconds(b *Battery, p PowerModel, activeCyclesPerSec float64) float64 {
	activeFrac := activeCyclesPerSec / cost.ClockHz
	if activeFrac > 1 {
		activeFrac = 1
	}
	wattsPerSec := activeFrac*p.ActiveWatts + (1-activeFrac)*p.SleepWatts
	if wattsPerSec <= 0 {
		return math.Inf(1)
	}
	return b.Remaining() / wattsPerSec
}

// DaysFromSeconds converts a lifetime to days for reporting.
func DaysFromSeconds(sec float64) float64 { return sec / 86400 }
