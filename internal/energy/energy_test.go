package energy

import (
	"math"
	"testing"

	"proverattest/internal/crypto/cost"
	"proverattest/internal/sim"
)

func TestEnergyJoulesSplitsActiveAndSleep(t *testing.T) {
	p := PowerModel{ActiveWatts: 0.030, SleepWatts: 0.000006}
	// 1 s window, core active for 0.5 s (12e6 cycles).
	got := p.EnergyJoules(12_000_000, sim.Second)
	want := 0.5*0.030 + 0.5*0.000006
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("EnergyJoules = %g, want %g", got, want)
	}
}

func TestEnergyJoulesClampsOversubscription(t *testing.T) {
	p := DefaultPower()
	// More active cycles than the window holds: no negative sleep energy.
	got := p.EnergyJoules(48_000_000, sim.Second)
	want := 2.0 * p.ActiveWatts
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("EnergyJoules = %g, want %g (pure active)", got, want)
	}
}

func TestAttestationEnergyCost(t *testing.T) {
	// One forced attestation = the §3.1 memory MAC ≈ 754 ms active:
	// about 22.6 mJ at 30 mW. This is the per-request damage an
	// unauthenticated DoS request inflicts.
	p := DefaultPower()
	j := p.ActiveEnergyJoules(cost.HMACSHA1(512 * 1024))
	if j < 0.0225 || j > 0.0227 {
		t.Fatalf("per-attestation energy = %g J, want ≈0.0226 J", j)
	}
}

func TestBatteryAccounting(t *testing.T) {
	b := NewBattery(10)
	b.Draw(4)
	if b.Remaining() != 6 {
		t.Fatalf("Remaining = %g, want 6", b.Remaining())
	}
	if b.Fraction() != 0.6 {
		t.Fatalf("Fraction = %g, want 0.6", b.Fraction())
	}
	if b.Depleted() {
		t.Fatal("battery reported depleted at 60%")
	}
	b.Draw(100) // saturates
	if b.Remaining() != 0 || !b.Depleted() {
		t.Fatalf("after overdraw: remaining %g, depleted %v", b.Remaining(), b.Depleted())
	}
}

func TestCoinCellCapacity(t *testing.T) {
	b := CoinCellCR2032()
	if math.Abs(b.CapacityJoules-2430) > 1e-9 {
		t.Fatalf("CR2032 capacity = %g J, want 2430", b.CapacityJoules)
	}
}

func TestLifetimeUnderFlood(t *testing.T) {
	// The DoS asymmetry in joules: a prover forced into back-to-back
	// attestations (fully active) dies in under a day on a coin cell,
	// versus years when mostly asleep.
	p := DefaultPower()
	flooded := LifetimeSeconds(CoinCellCR2032(), p, cost.ClockHz) // 100% active
	idle := LifetimeSeconds(CoinCellCR2032(), p, 0)               // pure sleep
	if DaysFromSeconds(flooded) > 1.0 {
		t.Fatalf("flooded lifetime = %.2f days, want <1", DaysFromSeconds(flooded))
	}
	if DaysFromSeconds(idle) < 365 {
		t.Fatalf("idle lifetime = %.2f days, want years", DaysFromSeconds(idle))
	}
	if flooded >= idle {
		t.Fatal("flooding did not shorten lifetime")
	}
}

func TestLifetimeClampsActiveFraction(t *testing.T) {
	p := DefaultPower()
	over := LifetimeSeconds(NewBattery(100), p, 2*cost.ClockHz)
	full := LifetimeSeconds(NewBattery(100), p, cost.ClockHz)
	if over != full {
		t.Fatalf("oversubscribed lifetime %g != fully-active lifetime %g", over, full)
	}
}

func TestLifetimeInfiniteAtZeroDraw(t *testing.T) {
	if !math.IsInf(LifetimeSeconds(NewBattery(1), PowerModel{}, 0), 1) {
		t.Fatal("zero-draw lifetime not infinite")
	}
}

func TestZeroCapacityBattery(t *testing.T) {
	b := NewBattery(0)
	if b.Fraction() != 0 {
		t.Fatalf("zero-capacity Fraction = %g, want 0", b.Fraction())
	}
	if !b.Depleted() {
		t.Fatal("zero-capacity battery not depleted")
	}
}
