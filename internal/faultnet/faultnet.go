package faultnet

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"proverattest/internal/obs"
)

// Injected-fault errors. They satisfy net.Error so the layers above treat
// them like the real network failures they stand in for.
var (
	// ErrInjectedReset is returned from a Read/Write the schedule reset.
	ErrInjectedReset = errors.New("faultnet: injected connection reset")
	// ErrInjectedAccept is returned from an Accept the schedule failed.
	// It reports Temporary() == true, the shape of a transient accept
	// failure (EMFILE, ECONNABORTED) a resilient accept loop retries.
	ErrInjectedAccept = tempError{}
)

// tempError is a transient, retryable network error.
type tempError struct{}

func (tempError) Error() string   { return "faultnet: injected accept failure" }
func (tempError) Temporary() bool { return true }
func (tempError) Timeout() bool   { return false }

// Options parameterise a fault-injecting connection.
type Options struct {
	// Seed keys the connection's RNG (probabilistic triggers, corruption
	// positions). Two connections with equal seeds and schedules inject
	// identical faults against identical traffic.
	Seed int64
	// Now is the injectable clock (default time.Now); Sleep the
	// injectable delay (default time.Sleep). Tests freeze both.
	Now   func() time.Time
	Sleep func(time.Duration)
	// Metrics, when non-nil, receives fleet-wide injected-fault counters
	// (see NewMetrics). Per-connection totals are always kept (Stats).
	Metrics *Metrics
}

func (o *Options) defaults() {
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
}

// Stats counts the faults one connection has injected, by kind. Fields
// are read with atomic loads (Snapshot) so tests can poll mid-run.
type Stats struct {
	Resets      atomic.Uint64
	Drops       atomic.Uint64
	Corruptions atomic.Uint64
	ShortWrites atomic.Uint64
	Delays      atomic.Uint64
	RateStalls  atomic.Uint64
}

// StatsSnapshot is a point-in-time copy of Stats.
type StatsSnapshot struct {
	Resets, Drops, Corruptions, ShortWrites, Delays, RateStalls uint64
}

// Total is the sum of all injected faults in the snapshot.
func (s StatsSnapshot) Total() uint64 {
	return s.Resets + s.Drops + s.Corruptions + s.ShortWrites + s.Delays + s.RateStalls
}

// Snapshot copies the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Resets:      s.Resets.Load(),
		Drops:       s.Drops.Load(),
		Corruptions: s.Corruptions.Load(),
		ShortWrites: s.ShortWrites.Load(),
		Delays:      s.Delays.Load(),
		RateStalls:  s.RateStalls.Load(),
	}
}

// Metrics is the fleet-wide injected-fault accounting, one obs counter
// per fault kind. Like transport.Metrics it may be shared across every
// connection of a run; recording is atomics-only and a nil *Metrics
// disables it.
type Metrics struct {
	Resets      *obs.Counter
	Drops       *obs.Counter
	Corruptions *obs.Counter
	ShortWrites *obs.Counter
	Delays      *obs.Counter
	AcceptFails *obs.Counter
}

// NewMetrics registers the faultnet series on r
// (faultnet_injected_total{kind=...}).
func NewMetrics(r *obs.Registry) *Metrics {
	const help = "Faults injected by the chaos harness, by kind."
	return &Metrics{
		Resets:      r.Counter("faultnet_injected_total", help, obs.L("kind", "reset")),
		Drops:       r.Counter("faultnet_injected_total", help, obs.L("kind", "drop")),
		Corruptions: r.Counter("faultnet_injected_total", help, obs.L("kind", "corrupt")),
		ShortWrites: r.Counter("faultnet_injected_total", help, obs.L("kind", "short")),
		Delays:      r.Counter("faultnet_injected_total", help, obs.L("kind", "delay")),
		AcceptFails: r.Counter("faultnet_injected_total", help, obs.L("kind", "accept_fail")),
	}
}

// Conn injects the schedule's faults into one net.Conn. Count triggers
// advance on writes (one transport frame is one write, so "after=80"
// means the 80th frame); flap triggers are also evaluated on reads so an
// idle connection still flaps. Deadline and address methods delegate to
// the wrapped connection.
type Conn struct {
	nc    net.Conn
	sched *Schedule
	opt   Options

	mu       sync.Mutex
	rng      *rand.Rand
	writes   uint64
	reads    uint64
	flapLast []time.Time // per-rule last flap firing (index-aligned with Rules)
	nextFree time.Time   // bandwidth-cap pacing horizon
	closed   bool

	stats Stats
}

// Wrap wraps nc with the schedule. A nil schedule injects nothing (the
// connection still works, so chaos wiring can be unconditional).
func Wrap(nc net.Conn, sched *Schedule, opt Options) *Conn {
	opt.defaults()
	if sched == nil {
		sched = &Schedule{}
	}
	c := &Conn{
		nc:    nc,
		sched: sched,
		opt:   opt,
		rng:   rand.New(rand.NewSource(opt.Seed)),
	}
	now := opt.Now()
	c.flapLast = make([]time.Time, len(sched.Rules))
	for i := range c.flapLast {
		c.flapLast[i] = now
	}
	return c
}

// Stats exposes the connection's injected-fault counters.
func (c *Conn) Stats() *Stats { return &c.stats }

// plan is the set of faults one operation drew from the schedule.
type plan struct {
	delay                       time.Duration
	rate                        int64
	reset, drop, corrupt, short bool
	corruptAt                   int // corruption byte offset basis (rng draw)
}

// matchLocked evaluates rule i against op index op; c.mu must be held.
func (c *Conn) matchLocked(i int, r Rule, op uint64) bool {
	switch r.Trigger {
	case TriggerAll:
		return true
	case TriggerAt:
		return op == r.N
	case TriggerAfter:
		return op >= r.N
	case TriggerEvery:
		return op%r.N == 0
	case TriggerPct:
		return uint64(c.rng.Intn(100)) < r.N
	case TriggerFlap:
		now := c.opt.Now()
		if now.Sub(c.flapLast[i]) >= r.Period {
			c.flapLast[i] = now
			return true
		}
	}
	return false
}

// planLocked folds every matching rule into one plan; c.mu must be held.
// write selects whether write-only actions (drop/corrupt/short/rate and
// count-triggered resets) participate.
func (c *Conn) planLocked(op uint64, write bool) plan {
	var p plan
	for i, r := range c.sched.Rules {
		if !write && r.Action != ActionDelay && !(r.Action == ActionReset && r.Trigger == TriggerFlap) {
			continue
		}
		if !c.matchLocked(i, r, op) {
			continue
		}
		switch r.Action {
		case ActionReset:
			p.reset = true
		case ActionDrop:
			p.drop = true
		case ActionCorrupt:
			p.corrupt = true
			p.corruptAt = c.rng.Int()
		case ActionShort:
			p.short = true
		case ActionDelay:
			p.delay += r.Delay
		case ActionRate:
			p.rate = r.Rate
		}
	}
	return p
}

// paceLocked advances the bandwidth-cap horizon for n bytes at rate bps
// and returns how long the caller must stall; c.mu must be held.
func (c *Conn) paceLocked(n int, bps int64) time.Duration {
	now := c.opt.Now()
	if c.nextFree.Before(now) {
		c.nextFree = now
	}
	stall := c.nextFree.Sub(now)
	c.nextFree = c.nextFree.Add(time.Duration(float64(n) / float64(bps) * float64(time.Second)))
	return stall
}

// Write applies the schedule to one outbound frame.
func (c *Conn) Write(b []byte) (int, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, ErrInjectedReset
	}
	c.writes++
	p := c.planLocked(c.writes, true)
	var stall time.Duration
	if p.rate > 0 && !p.drop && !p.reset {
		stall = c.paceLocked(len(b), p.rate)
	}
	c.mu.Unlock()

	if p.delay > 0 {
		c.stats.Delays.Add(1)
		c.opt.Metrics.inc(c.opt.Metrics.delays())
		c.opt.Sleep(p.delay)
	}
	if stall > 0 {
		c.stats.RateStalls.Add(1)
		c.opt.Sleep(stall)
	}
	switch {
	case p.reset:
		// Mid-frame reset: half the frame reaches the wire, then the
		// connection dies — the peer sees a truncated frame, the classic
		// torn write of a crashing or NAT-timed-out device.
		c.stats.Resets.Add(1)
		c.opt.Metrics.inc(c.opt.Metrics.resets())
		n := 0
		if len(b) >= 2 {
			n, _ = c.nc.Write(b[:len(b)/2])
		}
		c.closeInjected()
		return n, ErrInjectedReset
	case p.drop:
		c.stats.Drops.Add(1)
		c.opt.Metrics.inc(c.opt.Metrics.drops())
		return len(b), nil
	case p.corrupt:
		c.stats.Corruptions.Add(1)
		c.opt.Metrics.inc(c.opt.Metrics.corruptions())
		mut := make([]byte, len(b))
		copy(mut, b)
		if len(mut) > 0 {
			mut[p.corruptAt%len(mut)] ^= 0xA5
		}
		return c.nc.Write(mut)
	case p.short:
		c.stats.ShortWrites.Add(1)
		c.opt.Metrics.inc(c.opt.Metrics.shortWrites())
		half := len(b) / 2
		if half == 0 {
			return c.nc.Write(b)
		}
		n1, err := c.nc.Write(b[:half])
		if err != nil {
			return n1, err
		}
		n2, err := c.nc.Write(b[half:])
		return n1 + n2, err
	}
	return c.nc.Write(b)
}

// Read applies the schedule's read-side faults (injected latency, flap
// resets) and delegates to the wrapped connection.
func (c *Conn) Read(b []byte) (int, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, ErrInjectedReset
	}
	c.reads++
	p := c.planLocked(c.reads, false)
	c.mu.Unlock()

	if p.delay > 0 {
		c.stats.Delays.Add(1)
		c.opt.Metrics.inc(c.opt.Metrics.delays())
		c.opt.Sleep(p.delay)
	}
	if p.reset {
		c.stats.Resets.Add(1)
		c.opt.Metrics.inc(c.opt.Metrics.resets())
		c.closeInjected()
		return 0, ErrInjectedReset
	}
	return c.nc.Read(b)
}

// closeInjected closes the wrapped connection as a fault (not a caller
// Close), marking the Conn dead for subsequent operations.
func (c *Conn) closeInjected() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.nc.Close()
}

// Close closes the wrapped connection.
func (c *Conn) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return c.nc.Close()
}

// LocalAddr delegates to the wrapped connection.
func (c *Conn) LocalAddr() net.Addr { return c.nc.LocalAddr() }

// RemoteAddr delegates to the wrapped connection.
func (c *Conn) RemoteAddr() net.Addr { return c.nc.RemoteAddr() }

// SetDeadline delegates to the wrapped connection.
func (c *Conn) SetDeadline(t time.Time) error { return c.nc.SetDeadline(t) }

// SetReadDeadline delegates to the wrapped connection.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.nc.SetReadDeadline(t) }

// SetWriteDeadline delegates to the wrapped connection.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.nc.SetWriteDeadline(t) }

// Metrics accessor helpers: keep the nil-checks in one place so the Conn
// can record unconditionally.
func (m *Metrics) inc(c *obs.Counter) {
	if m != nil {
		c.Inc()
	}
}

func (m *Metrics) resets() *obs.Counter {
	if m == nil {
		return nil
	}
	return m.Resets
}
func (m *Metrics) drops() *obs.Counter {
	if m == nil {
		return nil
	}
	return m.Drops
}
func (m *Metrics) corruptions() *obs.Counter {
	if m == nil {
		return nil
	}
	return m.Corruptions
}
func (m *Metrics) shortWrites() *obs.Counter {
	if m == nil {
		return nil
	}
	return m.ShortWrites
}
func (m *Metrics) delays() *obs.Counter {
	if m == nil {
		return nil
	}
	return m.Delays
}

// ListenerOptions parameterise a fault-injecting listener.
type ListenerOptions struct {
	// Schedule is applied to every accepted connection (each gets its
	// own counters and a per-connection seed derived from Options.Seed).
	Schedule *Schedule
	// AcceptFailEvery fails every Nth Accept with ErrInjectedAccept
	// (0 = never). The error is Temporary(), so a hardened accept loop
	// keeps serving.
	AcceptFailEvery int
	// Options seed/clock/metrics for the accepted connections.
	Options Options
}

// Listener wraps a net.Listener, failing a deterministic subset of
// accepts and wrapping every accepted connection with the schedule.
type Listener struct {
	ln net.Listener
	lo ListenerOptions

	mu      sync.Mutex
	accepts int
	conns   []*Conn
}

// WrapListener wraps ln.
func WrapListener(ln net.Listener, lo ListenerOptions) *Listener {
	lo.Options.defaults()
	return &Listener{ln: ln, lo: lo}
}

// Accept accepts the next connection, injecting scheduled accept
// failures and wrapping accepted connections.
func (l *Listener) Accept() (net.Conn, error) {
	l.mu.Lock()
	l.accepts++
	n := l.accepts
	l.mu.Unlock()
	if e := l.lo.AcceptFailEvery; e > 0 && n%e == 0 {
		l.lo.Options.Metrics.inc(l.lo.Options.Metrics.acceptFails())
		return nil, ErrInjectedAccept
	}
	nc, err := l.ln.Accept()
	if err != nil {
		return nil, err
	}
	opt := l.lo.Options
	opt.Seed += int64(n) // distinct fault stream per accepted conn
	fc := Wrap(nc, l.lo.Schedule, opt)
	l.mu.Lock()
	l.conns = append(l.conns, fc)
	l.mu.Unlock()
	return fc, nil
}

// Conns snapshots the accepted (wrapped) connections, for tests that
// aggregate injected-fault stats across a run.
func (l *Listener) Conns() []*Conn {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]*Conn(nil), l.conns...)
}

// Close closes the wrapped listener.
func (l *Listener) Close() error { return l.ln.Close() }

// Addr delegates to the wrapped listener.
func (l *Listener) Addr() net.Addr { return l.ln.Addr() }

func (m *Metrics) acceptFails() *obs.Counter {
	if m == nil {
		return nil
	}
	return m.AcceptFails
}

// IsInjected reports whether err was produced by the fault injector.
func IsInjected(err error) bool {
	return errors.Is(err, ErrInjectedReset) || errors.Is(err, ErrInjectedAccept)
}
