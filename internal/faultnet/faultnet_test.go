package faultnet

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// stubConn is a net.Conn that records writes and serves reads from a
// preset buffer — the deterministic substrate for write-path fault tests
// (no pipe synchronisation, no real clock).
type stubConn struct {
	mu     sync.Mutex
	wrote  [][]byte // one entry per underlying Write call
	rd     *bytes.Reader
	closed bool
}

func newStubConn(readData []byte) *stubConn {
	return &stubConn{rd: bytes.NewReader(readData)}
}

func (s *stubConn) Write(b []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, net.ErrClosed
	}
	s.wrote = append(s.wrote, append([]byte(nil), b...))
	return len(b), nil
}

func (s *stubConn) Read(b []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, net.ErrClosed
	}
	return s.rd.Read(b)
}

func (s *stubConn) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

func (s *stubConn) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *stubConn) writes() [][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([][]byte, len(s.wrote))
	for i, w := range s.wrote {
		out[i] = append([]byte(nil), w...)
	}
	return out
}

func (s *stubConn) LocalAddr() net.Addr              { return nil }
func (s *stubConn) RemoteAddr() net.Addr             { return nil }
func (s *stubConn) SetDeadline(time.Time) error      { return nil }
func (s *stubConn) SetReadDeadline(time.Time) error  { return nil }
func (s *stubConn) SetWriteDeadline(time.Time) error { return nil }

// fakeTime is a manually advanced clock plus a sleep recorder.
type fakeTime struct {
	mu    sync.Mutex
	now   time.Time
	slept []time.Duration
}

func newFakeTime() *fakeTime {
	return &fakeTime{now: time.Unix(1_700_000_000, 0)}
}

func (f *fakeTime) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeTime) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
}

// Sleep records the requested duration and advances the clock by it, so
// paced writes see time passing without any wall-clock dependency.
func (f *fakeTime) Sleep(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.slept = append(f.slept, d)
	f.now = f.now.Add(d)
}

func (f *fakeTime) sleeps() []time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]time.Duration(nil), f.slept...)
}

func wrapStub(t *testing.T, sched string, readData []byte) (*Conn, *stubConn, *fakeTime) {
	t.Helper()
	stub := newStubConn(readData)
	ft := newFakeTime()
	c := Wrap(stub, MustParseSchedule(sched), Options{Seed: 42, Now: ft.Now, Sleep: ft.Sleep})
	return c, stub, ft
}

func TestCleanPassthrough(t *testing.T) {
	c, stub, _ := wrapStub(t, "", []byte("pong"))
	if n, err := c.Write([]byte("ping")); n != 4 || err != nil {
		t.Fatalf("Write = (%d, %v)", n, err)
	}
	got := make([]byte, 4)
	if n, err := c.Read(got); n != 4 || err != nil || string(got) != "pong" {
		t.Fatalf("Read = (%d, %v, %q)", n, err, got)
	}
	if w := stub.writes(); len(w) != 1 || string(w[0]) != "ping" {
		t.Fatalf("underlying writes = %q", w)
	}
	if c.Stats().Snapshot().Total() != 0 {
		t.Fatalf("clean passthrough injected faults: %+v", c.Stats().Snapshot())
	}
}

func TestCorruptFlipsExactlyOneByte(t *testing.T) {
	c, stub, _ := wrapStub(t, "at=2:corrupt", nil)
	orig := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	buf := append([]byte(nil), orig...)
	for i := 0; i < 2; i++ {
		if _, err := c.Write(buf); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(buf, orig) {
		t.Fatalf("caller's buffer mutated: %v", buf)
	}
	w := stub.writes()
	if len(w) != 2 {
		t.Fatalf("%d underlying writes, want 2", len(w))
	}
	if !bytes.Equal(w[0], orig) {
		t.Fatalf("first frame corrupted: %v", w[0])
	}
	diff := 0
	for i := range orig {
		if w[1][i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("second frame differs in %d bytes, want exactly 1", diff)
	}
	if st := c.Stats().Snapshot(); st.Corruptions != 1 {
		t.Fatalf("corruptions = %d, want 1", st.Corruptions)
	}
}

func TestDropSwallowsSilently(t *testing.T) {
	c, stub, _ := wrapStub(t, "at=1:drop", nil)
	if n, err := c.Write([]byte("gone")); n != 4 || err != nil {
		t.Fatalf("dropped write reported (%d, %v), want silent success", n, err)
	}
	if _, err := c.Write([]byte("kept")); err != nil {
		t.Fatal(err)
	}
	w := stub.writes()
	if len(w) != 1 || string(w[0]) != "kept" {
		t.Fatalf("underlying writes = %q, want only the second frame", w)
	}
	if st := c.Stats().Snapshot(); st.Drops != 1 {
		t.Fatalf("drops = %d, want 1", st.Drops)
	}
}

func TestResetTearsMidFrame(t *testing.T) {
	c, stub, _ := wrapStub(t, "at=2:reset", nil)
	if _, err := c.Write([]byte("first-frame")); err != nil {
		t.Fatal(err)
	}
	n, err := c.Write([]byte("second-frame"))
	if !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("reset write returned %v, want ErrInjectedReset", err)
	}
	if n != len("second-frame")/2 {
		t.Fatalf("reset wrote %d bytes, want half (%d)", n, len("second-frame")/2)
	}
	w := stub.writes()
	if len(w) != 2 || string(w[1]) != "second"[:len("second-frame")/2] {
		t.Fatalf("wire saw %q, want half of the second frame", w)
	}
	if !stub.isClosed() {
		t.Fatal("underlying conn not closed by the reset")
	}
	if _, err := c.Write([]byte("after")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("write after reset returned %v, want ErrInjectedReset", err)
	}
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("read after reset returned %v, want ErrInjectedReset", err)
	}
	if !IsInjected(err) {
		t.Fatal("IsInjected misses an injected reset")
	}
}

func TestShortWriteDeliversWholeFrameFragmented(t *testing.T) {
	c, stub, _ := wrapStub(t, "all:short", nil)
	frame := []byte("0123456789")
	if n, err := c.Write(frame); n != len(frame) || err != nil {
		t.Fatalf("short write = (%d, %v)", n, err)
	}
	w := stub.writes()
	if len(w) != 2 {
		t.Fatalf("%d underlying writes, want 2 fragments", len(w))
	}
	if got := string(w[0]) + string(w[1]); got != string(frame) {
		t.Fatalf("fragments reassemble to %q, want %q", got, frame)
	}
}

func TestDelayUsesInjectableSleep(t *testing.T) {
	c, _, ft := wrapStub(t, "all:delay=2ms", nil)
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	sleeps := ft.sleeps()
	if len(sleeps) != 1 || sleeps[0] != 2*time.Millisecond {
		t.Fatalf("sleeps = %v, want [2ms]", sleeps)
	}
	if st := c.Stats().Snapshot(); st.Delays != 1 {
		t.Fatalf("delays = %d, want 1", st.Delays)
	}
}

func TestBandwidthCapPacesWrites(t *testing.T) {
	// 1000 bytes/s: a 500-byte frame books 500 ms of wire time. The first
	// write goes immediately; the second must stall until the horizon.
	c, _, ft := wrapStub(t, "all:rate=1000", nil)
	frame := make([]byte, 500)
	if _, err := c.Write(frame); err != nil {
		t.Fatal(err)
	}
	if sleeps := ft.sleeps(); len(sleeps) != 0 {
		t.Fatalf("first write stalled: %v", sleeps)
	}
	if _, err := c.Write(frame); err != nil {
		t.Fatal(err)
	}
	sleeps := ft.sleeps()
	if len(sleeps) != 1 || sleeps[0] != 500*time.Millisecond {
		t.Fatalf("second write sleeps = %v, want [500ms]", sleeps)
	}
	// After the stall the horizon has passed; a write following idle time
	// pays nothing.
	ft.Advance(2 * time.Second)
	if _, err := c.Write(frame); err != nil {
		t.Fatal(err)
	}
	if sleeps := ft.sleeps(); len(sleeps) != 1 {
		t.Fatalf("idle-period write stalled: %v", sleeps)
	}
}

func TestFlapFiresOnClock(t *testing.T) {
	c, stub, ft := wrapStub(t, "flap=1s:reset", nil)
	if _, err := c.Write([]byte("ok")); err != nil {
		t.Fatalf("write before the flap period failed: %v", err)
	}
	ft.Advance(time.Second)
	if _, err := c.Write([]byte("boom")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("write after the flap period returned %v, want reset", err)
	}
	if !stub.isClosed() {
		t.Fatal("flap did not close the underlying conn")
	}
}

func TestFlapFiresOnIdleRead(t *testing.T) {
	c, _, ft := wrapStub(t, "flap=1s:reset", []byte("data"))
	buf := make([]byte, 4)
	if _, err := c.Read(buf); err != nil {
		t.Fatalf("read before the flap period failed: %v", err)
	}
	ft.Advance(time.Second)
	if _, err := c.Read(buf); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("read after the flap period returned %v, want reset", err)
	}
}

func TestPctDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []int {
		stub := newStubConn(nil)
		ft := newFakeTime()
		c := Wrap(stub, MustParseSchedule("pct=30:drop"), Options{Seed: seed, Now: ft.Now, Sleep: ft.Sleep})
		var dropped []int
		for i := 0; i < 64; i++ {
			before := c.Stats().Snapshot().Drops
			if _, err := c.Write([]byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
			if c.Stats().Snapshot().Drops > before {
				dropped = append(dropped, i)
			}
		}
		return dropped
	}
	a, b := run(7), run(7)
	if len(a) == 0 || len(a) == 64 {
		t.Fatalf("pct=30 dropped %d/64 frames — trigger looks degenerate", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
	if c := run(8); len(c) == len(a) && func() bool {
		for i := range a {
			if a[i] != c[i] {
				return false
			}
		}
		return true
	}() {
		t.Fatalf("different seeds produced identical fault streams: %v", a)
	}
}

func TestListenerInjectsAcceptFailures(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	fl := WrapListener(ln, ListenerOptions{
		Schedule:        MustParseSchedule("all:delay=1ms"),
		AcceptFailEvery: 2,
	})

	dial := func() net.Conn {
		t.Helper()
		nc, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { nc.Close() })
		return nc
	}

	dial()
	c1, err := fl.Accept()
	if err != nil {
		t.Fatalf("first accept: %v", err)
	}
	defer c1.Close()
	if _, ok := c1.(*Conn); !ok {
		t.Fatalf("accepted conn is %T, want *faultnet.Conn", c1)
	}

	// Second accept fails by schedule — without consuming a connection —
	// and the error is Temporary, the retryable shape.
	if _, err := fl.Accept(); !errors.Is(err, ErrInjectedAccept) {
		t.Fatalf("second accept returned %v, want ErrInjectedAccept", err)
	}
	var ne net.Error
	if !errors.As(error(ErrInjectedAccept), &ne) || !ne.Temporary() || ne.Timeout() { //nolint:staticcheck // Temporary is the retry contract here
		t.Fatal("ErrInjectedAccept is not a temporary net.Error")
	}

	dial()
	c3, err := fl.Accept()
	if err != nil {
		t.Fatalf("third accept: %v", err)
	}
	defer c3.Close()
	if got := len(fl.Conns()); got != 2 {
		t.Fatalf("listener tracked %d conns, want 2", got)
	}
}
