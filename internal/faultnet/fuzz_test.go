package faultnet

import "testing"

// FuzzParseSchedule drives the fault-schedule parser with arbitrary
// input. The property under test: any schedule the parser accepts must
// render (String) to a canonical form that re-parses to an identical
// schedule — a fixed point — and parsing must never panic on garbage.
func FuzzParseSchedule(f *testing.F) {
	for _, seed := range []string{
		"",
		"after=80:reset",
		"flap=500ms:reset",
		"every=7:corrupt;pct=5:drop",
		"all:delay=2ms;all:rate=4096",
		"at=3:short",
		" after=1 : reset ; ",
		"pct=100:drop",
		"flap=1h2m3s:delay=4us",
		"bogus",
		"after=80",
		"a=:b=",
		";;;",
		"all:rate=9223372036854775807",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		s1, err := ParseSchedule(in)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		canon := s1.String()
		s2, err := ParseSchedule(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted input %q failed to re-parse: %v", canon, in, err)
		}
		if got := s2.String(); got != canon {
			t.Fatalf("canonical form is not a fixed point: %q -> %q (input %q)", canon, got, in)
		}
		if len(s1.Rules) != len(s2.Rules) {
			t.Fatalf("round trip changed rule count for %q: %d -> %d", in, len(s1.Rules), len(s2.Rules))
		}
		for i := range s1.Rules {
			if s1.Rules[i] != s2.Rules[i] {
				t.Fatalf("rule %d changed across round trip for %q: %+v -> %+v", i, in, s1.Rules[i], s2.Rules[i])
			}
		}
	})
}
