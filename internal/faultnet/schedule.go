// Package faultnet wraps net.Conn and net.Listener with deterministic,
// seedable fault injection: injected latency, bandwidth caps, split
// (partial) writes, byte corruption, silent drops, mid-frame resets and
// accept failures. It is the adversarial-link counterpart to the protocol
// adversaries in internal/adversary — the paper's Adv_ext controls frame
// contents, but a production fleet also faces the network itself, and the
// stack has to keep the prover's primary task running through both.
//
// Faults are driven by a scriptable Schedule (a tiny DSL, see
// ParseSchedule) evaluated against per-connection operation counters, a
// seeded RNG and an injectable clock — the same pattern as the server's
// token bucket — so a chaos run with a fixed seed replays byte-for-byte.
package faultnet

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// TriggerKind selects when a rule fires, in units of write operations on
// the wrapped connection (one transport frame is one write) or wall time.
type TriggerKind int

const (
	// TriggerAll fires on every operation.
	TriggerAll TriggerKind = iota
	// TriggerAt fires only on the N'th operation (1-based).
	TriggerAt
	// TriggerAfter fires on every operation from the N'th onward.
	TriggerAfter
	// TriggerEvery fires on operations N, 2N, 3N, ...
	TriggerEvery
	// TriggerPct fires on each operation with probability N percent,
	// drawn from the connection's seeded RNG (deterministic per seed).
	TriggerPct
	// TriggerFlap fires whenever Period has elapsed since it last fired
	// (first firing one Period after the connection is wrapped). Unlike
	// the count triggers it is also evaluated on the read path, so an
	// idle-but-open connection still flaps.
	TriggerFlap
)

// ActionKind selects what a firing rule does to the operation.
type ActionKind int

const (
	// ActionReset tears the connection down mid-frame: half the payload
	// is written, then the underlying connection is closed. The peer
	// sees a truncated frame; the local caller gets ErrInjectedReset.
	ActionReset ActionKind = iota
	// ActionDrop swallows the write silently: the caller sees success,
	// the peer sees nothing.
	ActionDrop
	// ActionCorrupt flips one byte of the payload (position drawn from
	// the seeded RNG). The caller's buffer is never mutated.
	ActionCorrupt
	// ActionShort splits the write into two separate underlying writes —
	// the frame still arrives whole, but fragmented on the wire.
	ActionShort
	// ActionDelay sleeps Delay before the operation (injected latency;
	// applies to reads and writes).
	ActionDelay
	// ActionRate caps the connection's write bandwidth at Rate bytes/s.
	ActionRate
)

// Rule is one fault-injection rule: a trigger and an action.
type Rule struct {
	Trigger TriggerKind
	N       uint64        // TriggerAt/After/Every: op index; TriggerPct: percent
	Period  time.Duration // TriggerFlap

	Action ActionKind
	Delay  time.Duration // ActionDelay
	Rate   int64         // ActionRate, bytes per second
}

// Schedule is an immutable parsed fault schedule. Per-connection state
// (operation counters, flap timers, RNG) lives on the Conn, so one
// Schedule may drive a whole fleet of connections.
type Schedule struct {
	Rules []Rule
}

// ParseSchedule parses the fault-schedule DSL:
//
//	schedule := rule (';' rule)*
//	rule     := trigger ':' action
//	trigger  := 'all' | 'at=N' | 'after=N' | 'every=N' | 'pct=P' | 'flap=DUR'
//	action   := 'reset' | 'drop' | 'corrupt' | 'short' | 'delay=DUR' | 'rate=BPS'
//
// Examples: "after=80:reset" (mid-frame reset at the 80th frame),
// "flap=500ms:reset" (kill the link every 500 ms), "every=7:corrupt",
// "pct=5:drop", "all:delay=2ms;all:rate=4096" (a 4 KiB/s link with 2 ms
// of latency each way). Whitespace around rules and tokens is ignored.
// An empty or all-whitespace schedule is valid and injects nothing.
func ParseSchedule(s string) (*Schedule, error) {
	sched := &Schedule{}
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		rule, err := parseRule(part)
		if err != nil {
			return nil, err
		}
		sched.Rules = append(sched.Rules, rule)
	}
	return sched, nil
}

// MustParseSchedule is ParseSchedule for compile-time-constant schedules
// in tests and tools; it panics on a malformed schedule.
func MustParseSchedule(s string) *Schedule {
	sched, err := ParseSchedule(s)
	if err != nil {
		panic(err)
	}
	return sched
}

func parseRule(s string) (Rule, error) {
	var r Rule
	trig, act, ok := strings.Cut(s, ":")
	if !ok {
		return r, fmt.Errorf("faultnet: rule %q: want trigger:action", s)
	}
	trig, act = strings.TrimSpace(trig), strings.TrimSpace(act)

	key, val, hasVal := strings.Cut(trig, "=")
	key, val = strings.TrimSpace(key), strings.TrimSpace(val)
	switch key {
	case "all":
		if hasVal {
			return r, fmt.Errorf("faultnet: rule %q: trigger 'all' takes no value", s)
		}
		r.Trigger = TriggerAll
	case "at", "after", "every", "pct":
		if !hasVal {
			return r, fmt.Errorf("faultnet: rule %q: trigger %q needs a value", s, key)
		}
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return r, fmt.Errorf("faultnet: rule %q: trigger value %q: %v", s, val, err)
		}
		switch key {
		case "at":
			r.Trigger = TriggerAt
		case "after":
			r.Trigger = TriggerAfter
		case "every":
			r.Trigger = TriggerEvery
		case "pct":
			r.Trigger = TriggerPct
			if n > 100 {
				return r, fmt.Errorf("faultnet: rule %q: pct %d out of range (0..100)", s, n)
			}
		}
		if r.Trigger != TriggerPct && n == 0 {
			return r, fmt.Errorf("faultnet: rule %q: op index must be >= 1", s)
		}
		r.N = n
	case "flap":
		if !hasVal {
			return r, fmt.Errorf("faultnet: rule %q: trigger 'flap' needs a period", s)
		}
		d, err := time.ParseDuration(val)
		if err != nil {
			return r, fmt.Errorf("faultnet: rule %q: flap period %q: %v", s, val, err)
		}
		if d <= 0 {
			return r, fmt.Errorf("faultnet: rule %q: flap period must be positive", s)
		}
		r.Trigger = TriggerFlap
		r.Period = d
	default:
		return r, fmt.Errorf("faultnet: rule %q: unknown trigger %q", s, key)
	}

	key, val, hasVal = strings.Cut(act, "=")
	key, val = strings.TrimSpace(key), strings.TrimSpace(val)
	switch key {
	case "reset", "drop", "corrupt", "short":
		if hasVal {
			return r, fmt.Errorf("faultnet: rule %q: action %q takes no value", s, key)
		}
		switch key {
		case "reset":
			r.Action = ActionReset
		case "drop":
			r.Action = ActionDrop
		case "corrupt":
			r.Action = ActionCorrupt
		case "short":
			r.Action = ActionShort
		}
	case "delay":
		if !hasVal {
			return r, fmt.Errorf("faultnet: rule %q: action 'delay' needs a duration", s)
		}
		d, err := time.ParseDuration(val)
		if err != nil {
			return r, fmt.Errorf("faultnet: rule %q: delay %q: %v", s, val, err)
		}
		if d <= 0 {
			return r, fmt.Errorf("faultnet: rule %q: delay must be positive", s)
		}
		r.Action = ActionDelay
		r.Delay = d
	case "rate":
		if !hasVal {
			return r, fmt.Errorf("faultnet: rule %q: action 'rate' needs bytes/s", s)
		}
		bps, err := strconv.ParseInt(val, 10, 64)
		if err != nil || bps <= 0 {
			return r, fmt.Errorf("faultnet: rule %q: rate %q: want a positive bytes/s integer", s, val)
		}
		r.Action = ActionRate
		r.Rate = bps
	default:
		return r, fmt.Errorf("faultnet: rule %q: unknown action %q", s, key)
	}
	return r, nil
}

// String renders the schedule in canonical DSL form; the output re-parses
// to an identical schedule (pinned by the round-trip fuzz target).
func (s *Schedule) String() string {
	if s == nil {
		return ""
	}
	parts := make([]string, len(s.Rules))
	for i, r := range s.Rules {
		parts[i] = r.String()
	}
	return strings.Join(parts, ";")
}

// String renders one rule in canonical DSL form.
func (r Rule) String() string {
	var sb strings.Builder
	switch r.Trigger {
	case TriggerAll:
		sb.WriteString("all")
	case TriggerAt:
		sb.WriteString("at=")
		sb.WriteString(strconv.FormatUint(r.N, 10))
	case TriggerAfter:
		sb.WriteString("after=")
		sb.WriteString(strconv.FormatUint(r.N, 10))
	case TriggerEvery:
		sb.WriteString("every=")
		sb.WriteString(strconv.FormatUint(r.N, 10))
	case TriggerPct:
		sb.WriteString("pct=")
		sb.WriteString(strconv.FormatUint(r.N, 10))
	case TriggerFlap:
		sb.WriteString("flap=")
		sb.WriteString(r.Period.String())
	}
	sb.WriteByte(':')
	switch r.Action {
	case ActionReset:
		sb.WriteString("reset")
	case ActionDrop:
		sb.WriteString("drop")
	case ActionCorrupt:
		sb.WriteString("corrupt")
	case ActionShort:
		sb.WriteString("short")
	case ActionDelay:
		sb.WriteString("delay=")
		sb.WriteString(r.Delay.String())
	case ActionRate:
		sb.WriteString("rate=")
		sb.WriteString(strconv.FormatInt(r.Rate, 10))
	}
	return sb.String()
}
