package faultnet

import (
	"strings"
	"testing"
	"time"
)

func TestParseScheduleValid(t *testing.T) {
	cases := []struct {
		in   string
		want string // canonical String() form
		n    int
	}{
		{"", "", 0},
		{"   ", "", 0},
		{"after=80:reset", "after=80:reset", 1},
		{"flap=500ms:reset", "flap=500ms:reset", 1},
		{"every=7:corrupt", "every=7:corrupt", 1},
		{"pct=5:drop", "pct=5:drop", 1},
		{"pct=0:drop", "pct=0:drop", 1},
		{"at=3:short", "at=3:short", 1},
		{"all:delay=2ms", "all:delay=2ms", 1},
		{"all:rate=4096", "all:rate=4096", 1},
		{" after=80 : reset ; every=7:corrupt ", "after=80:reset;every=7:corrupt", 2},
		{"all:delay=0.5s", "all:delay=500ms", 1}, // canonicalised duration
		{";;after=1:drop;;", "after=1:drop", 1},
	}
	for _, tc := range cases {
		s, err := ParseSchedule(tc.in)
		if err != nil {
			t.Errorf("ParseSchedule(%q): %v", tc.in, err)
			continue
		}
		if len(s.Rules) != tc.n {
			t.Errorf("ParseSchedule(%q): %d rules, want %d", tc.in, len(s.Rules), tc.n)
		}
		if got := s.String(); got != tc.want {
			t.Errorf("ParseSchedule(%q).String() = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestParseScheduleInvalid(t *testing.T) {
	cases := []string{
		"reset",                         // no trigger
		"after=80",                      // no action
		"after:reset",                   // missing trigger value
		"after=0:reset",                 // op index below 1
		"after=-1:reset",                // negative
		"pct=101:drop",                  // out of range
		"flap=0s:reset",                 // non-positive period
		"flap=-1s:reset",                // negative period
		"flap=abc:reset",                // unparseable duration
		"never=3:reset",                 // unknown trigger
		"all:explode",                   // unknown action
		"all=1:reset",                   // all takes no value
		"all:reset=1",                   // reset takes no value
		"all:delay",                     // delay needs a duration
		"all:delay=-2ms",                // negative delay
		"all:rate=0",                    // non-positive rate
		"all:rate=fast",                 // unparseable rate
		"every=2:rate=-4096",            // negative rate
		"at=18446744073709551616:reset", // uint64 overflow
	}
	for _, in := range cases {
		if _, err := ParseSchedule(in); err == nil {
			t.Errorf("ParseSchedule(%q) succeeded, want error", in)
		}
	}
}

func TestScheduleRoundTrip(t *testing.T) {
	in := "after=80:reset;flap=1.5s:reset;every=7:corrupt;pct=10:drop;at=3:short;all:delay=2ms;all:rate=4096"
	s1, err := ParseSchedule(in)
	if err != nil {
		t.Fatal(err)
	}
	canon := s1.String()
	s2, err := ParseSchedule(canon)
	if err != nil {
		t.Fatalf("canonical form %q failed to re-parse: %v", canon, err)
	}
	if s2.String() != canon {
		t.Fatalf("canonical form is not a fixed point: %q -> %q", canon, s2.String())
	}
	if len(s2.Rules) != len(s1.Rules) {
		t.Fatalf("round trip changed rule count: %d -> %d", len(s1.Rules), len(s2.Rules))
	}
	for i := range s1.Rules {
		if s1.Rules[i] != s2.Rules[i] {
			t.Fatalf("rule %d changed across round trip: %+v -> %+v", i, s1.Rules[i], s2.Rules[i])
		}
	}
}

func TestScheduleFieldValues(t *testing.T) {
	s := MustParseSchedule("flap=250ms:delay=3ms;every=4:rate=1024")
	if len(s.Rules) != 2 {
		t.Fatalf("%d rules, want 2", len(s.Rules))
	}
	r0, r1 := s.Rules[0], s.Rules[1]
	if r0.Trigger != TriggerFlap || r0.Period != 250*time.Millisecond || r0.Action != ActionDelay || r0.Delay != 3*time.Millisecond {
		t.Fatalf("rule 0 = %+v", r0)
	}
	if r1.Trigger != TriggerEvery || r1.N != 4 || r1.Action != ActionRate || r1.Rate != 1024 {
		t.Fatalf("rule 1 = %+v", r1)
	}
}

func TestMustParseSchedulePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseSchedule accepted garbage")
		}
	}()
	MustParseSchedule("bogus")
}

func TestNilScheduleString(t *testing.T) {
	var s *Schedule
	if got := s.String(); got != "" {
		t.Fatalf("nil schedule renders %q, want empty", got)
	}
	if !strings.Contains(MustParseSchedule("all:drop").String(), "drop") {
		t.Fatal("canonical form lost the action")
	}
}
