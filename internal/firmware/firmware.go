// Package firmware is a small library of SP16 assembly routines — the
// prover's application-side toolbox, written as real machine code and
// validated against Go reference implementations. Beyond their direct use
// in examples and experiments, these routines are the evidence that the
// SP16 ISA and assembler are complete enough for genuine firmware, not
// just toy straight-line demos.
//
// Calling convention: arguments in r1, r2, r3; result in r2; r4–r9 are
// scratch; routines end in HALT (they run as top-level jobs, not calls).
package firmware

import (
	"fmt"

	"proverattest/internal/isa"
	"proverattest/internal/mcu"
	"proverattest/internal/sim"
)

// Memcpy copies r3 bytes from address r2 to address r1.
const Memcpy = `
	; r1 = dst, r2 = src, r3 = len
	beq  r3, r0, done
loop:
	lb   r4, 0(r2)
	sb   r4, 0(r1)
	addi r1, r1, 1
	addi r2, r2, 1
	addi r3, r3, -1
	bne  r3, r0, loop
done:
	halt
`

// Memset stores the low byte of r2 into r3 bytes starting at r1.
const Memset = `
	; r1 = dst, r2 = value, r3 = len
	beq  r3, r0, done
loop:
	sb   r2, 0(r1)
	addi r1, r1, 1
	addi r3, r3, -1
	bne  r3, r0, loop
done:
	halt
`

// Fletcher16 computes the Fletcher-16 checksum of r3 bytes at r1,
// returning (sum2 << 8 | sum1) in r2. Modulo 255 is computed by repeated
// subtraction — SP16 has no divide, like most low-end MCUs.
const Fletcher16 = `
	; r1 = data, r3 = len → r2 = checksum
	li   r4, 0          ; sum1
	li   r5, 0          ; sum2
	li   r6, 255
	beq  r3, r0, fin
loop:
	lb   r7, 0(r1)
	add  r4, r4, r7
mod1:
	bltu r4, r6, m1ok   ; while sum1 >= 255: sum1 -= 255
	sub  r4, r4, r6
	j    mod1
m1ok:
	add  r5, r5, r4
mod2:
	bltu r5, r6, m2ok
	sub  r5, r5, r6
	j    mod2
m2ok:
	addi r1, r1, 1
	addi r3, r3, -1
	bne  r3, r0, loop
fin:
	slli r2, r5, 8
	or   r2, r2, r4
	halt
`

// Strlen counts bytes at r1 up to the first zero, result in r2.
const Strlen = `
	; r1 = str → r2 = length
	li   r2, 0
loop:
	lb   r4, 0(r1)
	beq  r4, r0, done
	addi r1, r1, 1
	addi r2, r2, 1
	j    loop
done:
	halt
`

// Sum32 adds r3 little-endian words starting at r1, result in r2 —
// the classic firmware image checksum.
const Sum32 = `
	; r1 = data, r3 = word count → r2 = sum
	li   r2, 0
	beq  r3, r0, done
loop:
	lw   r4, 0(r1)
	add  r2, r2, r4
	addi r1, r1, 4
	addi r3, r3, -1
	bne  r3, r0, loop
done:
	halt
`

// CRC32 computes the bit-reflected IEEE CRC-32 of r3 bytes at r1,
// result in r2 — byte-at-a-time with the 8-step conditional-xor inner
// loop, exactly as table-less embedded implementations do it.
const CRC32 = `
	; r1 = data, r3 = len → r2 = crc
	li   r2, 0xFFFFFFFF
	li   r5, 0xEDB88320   ; reflected IEEE polynomial
	li   r6, 1
	beq  r3, r0, fin
byteloop:
	lb   r4, 0(r1)
	xor  r2, r2, r4
	li   r7, 8
bitloop:
	and  r8, r2, r6       ; low bit
	srli r2, r2, 1
	beq  r8, r0, nopoly
	xor  r2, r2, r5
nopoly:
	addi r7, r7, -1
	bne  r7, r0, bitloop
	addi r1, r1, 1
	addi r3, r3, -1
	bne  r3, r0, byteloop
fin:
	xori r2, r2, 0xFFFF   ; final inversion, low half...
	li   r9, 0xFFFF0000
	xor  r2, r2, r9       ; ...and high half (xori imm16 is zero-extended)
	halt
`

// CodeRegion is where routines are loaded by Run.
var CodeRegion = mcu.Region{Start: mcu.FlashRegion.Start + 0x50000, Size: 0x2000}

// Run assembles routine src into CodeRegion, seeds r1–r3 with args, and
// executes it to completion on the MCU, returning the final ISA state.
// The register seeding is modeled as part of the dispatch cost.
func Run(m *mcu.MCU, k *sim.Kernel, name, src string, args ...uint32) (isa.Result, error) {
	if len(args) > 3 {
		return isa.Result{}, fmt.Errorf("firmware: at most 3 arguments, got %d", len(args))
	}
	if _, err := isa.LoadProgram(m, CodeRegion.Start, src); err != nil {
		return isa.Result{}, fmt.Errorf("firmware: assembling %s: %w", name, err)
	}
	task, ok := m.TaskByName("firmware")
	if !ok {
		task = m.RegisterTask(&mcu.Task{Name: "firmware", Code: CodeRegion})
	}
	var res isa.Result
	done := false
	m.Submit(task, func(e *mcu.Exec) {
		core := &isa.Core{}
		for i, a := range args {
			core.R[i+1] = a
		}
		e.Tick(8) // dispatch: argument registers loaded by the caller
		res = core.Run(e, CodeRegion.Start, 10_000_000)
	}, func(*mcu.Exec) { done = true })
	deadline := k.Now() + sim.Hour
	for !done && k.Now() < deadline {
		if !k.Step() {
			break
		}
	}
	if !done {
		return res, fmt.Errorf("firmware: %s did not complete", name)
	}
	return res, nil
}

// Fletcher16Ref is the Go reference implementation used by the tests.
func Fletcher16Ref(data []byte) uint16 {
	var sum1, sum2 uint32
	for _, b := range data {
		sum1 = (sum1 + uint32(b)) % 255
		sum2 = (sum2 + sum1) % 255
	}
	return uint16(sum2<<8 | sum1)
}
