package firmware

import (
	"bytes"
	"hash/crc32"
	"testing"
	"testing/quick"

	"proverattest/internal/isa"
	"proverattest/internal/mcu"
	"proverattest/internal/sim"
)

func freshMCU() (*mcu.MCU, *sim.Kernel) {
	k := sim.NewKernel()
	return mcu.New(k, mcu.Config{MPURules: 4}), k
}

func mustRun(t *testing.T, m *mcu.MCU, k *sim.Kernel, name, src string, args ...uint32) isa.Result {
	t.Helper()
	res, err := Run(m, k, name, src, args...)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != isa.StopHalt {
		t.Fatalf("%s stopped with %v (fault %v) at pc %#x", name, res.Reason, res.Fault, uint32(res.PC))
	}
	return res
}

func TestMemcpy(t *testing.T) {
	m, k := freshMCU()
	src := mcu.RAMRegion.Start
	dst := mcu.RAMRegion.Start + 0x1000
	data := []byte("the quick brown fox jumps over the lazy dog")
	m.Space.DirectWrite(src, data)

	mustRun(t, m, k, "memcpy", Memcpy, uint32(dst), uint32(src), uint32(len(data)))
	if got := m.Space.DirectRead(dst, uint32(len(data))); !bytes.Equal(got, data) {
		t.Fatalf("memcpy produced %q", got)
	}
}

func TestMemcpyZeroLength(t *testing.T) {
	m, k := freshMCU()
	res := mustRun(t, m, k, "memcpy", Memcpy, uint32(mcu.RAMRegion.Start), uint32(mcu.RAMRegion.Start+64), 0)
	if res.Instructions > 3 {
		t.Fatalf("zero-length memcpy executed %d instructions", res.Instructions)
	}
}

func TestMemset(t *testing.T) {
	m, k := freshMCU()
	dst := mcu.RAMRegion.Start + 0x2000
	mustRun(t, m, k, "memset", Memset, uint32(dst), 0xAB, 100)
	got := m.Space.DirectRead(dst, 100)
	if !bytes.Equal(got, bytes.Repeat([]byte{0xAB}, 100)) {
		t.Fatalf("memset produced %x...", got[:8])
	}
	// The byte after the range is untouched.
	if m.Space.DirectRead(dst+100, 1)[0] == 0xAB {
		t.Fatal("memset overran its range")
	}
}

func TestFletcher16MatchesReference(t *testing.T) {
	m, k := freshMCU()
	data := []byte("abcdefgh")
	addr := mcu.RAMRegion.Start + 0x3000
	m.Space.DirectWrite(addr, data)
	res := mustRun(t, m, k, "fletcher16", Fletcher16, uint32(addr), 0, uint32(len(data)))
	want := Fletcher16Ref(data)
	if uint16(res.Regs[2]) != want {
		t.Fatalf("fletcher16 = %#x, want %#x", res.Regs[2], want)
	}
}

func TestFletcher16Quick(t *testing.T) {
	m, k := freshMCU()
	addr := mcu.RAMRegion.Start + 0x4000
	f := func(data []byte) bool {
		if len(data) > 256 {
			data = data[:256]
		}
		if len(data) == 0 {
			return true
		}
		m.Space.DirectWrite(addr, data)
		res, err := Run(m, k, "fletcher16", Fletcher16, uint32(addr), 0, uint32(len(data)))
		if err != nil || res.Reason != isa.StopHalt {
			return false
		}
		return uint16(res.Regs[2]) == Fletcher16Ref(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestStrlen(t *testing.T) {
	m, k := freshMCU()
	addr := mcu.RAMRegion.Start + 0x5000
	m.Space.DirectWrite(addr, []byte("hello, prover\x00garbage"))
	res := mustRun(t, m, k, "strlen", Strlen, uint32(addr))
	if res.Regs[2] != 13 {
		t.Fatalf("strlen = %d, want 13", res.Regs[2])
	}
	// Empty string.
	m.Space.DirectWrite(addr, []byte{0})
	res = mustRun(t, m, k, "strlen", Strlen, uint32(addr))
	if res.Regs[2] != 0 {
		t.Fatalf("strlen(\"\") = %d", res.Regs[2])
	}
}

func TestSum32(t *testing.T) {
	m, k := freshMCU()
	addr := mcu.RAMRegion.Start + 0x6000
	words := []uint32{0x11111111, 0x22222222, 0xF0000001, 0x10000001}
	var want uint32
	for i, w := range words {
		m.Space.DirectStore32(addr+mcu.Addr(4*i), w)
		want += w
	}
	res := mustRun(t, m, k, "sum32", Sum32, uint32(addr), 0, uint32(len(words)))
	if res.Regs[2] != want {
		t.Fatalf("sum32 = %#x, want %#x (wraparound arithmetic)", res.Regs[2], want)
	}
}

func TestCRC32MatchesStdlib(t *testing.T) {
	m, k := freshMCU()
	addr := mcu.RAMRegion.Start + 0x8000
	data := []byte("123456789") // the classic CRC check string → 0xCBF43926
	m.Space.DirectWrite(addr, data)
	res := mustRun(t, m, k, "crc32", CRC32, uint32(addr), 0, uint32(len(data)))
	if res.Regs[2] != 0xCBF43926 {
		t.Fatalf("crc32(\"123456789\") = %#x, want 0xCBF43926", res.Regs[2])
	}
}

func TestCRC32Quick(t *testing.T) {
	m, k := freshMCU()
	addr := mcu.RAMRegion.Start + 0x9000
	f := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 64 {
			data = data[:64]
		}
		m.Space.DirectWrite(addr, data)
		res, err := Run(m, k, "crc32", CRC32, uint32(addr), 0, uint32(len(data)))
		if err != nil || res.Reason != isa.StopHalt {
			return false
		}
		return res.Regs[2] == crc32.ChecksumIEEE(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsTooManyArgs(t *testing.T) {
	m, k := freshMCU()
	if _, err := Run(m, k, "x", Memset, 1, 2, 3, 4); err == nil {
		t.Fatal("four arguments accepted")
	}
}

func TestRoutinesCostRealisticCycles(t *testing.T) {
	// A 100-byte memcpy is ~600 instructions of byte loop; at 24 MHz that
	// is tens of microseconds — the simulator must charge accordingly.
	m, k := freshMCU()
	res := mustRun(t, m, k, "memcpy", Memcpy,
		uint32(mcu.RAMRegion.Start+0x7000), uint32(mcu.RAMRegion.Start), 100)
	if res.Instructions < 500 || res.Instructions > 700 {
		t.Fatalf("100-byte memcpy executed %d instructions", res.Instructions)
	}
	us := float64(res.Cycles) / 24.0
	if us < 20 || us > 80 {
		t.Fatalf("100-byte memcpy cost %.1f µs, want tens of µs", us)
	}
}
