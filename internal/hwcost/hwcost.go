// Package hwcost reproduces the paper's hardware area model: Table 3 (cost
// per component in registers and look-up tables on the Siskiyou Peak FPGA
// prototype) and the §6.3 overhead arithmetic comparing each clock design
// against a baseline attestation-capable system. The model is additive, as
// in the paper: core + EA-MPU base + per-rule cost + clock flip-flops.
package hwcost

import "fmt"

// Cost is an FPGA area figure.
type Cost struct {
	Registers int
	LUTs      int
}

// Add returns the component-wise sum.
func (c Cost) Add(o Cost) Cost {
	return Cost{Registers: c.Registers + o.Registers, LUTs: c.LUTs + o.LUTs}
}

// Scale multiplies both figures by n.
func (c Cost) Scale(n int) Cost {
	return Cost{Registers: c.Registers * n, LUTs: c.LUTs * n}
}

func (c Cost) String() string {
	return fmt.Sprintf("%d registers / %d LUTs", c.Registers, c.LUTs)
}

// Table 3 constants.
var (
	// Core is the Siskiyou Peak processor itself.
	Core = Cost{Registers: 5528, LUTs: 14361}
	// MPUBase is the EA-MPU's fixed cost, excluding rules.
	MPUBase = Cost{Registers: 278, LUTs: 417}
	// MPUPerRule is the cost of one configurable protection rule (#r).
	MPUPerRule = Cost{Registers: 116, LUTs: 182}
	// Clock64 is a 64-bit counter register with increment logic.
	Clock64 = Cost{Registers: 64, LUTs: 64}
	// Clock32 is a 32-bit counter register with increment logic.
	Clock32 = Cost{Registers: 32, LUTs: 32}
)

// EAMPU returns the cost of an EA-MPU with capacity for nRules rules:
// 278 + 116·#r registers and 417 + 182·#r LUTs.
func EAMPU(nRules int) Cost {
	return MPUBase.Add(MPUPerRule.Scale(nRules))
}

// Component is one Table 3 column: a named feature with the EA-MPU rules
// it consumes and any direct hardware it adds.
type Component struct {
	Name   string
	Rules  int  // EA-MPU rules the feature consumes (Table 3 row 1)
	Direct Cost // dedicated hardware (Table 3 rows 2–3)
}

// Table3Components lists the feature columns exactly as printed in the
// paper (the Siskiyou Peak core and the parameterised EA-MPU columns are
// Core and EAMPU above).
var Table3Components = []Component{
	{Name: "Attest-Key", Rules: 1},
	{Name: "Counter", Rules: 1},
	{Name: "64 bit clock", Rules: 0, Direct: Cost{Registers: 64, LUTs: 64}},
	{Name: "32 bit clock", Rules: 0, Direct: Cost{Registers: 32, LUTs: 32}},
	{Name: "SW-clock", Rules: 2},
}

// Config is a synthesizable system configuration: the core, an EA-MPU with
// some number of rules, and direct clock hardware.
type Config struct {
	Name   string
	Rules  int
	Direct Cost
}

// Total returns the configuration's full area.
func (c Config) Total() Cost {
	return Core.Add(EAMPU(c.Rules)).Add(c.Direct)
}

// Baseline is the paper's reference point (§6.3): attestation support with
// no prover-side DoS protection — an EA-MPU with two rules (one to lock
// down the EA-MPU itself, one to protect K_Attest), totalling
// 6038 registers and 15142 LUTs.
func Baseline() Config {
	return Config{Name: "baseline", Rules: 2}
}

// WithClock64 is the Figure 1a configuration with a full-rate 64-bit
// hardware clock: one additional EA-MPU rule plus the 64-flop counter
// (§6.3: +180 registers, +246 LUTs → 2.98 % / 1.62 %).
func WithClock64() Config {
	return Config{Name: "64-bit clock", Rules: 3, Direct: Clock64}
}

// WithClock32 is the 32-bit divided-clock variant (§6.3: +148 registers,
// +214 LUTs → 2.45 % / 1.41 %).
func WithClock32() Config {
	return Config{Name: "32-bit clock", Rules: 3, Direct: Clock32}
}

// WithSWClock is the Figure 1b configuration: no dedicated counter
// hardware, three additional EA-MPU rules (IDT lockdown, Clock_MSB
// protection, timer-interrupt configuration) per the §6.3 arithmetic
// (+348 registers, +546 LUTs → 5.76 % / 3.61 %). Note Table 3's SW-clock
// column prints 2 rules while §6.3 charges 3; we follow §6.3 for the
// overhead numbers and Table 3 for the component table, preserving the
// paper's own (slightly inconsistent) figures.
func WithSWClock() Config {
	return Config{Name: "SW-clock", Rules: 5}
}

// Overhead is the added cost of a configuration relative to the baseline.
type Overhead struct {
	Config          Config
	Added           Cost
	RegisterPercent float64
	LUTPercent      float64
	BaselineTotal   Cost
	ConfiguredTotal Cost
}

// OverheadVsBaseline computes the §6.3 comparison for cfg.
func OverheadVsBaseline(cfg Config) Overhead {
	base := Baseline().Total()
	total := cfg.Total()
	added := Cost{
		Registers: total.Registers - base.Registers,
		LUTs:      total.LUTs - base.LUTs,
	}
	return Overhead{
		Config:          cfg,
		Added:           added,
		RegisterPercent: 100 * float64(added.Registers) / float64(base.Registers),
		LUTPercent:      100 * float64(added.LUTs) / float64(base.LUTs),
		BaselineTotal:   base,
		ConfiguredTotal: total,
	}
}

// AllConfigs returns the §6.3 evaluation set in paper order.
func AllConfigs() []Config {
	return []Config{Baseline(), WithClock64(), WithClock32(), WithSWClock()}
}
