package hwcost

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEAMPUFormula(t *testing.T) {
	// Table 3: 278 + 116·#r registers, 417 + 182·#r LUTs.
	cases := []struct {
		rules    int
		wantRegs int
		wantLUTs int
	}{
		{0, 278, 417},
		{1, 394, 599},
		{2, 510, 781},
		{5, 858, 1327},
	}
	for _, tc := range cases {
		got := EAMPU(tc.rules)
		if got.Registers != tc.wantRegs || got.LUTs != tc.wantLUTs {
			t.Errorf("EAMPU(%d) = %v, want %d/%d", tc.rules, got, tc.wantRegs, tc.wantLUTs)
		}
	}
}

func TestBaselineMatchesPaper(t *testing.T) {
	// §6.3: baseline = 5528 + 278 + 116·2 = 6038 registers and
	// 14361 + 417 + 182·2 = 15142 LUTs.
	total := Baseline().Total()
	if total.Registers != 6038 {
		t.Errorf("baseline registers = %d, want 6038", total.Registers)
	}
	if total.LUTs != 15142 {
		t.Errorf("baseline LUTs = %d, want 15142", total.LUTs)
	}
}

func TestClock64Overhead(t *testing.T) {
	// §6.3: +116+64 = 180 registers (2.98 %), +182+64 = 246 LUTs (1.62 %).
	o := OverheadVsBaseline(WithClock64())
	if o.Added.Registers != 180 || o.Added.LUTs != 246 {
		t.Fatalf("64-bit clock added cost = %v, want 180/246", o.Added)
	}
	assertPercent(t, "64-bit registers", o.RegisterPercent, 2.98)
	assertPercent(t, "64-bit LUTs", o.LUTPercent, 1.62)
}

func TestClock32Overhead(t *testing.T) {
	// §6.3: +116+32 = 148 registers (2.45 %), +182+32 = 214 LUTs (1.41 %).
	o := OverheadVsBaseline(WithClock32())
	if o.Added.Registers != 148 || o.Added.LUTs != 214 {
		t.Fatalf("32-bit clock added cost = %v, want 148/214", o.Added)
	}
	assertPercent(t, "32-bit registers", o.RegisterPercent, 2.45)
	assertPercent(t, "32-bit LUTs", o.LUTPercent, 1.41)
}

func TestSWClockOverhead(t *testing.T) {
	// §6.3: 116·3 = 348 registers (5.76 %), 182·3 = 546 LUTs (3.61 %).
	o := OverheadVsBaseline(WithSWClock())
	if o.Added.Registers != 348 || o.Added.LUTs != 546 {
		t.Fatalf("SW-clock added cost = %v, want 348/546", o.Added)
	}
	assertPercent(t, "SW-clock registers", o.RegisterPercent, 5.76)
	assertPercent(t, "SW-clock LUTs", o.LUTPercent, 3.61)
}

// assertPercent checks a computed percentage rounds to the paper's printed
// two-decimal figure.
func assertPercent(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(math.Round(got*100)/100-want) > 0.005 {
		t.Errorf("%s overhead = %.4f%%, want %.2f%%", name, got, want)
	}
}

func TestTable3Components(t *testing.T) {
	byName := map[string]Component{}
	for _, c := range Table3Components {
		byName[c.Name] = c
	}
	if c := byName["Attest-Key"]; c.Rules != 1 || c.Direct != (Cost{}) {
		t.Errorf("Attest-Key = %+v, want 1 rule / no direct cost", c)
	}
	if c := byName["Counter"]; c.Rules != 1 || c.Direct != (Cost{}) {
		t.Errorf("Counter = %+v, want 1 rule / no direct cost", c)
	}
	if c := byName["64 bit clock"]; c.Rules != 0 || c.Direct.Registers != 64 || c.Direct.LUTs != 64 {
		t.Errorf("64 bit clock = %+v", c)
	}
	if c := byName["32 bit clock"]; c.Rules != 0 || c.Direct.Registers != 32 || c.Direct.LUTs != 32 {
		t.Errorf("32 bit clock = %+v", c)
	}
	if c := byName["SW-clock"]; c.Rules != 2 || c.Direct != (Cost{}) {
		t.Errorf("SW-clock = %+v, want 2 rules (Table 3 printing)", c)
	}
}

func TestCostArithmetic(t *testing.T) {
	a := Cost{Registers: 3, LUTs: 5}
	b := Cost{Registers: 7, LUTs: 11}
	if got := a.Add(b); got.Registers != 10 || got.LUTs != 16 {
		t.Errorf("Add = %v", got)
	}
	if got := a.Scale(4); got.Registers != 12 || got.LUTs != 20 {
		t.Errorf("Scale = %v", got)
	}
	if got := a.String(); got != "3 registers / 5 LUTs" {
		t.Errorf("String = %q", got)
	}
}

func TestOverheadMonotoneInRules(t *testing.T) {
	f := func(n uint8) bool {
		base := Config{Rules: int(n)}
		more := Config{Rules: int(n) + 1}
		return more.Total().Registers-base.Total().Registers == MPUPerRule.Registers &&
			more.Total().LUTs-base.Total().LUTs == MPUPerRule.LUTs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAllConfigsOrder(t *testing.T) {
	cfgs := AllConfigs()
	want := []string{"baseline", "64-bit clock", "32-bit clock", "SW-clock"}
	if len(cfgs) != len(want) {
		t.Fatalf("AllConfigs returned %d entries, want %d", len(cfgs), len(want))
	}
	for i, cfg := range cfgs {
		if cfg.Name != want[i] {
			t.Errorf("config %d = %q, want %q", i, cfg.Name, want[i])
		}
	}
}
