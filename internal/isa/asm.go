package isa

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates SP16 assembly into a little-endian binary image
// based at the given address. Two passes: the first lays out labels, the
// second encodes.
//
// Syntax:
//
//	; or # start a comment
//	label:              — defines a label (may share a line with an instr)
//	add r1, r2, r3      — R-type
//	addi r1, r2, -5     — I-type (decimal or 0x hex immediates)
//	lw r1, 8(r2)        — loads/stores use displacement addressing
//	beq r1, r2, label   — branches take a label or numeric word offset
//	jal lr, func        — as do jumps
//	jalr r0, lr, 0
//	.word 0xdeadbeef    — literal data word
//	.space 16           — n zero bytes (word-aligned)
//
// Pseudo-instructions: li rd, imm (expands to addi or lui+ori),
// mv rd, rs, j label, ret, and the bare nop/halt.
//
// Register aliases: zero (r0), lr (r13), sp (r14).
func Assemble(base uint32, src string) ([]byte, error) {
	lines := strings.Split(src, "\n")

	type item struct {
		line   int
		addr   uint32
		mnem   string
		args   []string
		isWord bool
		word   uint32
	}
	var items []item
	labels := map[string]uint32{}
	pc := base

	// Pass 1: layout.
	for ln, raw := range lines {
		text := stripComment(raw)
		// Labels (possibly several) before any instruction.
		for {
			text = strings.TrimSpace(text)
			idx := strings.Index(text, ":")
			if idx < 0 {
				break
			}
			head := strings.TrimSpace(text[:idx])
			if head == "" || strings.ContainsAny(head, " \t,") {
				break // a colon inside an expression is not ours
			}
			if _, dup := labels[head]; dup {
				return nil, fmt.Errorf("line %d: duplicate label %q", ln+1, head)
			}
			labels[head] = pc
			text = text[idx+1:]
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		mnem, rest := splitMnemonic(text)
		switch mnem {
		case ".word":
			v, err := parseImm(rest)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", ln+1, err)
			}
			items = append(items, item{line: ln + 1, addr: pc, isWord: true, word: uint32(v)})
			pc += 4
		case ".space":
			n, err := parseImm(rest)
			if err != nil || n < 0 || n%4 != 0 {
				return nil, fmt.Errorf("line %d: .space needs a non-negative multiple of 4", ln+1)
			}
			for i := int32(0); i < n; i += 4 {
				items = append(items, item{line: ln + 1, addr: pc, isWord: true, word: 0})
				pc += 4
			}
		case "li":
			args := splitArgs(rest)
			if len(args) != 2 {
				return nil, fmt.Errorf("line %d: li needs rd, imm", ln+1)
			}
			v, err := parseImm(args[1])
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", ln+1, err)
			}
			if v >= -(1<<15) && v < 1<<15 {
				items = append(items, item{line: ln + 1, addr: pc, mnem: "addi",
					args: []string{args[0], "r0", args[1]}})
				pc += 4
			} else {
				hi := uint32(v) >> 16
				lo := uint32(v) & 0xFFFF
				items = append(items, item{line: ln + 1, addr: pc, mnem: "lui",
					args: []string{args[0], fmt.Sprintf("%#x", hi)}})
				pc += 4
				items = append(items, item{line: ln + 1, addr: pc, mnem: "ori",
					args: []string{args[0], args[0], fmt.Sprintf("%#x", lo)}})
				pc += 4
			}
		case "mv":
			args := splitArgs(rest)
			if len(args) != 2 {
				return nil, fmt.Errorf("line %d: mv needs rd, rs", ln+1)
			}
			items = append(items, item{line: ln + 1, addr: pc, mnem: "add",
				args: []string{args[0], args[1], "r0"}})
			pc += 4
		case "j":
			items = append(items, item{line: ln + 1, addr: pc, mnem: "jal",
				args: []string{"r0", strings.TrimSpace(rest)}})
			pc += 4
		case "ret":
			items = append(items, item{line: ln + 1, addr: pc, mnem: "jalr",
				args: []string{"r0", "lr", "0"}})
			pc += 4
		default:
			items = append(items, item{line: ln + 1, addr: pc, mnem: mnem, args: splitArgs(rest)})
			pc += 4
		}
	}

	// Pass 2: encode.
	out := make([]byte, 0, 4*len(items))
	for _, it := range items {
		var w uint32
		if it.isWord {
			w = it.word
		} else {
			in, err := parseInstr(it.mnem, it.args, it.addr, labels)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", it.line, err)
			}
			w, err = Encode(in)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", it.line, err)
			}
		}
		var buf [4]byte
		binary.LittleEndian.PutUint32(buf[:], w)
		out = append(out, buf[:]...)
	}
	return out, nil
}

// Disassemble renders a binary image as one line per word: address, raw
// word, and either the decoded instruction or a .word literal for data.
func Disassemble(base uint32, img []byte) []string {
	out := make([]string, 0, len(img)/4)
	for off := 0; off+4 <= len(img); off += 4 {
		w := binary.LittleEndian.Uint32(img[off:])
		line := fmt.Sprintf("%#08x: %08x  ", base+uint32(off), w)
		if in, err := Decode(w); err == nil {
			line += in.String()
		} else {
			line += fmt.Sprintf(".word %#x", w)
		}
		out = append(out, line)
	}
	return out
}

func stripComment(s string) string {
	if i := strings.IndexAny(s, ";#"); i >= 0 {
		return s[:i]
	}
	return s
}

func splitMnemonic(s string) (string, string) {
	s = strings.TrimSpace(s)
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		return strings.ToLower(s[:i]), s[i+1:]
	}
	return strings.ToLower(s), ""
}

func splitArgs(s string) []string {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

var mnemonics = func() map[string]Opcode {
	m := make(map[string]Opcode)
	for op, name := range opNames {
		if name != "" {
			m[name] = Opcode(op)
		}
	}
	return m
}()

func parseReg(s string) (uint8, error) {
	switch strings.ToLower(s) {
	case "zero":
		return RegZero, nil
	case "lr":
		return RegLR, nil
	case "sp":
		return RegSP, nil
	}
	if len(s) >= 2 && (s[0] == 'r' || s[0] == 'R') {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < NumRegs {
			return uint8(n), nil
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}

func parseImm(s string) (int32, error) {
	s = strings.TrimSpace(s)
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	if v < -(1<<31) || v > 1<<32-1 {
		return 0, fmt.Errorf("immediate %q out of 32-bit range", s)
	}
	return int32(uint32(v)), nil
}

// parseTarget resolves a branch/jump target: a label (word offset from the
// instruction) or a numeric word offset.
func parseTarget(s string, instrAddr uint32, labels map[string]uint32) (int32, error) {
	if addr, ok := labels[s]; ok {
		diff := int64(addr) - int64(instrAddr)
		if diff%4 != 0 {
			return 0, fmt.Errorf("misaligned target %q", s)
		}
		return int32(diff / 4), nil
	}
	return parseImm(s)
}

// parseMem parses "imm(rN)" displacement operands.
func parseMem(s string) (uint8, int32, error) {
	open := strings.Index(s, "(")
	close := strings.LastIndex(s, ")")
	if open < 0 || close < open {
		return 0, 0, fmt.Errorf("bad memory operand %q (want imm(rN))", s)
	}
	immStr := strings.TrimSpace(s[:open])
	if immStr == "" {
		immStr = "0"
	}
	imm, err := parseImm(immStr)
	if err != nil {
		return 0, 0, err
	}
	reg, err := parseReg(strings.TrimSpace(s[open+1 : close]))
	if err != nil {
		return 0, 0, err
	}
	return reg, imm, nil
}

func parseInstr(mnem string, args []string, addr uint32, labels map[string]uint32) (Instr, error) {
	op, ok := mnemonics[mnem]
	if !ok {
		return Instr{}, fmt.Errorf("unknown mnemonic %q", mnem)
	}
	in := Instr{Op: op}
	var err error
	switch kindOf(op) {
	case kindNone:
		if len(args) != 0 {
			return in, fmt.Errorf("%s takes no operands", mnem)
		}
	case kindR:
		if len(args) != 3 {
			return in, fmt.Errorf("%s needs rd, rs1, rs2", mnem)
		}
		if in.Rd, err = parseReg(args[0]); err != nil {
			return in, err
		}
		if in.Rs1, err = parseReg(args[1]); err != nil {
			return in, err
		}
		if in.Rs2, err = parseReg(args[2]); err != nil {
			return in, err
		}
	case kindI:
		switch op {
		case OpLW, OpLB, OpSW, OpSB:
			if len(args) != 2 {
				return in, fmt.Errorf("%s needs rd, imm(rs1)", mnem)
			}
			if in.Rd, err = parseReg(args[0]); err != nil {
				return in, err
			}
			if in.Rs1, in.Imm, err = parseMem(args[1]); err != nil {
				return in, err
			}
		case OpLUI:
			if len(args) != 2 {
				return in, fmt.Errorf("lui needs rd, imm16")
			}
			if in.Rd, err = parseReg(args[0]); err != nil {
				return in, err
			}
			if in.Imm, err = parseImm(args[1]); err != nil {
				return in, err
			}
		default:
			if len(args) != 3 {
				return in, fmt.Errorf("%s needs rd, rs1, imm", mnem)
			}
			if in.Rd, err = parseReg(args[0]); err != nil {
				return in, err
			}
			if in.Rs1, err = parseReg(args[1]); err != nil {
				return in, err
			}
			if in.Imm, err = parseImm(args[2]); err != nil {
				return in, err
			}
		}
	case kindB:
		if len(args) != 3 {
			return in, fmt.Errorf("%s needs rs1, rs2, target", mnem)
		}
		if in.Rs1, err = parseReg(args[0]); err != nil {
			return in, err
		}
		if in.Rs2, err = parseReg(args[1]); err != nil {
			return in, err
		}
		if in.Imm, err = parseTarget(args[2], addr, labels); err != nil {
			return in, err
		}
	case kindJ:
		if len(args) != 2 {
			return in, fmt.Errorf("jal needs rd, target")
		}
		if in.Rd, err = parseReg(args[0]); err != nil {
			return in, err
		}
		if in.Imm, err = parseTarget(args[1], addr, labels); err != nil {
			return in, err
		}
	}
	return in, nil
}
