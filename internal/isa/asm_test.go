package isa

import (
	"encoding/binary"
	"testing"
)

func mustAssemble(t *testing.T, base uint32, src string) []byte {
	t.Helper()
	img, err := Assemble(base, src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return img
}

func word(t *testing.T, img []byte, i int) uint32 {
	t.Helper()
	return binary.LittleEndian.Uint32(img[i*4:])
}

func TestAssembleBasicForms(t *testing.T) {
	img := mustAssemble(t, 0, `
		nop
		add r1, r2, r3
		addi r4, r5, -7
		lw r6, 12(r7)
		sw r6, -4(r7)
		lui r8, 0x1234
		halt
	`)
	if len(img) != 7*4 {
		t.Fatalf("image is %d bytes, want 28", len(img))
	}
	checks := []Instr{
		{Op: OpNOP},
		{Op: OpADD, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpADDI, Rd: 4, Rs1: 5, Imm: -7},
		{Op: OpLW, Rd: 6, Rs1: 7, Imm: 12},
		{Op: OpSW, Rd: 6, Rs1: 7, Imm: -4},
		{Op: OpLUI, Rd: 8, Imm: 0x1234},
		{Op: OpHALT},
	}
	for i, want := range checks {
		got, err := Decode(word(t, img, i))
		if err != nil {
			t.Fatalf("instr %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("instr %d = %v, want %v", i, got, want)
		}
	}
}

func TestAssembleLabelsAndBranches(t *testing.T) {
	img := mustAssemble(t, 0x1000, `
	start:
		nop
		beq r1, r2, start   ; offset -1 word
		bne r1, r2, end     ; offset +2 words
		nop
	end:
		halt
	`)
	beq, err := Decode(word(t, img, 1))
	if err != nil {
		t.Fatal(err)
	}
	if beq.Imm != -1 {
		t.Fatalf("backward branch offset = %d, want -1", beq.Imm)
	}
	bne, err := Decode(word(t, img, 2))
	if err != nil {
		t.Fatal(err)
	}
	if bne.Imm != 2 {
		t.Fatalf("forward branch offset = %d, want 2", bne.Imm)
	}
}

func TestAssemblePseudoInstructions(t *testing.T) {
	// Small li → one addi; large li → lui+ori; mv; j; ret.
	img := mustAssemble(t, 0, `
		li r1, 100
		li r2, 0x12345678
		mv r3, r1
		j skip
	skip:
		ret
	`)
	if len(img) != 6*4 {
		t.Fatalf("image is %d words, want 6", len(img)/4)
	}
	in0, _ := Decode(word(t, img, 0))
	if in0.Op != OpADDI || in0.Imm != 100 {
		t.Fatalf("small li = %v", in0)
	}
	in1, _ := Decode(word(t, img, 1))
	in2, _ := Decode(word(t, img, 2))
	if in1.Op != OpLUI || uint32(in1.Imm) != 0x1234 {
		t.Fatalf("large li hi = %v", in1)
	}
	if in2.Op != OpORI || uint32(in2.Imm) != 0x5678 {
		t.Fatalf("large li lo = %v", in2)
	}
	in3, _ := Decode(word(t, img, 3))
	if in3.Op != OpADD || in3.Rd != 3 || in3.Rs1 != 1 || in3.Rs2 != 0 {
		t.Fatalf("mv = %v", in3)
	}
	in4, _ := Decode(word(t, img, 4))
	if in4.Op != OpJAL || in4.Rd != 0 || in4.Imm != 1 {
		t.Fatalf("j = %v", in4)
	}
	in5, _ := Decode(word(t, img, 5))
	if in5.Op != OpJALR || in5.Rs1 != RegLR {
		t.Fatalf("ret = %v", in5)
	}
}

func TestAssembleDirectives(t *testing.T) {
	img := mustAssemble(t, 0, `
		.word 0xdeadbeef
		.space 8
		halt
	`)
	if len(img) != 4*4 {
		t.Fatalf("image is %d bytes, want 16", len(img))
	}
	if word(t, img, 0) != 0xdeadbeef {
		t.Fatalf(".word = %#x", word(t, img, 0))
	}
	if word(t, img, 1) != 0 || word(t, img, 2) != 0 {
		t.Fatal(".space not zeroed")
	}
}

func TestAssembleRegisterAliases(t *testing.T) {
	img := mustAssemble(t, 0, `add sp, lr, zero`)
	in, _ := Decode(word(t, img, 0))
	if in.Rd != RegSP || in.Rs1 != RegLR || in.Rs2 != RegZero {
		t.Fatalf("aliases = %v", in)
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := map[string]string{
		"unknown mnemonic":   `frobnicate r1, r2`,
		"bad register":       `add r1, r99, r2`,
		"missing operand":    `add r1, r2`,
		"undefined label":    `beq r1, r2, nowhere_named_like_this`,
		"duplicate label":    "x:\nnop\nx:\nnop",
		"imm out of range":   `addi r1, r0, 40000`,
		"bad memory form":    `lw r1, r2`,
		"operands on halt":   `halt r1`,
		"odd space":          `.space 3`,
		"branch too far":     "beq r1, r2, 9000",
		"bad word literal":   `.word zzz`,
		"bad li value":       `li r1, notanumber`,
		"li missing arg":     `li r1`,
		"mv missing arg":     `mv r1`,
		"bad mem register":   `lw r1, 4(r77)`,
		"bad mem immediate":  `lw r1, zz(r2)`,
		"lui missing arg":    `lui r1`,
		"lui bad register":   `lui r99, 1`,
		"jal missing target": `jal lr`,
		"branch bad reg":     `beq r1, r99, 0`,
		"branch bad reg1":    `beq r99, r1, 0`,
		"store bad dest":     `sw r99, 0(r1)`,
		"i-type bad rs1":     `addi r1, r99, 0`,
		"i-type bad imm":     `addi r1, r2, qq`,
		"r-type bad rs2":     `add r1, r2, r99`,
	}
	for name, src := range bad {
		if _, err := Assemble(0, src); err == nil {
			t.Errorf("%s: assembled %q without error", name, src)
		}
	}
}

func TestAssembleCommentsAndBlankLines(t *testing.T) {
	img := mustAssemble(t, 0, `
		; full-line comment
		# another comment style

		nop   ; trailing comment
	`)
	if len(img) != 4 {
		t.Fatalf("image is %d bytes, want one instruction", len(img))
	}
}

func TestDisassemble(t *testing.T) {
	img := mustAssemble(t, 0x1000, `
		addi r1, r0, 6
		.word 0xdeadbeef
		halt
	`)
	lines := Disassemble(0x1000, img)
	if len(lines) != 3 {
		t.Fatalf("disassembled %d lines, want 3", len(lines))
	}
	checks := []string{"addi r1, r0, 6", ".word 0xdeadbeef", "halt"}
	for i, want := range checks {
		if !containsStr(lines[i], want) {
			t.Errorf("line %d = %q, want it to contain %q", i, lines[i], want)
		}
	}
	if !containsStr(lines[1], "0x00001004") {
		t.Errorf("line 1 = %q, want the address 0x00001004", lines[1])
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestUndefinedLabelReportsNumericFallback(t *testing.T) {
	// A numeric target is a raw word offset, usable without a label.
	img := mustAssemble(t, 0, `beq r0, r0, -4`)
	in, _ := Decode(word(t, img, 0))
	if in.Imm != -4 {
		t.Fatalf("numeric branch offset = %d, want -4", in.Imm)
	}
}
