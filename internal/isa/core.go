package isa

import (
	"encoding/binary"
	"fmt"

	"proverattest/internal/crypto/cost"
	"proverattest/internal/mcu"
)

// StopReason explains why the interpreter stopped.
type StopReason int

// Stop reasons.
const (
	// StopHalt: the program executed HALT.
	StopHalt StopReason = iota
	// StopFault: a fetch or data access was denied by the bus/EA-MPU.
	StopFault
	// StopBadInstr: the fetched word did not decode (e.g. executing data).
	StopBadInstr
	// StopBudget: the instruction budget ran out (runaway guard).
	StopBudget
)

func (r StopReason) String() string {
	switch r {
	case StopHalt:
		return "halt"
	case StopFault:
		return "bus fault"
	case StopBadInstr:
		return "illegal instruction"
	case StopBudget:
		return "instruction budget exhausted"
	}
	return fmt.Sprintf("stop(%d)", int(r))
}

// Result summarises one program run.
type Result struct {
	Reason       StopReason
	Fault        *mcu.Fault
	PC           mcu.Addr // the instruction that stopped execution
	Instructions uint64
	Cycles       cost.Cycles
	// Regs is the final register file.
	Regs [NumRegs]uint32
}

// Per-instruction cycle costs, MSP430-flavoured: single-cycle ALU,
// two-cycle memory and multiply, an extra cycle for taken branches.
func cyclesFor(op Opcode, taken bool) cost.Cycles {
	switch op {
	case OpLW, OpLB, OpSW, OpSB, OpMUL, OpJAL, OpJALR:
		return 2
	case OpBEQ, OpBNE, OpBLTU, OpBGEU:
		if taken {
			return 2
		}
		return 1
	default:
		return 1
	}
}

// Core is an SP16 hart. Zero value is ready to run.
type Core struct {
	R [NumRegs]uint32
}

// Run executes instructions starting at entry inside the given MCU
// execution context. Every fetch and data access goes through the bus
// with the current instruction's PC, so the EA-MPU sees real
// program-counter values. maxInstr bounds runaway programs.
func (c *Core) Run(e *mcu.Exec, entry mcu.Addr, maxInstr uint64) Result {
	pc := entry
	res := Result{}
	for {
		if res.Instructions >= maxInstr {
			res.Reason = StopBudget
			break
		}
		e.SetPC(pc)
		word, fault := e.Load32(pc)
		if fault != nil {
			res.Reason = StopFault
			res.Fault = fault
			break
		}
		in, err := Decode(word)
		if err != nil {
			res.Reason = StopBadInstr
			break
		}
		res.Instructions++

		next := pc + 4
		taken := false
		var fault2 *mcu.Fault
		switch in.Op {
		case OpNOP:
		case OpHALT:
			e.Tick(cyclesFor(in.Op, false))
			res.Reason = StopHalt
			res.PC = pc
			res.Cycles = e.Cycles()
			res.Regs = c.R
			return res

		case OpADD:
			c.set(in.Rd, c.R[in.Rs1]+c.R[in.Rs2])
		case OpSUB:
			c.set(in.Rd, c.R[in.Rs1]-c.R[in.Rs2])
		case OpAND:
			c.set(in.Rd, c.R[in.Rs1]&c.R[in.Rs2])
		case OpOR:
			c.set(in.Rd, c.R[in.Rs1]|c.R[in.Rs2])
		case OpXOR:
			c.set(in.Rd, c.R[in.Rs1]^c.R[in.Rs2])
		case OpSLL:
			c.set(in.Rd, c.R[in.Rs1]<<(c.R[in.Rs2]&31))
		case OpSRL:
			c.set(in.Rd, c.R[in.Rs1]>>(c.R[in.Rs2]&31))
		case OpSRA:
			c.set(in.Rd, uint32(int32(c.R[in.Rs1])>>(c.R[in.Rs2]&31)))
		case OpMUL:
			c.set(in.Rd, c.R[in.Rs1]*c.R[in.Rs2])
		case OpSLTU:
			c.set(in.Rd, boolBit(c.R[in.Rs1] < c.R[in.Rs2]))

		case OpADDI:
			c.set(in.Rd, c.R[in.Rs1]+uint32(in.Imm))
		case OpANDI:
			c.set(in.Rd, c.R[in.Rs1]&uint32(in.Imm))
		case OpORI:
			c.set(in.Rd, c.R[in.Rs1]|uint32(in.Imm))
		case OpXORI:
			c.set(in.Rd, c.R[in.Rs1]^uint32(in.Imm))
		case OpSLLI:
			c.set(in.Rd, c.R[in.Rs1]<<(uint32(in.Imm)&31))
		case OpSRLI:
			c.set(in.Rd, c.R[in.Rs1]>>(uint32(in.Imm)&31))
		case OpLUI:
			c.set(in.Rd, uint32(in.Imm)<<16)
		case OpSLTIU:
			c.set(in.Rd, boolBit(c.R[in.Rs1] < uint32(in.Imm)))

		case OpLW:
			addr := mcu.Addr(c.R[in.Rs1] + uint32(in.Imm))
			var data []byte
			data, fault2 = e.Read(addr, 4)
			if fault2 == nil {
				c.set(in.Rd, binary.LittleEndian.Uint32(data))
			}
		case OpLB:
			addr := mcu.Addr(c.R[in.Rs1] + uint32(in.Imm))
			var data []byte
			data, fault2 = e.Read(addr, 1)
			if fault2 == nil {
				c.set(in.Rd, uint32(data[0]))
			}
		case OpSW:
			addr := mcu.Addr(c.R[in.Rs1] + uint32(in.Imm))
			var buf [4]byte
			binary.LittleEndian.PutUint32(buf[:], c.R[in.Rd])
			fault2 = e.Write(addr, buf[:])
		case OpSB:
			addr := mcu.Addr(c.R[in.Rs1] + uint32(in.Imm))
			fault2 = e.Write(addr, []byte{byte(c.R[in.Rd])})

		case OpBEQ:
			taken = c.R[in.Rs1] == c.R[in.Rs2]
		case OpBNE:
			taken = c.R[in.Rs1] != c.R[in.Rs2]
		case OpBLTU:
			taken = c.R[in.Rs1] < c.R[in.Rs2]
		case OpBGEU:
			taken = c.R[in.Rs1] >= c.R[in.Rs2]

		case OpJAL:
			c.set(in.Rd, uint32(pc)+4)
			next = pc + mcu.Addr(in.Imm*4)
			taken = true
		case OpJALR:
			target := (c.R[in.Rs1] + uint32(in.Imm)) &^ 3
			c.set(in.Rd, uint32(pc)+4)
			next = mcu.Addr(target)
			taken = true
		}

		if kindOf(in.Op) == kindB && taken {
			next = pc + mcu.Addr(in.Imm*4)
		}
		e.Tick(cyclesFor(in.Op, taken))
		if fault2 != nil {
			res.Reason = StopFault
			res.Fault = fault2
			break
		}
		pc = next
	}
	res.PC = pc
	res.Cycles = e.Cycles()
	res.Regs = c.R
	return res
}

// set writes a register, keeping r0 hardwired to zero.
func (c *Core) set(rd uint8, v uint32) {
	if rd != RegZero {
		c.R[rd] = v
	}
}

func boolBit(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// LoadProgram assembles src at base and writes the image into the MCU's
// memory (factory step). It returns the image length in bytes.
func LoadProgram(m *mcu.MCU, base mcu.Addr, src string) (int, error) {
	img, err := Assemble(uint32(base), src)
	if err != nil {
		return 0, err
	}
	m.Space.DirectWrite(base, img)
	return len(img), nil
}

// RunProgram registers (or reuses) a task named name covering region and
// executes the program at entry on the MCU's job queue; onDone receives
// the result at the job's completion time.
func RunProgram(m *mcu.MCU, name string, region mcu.Region, entry mcu.Addr, maxInstr uint64, onDone func(Result)) {
	task, ok := m.TaskByName(name)
	if !ok {
		task = m.RegisterTask(&mcu.Task{Name: name, Code: region})
	}
	var res Result
	m.Submit(task, func(e *mcu.Exec) {
		core := &Core{}
		res = core.Run(e, entry, maxInstr)
	}, func(*mcu.Exec) {
		if onDone != nil {
			onDone(res)
		}
	})
}
