package isa

import (
	"strings"
	"testing"

	"proverattest/internal/mcu"
	"proverattest/internal/sim"
)

// runSrc assembles src into flash, runs it, and returns the result.
func runSrc(t *testing.T, src string) Result {
	t.Helper()
	k := sim.NewKernel()
	m := mcu.New(k, mcu.Config{MPURules: 4})
	base := mcu.FlashRegion.Start
	if _, err := LoadProgram(m, base, src); err != nil {
		t.Fatalf("assemble: %v", err)
	}
	var res Result
	RunProgram(m, "prog", mcu.Region{Start: base, Size: 64 * mcu.KiB}, base, 100_000,
		func(r Result) { res = r })
	k.RunUntil(k.Now() + sim.Second)
	return res
}

func TestArithmeticProgram(t *testing.T) {
	// Sum 1..10 into r2.
	res := runSrc(t, `
		li   r1, 10
		li   r2, 0
	loop:
		add  r2, r2, r1
		addi r1, r1, -1
		bne  r1, r0, loop
		halt
	`)
	if res.Reason != StopHalt {
		t.Fatalf("stopped with %v at %#x (fault %v)", res.Reason, uint32(res.PC), res.Fault)
	}
	if res.Regs[2] != 55 {
		t.Fatalf("sum = %d, want 55", res.Regs[2])
	}
	// 10 iterations × 3 instrs + prologue/halt.
	if res.Instructions < 30 || res.Instructions > 40 {
		t.Fatalf("executed %d instructions, want ≈33", res.Instructions)
	}
	if res.Cycles == 0 {
		t.Fatal("no cycles accounted")
	}
}

func TestMemoryProgram(t *testing.T) {
	// Write 0xCAFEBABE to RAM, read it back, and also exercise bytes.
	res := runSrc(t, `
		li   r1, 0x00200000   ; RAM base
		li   r2, 0xCAFEBABE
		sw   r2, 0(r1)
		lw   r3, 0(r1)
		lb   r4, 3(r1)        ; 0xCA (little-endian top byte)
		li   r5, 0x7F
		sb   r5, 4(r1)
		lb   r6, 4(r1)
		halt
	`)
	if res.Reason != StopHalt {
		t.Fatalf("stopped with %v (fault %v)", res.Reason, res.Fault)
	}
	if res.Regs[3] != 0xCAFEBABE {
		t.Fatalf("lw read %#x, want 0xCAFEBABE", res.Regs[3])
	}
	if res.Regs[4] != 0xCA {
		t.Fatalf("lb read %#x, want 0xCA", res.Regs[4])
	}
	if res.Regs[6] != 0x7F {
		t.Fatalf("sb/lb round trip = %#x, want 0x7F", res.Regs[6])
	}
}

func TestCallAndReturn(t *testing.T) {
	res := runSrc(t, `
		li   r1, 5
		jal  lr, double
		jal  lr, double
		halt
	double:
		add  r1, r1, r1
		ret
	`)
	if res.Reason != StopHalt {
		t.Fatalf("stopped with %v (fault %v)", res.Reason, res.Fault)
	}
	if res.Regs[1] != 20 {
		t.Fatalf("double twice = %d, want 20", res.Regs[1])
	}
}

func TestShiftAndCompare(t *testing.T) {
	res := runSrc(t, `
		li   r1, 1
		slli r2, r1, 8       ; 256
		srli r3, r2, 4       ; 16
		li   r4, -16
		sra  r5, r4, r1      ; arithmetic shift of -16 by 1 = -8
		sltu r6, r1, r2      ; 1 < 256 → 1
		sltiu r7, r2, 10     ; 256 < 10 → 0
		mul  r8, r2, r3      ; 4096
		halt
	`)
	if res.Reason != StopHalt {
		t.Fatalf("stopped with %v", res.Reason)
	}
	if res.Regs[2] != 256 || res.Regs[3] != 16 {
		t.Fatalf("shifts: r2=%d r3=%d", res.Regs[2], res.Regs[3])
	}
	if int32(res.Regs[5]) != -8 {
		t.Fatalf("sra = %d, want -8", int32(res.Regs[5]))
	}
	if res.Regs[6] != 1 || res.Regs[7] != 0 {
		t.Fatalf("sltu/sltiu: %d, %d", res.Regs[6], res.Regs[7])
	}
	if res.Regs[8] != 4096 {
		t.Fatalf("mul = %d", res.Regs[8])
	}
}

func TestR0IsHardwiredZero(t *testing.T) {
	res := runSrc(t, `
		li   r1, 42
		add  r0, r1, r1     ; write to r0 is discarded
		add  r2, r0, r0
		halt
	`)
	if res.Regs[0] != 0 || res.Regs[2] != 0 {
		t.Fatalf("r0 = %d, r2 = %d — r0 must stay zero", res.Regs[0], res.Regs[2])
	}
}

func TestRunawayBudget(t *testing.T) {
	res := runSrc(t, `
	spin:
		j spin
	`)
	if res.Reason != StopBudget {
		t.Fatalf("infinite loop stopped with %v, want budget exhaustion", res.Reason)
	}
	if res.Instructions != 100_000 {
		t.Fatalf("executed %d instructions, want the full budget", res.Instructions)
	}
}

func TestExecutingDataStops(t *testing.T) {
	res := runSrc(t, `
		j data
	data:
		.word 0xdeadbeef
	`)
	if res.Reason != StopBadInstr {
		t.Fatalf("executing data stopped with %v, want illegal instruction", res.Reason)
	}
}

func TestProtectedLoadFaultsAtExactPC(t *testing.T) {
	// The EA-MPU must attribute the rogue access to the precise
	// instruction, not to the program as a whole: only the fourth
	// instruction (the lw at base+12) touches the protected word.
	k := sim.NewKernel()
	m := mcu.New(k, mcu.Config{MPURules: 4})
	secret := mcu.Region{Start: mcu.RAMRegion.Start + 0x100, Size: 4}
	if err := m.MPU.SetRule(0, mcu.Rule{
		Code: mcu.ROMRegion, Data: secret,
		Perm: mcu.PermRead, Enabled: true,
	}); err != nil {
		t.Fatal(err)
	}

	base := mcu.FlashRegion.Start
	src := `
		li  r1, 0x00200100  ; two instructions (lui+ori)
		nop
		lw  r2, 0(r1)       ; base+12: denied
		halt
	`
	if _, err := LoadProgram(m, base, src); err != nil {
		t.Fatal(err)
	}
	var res Result
	RunProgram(m, "malware", mcu.Region{Start: base, Size: 0x1000}, base, 1000,
		func(r Result) { res = r })
	k.RunUntil(k.Now() + sim.Second)

	if res.Reason != StopFault {
		t.Fatalf("stopped with %v, want fault", res.Reason)
	}
	if res.Fault == nil || res.Fault.PC != base+12 {
		t.Fatalf("fault PC = %v, want %#x (the lw itself)", res.Fault, uint32(base+12))
	}
	if res.Fault.Addr != secret.Start {
		t.Fatalf("fault addr = %#x, want the protected word", uint32(res.Fault.Addr))
	}
	if !strings.Contains(res.Fault.Reason, "EA-MPU") {
		t.Fatalf("fault reason %q, want an EA-MPU denial", res.Fault.Reason)
	}
}

func TestPCAccurateRuleBoundary(t *testing.T) {
	// Execution-awareness at instruction granularity: a rule grants the
	// *first half* of the program access to a word; an identical load in
	// the second half faults. Closure-level tasks cannot express this —
	// the ISA layer can.
	k := sim.NewKernel()
	m := mcu.New(k, mcu.Config{MPURules: 4})
	word := mcu.Region{Start: mcu.RAMRegion.Start + 0x200, Size: 4}
	base := mcu.FlashRegion.Start
	// Instructions 0..3 (16 bytes) are privileged; the rest are not.
	if err := m.MPU.SetRule(0, mcu.Rule{
		Code: mcu.Region{Start: base, Size: 16}, Data: word,
		Perm: mcu.PermRead, Enabled: true,
	}); err != nil {
		t.Fatal(err)
	}
	m.Space.DirectStore32(word.Start, 77)

	src := `
		li  r1, 0x00200200 ; 2 instrs
		lw  r2, 0(r1)      ; base+8: inside the privileged window → allowed
		nop                ; base+12
		lw  r3, 0(r1)      ; base+16: outside → denied
		halt
	`
	if _, err := LoadProgram(m, base, src); err != nil {
		t.Fatal(err)
	}
	var res Result
	RunProgram(m, "split", mcu.Region{Start: base, Size: 0x1000}, base, 1000,
		func(r Result) { res = r })
	k.RunUntil(k.Now() + sim.Second)

	if res.Reason != StopFault {
		t.Fatalf("stopped with %v, want fault on the second lw", res.Reason)
	}
	if res.Regs[2] != 77 {
		t.Fatalf("privileged lw read %d, want 77", res.Regs[2])
	}
	if res.Fault.PC != base+16 {
		t.Fatalf("fault PC = %#x, want %#x", uint32(res.Fault.PC), uint32(base+16))
	}
}

func TestBranchTakenCostsExtraCycle(t *testing.T) {
	taken := runSrc(t, `
		li  r1, 1
		beq r1, r1, target
	target:
		halt
	`)
	notTaken := runSrc(t, `
		li  r1, 1
		beq r1, r0, never
	never:
		halt
	`)
	if taken.Cycles != notTaken.Cycles+1 {
		t.Fatalf("taken branch cost %d cycles, not-taken %d — want +1", taken.Cycles, notTaken.Cycles)
	}
}
