package isa

import "testing"

// FuzzDecode: Decode must never panic, and every accepted word must
// re-encode to itself (no two decodings share an encoding).
func FuzzDecode(f *testing.F) {
	f.Add(uint32(0))
	f.Add(uint32(1 << 26))    // halt
	f.Add(uint32(0x40400006)) // addi r1, r0, 6
	f.Add(uint32(0x84043ffe)) // bne r1, r0, -2
	f.Add(uint32(0xdeadbeef)) // data
	f.Fuzz(func(t *testing.T, w uint32) {
		in, err := Decode(w)
		if err != nil {
			return
		}
		back, err := Encode(in)
		if err != nil {
			t.Fatalf("accepted %#08x but re-encode failed: %v", w, err)
		}
		if back != w {
			t.Fatalf("decode/encode not a bijection: %#08x → %v → %#08x", w, in, back)
		}
	})
}

// FuzzAssemble: the assembler must never panic on arbitrary source text.
func FuzzAssemble(f *testing.F) {
	f.Add("nop\nhalt")
	f.Add("loop:\n\tadd r1, r2, r3\n\tbne r1, r0, loop")
	f.Add(".word 0xdeadbeef\n.space 8")
	f.Add("li r1, 0x12345678\nj nowhere")
	f.Add("lw r1, -4(sp) ; comment")
	f.Add(":::")
	f.Fuzz(func(t *testing.T, src string) {
		img, err := Assemble(0x100000, src)
		if err != nil {
			return
		}
		if len(img)%4 != 0 {
			t.Fatalf("assembled image length %d not word-aligned", len(img))
		}
	})
}
