// Package isa implements SP16, a small 32-bit load/store instruction set
// with an assembler and a cycle-counting interpreter that executes
// programs *on* the simulated MCU: every instruction fetch and every data
// access goes through the bus with the instruction's true program-counter
// value, so the EA-MPU's execution-aware checks operate exactly as in the
// TrustLite hardware — per instruction, not per task. The transaction-
// level trust anchor remains the fast path; SP16 exists to run
// application and malware code at full fidelity (and to demonstrate that
// a single rogue load instruction inside otherwise-benign code faults at
// precisely its own PC).
//
// SP16 at a glance: sixteen 32-bit registers (r0 hardwired to zero,
// r13 = lr and r14 = sp by convention), fixed 32-bit little-endian
// instructions, and four formats:
//
//	R-type:  op rd, rs1, rs2          (ALU)
//	I-type:  op rd, rs1, imm16        (ALU immediate, loads/stores, JALR)
//	B-type:  op rs1, rs2, ±imm14      (branches, word offsets from the branch)
//	J-type:  op rd, ±imm22            (JAL, word offset from the jump)
package isa

import "fmt"

// NumRegs is the register-file size.
const NumRegs = 16

// Register aliases.
const (
	RegZero = 0
	RegLR   = 13
	RegSP   = 14
)

// Opcode identifies an SP16 instruction.
type Opcode uint8

// The SP16 opcode space.
const (
	OpNOP  Opcode = 0
	OpHALT Opcode = 1

	// R-type.
	OpADD  Opcode = 2
	OpSUB  Opcode = 3
	OpAND  Opcode = 4
	OpOR   Opcode = 5
	OpXOR  Opcode = 6
	OpSLL  Opcode = 7
	OpSRL  Opcode = 8
	OpSRA  Opcode = 9
	OpMUL  Opcode = 10
	OpSLTU Opcode = 11

	// I-type (imm16 sign-extended for ADDI/loads/stores/JALR/SLTIU,
	// zero-extended for the logical immediates).
	OpADDI  Opcode = 16
	OpANDI  Opcode = 17
	OpORI   Opcode = 18
	OpXORI  Opcode = 19
	OpSLLI  Opcode = 20
	OpSRLI  Opcode = 21
	OpLUI   Opcode = 22 // rd = imm16 << 16
	OpSLTIU Opcode = 23

	// Memory (I-type addressing: rs1 + signed imm16; SW/SB store rd).
	OpLW Opcode = 24
	OpSW Opcode = 25
	OpLB Opcode = 26 // zero-extends
	OpSB Opcode = 27

	// B-type (signed imm14 in words, relative to the branch instruction).
	OpBEQ  Opcode = 32
	OpBNE  Opcode = 33
	OpBLTU Opcode = 34
	OpBGEU Opcode = 35

	// Jumps. JAL is J-type (signed imm22 in words, relative to the jump);
	// JALR is I-type (absolute rs1 + imm16, word-aligned).
	OpJAL  Opcode = 40
	OpJALR Opcode = 41
)

func (o Opcode) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op%d", uint8(o))
}

var opNames = [64]string{
	OpNOP: "nop", OpHALT: "halt",
	OpADD: "add", OpSUB: "sub", OpAND: "and", OpOR: "or", OpXOR: "xor",
	OpSLL: "sll", OpSRL: "srl", OpSRA: "sra", OpMUL: "mul", OpSLTU: "sltu",
	OpADDI: "addi", OpANDI: "andi", OpORI: "ori", OpXORI: "xori",
	OpSLLI: "slli", OpSRLI: "srli", OpLUI: "lui", OpSLTIU: "sltiu",
	OpLW: "lw", OpSW: "sw", OpLB: "lb", OpSB: "sb",
	OpBEQ: "beq", OpBNE: "bne", OpBLTU: "bltu", OpBGEU: "bgeu",
	OpJAL: "jal", OpJALR: "jalr",
}

// Instr is a decoded SP16 instruction.
type Instr struct {
	Op  Opcode
	Rd  uint8
	Rs1 uint8
	Rs2 uint8
	// Imm holds the sign- or zero-extended immediate, per the opcode's
	// convention (see the opcode comments).
	Imm int32
}

// Field layout within the 32-bit word.
const (
	shiftOp  = 26
	shiftRd  = 22
	shiftRs1 = 18
	shiftRs2 = 14

	maskReg   = 0xF
	maskImm14 = 0x3FFF
	maskImm16 = 0xFFFF
	maskImm22 = 0x3FFFFF
)

// kindOf classifies an opcode's encoding format.
type kind int

const (
	kindNone kind = iota
	kindR
	kindI
	kindB
	kindJ
)

func kindOf(op Opcode) kind {
	switch op {
	case OpNOP, OpHALT:
		return kindNone
	case OpADD, OpSUB, OpAND, OpOR, OpXOR, OpSLL, OpSRL, OpSRA, OpMUL, OpSLTU:
		return kindR
	case OpADDI, OpANDI, OpORI, OpXORI, OpSLLI, OpSRLI, OpLUI, OpSLTIU,
		OpLW, OpSW, OpLB, OpSB, OpJALR:
		return kindI
	case OpBEQ, OpBNE, OpBLTU, OpBGEU:
		return kindB
	case OpJAL:
		return kindJ
	}
	return kindNone
}

// signExtend interprets the low n bits of v as a signed value.
func signExtend(v uint32, n uint) int32 {
	shift := 32 - n
	return int32(v<<shift) >> shift
}

// immIsSigned reports whether an I-type opcode sign-extends its immediate.
func immIsSigned(op Opcode) bool {
	switch op {
	case OpANDI, OpORI, OpXORI, OpSLLI, OpSRLI, OpLUI:
		return false
	}
	return true
}

// Encode packs an instruction. It validates field ranges and returns an
// error rather than silently truncating — an assembler bug must not become
// a mystery at run time.
func Encode(in Instr) (uint32, error) {
	if in.Rd >= NumRegs || in.Rs1 >= NumRegs || in.Rs2 >= NumRegs {
		return 0, fmt.Errorf("isa: register out of range in %v", in)
	}
	w := uint32(in.Op) << shiftOp
	switch kindOf(in.Op) {
	case kindNone:
		if in.Rd != 0 || in.Rs1 != 0 || in.Rs2 != 0 || in.Imm != 0 {
			return 0, fmt.Errorf("isa: %v takes no operands", in.Op)
		}
	case kindR:
		w |= uint32(in.Rd)<<shiftRd | uint32(in.Rs1)<<shiftRs1 | uint32(in.Rs2)<<shiftRs2
	case kindI:
		if immIsSigned(in.Op) {
			if in.Imm < -(1<<15) || in.Imm >= 1<<15 {
				return 0, fmt.Errorf("isa: signed imm16 %d out of range for %v", in.Imm, in.Op)
			}
		} else if in.Imm < 0 || in.Imm >= 1<<16 {
			return 0, fmt.Errorf("isa: unsigned imm16 %d out of range for %v", in.Imm, in.Op)
		}
		w |= uint32(in.Rd)<<shiftRd | uint32(in.Rs1)<<shiftRs1 | uint32(in.Imm)&maskImm16
	case kindB:
		if in.Imm < -(1<<13) || in.Imm >= 1<<13 {
			return 0, fmt.Errorf("isa: branch offset %d out of range", in.Imm)
		}
		w |= uint32(in.Rs1)<<shiftRs1 | uint32(in.Rs2)<<shiftRs2 | uint32(in.Imm)&maskImm14
	case kindJ:
		if in.Imm < -(1<<21) || in.Imm >= 1<<21 {
			return 0, fmt.Errorf("isa: jump offset %d out of range", in.Imm)
		}
		w |= uint32(in.Rd)<<shiftRd | uint32(in.Imm)&maskImm22
	}
	return w, nil
}

// Decode unpacks an instruction word.
func Decode(w uint32) (Instr, error) {
	op := Opcode(w >> shiftOp)
	in := Instr{Op: op}
	switch kindOf(op) {
	case kindNone:
		if op != OpNOP && op != OpHALT {
			return in, fmt.Errorf("isa: illegal opcode %d", uint8(op))
		}
	case kindR:
		in.Rd = uint8(w >> shiftRd & maskReg)
		in.Rs1 = uint8(w >> shiftRs1 & maskReg)
		in.Rs2 = uint8(w >> shiftRs2 & maskReg)
	case kindI:
		in.Rd = uint8(w >> shiftRd & maskReg)
		in.Rs1 = uint8(w >> shiftRs1 & maskReg)
		if immIsSigned(op) {
			in.Imm = signExtend(w&maskImm16, 16)
		} else {
			in.Imm = int32(w & maskImm16)
		}
	case kindB:
		in.Rs1 = uint8(w >> shiftRs1 & maskReg)
		in.Rs2 = uint8(w >> shiftRs2 & maskReg)
		in.Imm = signExtend(w&maskImm14, 14)
	case kindJ:
		in.Rd = uint8(w >> shiftRd & maskReg)
		in.Imm = signExtend(w&maskImm22, 22)
	}
	// Re-encode to reject words with junk in unused fields (an execution
	// attempt on data should fail loudly, not execute "almost" correctly).
	back, err := Encode(in)
	if err != nil {
		return in, err
	}
	if back != w {
		return in, fmt.Errorf("isa: malformed instruction word %#08x", w)
	}
	return in, nil
}

func (in Instr) String() string {
	switch kindOf(in.Op) {
	case kindNone:
		return in.Op.String()
	case kindR:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rd, in.Rs1, in.Rs2)
	case kindI:
		switch in.Op {
		case OpLW, OpLB:
			return fmt.Sprintf("%s r%d, %d(r%d)", in.Op, in.Rd, in.Imm, in.Rs1)
		case OpSW, OpSB:
			return fmt.Sprintf("%s r%d, %d(r%d)", in.Op, in.Rd, in.Imm, in.Rs1)
		case OpLUI:
			return fmt.Sprintf("%s r%d, %#x", in.Op, in.Rd, uint32(in.Imm))
		default:
			return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rd, in.Rs1, in.Imm)
		}
	case kindB:
		return fmt.Sprintf("%s r%d, r%d, %+d", in.Op, in.Rs1, in.Rs2, in.Imm)
	case kindJ:
		return fmt.Sprintf("%s r%d, %+d", in.Op, in.Rd, in.Imm)
	}
	return fmt.Sprintf("%s <unknown format>", in.Op)
}
