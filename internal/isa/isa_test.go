package isa

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Instr{
		{Op: OpNOP},
		{Op: OpHALT},
		{Op: OpADD, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpMUL, Rd: 15, Rs1: 14, Rs2: 13},
		{Op: OpADDI, Rd: 5, Rs1: 6, Imm: -1},
		{Op: OpADDI, Rd: 5, Rs1: 6, Imm: 32767},
		{Op: OpADDI, Rd: 5, Rs1: 6, Imm: -32768},
		{Op: OpORI, Rd: 1, Rs1: 1, Imm: 0xFFFF},
		{Op: OpLUI, Rd: 2, Imm: 0xABCD},
		{Op: OpLW, Rd: 3, Rs1: 4, Imm: 100},
		{Op: OpSW, Rd: 3, Rs1: 4, Imm: -100},
		{Op: OpBEQ, Rs1: 1, Rs2: 2, Imm: -8192},
		{Op: OpBNE, Rs1: 1, Rs2: 2, Imm: 8191},
		{Op: OpJAL, Rd: 13, Imm: -2097152},
		{Op: OpJAL, Rd: 0, Imm: 2097151},
		{Op: OpJALR, Rd: 0, Rs1: 13, Imm: 0},
	}
	for _, in := range cases {
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", in, err)
		}
		back, err := Decode(w)
		if err != nil {
			t.Fatalf("Decode(Encode(%v)) = %#08x: %v", in, w, err)
		}
		if back != in {
			t.Fatalf("round trip: %v → %#08x → %v", in, w, back)
		}
	}
}

func TestEncodeRejectsOutOfRange(t *testing.T) {
	bad := []Instr{
		{Op: OpADD, Rd: 16},
		{Op: OpADDI, Rd: 1, Imm: 32768},
		{Op: OpADDI, Rd: 1, Imm: -32769},
		{Op: OpORI, Rd: 1, Imm: -1},
		{Op: OpORI, Rd: 1, Imm: 0x10000},
		{Op: OpBEQ, Imm: 8192},
		{Op: OpJAL, Imm: 2097152},
		{Op: OpHALT, Rd: 1},
	}
	for _, in := range bad {
		if _, err := Encode(in); err == nil {
			t.Errorf("Encode(%v) succeeded, want error", in)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	// Opcode 63 is unassigned.
	if _, err := Decode(63 << shiftOp); err == nil {
		t.Error("unassigned opcode decoded")
	}
	// NOP with junk operand bits: data masquerading as code.
	if _, err := Decode(0x0000_1234); err == nil {
		t.Error("NOP with junk bits decoded")
	}
	// A typical data word.
	if _, err := Decode(0xdeadbeef); err == nil {
		t.Error("0xdeadbeef decoded as an instruction")
	}
}

func TestDecodeEncodeQuick(t *testing.T) {
	// Any word that decodes must re-encode to itself.
	f := func(w uint32) bool {
		in, err := Decode(w)
		if err != nil {
			return true // rejected is fine
		}
		back, err := Encode(in)
		return err == nil && back == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestInstrStrings(t *testing.T) {
	cases := map[string]Instr{
		"add r1, r2, r3":  {Op: OpADD, Rd: 1, Rs1: 2, Rs2: 3},
		"addi r1, r2, -5": {Op: OpADDI, Rd: 1, Rs1: 2, Imm: -5},
		"lw r3, 8(r4)":    {Op: OpLW, Rd: 3, Rs1: 4, Imm: 8},
		"beq r1, r2, +4":  {Op: OpBEQ, Rs1: 1, Rs2: 2, Imm: 4},
		"jal r13, -2":     {Op: OpJAL, Rd: 13, Imm: -2},
		"halt":            {Op: OpHALT},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String(%+v) = %q, want %q", in, got, want)
		}
	}
}

func TestStopReasonStrings(t *testing.T) {
	for _, r := range []StopReason{StopHalt, StopFault, StopBadInstr, StopBudget, StopReason(9)} {
		if r.String() == "" {
			t.Errorf("stop reason %d has no name", r)
		}
	}
}

func TestOpcodeStrings(t *testing.T) {
	if OpADD.String() != "add" || OpJALR.String() != "jalr" {
		t.Error("known opcode names wrong")
	}
	if Opcode(60).String() != "op60" {
		t.Errorf("unknown opcode formats as %q", Opcode(60).String())
	}
}

func TestInstrStringAllFormats(t *testing.T) {
	// Cover the remaining String branches: LUI, stores and unknown format.
	if s := (Instr{Op: OpLUI, Rd: 2, Imm: 0xAB}).String(); s != "lui r2, 0xab" {
		t.Errorf("LUI string = %q", s)
	}
	if s := (Instr{Op: OpSB, Rd: 1, Rs1: 2, Imm: -3}).String(); s != "sb r1, -3(r2)" {
		t.Errorf("SB string = %q", s)
	}
	if s := (Instr{Op: Opcode(60)}).String(); s == "" {
		t.Error("unknown-format instr has empty string")
	}
}

func TestSignExtend(t *testing.T) {
	if signExtend(0x3FFF, 14) != -1 {
		t.Error("14-bit all-ones should be -1")
	}
	if signExtend(0x1FFF, 14) != 8191 {
		t.Error("14-bit max positive wrong")
	}
	if signExtend(0xFFFF, 16) != -1 {
		t.Error("16-bit all-ones should be -1")
	}
}
