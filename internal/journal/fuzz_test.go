package journal

import (
	"bytes"
	"encoding/binary"
	"testing"

	"proverattest/internal/cluster"
)

// FuzzJournalReplay throws arbitrary bytes at the record replayer — the
// code that consumes whatever a crash left on disk — and asserts the
// replay invariants: never panic, never apply a record whose embedded
// DeviceID disagrees with its key, and account for every dropped record
// (skipped counter or truncated flag, never silence).
func FuzzJournalReplay(f *testing.F) {
	// Seed with a well-formed journal body so the fuzzer starts from valid
	// framing and mutates toward interesting corruption.
	var snap cluster.Snapshot
	snap.State.Counter = 42
	snap.State.NonceSeq = 43
	valid := appendRecord(nil, recPut, "dev-a", &snap)
	valid = appendRecord(valid, recTombstone, "dev-b", nil)
	valid = appendRecord(valid, recClean, "", nil)
	f.Add(valid)
	f.Add(valid[:len(valid)-3])        // torn tail
	f.Add([]byte{})                    // empty file
	f.Add([]byte{0xFF, 0xFF, 0xFF})    // short length prefix
	f.Add(binary.LittleEndian.AppendUint32(nil, 0)) // zero-length record

	// Key/DeviceID mismatch seed: framing intact, embedded ID wrong.
	mis := []byte{recPut}
	mis = binary.LittleEndian.AppendUint16(mis, 5)
	mis = append(mis, "dev-x"...)
	mis = cluster.AppendStatePush(mis, "dev-y", &snap)
	mm := binary.LittleEndian.AppendUint32(nil, uint32(len(mis)))
	f.Add(append(mm, mis...))

	f.Fuzz(func(t *testing.T, data []byte) {
		state := make(map[string]cluster.Snapshot)
		res := replayRecords(data, 1<<20, state)

		// Every applied snapshot must round-trip: re-encoding the record for
		// its map key must embed that same key.
		for id, s := range state {
			frame := cluster.AppendStatePush(nil, id, &s)
			gotID, _, err := cluster.DecodeStatePush(frame)
			if err != nil || gotID != id {
				t.Fatalf("applied state for %q does not round-trip: %v", id, err)
			}
		}

		// Walk the framing ourselves and count parseable put records whose
		// embedded ID matches the key; replay may apply at most those.
		applied := 0
		buf := data
		for len(buf) >= 4 {
			n := binary.LittleEndian.Uint32(buf)
			if n == 0 || n > 1<<20 || uint32(len(buf)-4) < n {
				break
			}
			payload := buf[4 : 4+n]
			buf = buf[4+n:]
			kind, key, body, ok := splitRecord(payload)
			if !ok {
				continue
			}
			switch kind {
			case recPut:
				if id, _, err := cluster.DecodeStatePush(body); err == nil && id == key {
					applied++
				}
			case recTombstone:
				applied++ // deletes count as applied effects
			}
		}
		if len(state) > applied {
			t.Fatalf("replay applied %d entries but only %d records were valid", len(state), applied)
		}

		// Dropping data must always be visible: if the input has bytes but
		// nothing applied and nothing flagged, replay swallowed input.
		if len(bytes.TrimRight(data, "\x00")) > 0 && len(state) == 0 &&
			res.skipped == 0 && !res.truncated && !res.clean && applied > 0 {
			t.Fatal("valid records dropped without accounting")
		}
	})
}
