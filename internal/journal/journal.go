// Package journal is the crash-safe storage engine behind the daemon's
// persistent VerifierStore: an append-only write-behind journal of
// per-device cluster.Snapshot records plus a periodically compacted full
// snapshot, both using the same record framing. A restarted daemon
// replays snapshot-then-journals (last record wins) and recovers every
// device's freshness streams; whether the recovered streams may be
// adopted live-exact or must take a forward freshness jump
// (cluster.Snapshot.JumpForRestart) is decided by the journal's
// durability evidence — a per-record-fsync policy header or a
// clean-shutdown sentinel at end of file.
//
// Layout under the state directory:
//
//	state.snap        full snapshot: header + put records, atomically
//	                  renamed into place at compaction
//	journal-<gen>.wal append-only records since the snapshot; a new
//	                  generation is opened on every daemon start and on
//	                  every compaction, and generations older than the
//	                  snapshot's floor are pruned
//
// Record framing (shared by both files): a u32 little-endian payload
// length, then kind byte, u16-length-prefixed device key, and — for put
// records — the device's state as the exact cluster state-push frame
// (cluster.AppendStatePush), so the peer-link codec and the journal
// speak one snapshot encoding. Replay is tolerant by construction: a
// truncated trailing record (the torn final write of a crash) ends the
// file quietly, and a record whose payload fails to parse — or whose
// embedded DeviceID disagrees with its record key — is skipped and
// counted, never a crash.
//
// The Log is deliberately a single-writer engine: the owning store
// serializes Append/Sync/Compact/Close calls (Stats is safe to read
// concurrently). That is what makes "file order == state capture order"
// cheap to guarantee, which in turn is what makes blind last-record-wins
// replay correct for the monotone freshness streams.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"proverattest/internal/cluster"
)

// FsyncPolicy selects when appended records are forced to stable storage.
type FsyncPolicy int

const (
	// FsyncInterval syncs on a timer (the owner calls Sync): bounded data
	// loss, negligible per-record cost. A crash loses at most the
	// un-synced tail, which the restart-time freshness jump absorbs.
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways syncs every appended record before Append returns: the
	// write-ahead mode. A kill -9 loses nothing that was journaled, so a
	// restart may adopt recovered streams live-exact.
	FsyncAlways
	// FsyncNone never syncs explicitly; durability rides on the OS. Only
	// a clean Close earns live-exact adoption.
	FsyncNone
)

// ParsePolicy reads an -fsync flag value: "always", "none", or an
// interval duration such as "100ms".
func ParsePolicy(s string) (FsyncPolicy, time.Duration, error) {
	switch strings.TrimSpace(s) {
	case "always":
		return FsyncAlways, 0, nil
	case "none":
		return FsyncNone, 0, nil
	}
	d, err := time.ParseDuration(strings.TrimSpace(s))
	if err != nil || d <= 0 {
		return 0, 0, fmt.Errorf("journal: fsync policy %q is not always, none or a positive interval", s)
	}
	return FsyncInterval, d, nil
}

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncNone:
		return "none"
	}
	return "interval"
}

// Options tunes a Log.
type Options struct {
	// Fsync is the durability policy recorded in every journal header —
	// recovery reads the previous run's policy from there.
	Fsync FsyncPolicy
	// MaxRecord bounds one record's payload (default 1 MiB). A length
	// prefix beyond it means the framing itself is corrupt and replay of
	// that file stops.
	MaxRecord uint32
}

// Record kinds.
const (
	recPut       = 1 // key + cluster state-push frame
	recTombstone = 2 // key only: the device left this daemon
	recClean     = 3 // clean-shutdown sentinel, written by Close
)

var (
	journalMagic = [8]byte{'P', 'A', 'J', 'W', 'A', 'L', '1', '\n'}
	snapMagic    = [8]byte{'P', 'A', 'S', 'N', 'A', 'P', '1', '\n'}
)

const (
	journalHeaderLen = 8 + 1 + 8 // magic, policy, generation
	snapHeaderLen    = 8 + 8     // magic, journal-generation floor
	snapName         = "state.snap"
	snapTmpName      = "state.snap.tmp"
	journalPrefix    = "journal-"
	journalSuffix    = ".wal"
)

// Stats is a point-in-time read of the log's counters, safe to call from
// any goroutine (a metrics scrape reads these while the owner appends).
type Stats struct {
	Appends       uint64 // put records appended
	Tombstones    uint64 // tombstone records appended
	Bytes         uint64 // bytes in the live journal generation
	Fsyncs        uint64 // explicit fsync calls on the journal
	Compactions   uint64 // snapshot compactions completed
	ReplaySkipped uint64 // corrupt records skipped during recovery
}

// Recovered is the replayed state of a state directory.
type Recovered struct {
	// Snaps is the last-record-wins device state (tombstoned devices
	// removed).
	Snaps map[string]cluster.Snapshot
	// Exact reports whether the recovered streams are safe to adopt
	// live-exact: the newest journal was written under FsyncAlways, or it
	// ends in a clean-shutdown sentinel. Otherwise the adopter must apply
	// cluster.Snapshot.JumpForRestart first.
	Exact bool
	// Skipped counts corrupt records dropped during replay; Truncated
	// reports whether a torn trailing record was tolerated.
	Skipped   uint64
	Truncated bool
}

// Log is the append side of the engine. Not safe for concurrent use —
// the owner serializes all mutating calls; see the package comment.
type Log struct {
	dir  string
	opts Options

	f     *os.File // current journal generation (nil after Close/Kill)
	gen   uint64
	since atomic.Int64 // appends since the last compaction

	scratch []byte // reused record-encode buffer

	appends       atomic.Uint64
	tombstones    atomic.Uint64
	bytes         atomic.Uint64
	fsyncs        atomic.Uint64
	compactions   atomic.Uint64
	replaySkipped atomic.Uint64

	fsyncObs func(time.Duration) // optional fsync latency observer
}

// ErrClosed is returned by mutating calls after Close or Kill.
var ErrClosed = errors.New("journal: log closed")

// Open replays the state directory (creating it if needed) and opens a
// fresh journal generation for this run's appends. The returned Recovered
// holds the replayed device state and whether it may be adopted exact.
func Open(dir string, opts Options) (*Log, *Recovered, error) {
	if opts.MaxRecord == 0 {
		opts.MaxRecord = 1 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	// A leftover snapshot temp file is a compaction that never reached its
	// atomic rename: dead weight, never read.
	os.Remove(filepath.Join(dir, snapTmpName))

	l := &Log{dir: dir, opts: opts}
	rec, newestGen, err := l.replayAll()
	if err != nil {
		return nil, nil, err
	}
	l.gen = newestGen + 1
	if err := l.openGen(); err != nil {
		return nil, nil, err
	}
	return l, rec, nil
}

// SetFsyncObserver installs a latency observer called with the duration
// of every journal fsync. Like every other mutating call it must be
// serialized by the owner against Append/Sync/Close.
func (l *Log) SetFsyncObserver(fn func(time.Duration)) { l.fsyncObs = fn }

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	return Stats{
		Appends:       l.appends.Load(),
		Tombstones:    l.tombstones.Load(),
		Bytes:         l.bytes.Load(),
		Fsyncs:        l.fsyncs.Load(),
		Compactions:   l.compactions.Load(),
		ReplaySkipped: l.replaySkipped.Load(),
	}
}

// AppendsSinceCompact reports puts+tombstones appended since the last
// compaction (or open) — the owner's compaction trigger.
func (l *Log) AppendsSinceCompact() int { return int(l.since.Load()) }

// Append journals one device's current snapshot. Under FsyncAlways the
// record is on stable storage when Append returns — the write-ahead
// guarantee the issue path relies on.
func (l *Log) Append(deviceID string, snap *cluster.Snapshot) error {
	if l.f == nil {
		return ErrClosed
	}
	l.scratch = appendRecord(l.scratch[:0], recPut, deviceID, snap)
	if err := l.write(l.scratch); err != nil {
		return err
	}
	l.appends.Add(1)
	l.since.Add(1)
	if l.opts.Fsync == FsyncAlways {
		return l.Sync()
	}
	return nil
}

// AppendTombstone journals that deviceID's state left this daemon (a
// cluster handoff drained it, or it was removed).
func (l *Log) AppendTombstone(deviceID string) error {
	if l.f == nil {
		return ErrClosed
	}
	l.scratch = appendRecord(l.scratch[:0], recTombstone, deviceID, nil)
	if err := l.write(l.scratch); err != nil {
		return err
	}
	l.tombstones.Add(1)
	l.since.Add(1)
	if l.opts.Fsync == FsyncAlways {
		return l.Sync()
	}
	return nil
}

// Sync forces appended records to stable storage (the interval policy's
// timer tick calls this; FsyncAlways appends call it per record).
func (l *Log) Sync() error {
	if l.f == nil {
		return ErrClosed
	}
	t0 := time.Now()
	err := l.f.Sync()
	if l.fsyncObs != nil {
		l.fsyncObs(time.Since(t0))
	}
	l.fsyncs.Add(1)
	return err
}

func (l *Log) write(rec []byte) error {
	n, err := l.f.Write(rec)
	l.bytes.Add(uint64(n))
	return err
}

// BeginCompact rotates to a fresh journal generation. The caller must
// capture the full current state *after* BeginCompact returns and before
// any further Append — that ordering (plus stream monotonicity) is what
// makes every record in the new generation supersede the snapshot, so
// last-record-wins replay never regresses a stream.
func (l *Log) BeginCompact() error {
	if l.f == nil {
		return ErrClosed
	}
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.f = nil
	l.gen++
	return l.openGen()
}

// FinishCompact writes the captured state as the new full snapshot
// (write temp, fsync, atomic rename, fsync dir) and prunes journal
// generations the snapshot supersedes. Safe to run while the owner keeps
// appending to the generation BeginCompact opened.
func (l *Log) FinishCompact(state map[string]cluster.Snapshot) error {
	floorGen := l.gen // journals with gen >= this still apply over the snapshot
	tmp := filepath.Join(l.dir, snapTmpName)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	buf := make([]byte, 0, snapHeaderLen+len(state)*256)
	buf = append(buf, snapMagic[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, floorGen)
	// Deterministic record order keeps snapshots byte-comparable in tests.
	ids := make([]string, 0, len(state))
	for id := range state {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		snap := state[id]
		buf = appendRecord(buf, recPut, id, &snap)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, snapName)); err != nil {
		return err
	}
	syncDir(l.dir)
	l.pruneBelow(floorGen)
	l.compactions.Add(1)
	l.since.Store(0)
	return nil
}

// Close flushes, writes the clean-shutdown sentinel and syncs: the marker
// that lets the next Open adopt streams live-exact even under a lazy
// fsync policy.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	l.scratch = appendRecord(l.scratch[:0], recClean, "", nil)
	if err := l.write(l.scratch); err != nil {
		l.f.Close()
		l.f = nil
		return err
	}
	err := l.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// Kill abandons the log without flushing or writing the sentinel — the
// crash-simulation hook restart drills use to model kill -9 in-process.
// Whatever the policy already forced to disk is all a reopen will see.
func (l *Log) Kill() {
	if l.f != nil {
		l.f.Close()
		l.f = nil
	}
}

func (l *Log) openGen() error {
	path := filepath.Join(l.dir, genName(l.gen))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	hdr := make([]byte, 0, journalHeaderLen)
	hdr = append(hdr, journalMagic[:]...)
	hdr = append(hdr, byte(l.opts.Fsync))
	hdr = binary.LittleEndian.AppendUint64(hdr, l.gen)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	// The header is durable before any record: a crash right after open
	// must not leave a record-bearing file whose policy byte never hit
	// disk.
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	syncDir(l.dir)
	l.f = f
	l.bytes.Store(journalHeaderLen)
	return nil
}

func (l *Log) pruneBelow(gen uint64) {
	for _, g := range listGens(l.dir) {
		if g < gen {
			os.Remove(filepath.Join(l.dir, genName(g)))
		}
	}
}

func genName(gen uint64) string {
	return fmt.Sprintf("%s%016x%s", journalPrefix, gen, journalSuffix)
}

func listGens(dir string) []uint64 {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var gens []uint64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, journalPrefix) || !strings.HasSuffix(name, journalSuffix) {
			continue
		}
		hex := strings.TrimSuffix(strings.TrimPrefix(name, journalPrefix), journalSuffix)
		var g uint64
		if _, err := fmt.Sscanf(hex, "%x", &g); err == nil {
			gens = append(gens, g)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens
}

// replayAll reads snapshot-then-journals in generation order, last record
// wins, and decides exactness from the newest journal's durability
// evidence.
func (l *Log) replayAll() (*Recovered, uint64, error) {
	rec := &Recovered{Snaps: make(map[string]cluster.Snapshot), Exact: true}
	floorGen := uint64(0)
	if buf, err := os.ReadFile(filepath.Join(l.dir, snapName)); err == nil {
		if len(buf) >= snapHeaderLen && [8]byte(buf[:8]) == snapMagic {
			floorGen = binary.LittleEndian.Uint64(buf[8:])
			res := replayRecords(buf[snapHeaderLen:], l.opts.MaxRecord, rec.Snaps)
			rec.Skipped += res.skipped
			rec.Truncated = rec.Truncated || res.truncated
		} else {
			// An unreadable snapshot is a total corruption of the compacted
			// base; replaying journals over an unknown base would be
			// freshness-unsafe to call exact.
			rec.Exact = false
			rec.Skipped++
		}
	}
	gens := listGens(l.dir)
	newest := uint64(0)
	for _, g := range gens {
		if g > newest {
			newest = g
		}
		path := filepath.Join(l.dir, genName(g))
		if g < floorGen {
			// Superseded by the snapshot: a crash between rename and prune
			// left it behind.
			os.Remove(path)
			continue
		}
		buf, err := os.ReadFile(path)
		if err != nil {
			return nil, 0, err
		}
		if len(buf) < journalHeaderLen || [8]byte(buf[:8]) != journalMagic {
			// Header never made it to disk: the file holds nothing replayable.
			rec.Exact = false
			rec.Skipped++
			continue
		}
		policy := FsyncPolicy(buf[8])
		res := replayRecords(buf[journalHeaderLen:], l.opts.MaxRecord, rec.Snaps)
		rec.Skipped += res.skipped
		rec.Truncated = rec.Truncated || res.truncated
		// Exactness is per-file evidence: every generation must either have
		// been written under per-record fsync or end in its clean sentinel.
		if policy != FsyncAlways && !res.clean {
			rec.Exact = false
		}
		if res.skipped > 0 || res.truncated {
			rec.Exact = false
		}
	}
	l.replaySkipped.Store(rec.Skipped)
	return rec, newest, nil
}

type replayResult struct {
	skipped   uint64
	truncated bool
	clean     bool // file ends exactly at a clean-shutdown sentinel
}

// replayRecords folds one file's records into state. Tolerances: a
// truncated trailing record stops the file (the torn final write of a
// crash); a record with intact framing but an unparseable payload — or a
// put whose embedded DeviceID disagrees with its record key — is skipped
// and counted; a corrupt length prefix stops the file (the framing
// itself can no longer be trusted).
func replayRecords(buf []byte, maxRecord uint32, state map[string]cluster.Snapshot) replayResult {
	var res replayResult
	for len(buf) > 0 {
		res.clean = false
		if len(buf) < 4 {
			res.truncated = true
			return res
		}
		n := binary.LittleEndian.Uint32(buf)
		if n == 0 || n > maxRecord {
			res.skipped++
			res.truncated = true
			return res
		}
		if uint32(len(buf)-4) < n {
			res.truncated = true
			return res
		}
		payload := buf[4 : 4+n]
		buf = buf[4+n:]
		kind, key, body, ok := splitRecord(payload)
		if !ok {
			res.skipped++
			continue
		}
		switch kind {
		case recPut:
			id, snap, err := cluster.DecodeStatePush(body)
			if err != nil || id != key {
				// A snapshot that parses but names a different device than
				// its record key is a torn or tampered record: applying it
				// would graft one device's freshness onto another.
				res.skipped++
				continue
			}
			state[key] = snap
		case recTombstone:
			delete(state, key)
		case recClean:
			res.clean = len(buf) == 0
		default:
			res.skipped++
		}
	}
	return res
}

// appendRecord frames one record: u32 payload length, kind, u16-prefixed
// key, and (for puts) the cluster state-push frame.
func appendRecord(dst []byte, kind byte, key string, snap *cluster.Snapshot) []byte {
	lenAt := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length back-patched below
	dst = append(dst, kind)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(key)))
	dst = append(dst, key...)
	if kind == recPut {
		dst = cluster.AppendStatePush(dst, key, snap)
	}
	binary.LittleEndian.PutUint32(dst[lenAt:], uint32(len(dst)-lenAt-4))
	return dst
}

func splitRecord(payload []byte) (kind byte, key string, body []byte, ok bool) {
	if len(payload) < 3 {
		return 0, "", nil, false
	}
	kind = payload[0]
	kl := int(binary.LittleEndian.Uint16(payload[1:]))
	if 3+kl > len(payload) {
		return 0, "", nil, false
	}
	return kind, string(payload[3 : 3+kl]), payload[3+kl:], true
}

// syncDir fsyncs a directory so a rename/create is durable; best-effort
// (some filesystems refuse directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync() //nolint:errcheck
		d.Close()
	}
}
