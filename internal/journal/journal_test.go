package journal

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"proverattest/internal/cluster"
)

func testSnap(counter uint64) cluster.Snapshot {
	var s cluster.Snapshot
	s.State.Counter = counter
	s.State.NonceSeq = counter + 1
	s.State.HaveFast = true
	s.State.FastEpoch = 7
	s.State.FastDigest[0] = 0xAB
	s.StatsEpochs = 3
	return s
}

func mustOpen(t *testing.T, dir string, opts Options) (*Log, *Recovered) {
	t.Helper()
	l, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec
}

func TestRoundTripCleanClose(t *testing.T) {
	dir := t.TempDir()
	l, rec := mustOpen(t, dir, Options{Fsync: FsyncNone})
	if len(rec.Snaps) != 0 || !rec.Exact {
		t.Fatalf("fresh dir: got %d snaps exact=%v", len(rec.Snaps), rec.Exact)
	}
	s := testSnap(100)
	if err := l.Append("dev-a", &s); err != nil {
		t.Fatal(err)
	}
	s2 := testSnap(200)
	if err := l.Append("dev-a", &s2); err != nil { // last record wins
		t.Fatal(err)
	}
	sb := testSnap(50)
	if err := l.Append("dev-b", &sb); err != nil {
		t.Fatal(err)
	}
	if err := l.Append("dev-c", &sb); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendTombstone("dev-c"); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec2 := mustOpen(t, dir, Options{Fsync: FsyncNone})
	defer l2.Close()
	if !rec2.Exact {
		t.Error("clean close must recover exact even under FsyncNone")
	}
	if len(rec2.Snaps) != 2 {
		t.Fatalf("want 2 devices, got %d", len(rec2.Snaps))
	}
	got := rec2.Snaps["dev-a"]
	if got.State.Counter != 200 || got.State.NonceSeq != 201 {
		t.Errorf("last-record-wins failed: %+v", got.State)
	}
	if !got.State.HaveFast || got.State.FastEpoch != 7 || got.State.FastDigest[0] != 0xAB {
		t.Errorf("fast record not preserved on exact recovery: %+v", got.State)
	}
	if _, ok := rec2.Snaps["dev-c"]; ok {
		t.Error("tombstoned device resurrected")
	}
}

func TestKillWithoutSentinelIsInexact(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Fsync: FsyncNone})
	s := testSnap(100)
	if err := l.Append("dev-a", &s); err != nil {
		t.Fatal(err)
	}
	l.Kill()

	l2, rec := mustOpen(t, dir, Options{Fsync: FsyncNone})
	defer l2.Close()
	if rec.Exact {
		t.Error("kill -9 under FsyncNone must not recover exact")
	}
	if got := rec.Snaps["dev-a"].State.Counter; got != 100 {
		t.Errorf("record lost: counter=%d", got)
	}
}

func TestFsyncAlwaysKillIsExact(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Fsync: FsyncAlways})
	s := testSnap(100)
	if err := l.Append("dev-a", &s); err != nil {
		t.Fatal(err)
	}
	if l.Stats().Fsyncs == 0 {
		t.Error("FsyncAlways append must fsync")
	}
	l.Kill()

	l2, rec := mustOpen(t, dir, Options{Fsync: FsyncAlways})
	defer l2.Close()
	if !rec.Exact {
		t.Error("per-record fsync journal must recover exact after a kill")
	}
	if got := rec.Snaps["dev-a"].State.Counter; got != 100 {
		t.Errorf("counter=%d", got)
	}
}

func TestTruncatedTailTolerated(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Fsync: FsyncNone})
	sa := testSnap(100)
	sb := testSnap(200)
	if err := l.Append("dev-a", &sa); err != nil {
		t.Fatal(err)
	}
	if err := l.Append("dev-b", &sb); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, genName(1))
	l.Kill()

	// Tear the final record mid-payload: the classic torn write.
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf[:len(buf)-10], 0o644); err != nil {
		t.Fatal(err)
	}

	l2, rec := mustOpen(t, dir, Options{Fsync: FsyncNone})
	defer l2.Close()
	if !rec.Truncated {
		t.Error("truncated tail not reported")
	}
	if rec.Exact {
		t.Error("truncated journal must not be exact")
	}
	if got := rec.Snaps["dev-a"].State.Counter; got != 100 {
		t.Errorf("intact prefix record lost: counter=%d", got)
	}
	if _, ok := rec.Snaps["dev-b"]; ok {
		t.Error("torn record must not be applied")
	}
}

func TestCorruptRecordSkippedWithCounter(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Fsync: FsyncNone})
	sa := testSnap(100)
	if err := l.Append("dev-a", &sa); err != nil {
		t.Fatal(err)
	}
	// Hand-craft a record with intact framing whose payload won't parse.
	junk := []byte{recPut, 2, 0, 'x', 'y', 0xDE, 0xAD}
	frame := binary.LittleEndian.AppendUint32(nil, uint32(len(junk)))
	frame = append(frame, junk...)
	if err := l.write(frame); err != nil {
		t.Fatal(err)
	}
	sb := testSnap(200)
	if err := l.Append("dev-b", &sb); err != nil {
		t.Fatal(err)
	}
	l.Kill()

	l2, rec := mustOpen(t, dir, Options{Fsync: FsyncNone})
	defer l2.Close()
	if rec.Skipped != 1 {
		t.Errorf("skipped=%d, want 1", rec.Skipped)
	}
	if l2.Stats().ReplaySkipped != 1 {
		t.Errorf("stats ReplaySkipped=%d, want 1", l2.Stats().ReplaySkipped)
	}
	if rec.Exact {
		t.Error("journal with skipped records must not be exact")
	}
	// Records after the skipped one still apply.
	if got := rec.Snaps["dev-b"].State.Counter; got != 200 {
		t.Errorf("post-skip record lost: counter=%d", got)
	}
}

func TestKeyMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Fsync: FsyncNone})
	// A put record whose key is dev-a but whose embedded state-push frame
	// names dev-b: grafting one device's freshness onto another.
	s := testSnap(999)
	payload := []byte{recPut}
	payload = binary.LittleEndian.AppendUint16(payload, 5)
	payload = append(payload, "dev-a"...)
	payload = cluster.AppendStatePush(payload, "dev-b", &s)
	frame := binary.LittleEndian.AppendUint32(nil, uint32(len(payload)))
	frame = append(frame, payload...)
	if err := l.write(frame); err != nil {
		t.Fatal(err)
	}
	l.Kill()

	l2, rec := mustOpen(t, dir, Options{Fsync: FsyncNone})
	defer l2.Close()
	if len(rec.Snaps) != 0 {
		t.Fatalf("mismatched record applied: %v", rec.Snaps)
	}
	if rec.Skipped != 1 {
		t.Errorf("skipped=%d, want 1", rec.Skipped)
	}
}

func TestCompactionPrunesAndPreserves(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Fsync: FsyncNone})
	sa := testSnap(100)
	sb := testSnap(200)
	if err := l.Append("dev-a", &sa); err != nil {
		t.Fatal(err)
	}
	if err := l.Append("dev-b", &sb); err != nil {
		t.Fatal(err)
	}
	if l.AppendsSinceCompact() != 2 {
		t.Errorf("since=%d", l.AppendsSinceCompact())
	}

	if err := l.BeginCompact(); err != nil {
		t.Fatal(err)
	}
	// Capture after rotation, as the contract requires; then keep appending
	// to the new generation before the snapshot lands.
	captured := map[string]cluster.Snapshot{"dev-a": sa, "dev-b": sb}
	sa2 := testSnap(300)
	if err := l.Append("dev-a", &sa2); err != nil {
		t.Fatal(err)
	}
	if err := l.FinishCompact(captured); err != nil {
		t.Fatal(err)
	}
	if l.Stats().Compactions != 1 {
		t.Errorf("compactions=%d", l.Stats().Compactions)
	}

	// The pre-compaction generation must be gone; snapshot + new gen remain.
	if _, err := os.Stat(filepath.Join(dir, genName(1))); !os.IsNotExist(err) {
		t.Error("superseded journal generation not pruned")
	}
	if _, err := os.Stat(filepath.Join(dir, snapName)); err != nil {
		t.Errorf("snapshot missing: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec := mustOpen(t, dir, Options{Fsync: FsyncNone})
	defer l2.Close()
	if !rec.Exact {
		t.Error("clean close after compaction should be exact")
	}
	if got := rec.Snaps["dev-a"].State.Counter; got != 300 {
		t.Errorf("journal-over-snapshot ordering broken: counter=%d, want 300", got)
	}
	if got := rec.Snaps["dev-b"].State.Counter; got != 200 {
		t.Errorf("snapshot record lost: counter=%d", got)
	}
}

func TestMultiGenerationRecovery(t *testing.T) {
	dir := t.TempDir()
	// Three runs, no compaction: recovery must fold all generations in order.
	for i, c := range []uint64{100, 200, 300} {
		l, _ := mustOpen(t, dir, Options{Fsync: FsyncNone})
		s := testSnap(c)
		if err := l.Append("dev-a", &s); err != nil {
			t.Fatal(err)
		}
		if i == 2 {
			l.Kill()
		} else if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
	l, rec := mustOpen(t, dir, Options{Fsync: FsyncNone})
	defer l.Close()
	if got := rec.Snaps["dev-a"].State.Counter; got != 300 {
		t.Errorf("counter=%d, want 300 (newest generation wins)", got)
	}
	if rec.Exact {
		t.Error("killed newest generation must poison exactness")
	}
}

func TestPolicyHeaderSurvivesPolicyChange(t *testing.T) {
	dir := t.TempDir()
	// Run 1 journals under FsyncNone and dies dirty; run 2 opens with
	// FsyncAlways. Exactness must be judged by the *previous* run's header,
	// not the new policy.
	l, _ := mustOpen(t, dir, Options{Fsync: FsyncNone})
	s := testSnap(100)
	if err := l.Append("dev-a", &s); err != nil {
		t.Fatal(err)
	}
	l.Kill()

	l2, rec := mustOpen(t, dir, Options{Fsync: FsyncAlways})
	defer l2.Close()
	if rec.Exact {
		t.Error("policy upgrade must not launder an under-synced journal into exact")
	}
}

func TestCorruptSnapshotFileInexact(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Fsync: FsyncNone})
	sa := testSnap(100)
	if err := l.Append("dev-a", &sa); err != nil {
		t.Fatal(err)
	}
	if err := l.BeginCompact(); err != nil {
		t.Fatal(err)
	}
	if err := l.FinishCompact(map[string]cluster.Snapshot{"dev-a": sa}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Smash the snapshot magic.
	path := filepath.Join(dir, snapName)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0xFF
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, rec := mustOpen(t, dir, Options{Fsync: FsyncNone})
	defer l2.Close()
	if rec.Exact {
		t.Error("corrupt snapshot base must not be exact")
	}
}

func TestParsePolicy(t *testing.T) {
	if p, _, err := ParsePolicy("always"); err != nil || p != FsyncAlways {
		t.Errorf("always: %v %v", p, err)
	}
	if p, _, err := ParsePolicy("none"); err != nil || p != FsyncNone {
		t.Errorf("none: %v %v", p, err)
	}
	if p, d, err := ParsePolicy("100ms"); err != nil || p != FsyncInterval || d.Milliseconds() != 100 {
		t.Errorf("100ms: %v %v %v", p, d, err)
	}
	for _, bad := range []string{"", "sometimes", "-5s", "0s"} {
		if _, _, err := ParsePolicy(bad); err == nil {
			t.Errorf("ParsePolicy(%q) accepted", bad)
		}
	}
}

func TestAppendAfterCloseErrors(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	s := testSnap(1)
	if err := l.Append("dev-a", &s); err != ErrClosed {
		t.Errorf("Append after Close: %v", err)
	}
	if err := l.AppendTombstone("dev-a"); err != ErrClosed {
		t.Errorf("AppendTombstone after Close: %v", err)
	}
	if err := l.Sync(); err != ErrClosed {
		t.Errorf("Sync after Close: %v", err)
	}
}

func TestLeftoverTmpSnapshotRemoved(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, snapTmpName), []byte("half"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, rec := mustOpen(t, dir, Options{})
	defer l.Close()
	if !rec.Exact || len(rec.Snaps) != 0 {
		t.Errorf("tmp leftover affected recovery: exact=%v snaps=%d", rec.Exact, len(rec.Snaps))
	}
	if _, err := os.Stat(filepath.Join(dir, snapTmpName)); !os.IsNotExist(err) {
		t.Error("leftover tmp snapshot not removed")
	}
}
