package mcu

import (
	"proverattest/internal/crypto/cost"
	"proverattest/internal/crypto/sha1"
)

// BootROMTask is the code region of the immutable first-stage bootloader.
// It occupies the bottom of ROM; the trust-anchor code regions follow it.
var BootROMTask = Region{Start: ROMRegion.Start, Size: 4 * KiB}

// BootPolicy is the protection configuration baked into ROM: the reference
// measurement of the application image, the EA-MPU rules to program, and
// the interrupt lines to enable before handing control to the application.
// This is the paper's secure-boot step (§6.2): "This initial software sets
// up memory protection rules in the EA-MPU and locks it down to preclude
// further changes."
type BootPolicy struct {
	// RefDigest is the expected SHA-1 of the measured boot region, stored
	// in ROM at manufacture time.
	RefDigest [sha1.Size]byte
	// MeasuredRegion is the image verified at boot (normally the
	// application's flash region).
	MeasuredRegion Region
	// Rules are programmed into the EA-MPU, lowest index first.
	Rules []Rule
	// LockMPU sets the lockdown bit after programming.
	LockMPU bool
	// IDTBase, if non-zero, is written to the interrupt controller, and
	// LockIDT freezes it afterwards.
	IDTBase Addr
	LockIDT bool
	// EnableIRQ lists interrupt lines to unmask.
	EnableIRQ []int
}

// BootReport records what secure boot did, for tests and scenario logs.
type BootReport struct {
	OK            bool
	Reason        string
	MeasuredBytes uint32
	Cycles        cost.Cycles
	RulesSet      int
}

// SecureBoot runs the ROM bootloader as a job on the MCU: it measures the
// configured region, refuses to boot on a digest mismatch (halting the
// core), and otherwise programs and locks the EA-MPU and interrupt
// configuration. onDone receives the report at the boot job's completion
// time.
func (m *MCU) SecureBoot(policy BootPolicy, onDone func(BootReport)) {
	task, ok := m.TaskByName("boot-rom")
	if !ok {
		task = m.RegisterTask(&Task{Name: "boot-rom", Code: BootROMTask, Uninterruptible: true})
	}
	var report BootReport
	m.Submit(task, func(e *Exec) {
		report = m.runBoot(e, policy)
	}, func(*Exec) {
		if onDone != nil {
			onDone(report)
		}
	})
}

func (m *MCU) runBoot(e *Exec, policy BootPolicy) BootReport {
	report := BootReport{MeasuredBytes: policy.MeasuredRegion.Size}

	// Measure the application image through the bus (boot runs before any
	// MPU rules exist, so the reads are unrestricted).
	img, fault := e.Read(policy.MeasuredRegion.Start, policy.MeasuredRegion.Size)
	if fault != nil {
		report.Reason = "boot: cannot read measured region: " + fault.Error()
		m.Halt(report.Reason)
		return report
	}
	e.Tick(cost.SHA1Hash(len(img)))
	digest := sha1.Sum(img)
	if digest != policy.RefDigest {
		report.Reason = "boot: measured image digest does not match reference"
		m.Halt(report.Reason)
		return report
	}

	// Program the protection rules over the bus, exactly as the ROM
	// firmware would.
	for i, r := range policy.Rules {
		fields := []struct {
			off uint32
			v   uint32
		}{
			{mpuRuleCodeStart, uint32(r.Code.Start)},
			{mpuRuleCodeEnd, uint32(r.Code.End())},
			{mpuRuleDataStart, uint32(r.Data.Start)},
			{mpuRuleDataEnd, uint32(r.Data.End())},
			{mpuRulePerm, uint32(r.Perm)},
			{mpuRuleEnable, boolWord(r.Enabled)},
		}
		for _, f := range fields {
			if fault := e.Store32(MPURuleAddr(i, f.off), f.v); fault != nil {
				report.Reason = "boot: MPU programming failed: " + fault.Error()
				m.Halt(report.Reason)
				return report
			}
		}
		report.RulesSet++
	}
	if policy.LockMPU {
		if fault := e.Store32(MPULockAddr(), 1); fault != nil {
			report.Reason = "boot: MPU lockdown failed: " + fault.Error()
			m.Halt(report.Reason)
			return report
		}
	}

	if policy.IDTBase != 0 {
		if fault := e.Store32(IRQIDTBaseAddr, uint32(policy.IDTBase)); fault != nil {
			report.Reason = "boot: IDT base programming failed: " + fault.Error()
			m.Halt(report.Reason)
			return report
		}
		if policy.LockIDT {
			if fault := e.Store32(IRQIDTLockAddr, 1); fault != nil {
				report.Reason = "boot: IDT lock failed: " + fault.Error()
				m.Halt(report.Reason)
				return report
			}
		}
	}
	var imr uint32
	if len(policy.EnableIRQ) > 0 {
		for _, line := range policy.EnableIRQ {
			imr |= 1 << uint(line)
		}
		if fault := e.Store32(IRQIMRAddr, imr); fault != nil {
			report.Reason = "boot: IRQ unmask failed: " + fault.Error()
			m.Halt(report.Reason)
			return report
		}
	}

	// A handful of cycles for the register programming itself.
	e.Tick(cost.Cycles(16 * (len(policy.Rules) + 4)))
	report.OK = true
	report.Cycles = e.Cycles()
	return report
}
