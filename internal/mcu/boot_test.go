package mcu

import (
	"bytes"
	"testing"

	"proverattest/internal/crypto/cost"
	"proverattest/internal/crypto/sha1"
	"proverattest/internal/sim"
)

// provisionApp writes a firmware image into flash and returns its digest,
// standing in for the factory programming step.
func provisionApp(m *MCU, size uint32) [sha1.Size]byte {
	img := make([]byte, size)
	for i := range img {
		img[i] = byte(i*7 + 3)
	}
	m.Space.DirectWrite(FlashRegion.Start, img)
	return sha1.Sum(img)
}

func TestSecureBootAcceptsGenuineImage(t *testing.T) {
	m := newTestMCU(t)
	digest := provisionApp(m, 64*KiB)
	anchor := Region{Start: ROMRegion.Start + 0x1000, Size: 0x1000}
	key := Region{Start: FlashRegion.Start + 0x7F000, Size: 32}
	var report BootReport
	m.SecureBoot(BootPolicy{
		RefDigest:      digest,
		MeasuredRegion: Region{Start: FlashRegion.Start, Size: 64 * KiB},
		Rules: []Rule{
			{Code: anchor, Data: key, Perm: PermRead, Enabled: true},
		},
		LockMPU:   true,
		IDTBase:   SRAMRegion.Start,
		LockIDT:   true,
		EnableIRQ: []int{5},
	}, func(r BootReport) { report = r })
	m.K.Run()

	if !report.OK {
		t.Fatalf("secure boot refused a genuine image: %s", report.Reason)
	}
	if halted, _ := m.Halted(); halted {
		t.Fatal("MCU halted after successful boot")
	}
	if !m.MPU.Locked() {
		t.Fatal("MPU not locked after boot")
	}
	if report.RulesSet != 1 {
		t.Fatalf("RulesSet = %d, want 1", report.RulesSet)
	}
	if m.IRQ.IDTBase() != SRAMRegion.Start {
		t.Fatal("IDT base not programmed")
	}
	if !m.IRQ.Enabled(5) {
		t.Fatal("IRQ line 5 not enabled")
	}
	// The key rule is live: application reads fault.
	if _, f := m.Bus.Read(FlashRegion.Start, key.Start, 4); f == nil {
		t.Fatal("key unprotected after boot")
	}
}

func TestSecureBootRefusesTamperedImage(t *testing.T) {
	m := newTestMCU(t)
	digest := provisionApp(m, 64*KiB)
	// Tamper one byte after the reference digest was recorded: a malware
	// implant in flash.
	m.Space.DirectWrite(FlashRegion.Start+0x1234, []byte{0xEE})
	var report BootReport
	m.SecureBoot(BootPolicy{
		RefDigest:      digest,
		MeasuredRegion: Region{Start: FlashRegion.Start, Size: 64 * KiB},
	}, func(r BootReport) { report = r })
	m.K.Run()

	if report.OK {
		t.Fatal("secure boot accepted a tampered image")
	}
	if halted, reason := m.Halted(); !halted {
		t.Fatal("MCU not halted after boot refusal")
	} else if reason == "" {
		t.Fatal("halt without reason")
	}
}

func TestSecureBootMeasurementCost(t *testing.T) {
	// Boot-time measurement of a 64 KB image costs the modeled SHA-1 time,
	// so boot completes ≈5.9 ms of simulated time later (1025 blocks ×
	// 0.092 ms plus register programming).
	m := newTestMCU(t)
	digest := provisionApp(m, 64*KiB)
	var doneAt sim.Time
	m.SecureBoot(BootPolicy{
		RefDigest:      digest,
		MeasuredRegion: Region{Start: FlashRegion.Start, Size: 64 * KiB},
	}, func(BootReport) { doneAt = m.K.Now() })
	m.K.Run()
	wantMs := cost.SHA1Hash(64 * KiB).Millis()
	if doneAt.Milliseconds() < wantMs || doneAt.Milliseconds() > wantMs+0.1 {
		t.Fatalf("boot finished at %.3f ms, want ≈%.3f ms", doneAt.Milliseconds(), wantMs)
	}
}

func TestSecureBootLockdownSurvivesReconfigurationAttempts(t *testing.T) {
	m := newTestMCU(t)
	digest := provisionApp(m, 4*KiB)
	key := Region{Start: FlashRegion.Start + 0x7F000, Size: 32}
	anchor := Region{Start: ROMRegion.Start + 0x1000, Size: 0x1000}
	m.SecureBoot(BootPolicy{
		RefDigest:      digest,
		MeasuredRegion: Region{Start: FlashRegion.Start, Size: 4 * KiB},
		Rules:          []Rule{{Code: anchor, Data: key, Perm: PermRead, Enabled: true}},
		LockMPU:        true,
	}, nil)
	m.K.Run()

	// Runtime adversary (controls all application software) tries to
	// disable the key rule and to unlock the MPU: both must fail.
	malware := m.RegisterTask(&Task{Name: "malware", Code: Region{Start: FlashRegion.Start + 0x8000, Size: 0x1000}})
	var disableFault, unlockFault *Fault
	m.Submit(malware, func(e *Exec) {
		disableFault = e.Store32(MPURuleAddr(0, mpuRuleEnable), 0)
		unlockFault = e.Store32(MPULockAddr(), 0)
	}, nil)
	m.K.Run()
	if disableFault == nil {
		t.Fatal("malware disabled an MPU rule after lockdown")
	}
	if unlockFault == nil {
		t.Fatal("malware unlocked the MPU")
	}
	if _, f := m.Bus.Read(FlashRegion.Start+0x8000, key.Start, 4); f == nil {
		t.Fatal("key readable after attempted reconfiguration")
	}
}

func TestSecureBootTwiceReusesROMTask(t *testing.T) {
	m := newTestMCU(t)
	digest := provisionApp(m, 4*KiB)
	policy := BootPolicy{
		RefDigest:      digest,
		MeasuredRegion: Region{Start: FlashRegion.Start, Size: 4 * KiB},
	}
	ok := 0
	m.SecureBoot(policy, func(r BootReport) {
		if r.OK {
			ok++
		}
	})
	m.K.Run()
	// Warm reboot: reset the MPU and boot again.
	m.MPU.Reset()
	m.SecureBoot(policy, func(r BootReport) {
		if r.OK {
			ok++
		}
	})
	m.K.Run()
	if ok != 2 {
		t.Fatalf("successful boots = %d, want 2", ok)
	}
}

func TestBootReportDigestMatchesImage(t *testing.T) {
	m := newTestMCU(t)
	img := bytes.Repeat([]byte{0xA5}, 8*KiB)
	m.Space.DirectWrite(FlashRegion.Start, img)
	var report BootReport
	m.SecureBoot(BootPolicy{
		RefDigest:      sha1.Sum(img),
		MeasuredRegion: Region{Start: FlashRegion.Start, Size: 8 * KiB},
	}, func(r BootReport) { report = r })
	m.K.Run()
	if !report.OK {
		t.Fatalf("boot failed: %s", report.Reason)
	}
	if report.MeasuredBytes != 8*KiB {
		t.Fatalf("MeasuredBytes = %d, want %d", report.MeasuredBytes, 8*KiB)
	}
}
