package mcu

import (
	"errors"
	"fmt"

	"proverattest/internal/sim"
)

// Clock MMIO windows inside ClockWindow: the wide real-time counter (the
// paper's Figure 1a design) and the short LSB counter with wrap interrupt
// (Figure 1b). Both can be present; a device configuration decides which
// one the trust anchor consults.
var (
	WideClockWindow = Region{Start: ClockWindow.Start + 0x00, Size: 0x40}
	LSBClockWindow  = Region{Start: ClockWindow.Start + 0x40, Size: 0x40}
)

// WideClock register layout (word offsets):
//
//	0x00 VALUE_LO  low 32 bits of the counter (read-only register file)
//	0x04 VALUE_HI  high 32 bits
//	0x08 SET_LO    staging register for a software clock-set
//	0x0c SET_HI    writing here commits (SET_HI<<32 | SET_LO) as the value
//
// The set registers model a settable real-time counter. In the paper's
// protected configurations an EA-MPU rule covers this window so that no
// software can write it — the hardware counter is then effectively
// read-only, which is what defeats Adv_roam's clock-reset move (§5, §6.2).
const (
	wideRegValueLo = 0x00
	wideRegValueHi = 0x04
	wideRegSetLo   = 0x08
	wideRegSetHi   = 0x0c
)

// WideClock is a free-running real-time counter clocked from the CPU cycle
// counter through a power-of-two prescaler: value = (cycles >> Prescaler)
// mod 2^Width. A 64-bit register at full rate wraps after ~24,372 years at
// 24 MHz; a 32-bit register with a 2^20 divider wraps after ~6 years with
// 42 ms resolution (§6.3).
type WideClock struct {
	m         *MCU
	width     uint // counter width in bits (32 or 64)
	prescaler uint // divide the 24 MHz cycle stream by 2^prescaler

	offset uint64 // added to the raw cycle count when software sets the clock
	setLo  uint32
}

// NewWideClock creates and maps the counter.
func NewWideClock(m *MCU, width, prescaler uint) *WideClock {
	if width == 0 || width > 64 {
		panic(fmt.Sprintf("mcu: wide clock width %d out of range", width))
	}
	c := &WideClock{m: m, width: width, prescaler: prescaler}
	m.Space.MapDevice(WideClockWindow, c)
	return c
}

// Width reports the counter width in bits.
func (c *WideClock) Width() uint { return c.width }

// Prescaler reports the divider exponent.
func (c *WideClock) Prescaler() uint { return c.prescaler }

func (c *WideClock) mask() uint64 {
	if c.width == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << c.width) - 1
}

// Value returns the current counter reading.
func (c *WideClock) Value() uint64 {
	raw := uint64(c.m.CycleNow()) + c.offset
	return (raw >> c.prescaler) & c.mask()
}

// set rewinds or advances the counter to v by adjusting the offset.
func (c *WideClock) set(v uint64) {
	cycles := uint64(c.m.CycleNow())
	c.offset = (v&c.mask())<<c.prescaler - cycles
}

// WrapPeriodCycles reports the raw cycle count between wrap-arounds
// (saturating at the maximum uint64 for the 64-bit full-rate case).
func (c *WideClock) WrapPeriodCycles() uint64 {
	shift := c.width + c.prescaler
	if shift >= 64 {
		return ^uint64(0)
	}
	return uint64(1) << shift
}

var _ Device = (*WideClock)(nil)

// DeviceName implements Device.
func (c *WideClock) DeviceName() string { return "wide-clock" }

// Load implements Device.
func (c *WideClock) Load(off uint32) (uint32, error) {
	switch off {
	case wideRegValueLo:
		return uint32(c.Value()), nil
	case wideRegValueHi:
		return uint32(c.Value() >> 32), nil
	case wideRegSetLo:
		return c.setLo, nil
	case wideRegSetHi:
		return 0, nil
	}
	return 0, fmt.Errorf("wide-clock: reserved register %#x", off)
}

// Store implements Device.
func (c *WideClock) Store(off uint32, v uint32) error {
	switch off {
	case wideRegValueLo, wideRegValueHi:
		return errors.New("wide-clock: value registers are read-only")
	case wideRegSetLo:
		c.setLo = v
		return nil
	case wideRegSetHi:
		c.set(uint64(v)<<32 | uint64(c.setLo))
		return nil
	}
	return fmt.Errorf("wide-clock: reserved register %#x", off)
}

// Bus addresses of the wide clock's registers.
var (
	WideClockValueAddr = WideClockWindow.Start + wideRegValueLo
	WideClockSetLoAddr = WideClockWindow.Start + wideRegSetLo
	WideClockSetHiAddr = WideClockWindow.Start + wideRegSetHi
)

// LSBClock register layout (word offsets):
//
//	0x00 VALUE  current short-term counter value (read-only)
const lsbRegValue = 0x00

// LSBClock is the Figure 1b short-term counter: Clock_LSB counts prescaled
// cycles in a narrow register and raises an interrupt each time it wraps
// (①); trusted Code_Clock then increments the software-maintained
// Clock_MSB (③). It mirrors the timer designs of Siskiyou Peak and the
// MSP430 family, which is why the paper prices it at zero extra hardware.
type LSBClock struct {
	m         *MCU
	width     uint
	prescaler uint
	line      int

	running   bool
	nextWrap  uint64 // raw cycle count of the next wrap
	wrapEvent *sim.Event
	wraps     uint64
}

// NewLSBClock creates and maps the counter; Start arms the wrap interrupt.
func NewLSBClock(m *MCU, width, prescaler uint, irqLine int) *LSBClock {
	if width == 0 || width+prescaler >= 63 {
		panic(fmt.Sprintf("mcu: LSB clock width %d + prescaler %d out of range", width, prescaler))
	}
	c := &LSBClock{m: m, width: width, prescaler: prescaler, line: irqLine}
	m.Space.MapDevice(LSBClockWindow, c)
	return c
}

// Width reports the counter width in bits.
func (c *LSBClock) Width() uint { return c.width }

// IRQLine reports the interrupt line the wrap event asserts.
func (c *LSBClock) IRQLine() int { return c.line }

// Wraps reports how many wrap events have occurred since Start.
func (c *LSBClock) Wraps() uint64 { return c.wraps }

// WrapPeriodCycles is the raw cycle count between wraps: 2^(width+prescaler).
func (c *LSBClock) WrapPeriodCycles() uint64 {
	return uint64(1) << (c.width + c.prescaler)
}

// Value returns the current counter reading.
func (c *LSBClock) Value() uint32 {
	raw := uint64(c.m.CycleNow())
	return uint32((raw >> c.prescaler) & ((uint64(1) << c.width) - 1))
}

// Start arms the periodic wrap interrupt. Idempotent.
func (c *LSBClock) Start() {
	if c.running {
		return
	}
	c.running = true
	period := c.WrapPeriodCycles()
	now := uint64(c.m.CycleNow())
	c.nextWrap = (now/period + 1) * period
	c.scheduleWrap()
}

// Stop disarms the wrap interrupt (hardware reset path; software cannot
// reach this — it would instead try to mask the IRQ line or patch the IDT,
// which is exactly what the protected configurations prevent).
func (c *LSBClock) Stop() {
	c.running = false
	if c.wrapEvent != nil {
		c.wrapEvent.Cancel()
		c.wrapEvent = nil
	}
}

func (c *LSBClock) scheduleWrap() {
	// cycles → ns: 1 cycle = 125/3 ns. Rounding up keeps the event at or
	// after the true wrap instant so Value() has already wrapped when the
	// handler reads it.
	ns := (c.nextWrap*125 + 2) / 3
	when := sim.Time(ns)
	if when < c.m.K.Now() {
		when = c.m.K.Now()
	}
	c.wrapEvent = c.m.K.At(when, c.onWrap)
}

func (c *LSBClock) onWrap() {
	if !c.running {
		return
	}
	c.wraps++
	c.m.IRQ.Raise(c.line)
	c.nextWrap += c.WrapPeriodCycles()
	c.scheduleWrap()
}

var _ Device = (*LSBClock)(nil)

// DeviceName implements Device.
func (c *LSBClock) DeviceName() string { return "lsb-clock" }

// Load implements Device.
func (c *LSBClock) Load(off uint32) (uint32, error) {
	if off == lsbRegValue {
		return c.Value(), nil
	}
	return 0, fmt.Errorf("lsb-clock: reserved register %#x", off)
}

// Store implements Device.
func (c *LSBClock) Store(off uint32, v uint32) error {
	return errors.New("lsb-clock: counter is read-only")
}

// LSBClockValueAddr is the bus address of the LSB counter value register.
var LSBClockValueAddr = LSBClockWindow.Start + lsbRegValue
