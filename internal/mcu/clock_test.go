package mcu

import (
	"testing"

	"proverattest/internal/crypto/cost"
	"proverattest/internal/sim"
)

func TestWideClock64TracksCycles(t *testing.T) {
	m := newTestMCU(t)
	clk := NewWideClock(m, 64, 0)
	m.K.RunUntil(2 * sim.Second)
	got := clk.Value()
	if got < 47_999_990 || got > 48_000_010 {
		t.Fatalf("64-bit clock after 2 s = %d, want ≈48e6", got)
	}
}

func TestWideClock32PrescalerResolution(t *testing.T) {
	// §6.3: a 32-bit register with a 2^20 divider has 42 ms resolution at
	// 24 MHz and a ~6 year wrap period.
	m := newTestMCU(t)
	clk := NewWideClock(m, 32, 20)
	m.K.RunUntil(sim.Second)
	got := clk.Value()
	// 24e6 cycles >> 20 = 22.888… → 22 ticks.
	if got != 22 {
		t.Fatalf("32-bit/2^20 clock after 1 s = %d ticks, want 22", got)
	}
	// Wrap period: 2^52 cycles ≈ 5.95 years.
	years := float64(clk.WrapPeriodCycles()) / float64(cost.ClockHz) / (365.25 * 24 * 3600)
	if years < 5.9 || years > 6.0 {
		t.Fatalf("wrap period = %.2f years, want ≈5.95", years)
	}
}

func TestWideClock64WrapLifetime(t *testing.T) {
	// §6.3: a 64-bit register incremented every cycle wraps after
	// 24,372.6 years at 24 MHz.
	m := newTestMCU(t)
	clk := NewWideClock(m, 64, 0)
	years := float64(clk.WrapPeriodCycles()) / float64(cost.ClockHz) / (365.25 * 24 * 3600)
	if years < 24_000 || years > 24_500 {
		t.Fatalf("64-bit wrap period = %.1f years, want ≈24,372.6", years)
	}
}

func TestWideClockMMIORead(t *testing.T) {
	m := newTestMCU(t)
	NewWideClock(m, 64, 0)
	m.K.RunUntil(sim.Second)
	lo, f := m.Bus.Load32(FlashRegion.Start, WideClockValueAddr)
	if f != nil {
		t.Fatal(f)
	}
	hi, f := m.Bus.Load32(FlashRegion.Start, WideClockValueAddr+4)
	if f != nil {
		t.Fatal(f)
	}
	v := uint64(hi)<<32 | uint64(lo)
	if v < 23_999_990 || v > 24_000_010 {
		t.Fatalf("MMIO clock read = %d, want ≈24e6", v)
	}
}

func TestWideClockSoftwareSet(t *testing.T) {
	// The set path exists in hardware; protection is the EA-MPU's job.
	// This is the lever Adv_roam pulls in the clock-reset attack (§5).
	m := newTestMCU(t)
	clk := NewWideClock(m, 64, 0)
	m.K.RunUntil(sim.Second)
	pc := FlashRegion.Start
	if f := m.Bus.Store32(pc, WideClockSetLoAddr, 1000); f != nil {
		t.Fatal(f)
	}
	if f := m.Bus.Store32(pc, WideClockSetHiAddr, 0); f != nil {
		t.Fatal(f)
	}
	if got := clk.Value(); got != 1000 {
		t.Fatalf("after set: Value() = %d, want 1000", got)
	}
	// The clock keeps running from the new value.
	m.K.RunUntil(2 * sim.Second)
	got := clk.Value()
	if got < 24_000_900 || got > 24_001_100 {
		t.Fatalf("1 s after set: Value() = %d, want ≈24e6+1000", got)
	}
}

func TestWideClockSetRespectsPrescalerAndWidth(t *testing.T) {
	m := newTestMCU(t)
	clk := NewWideClock(m, 32, 20)
	m.K.RunUntil(sim.Second)
	clk.set(7)
	if got := clk.Value(); got != 7 {
		t.Fatalf("set(7) then Value() = %d", got)
	}
}

func TestWideClockValueRegistersReadOnly(t *testing.T) {
	m := newTestMCU(t)
	NewWideClock(m, 64, 0)
	if f := m.Bus.Store32(FlashRegion.Start, WideClockValueAddr, 0); f == nil {
		t.Fatal("store to VALUE_LO succeeded")
	}
}

func TestWideClockMPUWriteProtection(t *testing.T) {
	// Protected configuration: an EA-MPU rule covering the clock window,
	// readable by everyone is NOT expressible with one rule, so the paper's
	// design grants the window to trusted code only; here we verify the
	// write path is closed to the application while the anchor reads fine.
	m := newTestMCU(t)
	clk := NewWideClock(m, 64, 0)
	anchor := Region{Start: ROMRegion.Start + 0x1000, Size: 0x1000}
	if err := m.MPU.SetRule(0, Rule{Code: anchor, Data: WideClockWindow, Perm: PermRead, Enabled: true}); err != nil {
		t.Fatal(err)
	}
	m.K.RunUntil(sim.Second)
	before := clk.Value()
	// Adversarial set from application code: denied by the MPU.
	if f := m.Bus.Store32(FlashRegion.Start, WideClockSetLoAddr, 0); f == nil {
		t.Fatal("application wrote the protected clock window")
	}
	if f := m.Bus.Store32(FlashRegion.Start, WideClockSetHiAddr, 0); f == nil {
		t.Fatal("application committed a clock set")
	}
	if clk.Value() < before {
		t.Fatal("clock moved backwards despite protection")
	}
	// The anchor can still read it.
	if _, f := m.Bus.Load32(anchor.Start, WideClockValueAddr); f != nil {
		t.Fatalf("anchor clock read faulted: %v", f)
	}
}

func TestLSBClockWrapsRaiseIRQ(t *testing.T) {
	m := newTestMCU(t)
	// width 20, prescaler 0: wrap every 2^20 cycles ≈ 43.7 ms.
	clk := NewLSBClock(m, 20, 0, 5)
	handled := 0
	isr := m.RegisterTask(&Task{
		Name:    "clock-isr",
		Code:    Region{Start: ROMRegion.Start + 0x2000, Size: 0x800},
		Handler: func(e *Exec) { handled++; e.Tick(50) },
	})
	_ = isr
	// Build an IDT in SRAM: line 5 → ISR entry.
	idtBase := SRAMRegion.Start
	m.Space.DirectStore32(idtBase+5*4, uint32(ROMRegion.Start+0x2000))
	m.IRQ.Store(irqRegIDTBase, uint32(idtBase))
	m.IRQ.Store(irqRegIMR, 1<<5)
	clk.Start()

	m.K.RunUntil(sim.Second)
	// 24e6 / 2^20 ≈ 22.9 wraps in one second.
	if handled < 22 || handled > 23 {
		t.Fatalf("ISR ran %d times in 1 s, want 22–23", handled)
	}
	if clk.Wraps() != uint64(handled) {
		t.Fatalf("Wraps() = %d, handled = %d", clk.Wraps(), handled)
	}
}

func TestLSBClockMaskedIRQLosesTicks(t *testing.T) {
	// The attack the paper warns about: if software can mask the timer
	// line, the software clock silently stops.
	m := newTestMCU(t)
	clk := NewLSBClock(m, 20, 0, 5)
	m.RegisterTask(&Task{
		Name:    "clock-isr",
		Code:    Region{Start: ROMRegion.Start + 0x2000, Size: 0x800},
		Handler: func(e *Exec) {},
	})
	idtBase := SRAMRegion.Start
	m.Space.DirectStore32(idtBase+5*4, uint32(ROMRegion.Start+0x2000))
	m.IRQ.Store(irqRegIDTBase, uint32(idtBase))
	// IMR left at zero: line masked.
	clk.Start()
	m.K.RunUntil(sim.Second)
	if m.IRQ.MaskedDrops() < 22 {
		t.Fatalf("MaskedDrops = %d, want ≥22", m.IRQ.MaskedDrops())
	}
	if m.JobsRun != 0 {
		t.Fatalf("masked ISR still ran %d jobs", m.JobsRun)
	}
}

func TestLSBClockValueReadOnly(t *testing.T) {
	m := newTestMCU(t)
	NewLSBClock(m, 20, 0, 5)
	if f := m.Bus.Store32(FlashRegion.Start, LSBClockValueAddr, 0); f == nil {
		t.Fatal("store to LSB counter succeeded")
	}
	v, f := m.Bus.Load32(FlashRegion.Start, LSBClockValueAddr)
	if f != nil {
		t.Fatal(f)
	}
	if v != 0 {
		t.Fatalf("LSB value at t=0 is %d, want 0", v)
	}
}

func TestLSBClockStop(t *testing.T) {
	m := newTestMCU(t)
	clk := NewLSBClock(m, 16, 0, 5)
	clk.Start()
	clk.Start() // idempotent
	clk.Stop()
	m.K.RunUntil(sim.Second)
	if clk.Wraps() != 0 {
		t.Fatalf("stopped clock still wrapped %d times", clk.Wraps())
	}
}

func TestLSBClockPendingDuringLongJob(t *testing.T) {
	// A wrap during a busy window is delivered at job completion; a second
	// wrap in the same window is lost (missed), modelling the single-depth
	// hardware pend flag and SMART's uninterruptible attestation runs.
	m := newTestMCU(t)
	clk := NewLSBClock(m, 20, 0, 5) // wrap ≈ every 43.7 ms
	handled := 0
	m.RegisterTask(&Task{
		Name:    "clock-isr",
		Code:    Region{Start: ROMRegion.Start + 0x2000, Size: 0x800},
		Handler: func(e *Exec) { handled++ },
	})
	idtBase := SRAMRegion.Start
	m.Space.DirectStore32(idtBase+5*4, uint32(ROMRegion.Start+0x2000))
	m.IRQ.Store(irqRegIDTBase, uint32(idtBase))
	m.IRQ.Store(irqRegIMR, 1<<5)
	clk.Start()

	app := appTask(m, "app", 0)
	// A 100 ms uninterruptible job spans ≥2 wraps: one pends, the rest miss.
	m.Submit(app, func(e *Exec) { e.Tick(cost.FromMillis(100)) }, nil)
	m.K.RunUntil(200 * sim.Millisecond)
	if handled == 0 {
		t.Fatal("pended wrap was never delivered")
	}
	if m.IRQ.Missed() == 0 {
		t.Fatal("expected at least one missed wrap during the 100 ms job")
	}
}
