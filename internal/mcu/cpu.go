package mcu

import (
	"fmt"

	"proverattest/internal/crypto/cost"
	"proverattest/internal/sim"
)

// Task is a unit of firmware identity: a name, the program-counter region
// its code occupies, and an optional IRQ handler entry. The simulator is
// transaction-level — task bodies are Go closures — but every memory access
// a body makes is checked against the EA-MPU using the task's code region,
// which is the property (execution-aware access control) the paper's
// mitigations are built on.
type Task struct {
	Name string
	Code Region
	// Uninterruptible marks code that must run to completion with
	// interrupts held off, like SMART's ROM-resident attestation code.
	// Interrupts raised meanwhile stay pending (one deep); further
	// occurrences are counted as missed.
	Uninterruptible bool
	// Handler runs when an interrupt vector dispatches to this task's
	// entry point (Code.Start). Tasks that are never interrupt targets
	// leave it nil.
	Handler func(*Exec)
}

type job struct {
	task   *Task
	fn     func(*Exec)
	onDone func(*Exec)
}

// MCU is the simulated prover microcontroller. All state mutation happens
// on the simulation kernel's single thread; the type is not safe for
// concurrent use, by design (the hardware it models is single-core).
type MCU struct {
	K     *sim.Kernel
	Space *AddressSpace
	MPU   *EAMPU
	Bus   *Bus
	IRQ   *IRQController

	tasks   []*Task
	byName  map[string]*Task
	byEntry map[Addr]*Task

	busy      bool
	busyUntil sim.Time
	queue     []job

	halted     bool
	haltReason string

	// ActiveCycles accumulates all cycles spent executing jobs, the basis
	// for the energy model.
	ActiveCycles cost.Cycles
	// JobsRun counts completed jobs, for test assertions.
	JobsRun uint64
}

// Config selects the MCU's synthesis-time parameters.
type Config struct {
	// MPURules is the EA-MPU rule capacity #r (TrustLite-style,
	// boot-programmable).
	MPURules int
	// HardwiredRules, when non-nil, builds a SMART-style MPU instead:
	// these rules are fixed in silicon, MPURules is ignored, and no
	// software — including secure boot — can alter the table.
	HardwiredRules []Rule
}

// New constructs an MCU with the standard memory map on the given kernel.
func New(k *sim.Kernel, cfg Config) *MCU {
	space := NewAddressSpace()
	var mpu *EAMPU
	if cfg.HardwiredRules != nil {
		mpu = NewHardwiredEAMPU(cfg.HardwiredRules)
	} else {
		mpu = NewEAMPU(cfg.MPURules)
	}
	m := &MCU{
		K:       k,
		Space:   space,
		MPU:     mpu,
		Bus:     NewBus(space, mpu),
		byName:  make(map[string]*Task),
		byEntry: make(map[Addr]*Task),
	}
	m.Bus.now = k.Now
	m.IRQ = newIRQController(m)
	space.MapDevice(MPUWindow, mpu)
	space.MapDevice(IRQWindow, m.IRQ)
	return m
}

// CycleNow converts the kernel's current time to CPU cycles at 24 MHz.
func (m *MCU) CycleNow() cost.Cycles {
	return cost.Cycles(uint64(m.K.Now()) * 3 / 125)
}

// Halted reports whether the MCU has stopped (e.g. secure-boot refusal).
func (m *MCU) Halted() (bool, string) { return m.halted, m.haltReason }

// Halt stops the MCU: queued and future jobs are dropped.
func (m *MCU) Halt(reason string) {
	m.halted = true
	m.haltReason = reason
	m.queue = nil
}

// ClearHalt releases a halt, as a hardware reset line would.
func (m *MCU) ClearHalt() {
	m.halted = false
	m.haltReason = ""
}

// RegisterTask adds firmware identity t. Names must be unique; entry
// points (Code.Start) must be unique so interrupt dispatch is unambiguous.
func (m *MCU) RegisterTask(t *Task) *Task {
	if t.Name == "" {
		panic("mcu: task without a name")
	}
	if _, dup := m.byName[t.Name]; dup {
		panic(fmt.Sprintf("mcu: duplicate task name %q", t.Name))
	}
	if _, dup := m.byEntry[t.Code.Start]; dup {
		panic(fmt.Sprintf("mcu: duplicate task entry point %v", t.Code.Start))
	}
	m.tasks = append(m.tasks, t)
	m.byName[t.Name] = t
	m.byEntry[t.Code.Start] = t
	return t
}

// TaskByName looks up registered firmware.
func (m *MCU) TaskByName(name string) (*Task, bool) {
	t, ok := m.byName[name]
	return t, ok
}

func (m *MCU) taskByEntry(entry Addr) (*Task, bool) {
	t, ok := m.byEntry[entry]
	return t, ok
}

// Busy reports whether a job is currently executing.
func (m *MCU) Busy() bool { return m.busy }

// Submit queues fn to run as task t. If the MCU is idle it starts
// immediately (at the current simulated time); otherwise it runs after the
// current job and any previously queued work. onDone, if non-nil, is called
// at the job's completion time with the finished execution context.
func (m *MCU) Submit(t *Task, fn func(*Exec), onDone func(*Exec)) {
	if m.halted {
		return
	}
	j := job{task: t, fn: fn, onDone: onDone}
	if m.busy {
		m.queue = append(m.queue, j)
		return
	}
	m.start(j)
}

// submitFront queues an interrupt-handler job ahead of ordinary work.
func (m *MCU) submitFront(t *Task, fn func(*Exec)) {
	if m.halted {
		return
	}
	j := job{task: t, fn: fn}
	if m.busy {
		m.queue = append([]job{j}, m.queue...)
		return
	}
	m.start(j)
}

// start executes a job. The body runs immediately (its memory effects are
// atomic at the start time) and the cycles it accumulated determine how
// long the MCU stays busy; completion — and therefore delivery of pended
// interrupts and the next queued job — happens that much later on the
// kernel timeline. This models SMART/TrustLite-style run-to-completion
// firmware with interrupt latency bounded by the current job's length.
func (m *MCU) start(j job) {
	m.busy = true
	e := &Exec{m: m, task: j.task, startCycle: m.CycleNow()}
	j.fn(e)
	m.ActiveCycles += e.cycles
	m.busyUntil = m.K.Now() + e.cycles.Duration()
	m.K.At(m.busyUntil, func() { m.complete(j, e) })
}

func (m *MCU) complete(j job, e *Exec) {
	m.JobsRun++
	// onDone runs with the core still marked busy: a continuation that
	// submits follow-up work (e.g. the next measurement chunk) must queue
	// behind jobs that arrived meanwhile, or chained jobs would starve
	// everything else and chunked execution could never interleave.
	if j.onDone != nil {
		j.onDone(e)
	}
	m.busy = false
	if m.halted {
		return
	}
	// Interrupts pended during the job dispatch first...
	m.IRQ.deliverPending()
	// ...then the next queued job, unless an ISR claimed the core.
	if !m.busy && len(m.queue) > 0 {
		next := m.queue[0]
		m.queue = m.queue[1:]
		m.start(next)
	}
}

// Exec is the execution context handed to a running task body. All bus
// traffic flows through it, stamped with the task's code region, and Tick
// accumulates the modeled cycle cost of computation.
type Exec struct {
	m          *MCU
	task       *Task
	pc         Addr
	pcSet      bool
	startCycle cost.Cycles
	cycles     cost.Cycles
	faults     []*Fault
}

// Task returns the firmware identity this context executes as.
func (e *Exec) Task() *Task { return e.task }

// PC returns the program-counter value used for EA-MPU checks: the task's
// code entry by default, or the instruction-accurate value maintained by
// the ISA interpreter.
func (e *Exec) PC() Addr {
	if e.pcSet {
		return e.pc
	}
	return e.task.Code.Start
}

// SetPC tracks the real program counter during instruction-level execution
// (internal/isa). It models the hardware PC the EA-MPU snoops; closure-
// style firmware has no reason to call it — a closure's effective PC is
// its task's code region, which is exactly what the default provides.
func (e *Exec) SetPC(pc Addr) {
	e.pc = pc
	e.pcSet = true
}

// Tick charges c cycles of computation to the task.
func (e *Exec) Tick(c cost.Cycles) { e.cycles += c }

// Cycles reports the cycles accumulated so far.
func (e *Exec) Cycles() cost.Cycles { return e.cycles }

// CycleNow returns the MCU cycle counter as seen from inside the job: the
// start-of-job counter plus the work performed so far.
func (e *Exec) CycleNow() cost.Cycles { return e.startCycle + e.cycles }

// Faults returns the access faults this job has incurred.
func (e *Exec) Faults() []*Fault { return e.faults }

func (e *Exec) noteFault(f *Fault) {
	if f != nil {
		e.faults = append(e.faults, f)
	}
}

// Read copies n bytes from addr, subject to protection checks.
func (e *Exec) Read(addr Addr, n uint32) ([]byte, *Fault) {
	data, f := e.m.Bus.Read(e.PC(), addr, n)
	e.noteFault(f)
	return data, f
}

// Write stores data at addr, subject to protection checks.
func (e *Exec) Write(addr Addr, data []byte) *Fault {
	f := e.m.Bus.Write(e.PC(), addr, data)
	e.noteFault(f)
	return f
}

// Load32 reads a 32-bit word (memory or MMIO register).
func (e *Exec) Load32(addr Addr) (uint32, *Fault) {
	v, f := e.m.Bus.Load32(e.PC(), addr)
	e.noteFault(f)
	return v, f
}

// Store32 writes a 32-bit word (memory or MMIO register).
func (e *Exec) Store32(addr Addr, v uint32) *Fault {
	f := e.m.Bus.Store32(e.PC(), addr, v)
	e.noteFault(f)
	return f
}

// Load64 reads two consecutive 32-bit registers/words as one 64-bit value
// (low word first).
func (e *Exec) Load64(addr Addr) (uint64, *Fault) {
	lo, f := e.Load32(addr)
	if f != nil {
		return 0, f
	}
	hi, f := e.Load32(addr + 4)
	if f != nil {
		return 0, f
	}
	return uint64(hi)<<32 | uint64(lo), nil
}
