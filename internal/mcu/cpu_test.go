package mcu

import (
	"testing"

	"proverattest/internal/crypto/cost"
	"proverattest/internal/sim"
)

func appTask(m *MCU, name string, offset uint32) *Task {
	return m.RegisterTask(&Task{
		Name: name,
		Code: Region{Start: FlashRegion.Start + Addr(offset), Size: 0x1000},
	})
}

func TestSubmitRunsJobAndAccountsCycles(t *testing.T) {
	m := newTestMCU(t)
	task := appTask(m, "app", 0)
	var doneAt sim.Time
	m.Submit(task, func(e *Exec) {
		e.Tick(24_000) // 1 ms at 24 MHz
	}, func(e *Exec) {
		doneAt = m.K.Now()
		if e.Cycles() != 24_000 {
			t.Errorf("Cycles() = %d, want 24000", e.Cycles())
		}
	})
	m.K.Run()
	if doneAt.Milliseconds() < 0.999 || doneAt.Milliseconds() > 1.001 {
		t.Fatalf("completion at %v, want ≈1ms", doneAt)
	}
	if m.ActiveCycles != 24_000 {
		t.Fatalf("ActiveCycles = %d, want 24000", m.ActiveCycles)
	}
	if m.JobsRun != 1 {
		t.Fatalf("JobsRun = %d, want 1", m.JobsRun)
	}
}

func TestJobsQueueFIFO(t *testing.T) {
	m := newTestMCU(t)
	task := appTask(m, "app", 0)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		m.Submit(task, func(e *Exec) {
			e.Tick(1000)
			order = append(order, i)
		}, nil)
	}
	m.K.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("execution order %v, want [0 1 2]", order)
	}
	if m.ActiveCycles != 3000 {
		t.Fatalf("ActiveCycles = %d, want 3000", m.ActiveCycles)
	}
}

func TestBusyWindowSerialisesJobs(t *testing.T) {
	m := newTestMCU(t)
	task := appTask(m, "app", 0)
	var secondStart sim.Time
	m.Submit(task, func(e *Exec) { e.Tick(cost.Cycles(cost.ClockHz)) }, nil) // 1 s
	m.Submit(task, func(e *Exec) {}, func(e *Exec) { secondStart = m.K.Now() })
	if !m.Busy() {
		t.Fatal("MCU not busy after submit")
	}
	m.K.Run()
	if secondStart.Seconds() < 0.999 {
		t.Fatalf("second job finished at %v, want after the first job's 1 s window", secondStart)
	}
}

func TestHaltDropsWork(t *testing.T) {
	m := newTestMCU(t)
	task := appTask(m, "app", 0)
	ran := 0
	m.Submit(task, func(e *Exec) { ran++; e.Tick(100) }, nil)
	m.Halt("test halt")
	m.Submit(task, func(e *Exec) { ran++ }, nil)
	m.K.Run()
	if ran != 1 {
		t.Fatalf("ran = %d jobs, want only the pre-halt one", ran)
	}
	if h, reason := m.Halted(); !h || reason != "test halt" {
		t.Fatalf("Halted() = %v %q", h, reason)
	}
	m.ClearHalt()
	m.Submit(task, func(e *Exec) { ran++ }, nil)
	m.K.Run()
	if ran != 2 {
		t.Fatal("MCU did not resume after ClearHalt")
	}
}

func TestExecFaultRecording(t *testing.T) {
	m := newTestMCU(t)
	// Protect a RAM page from everyone but ROM.
	secret := Region{Start: RAMRegion.Start + 0x1000, Size: 64}
	if err := m.MPU.SetRule(0, Rule{Code: ROMRegion, Data: secret, Perm: PermRead | PermWrite, Enabled: true}); err != nil {
		t.Fatal(err)
	}
	task := appTask(m, "malware", 0x2000)
	var sawFault bool
	m.Submit(task, func(e *Exec) {
		if _, f := e.Read(secret.Start, 16); f != nil {
			sawFault = true
		}
		if f := e.Write(secret.Start, []byte{1}); f == nil {
			t.Error("protected write succeeded")
		}
	}, func(e *Exec) {
		if len(e.Faults()) != 2 {
			t.Errorf("Faults() recorded %d, want 2", len(e.Faults()))
		}
	})
	m.K.Run()
	if !sawFault {
		t.Fatal("protected read did not fault")
	}
}

func TestExecCycleNowAdvancesWithinJob(t *testing.T) {
	m := newTestMCU(t)
	task := appTask(m, "app", 0)
	m.Submit(task, func(e *Exec) {
		start := e.CycleNow()
		e.Tick(500)
		if e.CycleNow() != start+500 {
			t.Errorf("CycleNow did not advance with Tick: %d -> %d", start, e.CycleNow())
		}
	}, nil)
	m.K.Run()
}

func TestCycleNowTracksKernelTime(t *testing.T) {
	m := newTestMCU(t)
	m.K.RunUntil(sim.Second)
	got := m.CycleNow()
	if got < 23_999_999 || got > 24_000_001 {
		t.Fatalf("CycleNow after 1 s = %d, want ≈24e6", got)
	}
}

func TestRegisterTaskValidation(t *testing.T) {
	m := newTestMCU(t)
	appTask(m, "app", 0)
	for _, fn := range []func(){
		func() { appTask(m, "app", 0x4000) },       // duplicate name
		func() { appTask(m, "other", 0) },          // duplicate entry
		func() { m.RegisterTask(&Task{Name: ""}) }, // empty name
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid task registration did not panic")
				}
			}()
			fn()
		}()
	}
	if _, ok := m.TaskByName("app"); !ok {
		t.Fatal("TaskByName failed for registered task")
	}
	if _, ok := m.TaskByName("ghost"); ok {
		t.Fatal("TaskByName found unregistered task")
	}
}

func TestLoad64(t *testing.T) {
	m := newTestMCU(t)
	task := appTask(m, "app", 0)
	m.Space.DirectStore32(RAMRegion.Start, 0xddccbbaa)
	m.Space.DirectStore32(RAMRegion.Start+4, 0x44332211)
	m.Submit(task, func(e *Exec) {
		v, f := e.Load64(RAMRegion.Start)
		if f != nil {
			t.Errorf("Load64 faulted: %v", f)
			return
		}
		if v != 0x44332211ddccbbaa {
			t.Errorf("Load64 = %#x, want 0x44332211ddccbbaa", v)
		}
	}, nil)
	m.K.Run()
}

func TestSubmitFrontPreemptsQueue(t *testing.T) {
	m := newTestMCU(t)
	app := appTask(m, "app", 0)
	isr := appTask(m, "isr", 0x4000)
	var order []string
	m.Submit(app, func(e *Exec) { e.Tick(100); order = append(order, "job1") }, nil)
	m.Submit(app, func(e *Exec) { order = append(order, "job2") }, nil)
	m.submitFront(isr, func(e *Exec) { order = append(order, "isr") })
	m.K.Run()
	want := []string{"job1", "isr", "job2"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}
