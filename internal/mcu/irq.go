package mcu

import (
	"errors"
	"fmt"
)

// NumIRQLines is the interrupt controller's line count.
const NumIRQLines = 32

// IRQ controller register layout (word offsets within IRQWindow):
//
//	0x00 IMR       interrupt mask; bit set = line enabled
//	0x04 IDT_BASE  address of the in-memory interrupt descriptor table
//	0x08 IDT_LOCK  write 1 to freeze IDT_BASE (the paper: "the location of
//	               the IDT itself must be immutable")
//	0x0c MISSED    wrap/interrupt occurrences lost while one was pending
//	               (read-only diagnostic)
//	0x10 SPURIOUS  dispatches whose IDT entry matched no code entry point
const (
	irqRegIMR      = 0x00
	irqRegIDTBase  = 0x04
	irqRegIDTLock  = 0x08
	irqRegMissed   = 0x0c
	irqRegSpurious = 0x10
)

// IRQController models the prover's interrupt hardware. Vector dispatch
// reads the IDT directly (hardware access, no MPU involvement); what the
// EA-MPU protects is the IDT's *memory*, so that compromised software
// cannot redirect or suppress the clock-wrap handler (§6.2, Figure 1b ②).
type IRQController struct {
	m *MCU

	imr      uint32
	idtBase  Addr
	idtLock  bool
	pending  uint32
	missed   uint32
	spurious uint32
	masked   uint64 // raises dropped because the line was disabled
}

func newIRQController(m *MCU) *IRQController {
	return &IRQController{m: m}
}

// IDTBase reports the configured IDT location.
func (c *IRQController) IDTBase() Addr { return c.idtBase }

// Missed reports interrupts lost because one was already pending.
func (c *IRQController) Missed() uint32 { return c.missed }

// Spurious reports dispatches to unknown entry points.
func (c *IRQController) Spurious() uint32 { return c.spurious }

// MaskedDrops reports raises dropped by the interrupt mask.
func (c *IRQController) MaskedDrops() uint64 { return c.masked }

// Enabled reports whether a line is unmasked.
func (c *IRQController) Enabled(line int) bool {
	return c.imr&(1<<uint(line)) != 0
}

// Raise asserts an interrupt line. Disabled lines drop the event — which is
// precisely why the paper requires the timer mask to be tamper-proof. If
// the core is idle the handler dispatches immediately; if busy, one
// occurrence is held pending and additional occurrences are counted as
// missed (single-depth hardware pend flag).
func (c *IRQController) Raise(line int) {
	if line < 0 || line >= NumIRQLines {
		panic(fmt.Sprintf("mcu: IRQ line %d out of range", line))
	}
	if c.m.halted {
		return
	}
	bit := uint32(1) << uint(line)
	if c.imr&bit == 0 {
		c.masked++
		return
	}
	if c.m.busy {
		if c.pending&bit != 0 {
			c.missed++
			return
		}
		c.pending |= bit
		return
	}
	c.dispatch(line)
}

// deliverPending dispatches pended interrupts in line order. Called by the
// MCU at job completion.
func (c *IRQController) deliverPending() {
	for line := 0; line < NumIRQLines && c.pending != 0; line++ {
		bit := uint32(1) << uint(line)
		if c.pending&bit == 0 {
			continue
		}
		c.pending &^= bit
		c.dispatch(line)
		if c.m.busy {
			return // the ISR claimed the core; the rest stay pended
		}
	}
}

// dispatch performs the hardware vector fetch and starts the handler.
func (c *IRQController) dispatch(line int) {
	if c.idtBase == 0 {
		c.spurious++
		return
	}
	entryAddr := c.idtBase + Addr(4*line)
	if _, ok := regionOf(entryAddr); !ok || MMIORegion.Contains(entryAddr) {
		c.spurious++
		return
	}
	entry := Addr(c.m.Space.DirectLoad32(entryAddr))
	task, ok := c.m.taskByEntry(entry)
	if !ok || task.Handler == nil {
		c.spurious++
		return
	}
	c.m.submitFront(task, task.Handler)
}

var _ Device = (*IRQController)(nil)

// DeviceName implements Device.
func (c *IRQController) DeviceName() string { return "irq-controller" }

// Load implements Device.
func (c *IRQController) Load(off uint32) (uint32, error) {
	switch off {
	case irqRegIMR:
		return c.imr, nil
	case irqRegIDTBase:
		return uint32(c.idtBase), nil
	case irqRegIDTLock:
		return boolWord(c.idtLock), nil
	case irqRegMissed:
		return c.missed, nil
	case irqRegSpurious:
		return c.spurious, nil
	}
	return 0, fmt.Errorf("irq: reserved register %#x", off)
}

// Store implements Device.
func (c *IRQController) Store(off uint32, v uint32) error {
	switch off {
	case irqRegIMR:
		c.imr = v
		return nil
	case irqRegIDTBase:
		if c.idtLock {
			return errors.New("irq: IDT base is locked")
		}
		c.idtBase = Addr(v)
		return nil
	case irqRegIDTLock:
		if v == 1 {
			c.idtLock = true
		} else if c.idtLock {
			return errors.New("irq: IDT lock cannot be cleared by software")
		}
		return nil
	case irqRegMissed, irqRegSpurious:
		return errors.New("irq: diagnostic registers are read-only")
	}
	return fmt.Errorf("irq: reserved register %#x", off)
}

// Bus addresses of the controller's registers, for firmware and attacks.
var (
	IRQIMRAddr     = IRQWindow.Start + irqRegIMR
	IRQIDTBaseAddr = IRQWindow.Start + irqRegIDTBase
	IRQIDTLockAddr = IRQWindow.Start + irqRegIDTLock
)
