package mcu

import (
	"testing"
)

// irqFixture registers a handler task and an IDT with line → entry.
func irqFixture(t *testing.T) (*MCU, *int) {
	t.Helper()
	m := newTestMCU(t)
	handled := new(int)
	m.RegisterTask(&Task{
		Name:    "isr",
		Code:    Region{Start: ROMRegion.Start + 0x3000, Size: 0x400},
		Handler: func(e *Exec) { *handled++; e.Tick(10) },
	})
	idtBase := SRAMRegion.Start + 0x100
	m.Space.DirectStore32(idtBase+3*4, uint32(ROMRegion.Start+0x3000))
	if err := m.IRQ.Store(irqRegIDTBase, uint32(idtBase)); err != nil {
		t.Fatal(err)
	}
	if err := m.IRQ.Store(irqRegIMR, 1<<3); err != nil {
		t.Fatal(err)
	}
	return m, handled
}

func TestRaiseDispatchesWhenIdle(t *testing.T) {
	m, handled := irqFixture(t)
	m.IRQ.Raise(3)
	m.K.Run()
	if *handled != 1 {
		t.Fatalf("handled = %d, want 1", *handled)
	}
}

func TestRaiseMaskedLineDrops(t *testing.T) {
	m, handled := irqFixture(t)
	m.IRQ.Raise(7) // not unmasked
	m.K.Run()
	if *handled != 0 {
		t.Fatal("masked line dispatched a handler")
	}
	if m.IRQ.MaskedDrops() != 1 {
		t.Fatalf("MaskedDrops = %d, want 1", m.IRQ.MaskedDrops())
	}
}

func TestRaisePendsWhileBusy(t *testing.T) {
	m, handled := irqFixture(t)
	app := appTask(m, "app", 0)
	m.Submit(app, func(e *Exec) {
		e.Tick(1000)
		// Raised mid-window (from the model's perspective, during the job).
		m.IRQ.Raise(3)
		m.IRQ.Raise(3) // second occurrence while pending: missed
		m.IRQ.Raise(3) // third: also missed
	}, nil)
	m.K.Run()
	if *handled != 1 {
		t.Fatalf("handled = %d, want 1 (single-depth pend)", *handled)
	}
	if m.IRQ.Missed() != 2 {
		t.Fatalf("Missed() = %d, want 2", m.IRQ.Missed())
	}
}

func TestDispatchWithoutIDTIsSpurious(t *testing.T) {
	m := newTestMCU(t)
	if err := m.IRQ.Store(irqRegIMR, 1<<3); err != nil {
		t.Fatal(err)
	}
	m.IRQ.Raise(3)
	m.K.Run()
	if m.IRQ.Spurious() != 1 {
		t.Fatalf("Spurious = %d, want 1", m.IRQ.Spurious())
	}
}

func TestDispatchToUnknownEntryIsSpurious(t *testing.T) {
	m, handled := irqFixture(t)
	// Corrupt the IDT entry to point at garbage — the adversary's IDT-patch
	// move. Dispatch must not execute anything.
	idtBase := Addr(0)
	if v, err := m.IRQ.Load(irqRegIDTBase); err == nil {
		idtBase = Addr(v)
	}
	m.Space.DirectStore32(idtBase+3*4, uint32(RAMRegion.Start+0x9999))
	m.IRQ.Raise(3)
	m.K.Run()
	if *handled != 0 {
		t.Fatal("handler ran despite corrupted IDT entry")
	}
	if m.IRQ.Spurious() != 1 {
		t.Fatalf("Spurious = %d, want 1", m.IRQ.Spurious())
	}
}

func TestIDTLock(t *testing.T) {
	m, _ := irqFixture(t)
	if err := m.IRQ.Store(irqRegIDTLock, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.IRQ.Store(irqRegIDTBase, uint32(RAMRegion.Start)); err == nil {
		t.Fatal("IDT base rewritten after lock")
	}
	if err := m.IRQ.Store(irqRegIDTLock, 0); err == nil {
		t.Fatal("IDT lock cleared by software")
	}
	// Idempotent re-lock is fine.
	if err := m.IRQ.Store(irqRegIDTLock, 1); err != nil {
		t.Fatal(err)
	}
}

func TestIRQRegistersReadback(t *testing.T) {
	m, _ := irqFixture(t)
	v, err := m.IRQ.Load(irqRegIMR)
	if err != nil || v != 1<<3 {
		t.Fatalf("IMR readback = %d, %v", v, err)
	}
	if _, err := m.IRQ.Load(0x40); err == nil {
		t.Fatal("reserved register load succeeded")
	}
	if err := m.IRQ.Store(irqRegMissed, 0); err == nil {
		t.Fatal("diagnostic register store succeeded")
	}
}

func TestRaiseOutOfRangePanics(t *testing.T) {
	m, _ := irqFixture(t)
	defer func() {
		if recover() == nil {
			t.Error("Raise(64) did not panic")
		}
	}()
	m.IRQ.Raise(64)
}

func TestRaiseWhileHaltedIgnored(t *testing.T) {
	m, handled := irqFixture(t)
	m.Halt("halted")
	m.IRQ.Raise(3)
	m.K.Run()
	if *handled != 0 {
		t.Fatal("halted MCU dispatched an interrupt")
	}
}

func TestIMRProtectedByMPURule(t *testing.T) {
	// The paper: "disabling the timer interrupt must also be prevented."
	// Cover the IRQ window with a rule granting access to boot ROM only.
	m, _ := irqFixture(t)
	if err := m.MPU.SetRule(0, Rule{Code: BootROMTask, Data: IRQWindow, Perm: PermRead | PermWrite, Enabled: true}); err != nil {
		t.Fatal(err)
	}
	// Application masking attempt: denied.
	if f := m.Bus.Store32(FlashRegion.Start, IRQIMRAddr, 0); f == nil {
		t.Fatal("application masked the timer line through the MPU")
	}
	// Boot ROM path still works.
	if f := m.Bus.Store32(BootROMTask.Start, IRQIMRAddr, 1<<3); f != nil {
		t.Fatalf("boot ROM IMR store faulted: %v", f)
	}
}

func TestPendingDeliveredInLineOrder(t *testing.T) {
	m := newTestMCU(t)
	var order []int
	mk := func(name string, offset uint32, line int) {
		m.RegisterTask(&Task{
			Name:    name,
			Code:    Region{Start: ROMRegion.Start + Addr(offset), Size: 0x100},
			Handler: func(e *Exec) { order = append(order, line) },
		})
		m.Space.DirectStore32(SRAMRegion.Start+Addr(4*line), uint32(ROMRegion.Start+Addr(offset)))
	}
	mk("isr2", 0x3000, 2)
	mk("isr9", 0x3100, 9)
	m.IRQ.Store(irqRegIDTBase, uint32(SRAMRegion.Start))
	m.IRQ.Store(irqRegIMR, 1<<2|1<<9)

	app := appTask(m, "app", 0)
	m.Submit(app, func(e *Exec) {
		e.Tick(100)
		m.IRQ.Raise(9) // raised first...
		m.IRQ.Raise(2) // ...but line 2 has priority
	}, nil)
	m.K.Run()
	if len(order) != 2 || order[0] != 2 || order[1] != 9 {
		t.Fatalf("delivery order %v, want [2 9]", order)
	}
}
