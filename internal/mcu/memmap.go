// Package mcu simulates the paper's prover platform: a low-end
// microcontroller in the style of the Intel Siskiyou Peak / TrustLite
// prototype, clocked at 24 MHz. The simulation is transaction-level: all
// firmware runs as Go closures, but every memory and peripheral access is
// mediated by the bus and checked against the execution-aware memory
// protection unit (EA-MPU) using the issuing code's program-counter region,
// which is exactly the mechanism the paper's mitigations rely on (§6.1).
// Execution time is accounted in CPU cycles and mapped onto the shared
// discrete-event kernel, so protocol, adversary and hardware share one
// deterministic timeline.
package mcu

import "fmt"

// Addr is a physical address on the MCU's flat 32-bit bus.
type Addr uint32

// KiB is one kibibyte, for memory-map arithmetic.
const KiB = 1024

// Region is a half-open address range [Start, Start+Size).
type Region struct {
	Start Addr
	Size  uint32
}

// End returns the first address past the region.
func (r Region) End() Addr { return r.Start + Addr(r.Size) }

// Contains reports whether a lies inside the region.
func (r Region) Contains(a Addr) bool { return a >= r.Start && a < r.End() }

// ContainsRange reports whether the n-byte range at a lies fully inside r.
func (r Region) ContainsRange(a Addr, n uint32) bool {
	return a >= r.Start && n <= r.Size && a+Addr(n) <= r.End()
}

// Overlaps reports whether the two regions share any address.
func (r Region) Overlaps(o Region) bool {
	return r.Start < o.End() && o.Start < r.End()
}

// String formats the region as [start, end).
func (r Region) String() string {
	return fmt.Sprintf("[%#08x,%#08x)", uint32(r.Start), uint32(r.End()))
}

// The prover's memory map. ROM holds the immutable root of trust
// (bootloader, Code_Attest, Code_Clock and, in the ROM-key variant,
// K_Attest). Flash holds the mutable application image and the non-volatile
// counter_R. RAM is the 512 KB writable memory whose measurement the paper
// prices at ≈754 ms (§3.1). SRAM is a small always-on bank for the trust
// anchor's dynamic state (IDT, Clock_MSB, nonce history) which — like
// trustlet data in TrustLite — is excluded from the measured image so that
// legitimate anchor bookkeeping does not perturb attestation results.
var (
	ROMRegion   = Region{Start: 0x0000_0000, Size: 64 * KiB}
	FlashRegion = Region{Start: 0x0010_0000, Size: 512 * KiB}
	RAMRegion   = Region{Start: 0x0020_0000, Size: 512 * KiB}
	SRAMRegion  = Region{Start: 0x0030_0000, Size: 16 * KiB}
	MMIORegion  = Region{Start: 0x00F0_0000, Size: 64 * KiB}
)

// Fixed MMIO window assignments.
var (
	MPUWindow     = Region{Start: MMIORegion.Start + 0x0000, Size: 0x1000}
	IRQWindow     = Region{Start: MMIORegion.Start + 0x1000, Size: 0x0100}
	ClockWindow   = Region{Start: MMIORegion.Start + 0x2000, Size: 0x0100}
	MonitorWindow = Region{Start: MMIORegion.Start + 0x3000, Size: 0x0100}
)

// AccessKind distinguishes bus reads from writes.
type AccessKind int

// Access kinds.
const (
	AccessRead AccessKind = iota
	AccessWrite
)

func (k AccessKind) String() string {
	if k == AccessRead {
		return "read"
	}
	return "write"
}

// Perm is a permission bitmask for EA-MPU rules.
type Perm uint8

// Permission bits.
const (
	PermRead  Perm = 1 << iota // covered data may be read
	PermWrite                  // covered data may be written
)

// Allows reports whether the permission set admits the access kind.
func (p Perm) Allows(k AccessKind) bool {
	if k == AccessRead {
		return p&PermRead != 0
	}
	return p&PermWrite != 0
}

func (p Perm) String() string {
	s := ""
	if p&PermRead != 0 {
		s += "r"
	} else {
		s += "-"
	}
	if p&PermWrite != 0 {
		s += "w"
	} else {
		s += "-"
	}
	return s
}

// Fault describes a denied or invalid bus access. It is the simulated
// equivalent of a hardware bus error: firmware receives it as an error
// value, and attack code uses it to learn that a probe was blocked.
type Fault struct {
	PC     Addr // program counter region base of the issuing code
	Addr   Addr // faulting address
	Kind   AccessKind
	Reason string
}

// Error formats the fault for diagnostics.
func (f *Fault) Error() string {
	return fmt.Sprintf("bus fault: %s of %#08x from pc %#08x: %s",
		f.Kind, uint32(f.Addr), uint32(f.PC), f.Reason)
}
