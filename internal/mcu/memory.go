package mcu

import (
	"encoding/binary"
	"fmt"

	"proverattest/internal/sim"
)

// Device is a memory-mapped peripheral. Registers are 32-bit and accessed
// at 4-byte-aligned offsets within the device's window.
type Device interface {
	// DeviceName identifies the peripheral in fault messages.
	DeviceName() string
	// Load reads the register at the given window offset.
	Load(off uint32) (uint32, error)
	// Store writes the register at the given window offset. A Store may be
	// refused by the device itself (e.g. a locked MPU), independent of any
	// EA-MPU rule.
	Store(off uint32, v uint32) error
}

type mapping struct {
	window Region
	dev    Device
}

// AddressSpace is the raw storage behind the bus: ROM, flash, RAM, SRAM and
// the MMIO device windows. Its direct accessors bypass protection and
// represent hardware-internal or factory (out-of-band) access; all firmware
// goes through Bus instead.
type AddressSpace struct {
	rom   []byte
	flash []byte
	ram   []byte
	sram  []byte
	devs  []mapping

	// wm, when attached, snoops every store that lands in plain memory.
	// The hook sits here — not in Bus — because the monitor models a bus-
	// level hardware latch: firmware stores, DMA and factory DirectWrites
	// all pass through DirectWrite, so none of them can touch attested
	// memory unobserved.
	wm *WriteMonitor
}

// NewAddressSpace allocates zeroed memory for the standard memory map.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{
		rom:   make([]byte, ROMRegion.Size),
		flash: make([]byte, FlashRegion.Size),
		ram:   make([]byte, RAMRegion.Size),
		sram:  make([]byte, SRAMRegion.Size),
	}
}

// MapDevice attaches a peripheral to an MMIO window. Overlapping windows
// are a configuration bug and panic immediately.
func (s *AddressSpace) MapDevice(window Region, dev Device) {
	if !MMIORegion.ContainsRange(window.Start, window.Size) {
		panic(fmt.Sprintf("mcu: device window %v outside MMIO region %v", window, MMIORegion))
	}
	for _, m := range s.devs {
		if m.window.Overlaps(window) {
			panic(fmt.Sprintf("mcu: device window %v overlaps %s at %v", window, m.dev.DeviceName(), m.window))
		}
	}
	s.devs = append(s.devs, mapping{window: window, dev: dev})
}

// deviceAt finds the peripheral mapped over addr, if any.
func (s *AddressSpace) deviceAt(addr Addr) (Device, uint32, bool) {
	for _, m := range s.devs {
		if m.window.Contains(addr) {
			return m.dev, uint32(addr - m.window.Start), true
		}
	}
	return nil, 0, false
}

// backing returns the storage slice and offset for a plain-memory address.
func (s *AddressSpace) backing(addr Addr) ([]byte, uint32, bool) {
	switch {
	case ROMRegion.Contains(addr):
		return s.rom, uint32(addr - ROMRegion.Start), true
	case FlashRegion.Contains(addr):
		return s.flash, uint32(addr - FlashRegion.Start), true
	case RAMRegion.Contains(addr):
		return s.ram, uint32(addr - RAMRegion.Start), true
	case SRAMRegion.Contains(addr):
		return s.sram, uint32(addr - SRAMRegion.Start), true
	}
	return nil, 0, false
}

// regionOf returns the memory-map region containing addr.
func regionOf(addr Addr) (Region, bool) {
	for _, r := range []Region{ROMRegion, FlashRegion, RAMRegion, SRAMRegion, MMIORegion} {
		if r.Contains(addr) {
			return r, true
		}
	}
	return Region{}, false
}

// DirectRead copies n bytes at addr without protection checks (hardware/
// factory access). It panics on unmapped or MMIO addresses: hardware blocks
// never DMA from device windows in this model.
func (s *AddressSpace) DirectRead(addr Addr, n uint32) []byte {
	mem, off, ok := s.backing(addr)
	if !ok || uint64(off)+uint64(n) > uint64(len(mem)) {
		panic(fmt.Sprintf("mcu: direct read of %d bytes at %#08x outside plain memory", n, uint32(addr)))
	}
	out := make([]byte, n)
	copy(out, mem[off:off+n])
	return out
}

// DirectWrite stores data at addr without protection checks.
func (s *AddressSpace) DirectWrite(addr Addr, data []byte) {
	mem, off, ok := s.backing(addr)
	if !ok || uint64(off)+uint64(len(data)) > uint64(len(mem)) {
		panic(fmt.Sprintf("mcu: direct write of %d bytes at %#08x outside plain memory", len(data), uint32(addr)))
	}
	if s.wm != nil {
		s.wm.observe(addr, uint32(len(data)))
	}
	copy(mem[off:], data)
}

// DirectLoad32 reads a little-endian word without protection checks.
func (s *AddressSpace) DirectLoad32(addr Addr) uint32 {
	return binary.LittleEndian.Uint32(s.DirectRead(addr, 4))
}

// DirectStore32 writes a little-endian word without protection checks.
func (s *AddressSpace) DirectStore32(addr Addr, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	s.DirectWrite(addr, b[:])
}

// Bus mediates every firmware access: it enforces the ROM's inherent write
// protection, consults the EA-MPU with the issuing code's PC, and routes
// MMIO to devices. This is the simulated equivalent of the TrustLite
// memory bus with execution-aware access control (§6.1).
type Bus struct {
	space  *AddressSpace
	mpu    *EAMPU
	tracer *Tracer
	now    func() sim.Time

	// FlashBytesWritten counts bytes programmed into flash through the
	// bus. Flash endures a bounded number of program/erase cycles
	// (~10^4–10^5 on MSP430-class parts), so the §4.2 counter — one flash
	// write per accepted request — is itself a consumable resource; the
	// wear ablation reads this counter.
	FlashBytesWritten uint64
}

// NewBus wires an address space and MPU together.
func NewBus(space *AddressSpace, mpu *EAMPU) *Bus {
	return &Bus{space: space, mpu: mpu}
}

// check runs the protection pipeline for an n-byte access and feeds the
// attached tracer.
func (b *Bus) check(pc, addr Addr, n uint32, kind AccessKind) *Fault {
	f := b.checkPipeline(pc, addr, n, kind)
	if b.tracer != nil {
		e := TraceEntry{PC: pc, Addr: addr, Size: n, Kind: kind, Denied: f != nil}
		if b.now != nil {
			e.When = b.now()
		}
		if f != nil {
			e.Reason = f.Reason
		}
		b.tracer.record(e)
	}
	return f
}

func (b *Bus) checkPipeline(pc, addr Addr, n uint32, kind AccessKind) *Fault {
	region, mapped := regionOf(addr)
	if !mapped || !region.ContainsRange(addr, n) {
		return &Fault{PC: pc, Addr: addr, Kind: kind, Reason: "unmapped address"}
	}
	if kind == AccessWrite && ROMRegion.Contains(addr) {
		return &Fault{PC: pc, Addr: addr, Kind: kind, Reason: "ROM is write-protected in hardware"}
	}
	if f := b.mpu.Check(pc, addr, n, kind); f != nil {
		return f
	}
	return nil
}

// Read copies n bytes at addr on behalf of code executing at pc.
func (b *Bus) Read(pc, addr Addr, n uint32) ([]byte, *Fault) {
	if MMIORegion.Contains(addr) {
		return nil, &Fault{PC: pc, Addr: addr, Kind: AccessRead, Reason: "byte access to MMIO (use Load32)"}
	}
	if f := b.check(pc, addr, n, AccessRead); f != nil {
		return nil, f
	}
	return b.space.DirectRead(addr, n), nil
}

// Write stores data at addr on behalf of code executing at pc.
func (b *Bus) Write(pc, addr Addr, data []byte) *Fault {
	if MMIORegion.Contains(addr) {
		return &Fault{PC: pc, Addr: addr, Kind: AccessWrite, Reason: "byte access to MMIO (use Store32)"}
	}
	if f := b.check(pc, addr, uint32(len(data)), AccessWrite); f != nil {
		return f
	}
	if FlashRegion.Contains(addr) {
		b.FlashBytesWritten += uint64(len(data))
	}
	b.space.DirectWrite(addr, data)
	return nil
}

// Load32 reads a 32-bit word. For MMIO addresses the access must be
// 4-byte aligned and is routed to the device.
func (b *Bus) Load32(pc, addr Addr) (uint32, *Fault) {
	if MMIORegion.Contains(addr) {
		if addr%4 != 0 {
			return 0, &Fault{PC: pc, Addr: addr, Kind: AccessRead, Reason: "unaligned MMIO access"}
		}
		if f := b.check(pc, addr, 4, AccessRead); f != nil {
			return 0, f
		}
		dev, off, ok := b.space.deviceAt(addr)
		if !ok {
			return 0, &Fault{PC: pc, Addr: addr, Kind: AccessRead, Reason: "no device mapped"}
		}
		v, err := dev.Load(off)
		if err != nil {
			return 0, &Fault{PC: pc, Addr: addr, Kind: AccessRead, Reason: err.Error()}
		}
		return v, nil
	}
	data, f := b.Read(pc, addr, 4)
	if f != nil {
		return 0, f
	}
	return binary.LittleEndian.Uint32(data), nil
}

// Store32 writes a 32-bit word, routing MMIO addresses to the device.
func (b *Bus) Store32(pc, addr Addr, v uint32) *Fault {
	if MMIORegion.Contains(addr) {
		if addr%4 != 0 {
			return &Fault{PC: pc, Addr: addr, Kind: AccessWrite, Reason: "unaligned MMIO access"}
		}
		if f := b.check(pc, addr, 4, AccessWrite); f != nil {
			return f
		}
		dev, off, ok := b.space.deviceAt(addr)
		if !ok {
			return &Fault{PC: pc, Addr: addr, Kind: AccessWrite, Reason: "no device mapped"}
		}
		if err := dev.Store(off, v); err != nil {
			return &Fault{PC: pc, Addr: addr, Kind: AccessWrite, Reason: err.Error()}
		}
		return nil
	}
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	return b.Write(pc, addr, buf[:])
}
