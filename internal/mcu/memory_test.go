package mcu

import (
	"bytes"
	"testing"

	"proverattest/internal/sim"
)

func newTestMCU(t *testing.T) *MCU {
	t.Helper()
	return New(sim.NewKernel(), Config{MPURules: 8})
}

func TestRegionArithmetic(t *testing.T) {
	r := Region{Start: 0x100, Size: 0x10}
	if r.End() != 0x110 {
		t.Errorf("End() = %#x, want 0x110", r.End())
	}
	if !r.Contains(0x100) || !r.Contains(0x10f) {
		t.Error("Contains misses interior addresses")
	}
	if r.Contains(0x110) || r.Contains(0xff) {
		t.Error("Contains includes exterior addresses")
	}
	if !r.ContainsRange(0x100, 16) {
		t.Error("ContainsRange rejects the exact region")
	}
	if r.ContainsRange(0x108, 9) {
		t.Error("ContainsRange accepts a range spilling past End")
	}
	if !r.Overlaps(Region{Start: 0x10f, Size: 4}) {
		t.Error("Overlaps misses a one-byte overlap")
	}
	if r.Overlaps(Region{Start: 0x110, Size: 4}) {
		t.Error("Overlaps claims adjacency is overlap")
	}
}

func TestMemoryMapIsDisjoint(t *testing.T) {
	regions := []Region{ROMRegion, FlashRegion, RAMRegion, SRAMRegion, MMIORegion}
	for i := range regions {
		for j := i + 1; j < len(regions); j++ {
			if regions[i].Overlaps(regions[j]) {
				t.Errorf("memory map regions %v and %v overlap", regions[i], regions[j])
			}
		}
	}
}

func TestDirectReadWrite(t *testing.T) {
	s := NewAddressSpace()
	data := []byte{1, 2, 3, 4, 5}
	s.DirectWrite(RAMRegion.Start+100, data)
	if got := s.DirectRead(RAMRegion.Start+100, 5); !bytes.Equal(got, data) {
		t.Fatalf("DirectRead = %v, want %v", got, data)
	}
	s.DirectStore32(FlashRegion.Start, 0xdeadbeef)
	if got := s.DirectLoad32(FlashRegion.Start); got != 0xdeadbeef {
		t.Fatalf("DirectLoad32 = %#x, want 0xdeadbeef", got)
	}
}

func TestDirectAccessPanicsOutsideMemory(t *testing.T) {
	s := NewAddressSpace()
	for _, fn := range []func(){
		func() { s.DirectRead(MMIORegion.Start, 4) },
		func() { s.DirectWrite(0x0009_0000, []byte{1}) }, // hole between ROM and flash
		func() { s.DirectRead(RAMRegion.End()-2, 4) },    // spills past RAM
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("direct access outside plain memory did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestBusROMWriteProtection(t *testing.T) {
	m := newTestMCU(t)
	pc := FlashRegion.Start
	if f := m.Bus.Write(pc, ROMRegion.Start+10, []byte{0xff}); f == nil {
		t.Fatal("write to ROM succeeded")
	} else if f.Reason != "ROM is write-protected in hardware" {
		t.Fatalf("unexpected fault reason %q", f.Reason)
	}
	// Reads from ROM are open by default.
	if _, f := m.Bus.Read(pc, ROMRegion.Start+10, 4); f != nil {
		t.Fatalf("ROM read faulted: %v", f)
	}
}

func TestBusUnmappedAddress(t *testing.T) {
	m := newTestMCU(t)
	if _, f := m.Bus.Read(FlashRegion.Start, 0x0500_0000, 4); f == nil {
		t.Fatal("read of unmapped address succeeded")
	}
	if f := m.Bus.Write(FlashRegion.Start, 0x0500_0000, []byte{1}); f == nil {
		t.Fatal("write to unmapped address succeeded")
	}
}

func TestBusRangeSpillFaults(t *testing.T) {
	m := newTestMCU(t)
	// A read straddling the end of RAM must fault, not wrap or truncate.
	if _, f := m.Bus.Read(FlashRegion.Start, RAMRegion.End()-2, 8); f == nil {
		t.Fatal("read spilling past RAM succeeded")
	}
}

func TestBusByteAccessToMMIOFaults(t *testing.T) {
	m := newTestMCU(t)
	if _, f := m.Bus.Read(FlashRegion.Start, MPUWindow.Start, 1); f == nil {
		t.Fatal("byte read of MMIO succeeded")
	}
	if f := m.Bus.Write(FlashRegion.Start, MPUWindow.Start, []byte{1}); f == nil {
		t.Fatal("byte write of MMIO succeeded")
	}
}

func TestBusUnalignedMMIOFaults(t *testing.T) {
	m := newTestMCU(t)
	if _, f := m.Bus.Load32(FlashRegion.Start, MPUWindow.Start+2); f == nil {
		t.Fatal("unaligned MMIO load succeeded")
	}
	if f := m.Bus.Store32(FlashRegion.Start, MPUWindow.Start+2, 0); f == nil {
		t.Fatal("unaligned MMIO store succeeded")
	}
}

func TestBusMMIOWithNoDevice(t *testing.T) {
	m := newTestMCU(t)
	empty := MMIORegion.Start + 0x8000
	if _, f := m.Bus.Load32(FlashRegion.Start, empty); f == nil {
		t.Fatal("load from unmapped MMIO succeeded")
	}
}

func TestBusMemoryWordAccess(t *testing.T) {
	m := newTestMCU(t)
	pc := FlashRegion.Start
	addr := RAMRegion.Start + 0x40
	if f := m.Bus.Store32(pc, addr, 0x12345678); f != nil {
		t.Fatal(f)
	}
	v, f := m.Bus.Load32(pc, addr)
	if f != nil {
		t.Fatal(f)
	}
	if v != 0x12345678 {
		t.Fatalf("Load32 = %#x, want 0x12345678", v)
	}
}

func TestMapDeviceValidation(t *testing.T) {
	s := NewAddressSpace()
	dev := &stubDevice{}
	s.MapDevice(Region{Start: MMIORegion.Start + 0x4000, Size: 0x100}, dev)

	func() {
		defer func() {
			if recover() == nil {
				t.Error("overlapping device window did not panic")
			}
		}()
		s.MapDevice(Region{Start: MMIORegion.Start + 0x4080, Size: 0x100}, dev)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("device window outside MMIO did not panic")
			}
		}()
		s.MapDevice(Region{Start: RAMRegion.Start, Size: 0x100}, dev)
	}()
}

type stubDevice struct {
	lastStore uint32
}

func (d *stubDevice) DeviceName() string              { return "stub" }
func (d *stubDevice) Load(off uint32) (uint32, error) { return off, nil }
func (d *stubDevice) Store(off uint32, v uint32) error {
	d.lastStore = v
	return nil
}

func TestDeviceDispatch(t *testing.T) {
	m := newTestMCU(t)
	dev := &stubDevice{}
	window := Region{Start: MMIORegion.Start + 0x4000, Size: 0x100}
	m.Space.MapDevice(window, dev)

	v, f := m.Bus.Load32(FlashRegion.Start, window.Start+8)
	if f != nil {
		t.Fatal(f)
	}
	if v != 8 {
		t.Fatalf("device Load returned %d, want window offset 8", v)
	}
	if f := m.Bus.Store32(FlashRegion.Start, window.Start+4, 99); f != nil {
		t.Fatal(f)
	}
	if dev.lastStore != 99 {
		t.Fatalf("device saw store %d, want 99", dev.lastStore)
	}
}
