package mcu

import (
	"strings"
	"testing"
)

func TestStringers(t *testing.T) {
	r := Region{Start: 0x100, Size: 0x10}
	if r.String() != "[0x00000100,0x00000110)" {
		t.Errorf("Region.String = %q", r.String())
	}
	if AccessRead.String() != "read" || AccessWrite.String() != "write" {
		t.Error("AccessKind strings wrong")
	}
	if (PermRead|PermWrite).String() != "rw" || PermRead.String() != "r-" || Perm(0).String() != "--" {
		t.Error("Perm strings wrong")
	}
	f := &Fault{PC: 0x1000, Addr: 0x2000, Kind: AccessWrite, Reason: "test"}
	if !strings.Contains(f.Error(), "write") || !strings.Contains(f.Error(), "test") {
		t.Errorf("Fault.Error = %q", f.Error())
	}
	rule := Rule{Code: Region{Start: 1, Size: 1}, Data: Region{Start: 2, Size: 2}, Perm: PermRead}
	if rule.String() == "" {
		t.Error("Rule.String empty")
	}
}

func TestDeviceReservedRegisters(t *testing.T) {
	m := newTestMCU(t)
	wide := NewWideClock(m, 64, 0)
	if _, err := wide.Load(0x30); err == nil {
		t.Error("wide clock reserved register load succeeded")
	}
	if err := wide.Store(0x30, 0); err == nil {
		t.Error("wide clock reserved register store succeeded")
	}
	lsb := NewLSBClock(m, 20, 0, 5)
	if _, err := lsb.Load(0x10); err == nil {
		t.Error("LSB clock reserved register load succeeded")
	}
}

func TestWideClockWidthValidation(t *testing.T) {
	m := newTestMCU(t)
	for _, w := range []uint{0, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("width %d did not panic", w)
				}
			}()
			NewWideClock(m, w, 0)
		}()
	}
}

func TestLSBClockWidthValidation(t *testing.T) {
	m := newTestMCU(t)
	defer func() {
		if recover() == nil {
			t.Error("width+prescaler ≥ 63 did not panic")
		}
	}()
	NewLSBClock(m, 60, 10, 5)
}

func TestNegativeMPURuleCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative rule count did not panic")
		}
	}()
	NewEAMPU(-1)
}

func TestFlashWearCounter(t *testing.T) {
	m := newTestMCU(t)
	pc := FlashRegion.Start
	if m.Bus.FlashBytesWritten != 0 {
		t.Fatal("wear counter not zero at start")
	}
	// A flash write counts.
	if f := m.Bus.Write(pc, FlashRegion.Start+0x1000, make([]byte, 8)); f != nil {
		t.Fatal(f)
	}
	if m.Bus.FlashBytesWritten != 8 {
		t.Fatalf("FlashBytesWritten = %d, want 8", m.Bus.FlashBytesWritten)
	}
	// RAM writes do not.
	if f := m.Bus.Write(pc, RAMRegion.Start, make([]byte, 64)); f != nil {
		t.Fatal(f)
	}
	if m.Bus.FlashBytesWritten != 8 {
		t.Fatalf("RAM write bumped the flash wear counter")
	}
	// Denied flash writes do not wear the cells.
	if err := m.MPU.SetRule(0, Rule{Code: ROMRegion, Data: Region{Start: FlashRegion.Start + 0x2000, Size: 16}, Perm: PermRead, Enabled: true}); err != nil {
		t.Fatal(err)
	}
	if f := m.Bus.Write(pc, FlashRegion.Start+0x2000, make([]byte, 4)); f == nil {
		t.Fatal("protected write succeeded")
	}
	if m.Bus.FlashBytesWritten != 8 {
		t.Fatal("denied write bumped the wear counter")
	}
	// Store32 to flash counts too.
	if f := m.Bus.Store32(pc, FlashRegion.Start+0x3000, 1); f != nil {
		t.Fatal(f)
	}
	if m.Bus.FlashBytesWritten != 12 {
		t.Fatalf("FlashBytesWritten = %d, want 12", m.Bus.FlashBytesWritten)
	}
}

func TestHardwiredMPUDeviceInterface(t *testing.T) {
	rules := []Rule{{
		Code: ROMRegion, Data: Region{Start: RAMRegion.Start, Size: 16},
		Perm: PermRead, Enabled: true,
	}}
	mpu := NewHardwiredEAMPU(rules)
	if !mpu.Hardwired() || !mpu.Locked() {
		t.Fatal("hardwired MPU should report hardwired and locked")
	}
	// Configuration is readable...
	if v, err := mpu.Load(mpuRuleBase + mpuRuleEnable); err != nil || v != 1 {
		t.Fatalf("rule readback = %d, %v", v, err)
	}
	// ...but never writable, not even the lock register.
	if err := mpu.Store(mpuRegLock, 1); err != ErrMPUHardwired {
		t.Fatalf("lock store err = %v, want ErrMPUHardwired", err)
	}
	if err := mpu.SetRule(0, Rule{}); err != ErrMPUHardwired {
		t.Fatalf("SetRule err = %v, want ErrMPUHardwired", err)
	}
	// And the builder must copy its input: mutating the caller's slice
	// after construction must not change silicon.
	rules[0].Enabled = false
	if f := mpu.Check(FlashRegion.Start, RAMRegion.Start, 4, AccessRead); f == nil {
		t.Fatal("hardwired rule table aliases the constructor argument")
	}
}
