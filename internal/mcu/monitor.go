package mcu

import "errors"

// WriteMonitor is the RATA-style continuous-attestation latch ("On the
// TOCTOU Problem in Remote Attestation"): a bus-level peripheral that
// snoops every store landing in a watched region and latches a sticky
// dirty bit. Attestation code rearms the latch at the start of a full
// measurement; as long as the bit stays clear the prover can answer an
// attestation request in O(1) by vouching for its last measured digest
// instead of re-MACing all of memory.
//
// The latch is TOCTOU-resistant by construction: it is rearmed *before*
// the measurement reads memory, so a store racing the measurement re-
// latches the bit and the next request falls back to the full MAC. Each
// rearm also increments a monotonically increasing epoch; the epoch is
// bound into the fast-path MAC, so clearing the bit out-of-band (on a
// platform whose EA-MPU does not protect the control register) desyncs
// the prover from the verifier instead of hiding the write.
//
// Register map (32-bit, window-relative):
//
//	0x00 STATUS  RO  bit0 = dirty (a watched store since the last rearm)
//	0x04 EPOCH   RO  rearm count since reset
//	0x08 CTRL    WO  write 1 to rearm: clears dirty, increments epoch
//	0x0C WATCHLO RO  watched region start address
//	0x10 WATCHSZ RO  watched region size in bytes
//
// Under the EA-MPU's default-deny-over-covered-regions semantics, a
// single rule granting Code_Attest access to MonitorWindow makes CTRL
// unreachable from application code — the hardware analogue of RATA's
// "only the attestation routine may reset the latch".
type WriteMonitor struct {
	watch Region
	dirty bool
	epoch uint32

	// WritesObserved counts stores that overlapped the watched region,
	// for tests and the ablation sweeps.
	WritesObserved uint64
}

// Monitor register offsets within MonitorWindow.
const (
	monStatusOff  = 0x00
	monEpochOff   = 0x04
	monCtrlOff    = 0x08
	monWatchLoOff = 0x0C
	monWatchSzOff = 0x10
)

// Absolute monitor register addresses.
var (
	MonStatusAddr = MonitorWindow.Start + monStatusOff
	MonEpochAddr  = MonitorWindow.Start + monEpochOff
	MonCtrlAddr   = MonitorWindow.Start + monCtrlOff
)

// MonRearm is the CTRL value that rearms the latch.
const MonRearm = 1

// NewWriteMonitor attaches a write monitor over the watch region and maps
// its registers at MonitorWindow. The latch powers up dirty: everything
// written before the first measurement (secure boot, image provisioning)
// is by definition unattested, so the first request after reset always
// pays the full MAC — the fast path only ever vouches for memory a full
// measurement has actually covered.
func NewWriteMonitor(m *MCU, watch Region) *WriteMonitor {
	w := &WriteMonitor{watch: watch, dirty: true}
	m.Space.MapDevice(MonitorWindow, w)
	m.Space.wm = w
	return w
}

// observe is the bus snoop: any store overlapping the watched region
// latches the dirty bit.
func (w *WriteMonitor) observe(addr Addr, n uint32) {
	if (Region{Start: addr, Size: n}).Overlaps(w.watch) {
		w.dirty = true
		w.WritesObserved++
	}
}

// Dirty exposes the latch state to hardware-level observers (tests).
func (w *WriteMonitor) Dirty() bool { return w.dirty }

// Epoch exposes the rearm count to hardware-level observers (tests).
func (w *WriteMonitor) Epoch() uint32 { return w.epoch }

// DeviceName implements Device.
func (w *WriteMonitor) DeviceName() string { return "write-monitor" }

var (
	errMonReadOnly  = errors.New("write-monitor register is read-only")
	errMonWriteOnly = errors.New("write-monitor CTRL is write-only")
	errMonBadCtrl   = errors.New("write-monitor CTRL accepts only the rearm value")
	errMonNoReg     = errors.New("no write-monitor register at this offset")
)

// Load implements Device.
func (w *WriteMonitor) Load(off uint32) (uint32, error) {
	switch off {
	case monStatusOff:
		if w.dirty {
			return 1, nil
		}
		return 0, nil
	case monEpochOff:
		return w.epoch, nil
	case monCtrlOff:
		return 0, errMonWriteOnly
	case monWatchLoOff:
		return uint32(w.watch.Start), nil
	case monWatchSzOff:
		return w.watch.Size, nil
	}
	return 0, errMonNoReg
}

// Store implements Device. Only CTRL is writable, and only with the rearm
// value; the refusal is the device's own, on top of any EA-MPU rule.
func (w *WriteMonitor) Store(off uint32, v uint32) error {
	if off != monCtrlOff {
		if off == monStatusOff || off == monEpochOff || off == monWatchLoOff || off == monWatchSzOff {
			return errMonReadOnly
		}
		return errMonNoReg
	}
	if v != MonRearm {
		return errMonBadCtrl
	}
	w.dirty = false
	w.epoch++
	return nil
}
