package mcu

import "testing"

// Standard fixture: a write monitor over a small RAM window.
func newMonitoredMCU(t *testing.T) (*MCU, *WriteMonitor, Region) {
	t.Helper()
	m := newTestMCU(t)
	watch := Region{Start: RAMRegion.Start + 0x1000, Size: 0x1000}
	w := NewWriteMonitor(m, watch)
	return m, w, watch
}

func TestMonitorPowersUpDirty(t *testing.T) {
	m, w, watch := newMonitoredMCU(t)
	if !w.Dirty() {
		t.Fatal("monitor powered up clean — pre-boot writes would be vouched for")
	}
	if w.Epoch() != 0 {
		t.Fatalf("power-up epoch = %d, want 0", w.Epoch())
	}
	pc := ROMRegion.Start
	if v, f := m.Bus.Load32(pc, MonStatusAddr); f != nil || v != 1 {
		t.Fatalf("STATUS = %d, %v; want 1, nil", v, f)
	}
	if v, f := m.Bus.Load32(pc, MonitorWindow.Start+monWatchLoOff); f != nil || Addr(v) != watch.Start {
		t.Fatalf("WATCHLO = %#x, %v; want %#x", v, f, uint32(watch.Start))
	}
	if v, f := m.Bus.Load32(pc, MonitorWindow.Start+monWatchSzOff); f != nil || v != watch.Size {
		t.Fatalf("WATCHSZ = %#x, %v; want %#x", v, f, watch.Size)
	}
}

func TestMonitorRearmClearsAndBumpsEpoch(t *testing.T) {
	m, w, _ := newMonitoredMCU(t)
	pc := ROMRegion.Start
	if f := m.Bus.Store32(pc, MonCtrlAddr, MonRearm); f != nil {
		t.Fatalf("rearm faulted: %v", f)
	}
	if w.Dirty() {
		t.Fatal("dirty after rearm")
	}
	if w.Epoch() != 1 {
		t.Fatalf("epoch after first rearm = %d, want 1", w.Epoch())
	}
	if v, f := m.Bus.Load32(pc, MonEpochAddr); f != nil || v != 1 {
		t.Fatalf("EPOCH = %d, %v; want 1, nil", v, f)
	}
	// Rearming the monitor through its own MMIO window must not re-latch
	// the dirty bit: MMIO stores go to the device, not the snooped RAM path.
	if w.Dirty() {
		t.Fatal("rearm store self-latched the monitor")
	}
}

func TestMonitorLatchesWatchedStores(t *testing.T) {
	m, w, watch := newMonitoredMCU(t)
	pc := FlashRegion.Start
	m.Bus.Store32(pc, MonCtrlAddr, MonRearm)

	// A store inside the watched window latches.
	if f := m.Bus.Write(pc, watch.Start+8, []byte{1}); f != nil {
		t.Fatalf("watched store faulted: %v", f)
	}
	if !w.Dirty() {
		t.Fatal("watched store did not latch the dirty bit")
	}
	if w.WritesObserved != 1 {
		t.Fatalf("WritesObserved = %d, want 1", w.WritesObserved)
	}

	// The latch is sticky until the next rearm.
	m.Bus.Store32(pc, MonCtrlAddr, MonRearm)
	if w.Dirty() {
		t.Fatal("dirty survived rearm")
	}
	if w.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", w.Epoch())
	}
}

func TestMonitorIgnoresUnwatchedStores(t *testing.T) {
	m, w, watch := newMonitoredMCU(t)
	pc := FlashRegion.Start
	m.Bus.Store32(pc, MonCtrlAddr, MonRearm)

	if f := m.Bus.Write(pc, RAMRegion.Start, []byte{1, 2, 3, 4}); f != nil {
		t.Fatalf("unwatched store faulted: %v", f)
	}
	if f := m.Bus.Write(pc, watch.End(), []byte{1}); f != nil {
		t.Fatalf("adjacent store faulted: %v", f)
	}
	if w.Dirty() {
		t.Fatal("store outside the watched window latched the monitor")
	}

	// A store straddling the window's edge overlaps it, so it latches.
	if f := m.Bus.Write(pc, watch.Start-2, []byte{1, 2, 3, 4}); f != nil {
		t.Fatalf("straddling store faulted: %v", f)
	}
	if !w.Dirty() {
		t.Fatal("store straddling the watched window did not latch")
	}
}

func TestMonitorSnoopsDirectWrites(t *testing.T) {
	// DMA and factory provisioning bypass the bus but still pass through
	// AddressSpace.DirectWrite — the universal store funnel. A latch that
	// missed them would vouch for memory the measurement never saw.
	m, w, watch := newMonitoredMCU(t)
	m.Bus.Store32(ROMRegion.Start, MonCtrlAddr, MonRearm)
	m.Space.DirectWrite(watch.Start, []byte{0xAA})
	if !w.Dirty() {
		t.Fatal("DirectWrite into the watched window did not latch")
	}
}

func TestMonitorRegisterAccessRules(t *testing.T) {
	m, w, _ := newMonitoredMCU(t)
	pc := ROMRegion.Start
	// CTRL is write-only.
	if _, f := m.Bus.Load32(pc, MonCtrlAddr); f == nil {
		t.Fatal("CTRL load succeeded")
	}
	// STATUS and EPOCH are read-only.
	if f := m.Bus.Store32(pc, MonStatusAddr, 0); f == nil {
		t.Fatal("STATUS store succeeded")
	}
	if f := m.Bus.Store32(pc, MonEpochAddr, 7); f == nil {
		t.Fatal("EPOCH store succeeded")
	}
	// CTRL refuses anything but the rearm value — there is no "set dirty
	// bit without bumping the epoch" operation.
	if f := m.Bus.Store32(pc, MonCtrlAddr, 0); f == nil {
		t.Fatal("CTRL accepted a non-rearm value")
	}
	if f := m.Bus.Store32(pc, MonitorWindow.Start+0x20, 1); f == nil {
		t.Fatal("store to an unmapped monitor offset succeeded")
	}
	if w.Dirty() != true || w.Epoch() != 0 {
		t.Fatalf("refused accesses perturbed state: dirty=%v epoch=%d", w.Dirty(), w.Epoch())
	}
}

func TestMonitorEAMPUGatesRearm(t *testing.T) {
	// The RATA deployment maps a single EA-MPU rule granting only the
	// attestation code access to MonitorWindow; under default-deny-over-
	// covered-regions, application code can then neither clear the latch
	// nor read the registers.
	m, w, _ := newMonitoredMCU(t)
	anchorCode := Region{Start: ROMRegion.Start + 0x1000, Size: 0x1000}
	if err := m.MPU.SetRule(0, Rule{Code: anchorCode, Data: MonitorWindow, Perm: PermRead | PermWrite, Enabled: true}); err != nil {
		t.Fatal(err)
	}
	appPC := FlashRegion.Start
	if f := m.Bus.Store32(appPC, MonCtrlAddr, MonRearm); f == nil {
		t.Fatal("application code rearmed the protected monitor")
	}
	if !w.Dirty() || w.Epoch() != 0 {
		t.Fatalf("blocked rearm took effect: dirty=%v epoch=%d", w.Dirty(), w.Epoch())
	}
	if _, f := m.Bus.Load32(appPC, MonStatusAddr); f == nil {
		t.Fatal("application code read the protected STATUS register")
	}
	// The anchor's access still stands.
	if f := m.Bus.Store32(anchorCode.Start, MonCtrlAddr, MonRearm); f != nil {
		t.Fatalf("anchor rearm faulted: %v", f)
	}
	if w.Dirty() || w.Epoch() != 1 {
		t.Fatalf("anchor rearm did not take effect: dirty=%v epoch=%d", w.Dirty(), w.Epoch())
	}
}
