package mcu

import (
	"errors"
	"fmt"
)

// Rule is one execution-aware access-control entry: code executing inside
// Code may access data inside Data with permissions Perm. Memory covered by
// at least one rule's Data region is accessible *only* through some rule
// (default-deny); uncovered memory is open, matching TrustLite's model
// where the EA-MPU protects designated regions and leaves the rest to the
// application.
type Rule struct {
	Code    Region
	Data    Region
	Perm    Perm
	Enabled bool
}

func (r Rule) String() string {
	return fmt.Sprintf("code %v -> data %v %v", r.Code, r.Data, r.Perm)
}

// EA-MPU register layout (word offsets within MPUWindow):
//
//	0x00 LOCK    write 1 to lock the MPU; never unlockable by software
//	0x04 NRULES  read-only rule capacity (#r)
//	0x10 + i*0x18: per-rule block of six words:
//	     CODE_START, CODE_END, DATA_START, DATA_END, PERM, ENABLE
const (
	mpuRegLock   = 0x00
	mpuRegNRules = 0x04
	mpuRuleBase  = 0x10
	mpuRuleSpan  = 0x18

	mpuRuleCodeStart = 0x00
	mpuRuleCodeEnd   = 0x04
	mpuRuleDataStart = 0x08
	mpuRuleDataEnd   = 0x0c
	mpuRulePerm      = 0x10
	mpuRuleEnable    = 0x14
)

// ErrMPULocked reports a configuration store rejected by the lockdown bit —
// the paper's defence against runtime reconfiguration by compromised
// system software (§6.2 "Secure Boot").
var ErrMPULocked = errors.New("EA-MPU is locked")

// ErrMPUHardwired reports a configuration access to a SMART-style MPU
// whose rules are fixed in silicon.
var ErrMPUHardwired = errors.New("EA-MPU rules are hardwired (SMART-style)")

// EAMPU is the execution-aware memory protection unit. The rule count #r is
// fixed at construction, matching the synthesized hardware cost model
// (Table 3: 278 + 116·#r registers, 417 + 182·#r LUTs). Two flavours exist,
// mirroring the paper's §6.1 comparison: TrustLite-style (rules programmed
// by secure boot, then locked) and SMART-style (rules hardwired at
// manufacture; every configuration store is refused and no reset clears
// them).
type EAMPU struct {
	rules     []Rule
	locked    bool
	hardwired bool
}

// NewEAMPU returns a TrustLite-style MPU with capacity for numRules rules,
// all disabled.
func NewEAMPU(numRules int) *EAMPU {
	if numRules < 0 {
		panic("mcu: negative EA-MPU rule count")
	}
	return &EAMPU{rules: make([]Rule, numRules)}
}

// NewHardwiredEAMPU returns a SMART-style MPU whose rule table is baked in
// at manufacture: software can read the configuration but never change it,
// and a hardware reset does not clear it.
func NewHardwiredEAMPU(rules []Rule) *EAMPU {
	cp := make([]Rule, len(rules))
	copy(cp, rules)
	return &EAMPU{rules: cp, hardwired: true, locked: true}
}

// Hardwired reports whether the rule table is fixed in silicon.
func (m *EAMPU) Hardwired() bool { return m.hardwired }

// NumRules reports the configured capacity #r.
func (m *EAMPU) NumRules() int { return len(m.rules) }

// Locked reports whether the lockdown bit is set.
func (m *EAMPU) Locked() bool { return m.locked }

// Rules returns a copy of the rule table for inspection.
func (m *EAMPU) Rules() []Rule {
	out := make([]Rule, len(m.rules))
	copy(out, m.rules)
	return out
}

// Reset clears all rules and the lock, as a hardware reset line would.
// Software has no path to it once locked; hardwired (SMART) tables
// survive reset unchanged.
func (m *EAMPU) Reset() {
	if m.hardwired {
		return
	}
	for i := range m.rules {
		m.rules[i] = Rule{}
	}
	m.locked = false
}

// Check applies the rule table to an n-byte access at addr issued by code
// whose PC is pc. It returns nil when the access is allowed.
func (m *EAMPU) Check(pc, addr Addr, n uint32, kind AccessKind) *Fault {
	covered := false
	for i := range m.rules {
		r := &m.rules[i]
		if !r.Enabled || !r.Data.Overlaps(Region{Start: addr, Size: n}) {
			continue
		}
		covered = true
		if r.Data.ContainsRange(addr, n) && r.Code.Contains(pc) && r.Perm.Allows(kind) {
			return nil
		}
	}
	if covered {
		return &Fault{PC: pc, Addr: addr, Kind: kind,
			Reason: "EA-MPU: no rule grants this code access to the protected region"}
	}
	return nil
}

var _ Device = (*EAMPU)(nil)

// DeviceName implements Device.
func (m *EAMPU) DeviceName() string { return "ea-mpu" }

// Load implements Device: configuration registers are always readable.
func (m *EAMPU) Load(off uint32) (uint32, error) {
	switch off {
	case mpuRegLock:
		if m.locked {
			return 1, nil
		}
		return 0, nil
	case mpuRegNRules:
		return uint32(len(m.rules)), nil
	}
	idx, field, err := m.decodeRuleOffset(off)
	if err != nil {
		return 0, err
	}
	r := &m.rules[idx]
	switch field {
	case mpuRuleCodeStart:
		return uint32(r.Code.Start), nil
	case mpuRuleCodeEnd:
		return uint32(r.Code.End()), nil
	case mpuRuleDataStart:
		return uint32(r.Data.Start), nil
	case mpuRuleDataEnd:
		return uint32(r.Data.End()), nil
	case mpuRulePerm:
		return uint32(r.Perm), nil
	case mpuRuleEnable:
		if r.Enabled {
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("ea-mpu: reserved register %#x", off)
}

// Store implements Device. Once the lock bit is set every configuration
// store is refused; the lock itself cannot be cleared by software. A
// hardwired table refuses all stores unconditionally.
func (m *EAMPU) Store(off uint32, v uint32) error {
	if m.hardwired {
		return ErrMPUHardwired
	}
	if m.locked {
		if off == mpuRegLock && v == 1 {
			return nil // idempotent re-lock
		}
		return ErrMPULocked
	}
	switch off {
	case mpuRegLock:
		if v == 1 {
			m.locked = true
		}
		return nil
	case mpuRegNRules:
		return errors.New("ea-mpu: rule capacity is fixed in hardware")
	}
	idx, field, err := m.decodeRuleOffset(off)
	if err != nil {
		return err
	}
	r := &m.rules[idx]
	switch field {
	case mpuRuleCodeStart:
		r.Code = Region{Start: Addr(v), Size: uint32(r.Code.End()) - v}
		if r.Code.End() < r.Code.Start {
			r.Code.Size = 0
		}
	case mpuRuleCodeEnd:
		r.Code.Size = v - uint32(r.Code.Start)
	case mpuRuleDataStart:
		r.Data = Region{Start: Addr(v), Size: uint32(r.Data.End()) - v}
		if r.Data.End() < r.Data.Start {
			r.Data.Size = 0
		}
	case mpuRuleDataEnd:
		r.Data.Size = v - uint32(r.Data.Start)
	case mpuRulePerm:
		r.Perm = Perm(v)
	case mpuRuleEnable:
		r.Enabled = v&1 != 0
	default:
		return fmt.Errorf("ea-mpu: reserved register %#x", off)
	}
	return nil
}

func (m *EAMPU) decodeRuleOffset(off uint32) (idx int, field uint32, err error) {
	if off < mpuRuleBase {
		return 0, 0, fmt.Errorf("ea-mpu: reserved register %#x", off)
	}
	rel := off - mpuRuleBase
	idx = int(rel / mpuRuleSpan)
	field = rel % mpuRuleSpan
	if idx >= len(m.rules) {
		return 0, 0, fmt.Errorf("ea-mpu: rule index %d beyond capacity %d", idx, len(m.rules))
	}
	return idx, field, nil
}

// SetRule programs a whole rule through the device interface, the way the
// secure-boot ROM does it. It fails if the MPU is locked or idx is out of
// range.
func (m *EAMPU) SetRule(idx int, r Rule) error {
	base := uint32(mpuRuleBase + idx*mpuRuleSpan)
	stores := []struct {
		field uint32
		v     uint32
	}{
		{mpuRuleCodeStart, uint32(r.Code.Start)},
		{mpuRuleCodeEnd, uint32(r.Code.End())},
		{mpuRuleDataStart, uint32(r.Data.Start)},
		{mpuRuleDataEnd, uint32(r.Data.End())},
		{mpuRulePerm, uint32(r.Perm)},
		{mpuRuleEnable, boolWord(r.Enabled)},
	}
	for _, s := range stores {
		if err := m.Store(base+s.field, s.v); err != nil {
			return err
		}
	}
	return nil
}

// Lock sets the lockdown bit through the device interface.
func (m *EAMPU) Lock() error { return m.Store(mpuRegLock, 1) }

func boolWord(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// MPURuleAddr returns the bus address of a rule field, for firmware (or
// attack code) that programs the MPU over the bus.
func MPURuleAddr(idx int, field uint32) Addr {
	return MPUWindow.Start + Addr(mpuRuleBase+idx*mpuRuleSpan) + Addr(field)
}

// MPULockAddr returns the bus address of the lock register.
func MPULockAddr() Addr { return MPUWindow.Start + mpuRegLock }
