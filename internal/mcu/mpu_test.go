package mcu

import (
	"testing"
	"testing/quick"
)

// Standard fixture: a protected key location in flash readable only by
// "anchor" code in ROM, like K_Attest under SMART/TrustLite.
func protectedKeyMPU(t *testing.T) (*MCU, Region, Region) {
	t.Helper()
	m := newTestMCU(t)
	anchorCode := Region{Start: ROMRegion.Start + 0x1000, Size: 0x1000}
	keyData := Region{Start: FlashRegion.Start + 0x7F000, Size: 32}
	if err := m.MPU.SetRule(0, Rule{Code: anchorCode, Data: keyData, Perm: PermRead, Enabled: true}); err != nil {
		t.Fatal(err)
	}
	return m, anchorCode, keyData
}

func TestMPUGrantsConfiguredCode(t *testing.T) {
	m, anchorCode, keyData := protectedKeyMPU(t)
	if _, f := m.Bus.Read(anchorCode.Start, keyData.Start, 32); f != nil {
		t.Fatalf("anchor read of protected key faulted: %v", f)
	}
	// Execution-awareness: any PC inside the code region qualifies.
	if _, f := m.Bus.Read(anchorCode.Start+0x500, keyData.Start, 16); f != nil {
		t.Fatalf("anchor-interior PC read faulted: %v", f)
	}
}

func TestMPUDeniesOtherCode(t *testing.T) {
	m, _, keyData := protectedKeyMPU(t)
	appPC := FlashRegion.Start // application code in flash
	if _, f := m.Bus.Read(appPC, keyData.Start, 32); f == nil {
		t.Fatal("application read of protected key succeeded")
	}
	// One byte inside the protected region is still protected.
	if _, f := m.Bus.Read(appPC, keyData.Start+31, 1); f == nil {
		t.Fatal("single-byte probe of protected key succeeded")
	}
}

func TestMPUDeniesUngrantedPermission(t *testing.T) {
	m, anchorCode, keyData := protectedKeyMPU(t)
	// The rule grants read only; even the anchor cannot write (a ROM key
	// location is inherently write-protected, and the rule must not widen
	// that).
	if f := m.Bus.Write(anchorCode.Start, keyData.Start, []byte{1}); f == nil {
		t.Fatal("write allowed through a read-only rule")
	}
}

func TestMPUPartialOverlapDenied(t *testing.T) {
	m, anchorCode, keyData := protectedKeyMPU(t)
	// A read straddling the protected region's edge: partially covered by
	// the rule, so it must be denied even for the anchor... unless the rule
	// fully covers the range. Start 16 bytes before the key.
	addr := keyData.Start - 16
	if _, f := m.Bus.Read(anchorCode.Start, addr, 32); f == nil {
		t.Fatal("read straddling a protected boundary succeeded")
	}
	// Unprotected memory right before the key remains open to anyone.
	if _, f := m.Bus.Read(FlashRegion.Start, addr, 16); f != nil {
		t.Fatalf("read of open memory faulted: %v", f)
	}
}

func TestMPUUncoveredMemoryIsOpen(t *testing.T) {
	m, _, _ := protectedKeyMPU(t)
	if f := m.Bus.Write(FlashRegion.Start, RAMRegion.Start, []byte{1, 2, 3}); f != nil {
		t.Fatalf("write to uncovered RAM faulted: %v", f)
	}
}

func TestMPUMultipleRulesUnion(t *testing.T) {
	m := newTestMCU(t)
	counter := Region{Start: FlashRegion.Start + 0x7E000, Size: 8}
	anchor := Region{Start: ROMRegion.Start + 0x1000, Size: 0x1000}
	logger := Region{Start: FlashRegion.Start + 0x1000, Size: 0x1000}
	// Anchor may read+write the counter; logger may only read it.
	if err := m.MPU.SetRule(0, Rule{Code: anchor, Data: counter, Perm: PermRead | PermWrite, Enabled: true}); err != nil {
		t.Fatal(err)
	}
	if err := m.MPU.SetRule(1, Rule{Code: logger, Data: counter, Perm: PermRead, Enabled: true}); err != nil {
		t.Fatal(err)
	}
	if f := m.Bus.Write(anchor.Start, counter.Start, []byte{1, 0, 0, 0, 0, 0, 0, 0}); f != nil {
		t.Fatalf("anchor counter write faulted: %v", f)
	}
	if _, f := m.Bus.Read(logger.Start, counter.Start, 8); f != nil {
		t.Fatalf("logger counter read faulted: %v", f)
	}
	if f := m.Bus.Write(logger.Start, counter.Start, []byte{9}); f == nil {
		t.Fatal("logger wrote the counter through a read-only rule")
	}
	if _, f := m.Bus.Read(FlashRegion.Start, counter.Start, 8); f == nil {
		t.Fatal("unrelated code read the protected counter")
	}
}

func TestMPUDisabledRuleIgnored(t *testing.T) {
	m := newTestMCU(t)
	data := Region{Start: RAMRegion.Start, Size: 64}
	if err := m.MPU.SetRule(0, Rule{Code: ROMRegion, Data: data, Perm: PermRead, Enabled: false}); err != nil {
		t.Fatal(err)
	}
	// Disabled rule ⇒ region uncovered ⇒ open access.
	if f := m.Bus.Write(FlashRegion.Start, data.Start, []byte{1}); f != nil {
		t.Fatalf("disabled rule still enforced: %v", f)
	}
}

func TestMPULockdownBlocksReconfiguration(t *testing.T) {
	m, _, keyData := protectedKeyMPU(t)
	if err := m.MPU.Lock(); err != nil {
		t.Fatal(err)
	}
	if !m.MPU.Locked() {
		t.Fatal("Locked() = false after Lock")
	}
	// Reprogramming any rule register must now fail...
	if err := m.MPU.SetRule(0, Rule{}); err != ErrMPULocked {
		t.Fatalf("SetRule on locked MPU: err = %v, want ErrMPULocked", err)
	}
	// ...including through the bus (the adversary's path).
	if f := m.Bus.Store32(FlashRegion.Start, MPURuleAddr(0, mpuRuleEnable), 0); f == nil {
		t.Fatal("bus store to locked MPU succeeded")
	}
	// Unlocking by software must be impossible.
	if f := m.Bus.Store32(FlashRegion.Start, MPULockAddr(), 0); f == nil {
		t.Fatal("software cleared the MPU lock")
	}
	// Re-locking is an idempotent no-op.
	if f := m.Bus.Store32(FlashRegion.Start, MPULockAddr(), 1); f != nil {
		t.Fatalf("idempotent re-lock faulted: %v", f)
	}
	// The protection itself still stands.
	if _, f := m.Bus.Read(FlashRegion.Start, keyData.Start, 4); f == nil {
		t.Fatal("protection vanished after lockdown")
	}
}

func TestMPUDeviceRegisterRoundTrip(t *testing.T) {
	m := newTestMCU(t)
	r := Rule{
		Code:    Region{Start: 0x1000, Size: 0x800},
		Data:    Region{Start: RAMRegion.Start + 0x100, Size: 0x40},
		Perm:    PermRead | PermWrite,
		Enabled: true,
	}
	if err := m.MPU.SetRule(2, r); err != nil {
		t.Fatal(err)
	}
	got := m.MPU.Rules()[2]
	if got != r {
		t.Fatalf("rule round trip: got %+v, want %+v", got, r)
	}
	// Read back through the device interface.
	pc := ROMRegion.Start
	v, f := m.Bus.Load32(pc, MPURuleAddr(2, mpuRuleDataStart))
	if f != nil {
		t.Fatal(f)
	}
	if Addr(v) != r.Data.Start {
		t.Fatalf("DATA_START readback = %#x, want %#x", v, uint32(r.Data.Start))
	}
	nr, f := m.Bus.Load32(pc, MPUWindow.Start+mpuRegNRules)
	if f != nil {
		t.Fatal(f)
	}
	if nr != 8 {
		t.Fatalf("NRULES = %d, want 8", nr)
	}
}

func TestMPURuleIndexBounds(t *testing.T) {
	m := newTestMCU(t)
	if err := m.MPU.SetRule(8, Rule{}); err == nil {
		t.Fatal("SetRule beyond capacity succeeded")
	}
	if _, err := m.MPU.Load(mpuRuleBase + 8*mpuRuleSpan); err == nil {
		t.Fatal("Load beyond capacity succeeded")
	}
	if _, err := m.MPU.Load(0x08); err == nil {
		t.Fatal("Load of reserved register succeeded")
	}
}

func TestMPUCanProtectItself(t *testing.T) {
	// TrustLite-style self-protection: a rule covering the MPU's own MMIO
	// window, granting access only to boot ROM code. This is the paper's
	// alternative to the lock bit.
	m := newTestMCU(t)
	if err := m.MPU.SetRule(0, Rule{Code: BootROMTask, Data: MPUWindow, Perm: PermRead | PermWrite, Enabled: true}); err != nil {
		t.Fatal(err)
	}
	// Application code can no longer reconfigure rules...
	if f := m.Bus.Store32(FlashRegion.Start, MPURuleAddr(1, mpuRuleEnable), 1); f == nil {
		t.Fatal("application reprogrammed the self-protected MPU")
	}
	// ...but boot ROM still can.
	if f := m.Bus.Store32(BootROMTask.Start, MPURuleAddr(1, mpuRuleEnable), 0); f != nil {
		t.Fatalf("boot ROM store faulted: %v", f)
	}
}

func TestMPUReset(t *testing.T) {
	m, _, keyData := protectedKeyMPU(t)
	if err := m.MPU.Lock(); err != nil {
		t.Fatal(err)
	}
	m.MPU.Reset()
	if m.MPU.Locked() {
		t.Fatal("Reset did not clear the lock")
	}
	if _, f := m.Bus.Read(FlashRegion.Start, keyData.Start, 4); f != nil {
		t.Fatalf("rules survived Reset: %v", f)
	}
}

func TestMPUCheckQuickNoRuleMeansOpen(t *testing.T) {
	mpu := NewEAMPU(4)
	f := func(pcOff, addrOff uint16, write bool) bool {
		kind := AccessRead
		if write {
			kind = AccessWrite
		}
		pc := FlashRegion.Start + Addr(pcOff)
		addr := RAMRegion.Start + Addr(addrOff)
		return mpu.Check(pc, addr, 4, kind) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMPUDenyMonotoneInUnrelatedRules(t *testing.T) {
	// Property: adding a rule whose data region does not cover an address
	// never changes that address's verdict — rules are grants scoped to
	// their own region, not global modifiers.
	f := func(pcOff, addrOff uint16, newRuleOff uint16, write bool) bool {
		kind := AccessRead
		if write {
			kind = AccessWrite
		}
		pc := FlashRegion.Start + Addr(pcOff)
		addr := RAMRegion.Start + Addr(addrOff)

		mpu := NewEAMPU(4)
		// A protected island far from addr.
		island := Region{Start: SRAMRegion.Start, Size: 64}
		mpu.SetRule(0, Rule{Code: ROMRegion, Data: island, Perm: PermRead, Enabled: true})
		before := mpu.Check(pc, addr, 4, kind) == nil

		// Add an unrelated rule elsewhere in SRAM (never overlapping RAM).
		other := Region{Start: SRAMRegion.Start + 0x1000 + Addr(newRuleOff%0x800), Size: 32}
		mpu.SetRule(1, Rule{Code: FlashRegion, Data: other, Perm: PermWrite, Enabled: true})
		after := mpu.Check(pc, addr, 4, kind) == nil
		return before == after
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMPUGrantMonotone(t *testing.T) {
	// Property: once some rule allows an access, adding more rules never
	// revokes it (the check is an existential over grants).
	mpu := NewEAMPU(4)
	data := Region{Start: RAMRegion.Start, Size: 64}
	mpu.SetRule(0, Rule{Code: ROMRegion, Data: data, Perm: PermRead | PermWrite, Enabled: true})
	if f := mpu.Check(ROMRegion.Start, data.Start, 4, AccessWrite); f != nil {
		t.Fatalf("baseline grant missing: %v", f)
	}
	// Pile on rules over the same data for other code regions.
	mpu.SetRule(1, Rule{Code: FlashRegion, Data: data, Perm: PermRead, Enabled: true})
	mpu.SetRule(2, Rule{Code: SRAMRegion, Data: data, Perm: PermWrite, Enabled: true})
	if f := mpu.Check(ROMRegion.Start, data.Start, 4, AccessWrite); f != nil {
		t.Fatalf("grant revoked by unrelated rules: %v", f)
	}
}

func TestZeroRuleMPU(t *testing.T) {
	m := New(newTestMCU(t).K, Config{MPURules: 0})
	if m.MPU.NumRules() != 0 {
		t.Fatal("expected zero-capacity MPU")
	}
	if err := m.MPU.SetRule(0, Rule{}); err == nil {
		t.Fatal("SetRule on zero-capacity MPU succeeded")
	}
	// Everything is open.
	if f := m.Bus.Write(FlashRegion.Start, RAMRegion.Start, []byte{1}); f != nil {
		t.Fatalf("zero-rule MPU blocked an access: %v", f)
	}
}
