package mcu

import (
	"fmt"

	"proverattest/internal/sim"
)

// TraceEntry records one bus transaction for forensics: who (PC region)
// accessed what, when, and whether the EA-MPU allowed it. Denied accesses
// are the interesting ones — on real TrustLite hardware they raise a
// protection fault the system software can log, and in the paper's setting
// a burst of denials on the counter or clock addresses is exactly the
// fingerprint a roaming adversary's Phase II leaves behind.
type TraceEntry struct {
	When   sim.Time
	PC     Addr
	Addr   Addr
	Size   uint32
	Kind   AccessKind
	Denied bool
	Reason string
}

func (e TraceEntry) String() string {
	verdict := "ok"
	if e.Denied {
		verdict = "DENIED: " + e.Reason
	}
	return fmt.Sprintf("[%v] pc=%#08x %s %d@%#08x %s",
		e.When, uint32(e.PC), e.Kind, e.Size, uint32(e.Addr), verdict)
}

// Tracer is a bounded ring buffer of bus transactions. Disabled (nil or
// capacity 0) it costs nothing; enabled, it records every checked access.
type Tracer struct {
	entries []TraceEntry
	next    int
	filled  bool
	// DeniedOnly restricts recording to faulting accesses — the usual
	// forensic configuration, since allowed traffic is enormous.
	DeniedOnly bool

	// Denials counts denied accesses since reset, regardless of ring size.
	Denials uint64
	// Accesses counts all checked accesses since reset.
	Accesses uint64
}

// NewTracer builds a tracer with space for capacity entries.
func NewTracer(capacity int, deniedOnly bool) *Tracer {
	if capacity < 0 {
		capacity = 0
	}
	return &Tracer{entries: make([]TraceEntry, capacity), DeniedOnly: deniedOnly}
}

func (t *Tracer) record(e TraceEntry) {
	t.Accesses++
	if e.Denied {
		t.Denials++
	}
	if len(t.entries) == 0 || (t.DeniedOnly && !e.Denied) {
		return
	}
	t.entries[t.next] = e
	t.next++
	if t.next == len(t.entries) {
		t.next = 0
		t.filled = true
	}
}

// Entries returns the recorded transactions, oldest first.
func (t *Tracer) Entries() []TraceEntry {
	if !t.filled {
		return append([]TraceEntry(nil), t.entries[:t.next]...)
	}
	out := make([]TraceEntry, 0, len(t.entries))
	out = append(out, t.entries[t.next:]...)
	out = append(out, t.entries[:t.next]...)
	return out
}

// Reset clears the ring and counters.
func (t *Tracer) Reset() {
	t.next = 0
	t.filled = false
	t.Denials = 0
	t.Accesses = 0
}

// DenialsAt reports how many recorded denials touched the given region —
// the forensic query "did anything get refused on the counter word?".
func (t *Tracer) DenialsAt(region Region) int {
	n := 0
	for _, e := range t.Entries() {
		if e.Denied && region.Overlaps(Region{Start: e.Addr, Size: e.Size}) {
			n++
		}
	}
	return n
}

// AttachTracer connects a tracer to the bus; pass nil to detach. The MCU
// exposes it so scenarios can arm tracing after boot (boot traffic is
// rarely interesting).
func (m *MCU) AttachTracer(t *Tracer) {
	m.Bus.tracer = t
}

// Tracer returns the attached tracer, if any.
func (m *MCU) Tracer() *Tracer { return m.Bus.tracer }
