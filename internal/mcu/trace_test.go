package mcu

import (
	"strings"
	"testing"
)

func tracedMCU(t *testing.T, capacity int, deniedOnly bool) (*MCU, *Tracer) {
	t.Helper()
	m := newTestMCU(t)
	tr := NewTracer(capacity, deniedOnly)
	m.AttachTracer(tr)
	return m, tr
}

func TestTracerRecordsAllowedAndDenied(t *testing.T) {
	m, tr := tracedMCU(t, 16, false)
	secret := Region{Start: RAMRegion.Start, Size: 64}
	if err := m.MPU.SetRule(0, Rule{Code: ROMRegion, Data: secret, Perm: PermRead, Enabled: true}); err != nil {
		t.Fatal(err)
	}
	m.Bus.Read(ROMRegion.Start, secret.Start, 4)   // allowed
	m.Bus.Read(FlashRegion.Start, secret.Start, 4) // denied
	entries := tr.Entries()
	if len(entries) != 2 {
		t.Fatalf("recorded %d entries, want 2", len(entries))
	}
	if entries[0].Denied || !entries[1].Denied {
		t.Fatalf("verdicts wrong: %v", entries)
	}
	if tr.Accesses != 2 || tr.Denials != 1 {
		t.Fatalf("counters: accesses=%d denials=%d", tr.Accesses, tr.Denials)
	}
	if !strings.Contains(entries[1].String(), "DENIED") {
		t.Fatalf("denied entry renders as %q", entries[1])
	}
}

func TestTracerDeniedOnly(t *testing.T) {
	m, tr := tracedMCU(t, 16, true)
	m.Bus.Read(FlashRegion.Start, RAMRegion.Start, 4) // allowed: not recorded
	m.Bus.Write(FlashRegion.Start, ROMRegion.Start, []byte{1})
	entries := tr.Entries()
	if len(entries) != 1 || !entries[0].Denied {
		t.Fatalf("denied-only recorded %v", entries)
	}
	// Counters still see everything.
	if tr.Accesses != 2 {
		t.Fatalf("Accesses = %d, want 2", tr.Accesses)
	}
}

func TestTracerRingWraps(t *testing.T) {
	m, tr := tracedMCU(t, 3, false)
	for i := 0; i < 5; i++ {
		m.Bus.Read(FlashRegion.Start, RAMRegion.Start+Addr(i*4), 4)
	}
	entries := tr.Entries()
	if len(entries) != 3 {
		t.Fatalf("ring holds %d entries, want 3", len(entries))
	}
	// Oldest-first ordering: the last three accesses (i = 2, 3, 4).
	for i, e := range entries {
		want := RAMRegion.Start + Addr((i+2)*4)
		if e.Addr != want {
			t.Fatalf("entry %d at %#x, want %#x", i, uint32(e.Addr), uint32(want))
		}
	}
}

func TestTracerDenialsAt(t *testing.T) {
	m, tr := tracedMCU(t, 32, true)
	counter := Region{Start: FlashRegion.Start + 0x7F000, Size: 8}
	if err := m.MPU.SetRule(0, Rule{Code: ROMRegion, Data: counter, Perm: PermRead | PermWrite, Enabled: true}); err != nil {
		t.Fatal(err)
	}
	// Three malware probes at the counter, one elsewhere.
	for i := 0; i < 3; i++ {
		m.Bus.Write(FlashRegion.Start, counter.Start, []byte{0})
	}
	m.Bus.Write(FlashRegion.Start, ROMRegion.Start, []byte{0})
	if got := tr.DenialsAt(counter); got != 3 {
		t.Fatalf("DenialsAt(counter) = %d, want 3", got)
	}
	if got := tr.DenialsAt(Region{Start: RAMRegion.Start, Size: 16}); got != 0 {
		t.Fatalf("DenialsAt(unrelated) = %d, want 0", got)
	}
}

func TestTracerReset(t *testing.T) {
	m, tr := tracedMCU(t, 4, false)
	m.Bus.Read(FlashRegion.Start, RAMRegion.Start, 4)
	tr.Reset()
	if tr.Accesses != 0 || tr.Denials != 0 || len(tr.Entries()) != 0 {
		t.Fatal("Reset left state behind")
	}
}

func TestTracerZeroCapacityCountsOnly(t *testing.T) {
	m, tr := tracedMCU(t, 0, false)
	m.Bus.Write(FlashRegion.Start, ROMRegion.Start, []byte{1})
	if len(tr.Entries()) != 0 {
		t.Fatal("zero-capacity tracer stored entries")
	}
	if tr.Denials != 1 {
		t.Fatalf("Denials = %d, want 1", tr.Denials)
	}
	if NewTracer(-5, false) == nil {
		t.Fatal("negative capacity not clamped")
	}
}

func TestDetachTracer(t *testing.T) {
	m, tr := tracedMCU(t, 4, false)
	m.AttachTracer(nil)
	if m.Tracer() != nil {
		t.Fatal("tracer still attached")
	}
	m.Bus.Read(FlashRegion.Start, RAMRegion.Start, 4)
	if tr.Accesses != 0 {
		t.Fatal("detached tracer still recording")
	}
}

func TestTraceEntriesCarryTime(t *testing.T) {
	m, tr := tracedMCU(t, 4, false)
	m.K.RunUntil(5_000_000) // 5 ms
	m.Bus.Read(FlashRegion.Start, RAMRegion.Start, 4)
	entries := tr.Entries()
	if len(entries) != 1 || entries[0].When != 5_000_000 {
		t.Fatalf("entry time = %v, want 5 ms", entries)
	}
}
