// Package modelcheck verifies the paper's Table 2 and §5 claims by
// exhaustive bounded exploration rather than scripted attack runs: a
// breadth-first search over *every* interleaving of verifier issues,
// Dolev-Yao deliveries (any recorded message, any time, repeatedly — so
// replay, reorder and delay all emerge from the action set instead of
// being hand-coded), clock ticks, and (optionally) roaming-adversary
// state tampering. A freshness mechanism "mitigates" an attack class iff
// no violating state is reachable within the bounds.
//
// The model is deliberately small — a handful of messages and time ticks —
// because the mechanisms are finite-state: the counter compares one
// integer, the window compares one difference, the nonce ring holds c
// entries. Violations, when they exist, appear within tiny bounds; their
// absence within the bounds is strong evidence (and for these automata,
// an easy inductive argument) of the general property.
package modelcheck

import "fmt"

// Scheme selects the freshness mechanism under analysis.
type Scheme int

// The §4.2 mechanisms.
const (
	SchemeCounter Scheme = iota
	SchemeTimestamp
	SchemeNonceHistory
)

func (s Scheme) String() string {
	switch s {
	case SchemeCounter:
		return "counter"
	case SchemeTimestamp:
		return "timestamps"
	case SchemeNonceHistory:
		return "nonces"
	}
	return fmt.Sprintf("scheme(%d)", int(s))
}

// Bounds caps the exploration.
type Bounds struct {
	// MaxMessages bounds how many genuine requests the verifier issues.
	MaxMessages int
	// MaxTime bounds the clock (ticks).
	MaxTime int
	// MaxDeliveries bounds how many times the adversary replays each
	// recorded message.
	MaxDeliveries int
}

// DefaultBounds is comfortably past every mechanism's state horizon.
func DefaultBounds() Bounds {
	return Bounds{MaxMessages: 3, MaxTime: 6, MaxDeliveries: 2}
}

// Config selects the system under exploration.
type Config struct {
	Scheme Scheme
	Bounds Bounds
	// WindowTicks is the timestamp freshness window; it also defines the
	// "honest" delay bound for all schemes — an accepted delivery more
	// than WindowTicks after issue is a delay violation.
	WindowTicks int
	// NonceCapacity bounds the prover's nonce history (SchemeNonceHistory).
	// Set it ≥ MaxMessages to model the paper's complete history.
	NonceCapacity int
	// Roaming grants the adversary the §5 Phase II powers: rolling the
	// counter back and turning the prover clock back (unprotected state).
	Roaming bool
}

// Maximum model dimensions (compile-time array bounds).
const (
	maxMsgs  = 4
	nonceCap = 4
)

// state is one node of the transition system. It must be comparable —
// the visited set is a map keyed on it.
type state struct {
	issued     int8           // messages issued so far; message i has counter i+1
	issueTime  [maxMsgs]int8  // when each message was issued
	delivered  [maxMsgs]int8  // deliveries performed per message
	accepted   [maxMsgs]int8  // acceptances per message
	acceptTick [maxMsgs]int8  // first acceptance tick + 1 (0 = never)
	now        int8           // global clock
	lastCtr    int8           // prover counter_R
	clockBack  int8           // prover clock = now - clockBack (roaming tamper)
	ring       [nonceCap]int8 // nonce history, message index + 1 (0 = empty)
	ringLen    int8
	maxAccIdx  int8 // highest issue index accepted so far, +1 (0 = none)
}

// Violations tallies reachable attack successes per Table 2 row, under the
// paper's implicit assumptions: the verifier inter-spaces genuine requests
// by at least the window (§4.2's "sufficiently inter-spaced"), and a
// replay is a re-delivery at a *later* tick than the original acceptance
// (Adv_roam "waits an arbitrary length of time", §3.2). SameTickReplay
// records the caveat those assumptions hide: a duplicate delivered within
// the same instant, which pure timestamps cannot detect — the model
// checker's own finding, beyond the paper's table.
type Violations struct {
	Replay  bool // a message re-accepted at a later tick
	Reorder bool // a message accepted after a later-issued one was accepted
	Delay   bool // a message accepted ≥ WindowTicks after issue
	// SameTickReplay: an immediate duplicate accepted in the same tick as
	// the original — outside Table 2's attack model but physically real.
	SameTickReplay bool
}

// Result reports one exploration.
type Result struct {
	Config     Config
	States     int
	Violations Violations
}

// Mitigates reports the Table 2 verdict for an attack row.
func (r Result) Mitigates(attack string) bool {
	switch attack {
	case "replay":
		return !r.Violations.Replay
	case "reorder":
		return !r.Violations.Reorder
	case "delay":
		return !r.Violations.Delay
	}
	return false
}

// Explore runs the bounded breadth-first search.
func Explore(cfg Config) (Result, error) {
	if cfg.Bounds.MaxMessages <= 0 {
		cfg.Bounds = DefaultBounds()
	}
	if cfg.Bounds.MaxMessages > maxMsgs {
		return Result{}, fmt.Errorf("modelcheck: MaxMessages %d exceeds %d", cfg.Bounds.MaxMessages, maxMsgs)
	}
	if cfg.WindowTicks <= 0 {
		cfg.WindowTicks = 1
	}
	if cfg.NonceCapacity <= 0 || cfg.NonceCapacity > nonceCap {
		cfg.NonceCapacity = nonceCap
	}

	res := Result{Config: cfg}
	start := state{}
	visited := map[state]bool{start: true}
	frontier := []state{start}

	for len(frontier) > 0 {
		var next []state
		for _, s := range frontier {
			for _, succ := range successors(cfg, s, &res.Violations) {
				if !visited[succ] {
					visited[succ] = true
					next = append(next, succ)
				}
			}
		}
		frontier = next
	}
	res.States = len(visited)
	return res, nil
}

// successors enumerates every enabled action, recording violations caused
// by accepting deliveries.
func successors(cfg Config, s state, v *Violations) []state {
	var out []state

	// Action: the verifier issues the next genuine request (recorded by
	// the Dolev-Yao adversary the moment it is sent). Issues are
	// inter-spaced by at least the window — the §4.2 assumption under
	// which Table 2's timestamp column holds.
	if int(s.issued) < cfg.Bounds.MaxMessages &&
		(s.issued == 0 || int(s.now-s.issueTime[s.issued-1]) >= cfg.WindowTicks) {
		n := s
		n.issueTime[n.issued] = n.now
		n.issued++
		out = append(out, n)
	}

	// Action: time advances one tick.
	if int(s.now) < cfg.Bounds.MaxTime {
		n := s
		n.now++
		out = append(out, n)
	}

	// Action: the adversary delivers any recorded message (drop = simply
	// never delivering; reorder and delay are delivery-time choices).
	for i := int8(0); i < s.issued; i++ {
		if int(s.delivered[i]) >= cfg.Bounds.MaxDeliveries {
			continue
		}
		n := s
		n.delivered[i]++
		if proverAccepts(cfg, &n, i) {
			n.accepted[i]++
			recordViolations(cfg, &n, i, v)
			if n.acceptTick[i] == 0 {
				n.acceptTick[i] = n.now + 1
			}
			if i+1 > n.maxAccIdx {
				n.maxAccIdx = i + 1
			}
		}
		out = append(out, n)
	}

	// Roaming Phase II actions (unprotected prover only).
	if cfg.Roaming {
		if s.lastCtr > 0 {
			n := s
			n.lastCtr-- // counter rollback (i → i−1)
			out = append(out, n)
		}
		if int(s.clockBack) < cfg.Bounds.MaxTime {
			n := s
			n.clockBack++ // turn the prover clock back one tick
			out = append(out, n)
		}
	}
	return out
}

// proverAccepts applies the scheme's §4.2 acceptance rule and updates the
// prover's freshness state on acceptance.
func proverAccepts(cfg Config, s *state, msg int8) bool {
	switch cfg.Scheme {
	case SchemeCounter:
		ctr := msg + 1
		if ctr <= s.lastCtr {
			return false
		}
		s.lastCtr = ctr
		return true

	case SchemeTimestamp:
		proverNow := s.now - s.clockBack
		age := proverNow - s.issueTime[msg]
		// Strictly inside the window; future timestamps are refused (the
		// skew tolerance is below the model's tick granularity).
		return age >= 0 && int(age) < cfg.WindowTicks

	case SchemeNonceHistory:
		id := msg + 1
		for j := int8(0); j < s.ringLen; j++ {
			if s.ring[j] == id {
				return false
			}
		}
		if int(s.ringLen) == cfg.NonceCapacity {
			copy(s.ring[:], s.ring[1:s.ringLen])
			s.ring[s.ringLen-1] = id
		} else {
			s.ring[s.ringLen] = id
			s.ringLen++
		}
		return true
	}
	return false
}

// recordViolations classifies an acceptance against the Table 2 attack
// classes (see the Violations doc for the assumptions in force).
func recordViolations(cfg Config, s *state, msg int8, v *Violations) {
	if s.accepted[msg] > 1 {
		if s.acceptTick[msg] != 0 && s.now+1 > s.acceptTick[msg] {
			v.Replay = true
		} else {
			v.SameTickReplay = true
		}
	}
	if msg+1 < s.maxAccIdx {
		v.Reorder = true
	}
	if int(s.now-s.issueTime[msg]) >= cfg.WindowTicks {
		v.Delay = true
	}
}

// Table2Verdicts explores all three schemes (complete nonce history,
// protected state) and returns mitigated[attack][scheme].
func Table2Verdicts(bounds Bounds) (map[string]map[Scheme]bool, int, error) {
	out := map[string]map[Scheme]bool{
		"replay": {}, "reorder": {}, "delay": {},
	}
	states := 0
	for _, scheme := range []Scheme{SchemeNonceHistory, SchemeCounter, SchemeTimestamp} {
		res, err := Explore(Config{Scheme: scheme, Bounds: bounds, WindowTicks: 1, NonceCapacity: nonceCap})
		if err != nil {
			return nil, 0, err
		}
		states += res.States
		for _, attack := range []string{"replay", "reorder", "delay"} {
			out[attack][scheme] = res.Mitigates(attack)
		}
	}
	return out, states, nil
}
