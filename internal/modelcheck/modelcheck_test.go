package modelcheck

import "testing"

// TestTable2ByExhaustiveExploration verifies the paper's Table 2 over ALL
// adversary schedules within the bounds — replay, reorder and delay are
// not scripted; they are reachable (or not) consequences of the Dolev-Yao
// action set.
func TestTable2ByExhaustiveExploration(t *testing.T) {
	verdicts, states, err := Table2Verdicts(DefaultBounds())
	if err != nil {
		t.Fatal(err)
	}
	if states < 1000 {
		t.Fatalf("only %d states explored — bounds too tight to mean anything", states)
	}
	want := map[string]map[Scheme]bool{
		"replay":  {SchemeNonceHistory: true, SchemeCounter: true, SchemeTimestamp: true},
		"reorder": {SchemeNonceHistory: false, SchemeCounter: true, SchemeTimestamp: true},
		"delay":   {SchemeNonceHistory: false, SchemeCounter: false, SchemeTimestamp: true},
	}
	for attack, row := range want {
		for scheme, mitigated := range row {
			if verdicts[attack][scheme] != mitigated {
				t.Errorf("%s × %v: model says mitigated=%v, paper says %v",
					attack, scheme, verdicts[attack][scheme], mitigated)
			}
		}
	}
	t.Logf("explored %d states across three schemes", states)
}

func TestCounterStopsReplayInAllSchedules(t *testing.T) {
	res, err := Explore(Config{Scheme: SchemeCounter})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations.Replay {
		t.Fatal("a schedule exists in which a counter-checked message is accepted twice")
	}
	if res.Violations.Reorder {
		t.Fatal("a schedule exists in which the counter accepts out of order")
	}
	// And delay MUST be reachable — the counter's documented gap.
	if !res.Violations.Delay {
		t.Fatal("no delayed acceptance reachable — the model lost the counter's known weakness")
	}
}

func TestTimestampWindowIsTheOnlyDelayDefence(t *testing.T) {
	res, err := Explore(Config{Scheme: SchemeTimestamp, WindowTicks: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations.Delay {
		t.Fatal("timestamp scheme accepted beyond its window in some schedule")
	}
	if res.Violations.Replay {
		t.Fatal("later-tick replay accepted despite the one-tick window")
	}
	// The model checker's own finding, beyond Table 2: pure timestamps
	// cannot tell an immediate duplicate from the original — counter and
	// nonce schemes can. This is the caveat behind §4.2's "sufficiently
	// inter-spaced" assumption.
	if !res.Violations.SameTickReplay {
		t.Fatal("same-tick duplicate not reachable — the timestamp caveat vanished from the model")
	}
	for _, scheme := range []Scheme{SchemeCounter, SchemeNonceHistory} {
		r, err := Explore(Config{Scheme: scheme})
		if err != nil {
			t.Fatal(err)
		}
		if r.Violations.SameTickReplay {
			t.Fatalf("%v accepted a same-tick duplicate", scheme)
		}
	}
}

func TestTimestampReplayWithinWindowIsReachableWithWiderWindow(t *testing.T) {
	// The §4.2 caveat: timestamps only stop replay when genuine requests
	// are "sufficiently inter-spaced" relative to the window. With a wide
	// window (≥ the whole horizon) an immediate replay is accepted twice.
	res, err := Explore(Config{Scheme: SchemeTimestamp, WindowTicks: 10,
		Bounds: Bounds{MaxMessages: 2, MaxTime: 3, MaxDeliveries: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violations.Replay {
		t.Fatal("wide-window replay not reachable — the inter-spacing assumption vanished from the model")
	}
}

func TestBoundedNonceHistoryEvictionReachable(t *testing.T) {
	// Capacity 1 with 3 messages: replay of an evicted nonce must be
	// reachable — the paper's memory argument, model-checked.
	res, err := Explore(Config{Scheme: SchemeNonceHistory, NonceCapacity: 1,
		Bounds: Bounds{MaxMessages: 3, MaxTime: 4, MaxDeliveries: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violations.Replay {
		t.Fatal("evicted-nonce replay not reachable at capacity 1")
	}
	// Complete history: not reachable.
	full, err := Explore(Config{Scheme: SchemeNonceHistory, NonceCapacity: 4,
		Bounds: Bounds{MaxMessages: 3, MaxTime: 4, MaxDeliveries: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if full.Violations.Replay {
		t.Fatal("complete-history replay reachable — ring logic broken")
	}
}

// TestRoamingBreaksEverything: granting the §5 Phase II powers makes the
// previously-unreachable violations reachable for both stateful schemes —
// the model-checked version of the paper's core argument.
func TestRoamingBreaksEverything(t *testing.T) {
	// Tight bounds suffice: the §5 attacks need only one message, one
	// tamper step and a couple of ticks.
	bounds := Bounds{MaxMessages: 2, MaxTime: 4, MaxDeliveries: 2}
	ctr, err := Explore(Config{Scheme: SchemeCounter, Bounds: bounds, Roaming: true})
	if err != nil {
		t.Fatal(err)
	}
	if !ctr.Violations.Replay {
		t.Fatal("counter rollback does not enable replay in any schedule — §5 contradicted")
	}
	ts, err := Explore(Config{Scheme: SchemeTimestamp, WindowTicks: 1, Bounds: bounds, Roaming: true})
	if err != nil {
		t.Fatal(err)
	}
	if !ts.Violations.Delay {
		t.Fatal("clock rollback does not enable delayed replay in any schedule — §5 contradicted")
	}
	// And with the tampering actions removed (the protected prover), the
	// same bounds reach no violations: §5's mitigation, model-checked.
	protCtr, err := Explore(Config{Scheme: SchemeCounter, Bounds: bounds})
	if err != nil {
		t.Fatal(err)
	}
	if protCtr.Violations.Replay || protCtr.Violations.Reorder {
		t.Fatal("protected counter still violated")
	}
	protTs, err := Explore(Config{Scheme: SchemeTimestamp, WindowTicks: 1, Bounds: bounds})
	if err != nil {
		t.Fatal(err)
	}
	if protTs.Violations.Delay {
		t.Fatal("protected timestamps still violated")
	}
}

func TestBoundsValidation(t *testing.T) {
	if _, err := Explore(Config{Bounds: Bounds{MaxMessages: 99}}); err == nil {
		t.Fatal("oversized bounds accepted")
	}
	// Zero bounds fall back to defaults.
	res, err := Explore(Config{Scheme: SchemeCounter})
	if err != nil {
		t.Fatal(err)
	}
	if res.States == 0 {
		t.Fatal("no states explored with default bounds")
	}
}

func TestSchemeStrings(t *testing.T) {
	for _, s := range []Scheme{SchemeCounter, SchemeTimestamp, SchemeNonceHistory, Scheme(9)} {
		if s.String() == "" {
			t.Errorf("scheme %d has no name", s)
		}
	}
}

func TestMitigatesUnknownAttack(t *testing.T) {
	if (Result{}).Mitigates("frobnication") {
		t.Fatal("unknown attack reported as mitigated")
	}
}
