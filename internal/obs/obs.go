// Package obs is the daemon's dependency-free metrics core: lock-free
// counters, gauges and fixed-bucket latency histograms that are safe to
// record from the serving hot path, plus a Prometheus-text exposition
// writer served off the hot path (cmd/attestd's -metrics listener).
//
// The design constraint comes from the paper's asymmetry argument: the
// frames an adversary controls must die at the daemon's gate for ~ns, so
// the instrumentation of that gate cannot cost more than the gate itself.
// Recording is therefore atomics on preallocated arrays only — no maps,
// no interfaces, no fmt, and 0 allocs/op (pinned by alloc tests). All
// allocation and formatting happens at registration time (startup) or
// exposition time (a scrape, off the hot path).
//
// Series identity (name plus rendered label pairs) is fixed at
// registration: a labelled family like rejects{cause=...} is N separate
// Counter registrations, one per cause, so the hot path never renders or
// hashes a label.
package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// A Label is one name/value pair of a series. Labels are rendered once at
// registration; recording never touches them.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing counter. The zero value is ready
// to use; a nil *Counter is a no-op, so optional instrumentation can be
// wired unconditionally.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load reads the current value.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value. The zero value is ready to
// use; a nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds d (may be negative).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Load reads the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultLatencyBuckets spans the daemon's dynamic range: the ~ns gate
// rejects sit in the lowest buckets, the ≈754 ms simulated measurement in
// the highest — the spread between them is the paper's asymmetry, visible
// directly in the two histograms' mass.
var DefaultLatencyBuckets = []time.Duration{
	500 * time.Nanosecond,
	2 * time.Microsecond,
	10 * time.Microsecond,
	50 * time.Microsecond,
	250 * time.Microsecond,
	time.Millisecond,
	5 * time.Millisecond,
	25 * time.Millisecond,
	100 * time.Millisecond,
	500 * time.Millisecond,
	2500 * time.Millisecond,
	10 * time.Second,
}

// Histogram is a fixed-bucket latency histogram. Buckets are chosen at
// registration; Observe is a branch-light scan over a preallocated bound
// array plus three atomic adds. Per-bucket counts are stored
// non-cumulative and cumulated at exposition, so recording touches exactly
// one bucket. A nil *Histogram is a no-op.
type Histogram struct {
	bounds []int64         // upper bounds in ns, ascending; +Inf implicit
	counts []atomic.Uint64 // len(bounds)+1, non-cumulative
	count  atomic.Uint64
	sum    atomic.Int64 // total observed ns
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	v := int64(d)
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count reads the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reads the total observed time.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// metricKind discriminates the exposition shape of a series.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// series is one registered time series (a family member with its labels
// already rendered).
type series struct {
	name   string // family name, e.g. attestd_rejects_total
	help   string
	kind   metricKind
	labels string // rendered inner label list: `cause="malformed"`, or ""

	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// Registry holds the registered series. Registration may allocate and
// lock; it happens at component construction, never on a serving path. A
// nil *Registry returns nil instruments from every constructor, which
// record as no-ops — callers can instrument unconditionally and let the
// deployment decide whether a registry exists.
type Registry struct {
	mu     sync.Mutex
	series []*series
}

// New builds an empty registry.
func New() *Registry { return &Registry{} }

// labelEscaper implements the text-format escaping rules for label
// values: backslash, double quote and newline must be escaped or a
// hostile value (a device-supplied cause string, say) breaks out of the
// quoted value and corrupts — or forges — exposition lines.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// EscapeLabelValue escapes a label value per the Prometheus text
// exposition format. renderLabels applies it to every registered value;
// it is exported for callers that assemble label strings by hand.
func EscapeLabelValue(v string) string { return labelEscaper.Replace(v) }

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(EscapeLabelValue(l.Value))
		sb.WriteByte('"')
	}
	return sb.String()
}

func (r *Registry) register(s *series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, have := range r.series {
		if have.name == s.name && have.labels == s.labels {
			panic(fmt.Sprintf("obs: duplicate series %s{%s}", s.name, s.labels))
		}
	}
	r.series = append(r.series, s)
}

// Counter registers and returns a counter series. Returns nil (a no-op
// counter) on a nil registry.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{}
	r.register(&series{name: name, help: help, kind: kindCounter, labels: renderLabels(labels), counter: c})
	return c
}

// Gauge registers and returns a gauge series. Returns nil on a nil
// registry.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{}
	r.register(&series{name: name, help: help, kind: kindGauge, labels: renderLabels(labels), gauge: g})
	return g
}

// GaugeFunc registers a gauge whose value is computed at exposition time
// — the escape hatch for state that already has an owner (fleet
// aggregates, map sizes) and must not be duplicated on the hot path. fn
// runs on the scrape goroutine only.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(&series{name: name, help: help, kind: kindGaugeFunc, labels: renderLabels(labels), gaugeFn: fn})
}

// Histogram registers and returns a latency histogram with the given
// bucket upper bounds (nil = DefaultLatencyBuckets). Returns nil on a nil
// registry.
func (r *Registry) Histogram(name, help string, buckets []time.Duration, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefaultLatencyBuckets
	}
	h := &Histogram{
		bounds: make([]int64, len(buckets)),
		counts: make([]atomic.Uint64, len(buckets)+1),
	}
	for i, b := range buckets {
		h.bounds[i] = int64(b)
	}
	for i := 1; i < len(h.bounds); i++ {
		if h.bounds[i] <= h.bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s buckets not strictly ascending", name))
		}
	}
	r.register(&series{name: name, help: help, kind: kindHistogram, labels: renderLabels(labels), hist: h})
	return h
}

// typeString maps a kind to its exposition TYPE keyword.
func (k metricKind) typeString() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

func formatSeconds(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}

// WritePrometheus writes the registry in Prometheus text exposition
// format (version 0.0.4). Families are emitted in sorted name order with
// one HELP/TYPE header each; label variants keep registration order
// within a family. Histograms expose cumulative _bucket series plus _sum
// (seconds) and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	byName := make(map[string][]*series, len(r.series))
	names := make([]string, 0, len(r.series))
	for _, s := range r.series {
		if _, ok := byName[s.name]; !ok {
			names = append(names, s.name)
		}
		byName[s.name] = append(byName[s.name], s)
	}
	r.mu.Unlock()
	sort.Strings(names)

	var sb strings.Builder
	for _, name := range names {
		family := byName[name]
		fmt.Fprintf(&sb, "# HELP %s %s\n", name, family[0].help)
		fmt.Fprintf(&sb, "# TYPE %s %s\n", name, family[0].kind.typeString())
		for _, s := range family {
			switch s.kind {
			case kindCounter:
				writeSample(&sb, s.name, s.labels, "", strconv.FormatUint(s.counter.Load(), 10))
			case kindGauge:
				writeSample(&sb, s.name, s.labels, "", strconv.FormatInt(s.gauge.Load(), 10))
			case kindGaugeFunc:
				writeSample(&sb, s.name, s.labels, "", strconv.FormatFloat(s.gaugeFn(), 'g', -1, 64))
			case kindHistogram:
				h := s.hist
				var cum uint64
				for i, bound := range h.bounds {
					cum += h.counts[i].Load()
					writeSample(&sb, s.name+"_bucket", s.labels, `le="`+formatSeconds(bound)+`"`, strconv.FormatUint(cum, 10))
				}
				cum += h.counts[len(h.bounds)].Load()
				writeSample(&sb, s.name+"_bucket", s.labels, `le="+Inf"`, strconv.FormatUint(cum, 10))
				writeSample(&sb, s.name+"_sum", s.labels, "", formatSeconds(h.sum.Load()))
				// _count must equal the +Inf bucket by definition. Reading
				// h.count here instead would race a concurrent Observe (which
				// bumps the bucket and the count as two separate atomics) and
				// let a scrape see _count != +Inf.
				writeSample(&sb, s.name+"_count", s.labels, "", strconv.FormatUint(cum, 10))
			}
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// writeSample emits one `name{labels,extra} value` line; both label parts
// may be empty.
func writeSample(sb *strings.Builder, name, labels, extra, value string) {
	sb.WriteString(name)
	if labels != "" || extra != "" {
		sb.WriteByte('{')
		sb.WriteString(labels)
		if labels != "" && extra != "" {
			sb.WriteByte(',')
		}
		sb.WriteString(extra)
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	sb.WriteString(value)
	sb.WriteByte('\n')
}

// Handler serves the registry as a Prometheus scrape endpoint. Mount it
// on a listener of its own (attestd -metrics) so scrapes share nothing
// with the frame-serving path.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
