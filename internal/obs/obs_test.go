package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	g := r.Gauge("g", "a gauge")
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestNilRegistryAndInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x_seconds", "", nil)
	r.GaugeFunc("y", "", func() float64 { return 1 })
	c.Inc()
	g.Set(3)
	h.Observe(time.Millisecond)
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments recorded values")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := New()
	h := r.Histogram("lat_seconds", "latency", []time.Duration{
		time.Microsecond, time.Millisecond, time.Second,
	})
	h.Observe(500 * time.Nanosecond) // bucket 0 (le 1µs)
	h.Observe(time.Microsecond)      // bucket 0 (le is inclusive)
	h.Observe(2 * time.Microsecond)  // bucket 1
	h.Observe(2 * time.Second)       // overflow (+Inf)
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	want := 500*time.Nanosecond + time.Microsecond + 2*time.Microsecond + 2*time.Second
	if h.Sum() != want {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		`lat_seconds_bucket{le="1e-06"} 2`,
		`lat_seconds_bucket{le="0.001"} 3`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="+Inf"} 4`,
		`lat_seconds_count 4`,
	} {
		if !strings.Contains(sb.String(), line+"\n") {
			t.Errorf("exposition missing %q:\n%s", line, sb.String())
		}
	}
}

func TestExpositionFormat(t *testing.T) {
	r := New()
	r.Counter("rejects_total", "rejects by cause", L("cause", "malformed")).Add(3)
	r.Counter("rejects_total", "rejects by cause", L("cause", "unsolicited")).Add(5)
	r.Gauge("inflight", "outstanding requests").Set(2)
	r.GaugeFunc("devices", "known devices", func() float64 { return 8 })

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, line := range []string{
		"# HELP rejects_total rejects by cause",
		"# TYPE rejects_total counter",
		`rejects_total{cause="malformed"} 3`,
		`rejects_total{cause="unsolicited"} 5`,
		"# TYPE inflight gauge",
		"inflight 2",
		"devices 8",
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
	// One HELP/TYPE header per family, not per label variant.
	if n := strings.Count(out, "# TYPE rejects_total"); n != 1 {
		t.Errorf("rejects_total TYPE header emitted %d times, want 1", n)
	}
}

// TestHostileLabelValuesEscaped: a label value is attacker-influenced
// text (an error string, a peer-supplied name). Unescaped quotes or
// newlines would let it terminate the sample early or inject whole forged
// exposition lines. Every escaped exposition must survive a ParseText
// round-trip as a single series.
func TestHostileLabelValuesEscaped(t *testing.T) {
	cases := []struct {
		name  string
		value string
		want  string // rendered label list
	}{
		{"plain", "tcp", `cause="tcp"`},
		{"quote", `say "no"`, `cause="say \"no\""`},
		{"backslash", `C:\boot`, `cause="C:\\boot"`},
		{"newline-injection", "x\"} 0\nforged_total 999", `cause="x\"} 0\nforged_total 999"`},
		{"trailing-backslash", `dangling\`, `cause="dangling\\"`},
		{"all-three", "\\\"\n", `cause="\\\"\n"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := New()
			r.Counter("hostile_total", "h", L("cause", tc.value)).Add(7)
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Fatal(err)
			}
			wantLine := "hostile_total{" + tc.want + "} 7\n"
			if !strings.Contains(sb.String(), wantLine) {
				t.Fatalf("exposition missing %q:\n%s", wantLine, sb.String())
			}
			parsed, err := ParseText(strings.NewReader(sb.String()))
			if err != nil {
				t.Fatalf("round-trip parse: %v", err)
			}
			if len(parsed) != 1 {
				t.Fatalf("hostile value split the exposition into %d series: %v", len(parsed), parsed)
			}
			if got := parsed["hostile_total{"+tc.want+"}"]; got != 7 {
				t.Fatalf("round-trip value = %v, want 7 (parsed: %v)", got, parsed)
			}
		})
	}
}

// TestHistogramScrapeConsistentUnderLoad: Observe bumps one bucket and
// the total count as separate atomics, so a scrape racing recorders must
// derive _count from the cumulated buckets — never read the count atomic
// — or _count and the +Inf bucket drift apart within one exposition.
func TestHistogramScrapeConsistentUnderLoad(t *testing.T) {
	r := New()
	h := r.Histogram("busy_seconds", "", []time.Duration{time.Microsecond, time.Millisecond})
	stop := make(chan struct{})
	done := make(chan struct{})
	const writers = 4
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					h.Observe(time.Duration(i%2000) * time.Microsecond)
				}
			}
		}(w)
	}
	for scrape := 0; scrape < 200; scrape++ {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		parsed, err := ParseText(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatal(err)
		}
		inf := parsed[`busy_seconds_bucket{le="+Inf"}`]
		count := parsed["busy_seconds_count"]
		if inf != count {
			t.Fatalf("scrape %d: +Inf bucket %v != _count %v", scrape, inf, count)
		}
	}
	close(stop)
	for w := 0; w < writers; w++ {
		<-done
	}
}

func TestDuplicateSeriesPanics(t *testing.T) {
	r := New()
	r.Counter("dup_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("dup_total", "")
}

func TestHandler(t *testing.T) {
	r := New()
	r.Counter("served_total", "frames served").Add(9)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "served_total 9\n") {
		t.Fatalf("scrape body:\n%s", buf[:n])
	}
}

// TestRecordingZeroAllocs pins the hot-path contract the whole layer is
// built on: recording into any obs instrument — live or nil — is atomics
// on preallocated arrays, 0 allocs/op.
func TestRecordingZeroAllocs(t *testing.T) {
	r := New()
	c := r.Counter("hot_total", "")
	g := r.Gauge("hot", "")
	h := r.Histogram("hot_seconds", "", nil)
	var nilC *Counter
	var nilH *Histogram
	for name, fn := range map[string]func(){
		"Counter.Inc":           func() { c.Inc() },
		"Counter.Add":           func() { c.Add(3) },
		"Gauge.Set":             func() { g.Set(5) },
		"Gauge.Add":             func() { g.Add(-1) },
		"Histogram.Observe":     func() { h.Observe(17 * time.Microsecond) },
		"Histogram.overflow":    func() { h.Observe(time.Minute) },
		"nil Counter.Inc":       func() { nilC.Inc() },
		"nil Histogram.Observe": func() { nilH.Observe(time.Second) },
	} {
		fn() // warm up
		if n := testing.AllocsPerRun(1000, fn); n != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, n)
		}
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := New()
	h := r.Histogram("bench_seconds", "", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i%1000) * time.Microsecond)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := New()
	c := r.Counter("bench_total", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
