package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseText parses a Prometheus text exposition (the format WritePrometheus
// emits) into a map keyed by the full series string — metric name plus
// rendered label set, exactly as exposed. Comment and blank lines are
// skipped; any other unparseable line is an error. The scrape-side
// counterpart of WritePrometheus: the load generators use it to read the
// daemon's counters mid-run.
func ParseText(r io.Reader) (map[string]float64, error) {
	series := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("obs: unparseable exposition line %q", line)
		}
		val, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("obs: series %q has unparseable value %q", line[:sp], line[sp+1:])
		}
		series[line[:sp]] = val
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return series, nil
}
