package protocol

import (
	"testing"
)

// These tests lock in the zero-allocation contract of the append-style
// encoders and the decode-into path: the serving hot path (attestd and the
// load generator) runs these per frame, so a regression here is a GC-
// pressure regression under fleet traffic.

func assertZeroAllocs(t *testing.T, name string, fn func()) {
	t.Helper()
	fn() // warm up: first call may grow the scratch buffer
	if n := testing.AllocsPerRun(1000, fn); n != 0 {
		t.Errorf("%s: %v allocs/op, want 0", name, n)
	}
}

func TestAppendEncodeZeroAllocs(t *testing.T) {
	req := &AttReq{
		Freshness: FreshCounter,
		Auth:      AuthHMACSHA1,
		Nonce:     7,
		Counter:   9,
		Tag:       make([]byte, 20),
	}
	resp := &AttResp{Nonce: 7, Counter: 9}
	cmd := &CommandReq{
		Kind:      CmdSecureErase,
		Freshness: FreshCounter,
		Auth:      AuthHMACSHA1,
		Nonce:     11,
		Counter:   13,
		Body:      make([]byte, 64),
		Tag:       make([]byte, 20),
	}
	cmdResp := &CommandResp{Kind: CmdSecureErase, Nonce: 11, Body: make([]byte, 8), Tag: make([]byte, 20)}
	hello := &Hello{Freshness: FreshCounter, Auth: AuthHMACSHA1, DeviceID: "alloc-dev"}
	stats := &StatsReport{Received: 1, Measurements: 2}
	swarmReq := &SwarmReq{Root: 3, Nonce: 4, TreeID: 5, Tag: make([]byte, 20)}
	swarmResp := &SwarmResp{Depth: 1, Root: 3, Nonce: 4, Bitmap: make([]byte, 8)}

	buf := make([]byte, 0, 512)
	assertZeroAllocs(t, "AttReq.AppendEncode", func() { buf = req.AppendEncode(buf[:0]) })
	assertZeroAllocs(t, "AttResp.AppendEncode", func() { buf = resp.AppendEncode(buf[:0]) })
	assertZeroAllocs(t, "CommandReq.AppendEncode", func() { buf = cmd.AppendEncode(buf[:0]) })
	assertZeroAllocs(t, "CommandResp.AppendEncode", func() { buf = cmdResp.AppendEncode(buf[:0]) })
	assertZeroAllocs(t, "Hello.AppendEncode", func() { buf = hello.AppendEncode(buf[:0]) })
	assertZeroAllocs(t, "StatsReport.AppendEncode", func() { buf = stats.AppendEncode(buf[:0]) })
	assertZeroAllocs(t, "SwarmReq.AppendEncode", func() { buf = swarmReq.AppendEncode(buf[:0]) })
	assertZeroAllocs(t, "SwarmResp.AppendEncode", func() { buf = swarmResp.AppendEncode(buf[:0]) })
}

// TestAppendEncodeMatchesEncode pins AppendEncode and Encode to identical
// wire images, including when appending after existing bytes.
func TestAppendEncodeMatchesEncode(t *testing.T) {
	req := &AttReq{Freshness: FreshCounter, Auth: AuthHMACSHA1, Nonce: 1, Counter: 2, Tag: []byte{9, 8, 7}}
	resp := &AttResp{Nonce: 3, Counter: 4}
	cmd := &CommandReq{Kind: CmdClockSync, Freshness: FreshCounter, Auth: AuthHMACSHA1, Nonce: 5, Body: []byte("b"), Tag: []byte("t")}
	cmdResp := &CommandResp{Kind: CmdClockSync, Status: StatusOK, Nonce: 6, Body: []byte("r"), Tag: []byte("g")}
	hello := &Hello{Freshness: FreshCounter, Auth: AuthHMACSHA1, DeviceID: "dev"}
	stats := &StatsReport{Received: 42, FramesIn: 43}
	swarmReq := &SwarmReq{OwnOnly: true, Root: 7, Nonce: 8, TreeID: 9, Tag: []byte{1, 2, 3}}
	swarmResp := &SwarmResp{Depth: 2, Root: 7, Nonce: 8, Bitmap: []byte{0x81}}

	cases := []struct {
		name   string
		append func(dst []byte) []byte
		encode func() []byte
	}{
		{"AttReq", req.AppendEncode, req.Encode},
		{"AttResp", resp.AppendEncode, resp.Encode},
		{"CommandReq", cmd.AppendEncode, cmd.Encode},
		{"CommandResp", cmdResp.AppendEncode, cmdResp.Encode},
		{"Hello", hello.AppendEncode, hello.Encode},
		{"StatsReport", stats.AppendEncode, stats.Encode},
		{"SwarmReq", swarmReq.AppendEncode, swarmReq.Encode},
		{"SwarmResp", swarmResp.AppendEncode, swarmResp.Encode},
	}
	for _, tc := range cases {
		prefix := []byte{0xEE, 0xFF}
		got := tc.append(append([]byte(nil), prefix...))
		want := append(append([]byte(nil), prefix...), tc.encode()...)
		if string(got) != string(want) {
			t.Errorf("%s: AppendEncode image differs from Encode", tc.name)
		}
	}
}

func TestDecodeAttRespIntoZeroAllocs(t *testing.T) {
	frame := (&AttResp{Nonce: 21, Counter: 22}).Encode()
	var resp AttResp
	assertZeroAllocs(t, "DecodeAttRespInto", func() {
		if err := DecodeAttRespInto(frame, &resp); err != nil {
			t.Fatal(err)
		}
	})
	if resp.Nonce != 21 || resp.Counter != 22 {
		t.Fatalf("decoded resp = %+v", resp)
	}

	// The reject branches are hostile-controlled; they must not allocate
	// either (static errors).
	bad := append([]byte(nil), frame...)
	bad[0] = 0xFF
	assertZeroAllocs(t, "DecodeAttRespInto reject", func() {
		if err := DecodeAttRespInto(bad, &resp); err == nil {
			t.Fatal("bad magic accepted")
		}
	})
}

// TestDecodeSwarmIntoZeroAllocs pins the swarm frames' decode-into paths
// (and their hostile-controlled reject branches) at 0 allocs/frame: the
// per-hop gate and the daemon's aggregate routing run these per frame.
func TestDecodeSwarmIntoZeroAllocs(t *testing.T) {
	reqFrame := (&SwarmReq{Root: 5, Nonce: 6, TreeID: 7, Tag: make([]byte, 20)}).Encode()
	respFrame := (&SwarmResp{Depth: 1, Root: 5, Nonce: 6, Bitmap: make([]byte, 32)}).Encode()

	req := &SwarmReq{Tag: make([]byte, 0, 64)}
	resp := &SwarmResp{Bitmap: make([]byte, 0, 64)}
	assertZeroAllocs(t, "DecodeSwarmReqInto", func() {
		if err := DecodeSwarmReqInto(reqFrame, req); err != nil {
			t.Fatal(err)
		}
	})
	assertZeroAllocs(t, "DecodeSwarmRespInto", func() {
		if err := DecodeSwarmRespInto(respFrame, resp); err != nil {
			t.Fatal(err)
		}
	})

	badReq := append([]byte(nil), reqFrame...)
	badReq[1] = 0xFF
	badResp := append([]byte(nil), respFrame...)
	badResp[6] = 0xFF // bitmap-length mismatch
	assertZeroAllocs(t, "DecodeSwarmReqInto reject", func() {
		if err := DecodeSwarmReqInto(badReq, req); err == nil {
			t.Fatal("bad magic accepted")
		}
	})
	assertZeroAllocs(t, "DecodeSwarmRespInto reject", func() {
		if err := DecodeSwarmRespInto(badResp, resp); err == nil {
			t.Fatal("bad bitmap length accepted")
		}
	})
}

// TestCheckDecodedResponseUnsolicitedZeroAllocs covers the verifier-side
// gate: a response to no outstanding nonce must be refused without
// allocating, since an impersonator can emit those at line rate.
func TestCheckDecodedResponseUnsolicitedZeroAllocs(t *testing.T) {
	key := []byte("0123456789abcdef0123")
	v, err := NewVerifier(VerifierConfig{
		Freshness: FreshCounter,
		Auth:      NewHMACAuth(key),
		AttestKey: key,
		Golden:    []byte("golden"),
	})
	if err != nil {
		t.Fatal(err)
	}
	resp := &AttResp{Nonce: 999}
	assertZeroAllocs(t, "CheckDecodedResponse unsolicited", func() {
		if ok, err := v.CheckDecodedResponse(resp); ok || err != ErrUnsolicited {
			t.Fatalf("ok=%v err=%v, want unsolicited reject", ok, err)
		}
	})
}
