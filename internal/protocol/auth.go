package protocol

import (
	"errors"

	"proverattest/internal/crypto/aes"
	"proverattest/internal/crypto/cost"
	"proverattest/internal/crypto/ecc"
	"proverattest/internal/crypto/hmac"
	"proverattest/internal/crypto/speck"
)

// Authenticator is a request-authentication scheme (§4.1). Sign runs on
// the verifier; Verify runs on the prover and reports the prover-side
// cycle cost of the check so the trust anchor can account for it. Key
// schedules are expanded once at construction, matching the paper's
// "if key expansion is done in advance" accounting.
type Authenticator interface {
	Kind() AuthKind
	// Sign computes the request tag. It fails on verify-only instances
	// (an ECDSA authenticator built from the public key alone).
	Sign(signed []byte) ([]byte, error)
	// Verify checks tag over signed and returns the prover-side cost.
	Verify(signed, tag []byte) (bool, cost.Cycles)
	// TagLen is the byte length of tags this scheme produces.
	TagLen() int
}

// ErrVerifyOnly reports a Sign call on an authenticator that holds no
// signing key.
var ErrVerifyOnly = errors.New("protocol: authenticator holds no signing key")

// NewAuthenticator builds the scheme identified by kind, keyed with the
// shared symmetric key (HMAC/AES/Speck) — a convenience for the common
// symmetric case.
func NewAuthenticator(kind AuthKind, key []byte) (Authenticator, error) {
	switch kind {
	case AuthNone:
		return NoAuth{}, nil
	case AuthHMACSHA1:
		return NewHMACAuth(key), nil
	case AuthAESCBCMAC:
		return NewAESAuth(key)
	case AuthSpeckCBCMAC:
		return NewSpeckAuth(key)
	case AuthECDSA:
		return nil, errors.New("protocol: ECDSA authenticator needs a key pair, use NewECDSAAuth")
	}
	return nil, errors.New("protocol: unknown auth kind")
}

// NoAuth is the strawman: requests carry no tag and every request is
// accepted. This is the configuration the paper's §3.1 DoS analysis
// attacks.
type NoAuth struct{}

// Kind implements Authenticator.
func (NoAuth) Kind() AuthKind { return AuthNone }

// Sign implements Authenticator.
func (NoAuth) Sign(signed []byte) ([]byte, error) { return nil, nil }

// Verify implements Authenticator: always true, zero cost.
func (NoAuth) Verify(signed, tag []byte) (bool, cost.Cycles) { return len(tag) == 0, 0 }

// TagLen implements Authenticator.
func (NoAuth) TagLen() int { return 0 }

// HMACAuth authenticates requests with HMAC-SHA1 over the shared key.
// §4.1: validating one 512-bit message block costs ≈0.43 ms on the prover.
type HMACAuth struct {
	key []byte
}

// NewHMACAuth keys the scheme.
func NewHMACAuth(key []byte) *HMACAuth {
	return &HMACAuth{key: append([]byte(nil), key...)}
}

// Kind implements Authenticator.
func (a *HMACAuth) Kind() AuthKind { return AuthHMACSHA1 }

// Sign implements Authenticator.
func (a *HMACAuth) Sign(signed []byte) ([]byte, error) {
	tag := hmac.SHA1(a.key, signed)
	return tag[:], nil
}

// Verify implements Authenticator.
func (a *HMACAuth) Verify(signed, tag []byte) (bool, cost.Cycles) {
	want := hmac.SHA1(a.key, signed)
	return hmac.Equal(want[:], tag), cost.HMACSHA1(len(signed))
}

// TagLen implements Authenticator.
func (a *HMACAuth) TagLen() int { return hmac.TagSize }

// AESAuth authenticates requests with an AES-128 CBC-MAC.
type AESAuth struct {
	cipher *aes.Cipher
}

// NewAESAuth expands the key once (the paper's precomputed key schedule).
func NewAESAuth(key []byte) (*AESAuth, error) {
	c, err := aes.New(key)
	if err != nil {
		return nil, err
	}
	return &AESAuth{cipher: c}, nil
}

// Kind implements Authenticator.
func (a *AESAuth) Kind() AuthKind { return AuthAESCBCMAC }

// Sign implements Authenticator.
func (a *AESAuth) Sign(signed []byte) ([]byte, error) {
	tag := a.cipher.MAC(signed)
	return tag[:], nil
}

// Verify implements Authenticator. The cost covers the padded CBC pass
// with the key schedule already expanded.
func (a *AESAuth) Verify(signed, tag []byte) (bool, cost.Cycles) {
	want := a.cipher.MAC(signed)
	padded := (len(signed)/aes.BlockSize + 1) * aes.BlockSize
	return hmac.Equal(want[:], tag), cost.AESCBCMAC(padded, false)
}

// TagLen implements Authenticator.
func (a *AESAuth) TagLen() int { return aes.BlockSize }

// SpeckAuth authenticates requests with a Speck 64/128 CBC-MAC — the
// paper's cheapest option at 0.017 ms per 8-byte block with the schedule
// precomputed.
type SpeckAuth struct {
	cipher *speck.Cipher
}

// NewSpeckAuth expands the key once.
func NewSpeckAuth(key []byte) (*SpeckAuth, error) {
	c, err := speck.New(key)
	if err != nil {
		return nil, err
	}
	return &SpeckAuth{cipher: c}, nil
}

// Kind implements Authenticator.
func (a *SpeckAuth) Kind() AuthKind { return AuthSpeckCBCMAC }

// Sign implements Authenticator.
func (a *SpeckAuth) Sign(signed []byte) ([]byte, error) {
	tag := a.cipher.MAC(signed)
	return tag[:], nil
}

// Verify implements Authenticator.
func (a *SpeckAuth) Verify(signed, tag []byte) (bool, cost.Cycles) {
	want := a.cipher.MAC(signed)
	padded := (len(signed)/speck.BlockSize + 1) * speck.BlockSize
	return hmac.Equal(want[:], tag), cost.SpeckCBCMAC(padded, false)
}

// TagLen implements Authenticator.
func (a *SpeckAuth) TagLen() int { return speck.BlockSize }

// ECDSAAuth authenticates requests with secp160r1 signatures. The paper
// rules this out: at ~170 ms per verification on a 24 MHz prover, checking
// the signature is itself a DoS vector (§4.1).
type ECDSAAuth struct {
	priv *ecc.PrivateKey // nil on the prover, which only verifies
	pub  ecc.Point
}

// NewECDSAAuth builds the verifier-side instance (can sign).
func NewECDSAAuth(priv *ecc.PrivateKey) *ECDSAAuth {
	return &ECDSAAuth{priv: priv, pub: priv.Public}
}

// NewECDSAVerifier builds the prover-side instance (verify only).
func NewECDSAVerifier(pub ecc.Point) *ECDSAAuth {
	return &ECDSAAuth{pub: pub}
}

// Kind implements Authenticator.
func (a *ECDSAAuth) Kind() AuthKind { return AuthECDSA }

// Sign implements Authenticator.
func (a *ECDSAAuth) Sign(signed []byte) ([]byte, error) {
	if a.priv == nil {
		return nil, ErrVerifyOnly
	}
	sig, err := ecc.Sign(a.priv, signed)
	if err != nil {
		return nil, err
	}
	return sig.Encode(), nil
}

// Verify implements Authenticator.
func (a *ECDSAAuth) Verify(signed, tag []byte) (bool, cost.Cycles) {
	sig, err := ecc.DecodeSignature(tag)
	if err != nil {
		// A malformed signature is rejected without running the expensive
		// point arithmetic.
		return false, cost.Cycles(64)
	}
	return ecc.Verify(a.pub, signed, sig), cost.ECDSAVerify
}

// TagLen implements Authenticator.
func (a *ECDSAAuth) TagLen() int { return ecc.SignatureSize }
