package protocol

import (
	"testing"

	"proverattest/internal/crypto/cost"
	"proverattest/internal/crypto/ecc"
)

var testKey16 = []byte("0123456789abcdef")

func symmetricAuthenticators(t *testing.T) []Authenticator {
	t.Helper()
	hm := NewHMACAuth(testKey16)
	ae, err := NewAESAuth(testKey16)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewSpeckAuth(testKey16)
	if err != nil {
		t.Fatal(err)
	}
	return []Authenticator{hm, ae, sp}
}

func TestSymmetricSignVerifyRoundTrip(t *testing.T) {
	msg := (&AttReq{Nonce: 1, Counter: 2}).SignedBytes()
	for _, a := range symmetricAuthenticators(t) {
		tag, err := a.Sign(msg)
		if err != nil {
			t.Fatalf("%v: Sign: %v", a.Kind(), err)
		}
		if len(tag) != a.TagLen() {
			t.Errorf("%v: tag length %d, want %d", a.Kind(), len(tag), a.TagLen())
		}
		ok, c := a.Verify(msg, tag)
		if !ok {
			t.Errorf("%v: valid tag rejected", a.Kind())
		}
		if c == 0 {
			t.Errorf("%v: zero verification cost", a.Kind())
		}
	}
}

func TestSymmetricVerifyRejectsTampering(t *testing.T) {
	msg := (&AttReq{Nonce: 1, Counter: 2}).SignedBytes()
	msg2 := (&AttReq{Nonce: 1, Counter: 3}).SignedBytes()
	for _, a := range symmetricAuthenticators(t) {
		tag, _ := a.Sign(msg)
		if ok, _ := a.Verify(msg2, tag); ok {
			t.Errorf("%v: tag verified for a different message", a.Kind())
		}
		bad := append([]byte(nil), tag...)
		bad[0] ^= 1
		if ok, _ := a.Verify(msg, bad); ok {
			t.Errorf("%v: corrupted tag verified", a.Kind())
		}
		if ok, _ := a.Verify(msg, tag[:len(tag)-1]); ok {
			t.Errorf("%v: truncated tag verified", a.Kind())
		}
	}
}

func TestKeySeparation(t *testing.T) {
	msg := []byte("request")
	a1 := NewHMACAuth([]byte("key-one-key-one!"))
	a2 := NewHMACAuth([]byte("key-two-key-two!"))
	tag, _ := a1.Sign(msg)
	if ok, _ := a2.Verify(msg, tag); ok {
		t.Fatal("tag from key one verified under key two")
	}
}

func TestNoAuth(t *testing.T) {
	var a NoAuth
	tag, err := a.Sign([]byte("anything"))
	if err != nil || tag != nil {
		t.Fatalf("NoAuth.Sign = %v, %v", tag, err)
	}
	if ok, c := a.Verify([]byte("anything"), nil); !ok || c != 0 {
		t.Fatal("NoAuth rejected an untagged request or charged cycles")
	}
	// A stray tag on an unauthenticated request is a framing violation.
	if ok, _ := a.Verify([]byte("x"), []byte{1}); ok {
		t.Fatal("NoAuth accepted a tagged request")
	}
}

func TestECDSAAuth(t *testing.T) {
	key, err := ecc.GenerateKey([]byte("verifier"))
	if err != nil {
		t.Fatal(err)
	}
	signer := NewECDSAAuth(key)
	verifier := NewECDSAVerifier(key.Public)
	msg := (&AttReq{Nonce: 3}).SignedBytes()

	tag, err := signer.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tag) != signer.TagLen() {
		t.Fatalf("tag length %d, want %d", len(tag), signer.TagLen())
	}
	ok, c := verifier.Verify(msg, tag)
	if !ok {
		t.Fatal("valid signature rejected")
	}
	if c != cost.ECDSAVerify {
		t.Fatalf("verification cost %v, want %v", c, cost.ECDSAVerify)
	}

	// The prover-side instance cannot sign — it holds no private key to
	// steal, which is the one advantage public-key auth would have had.
	if _, err := verifier.Sign(msg); err != ErrVerifyOnly {
		t.Fatalf("verify-only Sign err = %v, want ErrVerifyOnly", err)
	}

	// Malformed signature short-circuits before the point arithmetic.
	if ok, c := verifier.Verify(msg, []byte{1, 2, 3}); ok || c >= cost.ECDSAVerify {
		t.Fatalf("malformed signature: ok=%v cost=%v", ok, c)
	}

	bad := append([]byte(nil), tag...)
	bad[5] ^= 0xFF
	if ok, _ := verifier.Verify(msg, bad); ok {
		t.Fatal("corrupted signature verified")
	}
}

func TestVerificationCostsMatchTable1(t *testing.T) {
	// §4.1 one-block request costs: the signed header is 34 bytes, which is
	// one HMAC block, three AES blocks (34+pad → 48), five Speck blocks
	// (34+pad → 40).
	msg := (&AttReq{}).SignedBytes()
	hm := NewHMACAuth(testKey16)
	if _, c := hm.Verify(msg, make([]byte, 20)); c != cost.HMACSHA1(len(msg)) {
		t.Errorf("HMAC cost %v, want %v", c, cost.HMACSHA1(len(msg)))
	}
	ae, _ := NewAESAuth(testKey16)
	if _, c := ae.Verify(msg, make([]byte, 16)); c != 3*cost.AESEncryptBlock {
		t.Errorf("AES cost %v, want %v", c, 3*cost.AESEncryptBlock)
	}
	sp, _ := NewSpeckAuth(testKey16)
	if _, c := sp.Verify(msg, make([]byte, 8)); c != 5*cost.SpeckEncryptBlock {
		t.Errorf("Speck cost %v, want %v", c, 5*cost.SpeckEncryptBlock)
	}
}

func TestNewAuthenticatorFactory(t *testing.T) {
	for _, kind := range []AuthKind{AuthNone, AuthHMACSHA1, AuthAESCBCMAC, AuthSpeckCBCMAC} {
		a, err := NewAuthenticator(kind, testKey16)
		if err != nil {
			t.Fatalf("NewAuthenticator(%v): %v", kind, err)
		}
		if a.Kind() != kind {
			t.Errorf("factory built %v for %v", a.Kind(), kind)
		}
	}
	if _, err := NewAuthenticator(AuthECDSA, testKey16); err == nil {
		t.Error("factory built ECDSA from a symmetric key")
	}
	if _, err := NewAuthenticator(AuthKind(99), testKey16); err == nil {
		t.Error("factory built an unknown kind")
	}
	if _, err := NewAuthenticator(AuthAESCBCMAC, []byte("short")); err == nil {
		t.Error("factory accepted a short AES key")
	}
}
