package protocol

import (
	"encoding/binary"
	"fmt"

	"proverattest/internal/crypto/hmac"
)

// CommandKind names a prover-side security service invoked through the
// same authenticated, freshness-checked gate as attestation. This realises
// the paper's future-work item 3 — "generalize proposed techniques to
// other network protocols … to mitigate DoS attacks on other security
// services" — and §1's observation that attestation is a building block
// for secure code update and secure memory erasure.
type CommandKind uint8

// Service commands.
const (
	CmdSecureUpdate CommandKind = 1 // install a firmware image fragment
	CmdSecureErase  CommandKind = 2 // zeroise a memory region, with proof
	CmdClockSync    CommandKind = 3 // adjust the prover clock offset
)

func (k CommandKind) String() string {
	switch k {
	case CmdSecureUpdate:
		return "secure-update"
	case CmdSecureErase:
		return "secure-erase"
	case CmdClockSync:
		return "clock-sync"
	}
	return fmt.Sprintf("command(%d)", uint8(k))
}

// Command response status codes.
const (
	StatusOK      uint8 = 0
	StatusRefused uint8 = 1 // policy refused the operation (bad arguments)
	StatusError   uint8 = 2 // execution failed (e.g. bus fault)
)

// CommandReq is a verifier→prover service command. It carries the same
// authentication and freshness fields as an attestation request — the
// prover applies the identical gate before any work happens.
//
// Wire layout (little-endian):
//
//	offset 0  magic   0x41 'A' 0x43 'C'
//	offset 2  version 1
//	offset 3  command kind
//	offset 4  freshness kind
//	offset 5  auth kind
//	offset 6  reserved (2 bytes)
//	offset 8  nonce     (8)
//	offset 16 counter   (8)
//	offset 24 timestamp (8)
//	offset 32 body length (4)
//	offset 36 tag length  (2)
//	offset 38 body, then tag
type CommandReq struct {
	Kind      CommandKind
	Freshness FreshnessKind
	Auth      AuthKind
	Nonce     uint64
	Counter   uint64
	Timestamp uint64
	Body      []byte
	Tag       []byte
}

const (
	cmdReqMagic1   = 0x43
	cmdReqHeader   = 38
	maxCommandBody = 64 * 1024
)

// SignedBytes returns the authenticated portion: header (tag length
// zeroed) plus body. Kind, freshness fields and body are all under the
// tag, so neither command splicing nor payload swapping is possible.
func (r *CommandReq) SignedBytes() []byte {
	buf := make([]byte, cmdReqHeader+len(r.Body))
	r.encodeHeader(buf, 0)
	copy(buf[cmdReqHeader:], r.Body)
	return buf
}

func (r *CommandReq) encodeHeader(buf []byte, tagLen int) {
	buf[0] = reqMagic0
	buf[1] = cmdReqMagic1
	buf[2] = reqVersion
	buf[3] = byte(r.Kind)
	buf[4] = byte(r.Freshness)
	buf[5] = byte(r.Auth)
	binary.LittleEndian.PutUint64(buf[8:], r.Nonce)
	binary.LittleEndian.PutUint64(buf[16:], r.Counter)
	binary.LittleEndian.PutUint64(buf[24:], r.Timestamp)
	binary.LittleEndian.PutUint32(buf[32:], uint32(len(r.Body)))
	binary.LittleEndian.PutUint16(buf[36:], uint16(tagLen))
}

// AppendEncode appends the serialised command to dst and returns the
// extended slice.
func (r *CommandReq) AppendEncode(dst []byte) []byte {
	if len(r.Body) > maxCommandBody {
		panic(fmt.Sprintf("protocol: command body %d exceeds maximum %d", len(r.Body), maxCommandBody))
	}
	if len(r.Tag) > maxTagSize {
		panic(fmt.Sprintf("protocol: tag length %d exceeds maximum %d", len(r.Tag), maxTagSize))
	}
	off := len(dst)
	dst = append(dst, make([]byte, cmdReqHeader)...)
	r.encodeHeader(dst[off:], len(r.Tag))
	dst = append(dst, r.Body...)
	return append(dst, r.Tag...)
}

// Encode serialises the command.
func (r *CommandReq) Encode() []byte {
	return r.AppendEncode(make([]byte, 0, cmdReqHeader+len(r.Body)+len(r.Tag)))
}

// DecodeCommandReq parses a command frame with strict framing.
func DecodeCommandReq(buf []byte) (*CommandReq, error) {
	if len(buf) < cmdReqHeader {
		return nil, fmt.Errorf("protocol: command too short (%d bytes)", len(buf))
	}
	if buf[0] != reqMagic0 || buf[1] != cmdReqMagic1 {
		return nil, fmt.Errorf("protocol: bad command magic %#x %#x", buf[0], buf[1])
	}
	if buf[2] != reqVersion {
		return nil, fmt.Errorf("protocol: unsupported command version %d", buf[2])
	}
	if buf[6] != 0 || buf[7] != 0 {
		return nil, fmt.Errorf("protocol: nonzero reserved bytes in command header")
	}
	bodyLen := int(binary.LittleEndian.Uint32(buf[32:]))
	tagLen := int(binary.LittleEndian.Uint16(buf[36:]))
	if bodyLen > maxCommandBody {
		return nil, fmt.Errorf("protocol: command body %d exceeds maximum %d", bodyLen, maxCommandBody)
	}
	if tagLen > maxTagSize {
		return nil, fmt.Errorf("protocol: tag length %d exceeds maximum %d", tagLen, maxTagSize)
	}
	if len(buf) != cmdReqHeader+bodyLen+tagLen {
		return nil, fmt.Errorf("protocol: command length %d does not match body %d + tag %d",
			len(buf), bodyLen, tagLen)
	}
	r := &CommandReq{
		Kind:      CommandKind(buf[3]),
		Freshness: FreshnessKind(buf[4]),
		Auth:      AuthKind(buf[5]),
		Nonce:     binary.LittleEndian.Uint64(buf[8:]),
		Counter:   binary.LittleEndian.Uint64(buf[16:]),
		Timestamp: binary.LittleEndian.Uint64(buf[24:]),
	}
	if bodyLen > 0 {
		r.Body = append([]byte(nil), buf[cmdReqHeader:cmdReqHeader+bodyLen]...)
	}
	if tagLen > 0 {
		r.Tag = append([]byte(nil), buf[cmdReqHeader+bodyLen:]...)
	}
	return r, nil
}

// CommandResp is the prover→verifier service response, authenticated with
// K_Attest so the verifier knows the trust anchor (not malware) executed
// the command.
//
// Wire layout (little-endian):
//
//	offset 0  magic   0x41 'A' 0x44 'D'
//	offset 2  version 1
//	offset 3  command kind
//	offset 4  status
//	offset 5  reserved (3)
//	offset 8  nonce (8, echoed)
//	offset 16 body length (4)
//	offset 20 tag length  (2)
//	offset 22 body, then tag (HMAC-SHA1 over the tagless frame)
type CommandResp struct {
	Kind   CommandKind
	Status uint8
	Nonce  uint64
	Body   []byte
	Tag    []byte
}

const (
	cmdRespMagic1 = 0x44
	cmdRespHeader = 22
)

// SignedBytes returns the authenticated portion of the response.
func (r *CommandResp) SignedBytes() []byte {
	buf := make([]byte, cmdRespHeader+len(r.Body))
	r.encodeHeader(buf, 0)
	copy(buf[cmdRespHeader:], r.Body)
	return buf
}

func (r *CommandResp) encodeHeader(buf []byte, tagLen int) {
	buf[0] = respMagic0
	buf[1] = cmdRespMagic1
	buf[2] = reqVersion
	buf[3] = byte(r.Kind)
	buf[4] = r.Status
	binary.LittleEndian.PutUint64(buf[8:], r.Nonce)
	binary.LittleEndian.PutUint32(buf[16:], uint32(len(r.Body)))
	binary.LittleEndian.PutUint16(buf[20:], uint16(tagLen))
}

// Seal computes the response tag with K_Attest.
func (r *CommandResp) Seal(attestKey []byte) {
	tag := hmac.SHA1(attestKey, r.SignedBytes())
	r.Tag = tag[:]
}

// VerifyTag checks the response tag with K_Attest.
func (r *CommandResp) VerifyTag(attestKey []byte) bool {
	want := hmac.SHA1(attestKey, r.SignedBytes())
	return hmac.Equal(want[:], r.Tag)
}

// AppendEncode appends the serialised response to dst and returns the
// extended slice.
func (r *CommandResp) AppendEncode(dst []byte) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, cmdRespHeader)...)
	r.encodeHeader(dst[off:], len(r.Tag))
	dst = append(dst, r.Body...)
	return append(dst, r.Tag...)
}

// Encode serialises the response.
func (r *CommandResp) Encode() []byte {
	return r.AppendEncode(make([]byte, 0, cmdRespHeader+len(r.Body)+len(r.Tag)))
}

// DecodeCommandResp parses a command response.
func DecodeCommandResp(buf []byte) (*CommandResp, error) {
	if len(buf) < cmdRespHeader {
		return nil, fmt.Errorf("protocol: command response too short (%d bytes)", len(buf))
	}
	if buf[0] != respMagic0 || buf[1] != cmdRespMagic1 {
		return nil, fmt.Errorf("protocol: bad command-response magic %#x %#x", buf[0], buf[1])
	}
	if buf[2] != reqVersion {
		return nil, fmt.Errorf("protocol: unsupported command-response version %d", buf[2])
	}
	if buf[5] != 0 || buf[6] != 0 || buf[7] != 0 {
		return nil, fmt.Errorf("protocol: nonzero reserved bytes in command-response header")
	}
	bodyLen := int(binary.LittleEndian.Uint32(buf[16:]))
	tagLen := int(binary.LittleEndian.Uint16(buf[20:]))
	if bodyLen > maxCommandBody || tagLen > maxTagSize {
		return nil, fmt.Errorf("protocol: command response body %d / tag %d out of range", bodyLen, tagLen)
	}
	if len(buf) != cmdRespHeader+bodyLen+tagLen {
		return nil, fmt.Errorf("protocol: command response length %d does not match body %d + tag %d",
			len(buf), bodyLen, tagLen)
	}
	r := &CommandResp{
		Kind:   CommandKind(buf[3]),
		Status: buf[4],
		Nonce:  binary.LittleEndian.Uint64(buf[8:]),
	}
	if bodyLen > 0 {
		r.Body = append([]byte(nil), buf[cmdRespHeader:cmdRespHeader+bodyLen]...)
	}
	if tagLen > 0 {
		r.Tag = append([]byte(nil), buf[cmdRespHeader+bodyLen:]...)
	}
	return r, nil
}

// FrameKind classifies a raw frame by its magic, so endpoint demux can
// route attestation and command traffic without trial decoding.
type FrameKind int

// Frame classifications.
const (
	FrameUnknown FrameKind = iota
	FrameAttReq
	FrameAttResp
	FrameCommandReq
	FrameCommandResp
	FrameHello
	FrameStats
	FrameSwarmReq
	FrameSwarmResp
)

// ClassifyFrame inspects a frame's magic bytes.
func ClassifyFrame(buf []byte) FrameKind {
	if len(buf) < 3 || buf[2] != reqVersion {
		return FrameUnknown
	}
	switch {
	case buf[0] == reqMagic0 && buf[1] == reqMagic1:
		return FrameAttReq
	case buf[0] == respMagic0 && buf[1] == respMagic1:
		return FrameAttResp
	case buf[0] == reqMagic0 && buf[1] == cmdReqMagic1:
		return FrameCommandReq
	case buf[0] == respMagic0 && buf[1] == cmdRespMagic1:
		return FrameCommandResp
	case buf[0] == reqMagic0 && buf[1] == helloMagic1:
		return FrameHello
	case buf[0] == reqMagic0 && buf[1] == statsMagic1:
		return FrameStats
	case buf[0] == reqMagic0 && buf[1] == swarmReqMagic1:
		return FrameSwarmReq
	case buf[0] == respMagic0 && buf[1] == swarmRespMagic1:
		return FrameSwarmResp
	}
	return FrameUnknown
}
