package protocol

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestCommandReqRoundTrip(t *testing.T) {
	req := &CommandReq{
		Kind:      CmdSecureUpdate,
		Freshness: FreshCounter,
		Auth:      AuthHMACSHA1,
		Nonce:     7,
		Counter:   8,
		Timestamp: 9,
		Body:      []byte("firmware fragment"),
		Tag:       bytes.Repeat([]byte{0xCD}, 20),
	}
	back, err := DecodeCommandReq(req.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back.Kind != req.Kind || back.Freshness != req.Freshness || back.Auth != req.Auth ||
		back.Nonce != req.Nonce || back.Counter != req.Counter || back.Timestamp != req.Timestamp ||
		!bytes.Equal(back.Body, req.Body) || !bytes.Equal(back.Tag, req.Tag) {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, req)
	}
}

func TestCommandReqRoundTripQuick(t *testing.T) {
	f := func(kind uint8, nonce uint64, body []byte) bool {
		if len(body) > maxCommandBody {
			body = body[:maxCommandBody]
		}
		req := &CommandReq{Kind: CommandKind(kind), Nonce: nonce, Body: body}
		back, err := DecodeCommandReq(req.Encode())
		if err != nil {
			return false
		}
		return back.Nonce == nonce && bytes.Equal(back.Body, body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeCommandReqRejectsMalformed(t *testing.T) {
	good := (&CommandReq{Body: []byte("b"), Tag: []byte{1, 2}}).Encode()
	cases := map[string][]byte{
		"short":       good[:10],
		"bad magic":   mutate(good, 1, 0xFF),
		"bad version": mutate(good, 2, 9),
		"truncated":   good[:len(good)-1],
		"oversized":   append(append([]byte(nil), good...), 0),
	}
	for name, buf := range cases {
		if _, err := DecodeCommandReq(buf); err == nil {
			t.Errorf("%s: decode succeeded", name)
		}
	}
	// Body length pointing past the maximum.
	huge := (&CommandReq{}).Encode()
	huge[32] = 0xFF
	huge[33] = 0xFF
	huge[34] = 0xFF
	huge[35] = 0x7F
	if _, err := DecodeCommandReq(huge); err == nil {
		t.Error("huge body length: decode succeeded")
	}
}

func TestCommandSignedBytesCoverKindAndBody(t *testing.T) {
	a := &CommandReq{Kind: CmdSecureErase, Nonce: 1, Body: []byte("x")}
	b := &CommandReq{Kind: CmdSecureUpdate, Nonce: 1, Body: []byte("x")}
	if bytes.Equal(a.SignedBytes(), b.SignedBytes()) {
		t.Fatal("SignedBytes does not cover the command kind — command splicing possible")
	}
	c := &CommandReq{Kind: CmdSecureErase, Nonce: 1, Body: []byte("y")}
	if bytes.Equal(a.SignedBytes(), c.SignedBytes()) {
		t.Fatal("SignedBytes does not cover the body — payload swapping possible")
	}
	d := &CommandReq{Kind: CmdSecureErase, Nonce: 1, Body: []byte("x"), Tag: []byte{9}}
	if !bytes.Equal(a.SignedBytes(), d.SignedBytes()) {
		t.Fatal("SignedBytes depends on the tag")
	}
}

func TestCommandRespSealVerify(t *testing.T) {
	key := []byte("k-attest-20-bytes!!!")
	resp := &CommandResp{Kind: CmdClockSync, Status: StatusOK, Nonce: 4, Body: []byte("delta")}
	resp.Seal(key)
	back, err := DecodeCommandResp(resp.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !back.VerifyTag(key) {
		t.Fatal("sealed response failed verification")
	}
	if back.VerifyTag([]byte("wrong-key-20-bytes!!")) {
		t.Fatal("response verified under wrong key")
	}
	// Tampering with status must break the tag — otherwise malware could
	// flip a Refused into an OK.
	back.Status = StatusRefused
	if back.VerifyTag(key) {
		t.Fatal("status tampering undetected")
	}
}

func TestDecodeCommandRespRejectsMalformed(t *testing.T) {
	resp := &CommandResp{Kind: CmdSecureErase, Nonce: 1}
	resp.Seal([]byte("k"))
	good := resp.Encode()
	if _, err := DecodeCommandResp(good[:5]); err == nil {
		t.Error("short response decoded")
	}
	if _, err := DecodeCommandResp(mutate(good, 0, 0)); err == nil {
		t.Error("bad-magic response decoded")
	}
	if _, err := DecodeCommandResp(append(good, 1)); err == nil {
		t.Error("oversized response decoded")
	}
}

func TestClassifyFrame(t *testing.T) {
	att := (&AttReq{}).Encode()
	attResp := (&AttResp{}).Encode()
	cmd := (&CommandReq{}).Encode()
	cmdResp := (&CommandResp{}).Encode()
	cases := []struct {
		buf  []byte
		want FrameKind
	}{
		{att, FrameAttReq},
		{attResp, FrameAttResp},
		{cmd, FrameCommandReq},
		{cmdResp, FrameCommandResp},
		{[]byte("xx"), FrameUnknown},
		{nil, FrameUnknown},
		{[]byte{0x41, 0x52, 0x99}, FrameUnknown}, // wrong version
	}
	for i, tc := range cases {
		if got := ClassifyFrame(tc.buf); got != tc.want {
			t.Errorf("case %d: ClassifyFrame = %v, want %v", i, got, tc.want)
		}
	}
}

func TestCommandKindStrings(t *testing.T) {
	for _, k := range []CommandKind{CmdSecureUpdate, CmdSecureErase, CmdClockSync, CommandKind(99)} {
		if k.String() == "" {
			t.Errorf("kind %d has empty string", k)
		}
	}
}

func TestVerifierCommandFlow(t *testing.T) {
	v := testVerifier(t, FreshCounter)
	req, err := v.NewCommand(CmdSecureErase, []byte("body"))
	if err != nil {
		t.Fatal(err)
	}
	if req.Counter == 0 {
		t.Fatal("command did not draw from the counter stream")
	}
	// Commands and attestation requests share the counter stream.
	att, _ := v.NewRequest()
	if att.Counter != req.Counter+1 {
		t.Fatalf("attestation counter %d after command counter %d, want +1", att.Counter, req.Counter)
	}

	resp := &CommandResp{Kind: CmdSecureErase, Status: StatusOK, Nonce: req.Nonce}
	resp.Seal([]byte("k-attest-20-bytes!!!"))
	got, err := v.CheckCommandResponse(resp.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusOK {
		t.Fatalf("status = %d", got.Status)
	}
	// Replay of the response: unsolicited.
	if _, err := v.CheckCommandResponse(resp.Encode()); err == nil {
		t.Fatal("replayed command response accepted")
	}
}

func TestVerifierCommandResponseValidation(t *testing.T) {
	v := testVerifier(t, FreshCounter)
	req, _ := v.NewCommand(CmdSecureErase, nil)

	// Wrong kind.
	wrongKind := &CommandResp{Kind: CmdClockSync, Nonce: req.Nonce}
	wrongKind.Seal([]byte("k-attest-20-bytes!!!"))
	if _, err := v.CheckCommandResponse(wrongKind.Encode()); err == nil {
		t.Fatal("kind-swapped response accepted")
	}

	// Bad tag.
	badTag := &CommandResp{Kind: CmdSecureErase, Nonce: req.Nonce}
	badTag.Seal([]byte("wrong-key-wrong-key!"))
	if _, err := v.CheckCommandResponse(badTag.Encode()); err == nil {
		t.Fatal("wrong-key response accepted")
	}

	// Unknown nonce.
	stray := &CommandResp{Kind: CmdSecureErase, Nonce: 999}
	stray.Seal([]byte("k-attest-20-bytes!!!"))
	if _, err := v.CheckCommandResponse(stray.Encode()); err == nil {
		t.Fatal("unsolicited command response accepted")
	}

	// Garbage.
	if _, err := v.CheckCommandResponse([]byte("junk")); err == nil {
		t.Fatal("garbage accepted")
	}
}
