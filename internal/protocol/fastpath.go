package protocol

import (
	"encoding/binary"

	"proverattest/internal/crypto/hmac"
	"proverattest/internal/crypto/sha1"
)

// The O(1) attestation fast path, after RATA ("On the TOCTOU Problem in
// Remote Attestation"). A prover whose write monitor reports the measured
// memory untouched since the last full measurement does not re-MAC all of
// memory; it answers with a MAC over the signed request, the monitor
// epoch, and the digest that full measurement produced:
//
//	FastMAC = HMAC-SHA1(K_Attest,
//	          signed-request ‖ "RATA-fast-v1" ‖ epoch_le32 ‖ last-digest)
//
// Binding the epoch into the MAC input is what catches a prover that lies
// about cleanliness: clearing the dirty bit out-of-band necessarily bumps
// the epoch (the monitor's rearm register is the only way to clear it),
// so the prover computes its fast MAC over an epoch the verifier never
// verified a measurement for, the tags mismatch, and the verifier drops
// its fast state — driving the device back to the full-memory MAC, where
// resident modifications are caught. The domain tag keeps the fast MAC
// disjoint from the full measurement MAC (which is keyed identically but
// absorbs the memory image).

// fastDomain separates fast-path MACs from full measurement MACs under
// the shared K_Attest.
var fastDomain = []byte("RATA-fast-v1")

// FastMAC computes the O(1) fast-path response MAC for req, vouching that
// the memory behind lastDigest is unchanged through monitor epoch epoch.
func FastMAC(attestKey []byte, req *AttReq, epoch uint32, lastDigest *[sha1.Size]byte) [sha1.Size]byte {
	m := hmac.NewSHA1(attestKey)
	var out [sha1.Size]byte
	fastMACInto(m, req, epoch, lastDigest, &out)
	return out
}

// fastMACInto absorbs the fast-path message into a freshly reset MAC and
// finalises into out without allocating.
func fastMACInto(m *hmac.MAC, req *AttReq, epoch uint32, lastDigest *[sha1.Size]byte, out *[sha1.Size]byte) {
	var hdr [reqHeaderSize]byte
	m.Write(req.AppendSignedBytes(hdr[:0]))
	m.Write(fastDomain)
	var eb [4]byte
	binary.LittleEndian.PutUint32(eb[:], epoch)
	m.Write(eb[:])
	m.Write(lastDigest[:])
	m.SumInto(out)
}

// FastMACMessageLen is the fast-path MAC input length in bytes, for cycle
// cost accounting on the simulated prover.
const FastMACMessageLen = reqHeaderSize + 12 + 4 + sha1.Size

// FastResponder is the prover-side fast-path state machine for hosts that
// stand in for provers without a simulated MCU (cmd/attest-loadgen's
// fleet devices). It mirrors the write-monitor semantics: a full
// measurement rearms the monitor and bumps the epoch; after that,
// RespondInto answers fast-permitted requests in O(1) until Taint marks
// the memory dirty. All state — including both MAC computations — reuses
// pre-allocated buffers, so the clean fast path is zero allocations per
// frame (pinned in fastpath_alloc_test.go).
type FastResponder struct {
	mac    *hmac.MAC
	golden []byte

	epoch  uint32
	digest [sha1.Size]byte
	clean  bool
}

// NewFastResponder builds a responder for a prover holding attestKey
// whose measured memory content is golden. The monitor starts dirty, so
// the first round always pays the full MAC.
func NewFastResponder(attestKey, golden []byte) *FastResponder {
	return &FastResponder{mac: hmac.NewSHA1(attestKey), golden: golden}
}

// Taint latches the responder's dirty bit, as a store to attested memory
// would on the simulated platform.
func (fr *FastResponder) Taint() { fr.clean = false }

// Clean reports whether the next fast-permitted request will take the
// fast path.
func (fr *FastResponder) Clean() bool { return fr.clean && fr.epoch > 0 }

// RespondInto answers req into resp. When the request permits it and the
// memory is clean since the last full measurement, the O(1) fast MAC is
// used and fast is true; otherwise the full golden measurement runs,
// rearming the monitor. resp is fully overwritten.
func (fr *FastResponder) RespondInto(req *AttReq, resp *AttResp) (fast bool) {
	resp.Nonce = req.Nonce
	resp.Counter = req.Counter
	if req.AllowFast && fr.Clean() {
		fr.mac.Reset()
		fastMACInto(fr.mac, req, fr.epoch, &fr.digest, &resp.Measurement)
		resp.Fast = true
		resp.Epoch = fr.epoch
		return true
	}
	// Full measurement: MAC over (signed request ‖ memory), then rearm.
	var hdr [reqHeaderSize]byte
	fr.mac.Reset()
	fr.mac.Write(req.AppendSignedBytes(hdr[:0]))
	fr.mac.Write(fr.golden)
	fr.mac.SumInto(&fr.digest)
	fr.epoch++
	fr.clean = true
	resp.Fast = false
	resp.Epoch = fr.epoch
	resp.Measurement = fr.digest
	return false
}
