package protocol

import "testing"

// The quiescent-fleet contract: once a full measurement has armed both
// sides, every clean round is O(1) on the prover and a single memoized
// compare on the verifier — and neither side allocates per frame, since
// a quiescent fleet emits these at the attestation rate forever.

// fastRig builds a verifier/responder pair and plays the arming full
// round, leaving both sides ready for fast rounds.
func fastRig(t *testing.T) (*Verifier, *FastResponder) {
	t.Helper()
	v, fr, _ := fastRigKeyed(t)
	return v, fr
}

func fastRigKeyed(t *testing.T) (*Verifier, *FastResponder, []byte) {
	t.Helper()
	key := []byte("0123456789abcdef0123")
	golden := make([]byte, 4096)
	for i := range golden {
		golden[i] = byte(i)
	}
	v, err := NewVerifier(VerifierConfig{
		Freshness:     FreshCounter,
		Auth:          NewHMACAuth(key),
		AttestKey:     key,
		Golden:        golden,
		AllowFastPath: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	fr := NewFastResponder(key, golden)

	req, err := v.NewRequest()
	if err != nil {
		t.Fatal(err)
	}
	if req.AllowFast {
		t.Fatal("request granted fast permission before any verified measurement")
	}
	var resp AttResp
	if fr.RespondInto(req, &resp) {
		t.Fatal("responder took the fast path with a dirty monitor")
	}
	if ok, err := v.CheckDecodedResponse(&resp); !ok {
		t.Fatalf("arming full round rejected: %v", err)
	}
	if !v.HasFastState() {
		t.Fatal("verified full measurement did not arm the verifier's fast state")
	}
	return v, fr, key
}

func TestFastRoundTrip(t *testing.T) {
	v, fr := fastRig(t)
	for round := 0; round < 3; round++ {
		req, err := v.NewRequest()
		if err != nil {
			t.Fatal(err)
		}
		if !req.AllowFast {
			t.Fatalf("round %d: armed verifier withheld fast permission", round)
		}
		var resp AttResp
		if !fr.RespondInto(req, &resp) {
			t.Fatalf("round %d: clean responder fell back to the full MAC", round)
		}
		if ok, err := v.CheckDecodedResponse(&resp); !ok {
			t.Fatalf("round %d: fast response rejected: %v", round, err)
		}
	}
	if v.FastAccepted != 3 || v.Rejected != 0 {
		t.Fatalf("FastAccepted = %d Rejected = %d, want 3, 0", v.FastAccepted, v.Rejected)
	}
}

// TestFastTaintFallsBackToFullMAC: a store to attested memory costs the
// prover its fast-path privilege until the next full measurement.
func TestFastTaintFallsBackToFullMAC(t *testing.T) {
	v, fr := fastRig(t)
	fr.Taint()
	req, err := v.NewRequest()
	if err != nil {
		t.Fatal(err)
	}
	var resp AttResp
	if fr.RespondInto(req, &resp) {
		t.Fatal("tainted responder answered fast")
	}
	if ok, err := v.CheckDecodedResponse(&resp); !ok {
		t.Fatalf("full remeasurement of unchanged memory rejected: %v", err)
	}
	// The full round re-armed both sides.
	req2, err := v.NewRequest()
	if err != nil {
		t.Fatal(err)
	}
	if !req2.AllowFast || !fr.Clean() {
		t.Fatal("full round did not restore the fast path")
	}
}

// TestFastEpochDesyncRejected: a fast MAC computed over an epoch the
// verifier never verified (the lying prover's out-of-band rearm) must be
// refused, and the refusal must drop the verifier's fast state so the
// next request demands the full MAC.
func TestFastEpochDesyncRejected(t *testing.T) {
	v, fr, key := fastRigKeyed(t)
	req, err := v.NewRequest()
	if err != nil {
		t.Fatal(err)
	}
	resp := AttResp{
		Nonce:       req.Nonce,
		Counter:     req.Counter,
		Fast:        true,
		Epoch:       2, // verifier verified epoch 1
		Measurement: FastMAC(key, req, 2, &fr.digest),
	}
	if ok, err := v.CheckDecodedResponse(&resp); ok || err != ErrFastMismatch {
		t.Fatalf("desynced fast response: ok=%v err=%v, want ErrFastMismatch", ok, err)
	}
	if v.HasFastState() {
		t.Fatal("fast mismatch did not drop the verifier's fast state")
	}
	req2, err := v.NewRequest()
	if err != nil {
		t.Fatal(err)
	}
	if req2.AllowFast {
		t.Fatal("request after a fast mismatch still granted fast permission")
	}
	if v.FastRejected != 1 {
		t.Fatalf("FastRejected = %d, want 1", v.FastRejected)
	}
}

// TestFastResponderCleanPathZeroAllocs pins the prover-side O(1) answer
// at zero allocations per frame.
func TestFastResponderCleanPathZeroAllocs(t *testing.T) {
	v, fr := fastRig(t)
	req, err := v.NewRequest()
	if err != nil {
		t.Fatal(err)
	}
	var resp AttResp
	assertZeroAllocs(t, "FastResponder.RespondInto clean", func() {
		if !fr.RespondInto(req, &resp) {
			t.Fatal("clean responder fell back to the full MAC")
		}
	})
}

// TestVerifierFastAcceptZeroAllocs pins the verifier-side fast accept —
// pending lookup, memoized constant-time compare, retire — at zero
// allocations per frame. The pending entry is re-armed between calls so
// the same accept path runs every iteration.
func TestVerifierFastAcceptZeroAllocs(t *testing.T) {
	v, fr := fastRig(t)
	req, err := v.NewRequest()
	if err != nil {
		t.Fatal(err)
	}
	var resp AttResp
	if !fr.RespondInto(req, &resp) {
		t.Fatal("clean responder fell back to the full MAC")
	}
	p := v.pending[req.Nonce]
	assertZeroAllocs(t, "CheckDecodedResponse fast accept", func() {
		v.pending[req.Nonce] = p // re-arm the retired nonce: same slot, no growth
		if ok, err := v.CheckDecodedResponse(&resp); !ok || err != nil {
			t.Fatalf("fast accept failed: ok=%v err=%v", ok, err)
		}
	})
}
